// Figure 9 — Absence of the ack clock after OFF periods.
//
// CDF of the bytes received during the first RTT of steady-state ON
// periods, per application. Streaming servers do not reset the congestion
// window after idle periods (contrary to RFC 5681 §4.1), so whole blocks
// (e.g. the 64 kB Flash block) arrive back-to-back without probing.
//
// Ablation: the same sessions with an RFC 5681-compliant server — the
// first-RTT bytes collapse to the initial window, restoring the ack clock.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/ack_clock.hpp"
#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

struct AppCase {
  const char* label;
  Container container;
  Application application;
};

constexpr AppCase kCases[] = {
    {"Flash", Container::kFlash, Application::kFirefox},
    {"Int. Explorer", Container::kHtml5, Application::kInternetExplorer},
    {"Chrome", Container::kHtml5, Application::kChrome},
    {"Android", Container::kHtml5, Application::kAndroidNative},
    {"iPad", Container::kHtml5, Application::kIosNative},
};

stats::EmpiricalCdf first_rtt_cdf(const AppCase& app, bool idle_reset, std::size_t n) {
  stats::EmpiricalCdf cdf;
  sim::Rng rng{1100};
  const auto ds = video::make_dataset(video::DatasetId::kYouHtml, rng, n);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    auto video = ds.videos[i];
    video.container = app.container;
    auto cfg = bench::make_config(Service::kYouTube, app.container, app.application,
                                  net::Vantage::kResearch, video, 1100 + i);
    cfg.server_idle_cwnd_reset = idle_reset;
    const auto result = streaming::run_session(cfg);
    const auto analysis = analysis::analyze_on_off(result.trace);
    try {
      for (const double b : analysis::first_rtt_bytes(result.trace, analysis)) cdf.add(b);
    } catch (const std::invalid_argument&) {
      // no handshake/no qualifying ON periods: skip
    }
  }
  return cdf;
}

void print_reproduction() {
  bench::print_header("Figure 9 -- ack clock after OFF periods",
                      "Rao et al., CoNEXT 2011, Fig 9 + Section 5.1.5");
  const std::size_t n = std::max<std::size_t>(4, bench::sessions_per_sweep() / 4);

  std::printf("bytes received in the first RTT of an ON period [kB] (%zu sessions each)\n\n", n);
  std::vector<std::pair<std::string, stats::EmpiricalCdf>> cdfs;
  for (const auto& app : kCases) cdfs.emplace_back(app.label, first_rtt_cdf(app, false, n));
  bench::print_cdf_table(cdfs, "kB", 1.0 / 1024.0);

  std::printf("\n  reading: Flash delivers its whole 64 kB block back-to-back; pull\n"
              "  clients with larger quanta deliver hundreds of kB in the first RTT\n"
              "  -- no ack clock, the congestion window survived the OFF period.\n");

  std::printf("\nablation: RFC 5681 idle congestion-window restart at the server\n\n");
  std::vector<std::pair<std::string, stats::EmpiricalCdf>> ablated;
  for (const auto& app : kCases) {
    // The multi-connection clients are dominated by fresh-connection slow
    // start anyway; ablate the single-connection cases.
    if (app.application == Application::kIosNative) continue;
    ablated.emplace_back(app.label, first_rtt_cdf(app, true, n));
  }
  bench::print_cdf_table(ablated, "kB", 1.0 / 1024.0);
  for (std::size_t i = 0; i < ablated.size(); ++i) {
    const auto& normal = cdfs[i].second;
    const auto& reset = ablated[i].second;
    if (normal.empty() || reset.empty()) continue;
    std::printf("  %-14s median first-RTT bytes: %6.0f kB -> %6.0f kB with idle reset\n",
                ablated[i].first.c_str(), normal.inverse(0.5) / 1024.0,
                reset.inverse(0.5) / 1024.0);
  }
}

void BM_Fig9AckClockEstimation(benchmark::State& state) {
  video::VideoMeta v;
  v.id = "bm9";
  v.duration_s = 600.0;
  v.encoding_bps = 1e6;
  v.container = Container::kFlash;
  const auto cfg = bench::make_config(Service::kYouTube, Container::kFlash,
                                      Application::kFirefox, net::Vantage::kResearch, v, 5);
  const auto result = streaming::run_session(cfg);
  const auto analysis = analysis::analyze_on_off(result.trace);
  for (auto _ : state) {
    auto samples = analysis::first_rtt_bytes(result.trace, analysis);
    benchmark::DoNotOptimize(samples.size());
  }
  state.SetLabel("first_rtt_bytes over one 180 s trace");
}
BENCHMARK(BM_Fig9AckClockEstimation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig9_ack_clock", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
