// Figure 5 — Steady state for HTML5 videos on Internet Explorer.
//
// (a) Block-size CDF across the four networks: 256 kB dominates.
// (b) Accumulation-ratio CDF: wide spread because the encoding rate of
//     HTML5/WebM videos must be *estimated* (invalid frame-rate header) —
//     the paper reports mean 1.06, median 1.04. We compute the ratio with
//     the estimated rate (reproducing the spread) and with the true rate
//     (showing the spread is an estimation artifact, as the paper argues).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "stats/histogram.hpp"
#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

void print_reproduction() {
  bench::print_header("Figure 5 -- steady state for HTML5 on Internet Explorer",
                      "Rao et al., CoNEXT 2011, Fig 5(a)/(b)");
  const std::size_t n = bench::sessions_per_sweep();

  std::vector<std::pair<std::string, stats::EmpiricalCdf>> block_cdfs;
  stats::EmpiricalCdf ratios_estimated;
  stats::EmpiricalCdf ratios_true;
  stats::Histogram block_hist{0.0, 1024.0, 32};

  for (const auto vantage : net::kAllVantages) {
    const auto outcomes =
        bench::sweep(Service::kYouTube, Container::kHtml5, Application::kInternetExplorer,
                     vantage, video::DatasetId::kYouHtml, n, 701);
    stats::EmpiricalCdf blocks;
    for (const auto& o : outcomes) {
      for (const double b : o.analysis.block_sizes_bytes) {
        blocks.add(b);
        if (vantage == net::Vantage::kResearch) block_hist.add(b / 1024.0);
      }
      if (o.analysis.has_steady_state()) {
        ratios_estimated.add(o.analysis.accumulation_ratio(o.result.encoding_bps_estimated));
        ratios_true.add(o.analysis.accumulation_ratio(o.result.encoding_bps_true));
      }
    }
    block_cdfs.emplace_back(std::string{net::vantage_name(vantage)}, std::move(blocks));
  }

  std::printf("(a) block size CDF [kB] (%zu sessions per network)\n\n", n);
  bench::print_cdf_table(block_cdfs, "kB", 1.0 / 1024.0);
  std::printf("\n  block-size histogram, Research network [kB]:\n%s",
              block_hist.render(40).c_str());
  std::printf("  dominant block size: %.0f kB (paper: 256 kB)\n", block_hist.mode());

  std::printf("\n(b) accumulation ratio (all networks pooled)\n\n");
  bench::print_cdf("with estimated rate (paper's pipeline)", ratios_estimated, "ratio");
  std::printf("  mean/median: ");
  if (!ratios_estimated.empty()) {
    double sum = 0.0;
    for (const double x : ratios_estimated.sorted_samples()) sum += x;
    std::printf("%.2f / %.2f (paper: 1.06 / 1.04)\n",
                sum / static_cast<double>(ratios_estimated.size()),
                ratios_estimated.inverse(0.5));
  }
  std::printf("\n");
  bench::print_cdf("with true rate (spread collapses)", ratios_true, "ratio");
  if (!ratios_estimated.empty() && !ratios_true.empty()) {
    const double spread_est = ratios_estimated.inverse(0.9) - ratios_estimated.inverse(0.1);
    const double spread_true = ratios_true.inverse(0.9) - ratios_true.inverse(0.1);
    std::printf("\n  10-90%% spread: estimated %.2f vs true %.2f -- the wide range is an\n"
                "  artifact of rate estimation, as the paper hypothesises.\n",
                spread_est, spread_true);
  }
}

void BM_Fig5Session(benchmark::State& state) {
  sim::Rng rng{3};
  const auto ds = video::make_dataset(video::DatasetId::kYouHtml, rng, 1);
  const auto cfg = bench::make_config(Service::kYouTube, Container::kHtml5,
                                      Application::kInternetExplorer, net::Vantage::kResearch,
                                      ds.videos[0], 21);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.analysis.median_block_bytes());
  }
}
BENCHMARK(BM_Fig5Session)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig5_html5_ie_steady", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
