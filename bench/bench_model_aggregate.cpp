// Section 6.1 — Aggregate video-traffic model, analytical AND packet-level.
//
// Three layers of evidence, strongest last:
//   1. Closed forms Eq (3)/(4) vs the flow-level Monte-Carlo superposition
//      (model/aggregate.hpp) — the seed reproduction.
//   2. A packet-level strategy showdown: three Table-1 strategies run as
//      real multi-session topologies (streaming/topology.hpp) behind a
//      shared bottleneck, and the measured per-window R(t) mean/variance is
//      compared against the closed forms — and across strategies
//      (conclusion 2: Eq 3/4 are strategy-independent).
//   3. A scale sweep: VSTREAM_BENCH_AGG_SESSIONS scale-model sessions
//      (default 10k for CI; push to 1M for the EXPERIMENTS.md entry)
//      through runner::run_topologies_streamed, windows pooled exactly
//      across shards.
//
// Telemetry lands in BENCH_aggregate.json; tools/check_bench_floor.py
// gates perf-smoke on bench/aggregate_floor.json: a sessions/s floor plus
// the model-agreement, strategy-independence and digest-invariance bits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "model/aggregate.hpp"
#include "runner/topology_sweep.hpp"
#include "streaming/topology_builder.hpp"
#include "support.hpp"

namespace {

using namespace vstream;
using model::AggregateParams;
using model::ModelStrategy;
using model::MonteCarloConfig;

MonteCarloConfig base_config(ModelStrategy strategy) {
  MonteCarloConfig cfg;
  cfg.lambda_per_s = 0.5;
  cfg.horizon_s = 3000.0;
  cfg.sample_dt_s = 1.0;
  cfg.seed = 7;
  cfg.strategy = strategy;
  cfg.draw_encoding_bps = [](sim::Rng& r) { return r.uniform(0.5e6, 1.5e6); };
  cfg.draw_duration_s = [](sim::Rng& r) { return r.uniform(120.0, 480.0); };
  cfg.draw_download_rate_bps = [](sim::Rng& r) { return r.uniform(4e6, 6e6); };
  cfg.accumulation_ratio = 1.25;
  cfg.buffering_playback_s = 40.0;
  cfg.block_bytes = 64 * 1024;
  return cfg;
}

void print_reproduction() {
  bench::print_header("Section 6.1 -- aggregate traffic model",
                      "Rao et al., CoNEXT 2011, Eq (3)/(4) and conclusions 1-3");

  AggregateParams p;
  p.lambda_per_s = 0.5;
  p.mean_encoding_bps = 1e6;
  p.mean_duration_s = 300.0;
  p.mean_download_rate_bps = 5e6;

  const double mean = model::mean_aggregate_rate_bps(p);
  const double var = model::variance_aggregate_rate(p);
  std::printf("closed forms (lambda=%.2f/s, E[e]=%.1f Mbps, E[L]=%.0f s, E[G]=%.0f Mbps):\n",
              p.lambda_per_s, p.mean_encoding_bps / 1e6, p.mean_duration_s,
              p.mean_download_rate_bps / 1e6);
  std::printf("  Eq(3) E[R]   = %10.2f Mbps\n", mean / 1e6);
  std::printf("  Eq(4) Var[R] = %10.4g (bps)^2, sd = %.2f Mbps\n", var, std::sqrt(var) / 1e6);

  std::printf("\nMonte-Carlo superposition vs closed form, per strategy:\n");
  std::printf("  %-14s %12s %12s %14s %14s\n", "strategy", "mean [Mbps]", "eq(3)", "sd [Mbps]",
              "eq(4) sd");
  for (const auto strategy :
       {ModelStrategy::kNoOnOff, ModelStrategy::kShortOnOff, ModelStrategy::kLongOnOff}) {
    auto cfg = base_config(strategy);
    if (strategy == ModelStrategy::kLongOnOff) cfg.block_bytes = 4 * 1024 * 1024;
    const auto mc = model::run_aggregate_monte_carlo(cfg);
    const char* name = strategy == ModelStrategy::kNoOnOff      ? "No ON-OFF"
                       : strategy == ModelStrategy::kShortOnOff ? "Short ON-OFF"
                                                                : "Long ON-OFF";
    std::printf("  %-14s %12.2f %12.2f %14.2f %14.2f\n", name, mc.mean_bps / 1e6, mean / 1e6,
                std::sqrt(mc.variance) / 1e6, std::sqrt(var) / 1e6);
  }
  std::printf("  -> conclusion 2: mean and variance are strategy-independent.\n");

  std::printf("\nencoding-rate sweep (conclusion 3: higher rates => smoother aggregate):\n");
  std::printf("  %12s %12s %12s %16s\n", "E[e] [Mbps]", "E[R] [Mbps]", "sd [Mbps]",
              "coeff of var");
  for (double e_mbps = 0.5; e_mbps <= 4.0 + 1e-9; e_mbps *= 2.0) {
    AggregateParams q = p;
    q.mean_encoding_bps = e_mbps * 1e6;
    const double m = model::mean_aggregate_rate_bps(q);
    const double sd = std::sqrt(model::variance_aggregate_rate(q));
    std::printf("  %12.1f %12.1f %12.2f %16.4f\n", e_mbps, m / 1e6, sd / 1e6, sd / m);
  }

  std::printf("\ndimensioning rule (conclusion 1): link capacity = E[R] + alpha sqrt(V)\n");
  for (const double alpha : {1.0, 2.0, 3.0}) {
    std::printf("  alpha=%.0f -> %.1f Mbps\n", alpha, model::dimension_link_bps(p, alpha) / 1e6);
  }
}

// ------------------------------------------------- packet-level showdown

struct StrategyScenario {
  const char* name;
  video::Container container;
  streaming::Application application;
};

/// Table-1 strategies with distinct transfer shapes: bulk HD Flash (no
/// ON-OFF), server-paced Flash (64 kB pulses after the ~40 s-playback
/// burst), and IE HTML5 (client pull throttling, 256 kB pulls).
constexpr StrategyScenario kStrategies[] = {
    {"FlashHD bulk", video::Container::kFlashHd, streaming::Application::kFirefox},
    {"Flash paced", video::Container::kFlash, streaming::Application::kInternetExplorer},
    {"HTML5/IE pull", video::Container::kHtml5, streaming::Application::kInternetExplorer},
};

struct ShowdownPoint {
  runner::TopologyAccumulator sweep;
  AggregateParams params;
  double empirical_mean{0.0};
  double empirical_var{0.0};
};

[[nodiscard]] double rel_err(double measured, double predicted) {
  if (std::abs(predicted) < 1e-12) return 0.0;
  return std::abs(measured - predicted) / std::abs(predicted);
}

std::size_t env_size(const char* name, std::size_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before any pool thread exists
  if (const char* env = std::getenv(name)) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return fallback;
}

/// One strategy's sweep: `worlds` worlds of Poisson arrivals on residence
/// ADSL legs behind a shared 60 Mbps bottleneck, scale-model videos
/// e ~ U(100, 200) kbps, L ~ U(60, 90) s (long enough that Flash's ~40 s
/// initial burst leaves genuine ON-OFF pulses). The 100 ms sampling window
/// sits between the access RTT (sub-window TCP burstiness would inflate
/// the variance) and the ON-pulse durations Eq (4)'s variance rides on.
ShowdownPoint run_strategy(const runner::ParallelSweep& pool, const StrategyScenario& s,
                           std::size_t worlds, std::uint64_t seed_base) {
  const auto make = [&s, seed_base](std::size_t g) {
    video::VideoMeta meta;
    meta.id = std::string{"aggregate-"} + s.name;
    meta.duration_s = 75.0;
    meta.encoding_bps = 150e3;
    meta.container = s.container;
    return streaming::TopologyBuilder{}
        .container(s.container)
        .application(s.application)
        .vantage(net::Vantage::kResidence)
        .video(meta)
        .sessions(300)
        .workload(streaming::WorkloadBuilder{}
                      .poisson(1.0)
                      .customize([](std::size_t, sim::Rng& rng, streaming::SessionConfig& cfg) {
                        cfg.video.encoding_bps = rng.uniform(100e3, 200e3);
                        cfg.video.duration_s = rng.uniform(60.0, 90.0);
                      })
                      .build())
        .bottleneck_rate_bps(60e6)
        .horizon_s(240.0)
        .warmup_s(100.0)
        .sample_window_s(0.1)
        .seed(seed_base + g)
        .build();
  };
  ShowdownPoint point;
  point.sweep = runner::run_topologies_streamed(pool, 0, worlds, make);
  point.params = point.sweep.measured_model_params();
  point.empirical_mean = point.sweep.mean_aggregate_bps();
  point.empirical_var = point.sweep.variance_aggregate();
  return point;
}

void run_showdown() {
  bench::print_header("Packet-level showdown -- topologies vs Eq (3)/(4)",
                      "shared 60 Mbps bottleneck, residence ADSL legs, Poisson churn");

  const runner::ParallelSweep pool{0};
  const std::size_t worlds = env_size("VSTREAM_BENCH_AGG_WORLDS", 2);
  auto& telemetry = bench::RunTelemetry::instance();

  const auto t0 = std::chrono::steady_clock::now();
  ShowdownPoint points[3];
  std::uint64_t total_sessions = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    // Same seed base for every strategy: identical arrival times and video
    // draws, so the cross-strategy spread below is a paired comparison free
    // of Poisson sampling noise.
    points[i] = run_strategy(pool, kStrategies[i], worlds, 9000);
    total_sessions += points[i].sweep.sessions_started;
  }

  // Eq (4)'s G is the download rate *while transferring*. The bulk strategy
  // measures it directly (no OFF gaps dilute its session goodput), so its
  // E[G] prices the variance prediction for every strategy — that
  // substitution is exactly the strategy-independence claim under test.
  const double g_bulk = points[0].sweep.mean_goodput_bps();

  std::printf("  %-14s %9s %11s %8s %10s %9s %12s\n", "strategy", "sessions", "E[R] [Mbps]",
              "eq(3)", "sd [Mbps]", "eq(4) sd", "err mean/sd");
  bool mean_ok = true;
  bool sd_ok = true;
  for (const ShowdownPoint& pt : points) {
    const double predicted_mean = model::mean_aggregate_rate_bps(pt.params);
    AggregateParams var_params = pt.params;
    var_params.mean_download_rate_bps = g_bulk;
    const double predicted_sd = std::sqrt(model::variance_aggregate_rate(var_params));
    const double me = rel_err(pt.empirical_mean, predicted_mean);
    // sd, not variance: same units as the mean (the paper's presentation),
    // and the rectangular-pulse approximation behind Eq (4) — real bulk
    // pulses carry a slow-start ramp — is only fair at sd granularity.
    const double se = rel_err(std::sqrt(pt.empirical_var), predicted_sd);
    mean_ok = mean_ok && me <= 0.12;
    sd_ok = sd_ok && se <= 0.40;
    std::printf("  %-14s %9llu %11.2f %8.2f %10.2f %9.2f %6.1f%%/%.1f%%\n",
                kStrategies[&pt - points].name,
                static_cast<unsigned long long>(pt.sweep.sessions_started),
                pt.empirical_mean / 1e6, predicted_mean / 1e6, std::sqrt(pt.empirical_var) / 1e6,
                predicted_sd / 1e6, 100.0 * me, 100.0 * se);
  }

  // Conclusion 2, packet level: the three strategies must agree with each
  // other, not just each with its own prediction — and with paired seeds
  // the comparison is free of arrival/draw sampling noise.
  double mean_spread = 0.0;
  double sd_spread = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      mean_spread =
          std::max(mean_spread, rel_err(points[i].empirical_mean, points[j].empirical_mean));
      sd_spread = std::max(sd_spread, rel_err(std::sqrt(points[i].empirical_var),
                                              std::sqrt(points[j].empirical_var)));
    }
  }
  const bool independent = mean_spread <= 0.10 && sd_spread <= 0.30;
  std::printf("  strategy spread: mean %.1f%%, sd %.1f%% -> %s\n", 100.0 * mean_spread,
              100.0 * sd_spread,
              independent ? "strategy-independent" : "STRATEGY-DEPENDENT (regression)");

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  telemetry.note_metric("aggregate_mean_agreement", mean_ok ? 1.0 : 0.0);
  telemetry.note_metric("aggregate_var_agreement", sd_ok ? 1.0 : 0.0);
  telemetry.note_metric("aggregate_strategy_independence", independent ? 1.0 : 0.0);
  telemetry.note_metric("aggregate_showdown_sessions", static_cast<double>(total_sessions));
  telemetry.note_metric("aggregate_showdown_wall_s", wall_s);
}

// ------------------------------------------------------------ scale sweep

/// Scale-model bulk worlds for the 10k..1M sweep: ~56 kB sessions
/// (e ~ U(50, 100) kbps, L ~ U(4, 8) s) at lambda = 25/s, ~750 expected
/// arrivals per 30 s world.
streaming::TopologyConfig sweep_world(std::size_t g, std::size_t sessions_cap) {
  video::VideoMeta meta;
  meta.id = "aggregate-sweep";
  meta.duration_s = 6.0;
  meta.encoding_bps = 75e3;
  meta.container = video::Container::kFlashHd;
  return streaming::TopologyBuilder{}
      .container(video::Container::kFlashHd)
      .application(streaming::Application::kFirefox)
      .vantage(net::Vantage::kResidence)
      .video(meta)
      .sessions(sessions_cap)
      .workload(streaming::WorkloadBuilder{}
                    .poisson(25.0)
                    .customize([](std::size_t, sim::Rng& rng, streaming::SessionConfig& cfg) {
                      cfg.video.encoding_bps = rng.uniform(50e3, 100e3);
                      cfg.video.duration_s = rng.uniform(4.0, 8.0);
                    })
                    .build())
      .bottleneck_rate_bps(60e6)
      .horizon_s(30.0)
      .warmup_s(10.0)
      .sample_window_s(0.1)
      .seed(20'000 + g)
      .build();
}

void run_scale_sweep() {
  const std::size_t target = env_size("VSTREAM_BENCH_AGG_SESSIONS", 10'000);
  const std::size_t worlds = std::max<std::size_t>(std::size_t{1}, (target + 749) / 750);
  bench::print_header("Scale sweep -- sharded streamed topologies",
                      "bulk scale-model sessions, windows pooled exactly across shards");

  const runner::ParallelSweep pool{0};
  auto& telemetry = bench::RunTelemetry::instance();

  const auto t0 = std::chrono::steady_clock::now();
  const auto sweep = runner::run_topologies_streamed(
      pool, 0, worlds, [](std::size_t g) { return sweep_world(g, 900); });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const AggregateParams params = sweep.measured_model_params();
  const double predicted_mean = model::mean_aggregate_rate_bps(params);
  const double predicted_var = model::variance_aggregate_rate(params);
  const double mean_err = rel_err(sweep.mean_aggregate_bps(), predicted_mean);
  const double sd_err = rel_err(std::sqrt(sweep.variance_aggregate()), std::sqrt(predicted_var));
  const double sessions_per_s =
      wall_s > 0.0 ? static_cast<double>(sweep.sessions_started) / wall_s : 0.0;

  std::printf("  %llu sessions in %zu worlds (%zu workers), %.1f s wall -> %.0f sessions/s\n",
              static_cast<unsigned long long>(sweep.sessions_started), worlds, pool.jobs(),
              wall_s, sessions_per_s);
  std::printf("  measured lambda=%.2f/s E[e]=%.0f kbps E[L]=%.2f s E[G]=%.2f Mbps\n",
              params.lambda_per_s, params.mean_encoding_bps / 1e3, params.mean_duration_s,
              params.mean_download_rate_bps / 1e6);
  std::printf("  E[R]: %.2f vs eq(3) %.2f Mbps (%.1f%%); sd: %.2f vs eq(4) %.2f Mbps (%.1f%%)\n",
              sweep.mean_aggregate_bps() / 1e6, predicted_mean / 1e6, 100.0 * mean_err,
              std::sqrt(sweep.variance_aggregate()) / 1e6, std::sqrt(predicted_var) / 1e6,
              100.0 * sd_err);

  telemetry.note_metric("aggregate_sessions_per_sec", sessions_per_s);
  telemetry.note_metric("aggregate_sweep_sessions", static_cast<double>(sweep.sessions_started));
  telemetry.note_metric("aggregate_sweep_mean_agreement", mean_err <= 0.12 ? 1.0 : 0.0);
  telemetry.note_metric("aggregate_sweep_var_agreement", sd_err <= 0.40 ? 1.0 : 0.0);
}

// ------------------------------------------------------ digest invariance

void run_digest_invariance() {
  // The same 8 small worlds, serial vs pooled: the sweep digest must not
  // notice the worker count (DESIGN.md §13, extended to topologies).
  const auto make = [](std::size_t g) { return sweep_world(1000 + g, 64); };
  const runner::ParallelSweep serial{1};
  const runner::ParallelSweep pooled{4};
  const auto a = runner::run_topologies_streamed(serial, 0, 8, make);
  const auto b = runner::run_topologies_streamed(pooled, 0, 8, make);
  const bool invariant = a.digest == b.digest && a.sim_events == b.sim_events;
  std::printf("\ndigest invariance (1 vs 4 workers, 8 worlds): %s (%016llx)\n",
              invariant ? "bit-identical" : "DIVERGED",
              static_cast<unsigned long long>(a.digest.combined));
  bench::RunTelemetry::instance().note_metric("aggregate_digest_invariant",
                                              invariant ? 1.0 : 0.0);
}

void BM_MonteCarloAggregate(benchmark::State& state) {
  auto cfg = base_config(ModelStrategy::kShortOnOff);
  cfg.horizon_s = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto result = model::run_aggregate_monte_carlo(cfg);
    benchmark::DoNotOptimize(result.mean_bps);
  }
  state.SetLabel("horizon " + std::to_string(state.range(0)) + " s");
}
BENCHMARK(BM_MonteCarloAggregate)->Arg(500)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("aggregate", &argc, argv);
  print_reproduction();
  run_showdown();
  run_scale_sweep();
  run_digest_invariance();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
