// Section 6.1 — Aggregate video-traffic model.
//
// Validates Eq (3)/(4) against Monte-Carlo superposition, demonstrates the
// strategy-independence of the mean and variance, sweeps the encoding rate
// to show the smoothing effect (coefficient of variation falls as 1/sqrt(e)),
// and prints the dimensioning rule E[R] + alpha sqrt(V).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "model/aggregate.hpp"
#include "support.hpp"

namespace {

using namespace vstream;
using model::AggregateParams;
using model::ModelStrategy;
using model::MonteCarloConfig;

MonteCarloConfig base_config(ModelStrategy strategy) {
  MonteCarloConfig cfg;
  cfg.lambda_per_s = 0.5;
  cfg.horizon_s = 3000.0;
  cfg.sample_dt_s = 1.0;
  cfg.seed = 7;
  cfg.strategy = strategy;
  cfg.draw_encoding_bps = [](sim::Rng& r) { return r.uniform(0.5e6, 1.5e6); };
  cfg.draw_duration_s = [](sim::Rng& r) { return r.uniform(120.0, 480.0); };
  cfg.draw_download_rate_bps = [](sim::Rng& r) { return r.uniform(4e6, 6e6); };
  cfg.accumulation_ratio = 1.25;
  cfg.buffering_playback_s = 40.0;
  cfg.block_bytes = 64 * 1024;
  return cfg;
}

void print_reproduction() {
  bench::print_header("Section 6.1 -- aggregate traffic model",
                      "Rao et al., CoNEXT 2011, Eq (3)/(4) and conclusions 1-3");

  AggregateParams p;
  p.lambda_per_s = 0.5;
  p.mean_encoding_bps = 1e6;
  p.mean_duration_s = 300.0;
  p.mean_download_rate_bps = 5e6;

  const double mean = model::mean_aggregate_rate_bps(p);
  const double var = model::variance_aggregate_rate(p);
  std::printf("closed forms (lambda=%.2f/s, E[e]=%.1f Mbps, E[L]=%.0f s, E[G]=%.0f Mbps):\n",
              p.lambda_per_s, p.mean_encoding_bps / 1e6, p.mean_duration_s,
              p.mean_download_rate_bps / 1e6);
  std::printf("  Eq(3) E[R]   = %10.2f Mbps\n", mean / 1e6);
  std::printf("  Eq(4) Var[R] = %10.4g (bps)^2, sd = %.2f Mbps\n", var, std::sqrt(var) / 1e6);

  std::printf("\nMonte-Carlo superposition vs closed form, per strategy:\n");
  std::printf("  %-14s %12s %12s %14s %14s\n", "strategy", "mean [Mbps]", "eq(3)", "sd [Mbps]",
              "eq(4) sd");
  for (const auto strategy :
       {ModelStrategy::kNoOnOff, ModelStrategy::kShortOnOff, ModelStrategy::kLongOnOff}) {
    auto cfg = base_config(strategy);
    if (strategy == ModelStrategy::kLongOnOff) cfg.block_bytes = 4 * 1024 * 1024;
    const auto mc = model::run_aggregate_monte_carlo(cfg);
    const char* name = strategy == ModelStrategy::kNoOnOff      ? "No ON-OFF"
                       : strategy == ModelStrategy::kShortOnOff ? "Short ON-OFF"
                                                                : "Long ON-OFF";
    std::printf("  %-14s %12.2f %12.2f %14.2f %14.2f\n", name, mc.mean_bps / 1e6, mean / 1e6,
                std::sqrt(mc.variance) / 1e6, std::sqrt(var) / 1e6);
  }
  std::printf("  -> conclusion 2: mean and variance are strategy-independent.\n");

  std::printf("\nencoding-rate sweep (conclusion 3: higher rates => smoother aggregate):\n");
  std::printf("  %12s %12s %12s %16s\n", "E[e] [Mbps]", "E[R] [Mbps]", "sd [Mbps]",
              "coeff of var");
  for (double e_mbps = 0.5; e_mbps <= 4.0 + 1e-9; e_mbps *= 2.0) {
    AggregateParams q = p;
    q.mean_encoding_bps = e_mbps * 1e6;
    const double m = model::mean_aggregate_rate_bps(q);
    const double sd = std::sqrt(model::variance_aggregate_rate(q));
    std::printf("  %12.1f %12.1f %12.2f %16.4f\n", e_mbps, m / 1e6, sd / 1e6, sd / m);
  }

  std::printf("\ndimensioning rule (conclusion 1): link capacity = E[R] + alpha sqrt(V)\n");
  for (const double alpha : {1.0, 2.0, 3.0}) {
    std::printf("  alpha=%.0f -> %.1f Mbps\n", alpha, model::dimension_link_bps(p, alpha) / 1e6);
  }
}

void BM_MonteCarloAggregate(benchmark::State& state) {
  auto cfg = base_config(ModelStrategy::kShortOnOff);
  cfg.horizon_s = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto result = model::run_aggregate_monte_carlo(cfg);
    benchmark::DoNotOptimize(result.mean_bps);
  }
  state.SetLabel("horizon " + std::to_string(state.range(0)) + " s");
}
BENCHMARK(BM_MonteCarloAggregate)->Arg(500)->Arg(1000)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("model_aggregate", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
