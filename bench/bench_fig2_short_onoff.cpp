// Figure 2 — Short ON-OFF cycles: who throttles, server or client?
//
// (a) Download amount over the first 10 s for a Flash video and an HTML5
//     video, both in Internet Explorer on the Research network.
// (b) The TCP receive window: for HTML5 the window periodically empties
//     (IE pulls from the TCP buffer — client-side throttling); for Flash it
//     never does (the YouTube server paces — server-side throttling).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

streaming::SessionConfig config(Container container) {
  video::VideoMeta v;
  v.id = "fig2";
  v.duration_s = 600.0;
  v.encoding_bps = 1e6;
  v.container = container;
  return bench::make_config(Service::kYouTube, container, Application::kInternetExplorer,
                            net::Vantage::kResearch, v, 7);
}

void print_reproduction() {
  bench::print_header("Figure 2 -- short ON-OFF cycles and the receive window",
                      "Rao et al., CoNEXT 2011, Fig 2(a)/(b)");

  const auto flash = bench::run_and_analyze(config(Container::kFlash));
  const auto html5 = bench::run_and_analyze(config(Container::kHtml5));

  std::printf("(a) download amount, first 10 s\n\n");
  bench::print_download_curve("Flash (IE)", flash.result.trace, 10.0, 1.0);
  std::printf("\n");
  bench::print_download_curve("HTML5 (IE)", html5.result.trace, 10.0, 1.0);

  std::printf("\n(b) TCP receive window evolution over the capture\n");
  bench::print_window_summary("Flash (IE)", flash.result.trace);
  bench::print_window_summary("HTML5 (IE)", html5.result.trace);

  const auto flash_zero = analysis::count_zero_window_episodes(flash.result.trace);
  const auto html5_zero = analysis::count_zero_window_episodes(html5.result.trace);
  std::printf("\npaper's diagnosis:\n");
  std::printf("  Flash: %s (server-paced push; rwnd never empties)\n",
              flash_zero == 0 ? "CONFIRMED" : "NOT REPRODUCED");
  std::printf("  HTML5: %s (IE pull-throttles; rwnd periodically empties, %zu episodes)\n",
              html5_zero > 10 ? "CONFIRMED" : "NOT REPRODUCED", html5_zero);

  std::printf("\nsteady-state summary:\n");
  std::printf("  %-12s block %7.0f kB  accumulation %.2f\n", "Flash (IE)",
              flash.analysis.median_block_bytes() / 1024.0,
              flash.analysis.accumulation_ratio(flash.result.encoding_bps_true));
  std::printf("  %-12s block %7.0f kB  accumulation %.2f\n", "HTML5 (IE)",
              html5.analysis.median_block_bytes() / 1024.0,
              html5.analysis.accumulation_ratio(html5.result.encoding_bps_true));
}

void BM_Fig2FlashSession(benchmark::State& state) {
  const auto cfg = config(Container::kFlash);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.analysis.steady_rate_bps);
  }
}
BENCHMARK(BM_Fig2FlashSession)->Unit(benchmark::kMillisecond);

void BM_Fig2Html5Session(benchmark::State& state) {
  const auto cfg = config(Container::kHtml5);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.analysis.steady_rate_bps);
  }
}
BENCHMARK(BM_Fig2Html5Session)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig2_short_onoff", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
