// Observability-overhead microbench — the span layer's cost at the event
// dispatch rate.
//
// Sections:
//   1. dispatch chains (as bench_engine) with an open_span/close pair per
//      event, against the same workload without any instrumentation, on a
//      world with no sink attached: the no-op path is two pointer loads and
//      a branch, and the acceptance bar is <5% dispatch regression.
//   2. the same workload with a RingBufferSink armed: every event now
//      allocates and emits a SpanRecord, giving the armed-path event rate.
//   3. histogram percentile queries (p50/p90/p99 interpolation) at snapshot
//      scale, so the new quantile math has a tracked rate too.
//
// `--metrics-out` writes BENCH_obs.json; tools/check_bench_floor.py
// compares the extra.* metrics against bench/obs_floor.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "support.hpp"

namespace {

using namespace vstream;

[[nodiscard]] double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Best throughput over `reps` runs: wall-clock noise on a shared host is
/// one-sided (interference only slows a run down), so max is the closest
/// observable to the machine's true rate.
template <typename Fn>
double best_of(int reps, Fn&& measure_once) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) best = std::max(best, measure_once());
  return best;
}

enum class SpanMode : int {
  kNone,     ///< bare event chain, no instrumentation call at all
  kNoSink,   ///< open_span per event on a world with no sink (no-op path)
  kArmed,    ///< open_span + close per event with a RingBufferSink attached
};

/// Self-rescheduling event chains, each event optionally opening and
/// closing a span — the shape of per-fetch instrumentation at dispatch
/// rate. Returns events processed.
std::uint64_t run_span_workload(sim::Simulator& sim, std::size_t chains, std::uint64_t events,
                                SpanMode mode) {
  std::uint64_t budget = events;
  struct Chain {
    sim::Simulator* sim;
    std::uint64_t* budget;
    sim::Duration step;
    SpanMode mode;
    std::uint64_t id;

    void fire() {
      if (*budget == 0) return;
      --*budget;
      if (mode != SpanMode::kNone) {
        obs::Span span = obs::open_span(*sim, obs::SpanCategory::kSim, "bench_event", id);
        span.close();
      }
      sim->schedule_after(step, [this] { fire(); });
    }
  };
  std::vector<Chain> drivers;
  drivers.reserve(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    const auto step = sim::Duration::micros(100 + 7 * static_cast<std::int64_t>(c % 13));
    drivers.push_back(Chain{&sim, &budget, step, mode, c});
  }
  for (auto& d : drivers) d.fire();
  sim.run();
  return events;
}

double measure_span_dispatch(std::uint64_t events, SpanMode mode, std::size_t ring_capacity) {
  return best_of(3, [events, mode, ring_capacity] {
    sim::Simulator sim;
    obs::ObsContext obs;
    sim.set_obs(&obs);
    std::unique_ptr<obs::RingBufferSink> sink;
    if (mode == SpanMode::kArmed) {
      sink = std::make_unique<obs::RingBufferSink>(ring_capacity);
      obs.trace().attach(sink.get());
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t n = run_span_workload(sim, 512, events, mode);
    const double s = wall_seconds_since(t0);
    if (sink) obs.trace().detach(sink.get());
    return static_cast<double>(n) / s;
  });
}

double measure_percentiles(std::uint64_t queries) {
  obs::MetricsRegistry reg;
  auto& hist = reg.histogram("bench.latency",
                             {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0});
  sim::Rng rng{42};
  for (int i = 0; i < 100'000; ++i) hist.observe(rng.uniform(0.0, 6.0));
  const auto snapshot = reg.snapshot();
  const auto& data = snapshot.histograms.begin()->second;
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (std::uint64_t q = 0; q < queries; ++q) {
    acc += data.percentile(0.50) + data.percentile(0.90) + data.percentile(0.99);
  }
  benchmark::DoNotOptimize(acc);
  const double s = wall_seconds_since(t0);
  return static_cast<double>(3 * queries) / s;
}

void print_reproduction() {
  bench::print_header("Observability microbench -- span layer overhead",
                      "perf guard for the tracing subsystem (no paper figure)");
  auto& telemetry = bench::RunTelemetry::instance();

  constexpr std::uint64_t kEvents = 600'000;
  const double bare = measure_span_dispatch(kEvents, SpanMode::kNone, 0);
  const double noop = measure_span_dispatch(kEvents, SpanMode::kNoSink, 0);
  const double armed = measure_span_dispatch(kEvents, SpanMode::kArmed, 4096);
  std::printf("dispatch chains with a span open/close per event (512 chains, %llu events, "
              "best of 3)\n",
              static_cast<unsigned long long>(kEvents));
  std::printf("  no instrumentation : %12.0f events/s\n", bare);
  std::printf("  span, no sink      : %12.0f events/s (%.1f%% of bare)\n", noop,
              100.0 * noop / bare);
  std::printf("  span, ring sink    : %12.0f events/s (SpanRecord emitted per event)\n", armed);
  telemetry.note_metric("span_noop_dispatch_events_per_sec", noop);
  telemetry.note_metric("span_noop_overhead_ratio", noop / bare);
  telemetry.note_metric("span_emit_events_per_sec", armed);

  constexpr std::uint64_t kQueries = 300'000;
  const double pcts = measure_percentiles(kQueries);
  std::printf("\nhistogram percentile interpolation: %.0f queries/s (9-bucket snapshot)\n", pcts);
  telemetry.note_metric("histogram_percentiles_per_sec", pcts);
}

// ---- google-benchmark sections ------------------------------------------

void BM_SpanNoSink(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    obs::ObsContext obs;
    sim.set_obs(&obs);
    benchmark::DoNotOptimize(run_span_workload(sim, 512, 20'000, SpanMode::kNoSink));
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
  state.SetLabel("open_span on an unobserved world: pointer loads + branch, no allocation");
}
BENCHMARK(BM_SpanNoSink)->Unit(benchmark::kMillisecond);

void BM_SpanRingSink(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    obs::ObsContext obs;
    sim.set_obs(&obs);
    obs::RingBufferSink sink{4096};
    obs.trace().attach(&sink);
    benchmark::DoNotOptimize(run_span_workload(sim, 512, 20'000, SpanMode::kArmed));
    obs.trace().detach(&sink);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
  state.SetLabel("SpanRecord emitted into a bounded ring per event");
}
BENCHMARK(BM_SpanRingSink)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("obs", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
