// Table 1 — Streaming strategies per (service x container x application).
//
// Runs one representative session per combination, classifies the trace
// with the paper's methodology and prints the matrix next to the paper's
// expected entries (Short / Long / No / Multiple / Not Applicable).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "support.hpp"
#include "video/datasets.hpp"

namespace {

using namespace vstream;
using bench::make_config;
using bench::run_and_analyze;
using streaming::Application;
using streaming::Service;
using video::Container;

struct Cell {
  Service service;
  Container container;
  Application application;
  const char* paper_says;
};

const std::vector<Cell>& matrix() {
  static const std::vector<Cell> kCells = {
      {Service::kYouTube, Container::kFlash, Application::kInternetExplorer, "Short"},
      {Service::kYouTube, Container::kFlash, Application::kFirefox, "Short"},
      {Service::kYouTube, Container::kFlash, Application::kChrome, "Short"},
      {Service::kYouTube, Container::kHtml5, Application::kInternetExplorer, "Short"},
      {Service::kYouTube, Container::kHtml5, Application::kFirefox, "No"},
      {Service::kYouTube, Container::kHtml5, Application::kChrome, "Long"},
      {Service::kYouTube, Container::kHtml5, Application::kIosNative, "Multiple"},
      {Service::kYouTube, Container::kHtml5, Application::kAndroidNative, "Long"},
      {Service::kYouTube, Container::kFlashHd, Application::kInternetExplorer, "No"},
      {Service::kYouTube, Container::kFlashHd, Application::kFirefox, "No"},
      {Service::kYouTube, Container::kFlashHd, Application::kChrome, "No"},
      {Service::kYouTube, Container::kFlash, Application::kIosNative, "N/A"},
      {Service::kNetflix, Container::kSilverlight, Application::kInternetExplorer, "Short"},
      {Service::kNetflix, Container::kSilverlight, Application::kFirefox, "Short"},
      {Service::kNetflix, Container::kSilverlight, Application::kChrome, "Short"},
      {Service::kNetflix, Container::kSilverlight, Application::kIosNative, "Short"},
      {Service::kNetflix, Container::kSilverlight, Application::kAndroidNative, "Long"},
  };
  return kCells;
}

video::VideoMeta video_for(const Cell& cell) {
  video::VideoMeta v;
  v.id = "t1";
  if (cell.service == Service::kNetflix) {
    v.duration_s = 3600.0;
    v.encoding_bps = video::netflix_rate_ladder().back();
    v.container = Container::kSilverlight;
    v.available_rates_bps = video::netflix_rate_ladder();
  } else {
    v.duration_s = 600.0;
    v.encoding_bps = cell.container == Container::kFlashHd ? 3e6 : 1.2e6;
    v.container = cell.container;
  }
  return v;
}

void print_reproduction() {
  bench::print_header("Table 1 -- streaming strategy matrix",
                      "Rao et al., CoNEXT 2011, Table 1");
  std::printf("%-8s %-11s %-8s | %-8s %-10s %8s %7s %6s\n", "service", "container", "app",
              "paper", "measured", "blk[kB]", "cycles", "conns");
  std::printf("----------------------------------------------------------------------\n");
  int mismatches = 0;
  for (const auto& cell : matrix()) {
    if (!streaming::combination_supported(cell.service, cell.container, cell.application)) {
      std::printf("%-8s %-11s %-8s | %-8s %-10s\n", to_string(cell.service).c_str(),
                  video::to_string(cell.container).c_str(),
                  to_string(cell.application).c_str(), cell.paper_says, "N/A");
      continue;
    }
    const auto cfg = make_config(cell.service, cell.container, cell.application,
                                 net::Vantage::kResearch, video_for(cell), 2024);
    const auto outcome = run_and_analyze(cfg);
    const std::string measured = analysis::to_string(outcome.decision.strategy);
    const bool match = measured == cell.paper_says;
    if (!match) ++mismatches;
    std::printf("%-8s %-11s %-8s | %-8s %-10s %8.0f %7zu %6zu %s\n",
                to_string(cell.service).c_str(), video::to_string(cell.container).c_str(),
                to_string(cell.application).c_str(), cell.paper_says, measured.c_str(),
                outcome.decision.median_block_bytes / 1024.0, outcome.decision.cycles,
                outcome.decision.connections, match ? "" : "  << MISMATCH");
  }
  std::printf("----------------------------------------------------------------------\n");
  std::printf("mismatches vs paper: %d / %zu applicable cells\n", mismatches,
              matrix().size() - 1);
}

void BM_ClassifyOneSession(benchmark::State& state) {
  const auto& cell = matrix()[static_cast<std::size_t>(state.range(0))];
  const auto cfg = make_config(cell.service, cell.container, cell.application,
                               net::Vantage::kResearch, video_for(cell), 2024);
  for (auto _ : state) {
    auto outcome = run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.decision.strategy);
  }
  state.SetLabel(to_string(cell.service) + "/" + video::to_string(cell.container) + "/" +
                 to_string(cell.application));
}
BENCHMARK(BM_ClassifyOneSession)->Arg(0)->Arg(3)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("table1_strategy_matrix", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
