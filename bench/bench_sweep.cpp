// Sweep-scaling microbench — the perf trajectory for the parallel sweep
// engine's near-linear-scaling claim.
//
// Sections:
//   1. materialized sweep wall time at 1/2/4 workers (run_sessions:
//      per-worker arenas, chunked claiming, padded staging) — the source of
//      the sweep_speedup_* / sweep_efficiency_4_workers floor metrics;
//   2. streamed sweep (runner/session_sweep.hpp) at the same widths, plus
//      the serial-vs-parallel digest invariance check the floor gates as a
//      correctness metric (streamed_digest_invariant must be 1);
//   3. per-worker arena behaviour across recycled sessions: high-water,
//      steady-state chunk count, allocation counts;
//   4. chunked fan-out dispatch overhead on trivial tasks (map staging +
//      splice vs raw for_each_chunk).
//
// `--metrics-out` writes BENCH_sweep.json; tools/check_bench_floor.py
// compares against bench/sweep_floor.json in the CI perf-smoke job. The
// speedup floors assume >=4 hardware threads (the CI runner shape);
// sweep_efficiency_4_workers is normalized by min(4, hw) so the number is
// comparable on narrower dev boxes even though the floor gates CI only.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "runner/parallel_sweep.hpp"
#include "runner/session_sweep.hpp"
#include "sim/arena.hpp"
#include "streaming/session_builder.hpp"
#include "support.hpp"
#include "video/datasets.hpp"

namespace {

using namespace vstream;

[[nodiscard]] double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::vector<streaming::SessionConfig> sweep_configs(std::size_t count, double capture_s) {
  sim::Rng rng{505};
  const auto ds = video::make_dataset(video::DatasetId::kYouFlash, rng, count);
  std::vector<streaming::SessionConfig> configs;
  configs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    configs.push_back(
        streaming::SessionBuilder{bench::make_config(
                                      streaming::Service::kYouTube, video::Container::kFlash,
                                      streaming::Application::kFirefox, net::Vantage::kResearch,
                                      ds.videos[i], 11000 + i)}
            .capture_duration_s(capture_s)
            .store_trace(false)  // scaling is about the worlds, not result memory
            .build());
  }
  return configs;
}

double time_materialized(const std::vector<streaming::SessionConfig>& configs, std::size_t jobs) {
  const runner::ParallelSweep pool{jobs};
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = pool.run_sessions(configs);
  benchmark::DoNotOptimize(results.size());
  return wall_seconds_since(t0);
}

double time_streamed(const std::vector<streaming::SessionConfig>& configs, std::size_t jobs,
                     runner::SweepAccumulator* out = nullptr) {
  const runner::ParallelSweep pool{jobs};
  const auto t0 = std::chrono::steady_clock::now();
  const auto acc = runner::run_sessions_streamed(pool, configs);
  const double s = wall_seconds_since(t0);
  benchmark::DoNotOptimize(acc.sessions);
  if (out != nullptr) *out = acc;
  return s;
}

void print_reproduction() {
  bench::print_header("Sweep scaling -- per-worker arenas + chunked hand-off",
                      "perf trajectory baseline (no paper figure)");
  auto& telemetry = bench::RunTelemetry::instance();

  const std::size_t hw = runner::job_count();
  telemetry.note_metric("hw_threads", static_cast<double>(hw));
  const double ideal4 = static_cast<double>(std::min<std::size_t>(4, hw));

  // 1. materialized sweep scaling --------------------------------------
  // 64 sessions x 180 s keeps each timed sweep around a second or more
  // in Release, so the gated efficiency number rides a measurement long
  // enough that scheduler jitter on a shared CI runner stays in the noise.
  const auto configs = sweep_configs(64, 180.0);
  const double m1 = time_materialized(configs, 1);
  const double m2 = time_materialized(configs, 2);
  const double m4 = time_materialized(configs, 4);
  std::printf("materialized sweep (%zu sessions x 180 s capture, %zu hw threads)\n", configs.size(),
              hw);
  std::printf("  1 worker : %7.2f s\n", m1);
  std::printf("  2 workers: %7.2f s  speedup %.2fx\n", m2, m1 / m2);
  std::printf("  4 workers: %7.2f s  speedup %.2fx (%.0f%% of ideal %.0fx)\n", m4, m1 / m4,
              100.0 * (m1 / m4) / ideal4, ideal4);
  telemetry.note_metric("sweep_speedup_2_workers", m1 / m2);
  telemetry.note_metric("sweep_speedup_4_workers", m1 / m4);
  telemetry.note_metric("sweep_efficiency_4_workers", (m1 / m4) / ideal4);
  telemetry.note_metric("sweep_sessions_per_sec_4_workers",
                        static_cast<double>(configs.size()) / m4);

  // 2. streamed sweep + digest invariance ------------------------------
  runner::SweepAccumulator streamed_serial;
  runner::SweepAccumulator streamed_parallel;
  const double s1 = time_streamed(configs, 1, &streamed_serial);
  const double s4 = time_streamed(configs, 4, &streamed_parallel);
  const bool invariant = streamed_serial.digest == streamed_parallel.digest &&
                         streamed_serial.bytes_downloaded == streamed_parallel.bytes_downloaded;
  std::printf("\nstreamed sweep (O(workers) memory, session_sweep.hpp)\n");
  std::printf("  1 worker : %7.2f s\n", s1);
  std::printf("  4 workers: %7.2f s  speedup %.2fx\n", s4, s1 / s4);
  std::printf("  digest   : serial %016llx / parallel %016llx %s\n",
              static_cast<unsigned long long>(streamed_serial.digest.combined),
              static_cast<unsigned long long>(streamed_parallel.digest.combined),
              invariant ? "ok" : "DIVERGED");
  telemetry.note_metric("streamed_speedup_4_workers", s1 / s4);
  telemetry.note_metric("streamed_vs_materialized_4_workers", m4 / s4);
  telemetry.note_metric("streamed_digest_invariant", invariant ? 1.0 : 0.0);

  // 3. per-worker arena behaviour --------------------------------------
  {
    sim::ArenaResource arena;
    streaming::SessionConfig cfg = configs.front();
    cfg.arena = &arena;
    for (int round = 0; round < 3; ++round) {
      arena.reset();
      const auto result = streaming::run_session(cfg);
      benchmark::DoNotOptimize(result.sim_events);
    }
    std::printf("\nper-worker arena across 3 recycled sessions:\n");
    std::printf("  high water %zu bytes, %zu chunk(s) steady state, %llu allocations, %llu resets\n",
                arena.high_water_bytes(), arena.chunk_count(),
                static_cast<unsigned long long>(arena.allocations()),
                static_cast<unsigned long long>(arena.resets()));
    telemetry.note_metric("arena_high_water_bytes", static_cast<double>(arena.high_water_bytes()));
    telemetry.note_metric("arena_steady_chunks", static_cast<double>(arena.chunk_count()));
  }

  // 4. chunked dispatch overhead on trivial tasks ----------------------
  {
    const runner::ParallelSweep pool{4};
    constexpr std::size_t kTrivial = 200'000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto mapped = pool.map<std::size_t>(kTrivial, [](std::size_t i) { return i; });
    const double map_s = wall_seconds_since(t0);
    benchmark::DoNotOptimize(mapped.size());
    const double map_rate = static_cast<double>(kTrivial) / map_s;
    std::printf("\ntrivial-task dispatch: map+splice %.0f items/s at 4 workers\n", map_rate);
    telemetry.note_metric("map_items_per_sec_4_workers", map_rate);
  }

  // Fold a real analysed sweep into the telemetry aggregate so the JSON
  // carries sessions / sim_events / merged metrics like every other bench.
  const auto outcomes = bench::run_and_analyze_all(sweep_configs(4, 15.0));
  std::printf("\ntelemetry sweep: %zu sessions analysed (VSTREAM_JOBS=%zu)\n", outcomes.size(),
              runner::job_count());
}

// ---- google-benchmark sections ------------------------------------------

void BM_MaterializedSweep(benchmark::State& state) {
  const auto configs = sweep_configs(4, 5.0);
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const runner::ParallelSweep pool{jobs};
    benchmark::DoNotOptimize(pool.run_sessions(configs).size());
  }
  state.SetLabel("4 sessions x 5 s capture, submission-order results");
}
BENCHMARK(BM_MaterializedSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_StreamedSweep(benchmark::State& state) {
  const auto configs = sweep_configs(4, 5.0);
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const runner::ParallelSweep pool{jobs};
    benchmark::DoNotOptimize(runner::run_sessions_streamed(pool, configs).sessions);
  }
  state.SetLabel("4 sessions x 5 s capture, O(workers) accumulators");
}
BENCHMARK(BM_StreamedSweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_MapTrivialStaging(benchmark::State& state) {
  const runner::ParallelSweep pool{static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.map<std::size_t>(100'000, [](std::size_t i) { return i; }).size());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
  state.SetLabel("chunked claim + padded staging + k-way splice, trivial body");
}
BENCHMARK(BM_MapTrivialStaging)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_ArenaRecycledSession(benchmark::State& state) {
  const auto configs = sweep_configs(1, 5.0);
  sim::ArenaResource arena;
  streaming::SessionConfig cfg = configs.front();
  cfg.arena = &arena;
  for (auto _ : state) {
    arena.reset();
    benchmark::DoNotOptimize(streaming::run_session(cfg).sim_events);
  }
  state.SetLabel("one world per iteration on a recycled arena");
}
BENCHMARK(BM_ArenaRecycledSession)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("sweep", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
