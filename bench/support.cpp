#include "support.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "streaming/session_builder.hpp"

namespace vstream::bench {
namespace {

std::string sanitize_for_filename(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

}  // namespace

std::string csv_dir() {
  if (const char* env = std::getenv("VSTREAM_BENCH_CSV_DIR")) return env;
  return {};
}

std::size_t sessions_per_sweep() {
  if (const char* env = std::getenv("VSTREAM_BENCH_SESSIONS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 30;
}

namespace {

SessionOutcome analyze_only(const streaming::SessionConfig& config) {
  SessionOutcome out;
  out.result = streaming::run_session(config);
  out.analysis = analysis::analyze_on_off(out.result.trace);
  out.decision = analysis::classify_strategy(out.analysis, out.result.trace);
  return out;
}

}  // namespace

SessionOutcome run_and_analyze(const streaming::SessionConfig& config) {
  SessionOutcome out = analyze_only(config);
  RunTelemetry::instance().record(out);
  return out;
}

std::vector<SessionOutcome> run_and_analyze_all(
    const std::vector<streaming::SessionConfig>& configs) {
  const runner::ParallelSweep pool;
  std::vector<SessionOutcome> out;
  if (pool.jobs() <= 1 || configs.size() <= 1) {
    out.reserve(configs.size());
    for (const auto& cfg : configs) out.push_back(run_and_analyze(cfg));
    return out;
  }
  // Workers touch no shared state (each session is its own world); the
  // RunTelemetry singleton is not thread-safe, so the fold happens here,
  // serially, in submission order — same aggregate as the serial path.
  // Each worker times its own run/analyze phases against the profiler —
  // distinct cache-line-padded cells, no synchronization on the hot path.
  runner::SweepProfiler profiler{pool.jobs()};
  out = pool.map<SessionOutcome>(configs.size(), [&configs, &profiler](std::size_t i) {
    const std::size_t worker = runner::ParallelSweep::current_worker();
    SessionOutcome o;
    {
      const runner::SweepProfiler::Scope run_scope{&profiler, worker, runner::SweepPhase::kRun};
      o.result = streaming::run_session(configs[i]);
    }
    const runner::SweepProfiler::Scope analyze_scope{&profiler, worker,
                                                     runner::SweepPhase::kAnalyze};
    o.analysis = analysis::analyze_on_off(o.result.trace);
    o.decision = analysis::classify_strategy(o.analysis, o.result.trace);
    return o;
  });
  {
    const runner::SweepProfiler::Scope merge_scope{&profiler, 0, runner::SweepPhase::kMerge};
    for (const auto& outcome : out) RunTelemetry::instance().record(outcome);
  }
  RunTelemetry::instance().record_sweep(profiler.summary());
  return out;
}

streaming::SessionConfig make_config(streaming::Service service, video::Container container,
                                     streaming::Application application, net::Vantage vantage,
                                     const video::VideoMeta& video, std::uint64_t seed) {
  return streaming::SessionBuilder{}
      .service(service)
      .container(container)
      .application(application)
      .vantage(vantage)
      .video(video)
      .capture_duration_s(kCaptureSeconds)
      .seed(seed)
      .build();
}

std::vector<SessionOutcome> sweep(streaming::Service service, video::Container container,
                                  streaming::Application application, net::Vantage vantage,
                                  video::DatasetId dataset, std::size_t count,
                                  std::uint64_t seed) {
  sim::Rng rng{seed};
  const auto ds = video::make_dataset(dataset, rng, count);
  std::vector<streaming::SessionConfig> configs;
  configs.reserve(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    configs.push_back(
        make_config(service, container, application, vantage, ds.videos[i], seed + 1000 + i));
  }
  return run_and_analyze_all(configs);
}

void print_header(const std::string& title, const std::string& paper_reference) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_reference.c_str());
  std::printf("================================================================\n");
}

namespace {
constexpr double kQuantiles[] = {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95};
}

void print_cdf(const std::string& label, const stats::EmpiricalCdf& cdf, const std::string& unit,
               double scale) {
  std::printf("%-28s (n=%zu, %s)\n", label.c_str(), cdf.size(), unit.c_str());
  if (cdf.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  for (const double q : kQuantiles) {
    std::printf("  F(x)=%.2f  x=%12.4g\n", q, cdf.inverse(q) * scale);
  }
}

void print_cdf_table(const std::vector<std::pair<std::string, stats::EmpiricalCdf>>& cdfs,
                     const std::string& unit, double scale) {
  if (const auto dir = csv_dir(); !dir.empty()) {
    for (const auto& [label, cdf] : cdfs) {
      if (cdf.empty()) continue;
      std::ofstream out{dir + "/cdf_" + sanitize_for_filename(label) + ".csv"};
      out << "x_" << unit << ",F\n";
      for (const auto& pt : cdf.points()) out << pt.x * scale << ',' << pt.f << '\n';
    }
  }
  std::printf("%10s", ("x [" + unit + "]").c_str());
  for (const auto& [label, cdf] : cdfs) std::printf("  %14s", label.c_str());
  std::printf("\n");
  for (const double q : kQuantiles) {
    std::printf("  F=%5.2f ", q);
    for (const auto& [label, cdf] : cdfs) {
      if (cdf.empty()) {
        std::printf("  %14s", "-");
      } else {
        std::printf("  %14.4g", cdf.inverse(q) * scale);
      }
    }
    std::printf("\n");
  }
}

void print_download_curve(const std::string& label, capture::TraceView trace, double t_max_s,
                          double step_s) {
  const auto curve = trace.download_curve();
  if (const auto dir = csv_dir(); !dir.empty()) {
    std::ofstream out{dir + "/curve_" + sanitize_for_filename(label) + ".csv"};
    out << "t_s,bytes\n";
    for (const auto& pt : curve) {
      if (pt.t_s <= t_max_s) out << pt.t_s << ',' << pt.bytes << '\n';
    }
  }
  std::printf("%s: download amount over time\n", label.c_str());
  std::printf("  %8s %12s\n", "t [s]", "MB");
  std::size_t i = 0;
  for (double t = step_s; t <= t_max_s + 1e-9; t += step_s) {
    std::uint64_t bytes = 0;
    while (i < curve.size() && curve[i].t_s <= t) bytes = curve[i++].bytes;
    if (i > 0) bytes = curve[i - 1].bytes;
    if (!curve.empty() && curve[0].t_s > t) bytes = 0;
    std::printf("  %8.1f %12.3f\n", t, static_cast<double>(bytes) / 1048576.0);
  }
}

void print_window_summary(const std::string& label, capture::TraceView trace) {
  const auto series = trace.receive_window_series();
  if (series.empty()) {
    std::printf("%s: no window samples\n", label.c_str());
    return;
  }
  std::uint64_t min_w = series.front().window_bytes;
  std::uint64_t max_w = min_w;
  for (const auto& p : series) {
    min_w = std::min(min_w, p.window_bytes);
    max_w = std::max(max_w, p.window_bytes);
  }
  const std::size_t zero_episodes = analysis::count_zero_window_episodes(trace);
  std::printf("%s: receive window min=%llu kB max=%llu kB zero-window episodes=%zu\n",
              label.c_str(), static_cast<unsigned long long>(min_w / 1024),
              static_cast<unsigned long long>(max_w / 1024), zero_episodes);
}

// ---- RunTelemetry --------------------------------------------------------

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return std::nan("");
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  return v[mid];
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

}  // namespace

RunTelemetry& RunTelemetry::instance() {
  static RunTelemetry telemetry;
  return telemetry;
}

void RunTelemetry::init(const std::string& name, int* argc, char** argv) {
  name_ = name;
  start_ = std::chrono::steady_clock::now();

  // Strip `--metrics-out [path]` / `--metrics-out=path` before
  // google-benchmark rejects the unknown flag.
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--metrics-out") == 0) {
      if (i + 1 < *argc && argv[i + 1][0] != '-') {
        out_path_ = argv[++i];
      } else {
        out_path_ = "BENCH_" + name_ + ".json";
      }
      continue;
    }
    if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      out_path_ = arg + 14;
      if (out_path_.empty()) out_path_ = "BENCH_" + name_ + ".json";
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
}

void RunTelemetry::record(const SessionOutcome& outcome) {
  if (!enabled()) return;
  ++sessions_;
  sim_time_s_ += outcome.result.trace.duration_s;
  sim_events_ += outcome.result.sim_events;
  sim_max_events_pending_ = std::max(sim_max_events_pending_, outcome.result.sim_max_events_pending);
  block_sizes_bytes_.insert(block_sizes_bytes_.end(), outcome.analysis.block_sizes_bytes.begin(),
                            outcome.analysis.block_sizes_bytes.end());
  if (outcome.analysis.has_steady_state()) {
    accumulation_ratios_.push_back(
        outcome.analysis.accumulation_ratio(outcome.result.encoding_bps_true));
  }
  merged_.merge_from(outcome.result.metrics);
}

void RunTelemetry::record_sweep(const runner::SweepProfiler::Summary& summary) {
  if (!enabled()) return;
  sweep_wall_s_ += summary.wall_s;
  sweep_busy_s_ += summary.busy_s();
  sweep_capacity_s_ += summary.wall_s * static_cast<double>(summary.workers);
  sweep_tasks_ += summary.tasks();
  sweep_workers_ = std::max(sweep_workers_, summary.workers);
}

void RunTelemetry::note_metric(const std::string& name, double value) {
  if (!enabled()) return;
  extra_[name] = value;
}

void RunTelemetry::finalize() {
  if (!enabled()) return;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();

  std::string out;
  out += "{\"bench\":\"" + name_ + "\"";
  out += ",\"wall_time_s\":";
  append_json_number(out, wall_s);
  out += ",\"sessions\":" + std::to_string(sessions_);
  out += ",\"sim_time_s\":";
  append_json_number(out, sim_time_s_);
  out += ",\"sim_events\":" + std::to_string(sim_events_);
  out += ",\"events_per_sec\":";
  append_json_number(out, wall_s > 0.0 ? static_cast<double>(sim_events_) / wall_s
                                       : std::nan(""));
  out += ",\"sim_max_events_pending\":" + std::to_string(sim_max_events_pending_);
  out += ",\"median_block_kb\":";
  append_json_number(out, median_of(block_sizes_bytes_) / 1024.0);
  out += ",\"median_accumulation_ratio\":";
  append_json_number(out, median_of(accumulation_ratios_));
  if (sweep_capacity_s_ > 0.0) {
    extra_["sweep_wall_s"] = sweep_wall_s_;
    extra_["sweep_busy_s"] = sweep_busy_s_;
    extra_["sweep_tasks"] = static_cast<double>(sweep_tasks_);
    extra_["sweep_workers"] = static_cast<double>(sweep_workers_);
    extra_["sweep_utilization"] = sweep_busy_s_ / sweep_capacity_s_;
  }
  out += ",\"extra\":{";
  bool first = true;
  for (const auto& [k, v] : extra_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + k + "\":";
    append_json_number(out, v);
  }
  out += "}";
  out += ",\"metrics\":" + merged_.to_json();
  out += "}\n";

  std::ofstream file{out_path_};
  if (!file) {
    std::fprintf(stderr, "RunTelemetry: cannot write %s\n", out_path_.c_str());
    return;
  }
  file << out;
  std::printf("\n[telemetry] wrote %s (%zu sessions, %.1f s wall)\n", out_path_.c_str(),
              sessions_, wall_s);
}

}  // namespace vstream::bench
