// Engine microbench — the perf trajectory baseline for the event core and
// the parallel sweep engine.
//
// Sections:
//   1. schedule/dispatch throughput on the slot-pool arena vs a faithful
//      re-implementation of the pre-arena hot path (shared_ptr cancellation
//      flag + std::function callback + full-Event copy out of
//      priority_queue::top()), which is what the >=3x acceptance bar and
//      the CI regression floor are measured against;
//   2. schedule+cancel churn (timer-heavy TCP workloads re-arm constantly);
//   3. TcpSegment fan-out: copying SACK-bearing segments through a tap
//      chain, now a flat memcpy instead of a heap round trip per hop;
//   4. serial-vs-parallel sweep scaling through runner::ParallelSweep.
//
// `--metrics-out` writes BENCH_engine.json; tools/check_bench_floor.py
// compares extra.dispatch_events_per_sec against bench/engine_floor.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "net/segment.hpp"
#include "runner/parallel_sweep.hpp"
#include "sim/simulator.hpp"
#include "streaming/session_builder.hpp"
#include "support.hpp"

namespace {

using namespace vstream;

// ---- the pre-arena event loop, preserved as the measurement baseline -----

/// Faithful copy of the seed Simulator's hot path: one shared_ptr<bool> and
/// one std::function heap allocation per event, and dispatch copies the
/// whole Event (closure included) out of priority_queue::top().
class LegacyEngine {
 public:
  struct Event {
    sim::SimTime at;
    std::uint64_t seq{0};
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  using Handle = std::shared_ptr<bool>;

  std::shared_ptr<bool> schedule_at(sim::SimTime at, std::function<void()> fn) {
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{at, next_seq_++, std::move(fn), cancelled});
    return cancelled;
  }
  std::shared_ptr<bool> schedule_after(sim::Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();  // the copy the arena engine eliminated
      queue_.pop();
      if (*ev.cancelled) continue;
      now_ = ev.at;
      ev.fn();
      return true;
    }
    return false;
  }
  std::uint64_t run() {
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
  }
  [[nodiscard]] sim::SimTime now() const { return now_; }

 private:
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  sim::SimTime now_{sim::SimTime::zero()};
  std::uint64_t next_seq_{0};
};

// ---- workloads -----------------------------------------------------------

/// The seed's TcpSegment shape: the SACK option lived in a heap-allocated
/// vector, so every copy across a link / tap / closure was an allocator
/// round trip. The legacy chain workload carries this so the baseline is
/// faithful to the pre-change simulator end to end.
struct LegacySegment {
  std::uint64_t connection_id{0};
  std::uint64_t seq{0};
  std::uint64_t ack{0};
  std::uint32_t payload_bytes{0};
  std::uint64_t window_bytes{0};
  std::uint8_t flags{0};
  bool is_retransmission{false};
  std::uint8_t host{0};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sack;
};

void cancel_handle(sim::EventHandle& h) { h.cancel(); }
void cancel_handle(std::shared_ptr<bool>& h) {
  // Seed-style cancellation: flip the flag; the dead Event stays in the
  // queue until the dispatch loop pops (and deep-copies) it.
  if (h) *h = true;
}

/// Self-rescheduling delivery chains modeled on the simulator's real event
/// mix: every dispatched event carries a segment-sized payload in its
/// closure (`Link`'s [this, segment, lost] delivery events). With `churn`
/// set, every event additionally cancels and re-arms a retransmission
/// timer that almost never fires, like `tcp::Endpoint` on every ACK — the
/// dead timer's key/tombstone then travels through the queue. RTO and
/// pacing-style per-chain periods keep the heap genuinely shuffled.
template <typename Engine, typename Segment>
struct Chain {
  Engine* eng;
  std::uint64_t* budget;
  sim::Duration step;
  sim::Duration rto_delay;
  bool churn{false};
  Segment seg;
  typename Engine::Handle rto{};

  void fire() {
    if (*budget == 0) return;
    --*budget;
    if (churn) {
      cancel_handle(rto);
      rto = eng->schedule_after(rto_delay, [] {});
    }
    eng->schedule_after(step, [this, s = seg] {
      benchmark::DoNotOptimize(s.seq);
      fire();
    });
  }
};

template <typename Segment>
Segment make_chain_payload() {
  Segment seg;
  seg.connection_id = 7;
  seg.seq = 1'000'000;
  seg.ack = 900'000;
  seg.payload_bytes = 1448;
  seg.window_bytes = 262'144;
  seg.sack.emplace_back(1'200'000, 1'300'000);
  seg.sack.emplace_back(1'400'000, 1'450'000);
  return seg;
}

template <typename Engine, typename Segment>
std::uint64_t run_chain_workload(Engine& eng, std::size_t chains, std::uint64_t events,
                                 bool churn = false) {
  std::uint64_t budget = events;
  std::vector<Chain<Engine, Segment>> drivers;
  drivers.reserve(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    const auto step = sim::Duration::micros(100 + 7 * static_cast<std::int64_t>(c % 13));
    const auto rto = sim::Duration::micros(8 * (100 + 7 * static_cast<std::int64_t>(c % 13)));
    drivers.push_back(
        Chain<Engine, Segment>{&eng, &budget, step, rto, churn, make_chain_payload<Segment>()});
  }
  for (auto& d : drivers) d.fire();
  return eng.run();
}

[[nodiscard]] double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Best throughput over `reps` runs: wall-clock measures on a shared/busy
/// host are one-sided (interference only ever slows a run down), so the max
/// is the closest observable to the machine's true rate.
template <typename Fn>
double best_of(int reps, Fn&& measure_once) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) best = std::max(best, measure_once());
  return best;
}

template <typename Engine, typename Segment>
double measure_dispatch(std::uint64_t events, bool churn) {
  return best_of(3, [events, churn] {
    Engine eng;
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t n = run_chain_workload<Engine, Segment>(eng, 512, events, churn);
    const double s = wall_seconds_since(t0);
    return static_cast<double>(n) / s;
  });
}

template <typename Engine>
double measure_schedule_cancel(std::uint64_t rounds) {
  return best_of(3, [rounds] {
    Engine eng;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t kept = 0;
    for (std::uint64_t r = 0; r < rounds; ++r) {
      // Re-arm pattern: schedule a timer, cancel it, arm the replacement —
      // what every retransmit/delack path does per segment.
      auto h = eng.schedule_after(sim::Duration::millis(200), [&kept] { ++kept; });
      cancel_handle(h);
      eng.schedule_after(sim::Duration::micros(10), [&kept] { ++kept; });
      eng.run();
    }
    const double s = wall_seconds_since(t0);
    return static_cast<double>(rounds) / s;
  });
}

net::TcpSegment make_sacked_segment() {
  net::TcpSegment seg;
  seg.connection_id = 7;
  seg.seq = 1'000'000;
  seg.ack = 900'000;
  seg.payload_bytes = 1448;
  seg.window_bytes = 262'144;
  seg.flags = net::TcpFlag::kAck | net::TcpFlag::kPsh;
  seg.sack.emplace_back(1'200'000, 1'300'000);
  seg.sack.emplace_back(1'400'000, 1'450'000);
  seg.sack.emplace_back(1'500'000, 1'520'000);
  return seg;
}

double measure_segment_fanout(std::uint64_t copies) {
  // Link -> capture tap -> recorder: each hop takes its own copy.
  const net::TcpSegment seg = make_sacked_segment();
  std::vector<net::TcpSegment> tap;
  tap.reserve(1024);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  while (done < copies) {
    tap.clear();
    for (int i = 0; i < 1024; ++i) tap.push_back(seg);
    benchmark::DoNotOptimize(tap.data());
    done += 1024;
  }
  const double s = wall_seconds_since(t0);
  return static_cast<double>(done) / s;
}

std::vector<streaming::SessionConfig> sweep_configs(std::size_t count, double capture_s) {
  sim::Rng rng{404};
  const auto ds = video::make_dataset(video::DatasetId::kYouFlash, rng, count);
  std::vector<streaming::SessionConfig> configs;
  configs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    configs.push_back(
        streaming::SessionBuilder{bench::make_config(
                                      streaming::Service::kYouTube, video::Container::kFlash,
                                      streaming::Application::kFirefox, net::Vantage::kResearch,
                                      ds.videos[i], 9000 + i)}
            .capture_duration_s(capture_s)
            .build());
  }
  return configs;
}

double time_sweep(const std::vector<streaming::SessionConfig>& configs, std::size_t jobs) {
  const runner::ParallelSweep pool{jobs};
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = pool.run_sessions(configs);
  benchmark::DoNotOptimize(results.size());
  return wall_seconds_since(t0);
}

// ---- report --------------------------------------------------------------

void print_reproduction() {
  bench::print_header("Engine microbench -- event arena + parallel sweep",
                      "perf trajectory baseline (no paper figure)");
  auto& telemetry = bench::RunTelemetry::instance();

  constexpr std::uint64_t kDispatchEvents = 600'000;
  const double arena = measure_dispatch<sim::Simulator, net::TcpSegment>(kDispatchEvents, false);
  const double legacy = measure_dispatch<LegacyEngine, LegacySegment>(kDispatchEvents, false);
  std::printf("schedule+dispatch, segment-carrying closures (512 chains, %llu events, best of 3)\n",
              static_cast<unsigned long long>(kDispatchEvents));
  std::printf("  arena engine  : %12.0f events/s\n", arena);
  std::printf("  legacy engine : %12.0f events/s (seed hot path: shared_ptr + "
              "std::function + top() copy)\n", legacy);
  std::printf("  speedup       : %.2fx\n", arena / legacy);
  telemetry.note_metric("dispatch_events_per_sec", arena);
  telemetry.note_metric("legacy_dispatch_events_per_sec", legacy);
  telemetry.note_metric("dispatch_speedup_vs_legacy", arena / legacy);

  const double arena_churn = measure_dispatch<sim::Simulator, net::TcpSegment>(kDispatchEvents, true);
  const double legacy_churn = measure_dispatch<LegacyEngine, LegacySegment>(kDispatchEvents, true);
  std::printf("\nschedule+dispatch with per-event timer churn (cancel + re-arm, as tcp::Endpoint)\n");
  std::printf("  arena engine  : %12.0f events/s\n", arena_churn);
  std::printf("  legacy engine : %12.0f events/s\n", legacy_churn);
  std::printf("  speedup       : %.2fx\n", arena_churn / legacy_churn);
  telemetry.note_metric("churn_dispatch_events_per_sec", arena_churn);
  telemetry.note_metric("churn_dispatch_speedup_vs_legacy", arena_churn / legacy_churn);

  constexpr std::uint64_t kCancelRounds = 200'000;
  const double cancel = measure_schedule_cancel<sim::Simulator>(kCancelRounds);
  const double legacy_cancel = measure_schedule_cancel<LegacyEngine>(kCancelRounds);
  std::printf("\nschedule+cancel+rearm\n");
  std::printf("  arena engine  : %12.0f rounds/s (generation bump, no allocation)\n", cancel);
  std::printf("  legacy engine : %12.0f rounds/s (shared_ptr flag + queue tombstone)\n",
              legacy_cancel);
  std::printf("  speedup       : %.2fx\n", cancel / legacy_cancel);
  telemetry.note_metric("schedule_cancel_rounds_per_sec", cancel);
  telemetry.note_metric("schedule_cancel_speedup_vs_legacy", cancel / legacy_cancel);

  constexpr std::uint64_t kCopies = 4'000'000;
  const double fanout = measure_segment_fanout(kCopies);
  std::printf("SACK-bearing segment fan-out: %.0f copies/s (%zu-byte flat segment)\n", fanout,
              sizeof(net::TcpSegment));
  telemetry.note_metric("segment_copies_per_sec", fanout);

  const std::size_t hw = runner::job_count();
  const auto configs = sweep_configs(8, 15.0);
  const double t1 = time_sweep(configs, 1);
  const double t2 = time_sweep(configs, 2);
  const double t4 = time_sweep(configs, 4);
  const double ideal4 = static_cast<double>(std::min<std::size_t>(4, hw));
  std::printf("\nsweep scaling (%zu sessions x %.0f s capture, %zu hw threads)\n",
              configs.size(), 15.0, hw);
  std::printf("  1 worker : %7.2f s\n", t1);
  std::printf("  2 workers: %7.2f s  speedup %.2fx\n", t2, t1 / t2);
  std::printf("  4 workers: %7.2f s  speedup %.2fx (%.0f%% of ideal %.0fx)\n", t4, t1 / t4,
              100.0 * (t1 / t4) / ideal4, ideal4);
  telemetry.note_metric("sweep_speedup_2_workers", t1 / t2);
  telemetry.note_metric("sweep_speedup_4_workers", t1 / t4);
  telemetry.note_metric("sweep_efficiency_4_workers", (t1 / t4) / ideal4);

  // Fold a real analysed sweep into the telemetry aggregate so the JSON
  // carries sessions / sim_events / merged metrics like every other bench.
  const auto outcomes = bench::run_and_analyze_all(sweep_configs(4, 15.0));
  std::printf("\ntelemetry sweep: %zu sessions analysed (VSTREAM_JOBS=%zu)\n", outcomes.size(),
              runner::job_count());
}

// ---- google-benchmark sections ------------------------------------------

void BM_ArenaScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    benchmark::DoNotOptimize(run_chain_workload<sim::Simulator, net::TcpSegment>(sim, 512, 20'000));
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
  state.SetLabel("slot-pool arena, SBO callbacks, inline-SACK segments");
}
BENCHMARK(BM_ArenaScheduleDispatch)->Unit(benchmark::kMillisecond);

void BM_LegacyScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    LegacyEngine eng;
    benchmark::DoNotOptimize(run_chain_workload<LegacyEngine, LegacySegment>(eng, 512, 20'000));
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
  state.SetLabel("seed hot path: shared_ptr + std::function + top() copy + vector SACK");
}
BENCHMARK(BM_LegacyScheduleDispatch)->Unit(benchmark::kMillisecond);

void BM_ArenaChurnDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    benchmark::DoNotOptimize(
        run_chain_workload<sim::Simulator, net::TcpSegment>(sim, 512, 20'000, true));
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
  state.SetLabel("delivery + cancel/re-arm timer churn per event");
}
BENCHMARK(BM_ArenaChurnDispatch)->Unit(benchmark::kMillisecond);

void BM_LegacyChurnDispatch(benchmark::State& state) {
  for (auto _ : state) {
    LegacyEngine eng;
    benchmark::DoNotOptimize(
        run_chain_workload<LegacyEngine, LegacySegment>(eng, 512, 20'000, true));
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
  state.SetLabel("delivery + cancel/re-arm timer churn per event");
}
BENCHMARK(BM_LegacyChurnDispatch)->Unit(benchmark::kMillisecond);

template <typename Engine>
void BM_ScheduleCancelRearm(benchmark::State& state) {
  Engine eng;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    auto h = eng.schedule_after(sim::Duration::millis(200), [&fired] { ++fired; });
    cancel_handle(h);
    eng.schedule_after(sim::Duration::micros(10), [&fired] { ++fired; });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleCancelRearm<sim::Simulator>)->Name("BM_ArenaScheduleCancelRearm");
BENCHMARK(BM_ScheduleCancelRearm<LegacyEngine>)->Name("BM_LegacyScheduleCancelRearm");

void BM_SegmentFanout(benchmark::State& state) {
  const net::TcpSegment seg = make_sacked_segment();
  std::vector<net::TcpSegment> tap;
  tap.reserve(1024);
  for (auto _ : state) {
    tap.clear();
    for (int i = 0; i < 1024; ++i) tap.push_back(seg);
    benchmark::DoNotOptimize(tap.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
  state.SetLabel("1024 SACK-bearing segment copies per iteration");
}
BENCHMARK(BM_SegmentFanout);

void BM_SweepJobs(benchmark::State& state) {
  const auto configs = sweep_configs(4, 5.0);
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const runner::ParallelSweep pool{jobs};
    benchmark::DoNotOptimize(pool.run_sessions(configs).size());
  }
  state.SetLabel("4 sessions x 5 s capture");
}
BENCHMARK(BM_SweepJobs)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("engine", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
