// Figure 10 — Streaming strategies used by Netflix.
//
// (a) PC and iPad: short ON-OFF cycles (download-amount evolution over the
//     first 100 s, Academic network).
// (b) Android: long ON-OFF cycles (first 150 s).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

streaming::SessionConfig config(Application app, std::uint64_t seed) {
  video::VideoMeta v;
  v.id = "fig10";
  v.duration_s = 3600.0;
  v.encoding_bps = video::netflix_rate_ladder().back();
  v.container = Container::kSilverlight;
  v.available_rates_bps = video::netflix_rate_ladder();
  return bench::make_config(Service::kNetflix, Container::kSilverlight, app,
                            net::Vantage::kAcademic, v, seed);
}

void print_reproduction() {
  bench::print_header("Figure 10 -- Netflix streaming strategies",
                      "Rao et al., CoNEXT 2011, Fig 10(a)/(b)");

  const auto pc = bench::run_and_analyze(config(Application::kInternetExplorer, 41));
  const auto ipad = bench::run_and_analyze(config(Application::kIosNative, 42));
  const auto android = bench::run_and_analyze(config(Application::kAndroidNative, 43));

  std::printf("(a) short ON-OFF cycles: PC and iPad (Academic network)\n\n");
  bench::print_download_curve("PC  (Silverlight)", pc.result.trace, 100.0, 5.0);
  std::printf("\n");
  bench::print_download_curve("iPad (native app)", ipad.result.trace, 100.0, 5.0);

  std::printf("\n(b) long ON-OFF cycles: Android native app\n\n");
  bench::print_download_curve("Android (native app)", android.result.trace, 150.0, 5.0);

  std::printf("\nclassification:\n");
  for (const auto* o : {&pc, &ipad, &android}) {
    std::printf("  %-40s -> %-8s (median block %.2f MB, %zu connections)\n",
                o->result.trace.label.c_str(), analysis::to_string(o->decision.strategy).c_str(),
                o->decision.median_block_bytes / 1048576.0, o->decision.connections);
  }
  std::printf("\npaper: Short for PC and iPad, Long for Android.\n");
}

void BM_Fig10NetflixSession(benchmark::State& state) {
  const auto app = state.range(0) == 0   ? Application::kInternetExplorer
                   : state.range(0) == 1 ? Application::kIosNative
                                         : Application::kAndroidNative;
  const auto cfg = config(app, 44);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.decision.strategy);
  }
  state.SetLabel(to_string(app));
}
BENCHMARK(BM_Fig10NetflixSession)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig10_netflix_strategies", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
