// Figure 8 — No ON-OFF cycles: bulk transfers.
//
// For HD (Flash) videos and HTML5-on-Firefox, nobody throttles: the
// download rate equals the end-to-end available bandwidth and is therefore
// uncorrelated with the encoding rate. Long videos (> 1200 s) confirm the
// absence of a steady-state phase over the whole session.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "stats/descriptive.hpp"
#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

void print_reproduction() {
  bench::print_header("Figure 8 -- no ON-OFF cycles (bulk transfer)",
                      "Rao et al., CoNEXT 2011, Fig 8 + Section 5.1.4");
  const std::size_t n = bench::sessions_per_sweep();

  std::printf("HD (Flash) videos on the Research network (%zu videos)\n\n", n);
  std::printf("  %12s %18s\n", "rate [Mbps]", "download [Mbps]");
  const auto outcomes =
      bench::sweep(Service::kYouTube, Container::kFlashHd, Application::kInternetExplorer,
                   net::Vantage::kResearch, video::DatasetId::kYouHd, n, 901);
  std::vector<double> rates;
  std::vector<double> dl_rates;
  std::size_t bulk_count = 0;
  for (const auto& o : outcomes) {
    const double dl = o.analysis.overall_rate_bps();
    rates.push_back(o.result.encoding_bps_true / 1e6);
    dl_rates.push_back(dl / 1e6);
    if (o.decision.strategy == analysis::Strategy::kNoOnOff) ++bulk_count;
    std::printf("  %12.2f %18.2f\n", o.result.encoding_bps_true / 1e6, dl / 1e6);
  }
  std::printf("\n  correlation(encoding rate, download rate) = %.2f (paper: none)\n",
              stats::pearson_correlation(rates, dl_rates));
  std::printf("  sessions classified No ON-OFF: %zu / %zu\n", bulk_count, outcomes.size());

  // Long-video check (paper: 50 videos with duration > 1200 s show no
  // steady state across the whole session).
  std::printf("\nlong-video check (duration > 1200 s, full capture):\n");
  std::size_t long_bulk = 0;
  constexpr std::size_t kLongVideos = 8;
  for (std::size_t i = 0; i < kLongVideos; ++i) {
    video::VideoMeta v;
    v.id = "hd-long" + std::to_string(i);
    v.duration_s = 1500.0;
    v.encoding_bps = 2e6 + 0.3e6 * static_cast<double>(i);
    v.container = Container::kFlashHd;
    const auto cfg = bench::make_config(Service::kYouTube, Container::kFlashHd,
                                        Application::kFirefox, net::Vantage::kResearch, v,
                                        902 + i);
    const auto o = bench::run_and_analyze(cfg);
    if (o.decision.strategy == analysis::Strategy::kNoOnOff) ++long_bulk;
  }
  std::printf("  %zu / %zu long HD videos show no steady-state phase\n", long_bulk, kLongVideos);
}

void BM_Fig8BulkSession(benchmark::State& state) {
  video::VideoMeta v;
  v.id = "bm8";
  v.duration_s = 600.0;
  v.encoding_bps = 3e6;
  v.container = Container::kFlashHd;
  const auto cfg = bench::make_config(Service::kYouTube, Container::kFlashHd,
                                      Application::kFirefox, net::Vantage::kResearch, v, 9);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.analysis.overall_rate_bps());
  }
}
BENCHMARK(BM_Fig8BulkSession)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig8_no_onoff", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
