// Ingestion microbench — the perf trajectory for the line-rate pcap path.
//
// Sections:
//   1. seed reader replica: the pre-mmap ingestion loop (ifstream reads, a
//      heap-allocated frame vector per record, std::function dispatch) kept
//      here verbatim as the fixed baseline the floor is measured against —
//      the same technique bench_engine uses for the legacy engine;
//   2. mmap scan: the zero-copy templated reader decoding the same file;
//   3. end-to-end classification (partition + per-connection lanes + merge)
//      at 1/2/4 workers, with the parallel-vs-serial byte-equality check
//      the floor gates as a correctness metric (classifier_output_invariant
//      must be 1);
//   4. google-benchmark sections over the same kernels on a small capture.
//
// The capture is synthetic (capture/synthetic.hpp): deterministic,
// headers-only, VSTREAM_INGEST_CAPTURE_MB on-disk megabytes (default 64;
// the README walkthrough uses 1024 for the ~1 GB run).
//
// `--metrics-out` writes BENCH_ingest.json; tools/check_bench_floor.py
// compares against bench/ingest_floor.json in the CI perf-smoke job. The
// gated throughput metric is normalized per worker (min(4, hw_threads)) so
// a narrower runner cannot produce a vacuous failure; the raw speedups ride
// along as ungated extras.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/connection_demux.hpp"
#include "analysis/parallel_classify.hpp"
#include "analysis/streaming_report.hpp"
#include "capture/pcap.hpp"
#include "capture/pcap_reader.hpp"
#include "capture/pcap_wire.hpp"
#include "capture/synthetic.hpp"
#include "runner/parallel_sweep.hpp"
#include "support.hpp"
#include "tcp/seqspace.hpp"

namespace {

using namespace vstream;

[[nodiscard]] double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// ---- seed reader replica -------------------------------------------------
// The ingestion loop as it stood before the mmap reader: buffered ifstream,
// one heap vector per record, std::function per-record dispatch, and a
// map-of-pairs unwrap. Byte-for-byte the records it yields are identical to
// the current reader's — only the cost differs, which is the point.

void seed_for_each_record(const std::string& path,
                          const std::function<void(const capture::PacketRecord&)>& fn) {
  namespace wire = capture::wire;
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"seed reader: cannot open " + path};

  const auto read_raw = [&in](auto& v) {
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    return in.gcount() == static_cast<std::streamsize>(sizeof v);
  };
  std::uint32_t magic{};
  if (!read_raw(magic) || (magic != wire::kMagicMicros && magic != wire::kMagicNanos)) {
    throw std::runtime_error{"seed reader: bad magic in " + path};
  }
  const double subsecond_unit = magic == wire::kMagicNanos ? 1e-9 : 1e-6;
  std::uint16_t vmaj{};
  std::uint16_t vmin{};
  std::int32_t zone{};
  std::uint32_t sigfigs{};
  std::uint32_t snaplen{};
  std::uint32_t linktype{};
  if (!read_raw(vmaj) || !read_raw(vmin) || !read_raw(zone) || !read_raw(sigfigs) ||
      !read_raw(snaplen) || !read_raw(linktype) || linktype != wire::kLinkTypeEthernet) {
    throw std::runtime_error{"seed reader: bad global header in " + path};
  }

  std::map<std::pair<std::uint64_t, int>, std::uint64_t> seq_reference;
  const auto unwrap = [&seq_reference](std::uint64_t conn, int dir, std::uint32_t w) {
    const auto [it, fresh] = seq_reference.try_emplace({conn, dir}, w);
    if (fresh) return static_cast<std::uint64_t>(w);
    const std::uint64_t absolute = tcp::from_wire(w, it->second);
    it->second = std::max(it->second, absolute);
    return absolute;
  };
  while (true) {
    std::uint32_t ts_sec{};
    std::uint32_t ts_usec{};
    std::uint32_t incl_len{};
    std::uint32_t orig_len{};
    if (!read_raw(ts_sec)) break;  // clean EOF
    if (!read_raw(ts_usec) || !read_raw(incl_len) || !read_raw(orig_len)) {
      throw std::runtime_error{"seed reader: truncated record header in " + path};
    }
    std::vector<std::uint8_t> frame(incl_len);
    in.read(reinterpret_cast<char*>(frame.data()), static_cast<std::streamsize>(incl_len));
    if (in.gcount() != static_cast<std::streamsize>(incl_len)) {
      throw std::runtime_error{"seed reader: truncated frame in " + path};
    }
    if (incl_len < wire::kHeadersBytes) continue;
    const std::uint8_t* ip = frame.data() + wire::kEthernetBytes;
    if ((ip[0] >> 4U) != 4 || ip[9] != 6) continue;

    const std::uint8_t* tcp_hdr = frame.data() + wire::kEthernetBytes + wire::kIpv4Bytes;
    capture::PacketRecord r;
    r.t_s = static_cast<double>(ts_sec) + static_cast<double>(ts_usec) * subsecond_unit;
    const std::uint32_t src_ip = wire::get_u32be(ip + 12);
    const std::uint32_t dst_ip = wire::get_u32be(ip + 16);
    const auto in_server_net = [](std::uint32_t addr) {
      return (addr & 0xFFFFFF00U) == (wire::kServerIp & 0xFFFFFF00U);
    };
    r.direction = in_server_net(src_ip) ? net::Direction::kDown : net::Direction::kUp;
    const std::uint32_t server_addr = in_server_net(src_ip) ? src_ip : dst_ip;
    if (in_server_net(server_addr) && server_addr >= wire::kServerIp) {
      r.host = static_cast<std::uint8_t>(server_addr - wire::kServerIp);
    }
    const std::uint16_t src_port = wire::get_u16be(tcp_hdr + 0);
    const std::uint16_t dst_port = wire::get_u16be(tcp_hdr + 2);
    const std::uint16_t client_port =
        r.direction == net::Direction::kDown ? dst_port : src_port;
    r.connection_id =
        client_port >= wire::kClientPortBase ? client_port - wire::kClientPortBase : 0;
    const int dir_index = r.direction == net::Direction::kDown ? 0 : 1;
    r.seq = unwrap(r.connection_id, dir_index, wire::get_u32be(tcp_hdr + 4));
    r.ack = unwrap(r.connection_id, 1 - dir_index, wire::get_u32be(tcp_hdr + 8));
    r.flags = wire::tcp_flags_from_bits(tcp_hdr[13]);
    r.window_bytes = static_cast<std::uint64_t>(wire::get_u16be(tcp_hdr + 14))
                     << capture::kPcapWindowShift;
    r.is_retransmission = wire::get_u16be(ip + 4) == 1;
    r.payload_bytes = orig_len >= wire::kHeadersBytes
                          ? static_cast<std::uint32_t>(orig_len - wire::kHeadersBytes)
                          : 0;
    fn(r);
  }
}

struct ScanTotals {
  std::uint64_t records{0};
  std::uint64_t payload_bytes{0};
};

ScanTotals seed_scan(const std::string& path) {
  ScanTotals totals;
  seed_for_each_record(path, [&totals](const capture::PacketRecord& r) {
    ++totals.records;
    totals.payload_bytes += r.payload_bytes;
  });
  return totals;
}

ScanTotals mmap_scan(const std::string& path) {
  ScanTotals totals;
  capture::for_each_pcap_record(path, [&totals](const capture::PacketRecord& r) {
    ++totals.records;
    totals.payload_bytes += r.payload_bytes;
  });
  return totals;
}

[[nodiscard]] double capture_mb_setting() {
  const char* env = std::getenv("VSTREAM_INGEST_CAPTURE_MB");
  if (env != nullptr) {
    const double mb = std::atof(env);
    if (mb > 0.0) return mb;
  }
  return 64.0;
}

void print_reproduction(const std::string& scratch) {
  bench::print_header("Line-rate pcap ingestion -- mmap reader + per-connection lanes",
                      "perf trajectory baseline (no paper figure)");
  auto& telemetry = bench::RunTelemetry::instance();

  const std::size_t hw = runner::job_count();
  telemetry.note_metric("hw_threads", static_cast<double>(hw));
  const double norm_workers = static_cast<double>(std::min<std::size_t>(4, hw));

  const double mb = capture_mb_setting();
  capture::SyntheticCaptureOptions gen;
  gen.target_file_bytes = static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
  gen.connections = 24;
  const auto t_gen = std::chrono::steady_clock::now();
  const auto summary = capture::write_synthetic_capture(scratch, gen);
  const double gen_s = wall_seconds_since(t_gen);
  const double file_mb = static_cast<double>(summary.file_bytes) / 1048576.0;
  std::printf("capture: %llu records, %.1f MB on disk, %zu connections (generated in %.2f s)\n",
              static_cast<unsigned long long>(summary.records), file_mb, gen.connections, gen_s);
  telemetry.note_metric("capture_mb", file_mb);
  telemetry.note_metric("capture_records", static_cast<double>(summary.records));

  // 1. seed reader replica --------------------------------------------
  const auto t_seed = std::chrono::steady_clock::now();
  const ScanTotals seed = seed_scan(scratch);
  const double seed_s = wall_seconds_since(t_seed);
  const double seed_rate = file_mb / seed_s;
  std::printf("\nseed reader (ifstream + per-record vector + std::function)\n");
  std::printf("  %.2f s  %.0f MB/s  %.0f records/s\n", seed_s, seed_rate,
              static_cast<double>(seed.records) / seed_s);
  telemetry.note_metric("seed_read_mb_per_s", seed_rate);

  // 2. mmap zero-copy scan --------------------------------------------
  const auto t_mmap = std::chrono::steady_clock::now();
  const ScanTotals mmapped = mmap_scan(scratch);
  const double mmap_s = wall_seconds_since(t_mmap);
  const double mmap_rate = file_mb / mmap_s;
  std::printf("\nmmap reader (zero-copy cursor, inlined visitor)\n");
  std::printf("  %.2f s  %.0f MB/s  %.0f records/s  scan speedup %.1fx\n", mmap_s, mmap_rate,
              static_cast<double>(mmapped.records) / mmap_s, seed_s / mmap_s);
  telemetry.note_metric("mmap_read_mb_per_s", mmap_rate);
  telemetry.note_metric("scan_speedup_vs_seed", seed_s / mmap_s);
  if (seed.records != mmapped.records || seed.payload_bytes != mmapped.payload_bytes) {
    std::printf("  WARNING: seed and mmap scans disagree (%llu/%llu records)\n",
                static_cast<unsigned long long>(seed.records),
                static_cast<unsigned long long>(mmapped.records));
  }

  // 3. end-to-end classification at 1/2/4 workers ---------------------
  const capture::MmapPcapReader reader{scratch};
  const analysis::ClassifyOptions options;
  const auto time_classify = [&](std::size_t jobs, analysis::CaptureClassification* out) {
    const runner::ParallelSweep pool{jobs};
    const auto t0 = std::chrono::steady_clock::now();
    auto result = analysis::classify_capture(reader, pool, options);
    const double s = wall_seconds_since(t0);
    benchmark::DoNotOptimize(result.connections.size());
    if (out != nullptr) *out = std::move(result);
    return s;
  };
  analysis::CaptureClassification via1;
  analysis::CaptureClassification via4;
  const double c1 = time_classify(1, &via1);
  const double c2 = time_classify(2, nullptr);
  const double c4 = time_classify(4, &via4);
  const analysis::CaptureClassification serial =
      analysis::classify_capture_serial(reader, options);
  const bool invariant = via1 == serial && via4 == serial &&
                         via4.to_json() == serial.to_json() &&
                         via4.to_csv() == serial.to_csv();
  std::printf("\nper-connection classification (partition + lanes + merge)\n");
  std::printf("  1 worker : %6.2f s  %.0f MB/s\n", c1, file_mb / c1);
  std::printf("  2 workers: %6.2f s  %.0f MB/s  speedup %.2fx\n", c2, file_mb / c2, c1 / c2);
  std::printf("  4 workers: %6.2f s  %.0f MB/s  speedup %.2fx\n", c4, file_mb / c4, c1 / c4);
  std::printf("  output   : %zu connections, parallel vs serial %s\n", serial.connections.size(),
              invariant ? "byte-identical" : "DIVERGED");
  telemetry.note_metric("classify_mb_per_s_1_worker", file_mb / c1);
  telemetry.note_metric("classify_mb_per_s_4_workers", file_mb / c4);
  telemetry.note_metric("classify_speedup_4_workers", c1 / c4);
  telemetry.note_metric("ingest_mb_per_s_per_worker", file_mb / c4 / norm_workers);
  telemetry.note_metric("classifier_output_invariant", invariant ? 1.0 : 0.0);

  // The headline number: the whole ingestion pipeline, before vs after.
  // Seed end-to-end = seed reader feeding the same per-connection analysis
  // serially; new end-to-end = mmap + 4-worker lanes.
  const auto t_seed_e2e = std::chrono::steady_clock::now();
  std::map<std::uint64_t, analysis::StreamingReportBuilder> seed_builders;
  seed_for_each_record(scratch, [&seed_builders, &options](const capture::PacketRecord& r) {
    seed_builders.try_emplace(r.connection_id, options.report).first->second.add(r);
  });
  std::vector<analysis::SessionReport> seed_reports;
  seed_reports.reserve(seed_builders.size());
  for (auto& [id, builder] : seed_builders) seed_reports.push_back(builder.finish());
  const double seed_e2e_s = wall_seconds_since(t_seed_e2e);
  benchmark::DoNotOptimize(seed_reports.size());
  const double speedup = seed_e2e_s / c4;
  std::printf("\nend-to-end ingest+classify: seed %.2f s vs mmap+4 workers %.2f s -> %.1fx\n",
              seed_e2e_s, c4, speedup);
  telemetry.note_metric("seed_classify_s", seed_e2e_s);
  telemetry.note_metric("ingest_speedup_vs_seed", speedup);

  std::remove(scratch.c_str());
}

// ---- google-benchmark sections ------------------------------------------

constexpr const char* kSmallCapture = "bench_ingest_small.pcap";

void ensure_small_capture() {
  static bool done = false;
  if (done) return;
  capture::SyntheticCaptureOptions gen;
  gen.target_file_bytes = 4ULL << 20U;
  gen.connections = 8;
  capture::write_synthetic_capture(kSmallCapture, gen);
  done = true;
}

void BM_SeedReader(benchmark::State& state) {
  ensure_small_capture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(seed_scan(kSmallCapture).records);
  }
  state.SetLabel("ifstream + per-record vector + std::function");
}
BENCHMARK(BM_SeedReader)->Unit(benchmark::kMillisecond);

void BM_MmapScan(benchmark::State& state) {
  ensure_small_capture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mmap_scan(kSmallCapture).records);
  }
  state.SetLabel("mmap cursor, inlined visitor, zero copies");
}
BENCHMARK(BM_MmapScan)->Unit(benchmark::kMillisecond);

void BM_Classify(benchmark::State& state) {
  ensure_small_capture();
  const capture::MmapPcapReader reader{kSmallCapture};
  const runner::ParallelSweep pool{static_cast<std::size_t>(state.range(0))};
  const analysis::ClassifyOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::classify_capture(reader, pool, options).packets);
  }
  state.SetLabel("partition + per-connection lanes + ordered merge");
}
BENCHMARK(BM_Classify)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("ingest", &argc, argv);
  print_reproduction("bench_ingest_capture.pcap");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::remove(kSmallCapture);
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
