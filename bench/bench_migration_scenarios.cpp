// The paper's conclusion, quantified: population-wide strategy migrations.
//
// "Migration from one application to another, or from one container to
// another, can impact the aggregate video streaming traffic" — the most
// likely being Flash -> HTML5 plus more mobile devices. This bench
// evaluates the Section 6 model over those scenarios: aggregate rate,
// variance, and interruption waste per mix.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/migration.hpp"
#include "support.hpp"

namespace {

using namespace vstream;

void print_reproduction() {
  bench::print_header("Migration scenarios -- conclusion of the paper",
                      "Rao et al., CoNEXT 2011, Section 8 (via the Section 6 model)");
  constexpr double kLambda = 1.0;
  const auto scenarios = model::paper_conclusion_scenarios(kLambda);

  std::printf("lambda = %.1f sessions/s; Finamore viewing pattern for interruptions\n\n",
              kLambda);
  std::printf("%-36s %12s %10s %12s %9s\n", "scenario", "E[R] [Mbps]", "sd [Mbps]",
              "waste [Mbps]", "waste %");
  std::printf("--------------------------------------------------------------------------\n");
  for (const auto& scenario : scenarios) {
    const auto impact = model::evaluate_scenario(scenario);
    std::printf("%-36s %12.1f %10.1f %12.1f %8.1f%%\n", scenario.name.c_str(),
                impact.mean_rate_bps / 1e6, impact.rate_sd_bps / 1e6, impact.wasted_bps / 1e6,
                impact.waste_fraction * 100.0);
    for (const auto& profile : scenario.mix) {
      std::printf("    %4.0f%% %s\n", profile.share * 100.0, profile.name.c_str());
    }
  }
  std::printf("--------------------------------------------------------------------------\n");
  std::printf("readings:\n");
  std::printf("  - equal encoding rates => E[R] barely moves across strategy mixes\n");
  std::printf("    (Section 6.1 conclusion 2), but the *waste* shifts with the buffering\n");
  std::printf("    policies: HTML5 clients buffer 10-15 MB regardless of rate, so the\n");
  std::printf("    Flash->HTML5 migration increases wasted bandwidth.\n");
  std::printf("  - the HD scenario moves E[R] linearly with the encoding rate while the\n");
  std::printf("    coefficient of variation falls (smoother aggregate).\n");
}

void BM_EvaluateScenario(benchmark::State& state) {
  const auto scenarios = model::paper_conclusion_scenarios(1.0);
  const auto& scenario = scenarios[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto impact = model::evaluate_scenario(scenario, 20000);
    benchmark::DoNotOptimize(impact.wasted_bps);
  }
  state.SetLabel(scenario.name);
}
BENCHMARK(BM_EvaluateScenario)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("migration_scenarios", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
