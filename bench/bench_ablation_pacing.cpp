// Ablations of the design choices DESIGN.md calls out.
//
// A. Server-push vs client-pull throttling at the *same* average rate:
//    identical steady-state rate and block cadence, but only the pull side
//    shows the zero-window signature — the Fig 2 diagnostic.
// B. Pull-quantum sweep across the 2.5 MB boundary: the short<->long
//    strategy classification flips exactly where the paper puts the line.
// C. Loss model sensitivity of block detection: the same average loss rate
//    applied independently (Bernoulli) vs in bursts (Gilbert-Elliott)
//    changes how often blocks split, i.e. the measured block-size tail.
// D. ON/OFF gap threshold vs the threshold-free autocorrelation estimator.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/periodicity.hpp"
#include "capture/recorder.hpp"
#include "http/exchange.hpp"
#include "net/path.hpp"
#include "streaming/clients.hpp"
#include "streaming/video_server.hpp"
#include "support.hpp"
#include "tcp/connection.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

video::VideoMeta test_video(double rate_bps, Container container) {
  video::VideoMeta v;
  v.id = "abl";
  v.duration_s = 900.0;
  v.encoding_bps = rate_bps;
  v.container = container;
  return v;
}

void ablation_push_vs_pull() {
  std::printf("A. server-push (Flash) vs client-pull (HTML5/IE), same ~1 Mbps video\n\n");
  const auto push =
      bench::run_and_analyze(bench::make_config(Service::kYouTube, Container::kFlash,
                                                Application::kInternetExplorer,
                                                net::Vantage::kResearch,
                                                test_video(1e6, Container::kFlash), 3101));
  const auto pull =
      bench::run_and_analyze(bench::make_config(Service::kYouTube, Container::kHtml5,
                                                Application::kInternetExplorer,
                                                net::Vantage::kResearch,
                                                test_video(1e6, Container::kHtml5), 3102));
  std::printf("  %-14s %12s %12s %14s %12s\n", "", "rate[Mbps]", "block[kB]", "zero-window",
              "OFF med[s]");
  for (const auto& [name, o] : {std::pair{"push (Flash)", &push}, {"pull (IE)", &pull}}) {
    std::printf("  %-14s %12.2f %12.0f %14zu %12.2f\n", name, o->analysis.steady_rate_bps / 1e6,
                o->analysis.median_block_bytes() / 1024.0,
                analysis::count_zero_window_episodes(o->result.trace),
                o->analysis.median_off_s());
  }
  std::printf("  -> same average rate; only the pull side drives rwnd to zero.\n");
}

void ablation_quantum_sweep() {
  std::printf("\nB. pull-quantum sweep across the 2.5 MB short/long boundary\n\n");
  std::printf("  %12s %12s %10s\n", "quantum[MB]", "block[MB]", "strategy");
  // Reuse the Chrome path but force the quantum through the session seed:
  // we call the lower-level client directly for exact control.
  for (const double quantum_mb : {0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 8.0}) {
    sim::Simulator sim;
    sim::Rng rng{42};
    auto profile = net::profile_for(net::Vantage::kResearch);
    net::Path path{sim, profile, rng};
    tcp::Fabric fabric{sim, path};
    capture::TraceRecorder recorder{sim, path};
    recorder.start();
    tcp::TcpOptions copt;
    copt.recv_buffer_bytes = 512 * 1024;
    auto& conn = fabric.create_connection(copt, {});
    const auto video = test_video(1.2e6, Container::kHtml5);
    streaming::VideoStreamServer server{sim, conn.server(), video,
                                        streaming::ServerPacing::bulk()};
    streaming::PullThrottleClient::Config pcfg;
    pcfg.buffering_target_bytes = 4 * 1024 * 1024;
    pcfg.pull_quantum_bytes = static_cast<std::uint64_t>(quantum_mb * 1048576.0);
    pcfg.accumulation_ratio = 1.2;
    pcfg.encoding_bps = video.encoding_bps;
    streaming::PullThrottleClient client{sim, conn.client(), pcfg, {}};
    conn.client().set_on_established([&] {
      http::HttpClient http{conn.client()};
      http.send_request(http::make_video_request(video.id));
    });
    conn.open();
    sim.run_until(sim::SimTime::from_seconds(bench::kCaptureSeconds));
    auto trace = recorder.take();
    const auto analysis = analysis::analyze_on_off(trace);
    const auto decision = analysis::classify_strategy(analysis, trace);
    std::printf("  %12.2f %12.2f %10s\n", quantum_mb,
                analysis.median_block_bytes() / 1048576.0,
                analysis::to_string(decision.strategy).c_str());
  }
  std::printf("  -> the classification flips exactly at the paper's 2.5 MB boundary.\n");
}

void ablation_loss_model() {
  // Large pulled blocks (Chrome) are the sensitive case: a loss-recovery
  // stall longer than the gap threshold splits a block in two.
  std::printf("\nC. loss-model sensitivity: Bernoulli vs bursty at the same average rate\n");
  std::printf("   (HTML5/Chrome on the Academic network: multi-MB blocks)\n\n");
  std::printf("  %-26s %12s %12s %12s %10s\n", "loss model", "p10 blk[MB]", "med blk[MB]",
              "retx [%]", "cycles");
  for (const double burst : {1.0, 4.0}) {
    auto profile = net::profile_for(net::Vantage::kAcademic);
    profile.loss_burst_len = burst;
    stats::EmpiricalCdf blocks;
    double retx = 0.0;
    constexpr int kRuns = 8;
    for (int run = 0; run < kRuns; ++run) {
      auto cfg = bench::make_config(Service::kYouTube, Container::kHtml5, Application::kChrome,
                                    net::Vantage::kAcademic,
                                    test_video(1.2e6, Container::kHtml5), 3301 + run);
      cfg.network = profile;
      const auto o = bench::run_and_analyze(cfg);
      for (const double b : o.analysis.block_sizes_bytes) blocks.add(b);
      retx += o.result.trace.retransmission_fraction() * 100.0 / kRuns;
    }
    std::printf("  %-26s %12.2f %12.2f %12.2f %10zu\n",
                burst <= 1.0 ? "Bernoulli (burst=1)" : "Gilbert-Elliott (burst=4)",
                blocks.empty() ? 0.0 : blocks.inverse(0.1) / 1048576.0,
                blocks.empty() ? 0.0 : blocks.inverse(0.5) / 1048576.0, retx, blocks.size());
  }
  std::printf("  -> same average loss rate, different block-size tails: the loss model's\n"
              "     burst structure is visible in the measured block distribution.\n");
}

void ablation_gap_threshold() {
  std::printf("\nD. gap threshold vs the threshold-free periodicity estimator\n\n");
  const auto o =
      bench::run_and_analyze(bench::make_config(Service::kYouTube, Container::kFlash,
                                                Application::kInternetExplorer,
                                                net::Vantage::kResearch,
                                                test_video(1e6, Container::kFlash), 3401));
  const double truth = analysis::paced_cycle_duration_s(64 * 1024, 1.25, 1e6);
  std::printf("  ground-truth cycle duration       : %.3f s\n", truth);
  const auto periodicity = analysis::estimate_cycle_period(o.result.trace);
  if (periodicity.periodic) {
    std::printf("  autocorrelation estimate          : %.3f s (corr %.2f)\n",
                periodicity.period_s, periodicity.correlation);
  }
  std::printf("  gap-threshold sensitivity:\n");
  for (const double threshold : {0.05, 0.15, 0.30, 0.45}) {
    analysis::OnOffOptions opts;
    opts.gap_threshold_s = threshold;
    const auto a = analysis::analyze_on_off(o.result.trace, opts);
    double mean_cycle = 0.0;
    if (a.on_periods.size() > 2) {
      mean_cycle = (a.on_periods.back().start_s - a.on_periods[1].start_s) /
                   static_cast<double>(a.on_periods.size() - 2);
    }
    std::printf("    threshold %.2f s -> %4zu cycles, mean cycle %.3f s\n", threshold,
                a.block_sizes_bytes.size(), mean_cycle);
  }
  std::printf("  -> thresholds below the OFF duration all agree with the\n"
              "     autocorrelation estimate and the ground truth.\n");
}

void print_reproduction() {
  bench::print_header("Ablations -- pacing, boundary, loss model, threshold",
                      "design choices from DESIGN.md section 5");
  ablation_push_vs_pull();
  ablation_quantum_sweep();
  ablation_loss_model();
  ablation_gap_threshold();
}

void BM_PeriodicityEstimator(benchmark::State& state) {
  const auto o =
      bench::run_and_analyze(bench::make_config(Service::kYouTube, Container::kFlash,
                                                Application::kInternetExplorer,
                                                net::Vantage::kResearch,
                                                test_video(1e6, Container::kFlash), 3401));
  for (auto _ : state) {
    auto result = analysis::estimate_cycle_period(o.result.trace);
    benchmark::DoNotOptimize(result.period_s);
  }
  state.SetLabel("autocorrelation over one 180 s trace");
}
BENCHMARK(BM_PeriodicityEstimator)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("ablation_pacing", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
