// Figure 11 — Netflix buffering amounts.
//
// Netflix downloads fragments at *every* encoding-ladder rate during the
// buffering phase (Akhshabi et al.), so the buffering amount depends on the
// application's ladder: PCs ~50 MB, iPad ~10 MB (reduced ladder), Android
// ~40 MB. CDFs over the NetPC / NetMob datasets on the Academic and Home
// networks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

stats::EmpiricalCdf buffering_cdf(Application app, net::Vantage vantage, std::size_t n,
                                  std::uint64_t seed) {
  const auto dataset = (app == Application::kInternetExplorer) ? video::DatasetId::kNetPc
                                                               : video::DatasetId::kNetMob;
  const auto outcomes =
      bench::sweep(Service::kNetflix, Container::kSilverlight, app, vantage, dataset, n, seed);
  stats::EmpiricalCdf cdf;
  for (const auto& o : outcomes) cdf.add(static_cast<double>(o.analysis.buffering_bytes));
  return cdf;
}

void print_reproduction() {
  bench::print_header("Figure 11 -- Netflix buffering amounts",
                      "Rao et al., CoNEXT 2011, Fig 11(a)/(b)");
  const std::size_t n = std::max<std::size_t>(6, bench::sessions_per_sweep() / 3);

  std::printf("(a) short ON-OFF applications [MB] (%zu sessions each)\n\n", n);
  std::vector<std::pair<std::string, stats::EmpiricalCdf>> cdfs;
  cdfs.emplace_back("PC Acad.",
                    buffering_cdf(Application::kInternetExplorer, net::Vantage::kAcademic, n, 1201));
  cdfs.emplace_back("PC Home",
                    buffering_cdf(Application::kInternetExplorer, net::Vantage::kHome, n, 1202));
  cdfs.emplace_back("iPad Acad.",
                    buffering_cdf(Application::kIosNative, net::Vantage::kAcademic, n, 1203));
  bench::print_cdf_table(cdfs, "MB", 1.0 / 1048576.0);

  std::printf("\n(b) Android [MB]\n\n");
  std::vector<std::pair<std::string, stats::EmpiricalCdf>> android;
  android.emplace_back("Android Acad.",
                       buffering_cdf(Application::kAndroidNative, net::Vantage::kAcademic, n, 1204));
  bench::print_cdf_table(android, "MB", 1.0 / 1048576.0);

  std::printf("\nmedians vs paper:\n");
  const char* expect[] = {"~50 MB", "~50 MB", "~10 MB"};
  for (std::size_t i = 0; i < cdfs.size(); ++i) {
    std::printf("  %-12s %.1f MB (paper: %s)\n", cdfs[i].first.c_str(),
                cdfs[i].second.inverse(0.5) / 1048576.0, expect[i]);
  }
  std::printf("  %-12s %.1f MB (paper: ~40 MB)\n", android[0].first.c_str(),
              android[0].second.inverse(0.5) / 1048576.0);
}

void BM_Fig11NetflixBuffering(benchmark::State& state) {
  sim::Rng rng{4};
  const auto ds = video::make_dataset(video::DatasetId::kNetMob, rng, 1);
  const auto cfg =
      bench::make_config(Service::kNetflix, Container::kSilverlight, Application::kIosNative,
                         net::Vantage::kAcademic, ds.videos[0], 61);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.analysis.buffering_bytes);
  }
}
BENCHMARK(BM_Fig11NetflixBuffering)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig11_netflix_buffering", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
