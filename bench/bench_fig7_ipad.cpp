// Figure 7 — The native iPad YouTube client mixes streaming strategies.
//
// (a) Download evolution of two videos: one showing periodic buffering plus
//     short cycles over dozens of successive connections (Video1), one a
//     plain short-cycle pattern (Video2 in the paper used one connection;
//     our client models the multi-connection behaviour, so Video2 is a
//     low-rate video with small blocks).
// (b) Mean steady-state block size vs encoding rate: the block grows with
//     the rate (the client sizes fetches in playback seconds).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/flows.hpp"
#include "stats/descriptive.hpp"
#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

streaming::SessionConfig config(double rate_bps, std::uint64_t seed) {
  video::VideoMeta v;
  v.id = "fig7";
  v.duration_s = 900.0;
  v.encoding_bps = rate_bps;
  v.container = Container::kHtml5;
  return bench::make_config(Service::kYouTube, Container::kHtml5, Application::kIosNative,
                            net::Vantage::kResearch, v, seed);
}

void print_reproduction() {
  bench::print_header("Figure 7 -- iPad: combination of strategies",
                      "Rao et al., CoNEXT 2011, Fig 7(a)/(b)");

  std::printf("(a) download evolution, first 50 s\n\n");
  const auto video1 = bench::run_and_analyze(config(2.5e6, 31));
  const auto video2 = bench::run_and_analyze(config(0.4e6, 32));
  bench::print_download_curve("Video1 (2.5 Mbps)", video1.result.trace, 50.0, 2.5);
  std::printf("\n");
  bench::print_download_curve("Video2 (0.4 Mbps)", video2.result.trace, 50.0, 2.5);

  // Count connections used in the first 60 s (paper: 37 for Video1).
  const auto connections_in = [](const capture::PacketTrace& trace, double t_max) {
    std::set<std::uint64_t> ids;
    for (const auto& p : trace.packets) {
      if (p.t_s <= t_max) ids.insert(p.connection_id);
    }
    return ids.size();
  };
  std::printf("\n  Video1: %zu TCP connections in the first 60 s (paper: 37)\n",
              connections_in(video1.result.trace, 60.0));
  std::printf("  Video1 strategy: %s\n", analysis::to_string(video1.decision.strategy).c_str());
  const auto flows = analysis::build_flow_table(video1.result.trace);
  std::printf("  per-connection transfer sizes span %.0f kB ... %.1f MB (paper: 64 kB-8 MB)\n",
              static_cast<double>(flows.min_down_bytes()) / 1024.0,
              static_cast<double>(flows.max_down_bytes()) / 1048576.0);
  std::printf("  Video2: %zu TCP connection(s) -- the paper's Video2 used one connection\n",
              video2.result.connections);
  std::printf("  Video2 strategy: %s (paper: plain short ON-OFF cycles)\n",
              analysis::to_string(video2.decision.strategy).c_str());

  std::printf("\n(b) mean block size vs encoding rate\n\n");
  std::printf("  %12s %18s\n", "rate [Mbps]", "mean block [kB]");
  std::vector<double> rates;
  std::vector<double> blocks;
  for (double mbps = 0.25; mbps <= 3.0 + 1e-9; mbps += 0.25) {
    const auto outcome = bench::run_and_analyze(config(mbps * 1e6, 33));
    if (!outcome.analysis.has_steady_state()) continue;
    // Exclude re-buffering chunks: block sizes below the 2.5 MB boundary.
    std::vector<double> small;
    for (const double b : outcome.analysis.block_sizes_bytes) {
      if (b <= 2.5 * 1048576.0) small.push_back(b);
    }
    if (small.empty()) continue;
    const double mean_block = stats::mean(small);
    rates.push_back(mbps);
    blocks.push_back(mean_block);
    std::printf("  %12.2f %18.0f\n", mbps, mean_block / 1024.0);
  }
  std::printf("\n  correlation(rate, block size) = %.2f (paper: strong positive trend)\n",
              stats::pearson_correlation(rates, blocks));
}

void BM_Fig7IpadSession(benchmark::State& state) {
  const auto cfg = config(2.5e6, 31);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.result.connections);
  }
}
BENCHMARK(BM_Fig7IpadSession)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig7_ipad", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
