// Table 2 — Comparison of the three streaming strategies.
//
// The paper's Table 2 is qualitative (engineering complexity, receive
// buffer occupancy, unused bytes on interruption). This bench quantifies
// the two measurable columns by running the same video through the three
// strategies and a viewer who abandons after 20% (the Finamore et al.
// viewing pattern the paper cites):
//   - peak playback-buffer occupancy,
//   - bytes downloaded-but-unwatched at the interruption.
// Expected ordering: No > Long > Short on both columns.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "support.hpp"

namespace {

using namespace vstream;
using bench::make_config;
using bench::run_and_analyze;
using streaming::Application;
using streaming::Service;
using video::Container;

struct Row {
  const char* strategy;
  const char* engineering;  // qualitative column straight from the paper
  Container container;
  Application application;
};

constexpr Row kRows[] = {
    {"No ON-OFF", "none (plain file transfer)", Container::kFlashHd,
     Application::kInternetExplorer},
    {"Long ON-OFF", "application-layer support", Container::kHtml5, Application::kChrome},
    {"Short ON-OFF", "application-layer support", Container::kFlash,
     Application::kInternetExplorer},
};

video::VideoMeta test_video(Container container) {
  video::VideoMeta v;
  v.id = "t2";
  v.duration_s = 600.0;
  v.encoding_bps = 2e6;  // same content for all strategies
  v.container = container;
  return v;
}

bench::SessionOutcome run_row(const Row& row, std::optional<double> beta) {
  auto cfg = make_config(Service::kYouTube, row.container, row.application,
                         net::Vantage::kResearch, test_video(row.container), 99);
  cfg.watch_fraction = beta;
  return run_and_analyze(cfg);
}

void print_reproduction() {
  bench::print_header("Table 2 -- comparison of streaming strategies",
                      "Rao et al., CoNEXT 2011, Table 2 (quantified)");
  std::printf("same 2 Mbps / 600 s video; viewer interrupts after beta = 0.2\n\n");
  std::printf("%-13s %-27s %14s %14s\n", "strategy", "engineering", "peak buf [MB]",
              "unused [MB]");
  std::printf("----------------------------------------------------------------------\n");
  double prev_buf = 1e18;
  double prev_unused = 1e18;
  bool buf_ordered = true;
  bool unused_ordered = true;
  for (const auto& row : kRows) {
    const auto outcome = run_row(row, 0.2);
    const double peak_buf = outcome.result.player.max_buffered_bytes / 1048576.0;
    const double unused = outcome.result.player.unused_bytes() / 1048576.0;
    buf_ordered = buf_ordered && peak_buf <= prev_buf + 1e-9;
    unused_ordered = unused_ordered && unused <= prev_unused + 1e-9;
    prev_buf = peak_buf;
    prev_unused = unused;
    std::printf("%-13s %-27s %14.2f %14.2f\n", row.strategy, row.engineering, peak_buf, unused);
  }
  std::printf("----------------------------------------------------------------------\n");
  std::printf("paper's ordering (No > Long > Short): buffer occupancy %s, unused bytes %s\n",
              buf_ordered ? "HOLDS" : "VIOLATED", unused_ordered ? "HOLDS" : "VIOLATED");

  std::printf("\nwithout interruption (beta absent), all strategies deliver the video:\n");
  for (const auto& row : kRows) {
    const auto outcome = run_row(row, std::nullopt);
    std::printf("  %-13s downloaded %.1f MB in %.0f s capture\n", row.strategy,
                outcome.result.bytes_downloaded / 1048576.0, bench::kCaptureSeconds);
  }
}

void BM_StrategyRowWithInterruption(benchmark::State& state) {
  const auto& row = kRows[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto outcome = run_row(row, 0.2);
    benchmark::DoNotOptimize(outcome.result.player.unused_bytes());
  }
  state.SetLabel(row.strategy);
}
BENCHMARK(BM_StrategyRowWithInterruption)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("table2_strategy_comparison", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
