// Figure 12 — Netflix block sizes depend on the application.
//
// PCs and iPad pull blocks below 2.5 MB (short cycles, slightly larger than
// YouTube's 64/256 kB); the Android app pulls much larger blocks (long
// cycles). The paper also notes the connection behaviour: ack clocks appear
// when a block rides a *fresh* connection (PC/iPad) but not when a
// connection carries several blocks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

stats::EmpiricalCdf block_cdf(Application app, net::Vantage vantage, std::size_t n,
                              std::uint64_t seed, std::size_t* connections = nullptr) {
  const auto dataset = (app == Application::kInternetExplorer) ? video::DatasetId::kNetPc
                                                               : video::DatasetId::kNetMob;
  const auto outcomes =
      bench::sweep(Service::kNetflix, Container::kSilverlight, app, vantage, dataset, n, seed);
  stats::EmpiricalCdf cdf;
  std::size_t conns = 0;
  for (const auto& o : outcomes) {
    for (const double b : o.analysis.block_sizes_bytes) cdf.add(b);
    conns += o.decision.connections;
  }
  if (connections != nullptr && !outcomes.empty()) *connections = conns / outcomes.size();
  return cdf;
}

void print_reproduction() {
  bench::print_header("Figure 12 -- Netflix block sizes",
                      "Rao et al., CoNEXT 2011, Fig 12(a)/(b) + Section 5.2.2");
  const std::size_t n = std::max<std::size_t>(6, bench::sessions_per_sweep() / 3);

  std::size_t pc_conns = 0;
  std::size_t ipad_conns = 0;
  std::size_t android_conns = 0;

  std::printf("(a) short ON-OFF applications, block size [MB] (%zu sessions each)\n\n", n);
  std::vector<std::pair<std::string, stats::EmpiricalCdf>> cdfs;
  cdfs.emplace_back("PC Acad.", block_cdf(Application::kInternetExplorer,
                                          net::Vantage::kAcademic, n, 1301, &pc_conns));
  cdfs.emplace_back("PC Home", block_cdf(Application::kInternetExplorer, net::Vantage::kHome, n,
                                         1302));
  cdfs.emplace_back("iPad Acad.",
                    block_cdf(Application::kIosNative, net::Vantage::kAcademic, n, 1303,
                              &ipad_conns));
  bench::print_cdf_table(cdfs, "MB", 1.0 / 1048576.0);

  std::printf("\n(b) Android, block size [MB]\n\n");
  std::vector<std::pair<std::string, stats::EmpiricalCdf>> android;
  android.emplace_back("Android Acad.",
                       block_cdf(Application::kAndroidNative, net::Vantage::kAcademic, n, 1304,
                                 &android_conns));
  bench::print_cdf_table(android, "MB", 1.0 / 1048576.0);

  std::printf("\nshape checks:\n");
  for (const auto& [name, cdf] : cdfs) {
    if (cdf.empty()) continue;
    std::printf("  %-14s p90 block %.2f MB %s 2.5 MB (paper: below)\n", name.c_str(),
                cdf.inverse(0.9) / 1048576.0,
                cdf.inverse(0.9) <= 2.5 * 1048576.0 ? "<=" : ">");
  }
  if (!android[0].second.empty()) {
    std::printf("  %-14s median block %.2f MB (paper: large, long cycles)\n", "Android Acad.",
                android[0].second.inverse(0.5) / 1048576.0);
  }
  std::printf("\nconnection usage (paper: \"a large number of TCP connections\" on PC/iPad):\n");
  std::printf("  PC %zu, iPad %zu, Android %zu connections per 180 s session\n", pc_conns,
              ipad_conns, android_conns);
}

void BM_Fig12NetflixSession(benchmark::State& state) {
  sim::Rng rng{6};
  const auto ds = video::make_dataset(video::DatasetId::kNetPc, rng, 1);
  const auto cfg =
      bench::make_config(Service::kNetflix, Container::kSilverlight,
                         Application::kInternetExplorer, net::Vantage::kAcademic, ds.videos[0], 71);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.analysis.median_block_bytes());
  }
}
BENCHMARK(BM_Fig12NetflixSession)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig12_netflix_blocks", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
