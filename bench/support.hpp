// Shared infrastructure for the per-table/per-figure reproduction benches.
//
// Every bench binary prints the paper-style rows/series for its table or
// figure, then runs a google-benchmark section timing the binary's key
// kernel. The number of sessions per sweep is tunable via the
// VSTREAM_BENCH_SESSIONS environment variable (default 30) so quick runs
// and thorough runs use the same binaries. When VSTREAM_BENCH_CSV_DIR is
// set, every printed CDF table and download curve is also written there as
// CSV for external plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/onoff.hpp"
#include "analysis/strategy.hpp"
#include "net/profile.hpp"
#include "stats/cdf.hpp"
#include "streaming/session.hpp"
#include "video/datasets.hpp"

namespace vstream::bench {

/// Sessions per sweep (VSTREAM_BENCH_SESSIONS, default 30).
[[nodiscard]] std::size_t sessions_per_sweep();

/// Default 180 s captures, as in the paper's methodology.
inline constexpr double kCaptureSeconds = 180.0;

/// One analysed streaming session.
struct SessionOutcome {
  streaming::SessionResult result;
  analysis::OnOffAnalysis analysis;
  analysis::StrategyDecision decision;
};

/// Run one session and the paper's full analysis on its trace.
[[nodiscard]] SessionOutcome run_and_analyze(const streaming::SessionConfig& config);

/// Build a session config for a (service, container, application) combo on a
/// vantage network with a given video.
[[nodiscard]] streaming::SessionConfig make_config(streaming::Service service,
                                                   video::Container container,
                                                   streaming::Application application,
                                                   net::Vantage vantage,
                                                   const video::VideoMeta& video,
                                                   std::uint64_t seed);

/// Sweep `count` videos of a dataset through one combo on one vantage.
[[nodiscard]] std::vector<SessionOutcome> sweep(streaming::Service service,
                                                video::Container container,
                                                streaming::Application application,
                                                net::Vantage vantage, video::DatasetId dataset,
                                                std::size_t count, std::uint64_t seed);

// ---- output helpers ------------------------------------------------------

void print_header(const std::string& title, const std::string& paper_reference);

/// Print a CDF as fixed-quantile rows: q, x(q).
void print_cdf(const std::string& label, const stats::EmpiricalCdf& cdf,
               const std::string& unit, double scale = 1.0);

/// Print several CDFs side by side at shared quantiles.
void print_cdf_table(const std::vector<std::pair<std::string, stats::EmpiricalCdf>>& cdfs,
                     const std::string& unit, double scale = 1.0);

/// Print a download-amount curve (t, MB) at a fixed time step.
void print_download_curve(const std::string& label, const capture::PacketTrace& trace,
                          double t_max_s, double step_s = 1.0);

/// Print the receive-window series summary (Fig 2b / 6a style).
void print_window_summary(const std::string& label, const capture::PacketTrace& trace);

/// Directory for CSV side-output (VSTREAM_BENCH_CSV_DIR), empty if unset.
[[nodiscard]] std::string csv_dir();

}  // namespace vstream::bench
