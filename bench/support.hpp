// Shared infrastructure for the per-table/per-figure reproduction benches.
//
// Every bench binary prints the paper-style rows/series for its table or
// figure, then runs a google-benchmark section timing the binary's key
// kernel. The number of sessions per sweep is tunable via the
// VSTREAM_BENCH_SESSIONS environment variable (default 30) so quick runs
// and thorough runs use the same binaries. When VSTREAM_BENCH_CSV_DIR is
// set, every printed CDF table and download curve is also written there as
// CSV for external plotting.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/onoff.hpp"
#include "analysis/strategy.hpp"
#include "capture/trace_view.hpp"
#include "net/profile.hpp"
#include "obs/metrics.hpp"
#include "runner/parallel_sweep.hpp"
#include "runner/sweep_profiler.hpp"
#include "stats/cdf.hpp"
#include "streaming/session.hpp"
#include "video/datasets.hpp"

namespace vstream::bench {

/// Sessions per sweep (VSTREAM_BENCH_SESSIONS, default 30).
[[nodiscard]] std::size_t sessions_per_sweep();

/// Default 180 s captures, as in the paper's methodology.
inline constexpr double kCaptureSeconds = 180.0;

/// One analysed streaming session.
struct SessionOutcome {
  streaming::SessionResult result;
  analysis::OnOffAnalysis analysis;
  analysis::StrategyDecision decision;
};

/// Run one session and the paper's full analysis on its trace.
[[nodiscard]] SessionOutcome run_and_analyze(const streaming::SessionConfig& config);

/// Run a batch of independent configs, fanned across cores when VSTREAM_JOBS
/// (or the hardware) allows (see runner::ParallelSweep). Results come back
/// in submission order and fold into the active RunTelemetry serially in
/// that same order, so the telemetry aggregate is independent of the worker
/// count. VSTREAM_JOBS=1 is the historical serial loop, bit for bit.
[[nodiscard]] std::vector<SessionOutcome> run_and_analyze_all(
    const std::vector<streaming::SessionConfig>& configs);

/// Build a session config for a (service, container, application) combo on a
/// vantage network with a given video.
[[nodiscard]] streaming::SessionConfig make_config(streaming::Service service,
                                                   video::Container container,
                                                   streaming::Application application,
                                                   net::Vantage vantage,
                                                   const video::VideoMeta& video,
                                                   std::uint64_t seed);

/// Sweep `count` videos of a dataset through one combo on one vantage.
[[nodiscard]] std::vector<SessionOutcome> sweep(streaming::Service service,
                                                video::Container container,
                                                streaming::Application application,
                                                net::Vantage vantage, video::DatasetId dataset,
                                                std::size_t count, std::uint64_t seed);

// ---- output helpers ------------------------------------------------------

void print_header(const std::string& title, const std::string& paper_reference);

/// Print a CDF as fixed-quantile rows: q, x(q).
void print_cdf(const std::string& label, const stats::EmpiricalCdf& cdf,
               const std::string& unit, double scale = 1.0);

/// Print several CDFs side by side at shared quantiles.
void print_cdf_table(const std::vector<std::pair<std::string, stats::EmpiricalCdf>>& cdfs,
                     const std::string& unit, double scale = 1.0);

/// Print a download-amount curve (t, MB) at a fixed time step. Takes a
/// zero-copy view; plain `PacketTrace` converts implicitly.
void print_download_curve(const std::string& label, capture::TraceView trace, double t_max_s,
                          double step_s = 1.0);

/// Print the receive-window series summary (Fig 2b / 6a style).
void print_window_summary(const std::string& label, capture::TraceView trace);

/// Directory for CSV side-output (VSTREAM_BENCH_CSV_DIR), empty if unset.
[[nodiscard]] std::string csv_dir();

// ---- machine-readable run telemetry --------------------------------------

/// Aggregated run telemetry behind the `--metrics-out [path]` flag. Each
/// bench main calls `init` before benchmark::Initialize (init strips the
/// flag from argv so google-benchmark never sees it) and `finalize` last
/// thing before returning. `run_and_analyze` folds every session into the
/// active collector automatically: per-session registry snapshots merge
/// (counters add, gauges take the max), simulator event counts and block
/// sizes accumulate. `finalize` writes one JSON object — wall time,
/// sessions, events/sec, median block size, median accumulation ratio, any
/// `note_metric` extras, and the merged registry snapshot — to the given
/// path (default `BENCH_<name>.json`).
class RunTelemetry {
 public:
  static RunTelemetry& instance();

  /// Parse and strip `--metrics-out [path]` / `--metrics-out=path`. Bare
  /// flag defaults the output file to BENCH_<name>.json.
  void init(const std::string& name, int* argc, char** argv);

  [[nodiscard]] bool enabled() const { return !out_path_.empty(); }
  [[nodiscard]] const std::string& out_path() const { return out_path_; }

  /// Fold one analysed session into the aggregate (no-op when disabled).
  void record(const SessionOutcome& outcome);

  /// Fold one sweep's per-worker profile into the aggregate (no-op when
  /// disabled). `run_and_analyze_all` profiles every parallel sweep and
  /// calls this; finalize() reports the pooled wall/busy/utilization as
  /// sweep_* extras.
  void record_sweep(const runner::SweepProfiler::Summary& summary);

  /// Attach a named scalar to the report's "extra" object.
  void note_metric(const std::string& name, double value);

  /// Write the JSON report (no-op when --metrics-out was not given).
  void finalize();

 private:
  std::string name_;
  std::string out_path_;
  std::chrono::steady_clock::time_point start_{};
  std::size_t sessions_{0};
  double sim_time_s_{0.0};
  std::uint64_t sim_events_{0};
  std::size_t sim_max_events_pending_{0};
  std::vector<double> block_sizes_bytes_;
  std::vector<double> accumulation_ratios_;
  obs::MetricsSnapshot merged_;
  std::map<std::string, double> extra_;
  // Pooled sweep-profile aggregate (record_sweep).
  double sweep_wall_s_{0.0};
  double sweep_busy_s_{0.0};
  double sweep_capacity_s_{0.0};  ///< sum of wall x workers per sweep
  std::uint64_t sweep_tasks_{0};
  std::size_t sweep_workers_{0};  ///< widest pool seen
};

}  // namespace vstream::bench
