// Figure 3 — Amount downloaded during the buffering phase.
//
// (a) CDF of the buffered playback time (buffering bytes / encoding rate)
//     for Flash videos across the four vantage networks. Paper: ~40 s for
//     most videos, strongly correlated with the encoding rate (r = 0.85);
//     the Residence and Academic networks measure lower because the
//     first-OFF heuristic is loss-sensitive.
// (b) Buffering amount vs encoding rate for HTML5 on Internet Explorer:
//     weak correlation (r = 0.41), 10-15 MB regardless of rate.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "stats/descriptive.hpp"
#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

void print_reproduction() {
  bench::print_header("Figure 3 -- buffering phase", "Rao et al., CoNEXT 2011, Fig 3(a)/(b)");
  const std::size_t n = bench::sessions_per_sweep();

  std::printf("(a) buffered playback time, Flash videos (%zu per network)\n\n", n);
  std::vector<std::pair<std::string, stats::EmpiricalCdf>> cdfs;
  for (const auto vantage : net::kAllVantages) {
    const auto outcomes =
        bench::sweep(Service::kYouTube, Container::kFlash, Application::kInternetExplorer,
                     vantage, video::DatasetId::kYouFlash, n, 501);
    stats::EmpiricalCdf cdf;
    std::vector<double> rates;
    std::vector<double> buffering;
    for (const auto& o : outcomes) {
      cdf.add(o.analysis.buffered_playback_s(o.result.encoding_bps_true));
      rates.push_back(o.result.encoding_bps_true);
      buffering.push_back(static_cast<double>(o.analysis.buffering_bytes));
    }
    const double corr = stats::pearson_correlation(rates, buffering);
    std::printf("  %-10s median %5.1f s of playback buffered, corr(e, bytes) = %.2f\n",
                net::vantage_name(vantage).data(), cdf.inverse(0.5), corr);
    cdfs.emplace_back(std::string{net::vantage_name(vantage)}, std::move(cdf));
  }
  std::printf("\n  CDF of buffered playback time [s]:\n");
  bench::print_cdf_table(cdfs, "s");
  std::printf("\n  paper: ~40 s on Research/Home; lower measured values on Residence &\n"
              "  Academic (loss-sensitive first-OFF heuristic); correlation ~0.85.\n");

  std::printf("\n(b) HTML5 on IE: buffering amount vs encoding rate (%zu videos, Research)\n\n",
              n);
  const auto outcomes =
      bench::sweep(Service::kYouTube, Container::kHtml5, Application::kInternetExplorer,
                   net::Vantage::kResearch, video::DatasetId::kYouHtml, n, 502);
  std::printf("  %12s %16s\n", "rate [Mbps]", "buffered [MB]");
  std::vector<double> rates;
  std::vector<double> buffering;
  for (const auto& o : outcomes) {
    rates.push_back(o.result.encoding_bps_true);
    buffering.push_back(static_cast<double>(o.analysis.buffering_bytes));
    std::printf("  %12.2f %16.2f\n", o.result.encoding_bps_true / 1e6,
                o.analysis.buffering_bytes / 1048576.0);
  }
  const double corr = stats::pearson_correlation(rates, buffering);
  std::printf("\n  correlation(e, buffering bytes) = %.2f (paper: 0.41 -- weak)\n", corr);
}

void BM_Fig3FlashBufferingSession(benchmark::State& state) {
  sim::Rng rng{1};
  const auto ds = video::make_dataset(video::DatasetId::kYouFlash, rng, 1);
  const auto cfg = bench::make_config(Service::kYouTube, Container::kFlash,
                                      Application::kInternetExplorer, net::Vantage::kResearch,
                                      ds.videos[0], 1);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.analysis.buffering_bytes);
  }
}
BENCHMARK(BM_Fig3FlashBufferingSession)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig3_buffering", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
