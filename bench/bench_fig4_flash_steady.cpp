// Figure 4 — Steady state for Flash videos.
//
// (a) Block-size CDF across the four networks: 64 kB dominates everywhere;
//     losses split blocks (smaller) or merge cycles (larger) on the lossier
//     networks.
// (b) Accumulation-ratio CDF: ~1.25 for the majority of sessions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "stats/histogram.hpp"
#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

void print_reproduction() {
  bench::print_header("Figure 4 -- steady state for Flash videos",
                      "Rao et al., CoNEXT 2011, Fig 4(a)/(b)");
  const std::size_t n = bench::sessions_per_sweep();

  std::vector<std::pair<std::string, stats::EmpiricalCdf>> block_cdfs;
  std::vector<std::pair<std::string, stats::EmpiricalCdf>> ratio_cdfs;
  stats::Histogram block_hist{0.0, 256.0, 32};

  for (const auto vantage : net::kAllVantages) {
    const auto outcomes =
        bench::sweep(Service::kYouTube, Container::kFlash, Application::kFirefox, vantage,
                     video::DatasetId::kYouFlash, n, 601);
    stats::EmpiricalCdf blocks;
    stats::EmpiricalCdf ratios;
    for (const auto& o : outcomes) {
      for (const double b : o.analysis.block_sizes_bytes) {
        blocks.add(b);
        if (vantage == net::Vantage::kResearch) block_hist.add(b / 1024.0);
      }
      if (o.analysis.has_steady_state()) {
        ratios.add(o.analysis.accumulation_ratio(o.result.encoding_bps_true));
      }
    }
    block_cdfs.emplace_back(std::string{net::vantage_name(vantage)}, std::move(blocks));
    ratio_cdfs.emplace_back(std::string{net::vantage_name(vantage)}, std::move(ratios));
  }

  std::printf("(a) block size CDF [kB] (%zu sessions per network)\n\n", n);
  bench::print_cdf_table(block_cdfs, "kB", 1.0 / 1024.0);
  std::printf("\n  block-size histogram, Research network [kB]:\n%s",
              block_hist.render(40).c_str());
  std::printf("  dominant block size: %.0f kB (paper: 64 kB)\n", block_hist.mode());

  std::printf("\n(b) accumulation ratio CDF\n\n");
  bench::print_cdf_table(ratio_cdfs, "ratio");
  for (const auto& [name, cdf] : ratio_cdfs) {
    if (!cdf.empty()) {
      std::printf("  %-10s median accumulation ratio %.2f (paper: ~1.25)\n", name.c_str(),
                  cdf.inverse(0.5));
    }
  }
}

void BM_Fig4SteadyStateAnalysis(benchmark::State& state) {
  sim::Rng rng{2};
  const auto ds = video::make_dataset(video::DatasetId::kYouFlash, rng, 1);
  const auto cfg =
      bench::make_config(Service::kYouTube, Container::kFlash, Application::kFirefox,
                         net::Vantage::kResidence, ds.videos[0], 11);
  const auto outcome = bench::run_and_analyze(cfg);
  for (auto _ : state) {
    auto analysis = analysis::analyze_on_off(outcome.result.trace);
    benchmark::DoNotOptimize(analysis.block_sizes_bytes.size());
  }
  state.SetLabel("analyze_on_off over one 180 s trace");
}
BENCHMARK(BM_Fig4SteadyStateAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig4_flash_steady", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
