// Figure 1 — Phases of video download.
//
// Streams one Flash video and annotates the trace with the quantities the
// figure illustrates: the buffering phase (slope = end-to-end available
// bandwidth), the steady-state phase with ON-OFF cycles, the block size,
// the cycle duration, and the average steady-state rate.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "support.hpp"

namespace {

using namespace vstream;

streaming::SessionConfig config() {
  video::VideoMeta v;
  v.id = "fig1";
  v.duration_s = 600.0;
  v.encoding_bps = 1e6;
  v.container = video::Container::kFlash;
  return bench::make_config(streaming::Service::kYouTube, video::Container::kFlash,
                            streaming::Application::kInternetExplorer, net::Vantage::kResearch,
                            v, 42);
}

void print_reproduction() {
  bench::print_header("Figure 1 -- phases of video download",
                      "Rao et al., CoNEXT 2011, Fig 1");
  const auto outcome = bench::run_and_analyze(config());
  const auto& a = outcome.analysis;

  bench::print_download_curve("YouTube Flash, Research network", outcome.result.trace, 60.0,
                              2.0);

  std::printf("\nannotations:\n");
  std::printf("  buffering phase ends       : %.2f s\n", a.buffering_end_s);
  std::printf("  buffering amount           : %.2f MB\n", a.buffering_bytes / 1048576.0);
  const double buffering_rate =
      a.buffering_end_s > a.first_packet_s
          ? static_cast<double>(a.buffering_bytes) * 8.0 / (a.buffering_end_s - a.first_packet_s)
          : 0.0;
  std::printf("  buffering slope (avail bw) : %.1f Mbps\n", buffering_rate / 1e6);
  std::printf("  steady-state average rate  : %.2f Mbps\n", a.steady_rate_bps / 1e6);
  std::printf("  block size (median)        : %.0f kB\n", a.median_block_bytes() / 1024.0);
  if (!a.on_periods.empty() && a.on_periods.size() > 2) {
    const auto& p1 = a.on_periods[1];
    const auto& p2 = a.on_periods[2];
    std::printf("  cycle duration             : %.2f s (ON %.3f s + OFF %.2f s)\n",
                p2.start_s - p1.start_s, p1.duration_s(), a.off_durations_s[1]);
  }
  std::printf("  ON-OFF cycles observed     : %zu\n", a.block_sizes_bytes.size());
  std::printf("  accumulation ratio         : %.2f\n",
              a.accumulation_ratio(outcome.result.encoding_bps_true));
}

void BM_Fig1Session(benchmark::State& state) {
  const auto cfg = config();
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.analysis.buffering_bytes);
  }
}
BENCHMARK(BM_Fig1Session)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig1_phases", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
