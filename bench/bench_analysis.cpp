// Analysis-pipeline microbench — batch vs zero-copy views vs the
// single-pass streaming report builder.
//
// Sections:
//   1. 10k-session synthetic sweep: build a SessionReport per session the
//      batch way (materialise the trace, then the multi-pass
//      `build_report`) and the streaming way (`StreamingReportBuilder`
//      consuming the record stream, nothing stored). The speedup is the
//      headline acceptance metric; the first sessions are also checked
//      field-identical between the two paths.
//   2. peak-RSS probe: one multi-million-record capture analysed streaming
//      first, then batch; /proc VmHWM before/after quantifies the memory
//      the trace vector costs the batch path.
//   3. zero-copy view vs legacy copy filter: host-restricted aggregates via
//      `TraceView::host(0)` against the materialising `only_host(0)`.
//
// `--metrics-out` writes BENCH_analysis.json; tools/check_bench_floor.py
// compares the extra.* metrics against bench/analysis_floor.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/report.hpp"
#include "analysis/report_json.hpp"
#include "analysis/streaming_report.hpp"
#include "capture/trace.hpp"
#include "capture/trace_view.hpp"
#include "sim/rng.hpp"
#include "support.hpp"

namespace {

using namespace vstream;

// ---- synthetic session traces --------------------------------------------

constexpr std::uint32_t kMss = 1448;
constexpr double kSynthEncodingBps = 1.5e6;

capture::PacketRecord make_record(double t, net::Direction dir, std::uint32_t payload,
                                  std::uint64_t seq, std::uint64_t ack, net::TcpFlag flags,
                                  bool retx, std::uint64_t window) {
  capture::PacketRecord r;
  r.t_s = t;
  r.direction = dir;
  r.connection_id = 0;
  r.host = 0;
  r.seq = seq;
  r.ack = ack;
  r.payload_bytes = payload;
  r.window_bytes = window;
  r.flags = flags;
  r.is_retransmission = retx;
  return r;
}

/// Emit one plausible short-ON-OFF video session: handshake, a buffering
/// burst at link rate, then 64 kB blocks separated by ~0.35 s OFF gaps,
/// with ACKs every third data packet and a sprinkle of retransmissions.
/// Deterministic per seed; the same stream feeds every pipeline under test.
template <typename Emit>
void synth_session(std::uint64_t seed, double duration_s, Emit&& emit) {
  sim::Rng rng{seed};
  const double rtt = rng.uniform(0.02, 0.06);
  const double link_bps = rng.uniform(5e6, 8e6);
  const double gap = kMss * 8.0 / link_bps;
  const double buffering_s = rng.uniform(3.0, 5.0);
  const std::uint64_t window = 256 * 1024;

  std::uint64_t seq = 0;
  std::uint64_t peer_seq = 0;
  emit(make_record(0.0, net::Direction::kUp, 0, peer_seq, 0, net::TcpFlag::kSyn, false, window));
  emit(make_record(rtt / 2, net::Direction::kDown, 0, seq, peer_seq + 1,
                   net::TcpFlag::kSyn | net::TcpFlag::kAck, false, window));
  emit(make_record(rtt, net::Direction::kUp, 0, peer_seq + 1, seq + 1, net::TcpFlag::kAck, false,
                   window));

  double t = rtt;
  int since_ack = 0;
  const auto data_packet = [&](double at) {
    const bool retx = rng.bernoulli(0.004);
    emit(make_record(at, net::Direction::kDown, kMss, seq, peer_seq + 1,
                     net::TcpFlag::kAck | net::TcpFlag::kPsh, retx, window));
    if (!retx) seq += kMss;
    if (++since_ack >= 3) {
      since_ack = 0;
      emit(make_record(at + gap / 3, net::Direction::kUp, 0, peer_seq + 1, seq,
                       net::TcpFlag::kAck, false, window));
    }
  };

  while (t < rtt + buffering_s && t < duration_s) {
    data_packet(t);
    t += gap;
  }
  const std::size_t block_packets = 64 * 1024 / kMss;
  while (t < duration_s) {
    t += rng.uniform(0.3, 0.42);  // OFF gap, well above the 0.15 s threshold
    for (std::size_t i = 0; i < block_packets && t < duration_s; ++i) {
      data_packet(t);
      t += gap;
    }
  }
}

analysis::ReportOptions synth_options() {
  analysis::ReportOptions options;
  options.encoding_bps = kSynthEncodingBps;
  return options;
}

capture::PacketTrace materialize_session(std::uint64_t seed, double duration_s) {
  capture::PacketTrace trace;
  synth_session(seed, duration_s, [&](const capture::PacketRecord& r) { trace.packets.push_back(r); });
  trace.duration_s = duration_s;
  return trace;
}

analysis::SessionReport batch_report(std::uint64_t seed, double duration_s) {
  const auto trace = materialize_session(seed, duration_s);
  return analysis::build_report(trace, synth_options());
}

analysis::SessionReport streaming_report(std::uint64_t seed, double duration_s) {
  analysis::StreamingReportBuilder builder{synth_options()};
  synth_session(seed, duration_s, [&](const capture::PacketRecord& r) { builder.add(r); });
  builder.set_duration_s(duration_s);
  return builder.finish();
}

[[nodiscard]] double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// VmHWM (peak resident set) in kB from /proc/self/status; 0 off-Linux.
std::size_t peak_rss_kb() {
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::strtoul(line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

// ---- report --------------------------------------------------------------

constexpr std::size_t kSweepSessions = 10'000;
constexpr double kSweepDuration = 12.0;
constexpr double kBigSessionDuration = 14'000.0;  // ~2M records

void print_reproduction() {
  bench::print_header("Analysis microbench -- batch vs views vs streaming pipeline",
                      "perf trajectory baseline (no paper figure)");
  auto& telemetry = bench::RunTelemetry::instance();

  // -- equivalence spot check before timing anything -----------------------
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const auto batch = batch_report(seed, kSweepDuration);
    const auto stream = streaming_report(seed, kSweepDuration);
    if (!(batch == stream)) {
      std::fprintf(stderr, "FATAL: batch/streaming reports differ for seed %llu\nbatch: %s\nstream: %s\n",
                   static_cast<unsigned long long>(seed), analysis::to_json(batch).c_str(),
                   analysis::to_json(stream).c_str());
      std::exit(1);
    }
    ++checked;
  }
  std::printf("equivalence: batch == streaming on %zu synthetic sessions\n\n", checked);

  // -- peak-RSS probe (before the sweeps so the big allocation is the only
  //    thing separating the two snapshots) --------------------------------
  std::uint64_t stream_records = 0;
  {
    analysis::StreamingReportBuilder builder{synth_options()};
    synth_session(77, kBigSessionDuration, [&](const capture::PacketRecord& r) {
      builder.add(r);
      ++stream_records;
    });
    builder.set_duration_s(kBigSessionDuration);
    benchmark::DoNotOptimize(builder.finish().packets);
  }
  const std::size_t rss_stream_kb = peak_rss_kb();
  {
    const auto trace = materialize_session(77, kBigSessionDuration);
    benchmark::DoNotOptimize(analysis::build_report(trace, synth_options()).packets);
  }
  const std::size_t rss_batch_kb = peak_rss_kb();
  const double rss_reduction = rss_stream_kb > 0
                                   ? static_cast<double>(rss_batch_kb) / rss_stream_kb
                                   : 0.0;
  std::printf("peak RSS, one %llu-record capture (%.0f s synthetic session)\n",
              static_cast<unsigned long long>(stream_records), kBigSessionDuration);
  std::printf("  streaming : %8zu kB VmHWM (report in constant space)\n", rss_stream_kb);
  std::printf("  batch     : %8zu kB VmHWM (trace vector + report passes)\n", rss_batch_kb);
  std::printf("  reduction : %.2fx\n", rss_reduction);
  telemetry.note_metric("peak_rss_reduction_vs_batch", rss_reduction);

  // -- 10k-session sweep ---------------------------------------------------
  std::uint64_t sweep_records = 0;
  const auto t_stream0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kSweepSessions; ++i) {
    analysis::StreamingReportBuilder builder{synth_options()};
    synth_session(1000 + i, kSweepDuration, [&](const capture::PacketRecord& r) {
      builder.add(r);
      ++sweep_records;
    });
    builder.set_duration_s(kSweepDuration);
    benchmark::DoNotOptimize(builder.finish().packets);
  }
  const double t_stream = wall_seconds_since(t_stream0);

  const auto t_batch0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kSweepSessions; ++i) {
    benchmark::DoNotOptimize(batch_report(1000 + i, kSweepDuration).packets);
  }
  const double t_batch = wall_seconds_since(t_batch0);

  const double speedup = t_batch / t_stream;
  std::printf("\n%zu-session synthetic sweep (%.0f s sessions, ~%llu records each)\n",
              kSweepSessions, kSweepDuration,
              static_cast<unsigned long long>(sweep_records / kSweepSessions));
  std::printf("  batch     : %7.2f s (materialise + multi-pass build_report)\n", t_batch);
  std::printf("  streaming : %7.2f s (single pass, nothing stored)\n", t_stream);
  std::printf("  speedup   : %.2fx\n", speedup);
  telemetry.note_metric("report_build_speedup_vs_batch", speedup);
  telemetry.note_metric("streaming_records_per_sec",
                        static_cast<double>(sweep_records) / t_stream);
  telemetry.note_metric("batch_records_per_sec", static_cast<double>(sweep_records) / t_batch);

  // -- zero-copy view vs legacy copy filter --------------------------------
  auto mixed = materialize_session(7, 60.0);
  {  // interleave auxiliary-host packets so the filter has work to do
    const std::size_t n = mixed.packets.size();
    for (std::size_t i = 0; i < n / 4; ++i) {
      auto aux = mixed.packets[i * 4];
      aux.host = 1;
      aux.connection_id = 100 + i % 5;
      mixed.packets.push_back(aux);
    }
  }
  constexpr int kFilterReps = 200;
  const auto t_copy0 = std::chrono::steady_clock::now();
  std::uint64_t copy_sum = 0;
  for (int r = 0; r < kFilterReps; ++r) {
    copy_sum +=
        mixed.only_host(0).down_payload_bytes();  // vstream-lint: allow(trace-copy): measured legacy baseline
  }
  const double t_copy = wall_seconds_since(t_copy0);
  const auto t_view0 = std::chrono::steady_clock::now();
  std::uint64_t view_sum = 0;
  for (int r = 0; r < kFilterReps; ++r) {
    view_sum += capture::TraceView{mixed}.host(0).down_payload_bytes();
  }
  const double t_view = wall_seconds_since(t_view0);
  if (copy_sum != view_sum) {
    std::fprintf(stderr, "FATAL: view/copy aggregate mismatch\n");
    std::exit(1);
  }
  const double view_speedup = t_copy / t_view;
  std::printf("\nhost-filtered aggregate, %zu-record mixed trace, %d reps\n",
              mixed.packets.size(), kFilterReps);
  std::printf("  only_host copy : %7.3f s\n", t_copy);
  std::printf("  TraceView      : %7.3f s\n", t_view);
  std::printf("  speedup        : %.2fx\n", view_speedup);
  telemetry.note_metric("view_filter_speedup_vs_copy", view_speedup);
}

// ---- google-benchmark sections ------------------------------------------

void BM_BatchReport(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch_report(42, kSweepDuration).packets);
  }
  state.SetLabel("materialise trace + multi-pass build_report");
}
BENCHMARK(BM_BatchReport)->Unit(benchmark::kMillisecond);

void BM_StreamingReport(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(streaming_report(42, kSweepDuration).packets);
  }
  state.SetLabel("single-pass StreamingReportBuilder, nothing stored");
}
BENCHMARK(BM_StreamingReport)->Unit(benchmark::kMillisecond);

void BM_CopyFilterAggregate(benchmark::State& state) {
  const auto trace = materialize_session(42, 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace.only_host(0).down_payload_bytes());  // vstream-lint: allow(trace-copy): measured legacy baseline
  }
  state.SetLabel("legacy only_host(0) copy");
}
BENCHMARK(BM_CopyFilterAggregate)->Unit(benchmark::kMillisecond);

void BM_ViewFilterAggregate(benchmark::State& state) {
  const auto trace = materialize_session(42, 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(capture::TraceView{trace}.host(0).down_payload_bytes());
  }
  state.SetLabel("zero-copy TraceView::host(0)");
}
BENCHMARK(BM_ViewFilterAggregate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("analysis", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
