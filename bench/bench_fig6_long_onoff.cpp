// Figure 6 — Long ON-OFF cycles (Chrome, Android YouTube app).
//
// (a) A representative Chrome trace: download amount plus receive-window
//     behaviour — the window periodically empties because Chrome pulls
//     large blocks from the TCP buffer, idling the connection for tens of
//     seconds.
// (b) Block-size CDF: > 2.5 MB for most sessions (Chrome in all four
//     networks, Android on Research).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

void print_reproduction() {
  bench::print_header("Figure 6 -- long ON-OFF cycles",
                      "Rao et al., CoNEXT 2011, Fig 6(a)/(b)");
  const std::size_t n = bench::sessions_per_sweep();

  // (a) representative trace.
  video::VideoMeta v;
  v.id = "fig6";
  v.duration_s = 900.0;
  v.encoding_bps = 1.2e6;
  v.container = Container::kHtml5;
  const auto chrome_cfg =
      bench::make_config(Service::kYouTube, Container::kHtml5, Application::kChrome,
                         net::Vantage::kResearch, v, 17);
  const auto chrome = bench::run_and_analyze(chrome_cfg);
  std::printf("(a) Chrome representative trace (Research network)\n\n");
  bench::print_download_curve("HTML5 (Chrome)", chrome.result.trace, 180.0, 10.0);
  bench::print_window_summary("HTML5 (Chrome)", chrome.result.trace);
  std::printf("  OFF periods: median %.1f s, max %.1f s (paper: order of 60 s)\n",
              chrome.analysis.median_off_s(), chrome.analysis.max_off_s());

  // (b) block-size CDFs.
  std::printf("\n(b) block-size CDF [MB] (%zu sessions each)\n\n", n);
  std::vector<std::pair<std::string, stats::EmpiricalCdf>> cdfs;
  for (const auto vantage : net::kAllVantages) {
    const auto outcomes = bench::sweep(Service::kYouTube, Container::kHtml5,
                                       Application::kChrome, vantage,
                                       video::DatasetId::kYouHtml, n, 801);
    stats::EmpiricalCdf blocks;
    for (const auto& o : outcomes) {
      for (const double b : o.analysis.block_sizes_bytes) blocks.add(b);
    }
    const std::string label =
        vantage == net::Vantage::kResearch ? "Rsrch (Cr)" : std::string{net::vantage_name(vantage)};
    cdfs.emplace_back(label, std::move(blocks));
  }
  {
    const auto outcomes = bench::sweep(Service::kYouTube, Container::kHtml5,
                                       Application::kAndroidNative, net::Vantage::kResearch,
                                       video::DatasetId::kYouMob, n, 802);
    stats::EmpiricalCdf blocks;
    for (const auto& o : outcomes) {
      for (const double b : o.analysis.block_sizes_bytes) blocks.add(b);
    }
    cdfs.emplace_back("Rsrch (And.)", std::move(blocks));
  }
  bench::print_cdf_table(cdfs, "MB", 1.0 / 1048576.0);
  std::printf("\n  paper: most blocks > 2.5 MB. measured medians:\n");
  for (const auto& [name, cdf] : cdfs) {
    if (!cdf.empty()) {
      std::printf("    %-12s %.2f MB %s\n", name.c_str(), cdf.inverse(0.5) / 1048576.0,
                  cdf.inverse(0.5) > 2.5 * 1048576.0 ? "(> 2.5 MB)" : "(< 2.5 MB)");
    }
  }
}

void BM_Fig6ChromeSession(benchmark::State& state) {
  video::VideoMeta v;
  v.id = "bm6";
  v.duration_s = 900.0;
  v.encoding_bps = 1.2e6;
  v.container = Container::kHtml5;
  const auto cfg = bench::make_config(Service::kYouTube, Container::kHtml5,
                                      Application::kChrome, net::Vantage::kResearch, v, 17);
  for (auto _ : state) {
    auto outcome = bench::run_and_analyze(cfg);
    benchmark::DoNotOptimize(outcome.analysis.max_off_s());
  }
}
BENCHMARK(BM_Fig6ChromeSession)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("fig6_long_onoff", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
