// Section 6.1, validated with the packet-level simulator itself.
//
// The model benches validate Eq (3)/(4) against an idealised flow-level
// Monte Carlo. Here we go one level deeper: superpose *packet-level*
// streaming sessions (each a full TCP/HTTP/pacing simulation) with Poisson
// arrival offsets, bin the aggregate download rate, and compare its mean
// and variance with the closed forms. This also demonstrates the
// strategy-independence claim on real traffic, not just on the idealised
// rate functions.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "model/aggregate.hpp"
#include "stats/descriptive.hpp"
#include "stats/timeseries.hpp"
#include "support.hpp"

namespace {

using namespace vstream;
using streaming::Application;
using streaming::Service;
using video::Container;

struct AggregateOutcome {
  double mean_bps{0.0};
  double variance{0.0};
  double mean_encoding_bps{0.0};
  double mean_duration_s{0.0};
  double mean_on_rate_bps{0.0};
  std::size_t sessions{0};
};

/// Superpose sessions of one strategy with Poisson(lambda) arrivals. At
/// most `n` sessions are run; the observation window shrinks to what the
/// arrivals actually cover so the intensity stays exactly lambda.
AggregateOutcome superpose(Container container, Application application, double lambda,
                           std::size_t n, std::uint64_t seed) {
  sim::Rng rng{seed};
  constexpr double kDuration = 120.0;  // per-video playback length
  constexpr double kMaxHorizon = 600.0;

  // Generate the arrival process first so the window is known.
  std::vector<double> arrivals;
  double t = 0.0;
  while (arrivals.size() < n) {
    t += rng.exponential(lambda);
    if (t > kMaxHorizon) break;
    arrivals.push_back(t);
  }
  const double horizon = std::min(kMaxHorizon, t);
  AggregateOutcome out;
  if (horizon <= 150.0 || arrivals.empty()) return out;
  stats::RateBinner binner{100.0, horizon, 1.0};  // skip the ramp-up

  std::size_t launched = 0;
  stats::OnlineStats on_rate;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double arrival = arrivals[i];
    video::VideoMeta v;
    v.id = "agg" + std::to_string(i);
    v.duration_s = kDuration;
    v.encoding_bps = rng.uniform(0.6e6, 1.4e6);
    v.container = container;
    auto cfg = bench::make_config(Service::kYouTube, container, application,
                                  net::Vantage::kResearch, v, seed + i);
    cfg.capture_duration_s = kDuration * 1.6;  // let throttled sessions finish
    const auto result = streaming::run_session(cfg);
    out.mean_encoding_bps += v.encoding_bps;
    out.mean_duration_s += v.duration_s;
    ++launched;
    // Shift the session's packets by its arrival time and bin them.
    double on_bytes = 0.0;
    double on_time = 0.0;
    double prev_t = -1.0;
    for (const auto& p : result.trace.packets) {
      if (p.direction != net::Direction::kDown || p.payload_bytes == 0) continue;
      binner.add(arrival + p.t_s, static_cast<double>(p.payload_bytes) * 8.0);
      if (prev_t >= 0.0 && p.t_s - prev_t < 0.05) {
        on_time += p.t_s - prev_t;
        on_bytes += p.payload_bytes;
      }
      prev_t = p.t_s;
    }
    if (on_time > 0.0) on_rate.add(on_bytes * 8.0 / on_time);
  }
  const auto series = binner.series();
  out.mean_bps = stats::mean(series.values);
  out.variance = stats::variance(series.values);
  out.mean_encoding_bps /= static_cast<double>(launched);
  out.mean_duration_s /= static_cast<double>(launched);
  out.mean_on_rate_bps = on_rate.mean();
  out.sessions = launched;
  return out;
}

void print_reproduction() {
  bench::print_header("Section 6.1 -- packet-level validation of the aggregate model",
                      "Rao et al., CoNEXT 2011, Eq (3)/(4) over simulated TCP traffic");
  const double lambda = 0.25;
  const std::size_t n = std::max<std::size_t>(60, bench::sessions_per_sweep() * 2);

  struct Case {
    const char* name;
    Container container;
    Application application;
  };
  const Case cases[] = {
      {"No ON-OFF (HTML5/Firefox)", Container::kHtml5, Application::kFirefox},
      {"Short ON-OFF (Flash)", Container::kFlash, Application::kInternetExplorer},
      {"Long ON-OFF (HTML5/Chrome)", Container::kHtml5, Application::kChrome},
  };

  std::printf("lambda = %.2f sessions/s, ~1 Mbps 120 s videos, Research network\n\n", lambda);
  std::printf("%-28s %9s %12s %12s %12s\n", "strategy", "sessions", "mean [Mbps]", "eq(3)",
              "sd [Mbps]");
  for (const auto& c : cases) {
    const auto outcome = superpose(c.container, c.application, lambda, n, 9001);
    model::AggregateParams p;
    p.lambda_per_s = lambda;
    p.mean_encoding_bps = outcome.mean_encoding_bps;
    p.mean_duration_s = outcome.mean_duration_s;
    p.mean_download_rate_bps = outcome.mean_on_rate_bps;
    std::printf("%-28s %9zu %12.2f %12.2f %12.2f\n", c.name, outcome.sessions,
                outcome.mean_bps / 1e6, model::mean_aggregate_rate_bps(p) / 1e6,
                std::sqrt(outcome.variance) / 1e6);
  }
  std::printf(
      "\nnotes:\n"
      "  - the mean aggregate rate is strategy-independent (Section 6.1\n"
      "    conclusion 2): the three mean columns agree with Eq (3).\n"
      "  - the measured sd depends on the observation timescale: 1 s bins\n"
      "    average out Flash's sub-second 64 kB cycles (so Short measures a\n"
      "    lower sd at this scale), while bulk and multi-MB long cycles stay\n"
      "    bursty. Eq (4)'s G is the rate visible at the chosen timescale --\n"
      "    the paper's variance identity holds per timescale, which the\n"
      "    flow-level Monte Carlo (bench_model_aggregate) verifies exactly.\n");
}

void BM_SuperposeSessions(benchmark::State& state) {
  for (auto _ : state) {
    auto outcome = superpose(Container::kFlash, Application::kInternetExplorer, 0.2,
                             static_cast<std::size_t>(state.range(0)), 9001);
    benchmark::DoNotOptimize(outcome.mean_bps);
  }
  state.SetLabel(std::to_string(state.range(0)) + " sessions");
}
BENCHMARK(BM_SuperposeSessions)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("model_empirical", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
