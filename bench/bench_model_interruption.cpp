// Section 6.2 — User interruptions: unused bytes and wasted bandwidth.
//
// Reproduces the worked example (B'=40 s, k=1.25, beta=0.2 => L=53.3 s),
// evaluates Eq (8)/(9) across buffering amounts and accumulation ratios,
// and runs the Monte-Carlo estimator with the Finamore et al. viewing
// pattern the paper cites (60% of videos watched < 20% of their duration).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/interruption.hpp"
#include "support.hpp"
#include "video/viewing.hpp"

namespace {

using namespace vstream;
using model::InterruptionParams;
using model::WasteMonteCarloConfig;

WasteMonteCarloConfig finamore_config(double buffered_s, double ratio) {
  WasteMonteCarloConfig cfg;
  cfg.lambda_per_s = 1.0;
  cfg.draws = 50000;
  cfg.seed = 11;
  cfg.buffered_playback_s = buffered_s;
  cfg.accumulation_ratio = ratio;
  cfg.draw_encoding_bps = [](sim::Rng& r) { return r.uniform(0.2e6, 1.5e6); };
  cfg.draw_duration_s = [](sim::Rng& r) {
    return std::clamp(r.lognormal(std::log(210.0), 0.8), 30.0, 3600.0);
  };
  // Finamore/Huang viewing model: 60% of typical videos watched < 20%,
  // longer videos abandoned earlier.
  cfg.draw_beta = [](sim::Rng& r) {
    static const video::ViewingModel kViewing;
    return std::min(0.999, kViewing.draw_watch_fraction(r, 210.0));
  };
  return cfg;
}

void print_reproduction() {
  bench::print_header("Section 6.2 -- interruptions and wasted bandwidth",
                      "Rao et al., CoNEXT 2011, Eq (5)-(9)");

  std::printf("worked example (paper, end of 6.2):\n");
  const double critical = model::critical_duration_s(40.0, 1.25, 0.2);
  std::printf("  B'=40 s, k=1.25, beta=0.2  =>  critical duration L = %.1f s (paper: 53.3 s)\n",
              critical);
  std::printf("  videos shorter than %.1f s are fully downloaded before 20%% is watched\n\n",
              critical);

  std::printf("Eq (8): unused bytes for one 1 Mbps video, beta=0.2, k=1.25, B'=40 s:\n");
  std::printf("  %10s %14s %22s\n", "L [s]", "unused [MB]", "fully downloaded?");
  for (const double duration : {30.0, 53.3, 120.0, 300.0, 600.0, 1800.0}) {
    InterruptionParams p;
    p.encoding_bps = 1e6;
    p.duration_s = duration;
    p.buffered_playback_s = 40.0;
    p.accumulation_ratio = 1.25;
    p.beta = 0.2;
    std::printf("  %10.1f %14.2f %22s\n", duration, model::unused_bytes(p) / 1048576.0,
                model::downloads_whole_video_before_interruption(p) ? "yes" : "no");
  }

  std::printf("\nEq (9): wasted bandwidth under the Finamore viewing pattern\n");
  std::printf("(lambda = 1 session/s, YouTube-like population)\n\n");
  std::printf("  %10s %6s %16s %16s %10s\n", "B' [s]", "k", "wasted [Mbps]", "useful [Mbps]",
              "waste %");
  for (const double buffered : {5.0, 20.0, 40.0, 80.0}) {
    for (const double ratio : {1.0, 1.25, 1.5}) {
      const auto est = model::estimate_wasted_bandwidth(finamore_config(buffered, ratio));
      std::printf("  %10.0f %6.2f %16.2f %16.2f %9.1f%%\n", buffered, ratio,
                  est.wasted_bps / 1e6, est.useful_bps / 1e6, est.waste_fraction * 100.0);
    }
  }
  std::printf("\n  -> the paper's recommendation: adapt B' and k downwards to curb waste;\n"
              "     both knobs reduce wasted bandwidth monotonically in the table above.\n");

  std::printf("\ncross-check against the packet-level simulator (one session):\n");
  video::VideoMeta v;
  v.id = "waste";
  v.duration_s = 600.0;
  v.encoding_bps = 1e6;
  v.container = video::Container::kFlash;
  auto cfg = bench::make_config(streaming::Service::kYouTube, video::Container::kFlash,
                                streaming::Application::kInternetExplorer,
                                net::Vantage::kResearch, v, 13);
  cfg.watch_fraction = 0.2;
  const auto outcome = bench::run_and_analyze(cfg);
  InterruptionParams p;
  p.encoding_bps = 1e6;
  p.duration_s = 600.0;
  p.buffered_playback_s = 40.0;
  p.accumulation_ratio = 1.25;
  p.beta = 0.2;
  std::printf("  model Eq(8) unused bytes   : %.2f MB\n", model::unused_bytes(p) / 1048576.0);
  std::printf("  simulated unused bytes     : %.2f MB\n",
              outcome.result.player.unused_bytes() / 1048576.0);
}

void BM_WasteMonteCarlo(benchmark::State& state) {
  auto cfg = finamore_config(40.0, 1.25);
  cfg.draws = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto est = model::estimate_wasted_bandwidth(cfg);
    benchmark::DoNotOptimize(est.wasted_bps);
  }
  state.SetLabel(std::to_string(state.range(0)) + " draws");
}
BENCHMARK(BM_WasteMonteCarlo)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vstream::bench::RunTelemetry::instance().init("model_interruption", &argc, argv);
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vstream::bench::RunTelemetry::instance().finalize();
  return 0;
}
