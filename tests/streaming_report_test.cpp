// Equivalence tests for the single-pass analysis pipeline: the
// StreamingReportBuilder must produce a SessionReport field-identical to
// the multi-pass batch `build_report` — on every catalog scenario and on
// randomized synthetic traces exercising the awkward cases (timestamp
// ties, zero-window probe episodes, multiple connections, retransmissions).
#include <gtest/gtest.h>

#include <string>

#include "analysis/report.hpp"
#include "analysis/report_json.hpp"
#include "analysis/streaming_report.hpp"
#include "capture/trace.hpp"
#include "sim/rng.hpp"
#include "streaming/scenarios.hpp"
#include "streaming/session.hpp"

namespace vstream {
namespace {

/// Feed a whole trace to a fresh builder, mirroring the metadata the batch
/// path reads off the trace itself.
analysis::SessionReport stream_over(const capture::PacketTrace& trace,
                                    const analysis::ReportOptions& options = {},
                                    bool* stale = nullptr) {
  analysis::StreamingReportBuilder builder{options};
  for (const auto& p : trace.packets) builder.add(p);
  builder.set_label(trace.label);
  builder.set_duration_s(trace.duration_s);
  builder.set_encoding_bps(trace.encoding_bps);
  if (stale != nullptr) *stale = builder.first_rtt_stale();
  return builder.finish();
}

TEST(StreamingReportTest, CatalogScenariosBatchIdentical) {
  // Every supported Table-1 combination: the in-session streamed report must
  // equal the batch report built afterwards over the owned video trace.
  for (const auto& scenario : streaming::canonical_scenarios(20.0)) {
    auto cfg = scenario.config;
    cfg.streaming_report = true;
    const auto result = streaming::run_session(cfg);
    ASSERT_TRUE(result.report.has_value()) << scenario.name;
    const auto batch = analysis::build_report(result.video_trace());
    EXPECT_EQ(*result.report, batch) << scenario.name;
    // Belt and braces: the machine-readable rendering agrees byte for byte.
    EXPECT_EQ(analysis::to_json(*result.report), analysis::to_json(batch)) << scenario.name;
  }
}

TEST(StreamingReportTest, FaultScenariosBatchIdenticalWithMirroredResilience) {
  // Fault runs carry non-zero ResilienceStats that only the session knows
  // (retries, rebuffers, fault drops are not derivable from packets). The
  // equivalence contract still holds once the batch side is handed the same
  // stats via ReportOptions::resilience — exactly how SessionResult
  // documents they should be mirrored.
  for (const auto& scenario : streaming::fault_scenarios(15.0)) {
    auto cfg = scenario.config;
    cfg.streaming_report = true;
    const auto result = streaming::run_session(cfg);
    ASSERT_TRUE(result.report.has_value()) << scenario.name;
    analysis::ReportOptions options;
    options.resilience = result.resilience;
    const auto batch = analysis::build_report(result.video_trace(), options);
    EXPECT_EQ(*result.report, batch) << scenario.name;
    EXPECT_EQ(analysis::to_json(*result.report), analysis::to_json(batch)) << scenario.name;
  }
}

TEST(StreamingReportTest, StoreTraceOffStillDeliversTheReport) {
  auto scenarios = streaming::canonical_scenarios(20.0);
  ASSERT_FALSE(scenarios.empty());
  auto cfg = scenarios.front().config;

  auto batch_cfg = cfg;
  const auto batch_run = streaming::run_session(batch_cfg);
  const auto batch = analysis::build_report(batch_run.video_trace());

  auto lean_cfg = cfg;
  lean_cfg.store_trace = false;
  lean_cfg.streaming_report = true;
  const auto lean_run = streaming::run_session(lean_cfg);

  EXPECT_TRUE(lean_run.trace.packets.empty());
  ASSERT_TRUE(lean_run.report.has_value());
  // Same seed, same world: the streamed report equals the twin's batch one.
  EXPECT_EQ(*lean_run.report, batch);
  EXPECT_EQ(lean_run.connections, batch.connections);
  EXPECT_EQ(lean_run.bytes_downloaded, batch_run.bytes_downloaded);
}

TEST(StreamingReportTest, SessionStreamingReportMatchesPostHocStreaming) {
  // The sink-fed in-session builder and a post-hoc builder over the stored
  // video trace see the same records in the same order.
  auto cfg = streaming::canonical_scenarios(20.0).front().config;
  cfg.streaming_report = true;
  const auto result = streaming::run_session(cfg);
  ASSERT_TRUE(result.report.has_value());
  EXPECT_EQ(*result.report, stream_over(result.trace));
}

// ---- randomized synthetic traces ----------------------------------------

capture::PacketRecord rec(double t, net::Direction dir, std::uint64_t conn,
                          std::uint32_t payload, net::TcpFlag flags, bool retx,
                          std::uint64_t window) {
  capture::PacketRecord r;
  r.t_s = t;
  r.direction = dir;
  r.host = 0;
  r.connection_id = conn;
  r.payload_bytes = payload;
  r.flags = flags;
  r.is_retransmission = retx;
  r.window_bytes = window;
  return r;
}

/// Randomized but deterministic-per-seed session trace with the edge cases
/// the accumulators must get right: multiple connections with staggered
/// handshakes, timestamp ties, retransmissions, zero-window probe episodes,
/// and ON/OFF gaps straddling the 0.15 s threshold.
capture::PacketTrace random_trace(std::uint64_t seed) {
  sim::Rng rng{seed};
  capture::PacketTrace trace;
  trace.label = "random-" + std::to_string(seed);
  trace.encoding_bps = rng.uniform(0.8e6, 2.5e6);

  const auto conns = static_cast<std::uint64_t>(rng.uniform_int(1, 3));
  double t = 0.0;
  for (std::uint64_t c = 0; c < conns; ++c) {  // staggered handshakes first
    const double rtt = rng.uniform(0.01, 0.08);
    trace.packets.push_back(rec(t, net::Direction::kUp, c, 0, net::TcpFlag::kSyn, false, 65536));
    trace.packets.push_back(rec(t + rtt / 2, net::Direction::kDown, c, 0,
                                net::TcpFlag::kSyn | net::TcpFlag::kAck, false, 65536));
    trace.packets.push_back(
        rec(t + rtt, net::Direction::kUp, c, 0, net::TcpFlag::kAck, false, 65536));
    t += rtt + rng.uniform(0.005, 0.02);
  }

  const double horizon = rng.uniform(20.0, 40.0);
  std::uint64_t seq = 1;
  while (t < horizon) {
    // OFF gap: sometimes below the 0.15 s threshold (same ON period),
    // sometimes well above (new cycle).
    t += rng.bernoulli(0.3) ? rng.uniform(0.01, 0.12) : rng.uniform(0.2, 1.2);
    const auto conn = static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(conns) - 1));
    const int block = static_cast<int>(rng.uniform_int(3, 50));
    for (int i = 0; i < block; ++i) {
      const bool retx = rng.bernoulli(0.06);
      trace.packets.push_back(rec(t, net::Direction::kDown, conn, 1448,
                                  net::TcpFlag::kAck | net::TcpFlag::kPsh, retx, 262144));
      seq += retx ? 0 : 1448;
      if (rng.bernoulli(0.3)) {
        // ACK at the exact same timestamp: a tie the binning and the ON/OFF
        // state machine must order identically in both pipelines.
        trace.packets.push_back(
            rec(t, net::Direction::kUp, conn, 0, net::TcpFlag::kAck, false, 262144));
      }
      t += rng.uniform(0.0005, 0.004);
    }
    if (rng.bernoulli(0.25)) {
      // Zero-window episode: advertisement closes, server probes with tiny
      // (sub-64-byte) payloads, window reopens.
      trace.packets.push_back(
          rec(t, net::Direction::kUp, conn, 0, net::TcpFlag::kAck, false, 0));
      const int probes = static_cast<int>(rng.uniform_int(1, 4));
      for (int i = 0; i < probes; ++i) {
        t += rng.uniform(0.05, 0.3);
        trace.packets.push_back(rec(t, net::Direction::kDown, conn, 1,
                                    net::TcpFlag::kAck, false, 262144));
        trace.packets.push_back(
            rec(t, net::Direction::kUp, conn, 0, net::TcpFlag::kAck, false, 0));
      }
      t += rng.uniform(0.02, 0.1);
      trace.packets.push_back(
          rec(t, net::Direction::kUp, conn, 0, net::TcpFlag::kAck, false, 262144));
    }
  }
  trace.duration_s = t;
  return trace;
}

TEST(StreamingReportTest, RandomizedTracesBatchIdentical) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto trace = random_trace(seed);
    bool stale = false;
    const auto streamed = stream_over(trace, {}, &stale);
    const auto batch = analysis::build_report(trace);
    EXPECT_EQ(streamed, batch) << "seed " << seed;
    EXPECT_EQ(analysis::to_json(streamed), analysis::to_json(batch)) << "seed " << seed;
    // Handshakes complete before steady state in these traces, so the
    // single-pass first-RTT windows are never built on a stale estimate.
    EXPECT_FALSE(stale) << "seed " << seed;
  }
}

TEST(StreamingReportTest, ExplicitOptionsFlowThrough) {
  const auto trace = random_trace(99);
  analysis::ReportOptions options;
  options.encoding_bps = 2.0e6;
  options.onoff.gap_threshold_s = 0.25;
  options.estimate_periodicity = false;
  const auto streamed = stream_over(trace, options);
  const auto batch = analysis::build_report(trace, options);
  EXPECT_EQ(streamed, batch);
  EXPECT_FALSE(streamed.cycle_period_s.has_value());
}

TEST(StreamingReportTest, EmptyStreamMatchesEmptyTrace) {
  const capture::PacketTrace empty;
  EXPECT_EQ(stream_over(empty), analysis::build_report(empty));
}

}  // namespace
}  // namespace vstream
