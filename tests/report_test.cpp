// Tests for the SessionReport aggregation and the migration-scenario model.
#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "model/migration.hpp"
#include "net/profile.hpp"
#include "streaming/session_builder.hpp"

namespace vstream {
namespace {

streaming::SessionConfig flash_config() {
  auto network = net::profile_for(net::Vantage::kResearch);
  network.loss_rate = 0.0;
  video::VideoMeta meta;
  meta.id = "r";
  meta.duration_s = 600.0;
  meta.encoding_bps = 1e6;
  return streaming::SessionBuilder{}
      .service(streaming::Service::kYouTube)
      .container(video::Container::kFlash)
      .application(streaming::Application::kInternetExplorer)
      .network(network)
      .video(meta)
      .capture_duration_s(120.0)
      .seed(5)
      .build();
}

TEST(SessionReportTest, FlashSessionFieldsPopulated) {
  const auto result = streaming::run_session(flash_config());
  analysis::ReportOptions opts;
  opts.encoding_bps = result.encoding_bps_true;
  const auto report = analysis::build_report(result.trace, opts);

  EXPECT_EQ(report.strategy, analysis::Strategy::kShortOnOff);
  EXPECT_TRUE(report.has_steady_state);
  EXPECT_NEAR(report.median_block_kb, 64.0, 5.0);
  ASSERT_TRUE(report.accumulation_ratio.has_value());
  EXPECT_NEAR(*report.accumulation_ratio, 1.25, 0.1);
  ASSERT_TRUE(report.buffered_playback_s.has_value());
  EXPECT_NEAR(*report.buffered_playback_s, 40.0, 8.0);
  ASSERT_TRUE(report.rtt_ms.has_value());
  EXPECT_NEAR(*report.rtt_ms, 20.0, 5.0);
  ASSERT_TRUE(report.median_first_rtt_kb.has_value());
  EXPECT_NEAR(*report.median_first_rtt_kb, 64.0, 10.0);  // no ack clock
  ASSERT_TRUE(report.cycle_period_s.has_value());
  EXPECT_NEAR(*report.cycle_period_s, 0.42, 0.1);
  EXPECT_EQ(report.connections, 1U);
  EXPECT_GT(report.packets, 1000U);
}

TEST(SessionReportTest, RenderContainsKeyLines) {
  const auto result = streaming::run_session(flash_config());
  const auto report = analysis::build_report(result.trace);
  const std::string text = report.render();
  EXPECT_NE(text.find("strategy"), std::string::npos);
  EXPECT_NE(text.find("Short ON-OFF"), std::string::npos);
  EXPECT_NE(text.find("buffering"), std::string::npos);
  EXPECT_NE(text.find("steady state"), std::string::npos);
  EXPECT_NE(text.find("zero-window"), std::string::npos);
}

TEST(SessionReportTest, EmptyTraceRendersGracefully) {
  const auto report = analysis::build_report(capture::PacketTrace{});
  EXPECT_EQ(report.strategy, analysis::Strategy::kNoOnOff);
  EXPECT_FALSE(report.has_steady_state);
  EXPECT_FALSE(report.rtt_ms.has_value());
  EXPECT_FALSE(report.render().empty());
}

// --------------------------------------------------------------- migration

TEST(MigrationTest, ProfilesSumAndEvaluate) {
  const auto scenarios = model::paper_conclusion_scenarios(1.0);
  ASSERT_EQ(scenarios.size(), 4U);
  for (const auto& s : scenarios) {
    EXPECT_NEAR(s.total_share(), 1.0, 1e-9) << s.name;
    const auto impact = model::evaluate_scenario(s, 5000);
    EXPECT_GT(impact.mean_rate_bps, 0.0) << s.name;
    EXPECT_GT(impact.rate_sd_bps, 0.0) << s.name;
    EXPECT_GT(impact.wasted_bps, 0.0) << s.name;
    EXPECT_GT(impact.waste_fraction, 0.0) << s.name;
    EXPECT_LT(impact.waste_fraction, 1.0) << s.name;
  }
}

TEST(MigrationTest, EqualRatesKeepMeanRateStable) {
  // Section 6.1 conclusion 2 at population scale: swapping strategies with
  // equal encoding rates leaves E[R] unchanged.
  const auto scenarios = model::paper_conclusion_scenarios(1.0);
  const auto status_quo = model::evaluate_scenario(scenarios[0], 5000);
  const auto html5 = model::evaluate_scenario(scenarios[1], 5000);
  EXPECT_NEAR(html5.mean_rate_bps, status_quo.mean_rate_bps, status_quo.mean_rate_bps * 0.01);
}

TEST(MigrationTest, Html5MigrationIncreasesWaste) {
  // HTML5 clients buffer 10-15 MB regardless of rate => more unused bytes.
  const auto scenarios = model::paper_conclusion_scenarios(1.0);
  const auto status_quo = model::evaluate_scenario(scenarios[0], 20000);
  const auto html5 = model::evaluate_scenario(scenarios[1], 20000);
  EXPECT_GT(html5.wasted_bps, status_quo.wasted_bps);
}

TEST(MigrationTest, HdMigrationScalesRateLinearly) {
  const auto scenarios = model::paper_conclusion_scenarios(1.0);
  const auto status_quo = model::evaluate_scenario(scenarios[0], 5000);
  const auto hd = model::evaluate_scenario(scenarios[3], 5000);
  EXPECT_GT(hd.mean_rate_bps, 1.5 * status_quo.mean_rate_bps);
  // Smoother: coefficient of variation decreases.
  const double cov_before = status_quo.rate_sd_bps / status_quo.mean_rate_bps;
  const double cov_after = hd.rate_sd_bps / hd.mean_rate_bps;
  EXPECT_LT(cov_after, cov_before);
}

TEST(MigrationTest, ValidatesInput) {
  model::MigrationScenario empty;
  EXPECT_THROW((void)model::evaluate_scenario(empty), std::invalid_argument);
  model::MigrationScenario zero;
  zero.mix = {model::StrategyProfile::youtube_flash(0.0)};
  EXPECT_THROW((void)model::evaluate_scenario(zero), std::invalid_argument);
}

TEST(MigrationTest, ShareScalesLambdaProportionally) {
  model::MigrationScenario half;
  half.name = "half";
  half.lambda_per_s = 1.0;
  half.mix = {model::StrategyProfile::youtube_flash(1.0)};
  const auto full_impact = model::evaluate_scenario(half, 5000);

  model::MigrationScenario doubled = half;
  doubled.lambda_per_s = 2.0;
  const auto double_impact = model::evaluate_scenario(doubled, 5000);
  EXPECT_NEAR(double_impact.mean_rate_bps, 2.0 * full_impact.mean_rate_bps,
              full_impact.mean_rate_bps * 0.01);
}

}  // namespace
}  // namespace vstream
