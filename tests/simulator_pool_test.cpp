// Unit tests for the slot-pool event arena: handle/generation safety across
// slot recycling, SBO-vs-heap callable storage, FIFO tie ordering, and the
// free-list bookkeeping the simulator's invariants rest on.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/arena.hpp"
#include "sim/callback.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace vstream::sim {
namespace {

TEST(EventArenaTest, StaleHandleCannotCancelRecycledSlotOccupant) {
  Simulator sim;
  bool b_fired = false;

  // A takes a fresh slot; cancelling it releases the slot onto the free
  // list (LIFO), so B reuses the very same slot with a bumped generation.
  auto a = sim.schedule_at(SimTime::from_seconds(1.0), [] {});
  ASSERT_EQ(sim.arena_slots(), 1u);
  a.cancel();
  ASSERT_EQ(sim.arena_free_slots(), 1u);

  auto b = sim.schedule_at(SimTime::from_seconds(2.0), [&b_fired] { b_fired = true; });
  ASSERT_EQ(sim.arena_slots(), 1u);  // recycled, not grown

  // The stale handle must be inert against the slot's new occupant.
  a.cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());

  sim.run();
  EXPECT_TRUE(b_fired);
}

TEST(EventArenaTest, StaleHandleAfterFireCannotCancelNewOccupant) {
  Simulator sim;
  bool b_fired = false;

  auto a = sim.schedule_at(SimTime::from_seconds(1.0), [] {});
  sim.run();  // A fires, its slot returns to the free list

  auto b = sim.schedule_at(SimTime::from_seconds(2.0), [&b_fired] { b_fired = true; });
  ASSERT_EQ(sim.arena_slots(), 1u);  // B recycled A's slot

  a.cancel();  // must not touch B
  EXPECT_TRUE(b.pending());
  sim.run();
  EXPECT_TRUE(b_fired);
}

TEST(EventArenaTest, CancelAfterFireIsNoOp) {
  Simulator sim;
  int fires = 0;
  auto h = sim.schedule_at(SimTime::from_seconds(1.0), [&fires] { ++fires; });
  EXPECT_TRUE(h.pending());
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // already fired: no-op, no crash
  h.cancel();  // idempotent
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(EventArenaTest, HandleReadsNotPendingDuringOwnCallback) {
  Simulator sim;
  Simulator::Handle h;
  bool observed_pending = true;
  h = sim.schedule_at(SimTime::from_seconds(1.0), [&] {
    observed_pending = h.pending();
    h.cancel();  // self-cancel mid-dispatch must be harmless
  });
  sim.run();
  EXPECT_FALSE(observed_pending);
}

TEST(EventArenaTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no simulator attached: no-op
}

TEST(EventArenaTest, FifoOrderAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  const auto t = SimTime::from_seconds(5.0);
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  // Interleave an earlier and a later event around the tie group.
  sim.schedule_at(SimTime::from_seconds(1.0), [&order] { order.push_back(-1); });
  sim.schedule_at(SimTime::from_seconds(9.0), [&order] { order.push_back(99); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6, 7, 99}));
}

TEST(EventArenaTest, FifoOrderSurvivesCancellationHoles) {
  Simulator sim;
  std::vector<int> order;
  const auto t = SimTime::from_seconds(5.0);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(sim.schedule_at(t, [&order, i] { order.push_back(i); }));
  }
  handles[1].cancel();
  handles[4].cancel();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5}));
}

TEST(EventArenaTest, SlotsRecycleInsteadOfGrowing) {
  Simulator sim;
  // Sequential schedule/fire cycles should keep reusing one slot.
  for (int round = 0; round < 10; ++round) {
    sim.schedule_after(Duration::millis(1), [] {});
    sim.run();
  }
  EXPECT_EQ(sim.arena_slots(), 1u);
  EXPECT_EQ(sim.arena_free_slots(), 1u);

  // A burst of concurrent events grows the arena to the burst width...
  for (int i = 0; i < 16; ++i) sim.schedule_after(Duration::millis(1 + i), [] {});
  EXPECT_EQ(sim.arena_slots(), 16u);
  EXPECT_EQ(sim.arena_free_slots(), 0u);
  sim.run();
  // ...and every slot returns to the free list afterwards.
  EXPECT_EQ(sim.arena_free_slots(), 16u);

  // The next burst of the same width reuses the pool without growth.
  for (int i = 0; i < 16; ++i) sim.schedule_after(Duration::millis(1 + i), [] {});
  EXPECT_EQ(sim.arena_slots(), 16u);
  sim.run();
}

TEST(EventArenaTest, CallbackMaySchedulewhileExecutingInPlace) {
  Simulator sim;
  // The firing callback executes in place in its arena slot; scheduling a
  // burst from inside it grows the arena mid-dispatch. std::deque slot
  // storage keeps the executing closure valid through that growth.
  int fired = 0;
  sim.schedule_after(Duration::millis(1), [&] {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_after(Duration::millis(1 + i), [&fired] { ++fired; });
    }
  });
  sim.run();
  EXPECT_EQ(fired, 64);
  EXPECT_EQ(sim.events_processed(), 65u);
}

TEST(SimCallbackTest, SmallCapturesStayInline) {
  int counter = 0;
  SimCallback cb{[&counter] { ++counter; }};
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.stored_inline());
  cb();
  EXPECT_EQ(counter, 1);

  // Typical simulator capture shape: this-pointer plus a payload struct.
  struct Payload {
    std::array<std::uint64_t, 8> words{};
  };
  static_assert(SimCallback::fits_inline<decltype([p = Payload{}] { (void)p; })>());
}

TEST(SimCallbackTest, OversizedCapturesFallBackToHeap) {
  struct Big {
    std::array<std::byte, SimCallback::kInlineBytes + 64> blob{};
  };
  static_assert(!SimCallback::fits_inline<decltype([b = Big{}] { (void)b; })>());

  int counter = 0;
  Big big;
  big.blob[0] = std::byte{42};
  SimCallback cb{[&counter, b = big] { counter += static_cast<int>(b.blob[0]); }};
  EXPECT_FALSE(cb.stored_inline());
  cb();
  EXPECT_EQ(counter, 42);
}

TEST(SimCallbackTest, MoveTransfersOwnershipForBothStorageKinds) {
  // Inline: relocated by move-construct into the destination buffer.
  int hits = 0;
  SimCallback inline_cb{[&hits] { ++hits; }};
  SimCallback moved_inline{std::move(inline_cb)};
  EXPECT_FALSE(static_cast<bool>(inline_cb));  // NOLINT(bugprone-use-after-move): post-move empty state is the contract under test
  EXPECT_TRUE(moved_inline.stored_inline());
  moved_inline();
  EXPECT_EQ(hits, 1);

  // Heap: the owning pointer cell transfers, no reallocation.
  struct Big {
    std::array<std::byte, SimCallback::kInlineBytes + 1> blob{};
  };
  SimCallback heap_cb{[&hits, b = Big{}] {
    (void)b;
    ++hits;
  }};
  SimCallback moved_heap;
  moved_heap = std::move(heap_cb);
  EXPECT_FALSE(static_cast<bool>(heap_cb));  // NOLINT(bugprone-use-after-move): post-move empty state is the contract under test
  EXPECT_FALSE(moved_heap.stored_inline());
  moved_heap();
  EXPECT_EQ(hits, 2);
}

TEST(SimCallbackTest, ArenaRunsBothStorageKinds) {
  Simulator sim;
  struct Big {
    std::array<std::byte, SimCallback::kInlineBytes + 16> blob{};
  };
  int total = 0;
  sim.schedule_after(Duration::millis(1), [&total] { total += 1; });  // inline path
  Big big;
  sim.schedule_after(Duration::millis(2), [&total, b = big] {  // heap fallback path
    (void)b;
    total += 10;
  });
  sim.run();
  EXPECT_EQ(total, 11);
}

TEST(SimCallbackTest, EmptyCallbackRejectedAtScheduleBoundary) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(SimTime::zero(), SimCallback{}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(Duration::millis(1), SimCallback{}), std::invalid_argument);
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.arena_free_slots(), sim.arena_slots());  // nothing leaked mid-throw
}

TEST(SimCallbackTest, PrebuiltCallbackSchedules) {
  Simulator sim;
  int fires = 0;
  SimCallback cb{[&fires] { ++fires; }};
  sim.schedule_after(Duration::millis(1), std::move(cb));
  sim.run();
  EXPECT_EQ(fires, 1);
}

TEST(SimCallbackTest, HeapFallbackCounterStaysZeroOnCommonShapes) {
  Simulator sim;
  int fires = 0;
  double rate = 2.5e6;
  std::uint64_t seq = 7;
  sim.schedule_after(Duration::millis(1), [&fires] { ++fires; });
  sim.schedule_after(Duration::millis(2), [&fires, rate, seq] {
    ++fires;
    (void)rate;
    (void)seq;
  });
  SimCallback prebuilt{[&fires] { ++fires; }};
  sim.schedule_after(Duration::millis(3), std::move(prebuilt));
  sim.run();
  EXPECT_EQ(fires, 3);
  // The wall's dynamic backstop: every common capture shape stays on the
  // SBO fast path, so nothing here may register a heap fallback.
  EXPECT_EQ(sim.heap_fallback_schedules(), 0u);
}

TEST(SimCallbackTest, HeapFallbackCounterCountsOversizedClosures) {
  Simulator sim;
  std::array<char, SimCallback::kInlineBytes + 1> big{};
  int fires = 0;
  sim.schedule_after(Duration::millis(1), [big, &fires] {
    ++fires;
    (void)big;
  });  // vstream-ast-lint: allow(capture-size): deliberately oversized — this test proves the dynamic counter sees what the static pass flags
  SimCallback prebuilt{[big, &fires] {
    ++fires;
    (void)big;
  }};  // vstream-ast-lint: allow(capture-size): same deliberate overflow via the prebuilt-callback path
  EXPECT_FALSE(prebuilt.stored_inline());
  sim.schedule_after(Duration::millis(2), std::move(prebuilt));
  sim.run();
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(sim.heap_fallback_schedules(), 2u);
}

// ---- per-world allocator (sim/arena.hpp) ---------------------------------

TEST(ArenaResourceTest, BumpAllocatesAlignedAndCountsUse) {
  ArenaResource arena{1024};
  EXPECT_EQ(arena.chunk_count(), 0u);  // first chunk is lazy

  void* a = arena.allocate(10, 8);
  void* b = arena.allocate(10, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.chunk_count(), 1u);
  // bytes_in_use counts requested bytes; alignment padding is capacity-only.
  EXPECT_EQ(arena.bytes_in_use(), 20u);
  EXPECT_EQ(arena.allocations(), 2u);

  // Zero-byte requests still return distinct, valid pointers.
  void* z1 = arena.allocate(0, 1);
  void* z2 = arena.allocate(0, 1);
  EXPECT_NE(z1, z2);
}

TEST(ArenaResourceTest, GrowsByDoublingAndOversizeGetsOwnChunk) {
  ArenaResource arena{256};
  (void)arena.allocate(200, 8);
  EXPECT_EQ(arena.chunk_count(), 1u);
  (void)arena.allocate(200, 8);  // exhausts the 256-byte chunk → grow
  EXPECT_EQ(arena.chunk_count(), 2u);
  EXPECT_GE(arena.capacity_bytes(), 256u + 512u);

  // A request bigger than any doubling step gets a dedicated chunk.
  (void)arena.allocate(1 << 20, 8);
  EXPECT_GE(arena.capacity_bytes(), (1u << 20));
  EXPECT_EQ(arena.bytes_in_use(), 200u + 200u + (1u << 20));
}

TEST(ArenaResourceTest, ResetConsolidatesToOneWarmChunkAtHighWater) {
  ArenaResource arena{256};
  (void)arena.allocate(200, 8);
  (void)arena.allocate(300, 8);
  (void)arena.allocate(400, 8);
  const std::size_t high = arena.bytes_in_use();
  EXPECT_GE(arena.chunk_count(), 2u);

  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.high_water_bytes(), high);
  EXPECT_EQ(arena.resets(), 1u);
  // Steady state: one warm chunk large enough for the whole previous world.
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_GE(arena.capacity_bytes(), high);

  // The next world of the same shape fits without growing again.
  (void)arena.allocate(200, 8);
  (void)arena.allocate(300, 8);
  (void)arena.allocate(400, 8);
  EXPECT_EQ(arena.chunk_count(), 1u);
  arena.reset();
  EXPECT_EQ(arena.resets(), 2u);
}

TEST(ArenaAllocTest, NullArenaFallsBackToGlobalAllocator) {
  std::vector<int, ArenaAlloc<int>> v;  // default allocator: null arena
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 99);
  EXPECT_EQ(ArenaAlloc<int>{}.arena(), nullptr);
}

TEST(ArenaAllocTest, ArenaBackedContainerDrawsFromArena) {
  ArenaResource arena;
  {
    std::vector<int, ArenaAlloc<int>> v{ArenaAlloc<int>{&arena}};
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_EQ(v[999], 999);
    EXPECT_GE(arena.bytes_in_use(), 1000u * sizeof(int));
    EXPECT_GT(arena.allocations(), 0u);
  }
  // Destruction deallocates nothing (monotonic): only reset reclaims.
  EXPECT_GT(arena.bytes_in_use(), 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(ArenaAllocTest, EqualityFollowsTheArenaPointer) {
  ArenaResource a;
  ArenaResource b;
  EXPECT_TRUE((ArenaAlloc<int>{&a} == ArenaAlloc<int>{&a}));
  EXPECT_TRUE((ArenaAlloc<int>{&a} != ArenaAlloc<int>{&b}));
  EXPECT_TRUE((ArenaAlloc<int>{} == ArenaAlloc<int>{}));
  // Rebinding keeps the arena: vector<int> alloc ↔ node alloc agree.
  const ArenaAlloc<long> rebound{ArenaAlloc<int>{&a}};
  EXPECT_EQ(rebound.arena(), &a);
}

TEST(ArenaResourceTest, SimulatorRunsIdenticallyArenaAndHeapBacked) {
  // Placement only: an arena-backed world must behave bit-identically to a
  // heap-backed one — same dispatch order, same counts, same clock.
  const auto drive = [](Simulator& sim) {
    std::vector<int> order;
    for (int i = 0; i < 32; ++i) {
      sim.schedule_after(Duration::millis(1 + (i * 7) % 13), [&order, i] { order.push_back(i); });
    }
    sim.schedule_after(Duration::millis(5), [&sim] {
      for (int j = 0; j < 16; ++j) sim.schedule_after(Duration::millis(j + 1), [] {});
    });
    sim.run();
    return order;
  };

  Simulator heap_backed;
  ArenaResource arena;
  Simulator arena_backed{&arena};
  const auto heap_order = drive(heap_backed);
  const auto arena_order = drive(arena_backed);
  EXPECT_EQ(arena_order, heap_order);
  EXPECT_EQ(arena_backed.events_processed(), heap_backed.events_processed());
  EXPECT_DOUBLE_EQ(arena_backed.now().to_seconds(), heap_backed.now().to_seconds());
  EXPECT_GT(arena.bytes_in_use(), 0u);  // the world really did draw on the arena
}

TEST(EventArenaTest, CancelKeepsClockUntouched) {
  Simulator sim;
  auto h = sim.schedule_at(SimTime::from_seconds(100.0), [] {});
  sim.schedule_at(SimTime::from_seconds(1.0), [] {});
  h.cancel();
  sim.run();
  // The cancelled key is discarded lazily without advancing the clock past
  // the last real event.
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 1.0);
  EXPECT_EQ(sim.events_processed(), 1u);
}

}  // namespace
}  // namespace vstream::sim
