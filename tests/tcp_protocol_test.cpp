// Protocol-level TCP unit tests: drive one endpoint by injecting crafted
// segments and asserting on exactly what it transmits. Complements the
// end-to-end tcp_test/tcp_stress_test suites with deterministic checks of
// individual state transitions (handshake fields, dup-ACK counting, SACK
// blocks, delayed-ACK policy, window updates, FIN sequencing).
#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "tcp/connection.hpp"

namespace vstream::tcp {
namespace {

using net::TcpFlag;
using net::TcpSegment;
using sim::Duration;
using sim::SimTime;

/// Harness around a single endpoint: its transmissions are captured into
/// `sent`, and the test injects whatever segments it likes.
struct EndpointHarness {
  explicit EndpointHarness(TcpOptions options = {}, std::string label = "uut")
      : link{sim, fast_link(), nullptr, sim::Rng{1}},
        endpoint{sim, 1, options, std::move(label)},
        tx_tags{std::make_shared<TagChannel>()},
        rx_tags{std::make_shared<TagChannel>()} {
    link.set_receiver([this](const TcpSegment& s) { sent.push_back(s); });
    endpoint.attach(link, tx_tags, rx_tags);
  }

  static net::Link::Config fast_link() {
    net::Link::Config cfg;
    cfg.rate_bps = 1e12;  // negligible serialisation
    cfg.prop_delay = sim::Duration::micros(1);
    cfg.queue_limit_bytes = 1U << 30U;
    return cfg;
  }

  /// Run the event loop so transmissions reach `sent`.
  void settle(double seconds = 0.01) {
    sim.run_until(sim.now() + Duration::seconds(seconds));
  }

  void inject(TcpSegment s) {
    endpoint.on_segment(s);
    settle();
  }

  TcpSegment synack(std::uint64_t window = 1 << 20) {
    TcpSegment s;
    s.seq = 0;
    s.ack = 1;
    s.flags = TcpFlag::kSyn | TcpFlag::kAck;
    s.window_bytes = window;
    return s;
  }

  TcpSegment pure_ack(std::uint64_t ack, std::uint64_t window = 1 << 20) {
    TcpSegment s;
    s.seq = 1;
    s.ack = ack;
    s.flags = TcpFlag::kAck;
    s.window_bytes = window;
    return s;
  }

  std::vector<TcpSegment> take_sent() {
    auto out = std::move(sent);
    sent.clear();
    return out;
  }

  sim::Simulator sim;
  net::Link link;
  Endpoint endpoint;
  std::shared_ptr<TagChannel> tx_tags;
  std::shared_ptr<TagChannel> rx_tags;
  std::vector<TcpSegment> sent;
};

TEST(TcpProtocolTest, SynCarriesNoAckAndSeqZero) {
  EndpointHarness h;
  h.endpoint.connect();
  h.settle();
  ASSERT_EQ(h.sent.size(), 1U);
  const auto& syn = h.sent[0];
  EXPECT_TRUE(syn.has(TcpFlag::kSyn));
  EXPECT_FALSE(syn.has(TcpFlag::kAck));
  EXPECT_EQ(syn.seq, 0U);
  EXPECT_EQ(syn.payload_bytes, 0U);
  EXPECT_GT(syn.window_bytes, 0U);
}

TEST(TcpProtocolTest, HandshakeCompletesAndAcksSynAck) {
  EndpointHarness h;
  h.endpoint.connect();
  h.settle();
  h.take_sent();
  h.inject(h.synack());
  EXPECT_EQ(h.endpoint.state(), TcpState::kEstablished);
  const auto out = h.take_sent();
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(out[0].has(TcpFlag::kAck));
  EXPECT_EQ(out[0].ack, 1U);  // SYN consumed one sequence number
}

TEST(TcpProtocolTest, DataSegmentationRespectsMss) {
  TcpOptions opts;
  opts.mss = 1000;
  EndpointHarness h{opts};
  h.endpoint.connect();
  h.settle();
  h.inject(h.synack());
  h.take_sent();
  h.endpoint.send(2500);
  h.settle();
  const auto out = h.take_sent();
  ASSERT_EQ(out.size(), 3U);
  EXPECT_EQ(out[0].payload_bytes, 1000U);
  EXPECT_EQ(out[0].seq, 1U);
  EXPECT_EQ(out[1].payload_bytes, 1000U);
  EXPECT_EQ(out[1].seq, 1001U);
  EXPECT_EQ(out[2].payload_bytes, 500U);
  EXPECT_EQ(out[2].seq, 2001U);
  EXPECT_TRUE(out[2].has(TcpFlag::kPsh));  // end of the application write
}

TEST(TcpProtocolTest, PeerWindowLimitsFlight) {
  EndpointHarness h;
  h.endpoint.connect();
  h.settle();
  h.inject(h.synack(3000));  // peer window: ~2 segments
  h.take_sent();
  h.endpoint.send(100'000);
  h.settle();
  const auto out = h.take_sent();
  std::uint64_t flight = 0;
  for (const auto& s : out) flight += s.payload_bytes;
  EXPECT_LE(flight, 3000U);
  EXPECT_EQ(h.endpoint.bytes_in_flight(), flight);
}

TEST(TcpProtocolTest, ThreeDupAcksTriggerExactlyOneFastRetransmit) {
  EndpointHarness h;
  h.endpoint.connect();
  h.settle();
  h.inject(h.synack());
  h.endpoint.send(20'000);
  h.settle();
  h.take_sent();

  // Three duplicate ACKs for the first byte.
  for (int i = 0; i < 2; ++i) {
    h.inject(h.pure_ack(1));
    EXPECT_TRUE(h.take_sent().empty()) << "retransmit before the 3rd dup ack";
  }
  h.inject(h.pure_ack(1));
  const auto out = h.take_sent();
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(out[0].is_retransmission);
  EXPECT_EQ(out[0].seq, 1U);
  EXPECT_EQ(h.endpoint.stats().fast_retransmits, 1U);
}

TEST(TcpProtocolTest, SackBlocksSuppressRetransmissionOfReceivedRanges) {
  TcpOptions opts;
  opts.mss = 1000;
  EndpointHarness h{opts};
  h.endpoint.connect();
  h.settle();
  h.inject(h.synack());
  h.endpoint.send(10'000);
  h.settle();
  h.take_sent();

  // Dup ACKs carrying SACK for [1001, 4001): only segment 1 is missing.
  for (int i = 0; i < 3; ++i) {
    auto ack = h.pure_ack(1);
    ack.sack.emplace_back(1001, 4001);
    h.inject(ack);
  }
  const auto out = h.take_sent();
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(out[0].is_retransmission);
  EXPECT_EQ(out[0].seq, 1U);
  EXPECT_EQ(out[0].payload_bytes, 1000U);  // capped before the SACKed run
  // No retransmission of the SACKed range itself.
  for (const auto& s : out) {
    if (!s.is_retransmission) continue;
    EXPECT_TRUE(s.seq + s.payload_bytes <= 1001 || s.seq >= 4001)
        << "retransmitted a SACKed byte at seq " << s.seq;
  }
}

TEST(TcpProtocolTest, DelayedAckEverySecondSegment) {
  TcpOptions opts;
  opts.mss = 1000;
  EndpointHarness h{opts};
  h.endpoint.listen();
  TcpSegment syn;
  syn.seq = 0;
  syn.flags = TcpFlag::kSyn;
  syn.window_bytes = 1 << 20;
  h.inject(syn);
  h.take_sent();  // SYN-ACK
  h.inject(h.pure_ack(1));
  h.take_sent();

  // First data segment: ACK deferred (delayed-ACK timer).
  TcpSegment d1;
  d1.seq = 1;
  d1.payload_bytes = 1000;
  d1.flags = TcpFlag::kAck;
  d1.ack = 1;
  d1.window_bytes = 1 << 20;
  h.inject(d1);
  EXPECT_TRUE(h.take_sent().empty());

  // Second segment: immediate cumulative ACK.
  TcpSegment d2 = d1;
  d2.seq = 1001;
  h.inject(d2);
  const auto out = h.take_sent();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].ack, 2001U);
  EXPECT_EQ(out[0].payload_bytes, 0U);
}

TEST(TcpProtocolTest, DelayedAckTimerFiresForLoneSegment) {
  EndpointHarness h;
  h.endpoint.listen();
  TcpSegment syn;
  syn.seq = 0;
  syn.flags = TcpFlag::kSyn;
  syn.window_bytes = 1 << 20;
  h.inject(syn);
  h.take_sent();
  h.inject(h.pure_ack(1));
  h.take_sent();

  TcpSegment d1;
  d1.seq = 1;
  d1.payload_bytes = 500;
  d1.flags = TcpFlag::kAck;
  d1.ack = 1;
  d1.window_bytes = 1 << 20;
  h.inject(d1);
  EXPECT_TRUE(h.take_sent().empty());
  h.settle(0.1);  // > delayed-ACK timeout (40 ms)
  const auto out = h.take_sent();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].ack, 501U);
}

TEST(TcpProtocolTest, OutOfOrderSegmentGetsImmediateDupAckWithSack) {
  EndpointHarness h;
  h.endpoint.listen();
  TcpSegment syn;
  syn.seq = 0;
  syn.flags = TcpFlag::kSyn;
  syn.window_bytes = 1 << 20;
  h.inject(syn);
  h.take_sent();
  h.inject(h.pure_ack(1));
  h.take_sent();

  TcpSegment ooo;
  ooo.seq = 1461;  // hole at [1, 1461)
  ooo.payload_bytes = 1460;
  ooo.flags = TcpFlag::kAck;
  ooo.ack = 1;
  ooo.window_bytes = 1 << 20;
  h.inject(ooo);
  const auto out = h.take_sent();
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].ack, 1U);  // duplicate ACK for the hole
  ASSERT_EQ(out[0].sack.size(), 1U);
  EXPECT_EQ(out[0].sack[0].first, 1461U);
  EXPECT_EQ(out[0].sack[0].second, 2921U);
  EXPECT_EQ(h.endpoint.available(), 0U);  // nothing readable yet
}

TEST(TcpProtocolTest, HoleFillDeliversEverythingAndAcksCumulatively) {
  EndpointHarness h;
  h.endpoint.listen();
  TcpSegment syn;
  syn.seq = 0;
  syn.flags = TcpFlag::kSyn;
  syn.window_bytes = 1 << 20;
  h.inject(syn);
  h.take_sent();
  h.inject(h.pure_ack(1));
  h.take_sent();

  TcpSegment ooo;
  ooo.seq = 1461;
  ooo.payload_bytes = 1460;
  ooo.flags = TcpFlag::kAck;
  ooo.ack = 1;
  ooo.window_bytes = 1 << 20;
  h.inject(ooo);
  h.take_sent();

  TcpSegment fill = ooo;
  fill.seq = 1;
  h.inject(fill);
  const auto out = h.take_sent();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].ack, 2921U);  // cumulative past the merged range
  EXPECT_TRUE(out[0].sack.empty());
  EXPECT_EQ(h.endpoint.available(), 2920U);
}

TEST(TcpProtocolTest, FinSentAfterAllDataAndStateAdvances) {
  EndpointHarness h;
  h.endpoint.connect();
  h.settle();
  h.inject(h.synack());
  h.take_sent();
  h.endpoint.send(1000);
  h.endpoint.close();
  h.settle();
  const auto out = h.take_sent();
  ASSERT_GE(out.size(), 2U);
  const auto& fin = out.back();
  EXPECT_TRUE(fin.has(TcpFlag::kFin));
  EXPECT_EQ(fin.seq, 1001U);  // right after the data
  EXPECT_EQ(h.endpoint.state(), TcpState::kFinSent);
  h.inject(h.pure_ack(1002));  // covers data + FIN
  EXPECT_EQ(h.endpoint.state(), TcpState::kFinished);
}

TEST(TcpProtocolTest, RtoRollbackResendsOutstandingData) {
  TcpOptions opts;
  opts.mss = 1000;
  opts.initial_rto = Duration::millis(50);
  opts.min_rto = Duration::millis(50);
  EndpointHarness h{opts};
  h.endpoint.connect();
  h.settle();
  h.inject(h.synack());
  h.endpoint.send(3000);
  h.settle();
  h.take_sent();
  // No ACKs arrive: RTO must fire and re-send from snd_una.
  h.settle(0.3);
  const auto out = h.take_sent();
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(out[0].is_retransmission);
  EXPECT_EQ(out[0].seq, 1U);
  EXPECT_GE(h.endpoint.stats().timeouts, 1U);
  // cwnd collapsed to one loss window.
  EXPECT_EQ(h.endpoint.cwnd_bytes(), opts.mss);
}

TEST(TcpProtocolTest, AckAboveSndMaxIsIgnored) {
  EndpointHarness h;
  h.endpoint.connect();
  h.settle();
  h.inject(h.synack());
  h.endpoint.send(1000);
  h.settle();
  h.take_sent();
  h.inject(h.pure_ack(999'999));  // bogus
  EXPECT_EQ(h.endpoint.bytes_in_flight(), 1000U);  // unchanged
  h.inject(h.pure_ack(1001));
  EXPECT_EQ(h.endpoint.bytes_in_flight(), 0U);
}

}  // namespace
}  // namespace vstream::tcp
