// Tests for 32-bit wire sequence arithmetic and the pcap wraparound
// regression: a connection transferring more than 4 GiB wraps the wire
// field, and read_pcap must unwrap it back to monotone 64-bit offsets.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "capture/pcap.hpp"
#include "capture/trace.hpp"
#include "check/contracts.hpp"
#include "net/segment.hpp"
#include "tcp/seqspace.hpp"

namespace vstream::tcp {
namespace {

TEST(SeqSpaceTest, ToWireTruncatesModulo32Bits) {
  EXPECT_EQ(to_wire(0x0000000000000005ULL), 5U);
  EXPECT_EQ(to_wire(0x0000000100000005ULL), 5U);
  EXPECT_EQ(to_wire(0x00000001FFFFFFFFULL), 0xFFFFFFFFU);
}

TEST(SeqSpaceTest, DistanceIsSignedAcrossWrap) {
  EXPECT_EQ(seq_distance(0xFFFFFFF0U, 0x10U), 0x20);
  EXPECT_EQ(seq_distance(0x10U, 0xFFFFFFF0U), -0x20);
  EXPECT_EQ(seq_distance(7U, 7U), 0);
}

TEST(SeqSpaceTest, ComparisonsWorkAcrossWrap) {
  EXPECT_TRUE(seq_lt(0xFFFFFFF0U, 0x10U));
  EXPECT_FALSE(seq_lt(0x10U, 0xFFFFFFF0U));
  EXPECT_TRUE(seq_gt(0x10U, 0xFFFFFFF0U));
  EXPECT_TRUE(seq_leq(7U, 7U));
  EXPECT_TRUE(seq_geq(7U, 7U));
  EXPECT_FALSE(seq_lt(7U, 7U));
}

TEST(SeqSpaceTest, AddWrapsModulo32Bits) {
  EXPECT_EQ(seq_add(0xFFFFFFFFU, 2), 1U);
  EXPECT_EQ(seq_add(0U, 0x100000000ULL), 0U);  // a full lap lands where it started
}

TEST(SeqSpaceTest, FromWireRoundTripsAroundReference) {
  // Exact round trip for offsets beyond 2^32.
  const std::uint64_t ref = 0x0000000200000123ULL;
  EXPECT_EQ(from_wire(to_wire(ref), ref), ref);

  // Slightly ahead of the reference, across the wrap boundary.
  EXPECT_EQ(from_wire(0x10U, 0xFFFFFFF0ULL), 0x0000000100000010ULL);

  // Slightly behind the reference, across the wrap boundary.
  EXPECT_EQ(from_wire(0xFFFFFFF0U, 0x0000000100000010ULL), 0xFFFFFFF0ULL);
}

#if VSTREAM_CHECK_LEVEL >= 1
TEST(SeqSpaceTest, FromWireRejectsNegativeUnwrap) {
  // A wire value half a lap *behind* a reference near zero would unwrap to
  // a negative offset — that is a corrupt capture, not a valid stream.
  EXPECT_THROW((void)from_wire(0xFFFFFFFFU, 0), check::ContractViolation);
}
#endif

// ------------------------------------------------- pcap wraparound trip

capture::PacketRecord record(double t, net::Direction d, std::uint64_t seq, std::uint64_t ack,
                             std::uint32_t payload) {
  capture::PacketRecord r;
  r.t_s = t;
  r.direction = d;
  r.connection_id = 1;
  r.seq = seq;
  r.ack = ack;
  r.payload_bytes = payload;
  r.window_bytes = 65536;
  r.flags = net::TcpFlag::kAck;
  return r;
}

TEST(SeqSpaceTest, PcapRoundTripUnwrapsA4GiBConnection) {
  using net::Direction;
  constexpr std::uint64_t kWrap = 0x100000000ULL;  // 2^32

  capture::PacketTrace trace;
  trace.duration_s = 1.0;
  // Down-direction data straddling the 2^32 boundary (server seq space),
  // plus the client acknowledging past the boundary (ack lives in the
  // server's space; the client's own seq space stays tiny).
  trace.packets.push_back(record(0.10, Direction::kDown, kWrap - 512, 1, 512));
  trace.packets.push_back(record(0.20, Direction::kUp, 1, kWrap, 0));
  trace.packets.push_back(record(0.30, Direction::kDown, kWrap, 1, 512));
  trace.packets.push_back(record(0.40, Direction::kDown, kWrap + 512, 1, 512));
  trace.packets.push_back(record(0.50, Direction::kUp, 1, kWrap + 1024, 0));

  const std::string path = "/tmp/vstream_seqspace_wrap.pcap";
  capture::write_pcap(trace, path);
  const auto loaded = capture::read_pcap(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.packets.size(), trace.packets.size());
  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    EXPECT_EQ(loaded.packets[i].seq, trace.packets[i].seq) << "packet " << i;
    EXPECT_EQ(loaded.packets[i].ack, trace.packets[i].ack) << "packet " << i;
  }

  // The regression this guards: the raw 32-bit field reads 0 at the wrap,
  // which a naive reader would return as a non-monotone 64-bit offset.
  EXPECT_GT(loaded.packets[2].seq, loaded.packets[0].seq);
  EXPECT_EQ(loaded.packets[2].seq, kWrap);
}

TEST(SeqSpaceTest, PcapShortTracesKeepExactSequences) {
  using net::Direction;
  capture::PacketTrace trace;
  trace.duration_s = 1.0;
  trace.packets.push_back(record(0.1, Direction::kDown, 1, 1, 1460));
  trace.packets.push_back(record(0.2, Direction::kUp, 1, 1461, 0));

  const std::string path = "/tmp/vstream_seqspace_short.pcap";
  capture::write_pcap(trace, path);
  const auto loaded = capture::read_pcap(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.packets.size(), 2U);
  EXPECT_EQ(loaded.packets[0].seq, 1U);
  EXPECT_EQ(loaded.packets[1].ack, 1461U);
}

}  // namespace
}  // namespace vstream::tcp
