#!/usr/bin/env python3
"""ctest driver for tools/vstream_ast_lint.py.

Four properties, each of which has caught a real analyzer bug during
development:

  1. Seeded fixtures: the analyzer run over tests/ast_lint_fixtures/
     reproduces expected_findings.txt exactly (golden match) and exits 1.
     The fixtures seed every pass — mutable globals (namespace scope,
     static local, thread_local, static data member), >128-byte lambda
     captures at scheduling sites, and static-storage EventHandles — plus
     const/member/waived shapes that must stay silent.
  2. Clean tree: the analyzer over src/ reports zero findings and exits 0.
     This is the wall: a new mutable global or SBO-busting capture in src/
     turns this test red.
  3. Exit-code convention: 0 clean / 1 findings / 2 usage error, shared
     with vstream_lint.py and check_bench_floor.py.
  4. Constant agreement: the analyzer's SBO budget equals
     sim::SimCallback::kInlineBytes in src/sim/callback.hpp, so the wall
     cannot drift from the code it guards.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path


def run_lint(repo_root: Path, *args: str) -> tuple[int, str]:
    tool = repo_root / "tools" / "vstream_ast_lint.py"
    proc = subprocess.run(
        [sys.executable, str(tool), "--frontend", "tokens", *args],
        capture_output=True, text=True, check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def findings_only(output: str) -> list[str]:
    return [line for line in output.splitlines()
            if line and not line.startswith("vstream_ast_lint")]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--repo-root", type=Path, required=True)
    args = parser.parse_args()
    root = args.repo_root.resolve()
    fixtures = root / "tests" / "ast_lint_fixtures"
    failures: list[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        status = "ok" if ok else "FAIL"
        print(f"[{status}] {name}")
        if not ok:
            failures.append(f"{name}: {detail}")
            if detail:
                print(detail)

    # 1. Golden match over the seeded fixtures.
    fixture_files = sorted(str(p) for p in fixtures.glob("*.cpp"))
    code, output = run_lint(root, "--root", str(fixtures), *fixture_files)
    got = findings_only(output)
    expected = [
        line for line in
        (fixtures / "expected_findings.txt").read_text(encoding="utf-8").splitlines()
        if line
    ]
    check("fixtures exit code is 1 (findings)", code == 1, f"exit={code}")
    diff = "\n".join(
        f"  -{e}" for e in expected if e not in got
    ) + "\n".join(
        f"  +{g}" for g in got if g not in expected
    )
    check("fixture findings golden-match expected_findings.txt",
          got == expected, diff)

    # Every pass must appear among the fixture findings — a pass that stops
    # firing entirely would otherwise pass the clean-tree check vacuously.
    for pass_name in ("mutable-global", "capture-size", "handle-escape"):
        check(f"fixtures exercise pass '{pass_name}'",
              any(f"[{pass_name}]" in line for line in got), output)

    # The waived fixture line must stay silent.
    check("waived fixture line is suppressed",
          not any("g_waived_counter" in line for line in got), output)

    # 2. Clean tree: zero findings over src/.
    code, output = run_lint(root, "--root", str(root))
    check("clean tree reports zero findings (exit 0)",
          code == 0 and not findings_only(output),
          output)

    # 3. Usage errors exit 2.
    code, _ = run_lint(root, "--passes", "no-such-pass")
    check("unknown pass exits 2", code == 2, f"exit={code}")
    code, _ = run_lint(root, str(root / "tests" / "no_such_file.cpp"))
    check("missing input file exits 2", code == 2, f"exit={code}")

    # 4. SBO budget agreement with src/sim/callback.hpp.
    callback = (root / "src" / "sim" / "callback.hpp").read_text(encoding="utf-8")
    header = re.search(r"kInlineBytes\s*=\s*(\d+)", callback)
    tool_text = (root / "tools" / "vstream_ast_lint.py").read_text(encoding="utf-8")
    tool = re.search(r"^SBO_BYTES\s*=\s*(\d+)", tool_text, re.MULTILINE)
    check("SBO budget matches sim::SimCallback::kInlineBytes",
          header is not None and tool is not None and header.group(1) == tool.group(1),
          f"header={header and header.group(1)} tool={tool and tool.group(1)}")

    if failures:
        print(f"\nast_lint_test: {len(failures)} check(s) FAILED", file=sys.stderr)
        return 1
    print("\nast_lint_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
