// Observability layer: metrics registry, trace bus/sinks, and the
// consistency contracts between live instrumentation and the offline
// trace analysis (zero-window episodes in particular).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/onoff.hpp"
#include "analysis/report_json.hpp"
#include "capture/recorder.hpp"
#include "http/exchange.hpp"
#include "net/path.hpp"
#include "net/profile.hpp"
#include "obs/context.hpp"
#include "streaming/clients.hpp"
#include "streaming/session_builder.hpp"
#include "streaming/video_server.hpp"
#include "tcp/connection.hpp"

namespace vstream::obs {
namespace {

using sim::SimTime;

// ---- metrics registry ----------------------------------------------------

TEST(ObsMetricsTest, CountersAndGauges) {
  MetricsRegistry reg;
  reg.counter("a").inc();
  reg.counter("a").inc(4);
  EXPECT_EQ(reg.counter("a").value(), 5u);

  reg.gauge("g").set(2.5);
  reg.gauge("g").set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
  reg.gauge("g").set_max(7.0);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 7.0);
}

TEST(ObsMetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  FixedHistogram h{{10.0, 20.0}};
  h.observe(10.0);  // lands in [.., 10]
  h.observe(10.5);  // lands in (10, 20]
  h.observe(20.0);  // lands in (10, 20] — bound itself is included
  h.observe(20.1);  // overflow bucket
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0 + 10.5 + 20.0 + 20.1);
}

TEST(ObsMetricsTest, HistogramRejectsEmptyOrUnsortedBounds) {
  EXPECT_THROW(FixedHistogram{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW((FixedHistogram{{5.0, 1.0}}), std::invalid_argument);
}

TEST(ObsMetricsTest, HistogramPercentilesInterpolateLinearly) {
  MetricsSnapshot::HistogramData h;
  h.bounds = {10.0, 20.0};
  h.counts = {4, 4, 2};  // 4 in [0,10], 4 in (10,20], 2 overflow
  h.count = 10;

  // p20: rank 2 lands in the first bucket, which interpolates from 0.
  EXPECT_DOUBLE_EQ(h.percentile(0.20), 5.0);
  // p50: rank 5 is 1/4 into the second bucket's 4 samples.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 12.5);
  // p90/p99: rank beyond the bounded buckets clamps to the last bound —
  // the overflow bucket has no upper edge to interpolate toward.
  EXPECT_DOUBLE_EQ(h.percentile(0.90), 20.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 20.0);
  // Out-of-range quantiles clamp instead of extrapolating.
  EXPECT_DOUBLE_EQ(h.percentile(1.5), 20.0);

  MetricsSnapshot::HistogramData empty;
  empty.bounds = {10.0};
  empty.counts = {0, 0};
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
}

TEST(ObsMetricsTest, SnapshotJsonCarriesPercentiles) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", {10.0, 20.0});
  for (int i = 0; i < 4; ++i) h.observe(5.0);
  for (int i = 0; i < 4; ++i) h.observe(15.0);
  h.observe(25.0);
  h.observe(25.0);

  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"p50\":12.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p90\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":20"), std::string::npos) << json;
  // The percentile fields are derived, not state: parsing the document back
  // reconstructs the same buckets and therefore the same percentiles.
  const MetricsSnapshot back = parse_snapshot(json);
  EXPECT_DOUBLE_EQ(back.histograms.at("lat").percentile(0.5), 12.5);
}

TEST(ObsMetricsTest, MergeRejectsMismatchedHistogramBounds) {
  MetricsRegistry a;
  a.histogram("h", {1.0, 2.0}).observe(0.5);
  MetricsRegistry with_other_bounds;
  with_other_bounds.histogram("h", {1.0, 4.0}).observe(0.5);

  MetricsSnapshot merged = a.snapshot();
  EXPECT_THROW(merged.merge_from(with_other_bounds.snapshot()), std::invalid_argument);

  // Same name, same bounds: merge is fine and buckets add.
  MetricsRegistry compatible;
  compatible.histogram("h", {1.0, 2.0}).observe(1.5);
  merged.merge_from(compatible.snapshot());
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
}

TEST(ObsMetricsTest, SnapshotJsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("tcp.segments_sent").inc(1234);
  reg.counter("net.drops_queue").inc(7);
  reg.gauge("net.queue_high_water_bytes").set(65536.0);
  auto& h = reg.histogram("server.block_bytes", {1024.0, 65536.0});
  h.observe(800.0);
  h.observe(65536.0);
  h.observe(1e6);

  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot back = parse_snapshot(snap.to_json());

  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  ASSERT_EQ(back.histograms.size(), 1u);
  const auto& hb = back.histograms.at("server.block_bytes");
  EXPECT_EQ(hb.bounds, snap.histograms.at("server.block_bytes").bounds);
  EXPECT_EQ(hb.counts, snap.histograms.at("server.block_bytes").counts);
  EXPECT_EQ(hb.count, 3u);
  EXPECT_DOUBLE_EQ(hb.sum, 800.0 + 65536.0 + 1e6);
}

TEST(ObsMetricsTest, ParseSnapshotRejectsGarbage) {
  EXPECT_THROW(parse_snapshot("not json"), std::runtime_error);
  EXPECT_THROW(parse_snapshot("{\"counters\":[]}"), std::runtime_error);
}

TEST(ObsMetricsTest, MergeAddsCountersAndKeepsGaugeMaxima) {
  MetricsRegistry a;
  a.counter("c").inc(3);
  a.gauge("g").set(10.0);
  a.histogram("h", {1.0}).observe(0.5);
  MetricsRegistry b;
  b.counter("c").inc(4);
  b.counter("only_b").inc(1);
  b.gauge("g").set(2.0);
  b.histogram("h", {1.0}).observe(5.0);

  MetricsSnapshot merged = a.snapshot();
  merged.merge_from(b.snapshot());
  EXPECT_EQ(merged.counters.at("c"), 7u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 10.0);
  EXPECT_EQ(merged.histograms.at("h").counts, (std::vector<std::uint64_t>{1, 1}));
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
}

TEST(ObsMetricsTest, ReportJsonEmbedsSnapshot) {
  analysis::SessionReport report;
  report.label = "obs";
  MetricsRegistry reg;
  reg.counter("tcp.segments_retransmitted").inc(42);

  const std::string with = analysis::to_json(report, reg.snapshot());
  EXPECT_NE(with.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(with.find("\"tcp.segments_retransmitted\":42"), std::string::npos);
  // An empty snapshot leaves the plain report unchanged.
  EXPECT_EQ(analysis::to_json(report, MetricsSnapshot{}), analysis::to_json(report));
}

// ---- trace bus and sinks -------------------------------------------------

TEST(ObsTraceTest, BusWithoutSinksIsInactiveAndEmitIsNoOp) {
  TraceBus bus;
  EXPECT_FALSE(bus.active());
  bus.emit(PlayerStall{1.0, 1});
  EXPECT_EQ(bus.events_emitted(), 0u);

  RingBufferSink sink{4};
  bus.attach(&sink);
  EXPECT_TRUE(bus.active());
  bus.emit(PlayerStall{2.0, 2});
  EXPECT_EQ(bus.events_emitted(), 1u);
  bus.detach(&sink);
  EXPECT_FALSE(bus.active());
}

TEST(ObsTraceTest, RingBufferKeepsMostRecentEvents) {
  TraceBus bus;
  RingBufferSink sink{3};
  bus.attach(&sink);
  for (int i = 1; i <= 5; ++i) {
    bus.emit(PlayerStall{static_cast<double>(i), static_cast<std::uint32_t>(i)});
  }
  EXPECT_EQ(sink.total_seen(), 5u);
  ASSERT_EQ(sink.events().size(), 3u);
  const auto stalls = sink.collect<PlayerStall>();
  ASSERT_EQ(stalls.size(), 3u);
  EXPECT_EQ(stalls.front().stall_count, 3u);
  EXPECT_EQ(stalls.back().stall_count, 5u);
}

TEST(ObsTraceTest, JsonlSinkLinesParseBackFieldByField) {
  const std::string path = ::testing::TempDir() + "obs_jsonl_sink_test.jsonl";
  {
    TraceBus bus;
    JsonlFileSink sink{path};
    ASSERT_TRUE(sink.ok());
    bus.attach(&sink);

    TcpCwndSample cwnd;
    cwnd.t_s = 1.25;
    cwnd.connection_id = 7;
    cwnd.endpoint = "server#7";
    cwnd.cwnd = 14600;
    cwnd.ssthresh = 65535;
    cwnd.rwnd = 0;
    cwnd.rto_s = 0.2;
    cwnd.bytes_in_flight = 2920;
    bus.emit(cwnd);
    bus.emit(PacingBlockEmitted{2.0, 7, 65536, false});
    bus.emit(ZeroWindowEpisode{3.5, 7, "client#7", 0.75});
    EXPECT_EQ(sink.lines_written(), 3u);
  }

  std::ifstream in{path};
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);

  EXPECT_EQ(jsonl_string(lines[0], "type"), "tcp_cwnd");
  EXPECT_EQ(jsonl_string(lines[0], "endpoint"), "server#7");
  EXPECT_EQ(jsonl_number(lines[0], "t"), 1.25);
  EXPECT_EQ(jsonl_number(lines[0], "conn"), 7.0);
  EXPECT_EQ(jsonl_number(lines[0], "cwnd"), 14600.0);
  EXPECT_EQ(jsonl_number(lines[0], "rwnd"), 0.0);
  EXPECT_EQ(jsonl_number(lines[0], "in_flight"), 2920.0);

  EXPECT_EQ(jsonl_string(lines[1], "type"), "pacing_block");
  EXPECT_EQ(jsonl_number(lines[1], "bytes"), 65536.0);

  EXPECT_EQ(jsonl_string(lines[2], "type"), "zero_window");
  EXPECT_EQ(jsonl_number(lines[2], "duration_s"), 0.75);
  EXPECT_EQ(jsonl_number(lines[2], "missing_key"), std::nullopt);
  std::remove(path.c_str());
}

// ---- live instrumentation vs. offline analysis ---------------------------

// A small observed world: research network with loss disabled, one TCP
// connection, bulk server, pull-throttling client (the IE read policy that
// produces the rwnd-zero signature of Fig 2b).
struct ObservedWire {
  ObservedWire() : rng{3} {
    sim.set_obs(&obs);
    auto profile = net::profile_for(net::Vantage::kResearch);
    profile.loss_rate = 0.0;
    path = std::make_unique<net::Path>(sim, profile, rng);
    fabric = std::make_unique<tcp::Fabric>(sim, *path);
    recorder = std::make_unique<capture::TraceRecorder>(sim, *path);
    recorder->start();
  }

  sim::Simulator sim;
  obs::ObsContext obs;
  sim::Rng rng;
  std::unique_ptr<net::Path> path;
  std::unique_ptr<tcp::Fabric> fabric;
  std::unique_ptr<capture::TraceRecorder> recorder;
};

video::VideoMeta throttle_video() {
  video::VideoMeta v;
  v.id = "obs";
  v.duration_s = 600.0;
  v.encoding_bps = 2e6;
  v.container = video::Container::kHtml5;
  return v;
}

streaming::PullThrottleClient::Config ie_throttle() {
  streaming::PullThrottleClient::Config cfg;
  cfg.buffering_target_bytes = 4 * 1024 * 1024;
  cfg.pull_quantum_bytes = 256 * 1024;
  cfg.accumulation_ratio = 1.06;
  cfg.encoding_bps = 2e6;
  return cfg;
}

TEST(ObsIntegrationTest, TcpStatsZeroWindowEpisodesMatchTraceAnalysis) {
  ObservedWire w;
  tcp::TcpOptions client_tcp;
  client_tcp.recv_buffer_bytes = 256 * 1024;
  auto& conn = w.fabric->create_connection(client_tcp, {});
  streaming::VideoStreamServer server{w.sim, conn.server(), throttle_video(),
                                      streaming::ServerPacing::bulk()};
  streaming::PullThrottleClient client{w.sim, conn.client(), ie_throttle(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("obs"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(120.0));

  const auto trace = w.recorder->take();
  const std::size_t from_trace = analysis::count_zero_window_episodes(trace);
  const auto& stats = conn.client().stats();

  // The throttling client must actually have closed its window.
  ASSERT_GT(from_trace, 0u);
  // Endpoint-side live stats, registry counter and offline trace analysis
  // all agree on a loss-free path (every transmitted segment is captured).
  EXPECT_EQ(stats.zero_window_episodes, from_trace);
  EXPECT_EQ(w.obs.metrics().counter("tcp.zero_window_episodes").value(), from_trace);
  EXPECT_GT(stats.zero_window_total_s, 0.0);
}

TEST(ObsIntegrationTest, NoSinkProbesStillMaintainCounters) {
  ObservedWire w;  // obs attached, but no trace sink
  auto& conn = w.fabric->create_connection({}, {});
  streaming::VideoStreamServer server{w.sim, conn.server(), throttle_video(),
                                      streaming::ServerPacing::bulk()};
  streaming::GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("obs"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(20.0));

  EXPECT_GT(client.bytes_read(), 0u);
  EXPECT_GT(w.obs.metrics().counter("tcp.segments_sent").value(), 0u);
  EXPECT_GT(w.obs.metrics().counter("net.segments_delivered").value(), 0u);
  // No sink was ever attached: the bus never dispatched a single event.
  EXPECT_FALSE(w.obs.trace().active());
  EXPECT_EQ(w.obs.trace().events_emitted(), 0u);
}

// ---- acceptance: JSONL cwnd trace reconstructs the rwnd signal -----------

TEST(ObsIntegrationTest, CwndJsonlTraceReconstructsZeroWindowEpisodes) {
  const std::string path = ::testing::TempDir() + "obs_cwnd_roundtrip.jsonl";
  auto network = net::profile_for(net::Vantage::kResearch);
  network.loss_rate = 0.0;  // lossless: wire order == receive order
  video::VideoMeta meta;
  meta.id = "rt";
  meta.duration_s = 600.0;
  meta.encoding_bps = 2e6;
  meta.container = video::Container::kHtml5;
  auto cfg = streaming::SessionBuilder{}
                 .service(streaming::Service::kYouTube)
                 .container(video::Container::kHtml5)
                 .application(streaming::Application::kInternetExplorer)
                 .network(network)
                 .bandwidth_jitter(0.0)
                 .auxiliary_traffic(false)
                 .video(meta)
                 .capture_duration_s(120.0)
                 .seed(17)
                 .build();

  std::size_t expected = 0;
  {
    JsonlFileSink sink{path};
    cfg.trace_sink = &sink;
    const auto result = streaming::run_session(cfg);
    expected = analysis::count_zero_window_episodes(result.trace);
    ASSERT_GT(expected, 0u) << "IE pull throttling should close the window";
    EXPECT_EQ(result.metrics.counters.at("tcp.zero_window_episodes"), expected);
    EXPECT_GT(result.sim_events, 0u);
    EXPECT_GT(result.sim_max_events_pending, 0u);
  }

  // Replay the JSONL trace two ways.
  //  - Client-side samples carry the client's own advertised window
  //    (`adv_wnd`) and are emitted at transmit time, exactly when the
  //    captured segment leaves: the reconstruction is exact.
  //  - Server-side samples carry the peer's window (`rwnd`) as received:
  //    identical except for a final segment still in flight at the
  //    capture cutoff, so it may lag by at most one episode.
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::size_t from_client = 0;
  std::size_t from_server = 0;
  bool client_at_zero = false;
  bool server_at_zero = false;
  bool saw_sample = false;
  for (std::string line; std::getline(in, line);) {
    if (jsonl_string(line, "type") != "tcp_cwnd") continue;
    const auto endpoint = jsonl_string(line, "endpoint");
    ASSERT_TRUE(endpoint.has_value());
    saw_sample = true;
    if (endpoint->rfind("client#", 0) == 0) {
      const auto adv = jsonl_number(line, "adv_wnd");
      ASSERT_TRUE(adv.has_value());
      if (*adv == 0.0) {
        if (!client_at_zero) {
          ++from_client;
          client_at_zero = true;
        }
      } else {
        client_at_zero = false;
      }
    } else if (endpoint->rfind("server#", 0) == 0) {
      const auto rwnd = jsonl_number(line, "rwnd");
      ASSERT_TRUE(rwnd.has_value());
      if (*rwnd == 0.0) {
        if (!server_at_zero) {
          ++from_server;
          server_at_zero = true;
        }
      } else {
        server_at_zero = false;
      }
    }
  }
  EXPECT_TRUE(saw_sample);
  EXPECT_EQ(from_client, expected);
  EXPECT_GE(from_server + 1, expected);
  EXPECT_LE(from_server, expected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vstream::obs
