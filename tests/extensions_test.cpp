// Tests for the remaining extensions: JSON report export, nanosecond pcap
// reading, the cross-traffic generator, and trace filtering.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/report_json.hpp"
#include "capture/pcap.hpp"
#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "net/profile.hpp"
#include "streaming/session_builder.hpp"
#include "tcp/connection.hpp"

namespace vstream {
namespace {

TEST(JsonTest, EscapesSpecials) {
  EXPECT_EQ(analysis::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(analysis::json_escape("plain"), "plain");
  EXPECT_EQ(analysis::json_escape(std::string{"x\x01y"}), "x\\u0001y");
}

TEST(JsonTest, ReportRoundTripStructure) {
  analysis::SessionReport report;
  report.label = "test \"quoted\"";
  report.strategy = analysis::Strategy::kShortOnOff;
  report.rationale = "because";
  report.has_steady_state = true;
  report.median_block_kb = 64.0;
  report.accumulation_ratio = 1.25;
  // rtt_ms left unset -> null
  const std::string json = analysis::to_json(report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"strategy\":\"Short\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"test \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"accumulation_ratio\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"rtt_ms\":null"), std::string::npos);
  EXPECT_NE(json.find("\"has_steady_state\":true"), std::string::npos);
}

TEST(JsonTest, FlowTableArray) {
  analysis::FlowTable table;
  analysis::FlowRecord f;
  f.connection_id = 3;
  f.down_payload_bytes = 1000;
  f.handshake_rtt_s = 0.02;
  table.flows.push_back(f);
  table.flows.push_back(analysis::FlowRecord{});
  const std::string json = analysis::to_json(table);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"connection\":3"), std::string::npos);
  EXPECT_NE(json.find("\"down_bytes\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"handshake_rtt_s\":0.02"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
}

TEST(JsonTest, FullSessionReportIsWellFormedEnough) {
  video::VideoMeta meta;
  meta.id = "j";
  meta.duration_s = 300.0;
  meta.encoding_bps = 1e6;
  const auto result = streaming::SessionBuilder{}
                          .vantage(net::Vantage::kResearch)
                          .video(meta)
                          .capture_duration_s(60.0)
                          .run();
  const auto report = analysis::build_report(result.trace);
  const std::string json = analysis::to_json(report);
  // Balanced braces and quotes (cheap well-formedness checks).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(PcapNanosTest, ReadsNanosecondMagic) {
  // Write a microsecond file, then flip its magic to the nanosecond variant
  // and scale the sub-second field expectation.
  capture::PacketTrace trace;
  capture::PacketRecord r;
  r.t_s = 1.5;
  r.direction = net::Direction::kDown;
  r.payload_bytes = 100;
  r.flags = net::TcpFlag::kAck;
  trace.packets.push_back(r);
  const std::string path = "/tmp/vstream_ns.pcap";
  capture::write_pcap(trace, path);
  {
    std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
    const std::uint32_t ns_magic = 0xa1b23c4d;
    f.write(reinterpret_cast<const char*>(&ns_magic), 4);
  }
  const auto loaded = capture::read_pcap(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.packets.size(), 1U);
  // The stored 500000 "usec" now mean 500000 ns = 0.0005 s.
  EXPECT_NEAR(loaded.packets[0].t_s, 1.0005, 1e-9);
}

TEST(TraceFilterTest, WithoutConnectionStripsTaggedTraffic) {
  capture::PacketTrace trace;
  trace.label = "x";
  for (int i = 0; i < 10; ++i) {
    capture::PacketRecord r;
    r.t_s = i;
    r.direction = net::Direction::kDown;
    r.connection_id = (i % 2 == 0) ? 1 : 0xC0FFEE;
    r.payload_bytes = 100;
    trace.packets.push_back(r);
  }
  const auto filtered = trace.without_connection(0xC0FFEE);
  EXPECT_EQ(filtered.packets.size(), 5U);
  EXPECT_EQ(filtered.label, "x");
  for (const auto& p : filtered.packets) EXPECT_EQ(p.connection_id, 1U);
}

TEST(CrossTrafficTest, GeneratesConfiguredLoad) {
  sim::Simulator sim;
  sim::Rng rng{5};
  auto profile = net::profile_for(net::Vantage::kResearch);
  profile.loss_rate = 0.0;
  net::Path path{sim, profile, rng};
  path.down().set_receiver([](const net::TcpSegment&) {});
  net::CrossTraffic::Config cfg;
  cfg.mean_rate_bps = 20e6;
  net::CrossTraffic cross{sim, path.down(), cfg, rng.fork("x")};
  cross.start();
  sim.run_until(sim::SimTime::from_seconds(30.0));
  cross.stop();
  const double rate = static_cast<double>(cross.bytes_injected()) * 8.0 / 30.0;
  EXPECT_NEAR(rate, 20e6, 5e6);
  EXPECT_GT(cross.packets_injected(), 1000U);
}

TEST(CrossTrafficTest, CausesQueueLossForCompetingFlow) {
  // Video flow on a lossless link vs the same link with heavy cross
  // traffic: congestion loss now comes from the queue itself.
  const auto run = [](bool with_cross) {
    sim::Simulator sim;
    sim::Rng rng{6};
    auto profile = net::profile_for(net::Vantage::kResearch);
    profile.loss_rate = 0.0;
    profile.down_bps = 20e6;
    net::Path path{sim, profile, rng};
    tcp::Fabric fabric{sim, path};
    std::unique_ptr<net::CrossTraffic> cross;
    if (with_cross) {
      net::CrossTraffic::Config cfg;
      cfg.mean_rate_bps = 15e6;
      cross = std::make_unique<net::CrossTraffic>(sim, path.down(), cfg, rng.fork("x"));
      cross->start();
    }
    auto& conn = fabric.create_connection({}, {});
    conn.client().set_on_established([&] { conn.server().send(10'000'000); });
    conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
    conn.open();
    sim.run_until(sim::SimTime::from_seconds(60.0));
    return std::pair{conn.client().total_read(), conn.server().stats().bytes_retransmitted};
  };
  const auto [clean_read, clean_retx] = run(false);
  const auto [congested_read, congested_retx] = run(true);
  EXPECT_EQ(clean_read, 10'000'000U);
  EXPECT_EQ(clean_retx, 0U);
  EXPECT_GT(congested_retx, 0U);        // queue drops caused retransmissions
  EXPECT_GT(congested_read, 1'000'000U);  // but the flow still progresses
}

TEST(CrossTrafficTest, ValidatesConfig) {
  sim::Simulator sim;
  sim::Rng rng{1};
  net::Link link{sim, net::Link::Config{}, nullptr, rng};
  net::CrossTraffic::Config bad;
  bad.mean_rate_bps = 0.0;
  EXPECT_THROW((net::CrossTraffic{sim, link, bad, rng}), std::invalid_argument);
}

}  // namespace
}  // namespace vstream
