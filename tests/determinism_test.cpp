// Tests for the determinism audit: twin same-seed runs of every canonical
// scenario must produce bit-identical state digests, and the deliberately
// nondeterministic unordered-map canary must be caught.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/determinism_canary.hpp"
#include "streaming/scenarios.hpp"

namespace vstream::streaming {
namespace {

// Short capture window keeps the 2x13 runs fast; determinism does not
// depend on duration (the audit tool runs the full 180 s window in CI).
constexpr double kTestCaptureSeconds = 8.0;

TEST(ScenarioCatalogTest, CoversTableOneCombinations) {
  const auto scenarios = canonical_scenarios(kTestCaptureSeconds);
  ASSERT_GE(scenarios.size(), 13U);
  std::set<std::string> names;
  for (const auto& s : scenarios) names.insert(s.name);
  EXPECT_EQ(names.size(), scenarios.size()) << "scenario names must be unique";
  EXPECT_TRUE(names.count("youtube-flash-ie-research"));
  EXPECT_TRUE(names.count("netflix-silverlight-pc-research"));
}

TEST(DeterminismTest, TwinRunsProduceIdenticalFingerprints) {
  for (const auto& scenario : canonical_scenarios(kTestCaptureSeconds)) {
    const RunFingerprint first = fingerprint_session(scenario.config);
    const RunFingerprint second = fingerprint_session(scenario.config);
    EXPECT_EQ(first, second) << "scenario diverged: " << scenario.name;
    EXPECT_GT(first.sim_events, 0U) << scenario.name;
    EXPECT_GT(first.words_mixed, 0U) << scenario.name;
    EXPECT_GT(first.bytes_downloaded, 0U) << scenario.name;
  }
}

TEST(DeterminismTest, DistinctScenariosProduceDistinctDigests) {
  const auto scenarios = canonical_scenarios(kTestCaptureSeconds);
  const RunFingerprint* youtube = nullptr;
  const RunFingerprint* netflix = nullptr;
  RunFingerprint a;
  RunFingerprint b;
  for (const auto& s : scenarios) {
    if (s.name == "youtube-flash-ie-research") {
      a = fingerprint_session(s.config);
      youtube = &a;
    }
    if (s.name == "netflix-silverlight-pc-research") {
      b = fingerprint_session(s.config);
      netflix = &b;
    }
  }
  ASSERT_NE(youtube, nullptr);
  ASSERT_NE(netflix, nullptr);
  EXPECT_NE(youtube->digest, netflix->digest);
}

// The canary stands in for real per-process nondeterminism (hash seeding /
// ASLR leaking unordered-container order into event scheduling). The audit
// must hold its two properties: reproducible under a fixed nonce, divergent
// across nonces.
TEST(DeterminismTest, CanaryIsReproducibleUnderFixedNonce) {
  EXPECT_EQ(sim::determinism_canary_digest(1), sim::determinism_canary_digest(1));
  EXPECT_EQ(sim::determinism_canary_digest(42), sim::determinism_canary_digest(42));
}

TEST(DeterminismTest, CanaryCatchesPerturbedHashOrder) {
  // At least one of the perturbed nonces must shuffle the map's iteration
  // order enough to flip the digest (in practice they all do).
  const std::uint64_t baseline = sim::determinism_canary_digest(1);
  EXPECT_TRUE(sim::determinism_canary_digest(2) != baseline ||
              sim::determinism_canary_digest(3) != baseline)
      << "canary failed to expose hash-order-driven scheduling";
}

}  // namespace
}  // namespace vstream::streaming
