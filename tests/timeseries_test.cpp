// Tests for rate binning, autocorrelation, and the ON-OFF periodicity
// estimator built on them.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/periodicity.hpp"
#include "stats/timeseries.hpp"

namespace vstream {
namespace {

using capture::PacketRecord;
using capture::PacketTrace;

TEST(RateBinnerTest, BinsAndRates) {
  stats::RateBinner binner{0.0, 10.0, 1.0};
  binner.add(0.5, 100.0);
  binner.add(0.9, 50.0);
  binner.add(5.5, 200.0);
  binner.add(-1.0, 999.0);  // before window: ignored
  binner.add(10.5, 999.0);  // after window: ignored
  const auto series = binner.series();
  ASSERT_EQ(series.size(), 10U);
  EXPECT_DOUBLE_EQ(series.values[0], 150.0);
  EXPECT_DOUBLE_EQ(series.values[5], 200.0);
  EXPECT_DOUBLE_EQ(series.values[9], 0.0);
  EXPECT_DOUBLE_EQ(series.t_at(3), 3.0);
}

TEST(RateBinnerTest, RateScalesWithBinWidth) {
  stats::RateBinner binner{0.0, 10.0, 0.5};
  binner.add(0.1, 100.0);
  const auto series = binner.series();
  EXPECT_DOUBLE_EQ(series.values[0], 200.0);  // 100 units / 0.5 s
}

TEST(RateBinnerTest, ValidatesArguments) {
  EXPECT_THROW((stats::RateBinner{0.0, 10.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((stats::RateBinner{5.0, 5.0, 1.0}), std::invalid_argument);
}

TEST(AutocorrelationTest, ZeroLagIsOne) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(std::sin(i * 0.3));
  const auto acf = stats::autocorrelation(xs, 20);
  ASSERT_FALSE(acf.empty());
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(AutocorrelationTest, RecoversSinePeriod) {
  // Period of 20 bins.
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(std::sin(2.0 * M_PI * i / 20.0));
  const auto acf = stats::autocorrelation(xs, 60);
  const auto period = stats::dominant_period_bins(acf);
  EXPECT_NEAR(static_cast<double>(period), 20.0, 1.0);
}

TEST(AutocorrelationTest, RecoversSquareWavePeriod) {
  // ON-OFF-like square wave: 3 bins on, 9 bins off => period 12.
  std::vector<double> xs;
  for (int i = 0; i < 600; ++i) xs.push_back((i % 12) < 3 ? 1.0 : 0.0);
  const auto acf = stats::autocorrelation(xs, 50);
  EXPECT_EQ(stats::dominant_period_bins(acf), 12U);
}

TEST(AutocorrelationTest, ConstantSeriesHasNoAutocorrelation) {
  const std::vector<double> xs(100, 5.0);
  EXPECT_TRUE(stats::autocorrelation(xs, 10).empty());
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_TRUE(stats::autocorrelation(tiny, 1).empty());
}

TEST(AutocorrelationTest, WhiteNoiseHasNoDominantPeriod) {
  std::vector<double> xs;
  std::uint64_t state = 88172645463325252ULL;  // xorshift
  for (int i = 0; i < 1000; ++i) {
    state ^= state << 13U;
    state ^= state >> 7U;
    state ^= state << 17U;
    xs.push_back(static_cast<double>(state % 1000));
  }
  const auto acf = stats::autocorrelation(xs, 100);
  // No peak above 0.3 at any positive lag for white noise.
  EXPECT_EQ(stats::dominant_period_bins(acf, 0.3), 0U);
}

// ------------------------------------------------------------- periodicity

PacketTrace paced_trace(double cycle_s, double on_s, std::uint32_t payload, double t_end) {
  PacketTrace trace;
  for (double cycle_start = 5.0; cycle_start < t_end; cycle_start += cycle_s) {
    for (double t = cycle_start; t < cycle_start + on_s; t += 0.002) {
      PacketRecord r;
      r.t_s = t;
      r.direction = net::Direction::kDown;
      r.payload_bytes = payload;
      r.connection_id = 1;
      trace.packets.push_back(r);
    }
  }
  // A dense buffering burst up front.
  for (double t = 0.0; t < 2.0; t += 0.001) {
    PacketRecord r;
    r.t_s = t;
    r.direction = net::Direction::kDown;
    r.payload_bytes = payload;
    r.connection_id = 1;
    trace.packets.insert(trace.packets.begin(), r);
  }
  std::sort(trace.packets.begin(), trace.packets.end(),
            [](const PacketRecord& a, const PacketRecord& b) { return a.t_s < b.t_s; });
  return trace;
}

TEST(PeriodicityTest, RecoversCycleDuration) {
  const auto trace = paced_trace(2.0, 0.1, 1460, 120.0);
  analysis::PeriodicityOptions opts;
  opts.steady_start_s = 4.0;
  const auto result = analysis::estimate_cycle_period(trace, opts);
  ASSERT_TRUE(result.periodic);
  EXPECT_NEAR(result.period_s, 2.0, 0.1);
  EXPECT_GT(result.correlation, 0.3);
}

TEST(PeriodicityTest, AgreesWithOnOffAnalysis) {
  const auto trace = paced_trace(1.0, 0.05, 1460, 100.0);
  const auto onoff = analysis::analyze_on_off(trace);
  ASSERT_GT(onoff.on_periods.size(), 10U);
  const double onoff_cycle = (onoff.on_periods.back().start_s - onoff.on_periods[1].start_s) /
                             static_cast<double>(onoff.on_periods.size() - 2);
  const auto periodicity = analysis::estimate_cycle_period(trace);
  ASSERT_TRUE(periodicity.periodic);
  EXPECT_NEAR(periodicity.period_s, onoff_cycle, 0.15);
}

TEST(PeriodicityTest, BulkTraceIsNotPeriodic) {
  PacketTrace trace;
  for (double t = 0.0; t < 60.0; t += 0.001) {
    PacketRecord r;
    r.t_s = t;
    r.direction = net::Direction::kDown;
    r.payload_bytes = 1460;
    trace.packets.push_back(r);
  }
  analysis::PeriodicityOptions opts;
  opts.steady_start_s = 1.0;
  const auto result = analysis::estimate_cycle_period(trace, opts);
  EXPECT_FALSE(result.periodic);
}

TEST(PeriodicityTest, EmptyTraceAndValidation) {
  EXPECT_FALSE(analysis::estimate_cycle_period(PacketTrace{}).periodic);
  analysis::PeriodicityOptions bad;
  bad.bin_s = 0.0;
  EXPECT_THROW((void)analysis::estimate_cycle_period(PacketTrace{}, bad), std::invalid_argument);
}

TEST(PeriodicityTest, PacedCycleGroundTruth) {
  // 64 kB at 1.25 x 1 Mbps: 0.419 s.
  EXPECT_NEAR(analysis::paced_cycle_duration_s(64 * 1024, 1.25, 1e6), 0.419, 0.001);
  EXPECT_THROW((void)analysis::paced_cycle_duration_s(0, 1.25, 1e6), std::invalid_argument);
}

}  // namespace
}  // namespace vstream
