// Tests for the multi-session topology subsystem: builder validation
// diagnostics, deterministic arrival processes, shared-bottleneck
// contention, twin-run fingerprints (serial and sharded across workers),
// and the §6.1 empirical-vs-analytical agreement that the aggregate model
// rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "runner/parallel_sweep.hpp"
#include "runner/topology_sweep.hpp"
#include "streaming/session_builder.hpp"
#include "streaming/topology.hpp"
#include "streaming/topology_builder.hpp"

namespace vstream::streaming {
namespace {

video::VideoMeta test_video(double duration_s = 20.0, double encoding_bps = 300e3) {
  video::VideoMeta meta;
  meta.id = "topology-test";
  meta.duration_s = duration_s;
  meta.encoding_bps = encoding_bps;
  meta.container = video::Container::kFlashHd;
  return meta;
}

/// A small, fast shared-bottleneck world: bulk HD Flash sessions on
/// research-grade access legs.
TopologyBuilder small_world() {
  TopologyBuilder b;
  b.container(video::Container::kFlashHd)
      .application(Application::kFirefox)
      .vantage(net::Vantage::kResearch)
      .video(test_video())
      .sessions(4)
      .horizon_s(30.0)
      .sample_window_s(0.5)
      .seed(42);
  return b;
}

// ---------------------------------------------------------------- validation

TEST(TopologyValidationTest, BandwidthJitterExcludedFromTopologies) {
  auto b = small_world();
  b.bandwidth_jitter(0.5);
  try {
    (void)b.build();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The diagnostic must name the knob and point at the replacement.
    EXPECT_NE(std::string{e.what()}.find("bandwidth_jitter"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("shared"), std::string::npos);
  }
}

TEST(TopologyValidationTest, PerSessionImpairmentsExcludedFromTopologies) {
  auto b = small_world();
  b.impairments(net::ImpairmentSchedule{}.blackout(sim::SimTime::from_seconds(5.0),
                                                   sim::Duration::seconds(1.0)));
  try {
    (void)b.build();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("bottleneck_impairments"), std::string::npos);
  }
}

TEST(TopologyValidationTest, PerSessionCaptureExcludedFromTopologies) {
  auto b = small_world();
  b.store_trace(true);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(TopologyValidationTest, RunSessionRejectsTopologyAttachedConfig) {
  SessionConfig cfg = SessionBuilder{}
                          .container(video::Container::kFlashHd)
                          .application(Application::kFirefox)
                          .vantage(net::Vantage::kResearch)
                          .video(test_video())
                          .bandwidth_jitter(0.0)
                          .auxiliary_traffic(false)
                          .store_trace(false)
                          .build();
  cfg.topology_attached = true;
  EXPECT_THROW((void)run_session(cfg), std::invalid_argument);
}

TEST(TopologyValidationTest, SessionBuilderStillValidatesTheOldWay) {
  // The rebased SessionBuilder (N=1 case of the shared mixin) must keep
  // rejecting what it always rejected.
  EXPECT_THROW((void)SessionBuilder{}
                   .service(Service::kNetflix)
                   .container(video::Container::kFlash)  // Table 1: not applicable
                   .video(test_video())
                   .build(),
               std::invalid_argument);
  EXPECT_THROW((void)small_world().watch_fraction(1.5).build(), std::invalid_argument);
}

TEST(TopologyValidationTest, ArrivalScheduleRejectsBadParameters) {
  EXPECT_THROW((void)WorkloadBuilder{}.poisson(-1.0).build(), std::invalid_argument);
  EXPECT_THROW((void)WorkloadBuilder{}.diurnal(1.0, 60.0, 1.5).build(), std::invalid_argument);
  EXPECT_THROW((void)small_world().sample_window_s(0.0).build(), std::invalid_argument);
  EXPECT_THROW((void)small_world().warmup_s(60.0).build(), std::invalid_argument);  // >= horizon
}

// ------------------------------------------------------------------ arrivals

TEST(ArrivalProcessTest, ImmediateAndFlashCrowdShapes) {
  sim::Rng rng{7};
  ArrivalSchedule immediate;
  immediate.kind = ArrivalSchedule::Kind::kImmediate;
  immediate.start_s = 2.0;
  auto at = generate_arrivals(immediate, 5, 30.0, rng);
  ASSERT_EQ(at.size(), 5u);
  for (double t : at) EXPECT_DOUBLE_EQ(t, 2.0);

  ArrivalSchedule crowd;
  crowd.kind = ArrivalSchedule::Kind::kFlashCrowd;
  crowd.start_s = 10.0;
  crowd.spread_s = 5.0;
  auto ct = generate_arrivals(crowd, 200, 30.0, rng);
  ASSERT_EQ(ct.size(), 200u);
  for (std::size_t i = 0; i < ct.size(); ++i) {
    EXPECT_GE(ct[i], 10.0);
    EXPECT_LT(ct[i], 15.0);
    if (i > 0) {
      EXPECT_GE(ct[i], ct[i - 1]);  // sorted for the event queue
    }
  }
}

TEST(ArrivalProcessTest, PoissonCountAndInterarrivalStatistics) {
  // lambda = 50/s over 100 s: expect ~5000 arrivals, sigma = sqrt(5000) ~ 71.
  sim::Rng rng{123};
  ArrivalSchedule poisson;
  poisson.kind = ArrivalSchedule::Kind::kPoisson;
  poisson.rate_per_s = 50.0;
  auto at = generate_arrivals(poisson, 1u << 20, 100.0, rng);
  const double n = static_cast<double>(at.size());
  EXPECT_NEAR(n, 5000.0, 5.0 * std::sqrt(5000.0));  // 5 sigma

  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 1; i < at.size(); ++i) {
    const double gap = at[i] - at[i - 1];
    EXPECT_GE(gap, 0.0);
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / (n - 1.0);
  const double var = sum_sq / (n - 1.0) - mean * mean;
  // Exponential(lambda): mean 1/50 = 0.02, variance 1/2500 = 4e-4.
  EXPECT_NEAR(mean, 0.02, 0.002);
  EXPECT_NEAR(var, 4.0e-4, 8.0e-5);
}

TEST(ArrivalProcessTest, DiurnalThinningPreservesMeanRate) {
  // Over whole periods the sinusoid integrates out: count ~ rate * horizon.
  sim::Rng rng{9};
  ArrivalSchedule diurnal;
  diurnal.kind = ArrivalSchedule::Kind::kDiurnal;
  diurnal.rate_per_s = 20.0;
  diurnal.period_s = 50.0;
  diurnal.depth = 0.8;
  auto at = generate_arrivals(diurnal, 1u << 20, 200.0, rng);
  EXPECT_NEAR(static_cast<double>(at.size()), 4000.0, 5.0 * std::sqrt(4000.0));
  EXPECT_TRUE(std::is_sorted(at.begin(), at.end()));
}

TEST(ArrivalProcessTest, DeterministicGivenSeed) {
  ArrivalSchedule poisson;
  poisson.kind = ArrivalSchedule::Kind::kPoisson;
  poisson.rate_per_s = 10.0;
  sim::Rng a{77}, b{77}, c{78};
  EXPECT_EQ(generate_arrivals(poisson, 100, 50.0, a), generate_arrivals(poisson, 100, 50.0, b));
  EXPECT_NE(generate_arrivals(poisson, 100, 50.0, c).front(),
            generate_arrivals(poisson, 100, 50.0, a).front());
}

// ---------------------------------------------------------------- contention

TEST(TopologyRunTest, SessionsCompleteAndDeliverPayload) {
  const TopologyResult r = small_world().run();
  EXPECT_EQ(r.sessions_started, 4u);
  EXPECT_EQ(r.sessions_finished + r.sessions_interrupted + r.sessions_active_at_end, 4u);
  EXPECT_GT(r.video_payload_bytes, 0u);
  EXPECT_GT(r.bytes_downloaded, 0u);
  EXPECT_GT(r.aggregate.count, 0u);
  EXPECT_GT(r.connections, 0u);
  // Bulk downloads through an unconstrained bottleneck finish well before
  // the 30 s horizon: 20 s of 300 kbps video on research access legs.
  EXPECT_EQ(r.sessions_active_at_end, 0u);
}

TEST(TopologyRunTest, SharedBottleneckCreatesContention) {
  // Solo world: one session owns the bottleneck.
  auto solo = small_world().sessions(1).bottleneck_rate_bps(2e6).run();
  ASSERT_EQ(solo.goodput_samples, 1u);
  const double solo_goodput = solo.mean_goodput_bps();

  // Eight sessions arriving together behind the same 2 Mbps bottleneck
  // must each see materially less than the solo goodput.
  auto crowded = small_world().sessions(8).bottleneck_rate_bps(2e6).run();
  ASSERT_GT(crowded.goodput_samples, 0u);
  EXPECT_LT(crowded.mean_goodput_bps(), 0.6 * solo_goodput);
  // And the contention is real queueing, not wire loss.
  EXPECT_EQ(crowded.bottleneck_dropped_loss, 0u);
}

TEST(TopologyRunTest, CrossTrafficStealsBottleneckCapacity) {
  net::CrossTraffic::Config cross;
  cross.mean_rate_bps = 1.5e6;
  auto with_cross = small_world().sessions(4).bottleneck_rate_bps(2e6).cross_traffic(cross).run();
  auto without = small_world().sessions(4).bottleneck_rate_bps(2e6).run();
  EXPECT_GT(with_cross.cross_traffic_bytes, 0u);
  EXPECT_EQ(without.cross_traffic_bytes, 0u);
  EXPECT_LT(with_cross.mean_goodput_bps(), without.mean_goodput_bps());
}

TEST(TopologyRunTest, InterruptionWasteIsCounted) {
  // Viewers abandoning at 30% with bulk downloads leave unused bytes (§6.2).
  auto r = small_world().sessions(4).watch_fraction(0.3).run();
  EXPECT_EQ(r.sessions_interrupted, 4u);
  EXPECT_GT(r.wasted_bytes, 0u);
  EXPECT_LE(r.wasted_bytes, r.bytes_downloaded);
}

// --------------------------------------------------------------- determinism

TEST(TopologyDeterminismTest, TwinRunsFingerprintIdentically) {
  auto config = small_world()
                    .sessions(6)
                    .workload(WorkloadBuilder{}.poisson(1.0).build())
                    .bottleneck_rate_bps(10e6)
                    .build();
  const TopologyFingerprint a = fingerprint_topology(config);
  const TopologyFingerprint b = fingerprint_topology(config);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.sim_events, 0u);
  EXPECT_GT(a.bytes_downloaded, 0u);

  auto reseeded = small_world()
                      .sessions(6)
                      .workload(WorkloadBuilder{}.poisson(1.0).build())
                      .bottleneck_rate_bps(10e6)
                      .seed(43)
                      .build();
  EXPECT_NE(fingerprint_topology(reseeded).digest, a.digest);
}

TEST(TopologyDeterminismTest, SweepDigestInvariantAcrossWorkerCounts) {
  // ~1k sessions across 16 worlds: the sweep digest must be bit-identical
  // whether the worlds run serially or on a pool of workers.
  const auto make = [](std::size_t g) {
    return small_world()
        .sessions(64)
        .video(test_video(4.0, 200e3))
        .horizon_s(20.0)
        .workload(WorkloadBuilder{}.poisson(8.0).build())
        .bottleneck_rate_bps(400e6)
        .seed(1000 + g)
        .build();
  };
  const runner::ParallelSweep serial{1};
  const runner::ParallelSweep pooled{4};
  const auto a = runner::run_topologies_streamed(serial, 0, 16, make);
  const auto b = runner::run_topologies_streamed(pooled, 0, 16, make);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.sessions_started, b.sessions_started);
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_GT(a.sessions_started, 900u);  // lambda*horizon = 160 expected per world

  // Contiguous sharding must merge to the same digest.
  auto first_half = runner::run_topologies_streamed(pooled, 0, 8, make);
  const auto second_half = runner::run_topologies_streamed(pooled, 8, 8, make);
  first_half.merge(second_half);
  EXPECT_EQ(first_half.digest, a.digest);
}

// ------------------------------------------------------- model agreement §6.1

TEST(TopologyModelAgreementTest, EmpiricalMatchesClosedFormsAt10k) {
  // 10k Poisson arrivals sharded over 10 identical-in-distribution worlds
  // (~1k each at lambda = 20/s). Bulk HD Flash sessions on residence ADSL
  // legs (7.7 Mbps, so a transfer pulse lasts ~0.3 s and the 0.1 s windows
  // only mildly smooth it); e ~ U(100, 200) kbps, L ~ U(8, 16) s; the
  // bottleneck sits ~5 sigma above E[R], so the superposition is observed
  // uncongested — the regime of Eq. 3/4.
  //
  // Tolerances (documented in DESIGN.md §15): the mean check carries
  // sampling error plus horizon-edge effects (10%); the variance check
  // additionally smooths pulses over the window and inherits the
  // measured-G spread (30%).
  const auto make = [](std::size_t g) {
    return TopologyBuilder{}
        .container(video::Container::kFlashHd)
        .application(Application::kFirefox)
        .vantage(net::Vantage::kResidence)
        .video(test_video(12.0, 150e3))
        .sessions(1200)
        .workload(WorkloadBuilder{}
                      .poisson(20.0)
                      .customize([](std::size_t, sim::Rng& rng, SessionConfig& cfg) {
                        cfg.video.encoding_bps = rng.uniform(100e3, 200e3);
                        cfg.video.duration_s = rng.uniform(8.0, 16.0);
                      })
                      .build())
        .bottleneck_rate_bps(150e6)
        .horizon_s(50.0)
        .warmup_s(22.0)
        .sample_window_s(0.1)
        .seed(5000 + g)
        .build();
  };
  const runner::ParallelSweep pool{0};  // hardware concurrency
  const auto sweep = runner::run_topologies_streamed(pool, 0, 10, make);

  ASSERT_GE(sweep.sessions_started, 9000u);
  EXPECT_EQ(sweep.bottleneck_dropped_loss, 0u);

  const model::AggregateParams params = sweep.measured_model_params();
  EXPECT_NEAR(params.lambda_per_s, 20.0, 2.0);
  EXPECT_NEAR(params.mean_encoding_bps, 150e3, 7.5e3);
  EXPECT_NEAR(params.mean_duration_s, 12.0, 0.6);
  EXPECT_GT(params.mean_download_rate_bps, params.mean_encoding_bps);

  const double predicted_mean = model::mean_aggregate_rate_bps(params);
  const double predicted_var = model::variance_aggregate_rate(params);
  const double empirical_mean = sweep.mean_aggregate_bps();
  const double empirical_var = sweep.variance_aggregate();

  EXPECT_NEAR(empirical_mean, predicted_mean, 0.10 * predicted_mean);
  EXPECT_NEAR(empirical_var, predicted_var, 0.30 * predicted_var);
}

}  // namespace
}  // namespace vstream::streaming
