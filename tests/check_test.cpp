// Tests for the contract layer (vstream_check): violation payloads, the
// process-wide violation counter, and the FNV-1a state digest. (The
// simulator's own use of the contracts is covered in sim_test.cpp.)
#include <gtest/gtest.h>

#include <string>

#include "check/contracts.hpp"
#include "check/digest.hpp"

namespace vstream::check {
namespace {

static_assert(VSTREAM_CHECK_LEVEL >= 1,
              "check_test must build with contracts armed; the level-0 "
              "flavour is covered by check_release_test");

TEST(ContractsTest, PassingContractsAreSilent) {
  const std::uint64_t before = violations_raised();
  VSTREAM_PRECONDITION(1 + 1 == 2, "arithmetic works");
  VSTREAM_INVARIANT(true, "still true");
  VSTREAM_POSTCONDITION(2 > 1, "ordering works");
  EXPECT_EQ(violations_raised(), before);
}

TEST(ContractsTest, ViolatedPreconditionThrowsWithKind) {
  try {
    VSTREAM_PRECONDITION(false, "caller broke the deal");
    FAIL() << "precondition did not throw";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), ContractKind::kPrecondition);
    EXPECT_EQ(v.condition(), "false");
  }
}

TEST(ContractsTest, ViolatedInvariantThrowsWithKind) {
  EXPECT_THROW(VSTREAM_INVARIANT(false, "state corrupt"), ContractViolation);
  try {
    VSTREAM_INVARIANT(false, "state corrupt");
    FAIL() << "invariant did not throw";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), ContractKind::kInvariant);
  }
}

TEST(ContractsTest, ViolatedPostconditionThrowsWithKind) {
  try {
    VSTREAM_POSTCONDITION(false, "result out of range");
    FAIL() << "postcondition did not throw";
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.kind(), ContractKind::kPostcondition);
  }
}

TEST(ContractsTest, WhatCarriesFileLineConditionAndMessage) {
  try {
    const int cwnd = -1;
    VSTREAM_INVARIANT(cwnd >= 0, "cwnd must never go negative");
    FAIL() << "invariant did not throw";
  } catch (const ContractViolation& v) {
    const std::string what = v.what();
    EXPECT_NE(what.find("invariant"), std::string::npos) << what;
    EXPECT_NE(what.find("cwnd >= 0"), std::string::npos) << what;
    EXPECT_NE(what.find("cwnd must never go negative"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(v.line())), std::string::npos) << what;
    EXPECT_NE(v.file().find("check_test.cpp"), std::string::npos);
    EXPECT_GT(v.line(), 0);
  }
}

TEST(ContractsTest, ViolationCounterAdvancesPerFailure) {
  const std::uint64_t before = violations_raised();
  EXPECT_THROW(VSTREAM_INVARIANT(false, "one"), ContractViolation);
  EXPECT_THROW(VSTREAM_PRECONDITION(false, "two"), ContractViolation);
  EXPECT_EQ(violations_raised(), before + 2);
}

TEST(ContractsTest, KindNamesAreStable) {
  EXPECT_EQ(to_string(ContractKind::kPrecondition), "precondition");
  EXPECT_EQ(to_string(ContractKind::kInvariant), "invariant");
  EXPECT_EQ(to_string(ContractKind::kPostcondition), "postcondition");
}

TEST(ContractsTest, ConditionIsEvaluatedExactlyOnce) {
  int calls = 0;
  const auto pass_and_count = [&calls] {
    ++calls;
    return true;
  };
  VSTREAM_INVARIANT(pass_and_count(), "side effect must run once when armed");
  EXPECT_EQ(calls, 1);
}

// ----------------------------------------------------------------- digest

TEST(StateDigestTest, EmptyDigestIsOffsetBasis) {
  const StateDigest d;
  EXPECT_EQ(d.value(), StateDigest::kOffsetBasis);
  EXPECT_EQ(d.words_mixed(), 0U);
}

TEST(StateDigestTest, MatchesReferenceFnv1aVectors) {
  // Reference FNV-1a 64-bit test vectors (Fowler/Noll/Vo).
  StateDigest a;
  a.mix(std::string_view{"a"});
  EXPECT_EQ(a.value(), 0xaf63dc4c8601ec8cULL);

  StateDigest foobar;
  foobar.mix(std::string_view{"foobar"});
  EXPECT_EQ(foobar.value(), 0x85944171f73967e8ULL);
}

TEST(StateDigestTest, WordMixFoldsLittleEndianBytes) {
  // mix(word) must equal mixing the 8 LE bytes of the word as characters.
  StateDigest by_word;
  by_word.mix(std::uint64_t{0x0102030405060708ULL});
  StateDigest by_bytes;
  const char le[] = {0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01};
  by_bytes.mix(std::string_view{le, sizeof le});
  EXPECT_EQ(by_word.value(), by_bytes.value());
}

TEST(StateDigestTest, OrderSensitive) {
  StateDigest ab;
  ab.mix(std::uint64_t{1});
  ab.mix(std::uint64_t{2});
  StateDigest ba;
  ba.mix(std::uint64_t{2});
  ba.mix(std::uint64_t{1});
  EXPECT_NE(ab.value(), ba.value());
  EXPECT_EQ(ab.words_mixed(), ba.words_mixed());
}

TEST(StateDigestTest, ResetRestoresInitialState) {
  StateDigest d;
  d.mix(std::uint64_t{42});
  d.mix_signed(-7);
  EXPECT_NE(d.value(), StateDigest::kOffsetBasis);
  d.reset();
  EXPECT_EQ(d.value(), StateDigest::kOffsetBasis);
  EXPECT_EQ(d.words_mixed(), 0U);
}

TEST(StateDigestTest, SignedMixIsTwosComplement) {
  StateDigest neg;
  neg.mix_signed(-1);
  StateDigest all_ones;
  all_ones.mix(~std::uint64_t{0});
  EXPECT_EQ(neg.value(), all_ones.value());
}

}  // namespace
}  // namespace vstream::check
