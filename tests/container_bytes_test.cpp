// Tests for the binary FLV/WebM container headers — including the paper's
// WebM invalid-frame-rate quirk that forces rate estimation.
#include <gtest/gtest.h>

#include "video/container_bytes.hpp"
#include "video/container_header.hpp"

namespace vstream::video {
namespace {

VideoMeta flash_video() {
  VideoMeta v;
  v.id = "flv";
  v.duration_s = 212.0;
  v.encoding_bps = 1.1e6;
  v.container = Container::kFlash;
  return v;
}

VideoMeta webm_video() {
  VideoMeta v;
  v.id = "webm";
  v.duration_s = 300.0;
  v.encoding_bps = 0.9e6;
  v.container = Container::kHtml5;
  return v;
}

TEST(FlvHeaderTest, MagicAndStructure) {
  const auto bytes = write_flv_header(flash_video());
  ASSERT_GE(bytes.size(), 13U);
  EXPECT_EQ(bytes[0], 'F');
  EXPECT_EQ(bytes[1], 'L');
  EXPECT_EQ(bytes[2], 'V');
  EXPECT_EQ(bytes[3], 1);     // version
  EXPECT_EQ(bytes[4], 0x01);  // video flag
  // Script tag type after header+prevtagsize.
  EXPECT_EQ(bytes[13], 18);
}

TEST(FlvHeaderTest, RoundTripsRateAndDuration) {
  const auto video = flash_video();
  const auto bytes = write_flv_header(video);
  const auto parsed = parse_container_header(bytes);
  EXPECT_EQ(parsed.container, Container::kFlash);
  ASSERT_TRUE(parsed.duration_s.has_value());
  EXPECT_NEAR(*parsed.duration_s, 212.0, 1e-9);
  ASSERT_TRUE(parsed.video_rate_bps.has_value());
  EXPECT_NEAR(*parsed.video_rate_bps, 1.1e6, 1.0);
}

TEST(WebmHeaderTest, MagicAndDocType) {
  const auto bytes = write_webm_header(webm_video());
  ASSERT_GE(bytes.size(), 8U);
  EXPECT_EQ(bytes[0], 0x1A);
  EXPECT_EQ(bytes[1], 0x45);
  EXPECT_EQ(bytes[2], 0xDF);
  EXPECT_EQ(bytes[3], 0xA3);
  // "webm" doctype appears in the EBML header.
  const std::string all{bytes.begin(), bytes.end()};
  EXPECT_NE(all.find("webm"), std::string::npos);
}

TEST(WebmHeaderTest, DurationParsesButRateIsInvalid) {
  // The paper: "we observed an invalid entry for the frame rate in the
  // header of the webM files" — duration is there, the rate is not usable.
  const auto bytes = write_webm_header(webm_video());
  const auto parsed = parse_container_header(bytes);
  EXPECT_EQ(parsed.container, Container::kHtml5);
  ASSERT_TRUE(parsed.duration_s.has_value());
  EXPECT_NEAR(*parsed.duration_s, 300.0, 1e-9);
  EXPECT_FALSE(parsed.video_rate_bps.has_value());
}

TEST(ContainerBytesTest, EndToEndMatchesHeaderModel) {
  // The byte-level path agrees with the abstract `make_header` model: FLV
  // declares a usable rate, WebM forces Content-Length estimation.
  const auto flv_parsed = parse_container_header(write_flv_header(flash_video()));
  const auto flv_model = make_header(flash_video());
  EXPECT_EQ(flv_parsed.video_rate_bps.has_value(), flv_model.declared_rate_bps.has_value());

  const auto webm_parsed = parse_container_header(write_webm_header(webm_video()));
  const auto webm_model = make_header(webm_video());
  EXPECT_EQ(webm_parsed.video_rate_bps.has_value(), webm_model.declared_rate_bps.has_value());

  // And the estimation fallback produces the right rate from Content-Length.
  const auto v = webm_video();
  const double est = estimate_rate_from_content_length(v.size_bytes(), *webm_parsed.duration_s);
  EXPECT_NEAR(est, v.encoding_bps, v.encoding_bps * 0.01);
}

TEST(ContainerBytesTest, RejectsGarbage) {
  const std::vector<std::uint8_t> garbage{0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_THROW((void)parse_container_header(garbage), std::invalid_argument);
  EXPECT_THROW((void)parse_container_header({}), std::invalid_argument);
}

TEST(ContainerBytesTest, TruncatedWebmThrows) {
  auto bytes = write_webm_header(webm_video());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)parse_container_header(bytes), std::invalid_argument);
}

class FlvRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(FlvRateSweep, RatePreservedAcrossRange) {
  auto v = flash_video();
  v.encoding_bps = GetParam();
  const auto parsed = parse_container_header(write_flv_header(v));
  ASSERT_TRUE(parsed.video_rate_bps.has_value());
  EXPECT_NEAR(*parsed.video_rate_bps, GetParam(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(PaperRange, FlvRateSweep,
                         ::testing::Values(0.2e6, 0.5e6, 1.0e6, 1.5e6, 4.8e6));

}  // namespace
}  // namespace vstream::video
