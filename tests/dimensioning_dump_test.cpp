// Tests for the late additions: KS distance, Gaussian-approximation link
// dimensioning, and the tcpdump-style trace dumper.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "capture/dump.hpp"
#include "model/aggregate.hpp"
#include "stats/cdf.hpp"

namespace vstream {
namespace {

TEST(KsDistanceTest, IdenticalDistributionsHaveZeroDistance) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(i);
  const stats::EmpiricalCdf a{xs};
  const stats::EmpiricalCdf b{xs};
  EXPECT_DOUBLE_EQ(stats::EmpiricalCdf::ks_distance(a, b), 0.0);
}

TEST(KsDistanceTest, DisjointDistributionsHaveDistanceOne) {
  const std::vector<double> lo{1.0, 2.0, 3.0};
  const std::vector<double> hi{10.0, 11.0, 12.0};
  const stats::EmpiricalCdf a{lo};
  const stats::EmpiricalCdf b{hi};
  EXPECT_DOUBLE_EQ(stats::EmpiricalCdf::ks_distance(a, b), 1.0);
}

TEST(KsDistanceTest, ShiftedNormalsGiveModerateDistance) {
  std::mt19937 gen{42};
  std::normal_distribution<double> d0{0.0, 1.0};
  std::normal_distribution<double> d1{0.5, 1.0};
  stats::EmpiricalCdf a;
  stats::EmpiricalCdf b;
  for (int i = 0; i < 5000; ++i) {
    a.add(d0(gen));
    b.add(d1(gen));
  }
  const double d = stats::EmpiricalCdf::ks_distance(a, b);
  // Theoretical KS for N(0,1) vs N(0.5,1) is ~0.197.
  EXPECT_NEAR(d, 0.197, 0.05);
  EXPECT_THROW((void)stats::EmpiricalCdf::ks_distance(a, stats::EmpiricalCdf{}),
               std::logic_error);
}

TEST(DimensioningTest, OverloadProbabilityAtMeanIsHalf) {
  model::AggregateParams p;
  p.lambda_per_s = 1.0;
  p.mean_encoding_bps = 1e6;
  p.mean_duration_s = 300.0;
  p.mean_download_rate_bps = 5e6;
  const double mean = model::mean_aggregate_rate_bps(p);
  EXPECT_NEAR(model::overload_probability(p, mean), 0.5, 1e-9);
  // Far above the mean: vanishing probability.
  EXPECT_LT(model::overload_probability(p, 3.0 * mean), 1e-6);
}

TEST(DimensioningTest, CapacityInverseRoundTrips) {
  model::AggregateParams p;
  p.lambda_per_s = 0.5;
  p.mean_encoding_bps = 1e6;
  p.mean_duration_s = 300.0;
  p.mean_download_rate_bps = 5e6;
  for (const double q : {0.1, 0.01, 0.001}) {
    const double capacity = model::capacity_for_violation(p, q);
    EXPECT_NEAR(model::overload_probability(p, capacity), q, q * 0.05);
    EXPECT_GT(capacity, model::mean_aggregate_rate_bps(p));
  }
  EXPECT_THROW((void)model::capacity_for_violation(p, 0.0), std::invalid_argument);
  EXPECT_THROW((void)model::capacity_for_violation(p, 1.0), std::invalid_argument);
}

TEST(DimensioningTest, TighterViolationNeedsMoreCapacity) {
  model::AggregateParams p;
  p.mean_download_rate_bps = 5e6;
  EXPECT_GT(model::capacity_for_violation(p, 0.001), model::capacity_for_violation(p, 0.01));
}

TEST(DumpTest, FormatsDataPacket) {
  capture::PacketRecord r;
  r.t_s = 1.25;
  r.direction = net::Direction::kDown;
  r.connection_id = 3;
  r.seq = 1001;
  r.ack = 55;
  r.payload_bytes = 1460;
  r.window_bytes = 65536;
  r.flags = net::TcpFlag::kAck | net::TcpFlag::kPsh;
  const auto line = capture::format_packet(r);
  EXPECT_NE(line.find("10.0.0.1:80 > 192.168.1.2:10003"), std::string::npos);
  EXPECT_NE(line.find("Flags [P.]"), std::string::npos);
  EXPECT_NE(line.find("seq 1001:2461"), std::string::npos);
  EXPECT_NE(line.find("length 1460"), std::string::npos);
}

TEST(DumpTest, MarksRetransmissionsAndAuxHosts) {
  capture::PacketRecord r;
  r.direction = net::Direction::kDown;
  r.payload_bytes = 100;
  r.is_retransmission = true;
  r.host = 1;
  const auto line = capture::format_packet(r);
  EXPECT_NE(line.find("(retransmission)"), std::string::npos);
  EXPECT_NE(line.find("10.0.0.2:80"), std::string::npos);
}

TEST(DumpTest, RespectsLimitsAndDataOnly) {
  capture::PacketTrace trace;
  for (int i = 0; i < 10; ++i) {
    capture::PacketRecord r;
    r.t_s = i;
    r.direction = net::Direction::kDown;
    r.payload_bytes = (i % 2 == 0) ? 1460 : 0;
    r.flags = net::TcpFlag::kAck;
    trace.packets.push_back(r);
  }
  std::ostringstream out;
  capture::DumpOptions opts;
  opts.data_only = true;
  capture::dump_trace(trace, out, opts);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);

  std::ostringstream limited;
  opts = capture::DumpOptions{};
  opts.max_packets = 3;
  capture::dump_trace(trace, limited, opts);
  EXPECT_NE(limited.str().find("10 packets total"), std::string::npos);
}

}  // namespace
}  // namespace vstream
