// End-to-end resilience tests: streaming sessions that hit link faults
// mid-download must recover via the fetch retry machinery instead of
// hanging, account the recovery (retries, rebuffers, fault drops) in the
// session result and reports, and stay twin-run digest-deterministic.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "analysis/report_json.hpp"
#include "net/dynamics.hpp"
#include "net/profile.hpp"
#include "streaming/scenarios.hpp"
#include "streaming/session_builder.hpp"

namespace vstream::streaming {
namespace {

using sim::Duration;
using sim::SimTime;

/// A session shaped so a mid-download blackout *must* bite: the iPad client
/// at a high encoding rate holds only ~20 s of playback in its 10 MB initial
/// buffer, and the outage outlasts it. The tight retry policy recovers the
/// in-flight fetches within the capture.
SessionConfig blackout_config(bool retry_enabled) {
  video::VideoMeta meta;
  meta.id = "resilience";
  meta.duration_s = 300.0;
  meta.encoding_bps = 4e6;
  meta.resolution = video::Resolution::k360p;
  meta.container = video::Container::kHtml5;

  RetryPolicy retry;
  retry.enabled = retry_enabled;
  retry.request_timeout = Duration::seconds(2.0);
  retry.backoff_initial = Duration::millis(250);
  retry.backoff_max = Duration::seconds(2.0);
  retry.max_retries = 12;

  net::ImpairmentSchedule impairments;
  impairments.blackout(SimTime::from_seconds(5.0), Duration::seconds(25.0));

  return SessionBuilder{}
      .service(Service::kYouTube)
      .container(video::Container::kHtml5)
      .application(Application::kIosNative)
      .vantage(net::Vantage::kHome)
      .video(meta)
      .capture_duration_s(60.0)
      .bandwidth_jitter(0.0)
      .seed(777)
      .fetch_retry(retry)
      .impairments(impairments)
      .streaming_report(true)
      .build();
}

TEST(ResilienceTest, MidDownloadBlackoutRecoversWithRetryAndRebuffer) {
  const auto result = run_session(blackout_config(/*retry_enabled=*/true));

  // The link really went down and dropped traffic on the floor.
  EXPECT_EQ(result.resilience.fault_windows, 1U);
  EXPECT_GT(result.resilience.fault_drops, 0U);

  // Application-level recovery: at least one watchdog-driven retry, and the
  // player drained its buffer, stalled, and resumed — a recorded rebuffer.
  EXPECT_GE(result.resilience.fetch_retries, 1U);
  EXPECT_GE(result.resilience.fetch_timeouts, 1U);
  EXPECT_GE(result.resilience.rebuffer_count, 1U);
  EXPECT_GT(result.resilience.longest_stall_s, 0.0);

  // The session completed instead of hanging: the download resumed after
  // the outage and playback continued past it.
  EXPECT_TRUE(result.player.started);
  EXPECT_GT(result.player.watched_s, 25.0);
  EXPECT_GT(result.bytes_downloaded, 12'000'000U);  // well past the 10 MB initial buffer

  // The streamed SessionReport carries the same resilience block.
  ASSERT_TRUE(result.report.has_value());
  EXPECT_EQ(result.report->resilience, result.resilience);
  EXPECT_NE(analysis::to_json(*result.report).find("\"resilience\""), std::string::npos);
  EXPECT_NE(result.report->render().find("rebuffer"), std::string::npos);
}

TEST(ResilienceTest, DisabledRetryLeansOnTransportOnly) {
  // Control: with the policy off, recovery is left entirely to TCP's RTO
  // backoff. The transport does eventually resume (it never gives up), but
  // the application records no recovery of its own, re-establishes no
  // connections, and ends the capture with fewer bytes than the resilient
  // twin, which replaced its stranded connections instead of waiting.
  const auto resilient = run_session(blackout_config(true));
  const auto stuck = run_session(blackout_config(false));

  EXPECT_EQ(stuck.resilience.fetch_retries, 0U);
  EXPECT_EQ(stuck.resilience.fetch_timeouts, 0U);
  EXPECT_GE(resilient.resilience.fetch_retries, 1U);
  EXPECT_GT(resilient.connections, stuck.connections);
  EXPECT_GT(resilient.bytes_downloaded, stuck.bytes_downloaded);
  // The blackout stalls the player either way; that accounting is
  // independent of the fetch machinery.
  EXPECT_GE(stuck.resilience.rebuffer_count, 1U);
}

TEST(ResilienceTest, FaultScenariosAreTwinRunDeterministic) {
  // The acceptance bar: twin runs of the fault catalog — blackout,
  // burst-loss window, rate halving, and the rest — produce identical
  // fingerprints (event-order digest + headline results + recovery stats).
  const auto scenarios = fault_scenarios(/*capture_duration_s=*/15.0);
  ASSERT_GE(scenarios.size(), 3U);
  for (const auto& scenario : scenarios) {
    SCOPED_TRACE(scenario.name);
    const auto first = fingerprint_session(scenario.config);
    const auto second = fingerprint_session(scenario.config);
    EXPECT_EQ(first, second);
  }
}

TEST(ResilienceTest, BuilderValidatesUpFront) {
  const auto valid = [] {
    video::VideoMeta meta;
    meta.id = "v";
    meta.duration_s = 300.0;
    meta.encoding_bps = 1e6;
    meta.container = video::Container::kFlash;
    return SessionBuilder{}.video(meta).vantage(net::Vantage::kResearch);
  };
  EXPECT_NO_THROW(valid().build());

  // Table 1 marks Flash on native mobile apps "Not Applicable".
  EXPECT_THROW(valid().application(Application::kIosNative).build(), std::invalid_argument);
  EXPECT_THROW(valid().capture_duration_s(0.0).build(), std::invalid_argument);
  EXPECT_THROW(valid().watch_fraction(1.5).build(), std::invalid_argument);

  // Invalid retry and impairment parameters are caught at build() too.
  RetryPolicy bad_retry;
  bad_retry.backoff_max = Duration::millis(1);  // below backoff_initial
  EXPECT_THROW(valid().fetch_retry(bad_retry).build(), std::invalid_argument);

  net::ImpairmentSchedule overlapping;
  overlapping.blackout(SimTime::from_seconds(1.0), Duration::seconds(5.0))
      .blackout(SimTime::from_seconds(2.0), Duration::seconds(5.0));
  EXPECT_THROW(valid().impairments(overlapping).build(), std::invalid_argument);
}

TEST(ResilienceTest, FaultFreeSessionsReportZeroResilience) {
  // The canonical catalog must stay clean: an unfaulted run records no
  // retries, no rebuffers, no fault drops — so the resilience block stays
  // all-zero and the batch/streamed report equivalence is untouched.
  const auto scenarios = canonical_scenarios(/*capture_duration_s=*/10.0);
  for (const auto& scenario : scenarios) {
    SCOPED_TRACE(scenario.name);
    const auto result = run_session(scenario.config);
    EXPECT_FALSE(result.resilience.any());
  }
}

}  // namespace
}  // namespace vstream::streaming
