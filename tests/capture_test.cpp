// Tests for packet traces, the viewer-side recorder, pcap round trips and
// CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "capture/csv.hpp"
#include "capture/pcap.hpp"
#include "capture/recorder.hpp"
#include "capture/trace.hpp"
#include "net/path.hpp"
#include "net/profile.hpp"
#include "tcp/connection.hpp"

namespace vstream::capture {
namespace {

using net::Direction;
using net::TcpFlag;

PacketRecord make_record(double t, Direction d, std::uint32_t payload, std::uint64_t conn = 1) {
  PacketRecord r;
  r.t_s = t;
  r.direction = d;
  r.connection_id = conn;
  r.payload_bytes = payload;
  r.window_bytes = 65536;
  r.flags = TcpFlag::kAck;
  return r;
}

TEST(PacketTraceTest, DownPayloadAndConnectionCount) {
  PacketTrace trace;
  trace.packets.push_back(make_record(0.1, Direction::kDown, 1000, 1));
  trace.packets.push_back(make_record(0.2, Direction::kUp, 0, 1));
  trace.packets.push_back(make_record(0.3, Direction::kDown, 500, 2));
  EXPECT_EQ(trace.down_payload_bytes(), 1500U);
  EXPECT_EQ(trace.connection_count(), 2U);
  EXPECT_EQ(trace.in_direction(Direction::kDown).size(), 2U);
  EXPECT_EQ(trace.in_direction(Direction::kUp).size(), 1U);
}

TEST(PacketTraceTest, DownloadCurveIsCumulative) {
  PacketTrace trace;
  trace.packets.push_back(make_record(0.1, Direction::kDown, 1000));
  trace.packets.push_back(make_record(0.2, Direction::kDown, 2000));
  trace.packets.push_back(make_record(0.3, Direction::kUp, 0));
  const auto curve = trace.download_curve();
  ASSERT_EQ(curve.size(), 2U);
  EXPECT_EQ(curve[0].bytes, 1000U);
  EXPECT_EQ(curve[1].bytes, 3000U);
}

TEST(PacketTraceTest, WindowSeriesFromUpPackets) {
  PacketTrace trace;
  auto up = make_record(0.5, Direction::kUp, 0);
  up.window_bytes = 0;
  trace.packets.push_back(make_record(0.1, Direction::kDown, 100));
  trace.packets.push_back(up);
  const auto series = trace.receive_window_series();
  ASSERT_EQ(series.size(), 1U);
  EXPECT_EQ(series[0].window_bytes, 0U);
}

TEST(PacketTraceTest, RetransmissionFraction) {
  PacketTrace trace;
  trace.packets.push_back(make_record(0.1, Direction::kDown, 900));
  auto retx = make_record(0.2, Direction::kDown, 100);
  retx.is_retransmission = true;
  trace.packets.push_back(retx);
  EXPECT_DOUBLE_EQ(trace.retransmission_fraction(), 0.1);
  EXPECT_DOUBLE_EQ(PacketTrace{}.retransmission_fraction(), 0.0);
}

TEST(RecorderTest, CapturesViewerSidePackets) {
  sim::Simulator sim;
  sim::Rng rng{1};
  auto profile = net::profile_for(net::Vantage::kResearch);
  profile.loss_rate = 0.0;
  net::Path path{sim, profile, rng};
  tcp::Fabric fabric{sim, path};
  TraceRecorder recorder{sim, path};
  recorder.start();

  auto& conn = fabric.create_connection({}, {});
  conn.client().set_on_established([&] { conn.server().send(100'000); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  sim.run_until(sim::SimTime::from_seconds(5.0));

  const auto trace = recorder.trace();
  EXPECT_FALSE(trace.empty());
  // The client's SYN (up) and the server's SYN-ACK (down) must both appear.
  bool saw_syn = false;
  bool saw_synack = false;
  std::uint64_t down_payload = 0;
  for (const auto& p : trace.packets) {
    if (p.direction == Direction::kUp && net::has_flag(p.flags, TcpFlag::kSyn)) saw_syn = true;
    if (p.direction == Direction::kDown && net::has_flag(p.flags, TcpFlag::kSyn) &&
        net::has_flag(p.flags, TcpFlag::kAck)) {
      saw_synack = true;
    }
    if (p.direction == Direction::kDown) down_payload += p.payload_bytes;
  }
  EXPECT_TRUE(saw_syn);
  EXPECT_TRUE(saw_synack);
  EXPECT_GE(down_payload, 100'000U);
}

TEST(RecorderTest, StopFreezesTrace) {
  sim::Simulator sim;
  sim::Rng rng{1};
  auto profile = net::profile_for(net::Vantage::kResearch);
  net::Path path{sim, profile, rng};
  tcp::Fabric fabric{sim, path};
  TraceRecorder recorder{sim, path};
  recorder.start();
  auto& conn = fabric.create_connection({}, {});
  conn.client().set_on_established([&] { conn.server().send(10'000); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  sim.run_until(sim::SimTime::from_seconds(1.0));
  recorder.stop();
  const auto count = recorder.trace().packets.size();
  conn.server().send(10'000);
  sim.run_until(sim::SimTime::from_seconds(2.0));
  EXPECT_EQ(recorder.trace().packets.size(), count);
}

TEST(RecorderTest, TakeResetsState) {
  sim::Simulator sim;
  sim::Rng rng{1};
  auto profile = net::profile_for(net::Vantage::kResearch);
  net::Path path{sim, profile, rng};
  TraceRecorder recorder{sim, path};
  recorder.start();
  auto trace = recorder.take();
  EXPECT_TRUE(trace.packets.empty());
  EXPECT_TRUE(recorder.trace().packets.empty());
}

class PcapRoundTrip : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "/tmp/vstream_pcap_test.pcap";
};

TEST_F(PcapRoundTrip, PreservesAnalysisFields) {
  PacketTrace trace;
  for (int i = 0; i < 50; ++i) {
    PacketRecord r;
    r.t_s = 0.5 + i * 0.101;
    r.direction = (i % 3 == 0) ? Direction::kUp : Direction::kDown;
    r.connection_id = 1 + (i % 4);
    r.seq = static_cast<std::uint64_t>(i) * 1460 + 1;
    r.ack = static_cast<std::uint64_t>(i) * 10;
    r.payload_bytes = (r.direction == Direction::kDown) ? 1460 : 0;
    r.window_bytes = (static_cast<std::uint64_t>(i) * 128) % 250000;
    r.flags = TcpFlag::kAck;
    r.is_retransmission = (i % 7 == 0);
    trace.packets.push_back(r);
  }
  write_pcap(trace, path_);
  const auto loaded = read_pcap(path_);
  ASSERT_EQ(loaded.packets.size(), trace.packets.size());
  for (std::size_t i = 0; i < trace.packets.size(); ++i) {
    const auto& a = trace.packets[i];
    const auto& b = loaded.packets[i];
    EXPECT_NEAR(a.t_s, b.t_s, 2e-6);
    EXPECT_EQ(a.direction, b.direction);
    EXPECT_EQ(a.connection_id, b.connection_id);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.ack, b.ack);
    EXPECT_EQ(a.payload_bytes, b.payload_bytes);
    EXPECT_EQ(a.is_retransmission, b.is_retransmission);
    // Window survives modulo the 2^7 scale.
    EXPECT_EQ(a.window_bytes >> kPcapWindowShift, b.window_bytes >> kPcapWindowShift);
  }
}

TEST_F(PcapRoundTrip, ZeroWindowSurvives) {
  PacketTrace trace;
  auto r = make_record(1.0, Direction::kUp, 0);
  r.window_bytes = 0;
  trace.packets.push_back(r);
  write_pcap(trace, path_);
  const auto loaded = read_pcap(path_);
  ASSERT_EQ(loaded.packets.size(), 1U);
  EXPECT_EQ(loaded.packets[0].window_bytes, 0U);
}

TEST_F(PcapRoundTrip, FlagsSurvive) {
  PacketTrace trace;
  auto r = make_record(0.0, Direction::kUp, 0);
  r.flags = TcpFlag::kSyn;
  trace.packets.push_back(r);
  auto r2 = make_record(0.1, Direction::kDown, 0);
  r2.flags = TcpFlag::kSyn | TcpFlag::kAck;
  trace.packets.push_back(r2);
  auto r3 = make_record(0.2, Direction::kDown, 10);
  r3.flags = TcpFlag::kFin | TcpFlag::kAck | TcpFlag::kPsh;
  trace.packets.push_back(r3);
  write_pcap(trace, path_);
  const auto loaded = read_pcap(path_);
  ASSERT_EQ(loaded.packets.size(), 3U);
  EXPECT_TRUE(net::has_flag(loaded.packets[0].flags, TcpFlag::kSyn));
  EXPECT_FALSE(net::has_flag(loaded.packets[0].flags, TcpFlag::kAck));
  EXPECT_TRUE(net::has_flag(loaded.packets[1].flags, TcpFlag::kSyn));
  EXPECT_TRUE(net::has_flag(loaded.packets[1].flags, TcpFlag::kAck));
  EXPECT_TRUE(net::has_flag(loaded.packets[2].flags, TcpFlag::kFin));
  EXPECT_TRUE(net::has_flag(loaded.packets[2].flags, TcpFlag::kPsh));
}

TEST_F(PcapRoundTrip, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW((void)read_pcap("/tmp/definitely_missing.pcap"), std::runtime_error);
  std::ofstream bad{path_, std::ios::binary};
  bad << "this is not a pcap file at all";
  bad.close();
  EXPECT_THROW((void)read_pcap(path_), std::runtime_error);
}

TEST(CsvTest, PacketsCsvHasHeaderAndRows) {
  PacketTrace trace;
  trace.packets.push_back(make_record(0.25, Direction::kDown, 1460));
  std::ostringstream out;
  write_packets_csv(trace, out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("t_s,direction,connection"), std::string::npos);
  EXPECT_NE(csv.find("0.25,down,1,"), std::string::npos);
}

TEST(CsvTest, CurveAndWindowCsv) {
  PacketTrace trace;
  trace.packets.push_back(make_record(0.1, Direction::kDown, 100));
  trace.packets.push_back(make_record(0.2, Direction::kUp, 0));
  std::ostringstream curve;
  write_download_curve_csv(trace, curve);
  EXPECT_NE(curve.str().find("0.1,100"), std::string::npos);
  std::ostringstream wnd;
  write_window_series_csv(trace, wnd);
  EXPECT_NE(wnd.str().find("0.2,65536"), std::string::npos);
}

}  // namespace
}  // namespace vstream::capture
