// Tests for the zero-copy capture::TraceView: filter composition, skipping
// iteration, aggregate equivalence with the legacy copy-returning filters,
// and materialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "capture/trace.hpp"
#include "capture/trace_view.hpp"

namespace vstream {
namespace {

capture::PacketRecord rec(double t, net::Direction dir, std::uint8_t host, std::uint64_t conn,
                          std::uint32_t payload, bool retx = false,
                          std::uint64_t window = 65536) {
  capture::PacketRecord r;
  r.t_s = t;
  r.direction = dir;
  r.host = host;
  r.connection_id = conn;
  r.payload_bytes = payload;
  r.is_retransmission = retx;
  r.window_bytes = window;
  return r;
}

/// A small mixed trace: two hosts, three connections, both directions, one
/// retransmission, a window update at time-tie with a data packet.
capture::PacketTrace make_trace() {
  capture::PacketTrace trace;
  trace.label = "view-test";
  trace.encoding_bps = 1.25e6;
  trace.duration_s = 4.0;
  trace.packets = {
      rec(0.00, net::Direction::kUp, 0, 1, 0),
      rec(0.01, net::Direction::kDown, 0, 1, 1448),
      rec(0.01, net::Direction::kUp, 0, 1, 0, false, 32768),  // time tie
      rec(0.50, net::Direction::kDown, 1, 2, 900),            // auxiliary host
      rec(0.80, net::Direction::kDown, 0, 1, 1448, true),     // retransmission
      rec(1.20, net::Direction::kUp, 1, 2, 120),
      rec(2.00, net::Direction::kDown, 0, 7, 700),            // tagged cross-traffic
      rec(3.50, net::Direction::kDown, 0, 1, 1448),
  };
  return trace;
}

TEST(TraceViewTest, PassThroughMatchesTrace) {
  const auto trace = make_trace();
  const capture::TraceView view{trace};
  EXPECT_TRUE(view.filter().pass_through());
  EXPECT_EQ(view.count(), trace.packets.size());
  EXPECT_EQ(view.down_payload_bytes(), trace.down_payload_bytes());
  EXPECT_EQ(view.connection_count(), trace.connection_count());
  EXPECT_DOUBLE_EQ(view.retransmission_fraction(), trace.retransmission_fraction());
  EXPECT_EQ(view.label(), trace.label);
  EXPECT_DOUBLE_EQ(view.encoding_bps(), trace.encoding_bps);
  EXPECT_DOUBLE_EQ(view.duration_s(), trace.duration_s);
}

TEST(TraceViewTest, HostFilterMatchesLegacyOnlyHost) {
  const auto trace = make_trace();
  const auto view = capture::TraceView{trace}.host(0);
  const auto legacy = trace.only_host(0);
  EXPECT_EQ(view.count(), legacy.packets.size());
  EXPECT_EQ(view.down_payload_bytes(), legacy.down_payload_bytes());
  EXPECT_EQ(view.connection_count(), legacy.connection_count());
  EXPECT_DOUBLE_EQ(view.retransmission_fraction(), legacy.retransmission_fraction());
  for (const auto& p : view) EXPECT_EQ(p.host, 0);
}

TEST(TraceViewTest, DirectionFilterMatchesLegacyInDirection) {
  const auto trace = make_trace();
  const auto view = capture::TraceView{trace}.direction(net::Direction::kUp);
  const auto legacy = trace.in_direction(net::Direction::kUp);
  ASSERT_EQ(view.count(), legacy.size());
  std::size_t i = 0;
  for (const auto& p : view) {
    EXPECT_EQ(p.t_s, legacy[i].t_s);
    EXPECT_EQ(p.direction, net::Direction::kUp);
    ++i;
  }
}

TEST(TraceViewTest, ExcludingConnectionMatchesLegacyWithoutConnection) {
  const auto trace = make_trace();
  const auto view = capture::TraceView{trace}.excluding_connection(7);
  const auto legacy = trace.without_connection(7);
  EXPECT_EQ(view.count(), legacy.packets.size());
  EXPECT_EQ(view.down_payload_bytes(), legacy.down_payload_bytes());
  for (const auto& p : view) EXPECT_NE(p.connection_id, 7U);
}

TEST(TraceViewTest, CombinatorsCompose) {
  const auto trace = make_trace();
  const auto view = capture::TraceView{trace}
                        .host(0)
                        .direction(net::Direction::kDown)
                        .excluding_connection(7);
  const auto expected = static_cast<std::size_t>(std::count_if(
      trace.packets.begin(), trace.packets.end(), [](const capture::PacketRecord& p) {
        return p.host == 0 && p.direction == net::Direction::kDown && p.connection_id != 7;
      }));
  EXPECT_EQ(view.count(), expected);
  for (const auto& p : view) {
    EXPECT_EQ(p.host, 0);
    EXPECT_EQ(p.direction, net::Direction::kDown);
    EXPECT_NE(p.connection_id, 7U);
  }
  // Narrowing never mutates the parent view.
  const auto parent = capture::TraceView{trace}.host(0);
  (void)parent.direction(net::Direction::kUp);
  EXPECT_FALSE(parent.filter().direction.has_value());
}

TEST(TraceViewTest, IteratorSkipsNonMatchingRuns) {
  const auto trace = make_trace();
  const auto view = capture::TraceView{trace}.host(1);
  auto it = view.begin();
  ASSERT_NE(it, view.end());
  EXPECT_DOUBLE_EQ(it->t_s, 0.50);  // skipped the leading host-0 run
  const auto prev = it++;
  EXPECT_DOUBLE_EQ(prev->t_s, 0.50);
  ASSERT_NE(it, view.end());
  EXPECT_DOUBLE_EQ((*it).t_s, 1.20);
  ++it;
  EXPECT_EQ(it, view.end());
}

TEST(TraceViewTest, FilterMatchingNothingIsEmpty) {
  const auto trace = make_trace();
  const auto view = capture::TraceView{trace}.host(9);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.count(), 0U);
  EXPECT_EQ(view.begin(), view.end());
  EXPECT_EQ(view.down_payload_bytes(), 0U);
  EXPECT_EQ(view.connection_count(), 0U);
}

TEST(TraceViewTest, DefaultViewIsEmptyAndSafe) {
  const capture::TraceView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.count(), 0U);
  EXPECT_EQ(view.label(), "");
  EXPECT_DOUBLE_EQ(view.duration_s(), 0.0);
  EXPECT_EQ(view.underlying(), nullptr);
  EXPECT_TRUE(view.materialize().packets.empty());
}

TEST(TraceViewTest, DownloadCurveAndWindowSeriesMatchLegacy) {
  const auto trace = make_trace();
  const auto video = trace.only_host(0);
  const auto view = capture::TraceView{trace}.host(0);
  const auto curve = view.download_curve();
  const auto legacy_curve = video.download_curve();
  ASSERT_EQ(curve.size(), legacy_curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve[i].t_s, legacy_curve[i].t_s);
    EXPECT_EQ(curve[i].bytes, legacy_curve[i].bytes);
  }
  const auto series = view.receive_window_series();
  const auto legacy_series = video.receive_window_series();
  ASSERT_EQ(series.size(), legacy_series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i].t_s, legacy_series[i].t_s);
    EXPECT_EQ(series[i].window_bytes, legacy_series[i].window_bytes);
  }
}

TEST(TraceViewTest, MaterializeCopiesFilteredRecordsAndMetadata) {
  const auto trace = make_trace();
  const auto owned = capture::TraceView{trace}.host(0).materialize();
  EXPECT_EQ(owned.label, trace.label);
  EXPECT_DOUBLE_EQ(owned.encoding_bps, trace.encoding_bps);
  EXPECT_DOUBLE_EQ(owned.duration_s, trace.duration_s);
  const auto legacy = trace.only_host(0);
  ASSERT_EQ(owned.packets.size(), legacy.packets.size());
  for (std::size_t i = 0; i < owned.packets.size(); ++i) {
    EXPECT_DOUBLE_EQ(owned.packets[i].t_s, legacy.packets[i].t_s);
    EXPECT_EQ(owned.packets[i].connection_id, legacy.packets[i].connection_id);
  }
}

TEST(TraceViewTest, ImplicitConversionFromTrace) {
  const auto trace = make_trace();
  const auto count_via_view = [](capture::TraceView v) { return v.count(); };
  EXPECT_EQ(count_via_view(trace), trace.packets.size());
}

TEST(TraceViewTest, ViewStaysSmall) {
  // Views are meant to be passed by value; keep them register-friendly.
  static_assert(sizeof(capture::TraceView) <= 64);
  SUCCEED();
}

}  // namespace
}  // namespace vstream
