// Tests for the parallel per-connection demux and classifier: the parallel
// driver must be byte-identical to the serial reference at every lane
// count, the labels must agree with an independently-built per-connection
// StreamingReportBuilder pass, and the direction-flip heuristic and empty
// captures must behave across job counts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/connection_demux.hpp"
#include "analysis/parallel_classify.hpp"
#include "analysis/streaming_report.hpp"
#include "capture/pcap.hpp"
#include "capture/pcap_reader.hpp"
#include "capture/synthetic.hpp"
#include "runner/parallel_sweep.hpp"

namespace {

using namespace vstream;
using namespace vstream::analysis;
using vstream::capture::MmapPcapReader;

class ClassifierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    capture::SyntheticCaptureOptions gen;
    gen.connections = 6;
    // 16 MB gives the ack-clocked long-cycle connection (c=2) enough full
    // cycles to cross the steady-state detector; at 8 MB it labels "No".
    gen.target_file_bytes = 16ULL << 20U;
    summary_ = capture::write_synthetic_capture(path_, gen);
  }

  static void TearDownTestSuite() { (void)std::remove(path_.c_str()); }

  [[nodiscard]] static CaptureClassification serial() {
    const MmapPcapReader reader{path_};
    return classify_capture_serial(reader, {});
  }

  // gtest_discover_tests runs every test case as its own process, and ctest
  // may run several concurrently — the fixture path must be per-process.
  static inline std::string path_ =
      "/tmp/vstream_classifier_test_" + std::to_string(::getpid()) + ".pcap";
  static inline capture::SyntheticCaptureSummary summary_;
};

TEST_F(ClassifierTest, SerialClassificationMatchesGroundTruth) {
  const CaptureClassification got = serial();
  ASSERT_EQ(got.connections.size(), 6U);
  EXPECT_EQ(got.records, summary_.records);
  EXPECT_FALSE(got.direction_flipped);
  EXPECT_GT(got.duration_s, 0.0);
  EXPECT_GT(got.down_payload_mb, 0.0);

  for (std::size_t i = 0; i < got.connections.size(); ++i) {
    const ConnectionLabel& row = got.connections[i];
    EXPECT_EQ(row.connection_id, i + 1);
    EXPECT_GT(row.packets, 0U);
    EXPECT_GE(row.last_packet_s, row.first_packet_s);
  }

  // Generator contract (synthetic.hpp): c%3==1 short cycles with a
  // zero-window episode per block, c%3==2 long cycles, c%3==0 bulk,
  // c%6==5 bursts whole blocks inside one RTT (no ack clock).
  const auto& c1 = got.connections[0];
  EXPECT_EQ(c1.strategy, Strategy::kShortOnOff);
  EXPECT_TRUE(c1.has_steady_state);
  EXPECT_GT(c1.zero_window_episodes, 0U);
  ASSERT_TRUE(c1.ack_clocked.has_value());
  EXPECT_TRUE(*c1.ack_clocked);

  const auto& c2 = got.connections[1];
  EXPECT_EQ(c2.strategy, Strategy::kLongOnOff);

  const auto& c3 = got.connections[2];
  EXPECT_EQ(c3.strategy, Strategy::kNoOnOff);
  EXPECT_FALSE(c3.has_steady_state);

  const auto& c5 = got.connections[4];
  ASSERT_TRUE(c5.ack_clocked.has_value());
  EXPECT_FALSE(*c5.ack_clocked);
}

TEST_F(ClassifierTest, ParallelIsByteIdenticalToSerialAtEveryJobCount) {
  const CaptureClassification reference = serial();
  const MmapPcapReader reader{path_};
  for (const std::size_t jobs : {1U, 2U, 4U}) {
    SCOPED_TRACE(jobs);
    const runner::ParallelSweep pool{jobs};
    const CaptureClassification got = classify_capture(reader, pool, {});
    EXPECT_EQ(got, reference);
    EXPECT_EQ(got.to_json(), reference.to_json());
    EXPECT_EQ(got.to_csv(), reference.to_csv());
  }
}

TEST_F(ClassifierTest, LabelsMatchIndependentPerConnectionBuilders) {
  // Independent reference: group records per connection through the plain
  // serial reader and run one StreamingReportBuilder per connection —
  // no demux, no lanes, no shared code path beyond the builder itself.
  std::map<std::uint64_t, StreamingReportBuilder> builders;
  std::map<std::uint64_t, std::size_t> packets;
  capture::for_each_pcap_record(path_, [&](const capture::PacketRecord& r) {
    builders.try_emplace(r.connection_id, ReportOptions{}).first->second.add(r);
    ++packets[r.connection_id];
  });

  const CaptureClassification got = serial();
  ASSERT_EQ(got.connections.size(), builders.size());
  for (const ConnectionLabel& row : got.connections) {
    SCOPED_TRACE(row.connection_id);
    const auto it = builders.find(row.connection_id);
    ASSERT_NE(it, builders.end());
    const SessionReport report = it->second.finish();
    EXPECT_EQ(row.packets, packets[row.connection_id]);
    EXPECT_EQ(row.strategy, report.strategy);
    EXPECT_EQ(row.has_steady_state, report.has_steady_state);
    EXPECT_DOUBLE_EQ(row.median_block_kb, report.median_block_kb);
    EXPECT_DOUBLE_EQ(row.median_off_s, report.median_off_s);
    EXPECT_DOUBLE_EQ(row.steady_rate_mbps, report.steady_rate_mbps);
    EXPECT_DOUBLE_EQ(row.down_payload_mb, report.total_mb);
    EXPECT_DOUBLE_EQ(row.retransmission_pct, report.retransmission_pct);
    EXPECT_EQ(row.zero_window_episodes, report.zero_window_episodes);
    EXPECT_EQ(row.rtt_ms.has_value(), report.rtt_ms.has_value());
  }
}

TEST_F(ClassifierTest, MirroredCaptureIsFlippedBackToTheSameRows) {
  // Re-write the capture with every record's direction mirrored, as if the
  // trace had been taken from the server side of the tap.
  capture::PacketTrace trace = capture::read_pcap(path_);
  for (capture::PacketRecord& r : trace.packets) {
    r.direction = net::opposite(r.direction);
  }
  const std::string mirrored = "/tmp/vstream_classifier_test_mirrored.pcap";
  capture::write_pcap(trace, mirrored);

  const MmapPcapReader reader{mirrored};
  const CaptureClassification got = classify_capture_serial(reader, {});
  (void)std::remove(mirrored.c_str());

  EXPECT_TRUE(got.direction_flipped);
  const CaptureClassification reference = serial();
  ASSERT_EQ(got.connections.size(), reference.connections.size());
  EXPECT_DOUBLE_EQ(got.down_payload_mb, reference.down_payload_mb);
  for (std::size_t i = 0; i < reference.connections.size(); ++i) {
    SCOPED_TRACE(i);
    const ConnectionLabel& a = got.connections[i];
    const ConnectionLabel& b = reference.connections[i];
    EXPECT_EQ(a.connection_id, b.connection_id);
    EXPECT_EQ(a.strategy, b.strategy);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_DOUBLE_EQ(a.down_payload_mb, b.down_payload_mb);
    EXPECT_DOUBLE_EQ(a.median_block_kb, b.median_block_kb);
    EXPECT_EQ(a.zero_window_episodes, b.zero_window_episodes);
  }
}

TEST_F(ClassifierTest, EmptyCaptureClassifiesToNothingAtEveryJobCount) {
  const std::string empty = "/tmp/vstream_classifier_test_empty.pcap";
  {
    capture::PcapWriter writer{empty};
    writer.close();
  }
  const MmapPcapReader reader{empty};
  const CaptureClassification reference = classify_capture_serial(reader, {});
  EXPECT_TRUE(reference.connections.empty());
  EXPECT_EQ(reference.records, 0U);
  EXPECT_EQ(reference.packets, 0U);
  EXPECT_DOUBLE_EQ(reference.duration_s, 0.0);

  for (const std::size_t jobs : {1U, 4U}) {
    SCOPED_TRACE(jobs);
    const runner::ParallelSweep pool{jobs};
    EXPECT_EQ(classify_capture(reader, pool, {}), reference);
  }
  // CSV of an empty capture is the header line alone.
  const std::string csv = reference.to_csv();
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);
  (void)std::remove(empty.c_str());
}

TEST_F(ClassifierTest, CsvHasStableShape) {
  const CaptureClassification got = serial();
  const std::string csv = got.to_csv();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < csv.size()) {
    const std::size_t nl = csv.find('\n', start);
    lines.push_back(csv.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), got.connections.size() + 1);
  const auto commas = [](const std::string& s) {
    return static_cast<std::size_t>(std::count(s.begin(), s.end(), ','));
  };
  EXPECT_EQ(lines[0].rfind("connection,host,packets", 0), 0U);
  for (const std::string& line : lines) {
    EXPECT_EQ(commas(line), commas(lines[0]));
  }
}

TEST_F(ClassifierTest, PartitionCoversEveryRecordExactlyOnce) {
  const MmapPcapReader reader{path_};
  const CapturePartition partition = partition_capture(reader, 3);
  ASSERT_EQ(partition.lane_offsets.size(), 3U);
  std::uint64_t bucketed = 0;
  for (const auto& lane : partition.lane_offsets) bucketed += lane.size();
  EXPECT_EQ(bucketed + partition.frames_skipped, partition.records);
  EXPECT_EQ(partition.records, summary_.records);
  EXPECT_FALSE(partition.flipped());

  // Lane membership is a pure function of the connection id.
  const ClassifyOptions options;
  for (std::size_t lane = 0; lane < 3; ++lane) {
    SCOPED_TRACE(lane);
    for (const ConnectionLabel& row : classify_lane(reader, partition, lane, options)) {
      EXPECT_EQ(row.connection_id % 3, lane);
    }
  }
}

}  // namespace
