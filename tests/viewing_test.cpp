// Tests for the viewer-behaviour models (Zipf popularity, watch-fraction
// distribution) that feed the Section 6.2 interruption experiments.
#include <gtest/gtest.h>

#include <map>

#include "video/viewing.hpp"

namespace vstream::video {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOneAndDecay) {
  const ZipfSampler zipf{100, 1.0};
  double total = 0.0;
  double prev = 1.0;
  for (std::size_t r = 0; r < zipf.size(); ++r) {
    const double p = zipf.probability(r);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_THROW((void)zipf.probability(100), std::out_of_range);
}

TEST(ZipfTest, TopRankDominatesSampling) {
  const ZipfSampler zipf{1000, 1.0};
  sim::Rng rng{5};
  std::map<std::size_t, int> counts;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  // Empirical frequency of rank 0 close to its probability (~1/H_1000).
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, zipf.probability(0),
              0.2 * zipf.probability(0) + 0.005);
  // The head outweighs the tail: top-10 ranks beat ranks 500-510 combined.
  int head = 0;
  int tail = 0;
  for (std::size_t r = 0; r < 10; ++r) head += counts[r];
  for (std::size_t r = 500; r < 510; ++r) tail += counts[r];
  EXPECT_GT(head, 5 * std::max(tail, 1));
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  const ZipfSampler zipf{10, 0.0};
  for (std::size_t r = 0; r < 10; ++r) EXPECT_NEAR(zipf.probability(r), 0.1, 1e-9);
}

TEST(ZipfTest, Validation) {
  EXPECT_THROW((ZipfSampler{0, 1.0}), std::invalid_argument);
  EXPECT_THROW((ZipfSampler{10, -1.0}), std::invalid_argument);
}

TEST(ViewingModelTest, FinamoreShapeAtTypicalDuration) {
  // ~60% of typical-length videos watched for < 20% of their duration.
  const ViewingModel model;
  sim::Rng rng{7};
  int early = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (model.draw_watch_fraction(rng, 210.0) < 0.2) ++early;
  }
  EXPECT_NEAR(static_cast<double>(early) / kDraws, 0.6, 0.03);
}

TEST(ViewingModelTest, LongerVideosQuitEarlierOnAverage) {
  // Huang et al.: viewing fraction decreases with duration.
  const ViewingModel model;
  EXPECT_LT(model.early_quit_probability(1800.0), 0.96);
  EXPECT_GT(model.early_quit_probability(1800.0), model.early_quit_probability(60.0));
  sim::Rng rng{9};
  double short_sum = 0.0;
  double long_sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) short_sum += model.draw_watch_fraction(rng, 60.0);
  for (int i = 0; i < kDraws; ++i) long_sum += model.draw_watch_fraction(rng, 1800.0);
  EXPECT_LT(long_sum, short_sum);
}

TEST(ViewingModelTest, SomeViewersFinish) {
  const ViewingModel model;
  sim::Rng rng{11};
  int finished = 0;
  for (int i = 0; i < 5000; ++i) {
    if (model.draw_watch_fraction(rng, 210.0) >= 1.0) ++finished;
  }
  // finish_fraction applies to the 40% non-early population: ~8% overall.
  EXPECT_NEAR(finished / 5000.0, 0.4 * 0.2, 0.03);
}

TEST(ViewingModelTest, FractionAlwaysInRange) {
  const ViewingModel model;
  sim::Rng rng{13};
  for (int i = 0; i < 5000; ++i) {
    const double beta = model.draw_watch_fraction(rng, rng.uniform(30.0, 3600.0));
    EXPECT_GT(beta, 0.0);
    EXPECT_LE(beta, 1.0);
  }
  EXPECT_THROW((void)model.early_quit_probability(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace vstream::video
