// End-to-end integration tests: session -> capture -> pcap file -> reload
// -> analysis equivalence; cross-validation of independent estimators; and
// paper-shape invariants that span multiple modules.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analysis/periodicity.hpp"
#include "analysis/report.hpp"
#include "capture/pcap.hpp"
#include "model/interruption.hpp"
#include "net/profile.hpp"
#include "streaming/session_builder.hpp"
#include "video/datasets.hpp"

namespace vstream {
namespace {

using streaming::Application;
using streaming::Service;
using video::Container;

streaming::SessionConfig base_config(Container container, Application app,
                                     net::Vantage vantage = net::Vantage::kResearch) {
  video::VideoMeta meta;
  meta.id = "it";
  meta.duration_s = 600.0;
  meta.encoding_bps = 1e6;
  meta.resolution = video::Resolution::k360p;
  meta.container = container;
  return streaming::SessionBuilder{}
      .service(Service::kYouTube)
      .container(container)
      .application(app)
      .vantage(vantage)
      .video(meta)
      .capture_duration_s(120.0)
      .seed(314)
      .build();
}

TEST(IntegrationTest, PcapRoundTripPreservesAnalysis) {
  const auto cfg = base_config(Container::kFlash, Application::kInternetExplorer);
  const auto result = streaming::run_session(cfg);
  const std::string path = "/tmp/vstream_integration.pcap";
  capture::write_pcap(result.trace, path);
  auto reloaded = capture::read_pcap(path);
  std::remove(path.c_str());

  const auto direct = analysis::analyze_on_off(result.trace);
  const auto from_file = analysis::analyze_on_off(reloaded);
  EXPECT_EQ(direct.on_periods.size(), from_file.on_periods.size());
  EXPECT_EQ(direct.total_bytes, from_file.total_bytes);
  EXPECT_NEAR(direct.buffering_end_s, from_file.buffering_end_s, 1e-3);
  EXPECT_NEAR(direct.median_block_bytes(), from_file.median_block_bytes(), 1.0);

  const auto d1 = analysis::classify_strategy(direct, result.trace);
  const auto d2 = analysis::classify_strategy(from_file, reloaded);
  EXPECT_EQ(d1.strategy, d2.strategy);
}

TEST(IntegrationTest, PeriodicityAgreesWithPacedGroundTruth) {
  auto cfg = base_config(Container::kFlash, Application::kFirefox);
  cfg.bandwidth_jitter = 0.0;
  const auto result = streaming::run_session(cfg);
  const auto periodicity = analysis::estimate_cycle_period(result.trace);
  ASSERT_TRUE(periodicity.periodic);
  const double truth = analysis::paced_cycle_duration_s(64 * 1024, 1.25, 1e6);
  EXPECT_NEAR(periodicity.period_s, truth, truth * 0.25);
}

TEST(IntegrationTest, ReportConsistentWithSessionResult) {
  const auto cfg = base_config(Container::kHtml5, Application::kInternetExplorer);
  const auto result = streaming::run_session(cfg);
  analysis::ReportOptions opts;
  opts.encoding_bps = result.encoding_bps_true;
  const auto report = analysis::build_report(result.trace, opts);
  EXPECT_EQ(report.strategy, analysis::Strategy::kShortOnOff);
  EXPECT_GT(report.zero_window_episodes, 5U);  // IE pull throttling signature
  EXPECT_EQ(report.connections, result.connections);
  // Total seen on the wire >= bytes the application consumed.
  EXPECT_GE(report.total_mb * 1048576.0, static_cast<double>(result.bytes_downloaded) * 0.98);
}

TEST(IntegrationTest, InterruptedSessionMatchesModelPrediction) {
  auto cfg = base_config(Container::kFlash, Application::kInternetExplorer);
  cfg.capture_duration_s = 400.0;
  cfg.watch_fraction = 0.3;
  cfg.bandwidth_jitter = 0.0;
  const auto result = streaming::run_session(cfg);
  ASSERT_TRUE(result.player.interrupted);

  model::InterruptionParams p;
  p.encoding_bps = 1e6;
  p.duration_s = 600.0;
  p.buffered_playback_s = 40.0;
  p.accumulation_ratio = 1.25;
  p.beta = 0.3;
  const double predicted = model::unused_bytes(p);
  const double simulated = static_cast<double>(result.player.unused_bytes());
  // Within 30%: the model ignores in-flight data and burst jitter.
  EXPECT_NEAR(simulated, predicted, predicted * 0.3);
}

TEST(IntegrationTest, AccumulationRatioAboveOneKeepsPlayerFed) {
  // Paper Section 2: ratio > 1 means the buffer grows; no stalls after start.
  for (const auto vantage : {net::Vantage::kResearch, net::Vantage::kHome}) {
    const auto cfg = base_config(Container::kFlash, Application::kChrome, vantage);
    const auto result = streaming::run_session(cfg);
    EXPECT_EQ(result.player.stall_count, 0U) << net::vantage_name(vantage);
    EXPECT_GT(result.player.watched_s, 100.0) << net::vantage_name(vantage);
  }
}

TEST(IntegrationTest, RetransmissionMediansTrackPaperCalibration) {
  // Section 5.1.1: median retransmission 1.02% Residence, 0.76% Academic,
  // negligible elsewhere. Check the simulated medians match the calibration
  // to within a factor ~2 (small sample).
  for (const auto& [vantage, expected] :
       {std::pair{net::Vantage::kResidence, 0.0102}, {net::Vantage::kAcademic, 0.0076}}) {
    std::vector<double> fractions;
    for (std::uint64_t seed = 0; seed < 7; ++seed) {
      auto cfg = base_config(Container::kFlash, Application::kFirefox, vantage);
      cfg.seed = 9200 + seed;
      const auto result = streaming::run_session(cfg);
      fractions.push_back(result.trace.retransmission_fraction());
    }
    std::sort(fractions.begin(), fractions.end());
    const double median = fractions[fractions.size() / 2];
    EXPECT_GT(median, expected * 0.4) << net::vantage_name(vantage);
    EXPECT_LT(median, expected * 2.5) << net::vantage_name(vantage);
  }
}

TEST(IntegrationTest, BufferingSmallerOnLossyNetworksArtifact) {
  // The paper's loss-sensitivity artifact (Fig 3a discussion): measured
  // buffering on the lossy Academic network is, in the median, no larger
  // than on the clean Research network.
  std::vector<double> research;
  std::vector<double> academic;
  for (std::uint64_t seed = 0; seed < 9; ++seed) {
    auto cfg = base_config(Container::kFlash, Application::kFirefox, net::Vantage::kResearch);
    cfg.seed = 9500 + seed;
    research.push_back(
        static_cast<double>(analysis::analyze_on_off(streaming::run_session(cfg).trace)
                                .buffering_bytes));
    cfg = base_config(Container::kFlash, Application::kFirefox, net::Vantage::kAcademic);
    cfg.seed = 9500 + seed;
    academic.push_back(
        static_cast<double>(analysis::analyze_on_off(streaming::run_session(cfg).trace)
                                .buffering_bytes));
  }
  std::sort(research.begin(), research.end());
  std::sort(academic.begin(), academic.end());
  EXPECT_LE(academic[academic.size() / 2], research[research.size() / 2] * 1.15);
}

}  // namespace
}  // namespace vstream
