// Tests for the Section 6 analytical model: closed forms, Monte-Carlo
// validation, strategy independence, and the interruption/waste equations.
#include <gtest/gtest.h>

#include <cmath>

#include "model/aggregate.hpp"
#include "model/interruption.hpp"

namespace vstream::model {
namespace {

TEST(AggregateClosedFormTest, Equation3Mean) {
  AggregateParams p;
  p.lambda_per_s = 2.0;
  p.mean_encoding_bps = 1e6;
  p.mean_duration_s = 300.0;
  // E[R] = lambda E[e] E[L] = 2 * 1e6 * 300 = 600 Mbit/s.
  EXPECT_DOUBLE_EQ(mean_aggregate_rate_bps(p), 6e8);
}

TEST(AggregateClosedFormTest, Equation4Variance) {
  AggregateParams p;
  p.lambda_per_s = 2.0;
  p.mean_encoding_bps = 1e6;
  p.mean_duration_s = 300.0;
  p.mean_download_rate_bps = 5e6;
  EXPECT_DOUBLE_EQ(variance_aggregate_rate(p), 2.0 * 1e6 * 300.0 * 5e6);
}

TEST(AggregateClosedFormTest, DimensioningRule) {
  AggregateParams p;
  p.lambda_per_s = 1.0;
  p.mean_encoding_bps = 1e6;
  p.mean_duration_s = 100.0;
  p.mean_download_rate_bps = 4e6;
  const double mean = mean_aggregate_rate_bps(p);
  const double sd = std::sqrt(variance_aggregate_rate(p));
  EXPECT_DOUBLE_EQ(dimension_link_bps(p, 0.0), mean);
  EXPECT_DOUBLE_EQ(dimension_link_bps(p, 2.0), mean + 2.0 * sd);
  EXPECT_THROW((void)dimension_link_bps(p, -1.0), std::invalid_argument);
}

TEST(AggregateClosedFormTest, VarianceGrowsLinearlyInEncodingRate) {
  // Section 6.1 conclusion 3: doubling e doubles mean AND variance, so the
  // coefficient of variation sqrt(V)/E shrinks — smoother traffic.
  AggregateParams lo;
  lo.mean_encoding_bps = 1e6;
  AggregateParams hi = lo;
  hi.mean_encoding_bps = 2e6;
  const double cv_lo = std::sqrt(variance_aggregate_rate(lo)) / mean_aggregate_rate_bps(lo);
  const double cv_hi = std::sqrt(variance_aggregate_rate(hi)) / mean_aggregate_rate_bps(hi);
  EXPECT_LT(cv_hi, cv_lo);
  EXPECT_NEAR(cv_hi, cv_lo / std::sqrt(2.0), 1e-12);
}

MonteCarloConfig base_mc(ModelStrategy strategy, std::uint64_t seed = 42) {
  MonteCarloConfig cfg;
  cfg.lambda_per_s = 0.5;
  cfg.horizon_s = 4000.0;
  cfg.sample_dt_s = 1.0;
  cfg.seed = seed;
  cfg.strategy = strategy;
  cfg.draw_encoding_bps = [](sim::Rng&) { return 1e6; };
  cfg.draw_duration_s = [](sim::Rng&) { return 300.0; };
  cfg.draw_download_rate_bps = [](sim::Rng&) { return 5e6; };
  cfg.accumulation_ratio = 1.25;
  cfg.buffering_playback_s = 40.0;
  cfg.block_bytes = 64 * 1024;
  return cfg;
}

TEST(AggregateMonteCarloTest, MeanMatchesEquation3ForBulk) {
  const auto cfg = base_mc(ModelStrategy::kNoOnOff);
  const auto result = run_aggregate_monte_carlo(cfg);
  AggregateParams p;
  p.lambda_per_s = cfg.lambda_per_s;
  p.mean_encoding_bps = 1e6;
  p.mean_duration_s = 300.0;
  p.mean_download_rate_bps = 5e6;
  const double expected = mean_aggregate_rate_bps(p);
  EXPECT_NEAR(result.mean_bps, expected, expected * 0.1);
}

TEST(AggregateMonteCarloTest, VarianceMatchesEquation4ForBulk) {
  const auto cfg = base_mc(ModelStrategy::kNoOnOff);
  const auto result = run_aggregate_monte_carlo(cfg);
  AggregateParams p;
  p.lambda_per_s = cfg.lambda_per_s;
  p.mean_encoding_bps = 1e6;
  p.mean_duration_s = 300.0;
  p.mean_download_rate_bps = 5e6;
  const double expected = variance_aggregate_rate(p);
  EXPECT_NEAR(result.variance, expected, expected * 0.25);
}

TEST(AggregateMonteCarloTest, MeanIsStrategyIndependent) {
  // Section 6.1 conclusion 2: without interruptions the mean aggregate rate
  // does not depend on the streaming strategy.
  const auto bulk = run_aggregate_monte_carlo(base_mc(ModelStrategy::kNoOnOff));
  const auto short_onoff = run_aggregate_monte_carlo(base_mc(ModelStrategy::kShortOnOff));
  const auto long_onoff = run_aggregate_monte_carlo(base_mc(ModelStrategy::kLongOnOff));
  EXPECT_NEAR(short_onoff.mean_bps, bulk.mean_bps, bulk.mean_bps * 0.1);
  EXPECT_NEAR(long_onoff.mean_bps, bulk.mean_bps, bulk.mean_bps * 0.1);
}

TEST(AggregateMonteCarloTest, VarianceIsStrategyIndependent) {
  const auto bulk = run_aggregate_monte_carlo(base_mc(ModelStrategy::kNoOnOff, 7));
  auto cfg = base_mc(ModelStrategy::kShortOnOff, 7);
  const auto short_onoff = run_aggregate_monte_carlo(cfg);
  cfg = base_mc(ModelStrategy::kLongOnOff, 7);
  cfg.block_bytes = 4 * 1024 * 1024;
  const auto long_onoff = run_aggregate_monte_carlo(cfg);
  EXPECT_NEAR(short_onoff.variance, bulk.variance, bulk.variance * 0.35);
  EXPECT_NEAR(long_onoff.variance, bulk.variance, bulk.variance * 0.35);
}

TEST(AggregateMonteCarloTest, ValidatesInputs) {
  auto cfg = base_mc(ModelStrategy::kNoOnOff);
  cfg.lambda_per_s = 0.0;
  EXPECT_THROW((void)run_aggregate_monte_carlo(cfg), std::invalid_argument);
  cfg = base_mc(ModelStrategy::kNoOnOff);
  cfg.sample_dt_s = 0.0;
  EXPECT_THROW((void)run_aggregate_monte_carlo(cfg), std::invalid_argument);
}

TEST(AggregateMonteCarloTest, ActiveFlowCountScalesWithLambda) {
  auto cfg = base_mc(ModelStrategy::kNoOnOff);
  cfg.lambda_per_s = 0.2;
  const auto lo = run_aggregate_monte_carlo(cfg);
  cfg.lambda_per_s = 0.8;
  cfg.seed = 43;
  const auto hi = run_aggregate_monte_carlo(cfg);
  EXPECT_GT(hi.mean_active_flows, 3.0 * lo.mean_active_flows);
}

// ------------------------------------------------------------ interruption

TEST(InterruptionTest, PaperWorkedExample) {
  // B' = 40 s, k = 1.25, beta = 0.2  =>  L = 40 / (1 - 0.25) = 53.3 s.
  EXPECT_NEAR(critical_duration_s(40.0, 1.25, 0.2), 53.333333, 1e-5);
}

TEST(InterruptionTest, CriticalDurationInfiniteWhenDownloadOutrunsViewer) {
  EXPECT_TRUE(std::isinf(critical_duration_s(40.0, 5.0, 0.5)));
}

TEST(InterruptionTest, Equation7Condition) {
  InterruptionParams p;
  p.buffered_playback_s = 40.0;
  p.accumulation_ratio = 1.25;
  p.beta = 0.2;
  p.encoding_bps = 1e6;
  p.duration_s = 40.0;  // below the 53.3 s critical duration
  EXPECT_TRUE(downloads_whole_video_before_interruption(p));
  p.duration_s = 100.0;  // above it
  EXPECT_FALSE(downloads_whole_video_before_interruption(p));
}

TEST(InterruptionTest, UnusedBytesShortVideoFullyDownloaded) {
  InterruptionParams p;
  p.encoding_bps = 1e6;
  p.duration_s = 40.0;
  p.buffered_playback_s = 40.0;
  p.accumulation_ratio = 1.25;
  p.beta = 0.2;
  // Whole video (5 MB) downloaded; viewer watched 8 s (1 MB).
  const double expected = (40.0 - 0.2 * 40.0) * 1e6 / 8.0;
  EXPECT_NEAR(unused_bytes(p), expected, 1.0);
}

TEST(InterruptionTest, UnusedBytesLongVideoPartialDownload) {
  InterruptionParams p;
  p.encoding_bps = 1e6;
  p.duration_s = 1000.0;
  p.buffered_playback_s = 40.0;
  p.accumulation_ratio = 1.25;
  p.beta = 0.2;
  // Downloaded: B + G*tau = (40 + 1.25*200) s-of-content; watched: 200 s.
  const double expected = (40.0 + 1.25 * 200.0 - 200.0) * 1e6 / 8.0;
  EXPECT_NEAR(unused_bytes(p), expected, 1.0);
}

TEST(InterruptionTest, SmallerBufferWastesLess) {
  InterruptionParams big;
  big.duration_s = 600.0;
  big.buffered_playback_s = 80.0;
  InterruptionParams small = big;
  small.buffered_playback_s = 10.0;
  EXPECT_LT(unused_bytes(small), unused_bytes(big));
}

TEST(InterruptionTest, SmallerAccumulationRatioWastesLess) {
  InterruptionParams fast;
  fast.duration_s = 600.0;
  fast.accumulation_ratio = 2.0;
  InterruptionParams slow = fast;
  slow.accumulation_ratio = 1.0;
  EXPECT_LT(unused_bytes(slow), unused_bytes(fast));
}

TEST(InterruptionTest, WastedBandwidthScalesWithLambda) {
  InterruptionParams p;
  p.duration_s = 600.0;
  EXPECT_DOUBLE_EQ(wasted_bandwidth_bps(2.0, p), 2.0 * unused_bytes(p) * 8.0);
  EXPECT_THROW((void)wasted_bandwidth_bps(0.0, p), std::invalid_argument);
}

TEST(InterruptionTest, ParameterValidation) {
  InterruptionParams p;
  p.encoding_bps = 0.0;
  EXPECT_THROW((void)unused_bytes(p), std::invalid_argument);
  p = InterruptionParams{};
  p.beta = 1.5;
  EXPECT_THROW((void)unused_bytes(p), std::invalid_argument);
  p = InterruptionParams{};
  p.accumulation_ratio = 0.5;
  EXPECT_THROW((void)unused_bytes(p), std::invalid_argument);
}

TEST(WasteMonteCarloTest, MatchesClosedFormForDeterministicDraws) {
  WasteMonteCarloConfig cfg;
  cfg.lambda_per_s = 1.0;
  cfg.draws = 1000;
  cfg.buffered_playback_s = 40.0;
  cfg.accumulation_ratio = 1.25;
  cfg.draw_encoding_bps = [](sim::Rng&) { return 1e6; };
  cfg.draw_duration_s = [](sim::Rng&) { return 600.0; };
  cfg.draw_beta = [](sim::Rng&) { return 0.2; };
  const auto est = estimate_wasted_bandwidth(cfg);

  InterruptionParams p;
  p.encoding_bps = 1e6;
  p.duration_s = 600.0;
  p.buffered_playback_s = 40.0;
  p.accumulation_ratio = 1.25;
  p.beta = 0.2;
  EXPECT_NEAR(est.wasted_bps, wasted_bandwidth_bps(1.0, p), 1.0);
  EXPECT_GT(est.waste_fraction, 0.0);
  EXPECT_LT(est.waste_fraction, 1.0);
}

TEST(WasteMonteCarloTest, FinamoreViewingPattern) {
  // Finamore et al. (cited in §6.2): 60% of videos watched < 20% of their
  // duration. With such early interruptions most transferred bytes are
  // wasted under an aggressive 40 s buffering policy.
  WasteMonteCarloConfig cfg;
  cfg.draws = 20000;
  cfg.buffered_playback_s = 40.0;
  cfg.accumulation_ratio = 1.25;
  cfg.draw_encoding_bps = [](sim::Rng& r) { return r.uniform(0.2e6, 1.5e6); };
  cfg.draw_duration_s = [](sim::Rng& r) { return r.uniform(60.0, 600.0); };
  cfg.draw_beta = [](sim::Rng& r) {
    return r.bernoulli(0.6) ? r.uniform(0.01, 0.2) : r.uniform(0.2, 0.99);
  };
  const auto est = estimate_wasted_bandwidth(cfg);
  EXPECT_GT(est.waste_fraction, 0.3);
}

TEST(WasteMonteCarloTest, ZeroDrawsThrows) {
  WasteMonteCarloConfig cfg;
  cfg.draws = 0;
  EXPECT_THROW((void)estimate_wasted_bandwidth(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace vstream::model
