// Tests for ON/OFF cycle detection, strategy classification and the
// ack-clock estimator — the paper's measurement methodology.
#include <gtest/gtest.h>

#include "analysis/ack_clock.hpp"
#include "analysis/onoff.hpp"
#include "analysis/strategy.hpp"

namespace vstream::analysis {
namespace {

using capture::PacketRecord;
using capture::PacketTrace;
using net::Direction;
using net::TcpFlag;

void add_down(PacketTrace& trace, double t, std::uint32_t payload, std::uint64_t conn = 1,
              bool retx = false) {
  PacketRecord r;
  r.t_s = t;
  r.direction = Direction::kDown;
  r.connection_id = conn;
  r.payload_bytes = payload;
  r.flags = TcpFlag::kAck;
  r.is_retransmission = retx;
  trace.packets.push_back(r);
}

void add_up(PacketTrace& trace, double t, std::uint64_t window, TcpFlag flags = TcpFlag::kAck,
            std::uint64_t conn = 1) {
  PacketRecord r;
  r.t_s = t;
  r.direction = Direction::kUp;
  r.connection_id = conn;
  r.window_bytes = window;
  r.flags = flags;
  trace.packets.push_back(r);
}

/// Synthesise a paced trace: a buffering burst, then `cycles` blocks of
/// `block_packets` packets with `off_s` idle between them.
PacketTrace make_paced_trace(std::size_t burst_packets, std::size_t cycles,
                             std::size_t block_packets, double off_s,
                             std::uint32_t payload = 1460) {
  PacketTrace trace;
  double t = 0.0;
  for (std::size_t i = 0; i < burst_packets; ++i) {
    add_down(trace, t, payload);
    t += 0.001;
  }
  for (std::size_t c = 0; c < cycles; ++c) {
    t += off_s;
    for (std::size_t i = 0; i < block_packets; ++i) {
      add_down(trace, t, payload);
      t += 0.001;
    }
  }
  return trace;
}

TEST(OnOffTest, DetectsCyclesAndBlocks) {
  const auto trace = make_paced_trace(100, 5, 10, 0.5);
  const auto a = analyze_on_off(trace);
  EXPECT_TRUE(a.has_steady_state());
  ASSERT_EQ(a.on_periods.size(), 6U);
  EXPECT_EQ(a.off_durations_s.size(), 5U);
  EXPECT_EQ(a.buffering_bytes, 100U * 1460);
  ASSERT_EQ(a.block_sizes_bytes.size(), 5U);
  for (const double b : a.block_sizes_bytes) EXPECT_DOUBLE_EQ(b, 10.0 * 1460);
  EXPECT_NEAR(a.median_off_s(), 0.5, 0.02);
}

TEST(OnOffTest, NoGapsMeansNoSteadyState) {
  const auto trace = make_paced_trace(1000, 0, 0, 0.0);
  const auto a = analyze_on_off(trace);
  EXPECT_FALSE(a.has_steady_state());
  EXPECT_EQ(a.buffering_bytes, 1000U * 1460);
  EXPECT_TRUE(a.block_sizes_bytes.empty());
}

TEST(OnOffTest, GapThresholdControlsSplitting) {
  const auto trace = make_paced_trace(10, 3, 10, 0.2);
  OnOffOptions coarse;
  coarse.gap_threshold_s = 0.5;  // gaps of 0.2 s are invisible
  EXPECT_FALSE(analyze_on_off(trace, coarse).has_steady_state());
  OnOffOptions fine;
  fine.gap_threshold_s = 0.1;
  EXPECT_TRUE(analyze_on_off(trace, fine).has_steady_state());
}

TEST(OnOffTest, ProbePacketsDoNotSplitOffPeriods) {
  auto trace = make_paced_trace(100, 2, 10, 1.0);
  // Inject 1-byte zero-window probes inside the OFF periods.
  add_down(trace, 0.35, 1);
  add_down(trace, 0.65, 1);
  std::sort(trace.packets.begin(), trace.packets.end(),
            [](const PacketRecord& a, const PacketRecord& b) { return a.t_s < b.t_s; });
  const auto a = analyze_on_off(trace);
  EXPECT_EQ(a.on_periods.size(), 3U);  // probes did not create ON periods
  // ...but their bytes still count toward the total.
  EXPECT_EQ(a.total_bytes, 100U * 1460 + 2U * 10 * 1460 + 2U);
}

TEST(OnOffTest, AccumulationRatioFromSteadyRate) {
  // 10 blocks of 64 kB every 0.5 s => steady rate ~= 1.05 Mbps.
  PacketTrace trace;
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    add_down(trace, t, 1460);
    t += 0.0001;
  }
  for (int c = 0; c < 20; ++c) {
    t += 0.5;
    for (int i = 0; i < 45; ++i) {  // ~64 kB
      add_down(trace, t, 1460);
      t += 0.0001;
    }
  }
  const auto a = analyze_on_off(trace);
  ASSERT_TRUE(a.has_steady_state());
  const double steady = a.steady_rate_bps;
  EXPECT_NEAR(steady, 45 * 1460 * 8 / 0.5, steady * 0.1);
  EXPECT_NEAR(a.accumulation_ratio(steady / 1.25), 1.25, 0.01);
  EXPECT_THROW((void)a.accumulation_ratio(0.0), std::invalid_argument);
}

TEST(OnOffTest, BufferedPlaybackSeconds) {
  const auto trace = make_paced_trace(100, 2, 10, 0.5);
  const auto a = analyze_on_off(trace);
  // 100 * 1460 bytes at 1 Mbps => 1.168 s of playback.
  EXPECT_NEAR(a.buffered_playback_s(1e6), 100 * 1460 * 8.0 / 1e6, 1e-9);
}

TEST(OnOffTest, EmptyTraceYieldsEmptyAnalysis) {
  const auto a = analyze_on_off(PacketTrace{});
  EXPECT_TRUE(a.on_periods.empty());
  EXPECT_EQ(a.total_bytes, 0U);
  EXPECT_FALSE(a.has_steady_state());
  EXPECT_DOUBLE_EQ(a.median_block_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(a.median_off_s(), 0.0);
}

TEST(OnOffTest, InvalidThresholdThrows) {
  OnOffOptions bad;
  bad.gap_threshold_s = 0.0;
  EXPECT_THROW((void)analyze_on_off(PacketTrace{}, bad), std::invalid_argument);
}

TEST(OnOffTest, OffTimeFraction) {
  const auto trace = make_paced_trace(10, 4, 10, 1.0);
  const auto a = analyze_on_off(trace);
  EXPECT_GT(a.off_time_fraction(), 0.8);  // mostly idle
}

TEST(ZeroWindowTest, CountsEpisodesNotPackets) {
  PacketTrace trace;
  add_up(trace, 0.1, 65536);
  add_up(trace, 0.2, 0);
  add_up(trace, 0.3, 0);  // same episode
  add_up(trace, 0.4, 65536);
  add_up(trace, 0.5, 0);  // second episode
  EXPECT_EQ(count_zero_window_episodes(trace), 2U);
  EXPECT_EQ(count_zero_window_episodes(PacketTrace{}), 0U);
}

TEST(StrategyTest, BulkClassifiesAsNo) {
  const auto trace = make_paced_trace(5000, 0, 0, 0.0);
  const auto a = analyze_on_off(trace);
  const auto d = classify_strategy(a, trace);
  EXPECT_EQ(d.strategy, Strategy::kNoOnOff);
}

TEST(StrategyTest, RareLossStallsStillClassifyAsNo) {
  // A bulk transfer with two short loss-recovery stalls: OFF fraction tiny.
  PacketTrace trace;
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    add_down(trace, t, 1460);
    t += 0.001;
    if (i == 10000 || i == 20000) t += 0.3;  // RTO-ish stall
  }
  const auto a = analyze_on_off(trace);
  EXPECT_TRUE(a.has_steady_state());  // stalls look like OFF periods...
  const auto d = classify_strategy(a, trace);
  EXPECT_EQ(d.strategy, Strategy::kNoOnOff);  // ...but the fraction saves us
}

TEST(StrategyTest, SmallBlocksClassifyAsShort) {
  const auto trace = make_paced_trace(500, 20, 45, 0.5);  // 64 kB blocks
  const auto a = analyze_on_off(trace);
  const auto d = classify_strategy(a, trace);
  EXPECT_EQ(d.strategy, Strategy::kShortOnOff);
  EXPECT_NEAR(d.median_block_bytes, 45 * 1460, 1.0);
}

TEST(StrategyTest, LargeBlocksClassifyAsLong) {
  const auto trace = make_paced_trace(500, 6, 3000, 30.0);  // ~4.4 MB blocks
  const auto a = analyze_on_off(trace);
  const auto d = classify_strategy(a, trace);
  EXPECT_EQ(d.strategy, Strategy::kLongOnOff);
}

TEST(StrategyTest, MixedBlocksOverManyConnectionsClassifyAsMultiple) {
  PacketTrace trace;
  double t = 0.0;
  std::uint64_t conn = 1;
  // Buffering burst.
  for (int i = 0; i < 1000; ++i) {
    add_down(trace, t, 1460, conn);
    t += 0.0005;
  }
  for (int c = 0; c < 12; ++c) {
    t += 1.0;
    ++conn;
    const int packets = (c % 6 == 0) ? 5000 : 300;  // periodic big re-buffer
    for (int i = 0; i < packets; ++i) {
      add_down(trace, t, 1460, conn);
      t += 0.0005;
    }
  }
  const auto a = analyze_on_off(trace);
  const auto d = classify_strategy(a, trace);
  EXPECT_EQ(d.strategy, Strategy::kMultiple);
  EXPECT_GE(d.connections, 5U);
}

TEST(StrategyTest, BoundaryIsTwoPointFiveMegabytes) {
  EXPECT_DOUBLE_EQ(kShortLongBoundaryBytes, 2.5 * 1024 * 1024);
  EXPECT_EQ(to_string(Strategy::kNoOnOff), "No");
  EXPECT_EQ(to_string(Strategy::kShortOnOff), "Short");
  EXPECT_EQ(to_string(Strategy::kLongOnOff), "Long");
  EXPECT_EQ(to_string(Strategy::kMultiple), "Multiple");
}

TEST(AckClockTest, HandshakeRttEstimation) {
  PacketTrace trace;
  add_up(trace, 1.0, 65536, TcpFlag::kSyn);
  PacketRecord synack;
  synack.t_s = 1.02;
  synack.direction = Direction::kDown;
  synack.connection_id = 1;
  synack.flags = TcpFlag::kSyn | TcpFlag::kAck;
  trace.packets.push_back(synack);
  const auto rtt = estimate_handshake_rtt(trace);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_NEAR(*rtt, 0.02, 1e-9);
}

TEST(AckClockTest, NoHandshakeReturnsNullopt) {
  const auto trace = make_paced_trace(10, 2, 5, 0.5);
  EXPECT_FALSE(estimate_handshake_rtt(trace).has_value());
}

TEST(AckClockTest, FullBlockInFirstRttMeansNoAckClock) {
  // Blocks sent back-to-back: all 45 packets within 45 ms < RTT 60 ms.
  const auto trace = make_paced_trace(100, 10, 45, 0.5);
  const auto a = analyze_on_off(trace);
  AckClockOptions opts;
  opts.rtt_s = 0.060;
  const auto samples = first_rtt_bytes(trace, a, opts);
  ASSERT_EQ(samples.size(), 10U);
  for (const double s : samples) EXPECT_DOUBLE_EQ(s, 45.0 * 1460);
}

TEST(AckClockTest, SlowStartDeliversLessInFirstRtt) {
  // Packets spaced 10 ms apart: only ~2 arrive within the 20 ms RTT window.
  PacketTrace trace;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    add_down(trace, t, 1460);
    t += 0.001;
  }
  t += 1.0;
  for (int i = 0; i < 10; ++i) {
    add_down(trace, t, 1460);
    t += 0.010;
  }
  const auto a = analyze_on_off(trace);
  AckClockOptions opts;
  opts.rtt_s = 0.020;
  const auto samples = first_rtt_bytes(trace, a, opts);
  ASSERT_EQ(samples.size(), 1U);
  EXPECT_LE(samples[0], 3.0 * 1460);
}

TEST(AckClockTest, ShortOffPeriodsAreExcluded) {
  const auto trace = make_paced_trace(100, 5, 45, 0.05);  // 50 ms OFFs
  OnOffOptions onoff;
  onoff.gap_threshold_s = 0.02;
  const auto a = analyze_on_off(trace, onoff);
  AckClockOptions opts;
  opts.rtt_s = 0.02;
  opts.min_preceding_off_s = 0.2;  // OFFs shorter than this do not qualify
  EXPECT_TRUE(first_rtt_bytes(trace, a, opts).empty());
}

TEST(AckClockTest, MissingRttThrows) {
  const auto trace = make_paced_trace(10, 2, 5, 0.5);
  const auto a = analyze_on_off(trace);
  EXPECT_THROW((void)first_rtt_bytes(trace, a), std::invalid_argument);
  AckClockOptions bad;
  bad.rtt_s = 0.0;
  EXPECT_THROW((void)first_rtt_bytes(trace, a, bad), std::invalid_argument);
}

}  // namespace
}  // namespace vstream::analysis
