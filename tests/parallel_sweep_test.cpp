// Tests for the shared-nothing sweep engine: results land in submission
// order and are bit-identical for any worker count, metrics merge the same
// way serial and parallel, and worker exceptions propagate to the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "runner/parallel_sweep.hpp"
#include "streaming/session_builder.hpp"

namespace vstream::runner {
namespace {

/// Canonicalize a metrics snapshot for cross-run comparison: drop the one
/// gauge derived from host wall time (sim-seconds per wall-second), which
/// measures machine speed, not simulation behaviour. Everything else is a
/// deterministic function of the session's seed.
std::string deterministic_json(obs::MetricsSnapshot snapshot) {
  snapshot.gauges.erase("sim.sim_wall_ratio");
  return snapshot.to_json();
}

/// A small but real sweep: distinct seeds and containers so the sessions
/// differ from each other, captures kept short so the test stays fast.
std::vector<streaming::SessionConfig> sweep_configs() {
  std::vector<streaming::SessionConfig> configs;
  for (std::size_t i = 0; i < 5; ++i) {
    video::VideoMeta meta;
    meta.id = "sweep-test";
    meta.duration_s = 120.0;
    meta.encoding_bps = 1.0e6 + 1.0e5 * static_cast<double>(i);
    meta.container = i % 2 == 0 ? video::Container::kFlash : video::Container::kHtml5;
    configs.push_back(streaming::SessionBuilder{}
                          .vantage(net::Vantage::kResearch)
                          .video(meta)
                          .container(meta.container)
                          .capture_duration_s(8.0)
                          .seed(4000 + i)
                          .build());
  }
  return configs;
}

TEST(ParallelSweepTest, ExplicitJobCountWins) {
  EXPECT_EQ(ParallelSweep{3}.jobs(), 3u);
  EXPECT_GE(ParallelSweep{0}.jobs(), 1u);  // env/hardware resolution, never 0
}

TEST(ParallelSweepTest, JobCountReadsEnvironment) {
  ::setenv("VSTREAM_JOBS", "7", 1);
  EXPECT_EQ(job_count(0), 7u);
  EXPECT_EQ(job_count(2), 2u);  // explicit request overrides the env
  ::setenv("VSTREAM_JOBS", "not-a-number", 1);
  EXPECT_GE(job_count(0), 1u);  // garbage falls through to hardware
  ::unsetenv("VSTREAM_JOBS");
  EXPECT_GE(job_count(0), 1u);
}

TEST(ParallelSweepTest, JobCountRejectsZeroNegativeAndClampsHuge) {
  ::unsetenv("VSTREAM_JOBS");
  const std::size_t hardware = job_count(0);  // env unset: the hardware fallback

  ::setenv("VSTREAM_JOBS", "0", 1);
  EXPECT_EQ(job_count(0), hardware);  // zero is not a worker count
  ::setenv("VSTREAM_JOBS", "-4", 1);
  EXPECT_EQ(job_count(0), hardware);  // negative falls through too
  ::setenv("VSTREAM_JOBS", "12abc", 1);
  EXPECT_EQ(job_count(0), 12u);  // strtoll semantics: leading digits parse
  ::setenv("VSTREAM_JOBS", "100000", 1);
  EXPECT_EQ(job_count(0), kMaxJobs);  // absurd values cannot fork-bomb the host
  ::setenv("VSTREAM_JOBS", "99999999999999999999999999", 1);
  EXPECT_EQ(job_count(0), kMaxJobs);  // strtoll saturation clamps, not wraps
  ::unsetenv("VSTREAM_JOBS");

  EXPECT_EQ(job_count(100000), kMaxJobs);  // explicit requests clamp the same way
}

TEST(ParallelSweepTest, MapReturnsSubmissionOrder) {
  const ParallelSweep pool{4};
  const auto squares =
      pool.map<std::size_t>(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 64u);
  for (std::size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelSweepTest, ForEachCoversEveryIndexExactlyOnce) {
  const ParallelSweep pool{4};
  constexpr std::size_t kCount = 200;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each_index(kCount, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelSweepTest, WorkerExceptionPropagatesAfterDraining) {
  const ParallelSweep pool{4};
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(pool.for_each_index(50,
                                   [&completed](std::size_t i) {
                                     if (i == 17) throw std::runtime_error{"boom"};
                                     completed.fetch_add(1);
                                   }),
               std::runtime_error);
  // Remaining indices still drained: everything but the thrower ran.
  EXPECT_EQ(completed.load(), 49u);
}

TEST(ParallelSweepTest, FirstErrorRethrowsOriginalTypeWhenAlone) {
  struct SweepTestError : std::logic_error {
    using std::logic_error::logic_error;
  };
  const ParallelSweep pool{4};
  // Exactly one failure: the original exception object must come back
  // untouched — type intact, message intact, no drop suffix.
  try {
    pool.for_each_index(40, [](std::size_t i) {
      if (i == 11) throw SweepTestError{"original"};
    });
    FAIL() << "expected SweepTestError";
  } catch (const SweepTestError& e) {
    EXPECT_STREQ(e.what(), "original");
  }
  EXPECT_EQ(pool.errors_dropped(), 0u);
}

TEST(ParallelSweepTest, MultipleErrorsCountDropsAndAnnotateMessage) {
  const ParallelSweep pool{4};
  std::atomic<std::size_t> completed{0};
  try {
    pool.for_each_index(60, [&completed](std::size_t i) {
      if (i % 10 == 3) throw std::runtime_error{"fail@" + std::to_string(i)};
      completed.fetch_add(1);
    });
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    // 6 throwers: one rethrown, 5 dropped — and the rethrown message says so.
    EXPECT_NE(std::string{e.what()}.find("(sweep dropped 5 further worker error(s))"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(pool.errors_dropped(), 5u);
  EXPECT_EQ(completed.load(), 54u);  // every non-throwing index still ran

  // The counter is per-sweep state: a clean sweep resets it.
  pool.for_each_index(8, [](std::size_t) {});
  EXPECT_EQ(pool.errors_dropped(), 0u);
}

TEST(ParallelSweepTest, WorkerIndexResetsAfterSweep) {
  const ParallelSweep pool{4};
  std::atomic<bool> saw_nonzero{false};
  std::atomic<std::size_t> arrived{0};
  pool.for_each_index(64, [&saw_nonzero, &arrived](std::size_t) {
    arrived.fetch_add(1);
    // Rendezvous: the caller (worker 0) holds its task open until a spawned
    // worker has entered the sweep — on a loaded single-core host the caller
    // can otherwise drain all 64 trivial tasks before the spawned threads
    // are ever scheduled. Bounded so a pathological scheduler fails the
    // assertion instead of hanging the suite.
    for (int spin = 0;
         ParallelSweep::current_worker() == 0 && arrived.load() < 2 && spin < 4'000'000; ++spin) {
      std::this_thread::yield();
    }
    if (ParallelSweep::current_worker() != 0) saw_nonzero.store(true);
  });
  EXPECT_TRUE(saw_nonzero.load());  // spawned workers really did attribute as 1..N-1
  // After the sweep the caller's thread is plain worker 0 again.
  EXPECT_EQ(ParallelSweep::current_worker(), 0u);
}

TEST(ParallelSweepTest, ForEachChunkCoversRangeOnceWithValidWorkers) {
  const ParallelSweep pool{4};
  static constexpr std::size_t kCount = 333;
  std::vector<std::atomic<int>> hits(kCount);
  std::atomic<std::size_t> chunks{0};
  pool.for_each_chunk(kCount, 10,
                      [&hits, &chunks, &pool](std::size_t begin, std::size_t end,
                                              std::size_t worker) {
                        EXPECT_LT(worker, pool.jobs());
                        EXPECT_LT(begin, end);
                        EXPECT_LE(end, kCount);
                        EXPECT_LE(end - begin, 10u);  // explicit chunk size respected
                        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
                        chunks.fetch_add(1);
                      });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  EXPECT_EQ(chunks.load(), (kCount + 9) / 10);
}

TEST(ParallelSweepTest, ThrowingChunkAbandonsOnlyItsOwnTail) {
  const ParallelSweep pool{1};  // serial: chunk claim order is deterministic
  std::vector<int> hits(30, 0);
  EXPECT_THROW(pool.for_each_chunk(30, 10,
                                   [&hits](std::size_t begin, std::size_t end, std::size_t) {
                                     for (std::size_t i = begin; i < end; ++i) {
                                       if (i == 14) throw std::runtime_error{"mid-chunk"};
                                       hits[i] += 1;
                                     }
                                   }),
               std::runtime_error);
  // Chunk [10,20) died at 14: its tail is abandoned, every other chunk ran.
  for (std::size_t i = 0; i < 30; ++i) {
    const bool abandoned = i >= 14 && i < 20;
    EXPECT_EQ(hits[i], abandoned ? 0 : 1) << "index " << i;
  }
}

TEST(ParallelSweepTest, MapSupportsNonDefaultConstructibleResults) {
  struct Opaque {
    explicit Opaque(std::size_t v) : value{v} {}
    Opaque(Opaque&&) = default;
    Opaque& operator=(Opaque&&) = default;
    std::size_t value;
  };
  static_assert(!std::is_default_constructible_v<Opaque>);
  const ParallelSweep pool{4};
  const auto out = pool.map<Opaque>(97, [](std::size_t i) { return Opaque{i * 3}; });
  ASSERT_EQ(out.size(), 97u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].value, i * 3);
}

TEST(ParallelSweepTest, SessionResultsIdenticalAcrossWorkerCounts) {
  const auto configs = sweep_configs();
  const auto serial = ParallelSweep{1}.run_sessions(configs);
  ASSERT_EQ(serial.size(), configs.size());

  for (const std::size_t jobs : {2u, 4u}) {
    const auto parallel = ParallelSweep{jobs}.run_sessions(configs);
    ASSERT_EQ(parallel.size(), serial.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " session=" + std::to_string(i));
      // Each world is rebuilt from the config's seed, so every observable —
      // traffic volume, flow structure, event counts, metrics — must be
      // bit-identical to the serial run, in submission order.
      EXPECT_EQ(parallel[i].bytes_downloaded, serial[i].bytes_downloaded);
      EXPECT_EQ(parallel[i].connections, serial[i].connections);
      EXPECT_EQ(parallel[i].sim_events, serial[i].sim_events);
      EXPECT_EQ(parallel[i].sim_max_events_pending, serial[i].sim_max_events_pending);
      EXPECT_EQ(parallel[i].trace.packets.size(), serial[i].trace.packets.size());
      EXPECT_EQ(parallel[i].encoding_bps_estimated, serial[i].encoding_bps_estimated);
      EXPECT_EQ(deterministic_json(parallel[i].metrics), deterministic_json(serial[i].metrics));
    }
  }
}

TEST(ParallelSweepTest, MetricsMergeEqualsSerial) {
  const auto configs = sweep_configs();
  const auto merge_all = [](const std::vector<streaming::SessionResult>& results) {
    obs::MetricsSnapshot merged;
    for (const auto& r : results) merged.merge_from(r.metrics);
    return deterministic_json(std::move(merged));
  };
  // The merge itself is serial on the caller's thread; with per-session
  // snapshots identical across worker counts, the merged rollup is too.
  const auto serial_json = merge_all(ParallelSweep{1}.run_sessions(configs));
  const auto parallel_json = merge_all(ParallelSweep{4}.run_sessions(configs));
  EXPECT_FALSE(serial_json.empty());
  EXPECT_EQ(parallel_json, serial_json);
}

// ---- sweep profiler ------------------------------------------------------

TEST(SweepProfilerTest, RecordAccumulatesPerWorkerPhases) {
  SweepProfiler profiler{2};
  profiler.record(0, SweepPhase::kBuild, 1.0);
  profiler.record(1, SweepPhase::kRun, 2.0, 3);
  profiler.record(1, SweepPhase::kRun, 0.5);
  profiler.record(1, SweepPhase::kMerge, 0.25);
  EXPECT_THROW(profiler.record(2, SweepPhase::kRun, 1.0), std::out_of_range);

  const auto s = profiler.summary();
  ASSERT_EQ(s.workers, 2u);
  ASSERT_EQ(s.per_worker.size(), 2u);
  EXPECT_DOUBLE_EQ(s.per_worker[0].busy_s(), 1.0);
  EXPECT_EQ(s.per_worker[0].tasks(), 1u);
  EXPECT_DOUBLE_EQ(s.per_worker[1].phase_s[static_cast<std::size_t>(SweepPhase::kRun)], 2.5);
  EXPECT_EQ(s.per_worker[1].phase_tasks[static_cast<std::size_t>(SweepPhase::kRun)], 4u);
  EXPECT_DOUBLE_EQ(s.busy_s(), 3.75);
  EXPECT_EQ(s.tasks(), 6u);
  EXPECT_GE(s.wall_s, 0.0);
}

TEST(SweepProfilerTest, ScopeIsInertOnNullAndRecordsOneTaskOtherwise) {
  { const SweepProfiler::Scope inert{nullptr, 0, SweepPhase::kRun}; }  // must not crash

  SweepProfiler profiler{1};
  { const SweepProfiler::Scope scope{&profiler, 0, SweepPhase::kAnalyze}; }
  const auto s = profiler.summary();
  EXPECT_EQ(s.per_worker[0].phase_tasks[static_cast<std::size_t>(SweepPhase::kAnalyze)], 1u);
  EXPECT_GE(s.per_worker[0].busy_s(), 0.0);
}

TEST(SweepProfilerTest, UtilizationAndIdleDeriveFromWallTimesWorkers) {
  SweepProfiler::Summary s;
  s.workers = 2;
  s.wall_s = 10.0;
  s.per_worker.resize(2);
  s.per_worker[0].phase_s[static_cast<std::size_t>(SweepPhase::kRun)] = 4.0;
  s.per_worker[1].phase_s[static_cast<std::size_t>(SweepPhase::kRun)] = 1.0;
  EXPECT_DOUBLE_EQ(s.utilization(), 0.25);  // 5 busy over 20 worker-seconds
  EXPECT_DOUBLE_EQ(s.idle_s(), 15.0);

  // Nested scopes can over-count busy time past the wall: clamp, don't lie
  // with >100%.
  s.per_worker[0].phase_s[static_cast<std::size_t>(SweepPhase::kRun)] = 25.0;
  EXPECT_DOUBLE_EQ(s.utilization(), 1.0);
  EXPECT_DOUBLE_EQ(s.idle_s(), 0.0);

  SweepProfiler::Summary zero;
  EXPECT_DOUBLE_EQ(zero.utilization(), 0.0);
}

TEST(SweepProfilerTest, SummaryJsonCarriesPerWorkerPhaseBreakdown) {
  SweepProfiler::Summary s;
  s.workers = 1;
  s.wall_s = 2.0;
  s.per_worker.resize(1);
  s.per_worker[0].phase_s[static_cast<std::size_t>(SweepPhase::kBuild)] = 0.5;
  s.per_worker[0].phase_tasks[static_cast<std::size_t>(SweepPhase::kBuild)] = 1;

  s.per_worker[0].phase_max_s[static_cast<std::size_t>(SweepPhase::kBuild)] = 0.5;

  const std::string json = s.to_json("unit");
  EXPECT_NE(json.find("\"name\":\"unit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"workers\":1"), std::string::npos);
  EXPECT_NE(json.find("\"wall_s\":2.000000"), std::string::npos);
  EXPECT_NE(json.find("\"utilization\":0.250000"), std::string::npos);
  EXPECT_NE(json.find("\"build\":{\"seconds\":0.500000,\"tasks\":1,\"max_s\":0.500000}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"run\":{\"seconds\":0.000000,\"tasks\":0,\"max_s\":0.000000}"),
            std::string::npos);
  // The straggler bound surfaces at both levels: per worker and sweep-wide.
  EXPECT_NE(json.find("\"max_task_s\":0.500000"), std::string::npos) << json;
}

TEST(SweepProfilerTest, MaxTaskTracksWorstSingleRecord) {
  SweepProfiler profiler{2};
  profiler.record(0, SweepPhase::kRun, 0.25);
  profiler.record(0, SweepPhase::kRun, 1.5);  // the straggler
  profiler.record(0, SweepPhase::kRun, 0.5);
  profiler.record(1, SweepPhase::kAnalyze, 0.75);

  const auto s = profiler.summary();
  EXPECT_DOUBLE_EQ(s.per_worker[0].phase_max_s[static_cast<std::size_t>(SweepPhase::kRun)], 1.5);
  EXPECT_DOUBLE_EQ(s.per_worker[0].max_task_s(), 1.5);
  EXPECT_DOUBLE_EQ(s.per_worker[1].max_task_s(), 0.75);
  // Sweep-wide: the worst single task anywhere, not a sum.
  EXPECT_DOUBLE_EQ(s.max_task_s(), 1.5);
}

TEST(SweepProfilerTest, PoolAttributesRunTasksToWorkers) {
  EXPECT_EQ(ParallelSweep::current_worker(), 0u);  // caller thread is worker 0

  ParallelSweep pool{3};
  SweepProfiler profiler{pool.jobs()};
  pool.set_profiler(&profiler);
  constexpr std::size_t kCount = 120;
  std::vector<std::atomic<std::size_t>> seen_worker(kCount);
  pool.for_each_index(kCount, [&seen_worker](std::size_t i) {
    seen_worker[i].store(ParallelSweep::current_worker());
  });

  const auto s = profiler.summary();
  // Every index ran exactly once inside a kRun scope, attributed to a
  // worker the profiler knows about.
  EXPECT_EQ(s.tasks(), kCount);
  const auto run_phase = static_cast<std::size_t>(SweepPhase::kRun);
  std::uint64_t run_tasks = 0;
  for (const auto& w : s.per_worker) run_tasks += w.phase_tasks[run_phase];
  EXPECT_EQ(run_tasks, kCount);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_LT(seen_worker[i].load(), pool.jobs());
}

TEST(SweepProfilerTest, WriteJsonCreatesFileAndBadPathThrows) {
  const std::string path = ::testing::TempDir() + "sweep_profile_test.json";
  SweepProfiler profiler{1};
  profiler.record(0, SweepPhase::kRun, 0.125);
  profiler.write_json(path, "file-test");
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string content{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  EXPECT_EQ(content.rfind("{\"name\":\"file-test\"", 0), 0u);
  std::remove(path.c_str());

  EXPECT_THROW(profiler.write_json("/nonexistent-dir/profile.json", "x"), std::runtime_error);
}

TEST(ParallelSweepTest, ZeroSessionsIsFine) {
  const ParallelSweep pool{4};
  EXPECT_TRUE(pool.run_sessions({}).empty());
  pool.for_each_index(0, [](std::size_t) { FAIL() << "must not be called"; });
}

}  // namespace
}  // namespace vstream::runner
