// Tests for the auxiliary-traffic model and the video-connection filtering
// step of the paper's methodology (Section 2).
#include <gtest/gtest.h>

#include "analysis/onoff.hpp"
#include "analysis/strategy.hpp"
#include "net/profile.hpp"
#include "streaming/auxiliary.hpp"
#include "streaming/session_builder.hpp"

namespace vstream {
namespace {

streaming::SessionConfig flash_config(bool aux) {
  video::VideoMeta meta;
  meta.id = "aux";
  meta.duration_s = 600.0;
  meta.encoding_bps = 1e6;
  return streaming::SessionBuilder{}
      .service(streaming::Service::kYouTube)
      .container(video::Container::kFlash)
      .application(streaming::Application::kInternetExplorer)
      .vantage(net::Vantage::kResearch)
      .video(meta)
      .capture_duration_s(120.0)
      .seed(99)
      .auxiliary_traffic(aux)
      .build();
}

TEST(AuxiliaryTest, FullTraceContainsAuxAndVideoHosts) {
  auto cfg = flash_config(true);
  cfg.keep_full_trace = true;
  const auto result = streaming::run_session(cfg);
  const auto video = result.video_trace();
  EXPECT_TRUE(result.has_full_trace);
  EXPECT_GT(result.trace.connection_count(), video.connection_count());
  bool saw_aux = false;
  bool saw_video = false;
  for (const auto& p : result.trace.packets) {
    (p.host == 0 ? saw_video : saw_aux) = true;
  }
  EXPECT_TRUE(saw_video);
  EXPECT_TRUE(saw_aux);
  // The video view is pure video.
  for (const auto& p : video) EXPECT_EQ(p.host, 0);
}

TEST(AuxiliaryTest, FilteringReproducesAuxFreeAnalysis) {
  // Classification and key metrics must be identical whether the session
  // carried auxiliary traffic or not — because the filter removes it.
  const auto with_aux = streaming::run_session(flash_config(true));
  const auto without = streaming::run_session(flash_config(false));

  const auto a1 = analysis::analyze_on_off(with_aux.trace);
  const auto a2 = analysis::analyze_on_off(without.trace);
  const auto d1 = analysis::classify_strategy(a1, with_aux.trace);
  const auto d2 = analysis::classify_strategy(a2, without.trace);
  EXPECT_EQ(d1.strategy, d2.strategy);
  EXPECT_EQ(d1.strategy, analysis::Strategy::kShortOnOff);
  EXPECT_NEAR(a1.median_block_bytes(), a2.median_block_bytes(), 2000.0);
  // Aux traffic shares the access link, so rates can differ slightly, but
  // the headline buffering amount stays in the same band.
  EXPECT_NEAR(static_cast<double>(a1.buffering_bytes),
              static_cast<double>(a2.buffering_bytes), 0.2 * a2.buffering_bytes);
}

TEST(AuxiliaryTest, UnfilteredAnalysisWouldBePolluted) {
  // Sanity check that the filtering step actually matters: the full trace
  // has more connections and more bytes than the video view over it.
  auto cfg = flash_config(true);
  cfg.keep_full_trace = true;
  const auto result = streaming::run_session(cfg);
  const auto video = result.video_trace();
  EXPECT_GT(result.trace.down_payload_bytes(), video.down_payload_bytes());
  EXPECT_GE(result.trace.connection_count() - video.connection_count(), 3U);
}

TEST(AuxiliaryTest, GeneratorProducesBoundedTraffic) {
  sim::Simulator sim;
  sim::Rng rng{7};
  auto profile = net::profile_for(net::Vantage::kResearch);
  profile.loss_rate = 0.0;
  net::Path path{sim, profile, rng};
  tcp::Fabric fabric{sim, path};
  streaming::AuxiliaryTraffic::Config cfg;
  streaming::AuxiliaryTraffic aux{sim, fabric, cfg, rng.fork("a")};
  aux.start();
  sim.run_until(sim::SimTime::from_seconds(120.0));
  aux.stop();
  EXPECT_GE(aux.connections_opened(), 3U);  // assets + beacon channel
  EXPECT_GT(aux.bytes_fetched(), 40U * 1024);
  EXPECT_LT(aux.bytes_fetched(), 3U * 1024 * 1024);  // small vs video traffic
}

TEST(AuxiliaryTest, BeaconsRecurPeriodically) {
  sim::Simulator sim;
  sim::Rng rng{8};
  auto profile = net::profile_for(net::Vantage::kResearch);
  profile.loss_rate = 0.0;
  net::Path path{sim, profile, rng};
  tcp::Fabric fabric{sim, path};
  streaming::AuxiliaryTraffic::Config cfg;
  cfg.asset_count_min = 0;
  cfg.asset_count_max = 0;
  cfg.beacon_period_s = 10.0;
  cfg.beacon_bytes = 1024;
  streaming::AuxiliaryTraffic aux{sim, fabric, cfg, rng.fork("b")};
  aux.start();
  sim.run_until(sim::SimTime::from_seconds(65.0));
  // ~6 beacons of ~1 kB each (plus response heads).
  EXPECT_GE(aux.bytes_fetched(), 5U * 1024);
  EXPECT_LE(aux.bytes_fetched(), 9U * 1024);
}

}  // namespace
}  // namespace vstream
