// Tests for the streaming layer: player, server pacing, client throttling
// policies, fetch machinery, and full Table-1 sessions.
#include <gtest/gtest.h>

#include "analysis/onoff.hpp"
#include "analysis/strategy.hpp"
#include "capture/recorder.hpp"
#include "http/exchange.hpp"
#include "net/path.hpp"
#include "net/profile.hpp"
#include "streaming/clients.hpp"
#include "streaming/fetch.hpp"
#include "streaming/ipad_client.hpp"
#include "streaming/netflix_client.hpp"
#include "streaming/player.hpp"
#include "streaming/session_builder.hpp"
#include "streaming/video_server.hpp"
#include "video/datasets.hpp"

namespace vstream::streaming {
namespace {

using sim::SimTime;
using video::Container;

net::NetworkProfile lossless() {
  auto p = net::profile_for(net::Vantage::kResearch);
  p.loss_rate = 0.0;
  return p;
}

video::VideoMeta test_video(double duration_s = 300.0, double rate_bps = 1e6,
                            Container container = Container::kFlash) {
  video::VideoMeta v;
  v.id = "test";
  v.duration_s = duration_s;
  v.encoding_bps = rate_bps;
  v.container = container;
  return v;
}

// ----------------------------------------------------------------- player

TEST(PlayerTest, StartsAfterThreshold) {
  sim::Simulator sim;
  PlayerConfig cfg;
  cfg.encoding_bps = 1e6;
  cfg.duration_s = 100.0;
  cfg.start_threshold_s = 2.0;
  Player player{sim, cfg};
  player.on_bytes_downloaded(100'000);  // 0.8 s of content: below threshold
  sim.run_until(SimTime::from_seconds(1.0));
  EXPECT_FALSE(player.playing());
  player.on_bytes_downloaded(300'000);  // now 2.4 s buffered (minus played)
  sim.run_until(SimTime::from_seconds(2.0));
  EXPECT_TRUE(player.playing());
  EXPECT_TRUE(player.stats().started);
}

TEST(PlayerTest, ConsumesAtEncodingRate) {
  sim::Simulator sim;
  PlayerConfig cfg;
  cfg.encoding_bps = 1e6;
  cfg.duration_s = 100.0;
  Player player{sim, cfg};
  player.on_bytes_downloaded(10'000'000);  // plenty
  sim.run_until(SimTime::from_seconds(10.0));
  EXPECT_NEAR(player.stats().watched_s, 10.0, 0.3);
  EXPECT_NEAR(player.stats().consumed_bytes, 10.0 * 1e6 / 8, 1e5);
}

TEST(PlayerTest, StallsWhenBufferEmpties) {
  sim::Simulator sim;
  PlayerConfig cfg;
  cfg.encoding_bps = 1e6;
  cfg.duration_s = 100.0;
  cfg.start_threshold_s = 1.0;
  Player player{sim, cfg};
  player.on_bytes_downloaded(250'000);  // 2 s of content
  sim.run_until(SimTime::from_seconds(5.0));
  EXPECT_GE(player.stats().stall_count, 1U);
  EXPECT_FALSE(player.playing());
  // More data resumes playback.
  player.on_bytes_downloaded(1'000'000);
  sim.run_until(SimTime::from_seconds(6.0));
  EXPECT_TRUE(player.playing());
  EXPECT_GT(player.stats().stall_time_s, 0.0);
}

TEST(PlayerTest, InterruptsAtWatchFraction) {
  sim::Simulator sim;
  PlayerConfig cfg;
  cfg.encoding_bps = 1e6;
  cfg.duration_s = 100.0;
  cfg.watch_fraction = 0.2;
  Player player{sim, cfg};
  bool interrupted = false;
  player.set_on_interrupt([&] { interrupted = true; });
  player.on_bytes_downloaded(100'000'000);
  sim.run_until(SimTime::from_seconds(60.0));
  EXPECT_TRUE(interrupted);
  EXPECT_TRUE(player.stats().interrupted);
  EXPECT_NEAR(player.stats().watched_s, 20.0, 0.5);
  // Unused bytes: everything downloaded beyond the watched 20 s.
  EXPECT_NEAR(player.stats().unused_bytes(), 100'000'000 - 20.0 * 1e6 / 8, 1e5);
}

TEST(PlayerTest, FinishesWholeVideo) {
  sim::Simulator sim;
  PlayerConfig cfg;
  cfg.encoding_bps = 1e6;
  cfg.duration_s = 10.0;
  Player player{sim, cfg};
  bool finished = false;
  player.set_on_finished([&] { finished = true; });
  player.on_bytes_downloaded(2'000'000);
  sim.run_until(SimTime::from_seconds(30.0));
  EXPECT_TRUE(finished);
  EXPECT_TRUE(player.stats().finished);
  EXPECT_NEAR(player.stats().watched_s, 10.0, 0.2);
}

TEST(PlayerTest, ValidatesConfig) {
  sim::Simulator sim;
  PlayerConfig bad;
  bad.encoding_bps = 0.0;
  EXPECT_THROW((Player{sim, bad}), std::invalid_argument);
  bad = PlayerConfig{};
  bad.watch_fraction = 1.5;
  EXPECT_THROW((Player{sim, bad}), std::invalid_argument);
}

// ------------------------------------------------------- server + clients

struct Wire {
  Wire() : rng{11}, path{sim, lossless(), rng}, fabric{sim, path} {}
  sim::Simulator sim;
  sim::Rng rng;
  net::Path path;
  tcp::Fabric fabric;
};

TEST(VideoServerTest, BulkServesWholeVideoImmediately) {
  Wire w;
  auto& conn = w.fabric.create_connection({}, {});
  const auto video = test_video(80.0, 1e6);  // 10 MB
  VideoStreamServer server{w.sim, conn.server(), video, ServerPacing::bulk()};
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("test"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(30.0));
  EXPECT_GE(client.bytes_read(), video.size_bytes());
  ASSERT_EQ(client.responses().size(), 1U);
  EXPECT_EQ(client.responses()[0].content_length, video.size_bytes());
}

TEST(VideoServerTest, PacedBlocksProduceShortOnOff) {
  Wire w;
  tcp::TcpOptions copt;
  copt.recv_buffer_bytes = 512 * 1024;
  auto& conn = w.fabric.create_connection(copt, {});
  const auto video = test_video(600.0, 1e6);
  VideoStreamServer server{w.sim, conn.server(), video, ServerPacing::youtube_flash()};
  capture::TraceRecorder recorder{w.sim, w.path};
  recorder.start();
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("test"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(120.0));
  const auto analysis = analysis::analyze_on_off(recorder.trace());
  ASSERT_TRUE(analysis.has_steady_state());
  // 40 s burst at 1 Mbps = 5 MB.
  EXPECT_NEAR(analysis.buffering_bytes, 5e6, 5e5);
  EXPECT_NEAR(analysis.median_block_bytes(), 64.0 * 1024, 2000.0);
  EXPECT_NEAR(analysis.accumulation_ratio(1e6), 1.25, 0.1);
}

TEST(VideoServerTest, RangedRequestServesOnlyRange) {
  Wire w;
  auto& conn = w.fabric.create_connection({}, {});
  VideoStreamServer server{w.sim, conn.server(), test_video(), ServerPacing::bulk()};
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("test", http::ByteRange{0, 999'999}));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(10.0));
  ASSERT_EQ(client.responses().size(), 1U);
  EXPECT_EQ(client.responses()[0].status, 206);
  EXPECT_EQ(client.responses()[0].content_length, 1'000'000U);
  EXPECT_NEAR(client.bytes_read(), 1'000'000.0, 300.0);  // + head bytes
}

TEST(VideoServerTest, InvalidRangeGets416) {
  Wire w;
  auto& conn = w.fabric.create_connection({}, {});
  const auto video = test_video(10.0, 1e6);  // 1.25 MB
  VideoStreamServer server{w.sim, conn.server(), video, ServerPacing::bulk()};
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(
        http::make_video_request("test", http::ByteRange{2'000'000, 3'000'000}));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(5.0));
  ASSERT_EQ(client.responses().size(), 1U);
  EXPECT_EQ(client.responses()[0].status, 416);
}

TEST(PullThrottleClientTest, BuffersGreedilyThenPullsQuanta) {
  Wire w;
  tcp::TcpOptions copt;
  copt.recv_buffer_bytes = 256 * 1024;
  auto& conn = w.fabric.create_connection(copt, {});
  const auto video = test_video(600.0, 1e6);
  VideoStreamServer server{w.sim, conn.server(), video, ServerPacing::bulk()};
  PullThrottleClient::Config cfg;
  cfg.buffering_target_bytes = 4 * 1024 * 1024;
  cfg.pull_quantum_bytes = 256 * 1024;
  cfg.accumulation_ratio = 1.06;
  cfg.encoding_bps = 1e6;
  PullThrottleClient client{w.sim, conn.client(), cfg, {}};
  capture::TraceRecorder recorder{w.sim, w.path};
  recorder.start();
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("test"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(90.0));
  EXPECT_TRUE(client.in_steady_state());
  const auto analysis = analysis::analyze_on_off(recorder.trace());
  ASSERT_TRUE(analysis.has_steady_state());
  EXPECT_NEAR(analysis.median_block_bytes(), 256.0 * 1024, 40'000.0);
  EXPECT_NEAR(analysis.accumulation_ratio(1e6), 1.06, 0.15);
  // The rwnd signature of client throttling (Fig 2b).
  EXPECT_GT(analysis::count_zero_window_episodes(recorder.trace()), 5U);
}

TEST(PullThrottleClientTest, NoOffPeriodsWhenBandwidthBelowTarget) {
  // Paper §3: OFF periods only exist when the available bandwidth exceeds
  // the steady-state rate. Starve the link below the target rate.
  auto profile = lossless();
  profile.down_bps = 0.8e6;
  sim::Simulator sim;
  sim::Rng rng{1};
  net::Path path{sim, profile, rng};
  tcp::Fabric fabric{sim, path};
  tcp::TcpOptions copt;
  copt.recv_buffer_bytes = 256 * 1024;
  auto& conn = fabric.create_connection(copt, {});
  const auto video = test_video(600.0, 1e6);
  VideoStreamServer server{sim, conn.server(), video, ServerPacing::bulk()};
  PullThrottleClient::Config cfg;
  cfg.buffering_target_bytes = 1 * 1024 * 1024;
  cfg.pull_quantum_bytes = 256 * 1024;
  cfg.accumulation_ratio = 1.06;
  cfg.encoding_bps = 1e6;
  PullThrottleClient client{sim, conn.client(), cfg, {}};
  capture::TraceRecorder recorder{sim, path};
  recorder.start();
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("test"));
  });
  conn.open();
  sim.run_until(SimTime::from_seconds(120.0));
  const auto analysis = analysis::analyze_on_off(recorder.trace());
  // Starved link: transfer is continuous, no real OFF periods develop.
  EXPECT_LT(analysis.off_time_fraction(), 0.1);
}

TEST(PullThrottleClientTest, ValidatesConfig) {
  Wire w;
  auto& conn = w.fabric.create_connection({}, {});
  PullThrottleClient::Config bad;
  bad.pull_quantum_bytes = 0;
  EXPECT_THROW((PullThrottleClient{w.sim, conn.client(), bad, {}}), std::invalid_argument);
  bad = PullThrottleClient::Config{};
  bad.encoding_bps = 0.0;
  EXPECT_THROW((PullThrottleClient{w.sim, conn.client(), bad, {}}), std::invalid_argument);
}

// ------------------------------------------------------------------ fetch

TEST(FetchManagerTest, FreshConnectionPerFetch) {
  Wire w;
  FetchManager fm{w.sim, w.fabric, test_video(600.0, 1e6), {}, {}};
  int done = 0;
  std::uint64_t got = 0;
  for (int i = 0; i < 3; ++i) {
    fm.fetch_range(http::ByteRange{static_cast<std::uint64_t>(i) * 100'000,
                                   static_cast<std::uint64_t>(i) * 100'000 + 99'999},
                   [&](std::uint64_t n) { got += n; }, [&] { ++done; });
  }
  w.sim.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(done, 3);
  EXPECT_EQ(got, 300'000U);
  EXPECT_EQ(fm.connections_opened(), 3U);
  EXPECT_EQ(fm.body_bytes_fetched(), 300'000U);
}

TEST(FetchManagerTest, PersistentConnectionReused) {
  Wire w;
  FetchManager fm{w.sim, w.fabric, test_video(600.0, 1e6), {}, {}};
  int done = 0;
  fm.fetch_range_persistent(http::ByteRange{0, 99'999}, {}, [&] { ++done; });
  fm.fetch_range_persistent(http::ByteRange{100'000, 199'999}, {}, [&] { ++done; });
  w.sim.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(done, 2);
  EXPECT_EQ(fm.connections_opened(), 1U);
}

TEST(FetchManagerTest, StopAbortsFutureFetches) {
  Wire w;
  FetchManager fm{w.sim, w.fabric, test_video(), {}, {}};
  fm.stop();
  int done = 0;
  fm.fetch_range(http::ByteRange{0, 999}, {}, [&] { ++done; });
  w.sim.run_until(SimTime::from_seconds(5.0));
  EXPECT_EQ(done, 0);
  EXPECT_EQ(fm.connections_opened(), 0U);
}

// ------------------------------------------------------- composite clients

TEST(IpadClientTest, MixesChunkSizes) {
  Wire w;
  const auto video = test_video(900.0, 1.2e6, Container::kHtml5);
  FetchManager fm{w.sim, w.fabric, video, {}, {}};
  IpadYouTubeClient::Config cfg;
  cfg.initial_buffer_bytes = 6 * 1024 * 1024;
  IpadYouTubeClient client{w.sim, fm, video, cfg, {}};
  capture::TraceRecorder recorder{w.sim, w.path};
  recorder.start();
  client.start();
  w.sim.run_until(SimTime::from_seconds(180.0));
  EXPECT_TRUE(client.in_steady_state());
  EXPECT_GT(fm.connections_opened(), 10U);
  const auto analysis = analysis::analyze_on_off(recorder.trace());
  const auto decision = analysis::classify_strategy(analysis, recorder.trace());
  EXPECT_EQ(decision.strategy, analysis::Strategy::kMultiple);
}

TEST(IpadClientTest, LowRateVideoUsesOnePersistentConnection) {
  // The paper's Video2 (Fig 7a): plain short cycles over a single TCP
  // connection, in contrast to Video1's dozens of ranged connections.
  Wire w;
  const auto video = test_video(900.0, 0.35e6, Container::kHtml5);
  FetchManager fm{w.sim, w.fabric, video, {}, {}};
  IpadYouTubeClient::Config cfg;
  cfg.initial_buffer_bytes = 2 * 1024 * 1024;
  IpadYouTubeClient client{w.sim, fm, video, cfg, {}};
  EXPECT_TRUE(client.single_connection_mode());
  capture::TraceRecorder recorder{w.sim, w.path};
  recorder.start();
  client.start();
  w.sim.run_until(SimTime::from_seconds(180.0));
  EXPECT_EQ(fm.connections_opened(), 1U);
  const auto analysis = analysis::analyze_on_off(recorder.trace());
  const auto decision = analysis::classify_strategy(analysis, recorder.trace());
  EXPECT_EQ(decision.strategy, analysis::Strategy::kShortOnOff);
}

TEST(IpadClientTest, BlockSizeScalesWithEncodingRate) {
  Wire w;
  const auto slow = test_video(900.0, 0.3e6, Container::kHtml5);
  const auto fast = test_video(900.0, 2.7e6, Container::kHtml5);
  FetchManager fm1{w.sim, w.fabric, slow, {}, {}};
  FetchManager fm2{w.sim, w.fabric, fast, {}, {}};
  IpadYouTubeClient c1{w.sim, fm1, slow, {}, {}};
  IpadYouTubeClient c2{w.sim, fm2, fast, {}, {}};
  EXPECT_LT(c1.block_bytes(), c2.block_bytes());
  EXPECT_GE(c1.block_bytes(), 64U * 1024);
  EXPECT_LE(c2.block_bytes(), 8U * 1024 * 1024);
}

TEST(NetflixClientTest, RateSelectionRespectsBandwidth) {
  Wire w;
  auto video = test_video(3600.0, 3.6e6, Container::kSilverlight);
  video.available_rates_bps = video::netflix_rate_ladder();
  FetchManager fm{w.sim, w.fabric, video, {}, {}};
  NetflixClient fast{w.sim, fm, video, NetflixClient::Profile::pc(), 100e6, {}};
  EXPECT_DOUBLE_EQ(fast.selected_rate_bps(), video::netflix_rate_ladder().back());
  NetflixClient slow{w.sim, fm, video, NetflixClient::Profile::pc(), 1.0e6, {}};
  EXPECT_LT(slow.selected_rate_bps(), 1.0e6);
}

TEST(NetflixClientTest, BufferingDownloadsAllLadderRates) {
  Wire w;
  auto video = test_video(3600.0, 3.6e6, Container::kSilverlight);
  video.available_rates_bps = video::netflix_rate_ladder();
  FetchManager fm{w.sim, w.fabric, video, {}, {}};
  NetflixClient client{w.sim, fm, video, NetflixClient::Profile::pc(), 100e6, {}};
  client.start();
  // Step until the buffering phase completes, then check the totals before
  // steady-state blocks start accumulating on top.
  double t = 0.5;
  while (!client.in_steady_state() && t < 120.0) {
    w.sim.run_until(SimTime::from_seconds(t));
    t += 0.5;
  }
  EXPECT_TRUE(client.in_steady_state());
  // One connection per ladder rate during buffering.
  EXPECT_GE(fm.connections_opened(), video::netflix_rate_ladder().size());
  EXPECT_NEAR(static_cast<double>(client.bytes_fetched()),
              static_cast<double>(client.buffering_bytes_expected()),
              client.buffering_bytes_expected() * 0.1);
}

TEST(NetflixClientTest, ProfilesMatchPaperScales) {
  const auto pc = NetflixClient::Profile::pc();
  const auto ipad = NetflixClient::Profile::ipad();
  const auto android = NetflixClient::Profile::android();
  // Buffering: PC ~50 MB >> Android ~40 MB >> iPad ~10 MB (Fig 11).
  const auto bytes = [](const NetflixClient::Profile& p) {
    double total = 0.0;
    for (const double r : p.ladder_bps) total += r / 8.0 * p.buffering_fragment_s;
    return total;
  };
  EXPECT_GT(bytes(pc), 40e6);
  EXPECT_LT(bytes(pc), 60e6);
  EXPECT_GT(bytes(android), 30e6);
  EXPECT_LT(bytes(android), bytes(pc));
  EXPECT_LT(bytes(ipad), 15e6);
  // Blocks: Android long (> 2.5 MB), PC/iPad short.
  EXPECT_GT(android.steady_block_bytes, 2.5 * 1024 * 1024);
  EXPECT_LE(pc.steady_block_bytes, static_cast<std::uint64_t>(2.5 * 1024 * 1024));
  EXPECT_FALSE(android.fresh_connection_per_block);
  EXPECT_TRUE(pc.fresh_connection_per_block);
}

// ---------------------------------------------------------------- sessions

TEST(SessionTest, CombinationSupportMatchesTable1) {
  using enum Application;
  EXPECT_TRUE(combination_supported(Service::kYouTube, Container::kFlash, kInternetExplorer));
  EXPECT_FALSE(combination_supported(Service::kYouTube, Container::kFlash, kIosNative));
  EXPECT_FALSE(combination_supported(Service::kYouTube, Container::kFlashHd, kAndroidNative));
  EXPECT_TRUE(combination_supported(Service::kYouTube, Container::kHtml5, kIosNative));
  EXPECT_TRUE(combination_supported(Service::kNetflix, Container::kSilverlight, kChrome));
  EXPECT_FALSE(combination_supported(Service::kNetflix, Container::kFlash, kChrome));
  EXPECT_FALSE(combination_supported(Service::kYouTube, Container::kSilverlight, kChrome));
}

TEST(SessionTest, UnsupportedCombinationThrows) {
  SessionConfig cfg;
  cfg.service = Service::kYouTube;
  cfg.container = Container::kFlash;
  cfg.application = Application::kIosNative;
  cfg.network = lossless();
  cfg.video = test_video();
  EXPECT_THROW((void)run_session(cfg), std::invalid_argument);
}

TEST(SessionTest, InvalidVideoThrows) {
  SessionConfig cfg;
  cfg.network = lossless();
  cfg.video = test_video(0.0);
  EXPECT_THROW((void)run_session(cfg), std::invalid_argument);
}

TEST(SessionTest, DeterministicForSameSeed) {
  const auto cfg = SessionBuilder{}
                       .network(lossless())
                       .video(test_video(300.0, 1e6))
                       .capture_duration_s(30.0)
                       .seed(77)
                       .build();
  const auto a = run_session(cfg);
  const auto b = run_session(cfg);
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded);
  EXPECT_EQ(a.trace.packets.size(), b.trace.packets.size());
}

TEST(SessionTest, InterruptionStopsDownload) {
  const auto cfg = SessionBuilder{}
                       .network(lossless())
                       .video(test_video(300.0, 1e6))
                       .capture_duration_s(180.0)
                       .watch_fraction(0.2)  // interrupt after 60 s of content
                       .build();
  const auto result = run_session(cfg);
  EXPECT_TRUE(result.player.interrupted);
  EXPECT_GT(result.interrupted_at_s, 0.0);
  // Unused bytes: buffered-ahead content never watched.
  EXPECT_GT(result.player.unused_bytes(), 0U);
  // The download stopped: total stays well below the full video.
  EXPECT_LT(result.bytes_downloaded, cfg.video.size_bytes());
}

TEST(SessionTest, EncodingRateEstimatedForHtml5ExactForFlash) {
  SessionConfig cfg;
  cfg.network = lossless();
  cfg.video = test_video(300.0, 1e6, Container::kFlash);
  cfg.capture_duration_s = 20.0;
  const auto flash = run_session(cfg);
  EXPECT_DOUBLE_EQ(flash.encoding_bps_estimated, 1e6);  // read from header

  cfg.container = Container::kHtml5;
  cfg.video.container = Container::kHtml5;
  const auto html5 = run_session(cfg);
  EXPECT_NE(html5.encoding_bps_estimated, 1e6);  // Content-Length estimate
  EXPECT_NEAR(html5.encoding_bps_estimated, 1e6, 0.6e6);
}

struct Table1Case {
  Service service;
  Container container;
  Application application;
  analysis::Strategy expected;
  const char* name;
};

class Table1Property : public ::testing::TestWithParam<Table1Case> {};

TEST_P(Table1Property, StrategyMatchesPaper) {
  const auto& tc = GetParam();
  SessionConfig cfg;
  cfg.service = tc.service;
  cfg.container = tc.container;
  cfg.application = tc.application;
  cfg.network = net::profile_for(net::Vantage::kResearch);
  const bool netflix = tc.service == Service::kNetflix;
  const bool hd = tc.container == Container::kFlashHd;
  cfg.video = test_video(netflix ? 3600.0 : 600.0, hd ? 3e6 : 1.2e6,
                         netflix ? Container::kSilverlight : tc.container);
  if (netflix) cfg.video.available_rates_bps = video::netflix_rate_ladder();
  cfg.capture_duration_s = 180.0;
  cfg.seed = 2024;
  const auto result = run_session(cfg);
  const auto analysis = analysis::analyze_on_off(result.trace);
  const auto decision = analysis::classify_strategy(analysis, result.trace);
  EXPECT_EQ(decision.strategy, tc.expected)
      << result.trace.label << ": " << decision.rationale
      << " (median block " << decision.median_block_bytes << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Table1, Table1Property,
    ::testing::Values(
        Table1Case{Service::kYouTube, Container::kFlash, Application::kInternetExplorer,
                   analysis::Strategy::kShortOnOff, "FlashIE"},
        Table1Case{Service::kYouTube, Container::kFlash, Application::kFirefox,
                   analysis::Strategy::kShortOnOff, "FlashFirefox"},
        Table1Case{Service::kYouTube, Container::kFlash, Application::kChrome,
                   analysis::Strategy::kShortOnOff, "FlashChrome"},
        Table1Case{Service::kYouTube, Container::kHtml5, Application::kInternetExplorer,
                   analysis::Strategy::kShortOnOff, "Html5IE"},
        Table1Case{Service::kYouTube, Container::kHtml5, Application::kFirefox,
                   analysis::Strategy::kNoOnOff, "Html5Firefox"},
        Table1Case{Service::kYouTube, Container::kHtml5, Application::kChrome,
                   analysis::Strategy::kLongOnOff, "Html5Chrome"},
        Table1Case{Service::kYouTube, Container::kHtml5, Application::kIosNative,
                   analysis::Strategy::kMultiple, "Html5Ipad"},
        Table1Case{Service::kYouTube, Container::kHtml5, Application::kAndroidNative,
                   analysis::Strategy::kLongOnOff, "Html5Android"},
        Table1Case{Service::kYouTube, Container::kFlashHd, Application::kInternetExplorer,
                   analysis::Strategy::kNoOnOff, "FlashHD"},
        Table1Case{Service::kNetflix, Container::kSilverlight, Application::kInternetExplorer,
                   analysis::Strategy::kShortOnOff, "NetflixPC"},
        Table1Case{Service::kNetflix, Container::kSilverlight, Application::kIosNative,
                   analysis::Strategy::kShortOnOff, "NetflixIpad"},
        Table1Case{Service::kNetflix, Container::kSilverlight, Application::kAndroidNative,
                   analysis::Strategy::kLongOnOff, "NetflixAndroid"}),
    [](const ::testing::TestParamInfo<Table1Case>& info) { return info.param.name; });

}  // namespace
}  // namespace vstream::streaming
