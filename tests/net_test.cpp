// Unit tests for links, loss models, paths and network profiles.
#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/loss_model.hpp"
#include "net/path.hpp"
#include "net/profile.hpp"
#include "net/segment.hpp"

namespace vstream::net {
namespace {

using sim::Duration;
using sim::Rng;
using sim::SimTime;
using sim::Simulator;

TcpSegment make_data_segment(std::uint32_t payload, std::uint64_t seq = 0) {
  TcpSegment s;
  s.seq = seq;
  s.payload_bytes = payload;
  s.flags = TcpFlag::kAck;
  return s;
}

TEST(SegmentTest, WireBytesIncludesHeaders) {
  const auto s = make_data_segment(1000);
  EXPECT_EQ(s.wire_bytes(), 1040U);
}

TEST(SegmentTest, FlagOperations) {
  TcpSegment s;
  s.flags = TcpFlag::kSyn | TcpFlag::kAck;
  EXPECT_TRUE(s.has(TcpFlag::kSyn));
  EXPECT_TRUE(s.has(TcpFlag::kAck));
  EXPECT_FALSE(s.has(TcpFlag::kFin));
  EXPECT_EQ(s.flag_string(), "SA");
  EXPECT_EQ(TcpSegment{}.flag_string(), "-");
}

TEST(SegmentTest, DirectionOpposite) {
  EXPECT_EQ(opposite(Direction::kDown), Direction::kUp);
  EXPECT_EQ(opposite(Direction::kUp), Direction::kDown);
}

TEST(LossModelTest, NoLossNeverDrops) {
  Rng rng{1};
  NoLoss m;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(m.should_drop(rng));
}

TEST(LossModelTest, BernoulliMatchesRate) {
  Rng rng{2};
  BernoulliLoss m{0.1};
  int drops = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (m.should_drop(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kN, 0.1, 0.01);
}

TEST(LossModelTest, BernoulliValidation) {
  EXPECT_THROW((BernoulliLoss{-0.1}), std::invalid_argument);
  EXPECT_THROW((BernoulliLoss{1.1}), std::invalid_argument);
}

TEST(LossModelTest, GilbertElliottSteadyState) {
  GilbertElliottLoss::Params p;
  p.p_good = 0.001;
  p.p_bad = 0.3;
  p.p_good_to_bad = 0.01;
  p.p_bad_to_good = 0.19;
  GilbertElliottLoss m{p};
  Rng rng{3};
  int drops = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    if (m.should_drop(rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kN, m.steady_state_loss(), 0.005);
}

TEST(LossModelTest, GilbertElliottProducesBursts) {
  GilbertElliottLoss::Params p;
  p.p_good = 0.0;
  p.p_bad = 1.0;
  p.p_good_to_bad = 0.01;
  p.p_bad_to_good = 0.25;
  GilbertElliottLoss m{p};
  Rng rng{4};
  // With deterministic in-state loss, consecutive drops must appear.
  int max_run = 0;
  int run = 0;
  for (int i = 0; i < 100000; ++i) {
    if (m.should_drop(rng)) {
      ++run;
      max_run = std::max(max_run, run);
    } else {
      run = 0;
    }
  }
  EXPECT_GE(max_run, 3);
}

TEST(LossModelTest, FactoryPicksModel) {
  EXPECT_NE(dynamic_cast<NoLoss*>(make_loss(0.0).get()), nullptr);
  EXPECT_NE(dynamic_cast<BernoulliLoss*>(make_loss(0.01).get()), nullptr);
}

TEST(LinkTest, DeliversWithSerializationPlusPropagation) {
  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 8e6, .prop_delay = Duration::millis(10),
                   .queue_limit_bytes = 100000};
  Link link{sim, cfg, nullptr, rng};
  std::vector<double> arrivals;
  link.set_receiver([&](const TcpSegment&) { arrivals.push_back(sim.now().to_seconds()); });
  // 960-byte payload -> 1000 wire bytes -> 1 ms at 8 Mbps, plus 10 ms prop.
  link.send(make_data_segment(960));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1U);
  EXPECT_NEAR(arrivals[0], 0.011, 1e-9);
}

TEST(LinkTest, SerializesBackToBack) {
  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 8e6, .prop_delay = Duration::zero(), .queue_limit_bytes = 100000};
  Link link{sim, cfg, nullptr, rng};
  std::vector<double> arrivals;
  link.set_receiver([&](const TcpSegment&) { arrivals.push_back(sim.now().to_seconds()); });
  for (int i = 0; i < 3; ++i) link.send(make_data_segment(960));
  sim.run();
  ASSERT_EQ(arrivals.size(), 3U);
  EXPECT_NEAR(arrivals[0], 0.001, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.002, 1e-9);
  EXPECT_NEAR(arrivals[2], 0.003, 1e-9);
}

TEST(LinkTest, DropTailWhenQueueFull) {
  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 8e6, .prop_delay = Duration::zero(), .queue_limit_bytes = 2100};
  Link link{sim, cfg, nullptr, rng};
  int delivered = 0;
  link.set_receiver([&](const TcpSegment&) { ++delivered; });
  // Each segment is 1040 wire bytes; the third exceeds the 2100-byte queue.
  EXPECT_TRUE(link.send(make_data_segment(1000)));
  EXPECT_TRUE(link.send(make_data_segment(1000)));
  EXPECT_FALSE(link.send(make_data_segment(1000)));
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.counters().dropped_queue, 1U);
  // Queue drains -> accepts again.
  EXPECT_TRUE(link.send(make_data_segment(1000)));
  sim.run();
  EXPECT_EQ(delivered, 3);
}

TEST(LinkTest, LossModelDropsOnWire) {
  Simulator sim;
  Rng rng{5};
  Link::Config cfg{.rate_bps = 1e9, .prop_delay = Duration::zero(),
                   .queue_limit_bytes = 100000000};
  Link link{sim, cfg, std::make_unique<BernoulliLoss>(1.0), rng};
  int delivered = 0;
  link.set_receiver([&](const TcpSegment&) { ++delivered; });
  link.send(make_data_segment(100));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.counters().dropped_loss, 1U);
}

TEST(LinkTest, TapSeesLifecycle) {
  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 1e9, .prop_delay = Duration::millis(1),
                   .queue_limit_bytes = 1000000};
  Link link{sim, cfg, nullptr, rng};
  link.set_receiver([](const TcpSegment&) {});
  std::vector<LinkEvent> events;
  link.set_tap([&](SimTime, const TcpSegment&, LinkEvent e) { events.push_back(e); });
  link.send(make_data_segment(100));
  sim.run();
  ASSERT_EQ(events.size(), 3U);
  EXPECT_EQ(events[0], LinkEvent::kEnqueue);
  EXPECT_EQ(events[1], LinkEvent::kTransmit);
  EXPECT_EQ(events[2], LinkEvent::kDeliver);
}

TEST(LinkTest, SendWithoutReceiverThrows) {
  Simulator sim;
  Rng rng{1};
  Link link{sim, Link::Config{}, nullptr, rng};
  EXPECT_THROW(link.send(make_data_segment(1)), std::logic_error);
}

TEST(LinkTest, InvalidRateThrows) {
  Simulator sim;
  Rng rng{1};
  Link::Config cfg{};
  cfg.rate_bps = 0.0;
  EXPECT_THROW((Link{sim, cfg, nullptr, rng}), std::invalid_argument);
}

TEST(ProfileTest, AllVantagesHaveSaneParameters) {
  for (const auto v : kAllVantages) {
    const auto p = profile_for(v);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.down_bps, 0.0);
    EXPECT_GT(p.up_bps, 0.0);
    EXPECT_GT(p.base_rtt.count_nanos(), 0);
    EXPECT_GE(p.loss_rate, 0.0);
    EXPECT_LT(p.loss_rate, 0.05);
    EXPECT_GT(p.queue_bytes, 0U);
    EXPECT_EQ(p.name, vantage_name(v));
  }
}

TEST(ProfileTest, PaperRatesMatchSection42) {
  EXPECT_DOUBLE_EQ(profile_for(Vantage::kResearch).down_mbps(), 100.0);
  EXPECT_DOUBLE_EQ(profile_for(Vantage::kResidence).down_mbps(), 7.7);
  EXPECT_DOUBLE_EQ(profile_for(Vantage::kResidence).up_bps, 1.2e6);
  EXPECT_DOUBLE_EQ(profile_for(Vantage::kAcademic).down_mbps(), 100.0);
  EXPECT_DOUBLE_EQ(profile_for(Vantage::kHome).down_mbps(), 20.0);
  EXPECT_DOUBLE_EQ(profile_for(Vantage::kHome).up_bps, 3e6);
}

TEST(ProfileTest, LossCalibrationOrdering) {
  // Residence has the paper's highest retransmission median, Academic next.
  const double research = profile_for(Vantage::kResearch).loss_rate;
  const double residence = profile_for(Vantage::kResidence).loss_rate;
  const double academic = profile_for(Vantage::kAcademic).loss_rate;
  EXPECT_GT(residence, academic);
  EXPECT_GT(academic, research);
}

TEST(PathTest, RoutesBothDirections) {
  Simulator sim;
  Rng rng{1};
  Path path{sim, profile_for(Vantage::kResearch), rng};
  int down_count = 0;
  int up_count = 0;
  path.down().set_receiver([&](const TcpSegment&) { ++down_count; });
  path.up().set_receiver([&](const TcpSegment&) { ++up_count; });
  path.down().send(make_data_segment(100));
  path.up().send(make_data_segment(0));
  sim.run();
  EXPECT_EQ(down_count, 1);
  EXPECT_EQ(up_count, 1);
}

TEST(PathTest, UnloadedRttNearProfileBaseRtt) {
  Simulator sim;
  Rng rng{1};
  const auto profile = profile_for(Vantage::kResearch);
  Path path{sim, profile, rng};
  const double rtt = path.unloaded_rtt().to_seconds();
  EXPECT_GT(rtt, profile.base_rtt.to_seconds() * 0.99);
  EXPECT_LT(rtt, profile.base_rtt.to_seconds() * 1.2);
}

TEST(PathTest, TapTagsDirections) {
  Simulator sim;
  Rng rng{1};
  Path path{sim, profile_for(Vantage::kResearch), rng};
  path.down().set_receiver([](const TcpSegment&) {});
  path.up().set_receiver([](const TcpSegment&) {});
  std::vector<Direction> dirs;
  path.set_tap([&](SimTime, const TcpSegment&, Direction d, LinkEvent e) {
    if (e == LinkEvent::kDeliver) dirs.push_back(d);
  });
  path.down().send(make_data_segment(10));
  path.up().send(make_data_segment(10));
  sim.run();
  ASSERT_EQ(dirs.size(), 2U);
  EXPECT_NE(dirs[0], dirs[1]);  // one delivery per direction
}

}  // namespace
}  // namespace vstream::net
