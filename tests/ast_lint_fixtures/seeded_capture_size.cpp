// Seeded capture-size violations for ast_lint_test: lambdas scheduled into
// the simulator whose closures provably exceed the 128-byte SimCallback
// SBO. Self-contained stand-ins for the sim types — the analyzer matches
// scheduling sites by name, exactly as it does in src/.
#include <array>
#include <cstdint>

namespace vstream::sim {
class EventHandle {};
class Simulator {
 public:
  template <typename F>
  EventHandle schedule_after(double delay, F&& fn);
  template <typename F>
  EventHandle schedule_at(double at, F&& fn);
};
}  // namespace vstream::sim

namespace vstream::fixture {

void oversized_array_capture(sim::Simulator& sim) {
  std::array<std::uint8_t, 256> payload{};
  // 256 bytes by value: heap fallback on every scheduled event. Flagged.
  sim.schedule_after(1.0, [payload] { (void)payload; });
}

void oversized_mixed_capture(sim::Simulator& sim) {
  std::array<double, 20> samples{};  // 160 bytes
  std::uint64_t total = 0;
  // 160 + 8 = 168 bytes: flagged even with small companions.
  sim.schedule_at(2.0, [samples, total] { (void)samples; (void)total; });
}

void oversized_c_array_capture(sim::Simulator& sim) {
  double window[40] = {};  // 320 bytes
  sim.schedule_after(0.5, [window] { (void)window; });
}

void small_captures_stay_clean(sim::Simulator& sim) {
  std::array<std::uint8_t, 256> payload{};
  std::uint64_t seq = 7;
  double rate = 1.5e6;
  // By reference: 8 bytes each. Clean.
  sim.schedule_after(1.0, [&payload, seq, rate] { (void)payload; (void)seq; (void)rate; });
  // Small by-value captures: clean.
  sim.schedule_at(3.0, [seq, rate] { (void)seq; (void)rate; });
}

}  // namespace vstream::fixture
