// A fixture that exercises the same shapes as the seeded files but keeps
// every declaration inside the rules: ast_lint_test asserts zero findings
// here, pinning the analyzer's false-positive rate on idiomatic code.
#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace vstream::sim {
class EventHandle {};
class Simulator {
 public:
  template <typename F>
  EventHandle schedule_after(double delay, F&& fn);
};
}  // namespace vstream::sim

namespace vstream::fixture {

// Immutable tables and constants: the sanctioned way to share data.
constexpr std::size_t kWindowSegments = 64;
const std::array<double, 3> kRateLaddersMbps{1.0, 2.5, 5.0};
const char* const kVantagePoints[] = {"fixed", "mobile"};
static const std::string kDefaultHost{"video.example"};

class World {
 public:
  void arm(sim::Simulator& sim) {
    // Member handle, small captures: the intended scheduling idiom.
    const std::uint64_t seq = next_seq_++;
    timer_ = sim.schedule_after(1.0, [this, seq] { fire(seq); });
  }

 private:
  void fire(std::uint64_t seq) { last_fired_ = seq; }

  // Per-instance state lives in the world, not in static storage.
  sim::EventHandle timer_;
  std::uint64_t next_seq_{0};
  std::uint64_t last_fired_{0};
};

double mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

}  // namespace vstream::fixture
