// Seeded handle-escape violations for ast_lint_test: sim::EventHandle
// values with static storage duration. A handle is a {slot, generation}
// token into one world's event arena; parking one in static storage lets
// it outlive the arena generation it indexes.
#include <vector>

namespace vstream::sim {
class EventHandle {};
}  // namespace vstream::sim

namespace vstream::fixture {

// Namespace-scope handle: outlives every world. Flagged.
sim::EventHandle g_retry_timer;

// Static container of handles: same escape, one level removed. Flagged.
static std::vector<sim::EventHandle> g_pending_timers;

struct Watchdog {
  // A member handle inside a world-owned component is the intended
  // pattern: clean.
  sim::EventHandle armed;
};

sim::EventHandle* borrow() {
  // Static local handle: persists across worlds on this process. Flagged.
  static sim::EventHandle cached;
  return &cached;
}

}  // namespace vstream::fixture
