// Seeded mutable-global violations for ast_lint_test. Never compiled into
// any target — this file exists only to be analyzed by vstream_ast_lint.py,
// so it is deliberately self-contained (no repo includes).
#include <cstdint>
#include <string>

namespace vstream::fixture {

// Each of these is shared across every session world in a process and must
// be flagged.
int g_sessions_started = 0;
std::uint64_t g_bytes_total{0};
static double g_last_rate = 0.0;
const char* g_phase_name = "buffering";  // pointee const, pointer mutable

// thread_local does not share across workers, but leaks state between
// successive worlds on the same worker thread: flagged too.
thread_local int t_scratch = 0;

// A waiver with a reason silences the pass for exactly that line.
int g_waived_counter = 0;  // vstream-ast-lint: allow(mutable-global): fixture proves waiver parsing works

// None of the following may be flagged.
const int kMaxSessions = 4096;
constexpr double kTargetRate = 2.5e6;
const char* const kServiceName = "netflix";
static const std::string kCdnHost{"cdn.example"};

struct SessionCounters {
  // Non-static members are per-instance, per-world state: clean.
  std::uint64_t bytes_delivered{0};
  int rebuffer_events{0};
  // A mutable static data member is process-wide: flagged.
  static int live_instances;
  // Class-scope constants are clean.
  static constexpr int kMaxRetries = 5;
};

int session_serial() {
  // Function-local statics persist across worlds: flagged.
  static int serial = 0;
  static const int kBase = 1000;  // clean: immutable
  return kBase + ++serial;
}

}  // namespace vstream::fixture
