// Span layer, Chrome-trace exporter, and flight recorder.
//
// Covers the full observability episode path: RAII span lifecycle
// (open/close nesting, marks, moves, teardown truncation via close_all),
// JSONL round-trips, the Chrome trace-event golden rendering, the
// flight-recorder ring with its dump-on-abandon and dump-on-contract
// triggers, and the determinism contract that an armed run fingerprints
// identically to an unobserved one.
//
// This target is pinned to VSTREAM_CHECK_LEVEL=1 in CMakeLists so the
// contract-hook test still fires when the tree builds with checks off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "check/contracts.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/context.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "streaming/scenarios.hpp"
#include "streaming/session.hpp"
#include "streaming/session_builder.hpp"

namespace vstream::obs {
namespace {

using sim::SimTime;

// One observed world: a simulator with an ObsContext attached and a ring
// sink listening, so open_span() hands out live handles.
struct ObservedSim {
  ObservedSim() {
    sim.set_obs(&obs);
    obs.trace().attach(&sink);
  }

  std::vector<SpanRecord> spans() const { return sink.collect<SpanRecord>(); }

  sim::Simulator sim;
  ObsContext obs;
  RingBufferSink sink{256};
};

// ---- span lifecycle ------------------------------------------------------

TEST(SpanTest, InertHandlesAndUnobservedWorldsAreNoOps) {
  Span inert;
  EXPECT_FALSE(inert.active());
  inert.mark();
  inert.close("ignored");  // must not crash or emit anywhere

  // No ObsContext at all: the fast path returns an inert handle.
  sim::Simulator bare;
  Span from_bare = open_span(bare, SpanCategory::kFetch, "fetch");
  EXPECT_FALSE(from_bare.active());

  // Context attached but no sink listening: still inert, and the tracer
  // never even allocates a slot.
  sim::Simulator sim;
  ObsContext obs;
  sim.set_obs(&obs);
  Span unobserved = open_span(sim, SpanCategory::kPlayer, "buffering");
  EXPECT_FALSE(unobserved.active());
  EXPECT_EQ(obs.spans().spans_opened(), 0u);
  EXPECT_EQ(obs.trace().events_emitted(), 0u);
}

TEST(SpanTest, LifecycleEmitsOneRecordWithSimTimes) {
  ObservedSim w;
  Span span;
  w.sim.schedule_at(SimTime::from_seconds(1.0), [&] {
    span = open_span(w.sim, SpanCategory::kFetch, "fetch", 42);
    EXPECT_TRUE(span.active());
  });
  w.sim.schedule_at(SimTime::from_seconds(2.0), [&] { span.mark(); });
  w.sim.schedule_at(SimTime::from_seconds(3.5), [&] { span.close("complete"); });
  w.sim.run();

  EXPECT_FALSE(span.active());
  EXPECT_EQ(w.obs.spans().open_spans(), 0u);
  EXPECT_EQ(w.obs.spans().spans_opened(), 1u);
  const auto spans = w.spans();
  ASSERT_EQ(spans.size(), 1u);
  const SpanRecord& r = spans[0];
  EXPECT_DOUBLE_EQ(r.t_begin_s, 1.0);
  EXPECT_DOUBLE_EQ(r.t_mark_s, 2.0);
  EXPECT_DOUBLE_EQ(r.t_end_s, 3.5);
  EXPECT_EQ(r.span_id, 1u);
  EXPECT_EQ(r.id, 42u);
  EXPECT_EQ(r.depth, 0u);
  EXPECT_EQ(r.category, "fetch");
  EXPECT_EQ(r.name, "fetch");
  EXPECT_EQ(r.detail, "complete");
}

TEST(SpanTest, MarkFirstCallWins) {
  ObservedSim w;
  Span span;
  w.sim.schedule_at(SimTime::from_seconds(1.0), [&] {
    span = open_span(w.sim, SpanCategory::kTcp, "rto_recovery");
  });
  w.sim.schedule_at(SimTime::from_seconds(2.0), [&] { span.mark(); });
  w.sim.schedule_at(SimTime::from_seconds(4.0), [&] { span.mark(); });  // ignored
  w.sim.schedule_at(SimTime::from_seconds(5.0), [&] { span.close(); });
  w.sim.run();

  const auto spans = w.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].t_mark_s, 2.0);
  EXPECT_TRUE(spans[0].detail.empty());
}

TEST(SpanTest, NestingRecordsDepthAtOpenAndMonotonicIds) {
  ObservedSim w;
  w.sim.schedule_at(SimTime::from_seconds(1.0), [&] {
    Span outer = open_span(w.sim, SpanCategory::kPlayer, "steady");
    Span inner = open_span(w.sim, SpanCategory::kFetch, "fetch");
    EXPECT_EQ(w.obs.spans().open_spans(), 2u);
    inner.close("complete");
    outer.close("complete");
  });
  w.sim.run();

  const auto spans = w.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Close order: inner first.
  EXPECT_EQ(spans[0].name, "fetch");
  EXPECT_EQ(spans[0].span_id, 2u);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "steady");
  EXPECT_EQ(spans[1].span_id, 1u);
  EXPECT_EQ(spans[1].depth, 0u);
}

TEST(SpanTest, DestructorClosesImplicitly) {
  ObservedSim w;
  w.sim.schedule_at(SimTime::from_seconds(2.0), [&] {
    Span span = open_span(w.sim, SpanCategory::kLink, "blackout");
    EXPECT_TRUE(span.active());
    // falls out of scope without close(): the RAII close emits once
  });
  w.sim.run();

  const auto spans = w.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].t_begin_s, 2.0);
  EXPECT_DOUBLE_EQ(spans[0].t_end_s, 2.0);
  EXPECT_TRUE(spans[0].detail.empty());
  EXPECT_EQ(w.obs.spans().open_spans(), 0u);
}

TEST(SpanTest, MoveTransfersOwnershipWithoutDoubleEmit) {
  ObservedSim w;
  w.sim.schedule_at(SimTime::from_seconds(1.0), [&] {
    Span a = open_span(w.sim, SpanCategory::kFetch, "fetch");
    Span b{std::move(a)};
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): moved-from is inert by contract
    EXPECT_TRUE(b.active());

    // Move-assign onto an open span closes the target first.
    Span c = open_span(w.sim, SpanCategory::kFetch, "fetch2");
    c = std::move(b);
    EXPECT_TRUE(c.active());
    c.close("complete");
  });
  w.sim.run();

  const auto spans = w.spans();
  ASSERT_EQ(spans.size(), 2u);  // fetch2 closed by assignment, fetch closed explicitly
  EXPECT_EQ(spans[0].name, "fetch2");
  EXPECT_EQ(spans[1].name, "fetch");
  EXPECT_EQ(spans[1].detail, "complete");
}

TEST(SpanTest, CloseAllTruncatesInOpenOrderAndInvalidatesHandles) {
  ObservedSim w;
  Span first;
  Span second;
  w.sim.schedule_at(SimTime::from_seconds(1.0), [&] {
    first = open_span(w.sim, SpanCategory::kPlayer, "steady");
    second = open_span(w.sim, SpanCategory::kFetch, "fetch");
  });
  w.sim.schedule_at(SimTime::from_seconds(9.0), [&] {
    // Teardown flush: both still open, emitted in span_id order.
    EXPECT_EQ(w.obs.spans().close_all("capture_end"), 2u);
    EXPECT_EQ(w.obs.spans().open_spans(), 0u);
  });
  w.sim.run();

  const auto spans = w.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "steady");
  EXPECT_EQ(spans[1].name, "fetch");
  EXPECT_EQ(spans[0].detail, "capture_end");
  EXPECT_EQ(spans[1].detail, "capture_end");

  // The outstanding handles were invalidated: destruction / explicit close
  // must not emit a second record.
  EXPECT_FALSE(first.active());
  EXPECT_FALSE(second.active());
  first.close("late");
  second = Span{};
  EXPECT_EQ(w.spans().size(), 2u);
}

TEST(SpanTest, EmitCompleteRetroEmitsFinishedEpisode) {
  ObservedSim w;
  w.sim.schedule_at(SimTime::from_seconds(5.0), [&] {
    emit_span(w.sim, 3.25, SpanCategory::kTcp, "zero_window", 7, "reopened");
  });
  w.sim.run();

  const auto spans = w.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].t_begin_s, 3.25);
  EXPECT_DOUBLE_EQ(spans[0].t_end_s, 5.0);
  EXPECT_LT(spans[0].t_mark_s, 0.0);
  EXPECT_EQ(spans[0].category, "tcp");
  EXPECT_EQ(spans[0].id, 7u);
  EXPECT_EQ(spans[0].detail, "reopened");
}

TEST(SpanTest, RebindingWithOpenSpansThrows) {
  ObservedSim w;
  sim::Simulator other;
  Span span;
  w.sim.schedule_at(SimTime::from_seconds(1.0), [&] {
    span = open_span(w.sim, SpanCategory::kSim, "run");
    EXPECT_THROW(w.obs.spans().bind(other), std::logic_error);
    span.close();
    w.obs.spans().bind(other);  // fine once nothing is open
  });
  w.sim.run();
}

// ---- JSONL round-trip ----------------------------------------------------

TEST(SpanJsonlTest, SpanRecordRoundTripsThroughJsonl) {
  SpanRecord r;
  r.t_begin_s = 1.5;
  r.t_end_s = 3.25;
  r.t_mark_s = 2.0;
  r.span_id = 7;
  r.id = 42;
  r.depth = 1;
  r.category = "fetch";
  r.name = "fetch";
  r.detail = "complete";

  const std::string line = to_jsonl(TraceEvent{r});
  EXPECT_EQ(jsonl_string(line, "type"), "span");
  const auto back = from_jsonl(line);
  ASSERT_TRUE(back.has_value());
  const auto* rb = std::get_if<SpanRecord>(&*back);
  ASSERT_NE(rb, nullptr);
  EXPECT_DOUBLE_EQ(rb->t_begin_s, r.t_begin_s);
  EXPECT_DOUBLE_EQ(rb->t_end_s, r.t_end_s);
  EXPECT_DOUBLE_EQ(rb->t_mark_s, r.t_mark_s);
  EXPECT_EQ(rb->span_id, r.span_id);
  EXPECT_EQ(rb->id, r.id);
  EXPECT_EQ(rb->depth, r.depth);
  EXPECT_EQ(rb->category, r.category);
  EXPECT_EQ(rb->name, r.name);
  EXPECT_EQ(rb->detail, r.detail);
}

TEST(SpanJsonlTest, FetchRetryRoundTripsThroughJsonl) {
  FetchRetry retry;
  retry.t_s = 12.5;
  retry.attempt = 3;
  retry.backoff_s = 0.8;
  retry.remaining_bytes = 123456;
  retry.gave_up = true;

  const auto back = from_jsonl(to_jsonl(TraceEvent{retry}));
  ASSERT_TRUE(back.has_value());
  const auto* rb = std::get_if<FetchRetry>(&*back);
  ASSERT_NE(rb, nullptr);
  EXPECT_DOUBLE_EQ(rb->t_s, 12.5);
  EXPECT_EQ(rb->attempt, 3u);
  EXPECT_DOUBLE_EQ(rb->backoff_s, 0.8);
  EXPECT_EQ(rb->remaining_bytes, 123456u);
  EXPECT_TRUE(rb->gave_up);
  EXPECT_FALSE(from_jsonl("{\"type\":\"unknown_event\"}").has_value());
  EXPECT_FALSE(from_jsonl("not json at all").has_value());
}

// ---- Chrome trace-event exporter -----------------------------------------

TEST(ChromeTraceTest, SpanRendersAsGoldenAsyncPair) {
  SpanRecord r;
  r.t_begin_s = 1.5;
  r.t_end_s = 3.25;
  r.t_mark_s = 2.0;
  r.span_id = 7;
  r.id = 42;
  r.depth = 1;
  r.category = "fetch";
  r.name = "fetch";
  r.detail = "complete";

  ChromeTraceWriter writer;
  writer.add(TraceEvent{r});
  EXPECT_EQ(writer.rows(), 3u);  // begin + mark instant + end

  // Byte-exact golden: the writer's formatting is pinned (fixed %.3f
  // microsecond timestamps) so this stays stable across platforms.
  const std::string expected =
      "{\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"fetch\"}},\n"
      "{\"ph\":\"b\",\"pid\":1,\"tid\":2,\"cat\":\"fetch\",\"id\":7,\"name\":\"fetch\","
      "\"ts\":1500000.000,\"args\":{\"detail\":\"complete\",\"domain_id\":42,\"depth\":1}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":2000000.000,\"s\":\"t\","
      "\"name\":\"fetch.mark\",\"args\":{\"span_id\":7}},\n"
      "{\"ph\":\"e\",\"pid\":1,\"tid\":2,\"cat\":\"fetch\",\"id\":7,\"name\":\"fetch\","
      "\"ts\":3250000.000}"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(writer.to_json(), expected);
}

TEST(ChromeTraceTest, PointProbesRenderAndZeroWindowIsSkipped) {
  ChromeTraceWriter writer;
  TcpCwndSample cwnd;
  cwnd.t_s = 1.0;
  cwnd.connection_id = 3;
  cwnd.cwnd = 14600;
  writer.add(TraceEvent{cwnd});
  writer.add(TraceEvent{PlayerStall{2.0, 1}});
  FetchRetry abandon;
  abandon.t_s = 3.0;
  abandon.attempt = 5;
  abandon.gave_up = true;
  writer.add(TraceEvent{abandon});
  EXPECT_EQ(writer.rows(), 3u);

  // The zero-window point probe is rendered by its retro-emitted span
  // instead; the writer must drop it rather than draw the episode twice.
  writer.add(TraceEvent{ZeroWindowEpisode{4.0, 3, "client#3", 0.5}});
  EXPECT_EQ(writer.rows(), 3u);

  const std::string json = writer.to_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("cwnd conn3"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stall\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fetch_abandoned\""), std::string::npos);
}

TEST(ChromeTraceTest, SinkWritesFileOnceAndCloseIsIdempotent) {
  const std::string path = ::testing::TempDir() + "chrome_trace_sink_test.json";
  {
    TraceBus bus;
    ChromeTraceSink sink{path};
    bus.attach(&sink);
    SpanRecord r;
    r.t_begin_s = 0.5;
    r.t_end_s = 1.0;
    r.category = "player";
    r.name = "buffering";
    r.span_id = 1;
    bus.emit(TraceEvent{r});
    EXPECT_EQ(sink.writer().rows(), 2u);
    EXPECT_TRUE(sink.close());
    EXPECT_TRUE(sink.close());  // idempotent; destructor will no-op too
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string content{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  EXPECT_EQ(content.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(content.find("\"name\":\"buffering\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- flight recorder -----------------------------------------------------

TEST(FlightRecorderTest, RingKeepsMostRecentEventsOnly) {
  FlightRecorder::Options opt;
  opt.capacity = 3;
  opt.arm_contract_hook = false;
  FlightRecorder recorder{opt};
  TraceBus bus;
  bus.attach(&recorder);
  for (int i = 1; i <= 5; ++i) {
    bus.emit(TraceEvent{PlayerStall{static_cast<double>(i), static_cast<std::uint32_t>(i)}});
  }
  ASSERT_EQ(recorder.buffered().size(), 3u);
  EXPECT_EQ(std::get<PlayerStall>(recorder.buffered().front()).stall_count, 3u);
  EXPECT_EQ(std::get<PlayerStall>(recorder.buffered().back()).stall_count, 5u);
  EXPECT_EQ(recorder.dumps_written(), 0u);

  FlightRecorder::Options zero;
  zero.capacity = 0;
  EXPECT_THROW(FlightRecorder{zero}, std::invalid_argument);
}

TEST(FlightRecorderTest, FetchAbandonTriggersDumpWithHeaderAndTail) {
  const std::string path = ::testing::TempDir() + "flight_dump_abandon_test.jsonl";
  FlightRecorder::Options opt;
  opt.capacity = 8;
  opt.dump_path = path;
  opt.arm_contract_hook = false;
  FlightRecorder recorder{opt};
  TraceBus bus;
  bus.attach(&recorder);

  bus.emit(TraceEvent{PlayerStall{1.0, 1}});
  FetchRetry retry;
  retry.t_s = 2.0;
  retry.attempt = 2;
  bus.emit(TraceEvent{retry});  // plain retry: no dump yet
  EXPECT_EQ(recorder.dumps_written(), 0u);

  retry.t_s = 3.0;
  retry.attempt = 3;
  retry.gave_up = true;
  bus.emit(TraceEvent{retry});
  EXPECT_EQ(recorder.dumps_written(), 1u);

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // header + 3 buffered events
  EXPECT_EQ(jsonl_string(lines[0], "type"), "flight_dump");
  EXPECT_NE(jsonl_string(lines[0], "reason")->find("fetch abandoned after attempt 3"),
            std::string::npos);
  EXPECT_EQ(jsonl_number(lines[0], "events"), 3.0);
  // The tail is ordinary JSONL: the same parser the trace tooling uses.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_TRUE(from_jsonl(lines[i]).has_value()) << lines[i];
  }
  EXPECT_EQ(jsonl_number(lines.back(), "gave_up"), 1.0);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ContractViolationTriggersDumpAndHookIsRestored) {
  const std::string path = ::testing::TempDir() + "flight_dump_contract_test.jsonl";
  // Stand-in for whatever hook was installed before the recorder: it must
  // be dormant while the recorder is alive and restored afterwards.
  std::size_t outer_hook_calls = 0;
  const check::ViolationHook original = check::set_violation_hook(
      [&outer_hook_calls](const check::ContractViolation&) { ++outer_hook_calls; });
  {
    FlightRecorder::Options opt;
    opt.capacity = 4;
    opt.dump_path = path;
    FlightRecorder recorder{opt};
    TraceBus bus;
    bus.attach(&recorder);
    bus.emit(TraceEvent{PlayerStall{1.0, 1}});

    EXPECT_THROW(VSTREAM_INVARIANT(1 + 1 == 3, "arithmetic broke"), check::ContractViolation);
    EXPECT_EQ(recorder.dumps_written(), 1u);
    EXPECT_EQ(outer_hook_calls, 0u);

    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(jsonl_string(header, "type"), "flight_dump");
    EXPECT_NE(jsonl_string(header, "reason")->find("arithmetic broke"), std::string::npos);
    EXPECT_EQ(jsonl_number(header, "events"), 1.0);
  }
  // Recorder gone: the previous hook is back in place.
  EXPECT_THROW(VSTREAM_INVARIANT(false, "after recorder"), check::ContractViolation);
  EXPECT_EQ(outer_hook_calls, 1u);
  check::set_violation_hook(original);
  std::remove(path.c_str());
}

// ---- end-to-end session spans --------------------------------------------

// iPad-YouTube world: the successive ranged fetches go through
// FetchManager (fetch spans) while the player runs its phase machine
// (player spans) — both instrumented subsystems fire in one session.
streaming::SessionConfig observed_session_config() {
  video::VideoMeta meta;
  meta.id = "span-e2e";
  meta.duration_s = 600.0;
  meta.encoding_bps = 2e6;
  meta.container = video::Container::kHtml5;
  return streaming::SessionBuilder{}
      .vantage(net::Vantage::kResearch)
      .service(streaming::Service::kYouTube)
      .container(video::Container::kHtml5)
      .application(streaming::Application::kIosNative)
      .video(meta)
      .capture_duration_s(60.0)
      .seed(23)
      .build();
}

TEST(SessionSpanTest, SessionEmitsEpisodeSpansAndTruncatesAtTeardown) {
  RingBufferSink sink{8192};
  auto cfg = observed_session_config();
  cfg.trace_sink = &sink;
  const auto result = streaming::run_session(cfg);

  const auto spans = sink.collect<SpanRecord>();
  ASSERT_FALSE(spans.empty());

  std::set<std::string> categories;
  std::set<std::uint64_t> ids;
  bool saw_capture_end = false;
  for (const auto& s : spans) {
    categories.insert(s.category);
    EXPECT_TRUE(ids.insert(s.span_id).second) << "duplicate span_id " << s.span_id;
    EXPECT_LE(s.t_begin_s, s.t_end_s);
    if (s.detail == "capture_end") saw_capture_end = true;
  }
  // The fetch lifecycle and the player phase machine are both instrumented.
  EXPECT_TRUE(categories.count("fetch")) << "no fetch span";
  EXPECT_TRUE(categories.count("player")) << "no player span";

  // The player is mid-phase when the capture window closes, so teardown
  // truncation must have flushed at least one span and recorded the count.
  const double truncated = result.metrics.gauges.at("obs.spans_truncated");
  EXPECT_GE(truncated, 1.0);
  EXPECT_TRUE(saw_capture_end);
}

// ---- determinism: armed vs unobserved ------------------------------------

TEST(SpanDeterminismTest, ArmedRunFingerprintsIdenticallyToUnobserved) {
  // Spans read sim-time and emit; they never schedule or touch RNG. An
  // armed run must therefore be bit-identical to an unobserved twin.
  const auto cfg = observed_session_config();
  const auto unobserved = streaming::fingerprint_session(cfg);
  RingBufferSink sink{4096};
  const auto armed = streaming::fingerprint_session(cfg, &sink);

  EXPECT_GT(sink.total_seen(), 0u) << "armed run never fired a probe";
  EXPECT_EQ(unobserved, armed);
  EXPECT_GT(armed.sim_events, 0u);
  EXPECT_GT(armed.bytes_downloaded, 0u);
}

}  // namespace
}  // namespace vstream::obs
