// Unit and property tests for the statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "stats/cdf.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

namespace vstream::stats {
namespace {

TEST(DescriptiveTest, MeanAndVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, EmptyAndSingleton) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(mean(one), 3.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_THROW((void)min(empty), std::invalid_argument);
  EXPECT_THROW((void)quantile(empty, 0.5), std::invalid_argument);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_THROW((void)quantile(xs, 1.5), std::invalid_argument);
}

TEST(DescriptiveTest, PerfectCorrelation) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 2.0);
  }
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  for (auto& y : ys) y = -y;
  EXPECT_NEAR(pearson_correlation(xs, ys), -1.0, 1e-12);
}

TEST(DescriptiveTest, ConstantSeriesHasZeroCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(xs, ys), 0.0);
}

TEST(DescriptiveTest, CorrelationSizeMismatchThrows) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0};
  EXPECT_THROW((void)pearson_correlation(xs, ys), std::invalid_argument);
}

TEST(DescriptiveTest, LinearFitRecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i * 0.1);
    ys.push_back(2.5 * i * 0.1 - 1.0);
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(OnlineStatsTest, MatchesBatchComputation) {
  std::mt19937 gen{1234};
  std::normal_distribution<double> d{10.0, 3.0};
  std::vector<double> xs;
  OnlineStats acc;
  for (int i = 0; i < 5000; ++i) {
    const double x = d(gen);
    xs.push_back(x);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(acc.min(), min(xs));
  EXPECT_DOUBLE_EQ(acc.max(), max(xs));
  EXPECT_EQ(acc.count(), xs.size());
}

TEST(OnlineStatsTest, MergeEquivalentToCombined) {
  std::mt19937 gen{99};
  std::uniform_real_distribution<double> d{0.0, 1.0};
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = d(gen);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(CdfTest, EvaluatesStepFunction) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf{xs};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(CdfTest, InverseIsMonotone) {
  std::mt19937 gen{5};
  std::exponential_distribution<double> d{1.0};
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(d(gen));
  double prev = cdf.inverse(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double x = cdf.inverse(q);
    EXPECT_GE(x, prev);
    prev = x;
  }
}

TEST(CdfTest, InverseRoundTrip) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  const EmpiricalCdf cdf{xs};
  EXPECT_DOUBLE_EQ(cdf.inverse(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 30.0);
}

TEST(CdfTest, PointsCoverAllSamples) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const EmpiricalCdf cdf{xs};
  const auto pts = cdf.points();
  ASSERT_EQ(pts.size(), 3U);
  EXPECT_DOUBLE_EQ(pts.front().x, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 3.0);
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

TEST(CdfTest, SampledGridHasRequestedResolution) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const EmpiricalCdf cdf{xs};
  const auto grid = cdf.sampled(0.0, 4.0, 5);
  ASSERT_EQ(grid.size(), 5U);
  EXPECT_DOUBLE_EQ(grid.front().x, 0.0);
  EXPECT_DOUBLE_EQ(grid.back().x, 4.0);
  EXPECT_DOUBLE_EQ(grid.front().f, 0.0);
  EXPECT_DOUBLE_EQ(grid.back().f, 1.0);
}

TEST(CdfTest, EmptyCdfThrows) {
  const EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_THROW((void)cdf.at(1.0), std::logic_error);
  EXPECT_THROW((void)cdf.inverse(0.5), std::logic_error);
}

TEST(HistogramTest, BinsAndOverflow) {
  Histogram h{0.0, 10.0, 10};
  h.add(-1.0);
  h.add(0.5);
  h.add(5.5);
  h.add(9.99);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 2U);
  EXPECT_EQ(h.total(), 6U);
  EXPECT_EQ(h.count_in_bin(0), 1U);
  EXPECT_EQ(h.count_in_bin(5), 1U);
  EXPECT_EQ(h.count_in_bin(9), 1U);
}

TEST(HistogramTest, ModeFindsPeak) {
  Histogram h{0.0, 100.0, 10};
  for (int i = 0; i < 50; ++i) h.add(64.0 + (i % 3));
  for (int i = 0; i < 5; ++i) h.add(20.0);
  EXPECT_NEAR(h.mode(), 65.0, 5.0);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), std::invalid_argument);
}

TEST(HistogramTest, RenderProducesLinePerBin) {
  Histogram h{0.0, 4.0, 4};
  h.add(1.0);
  h.add(1.2);
  h.add(3.0);
  const std::string art = h.render(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

// Property sweep: quantile(q) of a uniform grid is close to q itself.
class QuantileProperty : public ::testing::TestWithParam<double> {};

TEST_P(QuantileProperty, UniformGridQuantileMatches) {
  std::vector<double> xs;
  for (int i = 0; i <= 1000; ++i) xs.push_back(static_cast<double>(i) / 1000.0);
  const double q = GetParam();
  EXPECT_NEAR(quantile(xs, q), q, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileProperty,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0));

// Property: CDF at its own inverse returns at least q.
class CdfInverseProperty : public ::testing::TestWithParam<double> {};

TEST_P(CdfInverseProperty, AtInverseCoversQ) {
  std::mt19937 gen{77};
  std::lognormal_distribution<double> d{0.0, 1.0};
  EmpiricalCdf cdf;
  for (int i = 0; i < 500; ++i) cdf.add(d(gen));
  const double q = GetParam();
  EXPECT_GE(cdf.at(cdf.inverse(q)) + 1e-9, q);
}

INSTANTIATE_TEST_SUITE_P(InverseSweep, CdfInverseProperty,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8, 0.95));

}  // namespace
}  // namespace vstream::stats
