// Tests for the streamed sweep path: per-worker accumulators must aggregate
// exactly what the materializing path returns, and the order-independent
// sweep digest must be invariant across worker counts and process sharding
// — the property the sharded capacity planner's merge check rests on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "runner/parallel_sweep.hpp"
#include "runner/session_sweep.hpp"
#include "streaming/scenarios.hpp"
#include "streaming/session_builder.hpp"

namespace vstream::runner {
namespace {

/// Same shape as the ParallelSweep tests' sweep: short distinct sessions.
streaming::SessionConfig sweep_config(std::size_t i) {
  video::VideoMeta meta;
  meta.id = "streamed-sweep-test";
  meta.duration_s = 120.0;
  meta.encoding_bps = 1.0e6 + 1.0e5 * static_cast<double>(i % 7);
  meta.container = i % 2 == 0 ? video::Container::kFlash : video::Container::kHtml5;
  return streaming::SessionBuilder{}
      .vantage(net::Vantage::kResearch)
      .video(meta)
      .container(meta.container)
      .capture_duration_s(6.0)
      .seed(7000 + i)
      .build();
}

std::vector<streaming::SessionConfig> sweep_configs(std::size_t n) {
  std::vector<streaming::SessionConfig> configs;
  for (std::size_t i = 0; i < n; ++i) configs.push_back(sweep_config(i));
  return configs;
}

TEST(SweepDigestTest, OrderIndependentButIndexAndValueSensitive) {
  SweepDigest forward;
  forward.add(0, 111, 5);
  forward.add(1, 222, 6);
  SweepDigest backward;
  backward.add(1, 222, 6);
  backward.add(0, 111, 5);
  EXPECT_EQ(forward, backward);  // schedule order cannot matter

  SweepDigest swapped_index;
  swapped_index.add(1, 111, 5);
  swapped_index.add(0, 222, 6);
  EXPECT_NE(forward.combined, swapped_index.combined);  // index is part of the word

  SweepDigest different_value;
  different_value.add(0, 112, 5);
  different_value.add(1, 222, 6);
  EXPECT_NE(forward.combined, different_value.combined);
}

TEST(SessionSweepTest, StreamedAggregateMatchesMaterializedResults) {
  const auto configs = sweep_configs(6);
  const ParallelSweep pool{2};
  const SweepAccumulator streamed = run_sessions_streamed(pool, configs);

  const auto results = pool.run_sessions(configs);
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
  std::uint64_t connections = 0;
  std::size_t max_pending = 0;
  for (const auto& r : results) {
    bytes += r.bytes_downloaded;
    events += r.sim_events;
    connections += r.connections;
    max_pending = std::max(max_pending, r.sim_max_events_pending);
  }

  EXPECT_EQ(streamed.sessions, configs.size());
  EXPECT_EQ(streamed.digest.sessions, configs.size());
  EXPECT_EQ(streamed.bytes_downloaded, bytes);
  EXPECT_EQ(streamed.sim_events, events);
  EXPECT_EQ(streamed.connections, connections);
  EXPECT_EQ(streamed.max_events_pending, max_pending);
  EXPECT_GT(streamed.mean_download_rate_bps(), 0.0);
}

TEST(SessionSweepTest, StreamedDigestMatchesPerSessionFingerprints) {
  const auto configs = sweep_configs(5);
  const SweepAccumulator streamed = run_sessions_streamed(ParallelSweep{2}, configs);

  // The streamed path must fingerprint each session exactly the way
  // fingerprint_session does (world digest + fold_outcome) — same words,
  // same XOR combine.
  SweepDigest expected;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto fp = streaming::fingerprint_session(configs[i]);
    expected.add(i, fp.digest, fp.words_mixed);
  }
  EXPECT_EQ(streamed.digest, expected);
}

TEST(SessionSweepTest, DigestInvariantAcrossWorkerCountsAndSharding) {
  constexpr std::size_t kCount = 8;
  const auto make = [](std::size_t g) { return sweep_config(g); };

  const SweepAccumulator serial = run_sessions_streamed(ParallelSweep{1}, 0, kCount, make);
  const SweepAccumulator parallel = run_sessions_streamed(ParallelSweep{4}, 0, kCount, make);
  EXPECT_EQ(parallel.digest, serial.digest);
  EXPECT_EQ(parallel.sessions, serial.sessions);
  EXPECT_EQ(parallel.bytes_downloaded, serial.bytes_downloaded);
  EXPECT_EQ(parallel.sim_events, serial.sim_events);

  // Process sharding: contiguous halves, each carrying its global offset.
  SweepAccumulator merged = run_sessions_streamed(ParallelSweep{2}, 0, kCount / 2, make);
  const SweepAccumulator hi = run_sessions_streamed(ParallelSweep{3}, kCount / 2,
                                                    kCount - kCount / 2, make);
  merged.merge(hi);
  EXPECT_EQ(merged.digest, serial.digest);
  EXPECT_EQ(merged.sessions, serial.sessions);
  EXPECT_EQ(merged.bytes_downloaded, serial.bytes_downloaded);
  EXPECT_EQ(merged.sim_events, serial.sim_events);
  EXPECT_EQ(merged.rebuffer_count, serial.rebuffer_count);
  EXPECT_EQ(merged.max_events_pending, serial.max_events_pending);
}

TEST(SessionSweepTest, ShardJsonRoundTrips) {
  const SweepAccumulator out = run_sessions_streamed(ParallelSweep{2}, 3, 4,
                                                     [](std::size_t g) { return sweep_config(g); });
  const std::string path = ::testing::TempDir() + "session_sweep_shard_test.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    const std::string json = out.to_json("round-trip", /*shard=*/1, /*shards=*/2,
                                         /*first=*/3, /*count=*/4);
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  std::size_t shard = 0;
  std::size_t shards = 0;
  std::size_t first = 0;
  std::size_t count = 0;
  const SweepAccumulator in = SweepAccumulator::from_json_file(path, shard, shards, first, count);
  std::remove(path.c_str());

  EXPECT_EQ(shard, 1u);
  EXPECT_EQ(shards, 2u);
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(in.digest, out.digest);
  EXPECT_EQ(in.sessions, out.sessions);
  EXPECT_EQ(in.bytes_downloaded, out.bytes_downloaded);
  EXPECT_EQ(in.sim_events, out.sim_events);
  EXPECT_EQ(in.connections, out.connections);
  EXPECT_EQ(in.rebuffer_count, out.rebuffer_count);
  EXPECT_EQ(in.fetch_retries, out.fetch_retries);
  EXPECT_EQ(in.interrupted_sessions, out.interrupted_sessions);
  EXPECT_EQ(in.max_events_pending, out.max_events_pending);
  // %.17g round-trips binary64 exactly — bit equality, not approximate.
  EXPECT_EQ(in.download_rate_bps_sum, out.download_rate_bps_sum);
  EXPECT_EQ(in.encoding_bps_estimated_sum, out.encoding_bps_estimated_sum);
  EXPECT_EQ(in.stall_time_s_sum, out.stall_time_s_sum);

  EXPECT_THROW(
      {
        std::size_t s0 = 0;
        std::size_t s1 = 0;
        std::size_t f0 = 0;
        std::size_t c0 = 0;
        (void)SweepAccumulator::from_json_file("/nonexistent/shard.json", s0, s1, f0, c0);
      },
      std::runtime_error);
}

TEST(SessionSweepTest, EmptySweepIsWellFormed) {
  const SweepAccumulator empty = run_sessions_streamed(
      ParallelSweep{4}, 0, 0, [](std::size_t) -> streaming::SessionConfig {
        throw std::logic_error{"must not be called"};
      });
  EXPECT_EQ(empty.sessions, 0u);
  EXPECT_EQ(empty.digest.combined, 0u);
  EXPECT_EQ(empty.mean_download_rate_bps(), 0.0);

  SweepAccumulator merged;
  merged.merge(empty);
  EXPECT_EQ(merged.sessions, 0u);
}

}  // namespace
}  // namespace vstream::runner
