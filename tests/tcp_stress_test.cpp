// Stress and property tests for the TCP implementation: loss sweeps,
// bursty-loss sweeps, bidirectional transfer, many parallel connections,
// tiny buffers, FIN under loss, and pathological reader patterns. The
// invariants: bytes are conserved, connections never wedge, and the
// retransmission overhead stays proportionate to the loss rate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/path.hpp"
#include "net/profile.hpp"
#include "sim/periodic_timer.hpp"
#include "tcp/connection.hpp"

namespace vstream::tcp {
namespace {

using net::Vantage;
using sim::Duration;
using sim::SimTime;

struct Harness {
  explicit Harness(net::NetworkProfile profile, std::uint64_t seed)
      : rng{seed}, path{sim, profile, rng}, fabric{sim, path} {}
  sim::Simulator sim;
  sim::Rng rng;
  net::Path path;
  tcp::Fabric fabric;
};

net::NetworkProfile profile_with(double loss, double burst = 1.0, double down_bps = 50e6) {
  auto p = net::profile_for(Vantage::kResearch);
  p.loss_rate = loss;
  p.loss_burst_len = burst;
  p.down_bps = down_bps;
  return p;
}

struct LossCase {
  double loss;
  double burst;
};

class LossSweep : public ::testing::TestWithParam<LossCase> {};

TEST_P(LossSweep, TransferCompletesWithBoundedOverhead) {
  const auto [loss, burst] = GetParam();
  Harness h{profile_with(loss, burst), 424242};
  auto& conn = h.fabric.create_connection({}, {});
  constexpr std::uint64_t kBytes = 3'000'000;
  conn.client().set_on_established([&] {
    conn.server().send(kBytes);
    conn.server().close();
  });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(600.0));

  EXPECT_EQ(conn.client().total_read(), kBytes);
  EXPECT_TRUE(conn.client().at_eof());
  const double overhead = conn.server().stats().retransmission_fraction();
  // Generous bound: wire loss + recovery duplication stays within ~8x p.
  EXPECT_LT(overhead, std::max(0.02, 8.0 * loss)) << "loss " << loss << " burst " << burst;
}

INSTANTIATE_TEST_SUITE_P(Rates, LossSweep,
                         ::testing::Values(LossCase{0.0, 1.0}, LossCase{0.001, 1.0},
                                           LossCase{0.005, 1.0}, LossCase{0.01, 1.0},
                                           LossCase{0.03, 1.0}, LossCase{0.01, 4.0},
                                           LossCase{0.03, 4.0}, LossCase{0.05, 6.0}),
                         [](const ::testing::TestParamInfo<LossCase>& info) {
                           const auto promille = static_cast<int>(info.param.loss * 1000);
                           const auto burst = static_cast<int>(info.param.burst);
                           return "loss" + std::to_string(promille) + "burst" +
                                  std::to_string(burst);
                         });

TEST(TcpStressTest, BidirectionalTransfer) {
  Harness h{profile_with(0.002), 7};
  auto& conn = h.fabric.create_connection({}, {});
  constexpr std::uint64_t kDown = 2'000'000;
  constexpr std::uint64_t kUp = 500'000;
  conn.client().set_on_established([&] {
    conn.server().send(kDown);
    conn.client().send(kUp);
  });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.server().set_on_readable([&] { (void)conn.server().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(120.0));
  EXPECT_EQ(conn.client().total_read(), kDown);
  EXPECT_EQ(conn.server().total_read(), kUp);
}

TEST(TcpStressTest, ManyParallelConnectionsAllComplete) {
  Harness h{profile_with(0.005, 3.0, 30e6), 99};
  constexpr int kConns = 12;
  constexpr std::uint64_t kBytes = 400'000;
  std::vector<Connection*> conns;
  for (int i = 0; i < kConns; ++i) {
    auto& c = h.fabric.create_connection({}, {});
    c.client().set_on_established([&c] { c.server().send(kBytes); });
    c.client().set_on_readable([&c] { (void)c.client().read(UINT64_MAX); });
    conns.push_back(&c);
    c.open();
  }
  h.sim.run_until(SimTime::from_seconds(300.0));
  for (auto* c : conns) {
    EXPECT_EQ(c->client().total_read(), kBytes) << "connection " << c->id();
  }
}

TEST(TcpStressTest, TinyReceiveBufferStillCompletes) {
  TcpOptions copts;
  copts.recv_buffer_bytes = 4 * 1460;  // four segments
  Harness h{profile_with(0.002), 3};
  auto& conn = h.fabric.create_connection(copts, {});
  constexpr std::uint64_t kBytes = 500'000;
  conn.client().set_on_established([&] { conn.server().send(kBytes); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(300.0));
  EXPECT_EQ(conn.client().total_read(), kBytes);
}

TEST(TcpStressTest, FinDeliveredUnderLoss) {
  Harness h{profile_with(0.02, 3.0), 11};
  auto& conn = h.fabric.create_connection({}, {});
  bool eof_seen = false;
  conn.client().set_on_established([&] {
    conn.server().send(200'000);
    conn.server().close();
  });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.client().set_on_peer_fin([&] { eof_seen = true; });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(300.0));
  EXPECT_TRUE(eof_seen);
  EXPECT_EQ(conn.client().total_read(), 200'000U);
  EXPECT_EQ(conn.server().state(), TcpState::kFinished);
}

TEST(TcpStressTest, StopAndGoReaderNeverWedges) {
  // Reader alternates: drain for 1 s, sleep 3 s (zero-window churn).
  TcpOptions copts;
  copts.recv_buffer_bytes = 128 * 1024;
  Harness h{profile_with(0.005, 3.0), 21};
  auto& conn = h.fabric.create_connection(copts, {});
  constexpr std::uint64_t kBytes = 4'000'000;
  conn.client().set_on_established([&] { conn.server().send(kBytes); });
  bool reading = false;
  conn.client().set_on_readable([&] {
    if (reading) (void)conn.client().read(UINT64_MAX);
  });
  sim::PeriodicTimer toggler{h.sim, Duration::seconds(1.0), [&] {
                               reading = !reading;
                               if (reading) (void)conn.client().read(UINT64_MAX);
                             }};
  toggler.start();
  conn.open();
  h.sim.run_until(SimTime::from_seconds(600.0));
  toggler.stop();
  (void)conn.client().read(UINT64_MAX);
  h.sim.run_until(SimTime::from_seconds(700.0));
  (void)conn.client().read(UINT64_MAX);
  EXPECT_EQ(conn.client().total_read(), kBytes);
}

TEST(TcpStressTest, SlowTrickleReaderMatchesConfiguredRate) {
  // A reader draining 10 kB every 100 ms caps goodput at ~0.8 Mbps.
  TcpOptions copts;
  copts.recv_buffer_bytes = 64 * 1024;
  Harness h{profile_with(0.0), 31};
  auto& conn = h.fabric.create_connection(copts, {});
  conn.client().set_on_established([&] { conn.server().send(10'000'000); });
  sim::PeriodicTimer reader{h.sim, Duration::millis(100),
                            [&] { (void)conn.client().read(10'000); }};
  reader.start();
  conn.open();
  h.sim.run_until(SimTime::from_seconds(100.0));
  reader.stop();
  const double rate = conn.client().total_read() * 8.0 / 100.0;
  EXPECT_NEAR(rate, 0.8e6, 0.1e6);
}

TEST(TcpStressTest, SequentialTransfersOnOneConnection) {
  // Request/response cycles: 20 rounds of 100 kB with idle gaps between —
  // the connection-reuse pattern of the Netflix persistent mode.
  Harness h{profile_with(0.003), 41};
  auto& conn = h.fabric.create_connection({}, {});
  int rounds_done = 0;
  std::uint64_t expect_read = 0;
  conn.client().set_on_established([&] { conn.server().send(100'000); });
  conn.client().set_on_readable([&] {
    (void)conn.client().read(UINT64_MAX);
    if (conn.client().total_read() >= expect_read + 100'000) {
      expect_read += 100'000;
      ++rounds_done;
      if (rounds_done < 20) {
        // Idle 2 s, then next burst.
        h.sim.schedule_after(Duration::seconds(2.0), [&] { conn.server().send(100'000); });
      }
    }
  });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(300.0));
  EXPECT_EQ(rounds_done, 20);
  EXPECT_EQ(conn.client().total_read(), 20U * 100'000);
}

TEST(TcpStressTest, CwndSurvivesIdleByDefaultEvenWithLoss) {
  Harness h{profile_with(0.002), 51};
  auto& conn = h.fabric.create_connection({}, {});
  conn.client().set_on_established([&] { conn.server().send(2'000'000); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(30.0));
  ASSERT_EQ(conn.client().total_read(), 2'000'000U);
  const auto cwnd_before_idle = conn.server().cwnd_bytes();
  h.sim.run_until(SimTime::from_seconds(90.0));  // 60 s idle
  EXPECT_EQ(conn.server().cwnd_bytes(), cwnd_before_idle);
}

TEST(TcpStressTest, StatsAreInternallyConsistent) {
  Harness h{profile_with(0.01, 4.0), 61};
  auto& conn = h.fabric.create_connection({}, {});
  constexpr std::uint64_t kBytes = 2'000'000;
  conn.client().set_on_established([&] { conn.server().send(kBytes); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(300.0));
  const auto& s = conn.server().stats();
  EXPECT_EQ(s.bytes_sent, kBytes);  // first transmissions only
  EXPECT_EQ(conn.client().stats().bytes_received, kBytes);
  EXPECT_GE(s.segments_sent,
            kBytes / conn.server().options().mss);  // at least ceil(bytes/mss)
  EXPECT_GT(s.acks_received, 0U);
  EXPECT_GT(s.last_srtt_s, 0.0);
  EXPECT_LT(s.last_srtt_s, 1.0);
}

}  // namespace
}  // namespace vstream::tcp
