// Tests for the TCP endpoint/connection implementation: handshake, bulk
// transfer, flow control (zero window), congestion control reactions to
// loss, retransmission accounting, tags, FIN handling, idle restart.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/path.hpp"
#include "sim/periodic_timer.hpp"
#include "net/profile.hpp"
#include "tcp/connection.hpp"

namespace vstream::tcp {
namespace {

using net::Direction;
using net::LinkEvent;
using net::TcpFlag;
using net::TcpSegment;
using net::Vantage;
using sim::Duration;
using sim::Rng;
using sim::SimTime;
using sim::Simulator;

struct Harness {
  explicit Harness(net::NetworkProfile profile, std::uint64_t seed = 42)
      : rng{seed}, path{sim, profile, rng}, fabric{sim, path} {}

  explicit Harness(Vantage v = Vantage::kResearch, std::uint64_t seed = 42)
      : Harness{net::profile_for(v), seed} {}

  Simulator sim;
  Rng rng;
  net::Path path;
  Fabric fabric;
};

net::NetworkProfile lossless_profile() {
  auto p = net::profile_for(Vantage::kResearch);
  p.loss_rate = 0.0;
  return p;
}

TEST(TcpHandshakeTest, EstablishesBothSides) {
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  bool client_up = false;
  bool server_up = false;
  conn.client().set_on_established([&] { client_up = true; });
  conn.server().set_on_established([&] { server_up = true; });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(1.0));
  EXPECT_TRUE(client_up);
  EXPECT_TRUE(server_up);
  EXPECT_EQ(conn.client().state(), TcpState::kEstablished);
  EXPECT_EQ(conn.server().state(), TcpState::kEstablished);
}

TEST(TcpHandshakeTest, TakesRoughlyOneRtt) {
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  double established_at = -1.0;
  conn.client().set_on_established([&] { established_at = h.sim.now().to_seconds(); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(1.0));
  const double rtt = h.path.unloaded_rtt().to_seconds();
  EXPECT_GT(established_at, 0.9 * rtt);
  EXPECT_LT(established_at, 2.0 * rtt);
}

TEST(TcpHandshakeTest, SurvivesSynAckLoss) {
  // Force the first few down-path packets to be lost with certainty by a
  // tiny queue: SYN-ACK always fits, so use a 100%-loss then recovering
  // model instead -> simplest deterministic approach: drop via loss_rate=1
  // is permanent, so emulate loss by a queue that only fits zero segments
  // is also permanent. Instead verify RTO-driven SYN retransmission by
  // making the server deaf for a while (do not create it until later is
  // not possible) -> use loss_rate high but finite and a long runtime.
  auto p = lossless_profile();
  p.loss_rate = 0.9;
  Harness h{p, 7};
  auto& conn = h.fabric.create_connection({}, {});
  bool client_up = false;
  conn.client().set_on_established([&] { client_up = true; });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(120.0));
  EXPECT_TRUE(client_up);  // handshake eventually completes despite loss
  EXPECT_GT(conn.client().stats().timeouts + conn.server().stats().timeouts, 0U);
}

TEST(TcpTransferTest, BulkTransferDeliversAllBytes) {
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  constexpr std::uint64_t kBytes = 1'000'000;
  conn.client().set_on_established([&] { conn.server().send(kBytes); });
  // Client drains everything as it arrives (bulk download).
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(30.0));
  EXPECT_EQ(conn.client().total_read(), kBytes);
  EXPECT_EQ(conn.server().unacked_bytes(), 0U);
}

TEST(TcpTransferTest, ThroughputApproachesBottleneck) {
  auto p = lossless_profile();
  p.down_bps = 10e6;
  Harness h{p};
  auto& conn = h.fabric.create_connection({}, {});
  constexpr std::uint64_t kBytes = 5'000'000;  // 4 s at 10 Mbps
  double done_at = -1.0;
  conn.client().set_on_established([&] { conn.server().send(kBytes); });
  conn.client().set_on_readable([&] {
    (void)conn.client().read(UINT64_MAX);
    if (conn.client().total_read() == kBytes && done_at < 0) done_at = h.sim.now().to_seconds();
  });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(60.0));
  ASSERT_GT(done_at, 0.0);
  const double goodput = kBytes * 8.0 / done_at;
  EXPECT_GT(goodput, 0.75 * p.down_bps);   // efficient
  EXPECT_LT(goodput, 1.01 * p.down_bps);   // not faster than the wire
}

TEST(TcpTransferTest, TransfersWithLossComplete) {
  auto p = lossless_profile();
  p.loss_rate = 0.02;
  p.down_bps = 20e6;
  Harness h{p, 99};
  auto& conn = h.fabric.create_connection({}, {});
  constexpr std::uint64_t kBytes = 2'000'000;
  conn.client().set_on_established([&] { conn.server().send(kBytes); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(120.0));
  EXPECT_EQ(conn.client().total_read(), kBytes);
  EXPECT_GT(conn.server().stats().bytes_retransmitted, 0U);
  EXPECT_GT(conn.server().stats().fast_retransmits + conn.server().stats().timeouts, 0U);
}

TEST(TcpTransferTest, RetransmissionFractionTracksLossRate) {
  auto p = lossless_profile();
  p.loss_rate = 0.01;
  p.down_bps = 20e6;
  Harness h{p, 1234};
  auto& conn = h.fabric.create_connection({}, {});
  constexpr std::uint64_t kBytes = 10'000'000;
  conn.client().set_on_established([&] { conn.server().send(kBytes); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(300.0));
  ASSERT_EQ(conn.client().total_read(), kBytes);
  const double frac = conn.server().stats().retransmission_fraction();
  EXPECT_GT(frac, 0.004);
  EXPECT_LT(frac, 0.05);
}

TEST(TcpFlowControlTest, ZeroWindowStallsSender) {
  auto p = lossless_profile();
  TcpOptions client_opts;
  client_opts.recv_buffer_bytes = 64 * 1024;
  Harness h{p};
  auto& conn = h.fabric.create_connection(client_opts, {});
  conn.client().set_on_established([&] { conn.server().send(10'000'000); });
  // Client never reads: the server must stop after filling the window.
  conn.open();
  h.sim.run_until(SimTime::from_seconds(5.0));
  EXPECT_LE(conn.client().available(), client_opts.recv_buffer_bytes);
  EXPECT_LE(conn.server().stats().bytes_sent,
            client_opts.recv_buffer_bytes + 2ULL * 1460);
  EXPECT_EQ(conn.client().advertised_window(), 0U);
}

TEST(TcpFlowControlTest, WindowUpdateResumesTransfer) {
  auto p = lossless_profile();
  TcpOptions client_opts;
  client_opts.recv_buffer_bytes = 64 * 1024;
  Harness h{p};
  auto& conn = h.fabric.create_connection(client_opts, {});
  constexpr std::uint64_t kBytes = 512 * 1024;
  conn.client().set_on_established([&] { conn.server().send(kBytes); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(2.0));
  ASSERT_EQ(conn.client().advertised_window(), 0U);

  // Pull-throttled client: read 64 kB every 100 ms.
  sim::PeriodicTimer reader{h.sim, Duration::millis(100),
                            [&] { (void)conn.client().read(64 * 1024); }};
  reader.start();
  h.sim.run_until(SimTime::from_seconds(10.0));
  reader.stop();
  EXPECT_EQ(conn.client().total_read(), kBytes);
}

TEST(TcpFlowControlTest, ReceiveWindowReflectsUnreadData) {
  auto p = lossless_profile();
  TcpOptions client_opts;
  client_opts.recv_buffer_bytes = 100 * 1024;
  Harness h{p};
  auto& conn = h.fabric.create_connection(client_opts, {});
  conn.client().set_on_established([&] { conn.server().send(50 * 1024); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(2.0));
  EXPECT_EQ(conn.client().available(), 50U * 1024);
  EXPECT_EQ(conn.client().advertised_window(), 50U * 1024);
  (void)conn.client().read(10 * 1024);
  EXPECT_EQ(conn.client().advertised_window(), 60U * 1024);
}

TEST(TcpCongestionTest, SlowStartGrowsExponentially) {
  auto p = lossless_profile();
  p.down_bps = 1e9;  // no bottleneck: pure slow start
  Harness h{p};
  TcpOptions server_opts;
  server_opts.initial_cwnd_segments = 2;
  auto& conn = h.fabric.create_connection({}, server_opts);
  conn.client().set_on_established([&] { conn.server().send(4'000'000); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  const std::uint64_t cwnd0 = conn.server().cwnd_bytes();
  const double rtt = h.path.unloaded_rtt().to_seconds();
  h.sim.run_until(SimTime::from_seconds(rtt * 4));
  EXPECT_GE(conn.server().cwnd_bytes(), cwnd0 * 4);
}

TEST(TcpCongestionTest, LossReducesCwnd) {
  auto p = lossless_profile();
  p.down_bps = 50e6;
  p.loss_rate = 0.01;
  Harness h{p, 5};
  auto& conn = h.fabric.create_connection({}, {});
  conn.client().set_on_established([&] { conn.server().send(20'000'000); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(20.0));
  // After experiencing loss, ssthresh must have come down from "infinity".
  EXPECT_LT(conn.server().ssthresh_bytes(), 100'000'000ULL);
  EXPECT_GT(conn.server().stats().fast_retransmits + conn.server().stats().timeouts, 0U);
}

TEST(TcpCloseTest, FinReachesPeerAndSignalsEof) {
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  bool fin_seen = false;
  conn.client().set_on_established([&] {
    conn.server().send(10'000);
    conn.server().close();
  });
  conn.client().set_on_peer_fin([&] { fin_seen = true; });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(5.0));
  EXPECT_TRUE(fin_seen);
  EXPECT_EQ(conn.client().total_read(), 10'000U);
  EXPECT_TRUE(conn.client().at_eof());
  EXPECT_EQ(conn.server().state(), TcpState::kFinished);
}

TEST(TcpCloseTest, SendAfterCloseThrows) {
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  conn.server().close();
  EXPECT_THROW(conn.server().send(100), std::logic_error);
}

TEST(TcpTagTest, TagsArriveInStreamOrderAtReadTime) {
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  conn.client().set_on_established([&] {
    conn.server().send(1000, std::string{"header"});
    conn.server().send(5000, std::string{"body"});
  });
  std::vector<std::string> seen;
  conn.client().set_on_readable([&] {
    auto r = conn.client().read(UINT64_MAX);
    for (auto& t : r.tags) seen.push_back(std::any_cast<std::string>(t));
  });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(5.0));
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], "header");
  EXPECT_EQ(seen[1], "body");
}

TEST(TcpTagTest, TagNotDeliveredUntilFullMessageRead) {
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  conn.client().set_on_established([&] { conn.server().send(1000, std::string{"msg"}); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(2.0));
  auto r1 = conn.client().read(500);
  EXPECT_EQ(r1.bytes, 500U);
  EXPECT_TRUE(r1.tags.empty());
  auto r2 = conn.client().read(500);
  EXPECT_EQ(r2.bytes, 500U);
  ASSERT_EQ(r2.tags.size(), 1U);
  EXPECT_EQ(std::any_cast<std::string>(r2.tags[0]), "msg");
}

TEST(TcpTagTest, ClientToServerTagsWork) {
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  conn.client().set_on_established([&] { conn.client().send(200, std::string{"GET"}); });
  std::string seen;
  conn.server().set_on_readable([&] {
    auto r = conn.server().read(UINT64_MAX);
    if (!r.tags.empty()) seen = std::any_cast<std::string>(r.tags[0]);
  });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(2.0));
  EXPECT_EQ(seen, "GET");
}

TEST(TcpIdleRestartTest, CwndPersistsAcrossIdleByDefault) {
  // The paper's Fig 9 observation: streaming servers send whole blocks
  // back-to-back after an OFF period, i.e. cwnd is NOT reset after idle.
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  conn.client().set_on_established([&] { conn.server().send(500'000); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(5.0));
  const auto cwnd_before = conn.server().cwnd_bytes();
  ASSERT_GT(cwnd_before, 10ULL * 1460);
  // 10 s idle OFF period, then another block.
  h.sim.run_until(SimTime::from_seconds(15.0));
  conn.server().send(64 * 1024);
  h.sim.run_until(SimTime::from_seconds(15.1));
  EXPECT_GE(conn.server().cwnd_bytes(), cwnd_before);
}

TEST(TcpIdleRestartTest, Rfc5681ResetShrinksCwndAfterIdle) {
  Harness h{lossless_profile()};
  TcpOptions server_opts;
  server_opts.reset_cwnd_after_idle = true;
  auto& conn = h.fabric.create_connection({}, server_opts);
  conn.client().set_on_established([&] { conn.server().send(500'000); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(5.0));
  ASSERT_GT(conn.server().cwnd_bytes(), 10ULL * 1460);
  h.sim.run_until(SimTime::from_seconds(15.0));
  conn.server().send(64 * 1024);
  h.sim.run_until(SimTime::from_seconds(15.001));
  // Restart window = initial cwnd (10 segments by default) + growth from
  // at most a handful of acks in the first millisecond.
  EXPECT_LE(conn.server().cwnd_bytes(), 12ULL * 1460);
}

TEST(TcpFabricTest, ParallelConnectionsShareBottleneck) {
  auto p = lossless_profile();
  p.down_bps = 10e6;
  Harness h{p};
  constexpr int kConns = 4;
  constexpr std::uint64_t kBytes = 1'000'000;
  std::vector<Connection*> conns;
  for (int i = 0; i < kConns; ++i) {
    auto& c = h.fabric.create_connection({}, {});
    c.client().set_on_established([&c] { c.server().send(kBytes); });
    c.client().set_on_readable([&c] { (void)c.client().read(UINT64_MAX); });
    conns.push_back(&c);
    c.open();
  }
  h.sim.run_until(SimTime::from_seconds(60.0));
  std::uint64_t total = 0;
  for (auto* c : conns) total += c->client().total_read();
  EXPECT_EQ(total, kBytes * kConns);
  EXPECT_EQ(h.fabric.connection_count(), static_cast<std::size_t>(kConns));
}

TEST(TcpFabricTest, SequentialConnectionsIndependent) {
  Harness h{lossless_profile()};
  auto& c1 = h.fabric.create_connection({}, {});
  c1.client().set_on_established([&] {
    c1.server().send(1000);
    c1.server().close();
  });
  c1.client().set_on_readable([&] { (void)c1.client().read(UINT64_MAX); });
  c1.open();
  h.sim.run_until(SimTime::from_seconds(5.0));
  ASSERT_EQ(c1.client().total_read(), 1000U);

  auto& c2 = h.fabric.create_connection({}, {});
  c2.client().set_on_established([&] { c2.server().send(2000); });
  c2.client().set_on_readable([&] { (void)c2.client().read(UINT64_MAX); });
  c2.open();
  h.sim.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(c2.client().total_read(), 2000U);
  EXPECT_NE(c1.id(), c2.id());
}

// Property sweep: transfers complete across all vantage profiles.
class TcpVantageProperty : public ::testing::TestWithParam<Vantage> {};

TEST_P(TcpVantageProperty, TransferCompletesOnProfile) {
  Harness h{GetParam(), 2024};
  auto& conn = h.fabric.create_connection({}, {});
  constexpr std::uint64_t kBytes = 1'000'000;
  conn.client().set_on_established([&] { conn.server().send(kBytes); });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(120.0));
  EXPECT_EQ(conn.client().total_read(), kBytes) << net::vantage_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllVantages, TcpVantageProperty,
                         ::testing::ValuesIn(net::kAllVantages),
                         [](const ::testing::TestParamInfo<Vantage>& info) {
                           return std::string{net::vantage_name(info.param)};
                         });

// Property sweep: delivered bytes equal sent bytes for varying sizes.
class TcpSizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpSizeProperty, ExactByteConservation) {
  Harness h{lossless_profile()};
  auto& conn = h.fabric.create_connection({}, {});
  const std::uint64_t bytes = GetParam();
  conn.client().set_on_established([&] {
    conn.server().send(bytes);
    conn.server().close();
  });
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(60.0));
  EXPECT_EQ(conn.client().total_read(), bytes);
  EXPECT_TRUE(conn.client().at_eof());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpSizeProperty,
                         ::testing::Values(1ULL, 100ULL, 1460ULL, 1461ULL, 65536ULL, 1'000'000ULL));

}  // namespace
}  // namespace vstream::tcp
