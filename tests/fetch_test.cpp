// Focused tests for the FetchManager: queueing discipline on the
// persistent connection, interleaved fresh fetches, stop() mid-transfer,
// and byte accounting across modes.
#include <gtest/gtest.h>

#include "net/path.hpp"
#include "net/profile.hpp"
#include "streaming/fetch.hpp"

namespace vstream::streaming {
namespace {

using sim::SimTime;

struct Wire {
  Wire() : rng{9}, path{sim, profile(), rng}, fabric{sim, path} {}
  static net::NetworkProfile profile() {
    auto p = net::profile_for(net::Vantage::kResearch);
    p.loss_rate = 0.0;
    return p;
  }
  sim::Simulator sim;
  sim::Rng rng;
  net::Path path;
  tcp::Fabric fabric;
};

video::VideoMeta big_video() {
  video::VideoMeta v;
  v.id = "fetch";
  v.duration_s = 3600.0;
  v.encoding_bps = 3e6;
  return v;
}

TEST(FetchTest, PersistentFetchesCompleteInFifoOrder) {
  Wire w;
  FetchManager fm{w.sim, w.fabric, big_video(), {}, {}};
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    fm.fetch_range_persistent(
        http::ByteRange{static_cast<std::uint64_t>(i) * 500'000,
                        static_cast<std::uint64_t>(i) * 500'000 + 499'999},
        {}, [&order, i] { order.push_back(i); });
  }
  w.sim.run_until(SimTime::from_seconds(30.0));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(fm.connections_opened(), 1U);
  EXPECT_EQ(fm.body_bytes_fetched(), 4U * 500'000);
}

TEST(FetchTest, PersistentQueueDrainsWhenFedFromCompletion) {
  // The Netflix pattern: each completion schedules the next fetch.
  Wire w;
  FetchManager fm{w.sim, w.fabric, big_video(), {}, {}};
  int done = 0;
  std::function<void()> next = [&] {
    if (++done >= 5) return;
    fm.fetch_range_persistent(http::ByteRange{0, 99'999}, {}, next);
  };
  fm.fetch_range_persistent(http::ByteRange{0, 99'999}, {}, next);
  w.sim.run_until(SimTime::from_seconds(30.0));
  EXPECT_EQ(done, 5);
  EXPECT_EQ(fm.connections_opened(), 1U);
}

TEST(FetchTest, FreshAndPersistentModesCoexist) {
  Wire w;
  FetchManager fm{w.sim, w.fabric, big_video(), {}, {}};
  int fresh_done = 0;
  int persistent_done = 0;
  fm.fetch_range(http::ByteRange{0, 199'999}, {}, [&] { ++fresh_done; });
  fm.fetch_range_persistent(http::ByteRange{0, 199'999}, {}, [&] { ++persistent_done; });
  fm.fetch_range(http::ByteRange{200'000, 399'999}, {}, [&] { ++fresh_done; });
  w.sim.run_until(SimTime::from_seconds(30.0));
  EXPECT_EQ(fresh_done, 2);
  EXPECT_EQ(persistent_done, 1);
  EXPECT_EQ(fm.connections_opened(), 3U);  // 2 fresh + 1 persistent
}

TEST(FetchTest, SinkSeesExactlyBodyBytes) {
  Wire w;
  FetchManager fm{w.sim, w.fabric, big_video(), {}, {}};
  std::uint64_t sunk = 0;
  bool done = false;
  fm.fetch_range(http::ByteRange{0, 777'776}, [&](std::uint64_t n) { sunk += n; },
                 [&] { done = true; });
  w.sim.run_until(SimTime::from_seconds(30.0));
  EXPECT_TRUE(done);
  EXPECT_EQ(sunk, 777'777U);  // HTTP head bytes excluded
}

TEST(FetchTest, StopMidTransferHaltsProgress) {
  auto profile = Wire::profile();
  profile.down_bps = 2e6;  // slow, so we can stop mid-flight
  sim::Simulator sim;
  sim::Rng rng{4};
  net::Path path{sim, profile, rng};
  tcp::Fabric fabric{sim, path};
  FetchManager fm{sim, fabric, big_video(), {}, {}};
  bool done = false;
  fm.fetch_range(http::ByteRange{0, 9'999'999}, {}, [&] { done = true; });
  sim.run_until(SimTime::from_seconds(2.0));
  EXPECT_FALSE(done);
  fm.stop();
  const auto bytes_at_stop = fm.body_bytes_fetched();
  sim.run_until(SimTime::from_seconds(60.0));
  EXPECT_FALSE(done);
  EXPECT_EQ(fm.body_bytes_fetched(), bytes_at_stop);
}

TEST(FetchTest, ConcurrentFreshFetchesShareTheBottleneck) {
  auto profile = Wire::profile();
  profile.down_bps = 10e6;
  sim::Simulator sim;
  sim::Rng rng{5};
  net::Path path{sim, profile, rng};
  tcp::Fabric fabric{sim, path};
  FetchManager fm{sim, fabric, big_video(), {}, {}};
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    fm.fetch_range(http::ByteRange{static_cast<std::uint64_t>(i) * 1'000'000,
                                   static_cast<std::uint64_t>(i) * 1'000'000 + 999'999},
                   {}, [&] { ++done; });
  }
  sim.run_until(SimTime::from_seconds(60.0));
  EXPECT_EQ(done, 4);
  // 4 MB at 10 Mbps is ~3.4 s; with sharing overhead all done well within
  // the window, and total bytes are exact.
  EXPECT_EQ(fm.body_bytes_fetched(), 4'000'000U);
}

}  // namespace
}  // namespace vstream::streaming
