// Unit tests for the discrete-event engine, time types and RNG streams.
#include <gtest/gtest.h>

#include <vector>

#include "check/contracts.hpp"
#include "sim/periodic_timer.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace vstream::sim {
namespace {

TEST(DurationTest, ConstructionAndConversion) {
  EXPECT_EQ(Duration::millis(5).count_nanos(), 5'000'000);
  EXPECT_EQ(Duration::micros(7).count_nanos(), 7'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(1.5).to_seconds(), 1.5);
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((Duration::zero() - Duration::millis(1)).is_negative());
}

TEST(DurationTest, Arithmetic) {
  const auto a = Duration::millis(100);
  const auto b = Duration::millis(50);
  EXPECT_EQ((a + b).count_nanos(), Duration::millis(150).count_nanos());
  EXPECT_EQ((a - b).count_nanos(), Duration::millis(50).count_nanos());
  EXPECT_EQ((a * std::int64_t{3}).count_nanos(), Duration::millis(300).count_nanos());
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_LT(b, a);
}

TEST(DurationTest, ScalingByDouble) {
  const auto a = Duration::seconds(2.0);
  EXPECT_NEAR((a * 0.25).to_seconds(), 0.5, 1e-12);
}

TEST(SimTimeTest, Arithmetic) {
  const auto t = SimTime::from_seconds(10.0);
  EXPECT_DOUBLE_EQ((t + Duration::seconds(5.0)).to_seconds(), 15.0);
  EXPECT_DOUBLE_EQ((t - SimTime::from_seconds(4.0)).to_seconds(), 6.0);
  EXPECT_LT(SimTime::zero(), t);
}

TEST(TransmissionTimeTest, BasicRates) {
  // 1500 bytes at 12 Mbps = 1 ms.
  EXPECT_NEAR(transmission_time(1500, 12e6).to_seconds(), 0.001, 1e-9);
  EXPECT_EQ(transmission_time(100, 0.0), Duration::max());
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_seconds(3.0), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::from_seconds(1.0), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::from_seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3U);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::from_seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_after(Duration::seconds(1.0), [&] {
    sim.schedule_after(Duration::seconds(2.0), [&] { fired_at = sim.now().to_seconds(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(SimulatorTest, RunUntilStopsAtLimit) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::from_seconds(1.0), [&] { ++fired; });
  sim.schedule_at(SimTime::from_seconds(5.0), [&] { ++fired; });
  const auto n = sim.run_until(SimTime::from_seconds(2.0));
  EXPECT_EQ(n, 1U);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  auto h = sim.schedule_after(Duration::seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, MaxEventsPendingTracksQueueHighWater) {
  Simulator sim;
  EXPECT_EQ(sim.max_events_pending(), 0u);
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime::from_seconds(1.0 + i), [] {});
  }
  EXPECT_EQ(sim.events_pending(), 5u);
  EXPECT_EQ(sim.max_events_pending(), 5u);
  sim.run();
  // Draining the queue does not lower the high-water mark...
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.max_events_pending(), 5u);
  // ...and a shallower refill does not raise it.
  sim.schedule_after(Duration::seconds(1.0), [] {});
  sim.run();
  EXPECT_EQ(sim.max_events_pending(), 5u);
}

#if VSTREAM_CHECK_LEVEL >= 1
TEST(SimulatorTest, PastScheduleViolatesContract) {
  // schedule_at is strict: a past absolute time is a caller bug, not a
  // request to run "now" (schedule_after keeps the clamping semantics).
  Simulator sim;
  bool checked = false;
  sim.schedule_at(SimTime::from_seconds(5.0), [&] {
    EXPECT_THROW(sim.schedule_at(SimTime::from_seconds(1.0), [] {}),
                 check::ContractViolation);
    checked = true;
  });
  sim.run();
  EXPECT_TRUE(checked);
}
#endif

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule_at(SimTime::from_seconds(5.0), [&] {
    sim.schedule_after(Duration::seconds(-3.0),
                       [&] { EXPECT_GE(sim.now().to_seconds(), 5.0); });
  });
  sim.run();
}

TEST(SimulatorTest, EmptyCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(SimTime::zero(), {}), std::invalid_argument);
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<double> times;
  PeriodicTimer timer{sim, Duration::seconds(1.0), [&] { times.push_back(sim.now().to_seconds()); }};
  timer.start();
  sim.run_until(SimTime::from_seconds(3.5));
  timer.stop();
  ASSERT_EQ(times.size(), 3U);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 3.0);
}

TEST(PeriodicTimerTest, StopFromInsideCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTimer* self = nullptr;
  PeriodicTimer timer{sim, Duration::seconds(1.0), [&] {
                        if (++count == 2) self->stop();
                      }};
  self = &timer;
  timer.start();
  sim.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimerTest, PeriodChangeTakesEffect) {
  Simulator sim;
  std::vector<double> times;
  PeriodicTimer timer{sim, Duration::seconds(1.0), [&] { times.push_back(sim.now().to_seconds()); }};
  timer.start();
  sim.schedule_at(SimTime::from_seconds(1.5), [&] { timer.set_period(Duration::seconds(2.0)); });
  sim.run_until(SimTime::from_seconds(6.0));
  timer.stop();
  // Fires at 1 and 2 (already scheduled), then the 2 s period applies: 4, 6.
  ASSERT_GE(times.size(), 3U);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(times[2], 4.0);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent{42};
  Rng c1 = parent.fork("alpha");
  Rng c2 = parent.fork("beta");
  bool any_diff = false;
  for (int i = 0; i < 32; ++i) {
    if (c1.uniform(0, 1) != c2.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng{7};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMeanApproximatesInverseRate) {
  Rng rng{11};
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng{13};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng{17};
  const std::vector<double> w{1.0, 3.0};
  int count1 = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (rng.weighted_index(w) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / kN, 0.75, 0.03);
}

TEST(RngTest, InvalidArgumentsThrow) {
  Rng rng{1};
  EXPECT_THROW((void)rng.uniform(3.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.pareto(0.0, 1.0), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW((void)rng.weighted_index(empty), std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)rng.weighted_index(zeros), std::invalid_argument);
}

}  // namespace
}  // namespace vstream::sim
