// Unit tests for fault-injection dynamics: ImpairmentSchedule validation
// edge cases, Link behaviour under each window kind, schedule/capture
// boundary conditions, and the seeded random generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "net/dynamics.hpp"
#include "net/link.hpp"
#include "net/loss_model.hpp"
#include "net/segment.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace vstream::net {
namespace {

using sim::Duration;
using sim::Rng;
using sim::SimTime;
using sim::Simulator;

TcpSegment make_data_segment(std::uint32_t payload, std::uint64_t seq = 0) {
  TcpSegment s;
  s.seq = seq;
  s.payload_bytes = payload;
  s.flags = TcpFlag::kAck;
  return s;
}

SimTime at_s(double s) { return SimTime::from_seconds(s); }
Duration for_s(double s) { return Duration::seconds(s); }

// ---- schedule validation --------------------------------------------------

TEST(ImpairmentScheduleTest, EmptyScheduleIsValidAndHarmless) {
  ImpairmentSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_NO_THROW(schedule.validate());

  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 8e6, .prop_delay = Duration::zero(), .queue_limit_bytes = 100000};
  Link link{sim, cfg, nullptr, rng};
  int delivered = 0;
  link.set_receiver([&](const TcpSegment&) { ++delivered; });
  link.set_impairments(schedule);
  link.send(make_data_segment(960));
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(link.counters().dropped_fault, 0U);
  EXPECT_EQ(link.counters().fault_windows, 0U);
}

TEST(ImpairmentScheduleTest, ZeroDurationBlackoutIsLegalNoOp) {
  ImpairmentSchedule schedule;
  schedule.blackout(at_s(0.5), Duration::zero());
  EXPECT_NO_THROW(schedule.validate());

  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 8e6, .prop_delay = Duration::zero(), .queue_limit_bytes = 100000};
  Link link{sim, cfg, nullptr, rng};
  int delivered = 0;
  link.set_receiver([&](const TcpSegment&) { ++delivered; });
  link.set_impairments(schedule);
  // The begin/end transitions fire back-to-back at t=0.5; a segment sent
  // afterwards must ride a healthy link.
  sim.schedule_at(at_s(1.0), [&] { link.send(make_data_segment(960)); });
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(link.blackout_active());
  EXPECT_EQ(link.counters().dropped_fault, 0U);
}

TEST(ImpairmentScheduleTest, SameKindOverlapRejected) {
  ImpairmentSchedule schedule;
  schedule.blackout(at_s(1.0), for_s(2.0)).blackout(at_s(2.0), for_s(2.0));
  EXPECT_THROW(schedule.validate(), std::invalid_argument);

  // Link::set_impairments validates too, so a bad schedule can't arm.
  Simulator sim;
  Rng rng{1};
  Link link{sim, Link::Config{}, nullptr, rng};
  EXPECT_THROW(link.set_impairments(schedule), std::invalid_argument);
}

TEST(ImpairmentScheduleTest, HalfOpenWindowsMayTouch) {
  // [1, 3) followed by [3, 5): the end of one is the start of the next.
  ImpairmentSchedule schedule;
  schedule.rate_scale(at_s(1.0), for_s(2.0), 0.5).rate_scale(at_s(3.0), for_s(2.0), 0.25);
  EXPECT_NO_THROW(schedule.validate());
}

TEST(ImpairmentScheduleTest, DifferentKindsMayOverlap) {
  ImpairmentSchedule schedule;
  schedule.rate_scale(at_s(1.0), for_s(4.0), 0.5)
      .delay_spike(at_s(2.0), for_s(4.0), Duration::millis(50))
      .burst_loss(at_s(3.0), for_s(4.0), 0.1);
  EXPECT_NO_THROW(schedule.validate());
}

TEST(ImpairmentScheduleTest, ParameterRangesEnforced) {
  EXPECT_THROW(ImpairmentSchedule{}.rate_scale(at_s(0), for_s(1), 0.0).validate(),
               std::invalid_argument);
  EXPECT_THROW(ImpairmentSchedule{}.rate_scale(at_s(0), for_s(-1), 0.5).validate(),
               std::invalid_argument);
  EXPECT_THROW(ImpairmentSchedule{}.burst_loss(at_s(0), for_s(1), 1.5).validate(),
               std::invalid_argument);
  EXPECT_THROW(ImpairmentSchedule{}.burst_loss(at_s(0), for_s(1), 0.1, 0.0).validate(),
               std::invalid_argument);
  EXPECT_THROW(ImpairmentSchedule{}.delay_spike(at_s(0), for_s(1), Duration::millis(-5)).validate(),
               std::invalid_argument);
}

TEST(ImpairmentScheduleTest, LinkFlapExpandsToAlternatingBlackouts) {
  ImpairmentSchedule schedule;
  schedule.link_flap(at_s(1.0), for_s(0.5), for_s(1.0), 3);
  EXPECT_NO_THROW(schedule.validate());
  ASSERT_EQ(schedule.windows().size(), 3U);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& w = schedule.windows()[i];
    EXPECT_EQ(w.kind, ImpairmentKind::kBlackout);
    EXPECT_NEAR(w.start.to_seconds(), 1.0 + 1.5 * static_cast<double>(i), 1e-9);
    EXPECT_NEAR(w.duration.to_seconds(), 0.5, 1e-9);
  }
}

// ---- link behaviour under windows -----------------------------------------

TEST(LinkDynamicsTest, BlackoutDropsEverythingThenRecovers) {
  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 8e6, .prop_delay = Duration::zero(), .queue_limit_bytes = 100000};
  Link link{sim, cfg, nullptr, rng};
  int delivered = 0;
  link.set_receiver([&](const TcpSegment&) { ++delivered; });
  std::vector<LinkEvent> events;
  link.set_tap([&](SimTime, const TcpSegment&, LinkEvent e) { events.push_back(e); });

  ImpairmentSchedule schedule;
  schedule.blackout(at_s(1.0), for_s(2.0));
  link.set_impairments(schedule);

  sim.schedule_at(at_s(0.5), [&] { link.send(make_data_segment(960)); });  // healthy
  sim.schedule_at(at_s(2.0), [&] { link.send(make_data_segment(960)); });  // mid-blackout
  sim.schedule_at(at_s(3.5), [&] { link.send(make_data_segment(960)); });  // recovered
  sim.run();

  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.counters().dropped_fault, 1U);
  EXPECT_EQ(link.counters().fault_windows, 1U);
  EXPECT_FALSE(link.blackout_active());
  // The mid-blackout offer surfaces as a kDropFault tap event.
  EXPECT_EQ(std::count(events.begin(), events.end(), LinkEvent::kDropFault), 1);
}

TEST(LinkDynamicsTest, ScheduleEndingMidBlackoutLeavesLinkDown) {
  // The run stops before the blackout's end transition: the link must still
  // be down at the horizon, and nothing after the horizon is required to
  // fire. This is the "schedule ends mid-window" boundary case.
  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 8e6, .prop_delay = Duration::zero(), .queue_limit_bytes = 100000};
  Link link{sim, cfg, nullptr, rng};
  int delivered = 0;
  link.set_receiver([&](const TcpSegment&) { ++delivered; });

  ImpairmentSchedule schedule;
  schedule.blackout(at_s(1.0), for_s(100.0));
  link.set_impairments(schedule);

  sim.schedule_at(at_s(2.0), [&] { link.send(make_data_segment(960)); });
  sim.run_until(at_s(5.0));

  EXPECT_TRUE(link.blackout_active());
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.counters().dropped_fault, 1U);
}

TEST(LinkDynamicsTest, RateScaleHalvesEffectiveRateInsideWindowOnly) {
  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 8e6, .prop_delay = Duration::zero(), .queue_limit_bytes = 100000};
  Link link{sim, cfg, nullptr, rng};
  std::vector<double> arrivals;
  link.set_receiver([&](const TcpSegment&) { arrivals.push_back(sim.now().to_seconds()); });

  ImpairmentSchedule schedule;
  schedule.rate_scale(at_s(1.0), for_s(1.0), 0.5);
  link.set_impairments(schedule);

  // 960-byte payload -> 1000 wire bytes -> 1 ms at 8 Mbps, 2 ms at 4 Mbps.
  sim.schedule_at(at_s(0.5), [&] {
    EXPECT_NEAR(link.effective_rate_bps(), 8e6, 1e-6);
    link.send(make_data_segment(960));
  });
  sim.schedule_at(at_s(1.5), [&] {
    EXPECT_NEAR(link.effective_rate_bps(), 4e6, 1e-6);
    link.send(make_data_segment(960));
  });
  sim.schedule_at(at_s(2.5), [&] {
    EXPECT_NEAR(link.effective_rate_bps(), 8e6, 1e-6);
    link.send(make_data_segment(960));
  });
  sim.run();

  ASSERT_EQ(arrivals.size(), 3U);
  EXPECT_NEAR(arrivals[0], 0.501, 1e-9);
  EXPECT_NEAR(arrivals[1], 1.502, 1e-9);
  EXPECT_NEAR(arrivals[2], 2.501, 1e-9);
}

TEST(LinkDynamicsTest, DelaySpikeAddsPropagationInsideWindow) {
  Simulator sim;
  Rng rng{1};
  Link::Config cfg{.rate_bps = 8e6, .prop_delay = Duration::millis(10),
                   .queue_limit_bytes = 100000};
  Link link{sim, cfg, nullptr, rng};
  std::vector<double> arrivals;
  link.set_receiver([&](const TcpSegment&) { arrivals.push_back(sim.now().to_seconds()); });

  ImpairmentSchedule schedule;
  schedule.delay_spike(at_s(1.0), for_s(1.0), Duration::millis(100));
  link.set_impairments(schedule);

  sim.schedule_at(at_s(0.5), [&] { link.send(make_data_segment(960)); });
  sim.schedule_at(at_s(1.5), [&] { link.send(make_data_segment(960)); });
  sim.schedule_at(at_s(2.5), [&] { link.send(make_data_segment(960)); });
  sim.run();

  ASSERT_EQ(arrivals.size(), 3U);
  EXPECT_NEAR(arrivals[0], 0.511, 1e-9);  // 1 ms serialisation + 10 ms prop
  EXPECT_NEAR(arrivals[1], 1.611, 1e-9);  // + the 100 ms spike
  EXPECT_NEAR(arrivals[2], 2.511, 1e-9);
}

TEST(LinkDynamicsTest, BurstLossOverlayDropsInsideWindowOnly) {
  Simulator sim;
  Rng rng{7};
  Link::Config cfg{.rate_bps = 1e9, .prop_delay = Duration::zero(),
                   .queue_limit_bytes = 100000000};
  Link link{sim, cfg, nullptr, rng};
  int inside = 0;
  int outside = 0;
  link.set_receiver([&](const TcpSegment&) {
    const double t = sim.now().to_seconds();
    (t >= 1.0 && t < 2.0 ? inside : outside) += 1;
  });

  ImpairmentSchedule schedule;
  schedule.burst_loss(at_s(1.0), for_s(1.0), /*rate=*/0.5, /*burst_len=*/4.0);
  link.set_impairments(schedule);

  constexpr int kPerPhase = 200;
  for (int i = 0; i < kPerPhase; ++i) {
    sim.schedule_at(at_s(0.5) + Duration::micros(i), [&] { link.send(make_data_segment(100)); });
    sim.schedule_at(at_s(1.5) + Duration::micros(i), [&] { link.send(make_data_segment(100)); });
    sim.schedule_at(at_s(2.5) + Duration::micros(i), [&] { link.send(make_data_segment(100)); });
  }
  sim.run();

  // No base loss model: everything outside the window survives; inside, the
  // 0.5-rate overlay thins deliveries down (generous statistical bounds).
  EXPECT_EQ(outside, 2 * kPerPhase);
  EXPECT_LT(inside, kPerPhase * 3 / 4);
  EXPECT_GT(inside, kPerPhase / 4);
  EXPECT_EQ(link.counters().dropped_loss, static_cast<std::uint64_t>(kPerPhase - inside));
}

TEST(LinkDynamicsTest, GilbertElliottBaseStaysLiveUnderOverlayAndRunsAreTwins) {
  // A burst window layered over a Gilbert-Elliott base composes (either
  // model may drop) rather than replacing it: the base chain keeps dropping
  // outside the window, and the faulted run is exactly reproducible from
  // the seed — the determinism contract for fault injection.
  const auto run_link = [] {
    Simulator sim;
    Rng rng{11};
    Link::Config cfg{.rate_bps = 1e9, .prop_delay = Duration::zero(),
                     .queue_limit_bytes = 100000000};
    GilbertElliottLoss::Params p;
    p.p_good = 0.0;
    p.p_bad = 1.0;
    p.p_good_to_bad = 0.05;
    p.p_bad_to_good = 0.3;
    Link link{sim, cfg, std::make_unique<GilbertElliottLoss>(p), rng};
    std::vector<std::uint64_t> deliveries;
    int delivered_outside = 0;
    link.set_receiver([&](const TcpSegment& s) {
      deliveries.push_back(s.seq);
      const double t = sim.now().to_seconds();
      if (t < 1.0 || t >= 2.0) ++delivered_outside;
    });
    ImpairmentSchedule schedule;
    schedule.burst_loss(at_s(1.0), for_s(1.0), /*rate=*/0.5, /*burst_len=*/4.0);
    link.set_impairments(schedule);
    constexpr int kPackets = 300;
    for (int i = 0; i < kPackets; ++i) {
      sim.schedule_at(at_s(0.01 * i),
                      [&link, i] { link.send(make_data_segment(100, 100ULL * i)); });
    }
    sim.run();
    // 200 of the 300 packets fall outside the window; the base chain's
    // ~14% steady-state loss must have bitten some of them.
    EXPECT_LT(delivered_outside, 200);
    EXPECT_GT(delivered_outside, 100);
    return deliveries;
  };

  EXPECT_EQ(run_link(), run_link());
}

// ---- random generators ----------------------------------------------------

TEST(RandomScheduleTest, GeneratorsAreSeedDeterministicAndValid) {
  Rng a{42};
  Rng b{42};
  const auto flaps_a = random_link_flaps(a, 600.0, /*flaps_per_min=*/2.0, /*mean_down_s=*/3.0);
  const auto flaps_b = random_link_flaps(b, 600.0, 2.0, 3.0);
  EXPECT_EQ(flaps_a, flaps_b);
  EXPECT_NO_THROW(flaps_a.validate());

  Rng c{42};
  Rng d{43};
  const auto cong_c = random_congestion(c, 600.0, /*episodes_per_min=*/1.0, 0.3, 20.0);
  const auto cong_d = random_congestion(d, 600.0, 1.0, 0.3, 20.0);
  EXPECT_NO_THROW(cong_c.validate());
  EXPECT_NO_THROW(cong_d.validate());
  EXPECT_NE(cong_c, cong_d);  // different seeds, different schedules
  for (const auto& w : cong_c.windows()) {
    EXPECT_EQ(w.kind, ImpairmentKind::kRateScale);
    EXPECT_GE(w.rate_factor, 0.3);
    EXPECT_LT(w.rate_factor, 1.0);
    EXPECT_LT(w.start.to_seconds(), 600.0);
  }
}

}  // namespace
}  // namespace vstream::net
