// Tests for video metadata, container-header quirks, and dataset generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/rng.hpp"
#include "video/container_header.hpp"
#include "video/datasets.hpp"
#include "video/metadata.hpp"

namespace vstream::video {
namespace {

TEST(VideoMetaTest, SizeFromRateAndDuration) {
  VideoMeta v;
  v.encoding_bps = 1e6;
  v.duration_s = 80.0;
  EXPECT_EQ(v.size_bytes(), 10'000'000U);
  EXPECT_DOUBLE_EQ(v.encoding_mbps(), 1.0);
  EXPECT_EQ(v.size_bytes_at(2e6), 20'000'000U);
}

TEST(VideoMetaTest, ToStringCoversEnums) {
  EXPECT_EQ(to_string(Container::kFlash), "Flash");
  EXPECT_EQ(to_string(Container::kFlashHd), "Flash-HD");
  EXPECT_EQ(to_string(Container::kHtml5), "HTML5");
  EXPECT_EQ(to_string(Container::kSilverlight), "Silverlight");
  EXPECT_EQ(to_string(Resolution::k360p), "360p");
  EXPECT_EQ(to_string(Resolution::k720p), "720p");
}

TEST(ContainerHeaderTest, FlashDeclaresUsableRate) {
  VideoMeta v;
  v.container = Container::kFlash;
  v.encoding_bps = 1.3e6;
  v.duration_s = 200.0;
  const auto h = make_header(v);
  ASSERT_TRUE(h.declared_rate_bps.has_value());
  EXPECT_DOUBLE_EQ(*h.declared_rate_bps, 1.3e6);
  EXPECT_DOUBLE_EQ(resolve_encoding_rate(h, v.size_bytes()), 1.3e6);
}

TEST(ContainerHeaderTest, WebmHeaderHasInvalidRateEntry) {
  // The paper's WebM quirk: the frame-rate entry is invalid, so the rate
  // must be estimated from Content-Length / duration.
  VideoMeta v;
  v.container = Container::kHtml5;
  v.encoding_bps = 1.0e6;
  v.duration_s = 100.0;
  const auto h = make_header(v);
  EXPECT_FALSE(h.declared_rate_bps.has_value());
  const double est = resolve_encoding_rate(h, v.size_bytes());
  EXPECT_NEAR(est, 1.0e6, 1e3);
}

TEST(ContainerHeaderTest, EstimationNoiseScalesResult) {
  VideoMeta v;
  v.container = Container::kHtml5;
  v.encoding_bps = 1.0e6;
  v.duration_s = 100.0;
  const auto h = make_header(v);
  const double est = resolve_encoding_rate(h, v.size_bytes(), 1.2);
  EXPECT_NEAR(est, 1.2e6, 1e3);
}

TEST(ContainerHeaderTest, EstimatorValidatesInputs) {
  EXPECT_THROW((void)estimate_rate_from_content_length(1000, 0.0), std::invalid_argument);
  EXPECT_THROW((void)estimate_rate_from_content_length(1000, 10.0, 0.0), std::invalid_argument);
}

TEST(ContainerHeaderTest, SilverlightRateNotDeclared) {
  VideoMeta v;
  v.container = Container::kSilverlight;
  v.duration_s = 1200;
  v.encoding_bps = 3.6e6;
  EXPECT_FALSE(make_header(v).declared_rate_bps.has_value());
}

TEST(DatasetTest, PaperSizes) {
  sim::Rng rng{1};
  EXPECT_EQ(make_dataset(DatasetId::kYouFlash, rng, 0).size(), 5000U);
  EXPECT_EQ(make_dataset(DatasetId::kYouHd, rng, 0).size(), 2000U);
  EXPECT_EQ(make_dataset(DatasetId::kYouHtml, rng, 0).size(), 3000U);
  EXPECT_EQ(make_dataset(DatasetId::kNetPc, rng, 0).size(), 200U);
  EXPECT_EQ(make_dataset(DatasetId::kNetMob, rng, 0).size(), 50U);
}

TEST(DatasetTest, CountOverrideForQuickRuns) {
  sim::Rng rng{1};
  EXPECT_EQ(make_dataset(DatasetId::kYouFlash, rng, 25).size(), 25U);
}

TEST(DatasetTest, DeterministicPerSeed) {
  sim::Rng a{99};
  sim::Rng b{99};
  const auto d1 = make_dataset(DatasetId::kYouFlash, a, 50);
  const auto d2 = make_dataset(DatasetId::kYouFlash, b, 50);
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_DOUBLE_EQ(d1.videos[i].encoding_bps, d2.videos[i].encoding_bps);
    EXPECT_DOUBLE_EQ(d1.videos[i].duration_s, d2.videos[i].duration_s);
  }
}

TEST(DatasetTest, UniqueIds) {
  sim::Rng rng{3};
  const auto ds = make_dataset(DatasetId::kYouHd, rng, 200);
  std::set<std::string> ids;
  for (const auto& v : ds.videos) ids.insert(v.id);
  EXPECT_EQ(ids.size(), ds.size());
}

struct RangeSpec {
  DatasetId id;
  double lo_mbps;
  double hi_mbps;
  Container container;
};

class DatasetRateRange : public ::testing::TestWithParam<RangeSpec> {};

TEST_P(DatasetRateRange, EncodingRatesWithinPaperRanges) {
  const auto spec = GetParam();
  sim::Rng rng{7};
  const auto ds = make_dataset(spec.id, rng, 400);
  for (const auto& v : ds.videos) {
    EXPECT_GE(v.encoding_bps, spec.lo_mbps * 1e6 * 0.999);
    EXPECT_LE(v.encoding_bps, spec.hi_mbps * 1e6 * 1.001);
    EXPECT_EQ(v.container, spec.container);
    EXPECT_GT(v.duration_s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperRanges, DatasetRateRange,
    ::testing::Values(RangeSpec{DatasetId::kYouFlash, 0.2, 1.5, Container::kFlash},
                      RangeSpec{DatasetId::kYouHd, 0.2, 4.8, Container::kFlashHd},
                      RangeSpec{DatasetId::kYouHtml, 0.2, 2.5, Container::kHtml5},
                      RangeSpec{DatasetId::kYouMob, 0.2, 2.7, Container::kHtml5}),
    [](const ::testing::TestParamInfo<RangeSpec>& info) {
      return to_string(info.param.id);
    });

TEST(DatasetTest, NetflixVideosCarryFullLadder) {
  sim::Rng rng{11};
  const auto ds = make_dataset(DatasetId::kNetPc, rng, 20);
  for (const auto& v : ds.videos) {
    EXPECT_EQ(v.available_rates_bps, netflix_rate_ladder());
    EXPECT_GE(v.duration_s, 1200.0);
    EXPECT_LE(v.duration_s, 7200.0);
    EXPECT_EQ(v.container, Container::kSilverlight);
  }
}

TEST(DatasetTest, LaddersAreSortedAscending) {
  EXPECT_TRUE(std::is_sorted(netflix_rate_ladder().begin(), netflix_rate_ladder().end()));
  EXPECT_TRUE(std::is_sorted(netflix_ipad_ladder().begin(), netflix_ipad_ladder().end()));
  // The iPad ladder is a subset of the full ladder (paper's hypothesis).
  for (const double r : netflix_ipad_ladder()) {
    EXPECT_NE(std::find(netflix_rate_ladder().begin(), netflix_rate_ladder().end(), r),
              netflix_rate_ladder().end());
  }
  EXPECT_LT(netflix_ipad_ladder().size(), netflix_rate_ladder().size());
}

TEST(DatasetTest, YouTubeDurationsClippedAndPlausible) {
  sim::Rng rng{13};
  const auto ds = make_dataset(DatasetId::kYouFlash, rng, 1000);
  std::vector<double> durations;
  for (const auto& v : ds.videos) durations.push_back(v.duration_s);
  const double median = [&] {
    std::sort(durations.begin(), durations.end());
    return durations[durations.size() / 2];
  }();
  EXPECT_GT(median, 100.0);  // YouTube-like median of a few minutes
  EXPECT_LT(median, 600.0);
  EXPECT_GE(*std::min_element(durations.begin(), durations.end()), 30.0);
  EXPECT_LE(*std::max_element(durations.begin(), durations.end()), 3600.0);
}

TEST(DatasetTest, NamesRoundTrip) {
  EXPECT_EQ(to_string(DatasetId::kYouFlash), "YouFlash");
  EXPECT_EQ(to_string(DatasetId::kYouHd), "YouHD");
  EXPECT_EQ(to_string(DatasetId::kYouHtml), "YouHtml");
  EXPECT_EQ(to_string(DatasetId::kYouMob), "YouMob");
  EXPECT_EQ(to_string(DatasetId::kNetPc), "NetPC");
  EXPECT_EQ(to_string(DatasetId::kNetMob), "NetMob");
}

}  // namespace
}  // namespace vstream::video
