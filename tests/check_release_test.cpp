// Proof that the release flavour of the contract layer is inert.
//
// This target builds with `VSTREAM_CHECK_LEVEL=0` (see tests/CMakeLists.txt):
// every macro must compile to a no-op — no throw, no evaluation of the
// condition, no side effects — while the referenced variables still count
// as used so the -Werror build stays quiet.
#include <gtest/gtest.h>

#include "check/contracts.hpp"

static_assert(VSTREAM_CHECK_LEVEL == 0,
              "check_release_test must build with contracts compiled out; "
              "fix the target_compile_options in tests/CMakeLists.txt");

namespace vstream::check {
namespace {

TEST(ContractsReleaseTest, FalseConditionsDoNotThrow) {
  EXPECT_NO_THROW(VSTREAM_PRECONDITION(false, "compiled out"));
  EXPECT_NO_THROW(VSTREAM_INVARIANT(false, "compiled out"));
  EXPECT_NO_THROW(VSTREAM_POSTCONDITION(false, "compiled out"));
}

TEST(ContractsReleaseTest, ConditionSideEffectsNeverRun) {
  int calls = 0;
  const auto fail_and_count = [&calls] {
    ++calls;
    return false;
  };
  VSTREAM_PRECONDITION(fail_and_count(), "must stay unevaluated");
  VSTREAM_INVARIANT(fail_and_count(), "must stay unevaluated");
  VSTREAM_POSTCONDITION(fail_and_count(), "must stay unevaluated");
  EXPECT_EQ(calls, 0);
}

TEST(ContractsReleaseTest, NoViolationEverRegisters) {
  const std::uint64_t before = violations_raised();
  VSTREAM_INVARIANT(1 == 2, "compiled out");
  EXPECT_EQ(violations_raised(), before);
}

TEST(ContractsReleaseTest, VariablesReferencedOnlyByContractsStayUsed) {
  // Under -Werror=unused-variable this test would fail to *compile* if the
  // level-0 macro discarded its condition entirely.
  const bool checked_only_here = true;
  VSTREAM_INVARIANT(checked_only_here, "references the variable");
  SUCCEED();
}

}  // namespace
}  // namespace vstream::check
