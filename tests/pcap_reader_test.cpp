// Tests for the zero-copy mmap pcap reader: magic variants (native,
// byte-swapped, nanosecond), cursor/visitor equivalence with the
// std::function path, hardened rejection of truncated and corrupt files,
// and the wire-format contract with the writer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "capture/pcap.hpp"
#include "capture/pcap_reader.hpp"
#include "capture/pcap_wire.hpp"
#include "capture/trace.hpp"

namespace {

using namespace vstream;
using namespace vstream::capture;

[[nodiscard]] std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void swap32_at(std::vector<std::uint8_t>& b, std::size_t at) {
  std::swap(b[at], b[at + 3]);
  std::swap(b[at + 1], b[at + 2]);
}

void swap16_at(std::vector<std::uint8_t>& b, std::size_t at) { std::swap(b[at], b[at + 1]); }

[[nodiscard]] std::uint32_t u32le_at(const std::vector<std::uint8_t>& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) | (static_cast<std::uint32_t>(b[at + 1]) << 8U) |
         (static_cast<std::uint32_t>(b[at + 2]) << 16U) |
         (static_cast<std::uint32_t>(b[at + 3]) << 24U);
}

void put_u32le_at(std::vector<std::uint8_t>& b, std::size_t at, std::uint32_t v) {
  b[at] = static_cast<std::uint8_t>(v);
  b[at + 1] = static_cast<std::uint8_t>(v >> 8U);
  b[at + 2] = static_cast<std::uint8_t>(v >> 16U);
  b[at + 3] = static_cast<std::uint8_t>(v >> 24U);
}

/// Rewrite a natively-written capture as its opposite-endian twin: every
/// global- and record-header field byte-swapped, frame bytes untouched.
[[nodiscard]] std::vector<std::uint8_t> byte_swapped_twin(std::vector<std::uint8_t> bytes) {
  swap32_at(bytes, 0);   // magic
  swap16_at(bytes, 4);   // version major
  swap16_at(bytes, 6);   // version minor
  swap32_at(bytes, 8);   // thiszone
  swap32_at(bytes, 12);  // sigfigs
  swap32_at(bytes, 16);  // snaplen
  swap32_at(bytes, 20);  // linktype
  std::size_t at = wire::kGlobalHeaderBytes;
  while (at + wire::kRecordHeaderBytes <= bytes.size()) {
    const std::uint32_t incl_len = u32le_at(bytes, at + 8);
    swap32_at(bytes, at);
    swap32_at(bytes, at + 4);
    swap32_at(bytes, at + 8);
    swap32_at(bytes, at + 12);
    at += wire::kRecordHeaderBytes + incl_len;
  }
  return bytes;
}

/// Rewrite a microsecond capture as its nanosecond twin: magic swapped to
/// the nanos variant, every sub-second field scaled by 1000.
[[nodiscard]] std::vector<std::uint8_t> nanos_twin(std::vector<std::uint8_t> bytes) {
  put_u32le_at(bytes, 0, wire::kMagicNanos);
  std::size_t at = wire::kGlobalHeaderBytes;
  while (at + wire::kRecordHeaderBytes <= bytes.size()) {
    const std::uint32_t incl_len = u32le_at(bytes, at + 8);
    put_u32le_at(bytes, at + 4, u32le_at(bytes, at + 4) * 1000U);
    at += wire::kRecordHeaderBytes + incl_len;
  }
  return bytes;
}

[[nodiscard]] PacketTrace sample_trace() {
  PacketTrace trace;
  const auto push = [&trace](double t, net::Direction d, std::uint64_t conn, std::uint64_t seq,
                             std::uint64_t ack, std::uint32_t payload, net::TcpFlag flags) {
    PacketRecord r;
    r.t_s = t;
    r.direction = d;
    r.connection_id = conn;
    r.seq = seq;
    r.ack = ack;
    r.payload_bytes = payload;
    r.window_bytes = 262144;
    r.flags = flags;
    trace.packets.push_back(r);
  };
  push(0.25, net::Direction::kUp, 1, 1, 0, 0, net::TcpFlag::kSyn);
  push(0.27, net::Direction::kDown, 1, 1, 2, 0, net::TcpFlag::kSyn | net::TcpFlag::kAck);
  push(0.28, net::Direction::kUp, 1, 2, 2, 0, net::TcpFlag::kAck);
  push(0.30, net::Direction::kDown, 1, 2, 2, 1448, net::TcpFlag::kAck);
  push(0.31, net::Direction::kDown, 1, 1450, 2, 1448, net::TcpFlag::kAck | net::TcpFlag::kPsh);
  push(0.32, net::Direction::kUp, 1, 2, 2898, 0, net::TcpFlag::kAck);
  push(0.40, net::Direction::kDown, 2, 1, 1, 900, net::TcpFlag::kAck);
  push(0.45, net::Direction::kUp, 2, 1, 901, 0, net::TcpFlag::kFin | net::TcpFlag::kAck);
  trace.duration_s = 0.45 - 0.25;
  return trace;
}

[[nodiscard]] std::vector<PacketRecord> collect(const std::string& path) {
  std::vector<PacketRecord> records;
  for_each_pcap_record(path, [&records](const PacketRecord& r) { records.push_back(r); });
  return records;
}

void expect_records_equal(const std::vector<PacketRecord>& actual,
                          const std::vector<PacketRecord>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_NEAR(actual[i].t_s, expected[i].t_s, 2e-6);
    EXPECT_EQ(actual[i].direction, expected[i].direction);
    EXPECT_EQ(actual[i].connection_id, expected[i].connection_id);
    EXPECT_EQ(actual[i].host, expected[i].host);
    EXPECT_EQ(actual[i].seq, expected[i].seq);
    EXPECT_EQ(actual[i].ack, expected[i].ack);
    EXPECT_EQ(actual[i].payload_bytes, expected[i].payload_bytes);
    EXPECT_EQ(actual[i].flags, expected[i].flags);
    EXPECT_EQ(actual[i].is_retransmission, expected[i].is_retransmission);
  }
}

class MmapPcapReaderTest : public ::testing::Test {
 protected:
  // gtest_discover_tests runs every test case as its own process, and ctest
  // may run several concurrently — the scratch paths must be per-process.
  std::string path_ =
      "/tmp/vstream_pcap_reader_test_" + std::to_string(::getpid()) + ".pcap";
  std::string twin_path_ =
      "/tmp/vstream_pcap_reader_twin_" + std::to_string(::getpid()) + ".pcap";

  void TearDown() override {
    (void)std::remove(path_.c_str());
    (void)std::remove(twin_path_.c_str());
  }
};

TEST_F(MmapPcapReaderTest, HeaderAndCursorWalkTheWholeFile) {
  const auto trace = sample_trace();
  write_pcap(trace, path_);

  const MmapPcapReader reader{path_};
  EXPECT_FALSE(reader.header().swapped);
  EXPECT_FALSE(reader.header().nanos);
  EXPECT_EQ(reader.header().snaplen, 65535U);
  EXPECT_EQ(reader.header().linktype, wire::kLinkTypeEthernet);
  EXPECT_TRUE(reader.mmapped());

  std::size_t count = 0;
  std::uint64_t last_offset = 0;
  reader.for_each([&](const PcapRecordView& view) {
    ++count;
    EXPECT_EQ(view.incl_len, wire::kHeadersBytes);
    last_offset = view.offset;
  });
  EXPECT_EQ(count, trace.packets.size());
  // record_at revisits any offset the cursor reported.
  const PcapRecordView revisited = reader.record_at(last_offset);
  EXPECT_EQ(revisited.offset, last_offset);
  EXPECT_EQ(revisited.incl_len, wire::kHeadersBytes);
}

TEST_F(MmapPcapReaderTest, TemplatedAndFunctionOverloadsAgree) {
  write_pcap(sample_trace(), path_);
  std::vector<PacketRecord> via_template;
  for_each_pcap_record(path_, [&via_template](const PacketRecord& r) {
    via_template.push_back(r);
  });
  std::vector<PacketRecord> via_function;
  const std::function<void(const PacketRecord&)> fn = [&via_function](const PacketRecord& r) {
    via_function.push_back(r);
  };
  for_each_pcap_record(path_, fn);
  expect_records_equal(via_function, via_template);
}

TEST_F(MmapPcapReaderTest, ByteSwappedMagicReadsIdentically) {
  const auto trace = sample_trace();
  write_pcap(trace, path_);
  spit(twin_path_, byte_swapped_twin(slurp(path_)));

  const MmapPcapReader reader{twin_path_};
  EXPECT_TRUE(reader.header().swapped);
  EXPECT_FALSE(reader.header().nanos);
  EXPECT_EQ(reader.header().snaplen, 65535U);
  expect_records_equal(collect(twin_path_), collect(path_));
}

TEST_F(MmapPcapReaderTest, NanosecondMagicScalesTimestamps) {
  const auto trace = sample_trace();
  write_pcap(trace, path_);
  spit(twin_path_, nanos_twin(slurp(path_)));

  const MmapPcapReader reader{twin_path_};
  EXPECT_TRUE(reader.header().nanos);
  EXPECT_FALSE(reader.header().swapped);
  expect_records_equal(collect(twin_path_), collect(path_));
}

TEST_F(MmapPcapReaderTest, ByteSwappedNanosecondCombination) {
  write_pcap(sample_trace(), path_);
  spit(twin_path_, byte_swapped_twin(nanos_twin(slurp(path_))));

  const MmapPcapReader reader{twin_path_};
  EXPECT_TRUE(reader.header().swapped);
  EXPECT_TRUE(reader.header().nanos);
  expect_records_equal(collect(twin_path_), collect(path_));
}

TEST_F(MmapPcapReaderTest, SequenceNumbersUnwrapAcrossFourGiB) {
  PacketTrace trace;
  PacketRecord r;
  r.direction = net::Direction::kDown;
  r.connection_id = 1;
  r.payload_bytes = 1000;
  r.window_bytes = 262144;
  r.flags = net::TcpFlag::kAck;
  r.t_s = 1.0;
  r.seq = 0xFFFFFE00ULL;  // just below the 32-bit wrap
  r.ack = 10;
  trace.packets.push_back(r);
  r.t_s = 2.0;
  r.seq = 0x100000200ULL;  // past it
  trace.packets.push_back(r);
  write_pcap(trace, path_);

  const auto records = collect(path_);
  ASSERT_EQ(records.size(), 2U);
  EXPECT_EQ(records[0].seq, 0xFFFFFE00ULL);
  EXPECT_EQ(records[1].seq, 0x100000200ULL);
}

TEST_F(MmapPcapReaderTest, EmptyCaptureYieldsNoRecords) {
  PcapWriter writer{path_};
  writer.close();
  EXPECT_EQ(writer.records_written(), 0U);

  const MmapPcapReader reader{path_};
  std::size_t count = 0;
  reader.for_each([&count](const PcapRecordView&) { ++count; });
  EXPECT_EQ(count, 0U);
  EXPECT_TRUE(read_pcap(path_).packets.empty());
}

TEST_F(MmapPcapReaderTest, StreamingWriterMatchesBatchWriterBytes) {
  const auto trace = sample_trace();
  write_pcap(trace, path_);
  {
    PcapWriter writer{twin_path_};
    for (const auto& p : trace.packets) writer.add(p);
    writer.close();
    EXPECT_EQ(writer.records_written(), trace.packets.size());
  }
  EXPECT_EQ(slurp(twin_path_), slurp(path_));
}

TEST_F(MmapPcapReaderTest, RejectsZeroLengthAndShortFiles) {
  spit(path_, {});
  EXPECT_THROW((void)MmapPcapReader{path_}, std::runtime_error);
  spit(path_, std::vector<std::uint8_t>(10, 0x41));
  EXPECT_THROW((void)MmapPcapReader{path_}, std::runtime_error);
}

TEST_F(MmapPcapReaderTest, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes(wire::kGlobalHeaderBytes, 0);
  put_u32le_at(bytes, 0, 0xDEADBEEF);
  spit(path_, bytes);
  try {
    const MmapPcapReader reader{path_};
    FAIL() << "bad magic was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("bad magic"), std::string::npos);
  }
}

TEST_F(MmapPcapReaderTest, RejectsUnknownLinkTypeWithClearError) {
  write_pcap(sample_trace(), path_);
  auto bytes = slurp(path_);
  put_u32le_at(bytes, 20, 101);  // LINKTYPE_RAW, not Ethernet
  spit(path_, bytes);
  try {
    const MmapPcapReader reader{path_};
    FAIL() << "unknown link type was accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("link type 101"), std::string::npos) << what;
    EXPECT_NE(what.find("Ethernet"), std::string::npos) << what;
  }
}

TEST_F(MmapPcapReaderTest, RejectsAbsurdSnaplen) {
  write_pcap(sample_trace(), path_);
  auto bytes = slurp(path_);
  put_u32le_at(bytes, 16, 0x7FFFFFFFU);
  spit(path_, bytes);
  try {
    const MmapPcapReader reader{path_};
    FAIL() << "absurd snaplen was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("snaplen"), std::string::npos);
  }
}

TEST_F(MmapPcapReaderTest, RejectsTruncatedRecordHeader) {
  write_pcap(sample_trace(), path_);
  auto bytes = slurp(path_);
  bytes.resize(wire::kGlobalHeaderBytes + 8);  // half a record header
  spit(path_, bytes);
  EXPECT_THROW(collect(path_), std::runtime_error);
}

TEST_F(MmapPcapReaderTest, RejectsRecordPromisingBytesPastEof) {
  write_pcap(sample_trace(), path_);
  auto bytes = slurp(path_);
  // First record claims 4000 captured bytes; the file ends long before.
  put_u32le_at(bytes, wire::kGlobalHeaderBytes + 8, 4000);
  bytes.resize(wire::kGlobalHeaderBytes + wire::kRecordHeaderBytes + 54);
  spit(path_, bytes);
  try {
    (void)collect(path_);
    FAIL() << "record past EOF was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("past end of file"), std::string::npos);
  }
}

TEST_F(MmapPcapReaderTest, RejectsRecordLengthAboveSnaplen) {
  write_pcap(sample_trace(), path_);
  auto bytes = slurp(path_);
  put_u32le_at(bytes, wire::kGlobalHeaderBytes + 8, 100000);  // > snaplen 65535
  spit(path_, bytes);
  try {
    (void)collect(path_);
    FAIL() << "record length above snaplen was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("absurd record length"), std::string::npos);
  }
}

TEST_F(MmapPcapReaderTest, ErrorsNameFileAndOffset) {
  write_pcap(sample_trace(), path_);
  auto bytes = slurp(path_);
  bytes.resize(wire::kGlobalHeaderBytes + 8);
  spit(path_, bytes);
  try {
    (void)collect(path_);
    FAIL() << "truncation was accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path_), std::string::npos) << what;
    EXPECT_NE(what.find("@24"), std::string::npos) << what;
  }
}

TEST_F(MmapPcapReaderTest, ShortAndForeignFramesAreSkippedNotFatal) {
  write_pcap(sample_trace(), path_);
  auto bytes = slurp(path_);
  // Shrink the first record's frame claim to 4 bytes: still a valid record
  // (the cursor advances by incl_len), just not one of ours.
  const std::size_t first = wire::kGlobalHeaderBytes;
  put_u32le_at(bytes, first + 8, 4);
  // Drop the other 50 frame bytes so the next record header lines up.
  bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(first + wire::kRecordHeaderBytes + 4),
              bytes.begin() +
                  static_cast<std::ptrdiff_t>(first + wire::kRecordHeaderBytes +
                                              wire::kHeadersBytes));
  spit(path_, bytes);
  const auto records = collect(path_);
  EXPECT_EQ(records.size(), sample_trace().packets.size() - 1);
}

}  // namespace
