// Tests for the per-connection flow table and the adaptive-bitrate
// controller extension (including mid-run bandwidth changes).
#include <gtest/gtest.h>

#include "analysis/flows.hpp"
#include "net/path.hpp"
#include "net/profile.hpp"
#include "streaming/adaptive.hpp"
#include "streaming/fetch.hpp"
#include "streaming/netflix_client.hpp"
#include "streaming/session_builder.hpp"
#include "video/datasets.hpp"

namespace vstream {
namespace {

using capture::PacketRecord;
using capture::PacketTrace;
using net::Direction;
using net::TcpFlag;

// ------------------------------------------------------------------ flows

PacketRecord packet(double t, Direction d, std::uint64_t conn, std::uint32_t payload,
                    TcpFlag flags = TcpFlag::kAck, bool retx = false) {
  PacketRecord r;
  r.t_s = t;
  r.direction = d;
  r.connection_id = conn;
  r.payload_bytes = payload;
  r.flags = flags;
  r.is_retransmission = retx;
  return r;
}

TEST(FlowTableTest, SplitsByConnection) {
  PacketTrace trace;
  trace.packets.push_back(packet(0.0, Direction::kUp, 1, 0, TcpFlag::kSyn));
  trace.packets.push_back(packet(0.02, Direction::kDown, 1, 0, TcpFlag::kSyn | TcpFlag::kAck));
  trace.packets.push_back(packet(0.05, Direction::kDown, 1, 1460));
  trace.packets.push_back(packet(1.0, Direction::kUp, 2, 0, TcpFlag::kSyn));
  trace.packets.push_back(packet(1.03, Direction::kDown, 2, 0, TcpFlag::kSyn | TcpFlag::kAck));
  trace.packets.push_back(packet(1.1, Direction::kDown, 2, 2920, TcpFlag::kAck, true));
  trace.packets.push_back(packet(1.2, Direction::kDown, 2, 0, TcpFlag::kFin | TcpFlag::kAck));

  const auto table = analysis::build_flow_table(trace);
  ASSERT_EQ(table.size(), 2U);
  const auto* f1 = table.find(1);
  const auto* f2 = table.find(2);
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  EXPECT_EQ(f1->down_payload_bytes, 1460U);
  EXPECT_TRUE(f1->saw_syn);
  EXPECT_FALSE(f1->saw_fin);
  ASSERT_TRUE(f1->handshake_rtt_s.has_value());
  EXPECT_NEAR(*f1->handshake_rtt_s, 0.02, 1e-9);
  EXPECT_EQ(f2->down_payload_bytes, 2920U);
  EXPECT_EQ(f2->retransmitted_bytes, 2920U);
  EXPECT_DOUBLE_EQ(f2->retransmission_fraction(), 1.0);
  EXPECT_TRUE(f2->saw_fin);
  EXPECT_EQ(table.find(99), nullptr);
}

TEST(FlowTableTest, ConcurrencyAndExtremes) {
  PacketTrace trace;
  trace.packets.push_back(packet(0.0, Direction::kDown, 1, 1000));
  trace.packets.push_back(packet(10.0, Direction::kDown, 1, 1000));
  trace.packets.push_back(packet(5.0, Direction::kDown, 2, 5000));
  trace.packets.push_back(packet(6.0, Direction::kDown, 2, 5000));
  const auto table = analysis::build_flow_table(trace);
  EXPECT_EQ(table.concurrent_at(5.5), 2U);
  EXPECT_EQ(table.concurrent_at(8.0), 1U);
  EXPECT_EQ(table.max_down_bytes(), 10000U);
  EXPECT_EQ(table.min_down_bytes(), 2000U);
  EXPECT_EQ(table.flows_started_before(1.0), 1U);
  EXPECT_EQ(table.flows_started_before(60.0), 2U);
}

TEST(FlowTableTest, RenderListsEveryFlow) {
  PacketTrace trace;
  trace.packets.push_back(packet(0.0, Direction::kDown, 1, 1000));
  trace.packets.push_back(packet(1.0, Direction::kDown, 7, 1000));
  const auto table = analysis::build_flow_table(trace);
  const auto text = table.render();
  EXPECT_NE(text.find("conn"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(FlowTableTest, IpadSessionHasManyRangedFlows) {
  video::VideoMeta meta;
  meta.id = "f";
  meta.duration_s = 900.0;
  meta.encoding_bps = 2e6;
  meta.container = video::Container::kHtml5;
  const auto result = streaming::SessionBuilder{}
                          .service(streaming::Service::kYouTube)
                          .container(video::Container::kHtml5)
                          .application(streaming::Application::kIosNative)
                          .vantage(net::Vantage::kResearch)
                          .video(meta)
                          .capture_duration_s(120.0)
                          .seed(77)
                          .run();
  const auto table = analysis::build_flow_table(result.trace);
  EXPECT_GE(table.size(), 10U);
  // Paper: per-connection amounts from 64 kB up to 8 MB.
  EXPECT_LE(table.min_down_bytes(), 2ULL * 1024 * 1024);
  EXPECT_GE(table.max_down_bytes(), 4ULL * 1024 * 1024);
  // Sequential fetches: never a big pile of concurrent connections.
  EXPECT_LE(table.concurrent_at(60.0), 3U);
}

// ---------------------------------------------------------------- adaptive

streaming::AdaptiveRateController::Config ladder_config() {
  streaming::AdaptiveRateController::Config cfg;
  cfg.ladder_bps = video::netflix_rate_ladder();
  return cfg;
}

TEST(AdaptiveControllerTest, SeedPicksHighestSafeRate) {
  streaming::AdaptiveRateController c{ladder_config()};
  c.seed(10e6);
  EXPECT_DOUBLE_EQ(c.current_rate_bps(), video::netflix_rate_ladder().back());
  c.seed(1e6);  // 0.8 MB/s budget -> 560 kbps rung
  EXPECT_DOUBLE_EQ(c.current_rate_bps(), 560e3);
  c.seed(0.0);
  EXPECT_DOUBLE_EQ(c.current_rate_bps(), video::netflix_rate_ladder().front());
}

TEST(AdaptiveControllerTest, UpshiftsOneRungWithFullBuffer) {
  streaming::AdaptiveRateController c{ladder_config()};
  c.seed(1e6);
  const auto start = c.current_index();
  // Fast transfers with a comfortable buffer: climbs one rung per block.
  bool switched = c.on_block(2e6, 0.5, 60.0);  // 32 Mbps sample
  EXPECT_TRUE(switched);
  EXPECT_EQ(c.current_index(), start + 1);
  EXPECT_EQ(c.switch_count(), 1U);
}

TEST(AdaptiveControllerTest, NoUpshiftWithLowBuffer) {
  streaming::AdaptiveRateController c{ladder_config()};
  c.seed(1e6);
  EXPECT_FALSE(c.on_block(2e6, 0.5, 5.0));  // plenty of bandwidth, thin buffer
}

TEST(AdaptiveControllerTest, EmergencyDownshiftJumpsToSustainableRate) {
  streaming::AdaptiveRateController c{ladder_config()};
  c.seed(100e6);
  ASSERT_EQ(c.current_rate_bps(), video::netflix_rate_ladder().back());
  // Throughput collapses and the buffer is nearly dry: jump down.
  bool switched = false;
  for (int i = 0; i < 6 && !switched; ++i) {
    switched = c.on_block(1e6, 16.0, 3.0);  // 0.5 Mbps samples
  }
  EXPECT_TRUE(switched);
  EXPECT_LT(c.current_rate_bps(), video::netflix_rate_ladder().back());
}

TEST(AdaptiveControllerTest, GradualDownshiftWithHealthyBuffer) {
  streaming::AdaptiveRateController c{ladder_config()};
  c.seed(100e6);
  const auto start = c.current_index();
  // Tank the EWMA while the buffer is still healthy: steps down one rung.
  bool switched = false;
  for (int i = 0; i < 10 && !switched; ++i) switched = c.on_block(1e6, 8.0, 30.0);
  EXPECT_TRUE(switched);
  EXPECT_EQ(c.current_index(), start - 1);
}

TEST(AdaptiveControllerTest, ValidatesConfig) {
  streaming::AdaptiveRateController::Config bad;
  EXPECT_THROW((streaming::AdaptiveRateController{bad}), std::invalid_argument);
  bad.ladder_bps = {2e6, 1e6};  // not ascending
  EXPECT_THROW((streaming::AdaptiveRateController{bad}), std::invalid_argument);
  bad = ladder_config();
  bad.safety_factor = 0.0;
  EXPECT_THROW((streaming::AdaptiveRateController{bad}), std::invalid_argument);
}

struct AdaptiveHarness {
  AdaptiveHarness(double down_bps, std::uint64_t seed)
      : rng{seed}, path{sim, profile(down_bps), rng}, fabric{sim, path} {}
  static net::NetworkProfile profile(double down_bps) {
    auto p = net::profile_for(net::Vantage::kAcademic);
    p.loss_rate = 0.0;
    p.down_bps = down_bps;
    return p;
  }
  sim::Simulator sim;
  sim::Rng rng;
  net::Path path;
  tcp::Fabric fabric;
};

TEST(AdaptiveNetflixTest, SettlesAtSustainableRateOnSlowLink) {
  AdaptiveHarness h{3e6, 5};
  video::VideoMeta v;
  v.id = "a";
  v.duration_s = 3600.0;
  v.encoding_bps = 3.6e6;
  v.available_rates_bps = video::netflix_rate_ladder();
  streaming::FetchManager fm{h.sim, h.fabric, v, {}, {}};
  auto profile = streaming::NetflixClient::Profile::pc();
  profile.adaptive = true;
  // Pretend the client believes more bandwidth exists than the link has.
  streaming::NetflixClient client{h.sim, fm, v, profile, 50e6, {}};
  client.start();
  h.sim.run_until(sim::SimTime::from_seconds(300.0));
  // On a 3 Mbps link the sustainable rung (at safety 0.75) is 1750 kbps.
  EXPECT_LE(client.selected_rate_bps(), 2350e3);
  EXPECT_GE(client.selected_rate_bps(), 1050e3);
}

TEST(AdaptiveNetflixTest, DownshiftsWhenBandwidthDropsMidStream) {
  AdaptiveHarness h{50e6, 6};
  video::VideoMeta v;
  v.id = "b";
  v.duration_s = 3600.0;
  v.encoding_bps = 3.6e6;
  v.available_rates_bps = video::netflix_rate_ladder();
  streaming::FetchManager fm{h.sim, h.fabric, v, {}, {}};
  auto profile = streaming::NetflixClient::Profile::pc();
  profile.adaptive = true;
  streaming::NetflixClient client{h.sim, fm, v, profile, 50e6, {}};
  client.start();
  h.sim.run_until(sim::SimTime::from_seconds(60.0));
  EXPECT_DOUBLE_EQ(client.selected_rate_bps(), video::netflix_rate_ladder().back());
  // Congestion onset: the bottleneck collapses to 1.5 Mbps.
  h.path.down().set_rate(1.5e6);
  h.sim.run_until(sim::SimTime::from_seconds(400.0));
  EXPECT_LT(client.selected_rate_bps(), video::netflix_rate_ladder().back());
  EXPECT_GE(client.rate_switches(), 1U);
}

TEST(AdaptiveNetflixTest, FixedModeNeverSwitches) {
  AdaptiveHarness h{50e6, 7};
  video::VideoMeta v;
  v.id = "c";
  v.duration_s = 3600.0;
  v.encoding_bps = 3.6e6;
  v.available_rates_bps = video::netflix_rate_ladder();
  streaming::FetchManager fm{h.sim, h.fabric, v, {}, {}};
  streaming::NetflixClient client{h.sim, fm, v, streaming::NetflixClient::Profile::pc(), 50e6,
                                  {}};
  client.start();
  h.sim.run_until(sim::SimTime::from_seconds(120.0));
  h.path.down().set_rate(1e6);
  h.sim.run_until(sim::SimTime::from_seconds(240.0));
  EXPECT_EQ(client.rate_switches(), 0U);
  EXPECT_DOUBLE_EQ(client.selected_rate_bps(), video::netflix_rate_ladder().back());
}

TEST(LinkSetRateTest, Validates) {
  sim::Simulator sim;
  sim::Rng rng{1};
  net::Link link{sim, net::Link::Config{}, nullptr, rng};
  EXPECT_THROW(link.set_rate(0.0), std::invalid_argument);
  link.set_rate(5e6);
  EXPECT_DOUBLE_EQ(link.config().rate_bps, 5e6);
}

}  // namespace
}  // namespace vstream
