// Tests for HTTP message framing and request/response exchange over the
// simulated TCP.
#include <gtest/gtest.h>

#include "http/exchange.hpp"
#include "http/message.hpp"
#include "net/path.hpp"
#include "net/profile.hpp"
#include "tcp/connection.hpp"

namespace vstream::http {
namespace {

using sim::SimTime;

TEST(HttpMessageTest, RequestSerializeParseRoundTrip) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/videoplayback?id=abc";
  req.host = "cdn.example.com";
  req.headers["User-Agent"] = "vstream/1.0";
  req.range = ByteRange{100, 999};

  const std::string text = req.serialize();
  EXPECT_NE(text.find("GET /videoplayback?id=abc HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(text.find("Range: bytes=100-999\r\n"), std::string::npos);
  EXPECT_NE(text.find("Host: cdn.example.com\r\n"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 4), "\r\n\r\n");

  const HttpRequest parsed = HttpRequest::parse(text);
  EXPECT_EQ(parsed.method, "GET");
  EXPECT_EQ(parsed.target, "/videoplayback?id=abc");
  EXPECT_EQ(parsed.host, "cdn.example.com");
  ASSERT_TRUE(parsed.range.has_value());
  EXPECT_EQ(*parsed.range, (ByteRange{100, 999}));
  EXPECT_EQ(parsed.headers.at("User-Agent"), "vstream/1.0");
}

TEST(HttpMessageTest, WireSizeMatchesSerialization) {
  HttpRequest req;
  req.headers["X-Test"] = "yes";
  EXPECT_EQ(req.wire_size(), req.serialize().size());
  HttpResponse res;
  res.content_length = 12345;
  EXPECT_EQ(res.wire_size(), res.serialize().size());
}

TEST(HttpMessageTest, ResponseSerializeParseRoundTrip) {
  HttpResponse res;
  res.status = 206;
  res.reason = reason_for_status(206);
  res.content_length = 65536;
  res.content_range = ByteRange{0, 65535};
  res.headers["Content-Type"] = "video/webm";

  const std::string text = res.serialize();
  EXPECT_NE(text.find("HTTP/1.1 206 Partial Content\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: 65536\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Range: bytes 0-65535/*"), std::string::npos);

  const HttpResponse parsed = HttpResponse::parse(text);
  EXPECT_EQ(parsed.status, 206);
  EXPECT_EQ(parsed.content_length, 65536U);
  ASSERT_TRUE(parsed.content_range.has_value());
  EXPECT_EQ(parsed.content_range->length(), 65536U);
  EXPECT_EQ(parsed.headers.at("Content-Type"), "video/webm");
}

TEST(HttpMessageTest, ByteRangeLength) {
  EXPECT_EQ((ByteRange{0, 0}).length(), 1U);
  EXPECT_EQ((ByteRange{100, 199}).length(), 100U);
}

TEST(HttpMessageTest, ParseRejectsGarbage) {
  EXPECT_THROW((void)HttpRequest::parse(""), std::invalid_argument);
  EXPECT_THROW((void)HttpRequest::parse("NOT A REQUEST\r\n\r\n"), std::invalid_argument);
  EXPECT_THROW((void)HttpResponse::parse("HTTP/1.1\r\n\r\n"), std::invalid_argument);
  EXPECT_THROW((void)HttpRequest::parse("GET / HTTP/1.1\r\nBadHeader\r\n\r\n"),
               std::invalid_argument);
}

TEST(HttpMessageTest, ReasonStrings) {
  EXPECT_EQ(reason_for_status(200), "OK");
  EXPECT_EQ(reason_for_status(206), "Partial Content");
  EXPECT_EQ(reason_for_status(416), "Range Not Satisfiable");
}

TEST(HttpMessageTest, MakeVideoRequestCarriesRange) {
  const auto req = make_video_request("abc", ByteRange{0, 1023});
  EXPECT_EQ(req.method, "GET");
  EXPECT_NE(req.target.find("abc"), std::string::npos);
  ASSERT_TRUE(req.range.has_value());
  EXPECT_EQ(req.range->length(), 1024U);
}

struct ExchangeHarness {
  ExchangeHarness() : rng{5}, path{sim, profile(), rng}, fabric{sim, path} {}

  static net::NetworkProfile profile() {
    auto p = net::profile_for(net::Vantage::kResearch);
    p.loss_rate = 0.0;
    return p;
  }

  sim::Simulator sim;
  sim::Rng rng;
  net::Path path;
  tcp::Fabric fabric;
};

TEST(HttpExchangeTest, RequestReachesServerHandler) {
  ExchangeHarness h;
  auto& conn = h.fabric.create_connection({}, {});
  std::vector<HttpRequest> seen;
  HttpServer server{conn.server(), [&](const HttpRequest& req, const HttpServer::MakeResponder&) {
                      seen.push_back(req);
                    }};
  conn.client().set_on_established([&] {
    HttpClient client{conn.client()};
    client.send_request(make_video_request("vid42"));
  });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(2.0));
  ASSERT_EQ(seen.size(), 1U);
  EXPECT_NE(seen[0].target.find("vid42"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 1U);
}

TEST(HttpExchangeTest, ResponseHeadAndBodyDelivered) {
  ExchangeHarness h;
  auto& conn = h.fabric.create_connection({}, {});
  constexpr std::uint64_t kBody = 100'000;
  HttpServer server{conn.server(),
                    [&](const HttpRequest&, const HttpServer::MakeResponder& make) {
                      auto responder = make(kBody);
                      HttpResponse head;
                      head.status = 200;
                      head.content_length = kBody;
                      responder->send_head(head);
                      responder->send_body(kBody);
                      EXPECT_TRUE(responder->complete());
                    }};
  std::uint64_t body_bytes = 0;
  std::optional<HttpResponse> head;
  std::uint64_t head_size = 0;
  conn.client().set_on_readable([&] {
    auto r = conn.client().read(UINT64_MAX);
    for (auto& t : r.tags) {
      if (t.type() == typeid(HttpResponse)) {
        head = std::any_cast<HttpResponse>(t);
        head_size = head->wire_size();
      }
    }
    body_bytes = conn.client().total_read() > head_size ? conn.client().total_read() - head_size
                                                        : 0;
  });
  conn.client().set_on_established([&] {
    HttpClient client{conn.client()};
    client.send_request(make_video_request("x"));
  });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(10.0));
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->status, 200);
  EXPECT_EQ(head->content_length, kBody);
  EXPECT_EQ(body_bytes, kBody);
}

TEST(HttpExchangeTest, RangedRequestGets206WithClampedRange) {
  ExchangeHarness h;
  auto& conn = h.fabric.create_connection({}, {});
  HttpServer server{conn.server(),
                    [&](const HttpRequest& req, const HttpServer::MakeResponder& make) {
                      ASSERT_TRUE(req.range.has_value());
                      auto responder = make(req.range->length());
                      HttpResponse head;
                      head.status = 206;
                      head.content_length = req.range->length();
                      head.content_range = req.range;
                      responder->send_head(head);
                      responder->send_body(req.range->length());
                    }};
  std::optional<HttpResponse> head;
  conn.client().set_on_readable([&] {
    auto r = conn.client().read(UINT64_MAX);
    for (auto& t : r.tags) {
      if (t.type() == typeid(HttpResponse)) head = std::any_cast<HttpResponse>(t);
    }
  });
  conn.client().set_on_established([&] {
    HttpClient client{conn.client()};
    client.send_request(make_video_request("x", ByteRange{1000, 1999}));
  });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(5.0));
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->status, 206);
  EXPECT_EQ(head->content_length, 1000U);
}

TEST(HttpExchangeTest, PacedBodyArrivesGradually) {
  ExchangeHarness h;
  auto& conn = h.fabric.create_connection({}, {});
  std::shared_ptr<Responder> kept;
  HttpServer server{conn.server(),
                    [&](const HttpRequest&, const HttpServer::MakeResponder& make) {
                      kept = make(1'000'000);
                      HttpResponse head;
                      head.content_length = 1'000'000;
                      kept->send_head(head);
                      kept->send_body(100'000);  // first instalment only
                    }};
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.client().set_on_established([&] {
    HttpClient client{conn.client()};
    client.send_request(make_video_request("x"));
  });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(2.0));
  const std::uint64_t after_first = conn.client().total_read();
  EXPECT_LT(after_first, 200'000U);
  kept->send_body(900'000);  // the rest
  h.sim.run_until(SimTime::from_seconds(10.0));
  EXPECT_GT(conn.client().total_read(), 1'000'000U);
  EXPECT_TRUE(kept->complete());
}

TEST(HttpExchangeTest, MultipleSequentialRequestsOnOneConnection) {
  ExchangeHarness h;
  auto& conn = h.fabric.create_connection({}, {});
  int served = 0;
  HttpServer server{conn.server(),
                    [&](const HttpRequest&, const HttpServer::MakeResponder& make) {
                      ++served;
                      auto responder = make(1000);
                      HttpResponse head;
                      head.content_length = 1000;
                      responder->send_head(head);
                      responder->send_body(1000);
                    }};
  conn.client().set_on_readable([&] { (void)conn.client().read(UINT64_MAX); });
  conn.client().set_on_established([&] {
    HttpClient client{conn.client()};
    client.send_request(make_video_request("a"));
    client.send_request(make_video_request("b"));
  });
  conn.open();
  h.sim.run_until(SimTime::from_seconds(5.0));
  EXPECT_EQ(served, 2);
}

TEST(HttpExchangeTest, ResponderGuardsMisuse) {
  ExchangeHarness h;
  auto& conn = h.fabric.create_connection({}, {});
  Responder responder{conn.server(), 100};
  EXPECT_THROW(responder.send_body(10), std::logic_error);  // body before head
  HttpResponse head;
  head.content_length = 100;
  // Sending a head on an unestablished endpoint queues bytes; allowed.
  responder.send_head(head);
  EXPECT_THROW(responder.send_head(head), std::logic_error);  // double head
  EXPECT_EQ(responder.send_body(1000), 100U);                 // clamped to remaining
  EXPECT_EQ(responder.send_body(10), 0U);
}

TEST(HttpExchangeTest, ServerRequiresHandler) {
  ExchangeHarness h;
  auto& conn = h.fabric.create_connection({}, {});
  EXPECT_THROW((HttpServer{conn.server(), nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace vstream::http
