// Focused tests for the video server's pacing machinery and HTTP edge
// cases not covered by the integration suites: multiple paced responses on
// one connection, pacer shutdown, burst clamping for short videos, and the
// responder lifecycle under stop().
#include <gtest/gtest.h>

#include "analysis/onoff.hpp"
#include "capture/recorder.hpp"
#include "http/exchange.hpp"
#include "net/path.hpp"
#include "net/profile.hpp"
#include "streaming/clients.hpp"
#include "streaming/video_server.hpp"
#include "tcp/connection.hpp"

namespace vstream::streaming {
namespace {

using sim::SimTime;

struct Wire {
  Wire() : rng{3}, path{sim, profile(), rng}, fabric{sim, path} {}
  static net::NetworkProfile profile() {
    auto p = net::profile_for(net::Vantage::kResearch);
    p.loss_rate = 0.0;
    return p;
  }
  sim::Simulator sim;
  sim::Rng rng;
  net::Path path;
  tcp::Fabric fabric;
};

video::VideoMeta make_video(double duration_s, double rate_bps) {
  video::VideoMeta v;
  v.id = "vs";
  v.duration_s = duration_s;
  v.encoding_bps = rate_bps;
  v.container = video::Container::kFlash;
  return v;
}

TEST(VideoServerTest, ShortVideoBurstClampedToVideoSize) {
  // A 20 s video is smaller than the 40 s burst: everything goes out in
  // the buffering phase, no steady state (the Eq (7) "short video" case).
  Wire w;
  auto& conn = w.fabric.create_connection({}, {});
  const auto video = make_video(20.0, 1e6);  // 2.5 MB
  VideoStreamServer server{w.sim, conn.server(), video, ServerPacing::youtube_flash()};
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("vs"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(30.0));
  EXPECT_NEAR(static_cast<double>(client.bytes_read()), video.size_bytes(), 400.0);
}

TEST(VideoServerTest, PacedTransferCompletesEntireVideo) {
  // The pacer must stop itself at end-of-video, having served everything.
  Wire w;
  auto& conn = w.fabric.create_connection({}, {});
  const auto video = make_video(60.0, 1e6);  // 7.5 MB: 40 s burst + 20 s paced
  VideoStreamServer server{w.sim, conn.server(), video, ServerPacing::youtube_flash()};
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("vs"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(120.0));
  EXPECT_NEAR(static_cast<double>(client.bytes_read()), video.size_bytes(), 400.0);
}

TEST(VideoServerTest, StopHaltsPacing) {
  Wire w;
  auto& conn = w.fabric.create_connection({}, {});
  const auto video = make_video(600.0, 1e6);
  VideoStreamServer server{w.sim, conn.server(), video, ServerPacing::youtube_flash()};
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("vs"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(10.0));
  server.stop();
  const auto read_at_stop = client.bytes_read();
  w.sim.run_until(SimTime::from_seconds(40.0));
  // Nothing beyond in-flight data after stop (allow one block of slack).
  EXPECT_LE(client.bytes_read(), read_at_stop + 128 * 1024);
}

TEST(VideoServerTest, TwoSequentialRequestsEachPaced) {
  // A client re-requesting (e.g. a seek) gets a second paced response on
  // the same connection; both complete.
  Wire w;
  auto& conn = w.fabric.create_connection({}, {});
  const auto video = make_video(45.0, 1e6);  // 5.6 MB each
  VideoStreamServer server{w.sim, conn.server(), video, ServerPacing::youtube_flash()};
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("vs"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(60.0));
  const auto after_first = client.bytes_read();
  EXPECT_NEAR(static_cast<double>(after_first), video.size_bytes(), 400.0);
  {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("vs"));
  }
  w.sim.run_until(SimTime::from_seconds(140.0));
  EXPECT_NEAR(static_cast<double>(client.bytes_read()),
              2.0 * static_cast<double>(video.size_bytes()), 800.0);
  EXPECT_EQ(server.requests_served(), 2U);
}

TEST(VideoServerTest, RangedPacedResponseServesOnlyRangeAtPacedRate) {
  Wire w;
  capture::TraceRecorder recorder{w.sim, w.path};
  recorder.start();
  tcp::TcpOptions copt;
  copt.recv_buffer_bytes = 512 * 1024;
  auto& conn = w.fabric.create_connection(copt, {});
  const auto video = make_video(600.0, 1e6);
  auto pacing = ServerPacing::youtube_flash();
  pacing.initial_burst_playback_s = 5.0;
  VideoStreamServer server{w.sim, conn.server(), video, pacing};
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("vs", http::ByteRange{0, 3'999'999}));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(60.0));
  // 4 MB range: 0.625 MB burst + blocks at 1.25 Mbps => done in ~22 s.
  EXPECT_NEAR(static_cast<double>(client.bytes_read()), 4e6, 500.0);
  const auto analysis = analysis::analyze_on_off(recorder.trace());
  ASSERT_TRUE(analysis.has_steady_state());
  EXPECT_NEAR(analysis.median_block_bytes(), 64.0 * 1024, 3000.0);
}

TEST(VideoServerTest, ZeroLengthVideoYieldsEmptyResponse) {
  Wire w;
  auto& conn = w.fabric.create_connection({}, {});
  auto video = make_video(600.0, 1e6);
  video.encoding_bps = 1.0;  // ~75 bytes total
  video.duration_s = 0.001;
  VideoStreamServer server{w.sim, conn.server(), video, ServerPacing::bulk()};
  GreedyClient client{conn.client(), {}};
  conn.client().set_on_established([&] {
    http::HttpClient http{conn.client()};
    http.send_request(http::make_video_request("vs"));
  });
  conn.open();
  w.sim.run_until(SimTime::from_seconds(5.0));
  ASSERT_EQ(client.responses().size(), 1U);
  EXPECT_EQ(client.responses()[0].content_length, 0U);
}

}  // namespace
}  // namespace vstream::streaming
