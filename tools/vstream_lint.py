#!/usr/bin/env python3
"""vstream domain linter: repo rules clang-tidy cannot express.

Rules (all scoped to C++ sources):

  rand         no rand()/srand()/random() — all stochastic behaviour must
               flow through sim::Rng so a run is reproducible from its seed.
               Scope: src/, examples/, tools/, bench/, tests/ (a test that
               draws from an unseeded PRNG flakes by construction).
  wall-clock   no wall-clock reads (std::chrono::*_clock, time(), clock(),
               gettimeofday) inside simulation-driven code: simulated time
               comes from sim::Simulator. Scope: src/, examples/, tools/,
               tests/ (a test that reads the host clock is timing-flaky and
               cannot assert on sim-time invariants).
               bench/ is host-side harness code and exempt, as is
               src/runner/sweep_profiler.* — the one sanctioned wall-clock
               reader, which times the harness around session worlds and
               never the worlds themselves.
  float-eq     no == / != against floating-point literals; compare with an
               explicit tolerance. Scope: src/, examples/, tools/, bench/.
  naked-new    no naked new/delete; use std::make_unique / std::make_shared
               or containers. Scope: src/, examples/, tools/, bench/.
  bare-assert  no <cassert> assert() — it vanishes under NDEBUG, so CI
               builds would not run it. Use the VSTREAM_* contract macros
               (src/check/contracts.hpp); in tests/, use the GTest
               EXPECT_*/ASSERT_* macros. static_assert is fine.
               Scope: src/, examples/, tools/, bench/, tests/.
  thread       no std::thread / std::jthread / std::async / <thread> /
               <future> outside src/runner — each simulated world is
               single-threaded by construction (that is what makes twin-run
               determinism auditable), and all fan-out goes through
               runner::ParallelSweep, which parallelises across whole
               worlds, never inside one.
               Scope: src/, examples/, tools/, bench/; src/runner/ exempt.
  trace-copy   no copy-returning trace filters (only_host / in_direction /
               without_connection) outside src/capture — they materialise a
               second packet vector per call. Use the zero-copy
               capture::TraceView combinators (host / direction /
               excluding_connection) instead.
               Scope: src/, examples/, tools/, bench/; src/capture/ exempt
               (the legacy filters live there and TraceView::materialize
               uses them on purpose).
  sim-time     retry/backoff and impairment-schedule code must time itself
               exclusively on the simulation clock: no std::chrono types,
               no sleep_for/sleep_until/usleep/nanosleep. A wall-clock nap
               in a watchdog or a backoff would silently decouple recovery
               from sim time and break twin-run digest determinism.
               Scope: ONLY src/net/dynamics.*, src/streaming/retry.hpp and
               src/streaming/fetch.* (the first rule that applies to named
               files rather than whole directories).
  profiler-clock
               the sweep profiler may READ the wall clock (that is its job)
               but must never block on it: no sleep_for/sleep_until/usleep/
               nanosleep. A sleeping profiler would skew the very phase
               timings it reports and stall the worker it runs on.
               Scope: ONLY src/runner/sweep_profiler.hpp/.cpp.
  run-session  no direct streaming::run_session calls in examples/ — example
               scenarios go through the builder APIs (TopologyBuilder for
               multi-session worlds, SessionBuilder for one private world),
               which validate before running. The documented legacy
               single-session entry points (DESIGN.md §15) are exempt:
               examples/quickstart.cpp and examples/strategy_explorer.cpp.
               Scope: examples/ only.

Waivers: append `// vstream-lint: allow(<rule>): <reason>` to the offending
line, or put `// vstream-lint-file: allow(<rule>): <reason>` anywhere in the
file to waive the rule for the whole file. Reasons are mandatory.

Exit status (the repo-wide analyzer convention, shared with
vstream_ast_lint.py and check_bench_floor.py): 0 clean, 1 findings,
2 usage or environment error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

LINE_WAIVER = re.compile(r"//\s*vstream-lint:\s*allow\((?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)\):\s*\S")
FILE_WAIVER = re.compile(
    r"//\s*vstream-lint-file:\s*allow\((?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)\):\s*\S"
)

# rule -> (pattern, message, directories it applies to)
RULES = {
    "rand": (
        re.compile(r"(?<![\w:])(?:std::)?s?rand(?:om)?\s*\("),
        "rand()/srand()/random() breaks seeded reproducibility; use sim::Rng",
        ("src", "examples", "tools", "bench", "tests"),
    ),
    "wall-clock": (
        re.compile(
            r"std::chrono::(?:system|steady|high_resolution)_clock"
            r"|(?<![\w:])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
            r"|(?<![\w:])(?:std::)?clock\s*\(\s*\)"
            r"|(?<![\w:])gettimeofday\s*\("
        ),
        "wall-clock read inside simulation-driven code; use sim::Simulator::now()",
        ("src", "examples", "tools", "tests"),
    ),
    "float-eq": (
        re.compile(
            r"[=!]=\s*[-+]?(?:\d+\.\d*|\.\d+|\d+(?=[eE]))(?:[eE][-+]?\d+)?[fF]?(?![\w.])"
            r"|(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?\s*[=!]="
        ),
        "floating-point equality comparison; compare with an explicit tolerance",
        ("src", "examples", "tools", "bench"),
    ),
    "naked-new": (
        re.compile(r"(?<![\w:])new\s+[A-Za-z_(]|(?<![\w:])delete\s+[\w(]|(?<![\w:])delete\[\]"),
        "naked new/delete; use std::make_unique / std::make_shared or a container",
        ("src", "examples", "tools", "bench"),
    ),
    "bare-assert": (
        re.compile(r"(?<![\w.])assert\s*\(|#\s*include\s*<cassert>|#\s*include\s*<assert\.h>"),
        "bare assert() vanishes under NDEBUG; use VSTREAM_INVARIANT / _PRECONDITION "
        "(tests: GTest EXPECT_*/ASSERT_*)",
        ("src", "examples", "tools", "bench", "tests"),
    ),
    "thread": (
        re.compile(
            r"std::(?:jthread|thread|async)\b"
            r"|#\s*include\s*<(?:thread|future)>"
        ),
        "threads outside src/runner; per-world code is single-threaded — fan out via runner::ParallelSweep",
        ("src", "examples", "tools", "bench"),
    ),
    "trace-copy": (
        re.compile(r"\.\s*(?:only_host|in_direction|without_connection)\s*\("),
        "copy-returning trace filter; use the zero-copy capture::TraceView combinators",
        ("src", "examples", "tools", "bench"),
    ),
    "sim-time": (
        re.compile(
            r"std::chrono::"
            r"|(?<![\w:])sleep_(?:for|until)\s*\("
            r"|(?<![\w:])u?sleep\s*\("
            r"|(?<![\w:])nanosleep\s*\("
        ),
        "retry/backoff and impairment schedules must use sim::Time/sim::Duration, never wall-clock",
        ("src",),
    ),
    "profiler-clock": (
        re.compile(
            r"(?<![\w:])sleep_(?:for|until)\s*\("
            r"|(?<![\w:])u?sleep\s*\("
            r"|(?<![\w:])nanosleep\s*\("
        ),
        "the sweep profiler reads the clock but must never sleep on it",
        ("src",),
    ),
    "run-session": (
        re.compile(r"\brun_session\s*\("),
        "direct run_session in examples/; use TopologyBuilder / SessionBuilder — the documented "
        "legacy single-session entry points are quickstart.cpp and strategy_explorer.cpp",
        ("examples",),
    ),
}

# rule -> path prefixes (relative to the repo root) where it does not apply.
# src/runner is the one sanctioned home for threads: it parallelises across
# whole simulated worlds and never shares state inside one.
RULE_EXEMPT_PREFIXES = {
    "thread": (("src", "runner"),),
    # The legacy copy filters are defined in src/capture, and
    # TraceView::materialize delegates to them deliberately.
    "trace-copy": (("src", "capture"),),
    # The sweep profiler is the one sanctioned wall-clock reader: it times
    # the harness around session worlds (build/run/analyze/merge phases),
    # never anything inside a world. The profiler-clock rule below still
    # bans it from sleeping.
    "wall-clock": (
        ("src", "runner", "sweep_profiler.hpp"),
        ("src", "runner", "sweep_profiler.cpp"),
    ),
    # The two documented legacy single-session entry points (DESIGN.md §15):
    # quickstart is the canonical smallest private-world example, and
    # strategy_explorer's single-run mode feeds one traced world to the
    # analysis stack. Everything else in examples/ goes through builders.
    "run-session": (
        ("examples", "quickstart.cpp"),
        ("examples", "strategy_explorer.cpp"),
    ),
}

# rule -> path prefixes the rule is restricted to: it fires ONLY under one of
# them (the inverse of RULE_EXEMPT_PREFIXES). A prefix may name a directory
# or, with a final filename component, a single file. Used for rules that
# enforce a contract of one subsystem rather than a repo-wide convention.
RULE_ONLY_PREFIXES = {
    # Retry/backoff timers and impairment schedules are *simulated* time by
    # contract: a std::chrono duration or a sleep would tie recovery to the
    # host clock and break twin-run digest determinism.
    "sim-time": (
        ("src", "net", "dynamics.hpp"),
        ("src", "net", "dynamics.cpp"),
        ("src", "streaming", "retry.hpp"),
        ("src", "streaming", "fetch.hpp"),
        ("src", "streaming", "fetch.cpp"),
    ),
    # The profiler holds the wall-clock exemption above; this companion rule
    # confines what that exemption licenses — reading the clock, never
    # blocking on it.
    "profiler-clock": (
        ("src", "runner", "sweep_profiler.hpp"),
        ("src", "runner", "sweep_profiler.cpp"),
    ),
}

COMMENT_ONLY = re.compile(r"^\s*(//|\*|/\*)")
STRING_LITERAL = re.compile(r'"(?:[^"\\]|\\.)*"')


def lint_file(path: Path, root: Path) -> list[str]:
    rel = path.relative_to(root)
    top = rel.parts[0]
    text = path.read_text(encoding="utf-8", errors="replace")
    file_waived: set[str] = set()
    for match in FILE_WAIVER.finditer(text):
        file_waived.update(r.strip() for r in match.group("rules").split(","))

    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if COMMENT_ONLY.match(line):
            continue
        waived = set(file_waived)
        line_waiver = LINE_WAIVER.search(line)
        if line_waiver:
            waived.update(r.strip() for r in line_waiver.group("rules").split(","))
        # Strip string literals and the trailing comment before matching, so
        # documentation and messages never trip a rule.
        code = STRING_LITERAL.sub('""', line)
        code = code.split("//", 1)[0]
        if "static_assert" in code:
            code = code.replace("static_assert", "")
        for rule, (pattern, message, scopes) in RULES.items():
            if top not in scopes or rule in waived:
                continue
            exempt = RULE_EXEMPT_PREFIXES.get(rule, ())
            if any(rel.parts[: len(prefix)] == prefix for prefix in exempt):
                continue
            only = RULE_ONLY_PREFIXES.get(rule)
            if only is not None and not any(
                rel.parts[: len(prefix)] == prefix for prefix in only
            ):
                continue
            if pattern.search(code):
                findings.append(f"{rel}:{lineno}: [{rule}] {message}\n    {line.strip()}")
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout containing this script)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="restrict linting to these files (default: whole tree)")
    args = parser.parse_args()
    root = args.root.resolve()

    if args.paths:
        files = [p.resolve() for p in args.paths if p.suffix in CPP_SUFFIXES]
    else:
        files = sorted(
            p for top in ("src", "examples", "tools", "bench", "tests")
            for p in (root / top).rglob("*") if p.suffix in CPP_SUFFIXES
        )

    findings: list[str] = []
    for path in files:
        try:
            findings.extend(lint_file(path, root))
        except ValueError:
            print(f"vstream_lint: {path} is outside {root}", file=sys.stderr)
            return 2

    for finding in findings:
        print(finding)
    print(f"vstream_lint: {len(files)} files, {len(findings)} finding(s)")
    return 0 if not findings else 1


if __name__ == "__main__":
    sys.exit(main())
