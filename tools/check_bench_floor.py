#!/usr/bin/env python3
"""Fail CI when bench_engine regresses against the checked-in perf floor.

Usage:
    check_bench_floor.py BENCH_engine.json bench/engine_floor.json

Reads the telemetry JSON written by `bench_engine --metrics-out` and compares
every metric named in the floor file's "metrics" object against its floor:
a metric fails when `measured < floor * (1 - tolerance)`. Metrics missing
from the telemetry's "extra" object fail too — silently losing a measurement
is itself a regression in the perf harness.

Exit status (the repo-wide analyzer convention, shared with
vstream_lint.py and vstream_ast_lint.py):
  0  every metric clears its floor
  1  findings — at least one metric regressed or went missing
  2  usage or environment error (wrong arguments, unreadable or malformed
     telemetry/floor files)
"""

from __future__ import annotations

import json
import sys


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(argv[1], encoding="utf-8") as f:
            report = json.load(f)
        with open(argv[2], encoding="utf-8") as f:
            floor_spec = json.load(f)
    except OSError as exc:
        print(f"check_bench_floor: cannot read input: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"check_bench_floor: malformed JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(floor_spec.get("metrics"), dict):
        print("check_bench_floor: floor file has no 'metrics' object", file=sys.stderr)
        return 2

    extra = report.get("extra", {})
    tolerance = float(floor_spec.get("tolerance", 0.0))
    failures = []

    for name, floor in sorted(floor_spec["metrics"].items()):
        threshold = float(floor) * (1.0 - tolerance)
        measured = extra.get(name)
        if measured is None:
            failures.append(f"{name}: missing from telemetry extra block")
            continue
        verdict = "ok" if measured >= threshold else "REGRESSED"
        print(
            f"{name:45s} measured={measured:16.1f} floor={float(floor):16.1f} "
            f"threshold={threshold:16.1f} {verdict}"
        )
        if measured < threshold:
            failures.append(
                f"{name}: {measured:.1f} below threshold {threshold:.1f} "
                f"(floor {float(floor):.1f}, tolerance {tolerance:.0%})"
            )

    if failures:
        print("\nperf floor check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf floor check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
