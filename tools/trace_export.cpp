// trace_export: convert a vstream JSONL trace into Chrome trace-event JSON.
//
// The simulator's sinks write one JSON object per line (JsonlFileSink);
// this tool re-parses those lines into TraceEvents and renders them with
// the same ChromeTraceWriter the live ChromeTraceSink uses, so an archived
// JSONL capture and a --trace-out run produce byte-identical timelines.
// Load the output in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
//
// Usage: trace_export <trace.jsonl> [out.json]
//   With no output path the Chrome JSON goes to stdout. Lines that don't
//   parse as known trace events are counted and skipped (a trace file may
//   interleave foreign records, e.g. a flight-recorder dump header).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " <trace.jsonl> [out.json]\n"
            << "  Converts a vstream JSONL trace to Chrome trace-event JSON\n"
            << "  (open in https://ui.perfetto.dev or chrome://tracing).\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) return usage(argv[0]);
  const std::string in_path = argv[1];
  if (in_path == "-h" || in_path == "--help") return usage(argv[0]);

  std::ifstream in{in_path};
  if (!in) {
    std::cerr << "trace_export: cannot open " << in_path << "\n";
    return 1;
  }

  vstream::obs::ChromeTraceWriter writer;
  std::size_t parsed = 0;
  std::size_t skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto event = vstream::obs::from_jsonl(line)) {
      writer.add(*event);
      ++parsed;
    } else {
      ++skipped;
    }
  }

  if (argc == 3) {
    std::ofstream out{argv[2], std::ios::trunc};
    if (!out) {
      std::cerr << "trace_export: cannot open " << argv[2] << "\n";
      return 1;
    }
    writer.write(out);
    std::cerr << "trace_export: " << parsed << " events -> " << argv[2];
    if (skipped > 0) std::cerr << " (" << skipped << " unrecognized lines skipped)";
    std::cerr << "\n";
  } else {
    writer.write(std::cout);
  }
  return 0;
}
