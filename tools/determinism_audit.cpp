// Determinism audit: run every canonical and fault-injection scenario twice
// with the same seed and fail loudly if the twin state digests diverge.
//
// The second twin (and every parallel-audit run) is armed with a trace sink,
// which switches on the span layer and every probe. Tracing is digest-
// neutral by contract — spans read sim-time, never schedule events or touch
// RNG — so an armed run must fingerprint identically to an unobserved one;
// this audit is what enforces that.
//
// The digest folds the simulator's event dispatch order and per-segment TCP
// state snapshots (see check/digest.hpp), so it catches the nondeterminism
// classes sanitizers miss: unordered-container iteration feeding the event
// queue, uninitialized reads steering a branch, address-dependent ordering.
//
//   ./build/tools/determinism_audit                # full 180 s scenarios
//   ./build/tools/determinism_audit --seconds 30   # shorter capture window
//   ./build/tools/determinism_audit --canary       # prove the audit detects
//                                                  # seeded unordered-map order
//   ./build/tools/determinism_audit --jobs 4       # serial vs ParallelSweep:
//                                                  # per-session digests must
//                                                  # match bit-for-bit
//   ./build/tools/determinism_audit --shards 3     # streamed sweep digest:
//                                                  # serial == parallel ==
//                                                  # sharded merge, bit-equal
//   ./build/tools/determinism_audit --topology     # multi-session worlds:
//                                                  # twin topologies bit-equal
//                                                  # across every arrival
//                                                  # process, and the sharded
//                                                  # topology sweep digest is
//                                                  # worker-count invariant
//
// Exit status: 0 when every twin run agrees (and the canary diverges as
// designed); 1 on any divergence (or a canary the audit failed to catch).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include <algorithm>
#include <string>

#include "obs/trace.hpp"
#include "runner/parallel_sweep.hpp"
#include "runner/session_sweep.hpp"
#include "runner/topology_sweep.hpp"
#include "sim/determinism_canary.hpp"
#include "streaming/scenarios.hpp"
#include "streaming/topology_builder.hpp"

namespace {

/// The audited catalog: every canonical Table-1 scenario plus the fault
/// catalog (blackouts, burst-loss windows, rate halvings, link flaps). The
/// fault runs are the ones most likely to smoke out nondeterminism — retry
/// timers, impairment transitions, and loss overlays all reschedule events —
/// so they are audited with exactly the same twin-run bar as healthy runs.
std::vector<vstream::streaming::NamedScenario> audited_catalog(double seconds) {
  auto scenarios = vstream::streaming::canonical_scenarios(seconds);
  auto faults = vstream::streaming::fault_scenarios(seconds);
  scenarios.insert(scenarios.end(), std::make_move_iterator(faults.begin()),
                   std::make_move_iterator(faults.end()));
  return scenarios;
}

int run_canary() {
  // Same nonce twice -> identical digests; different nonce -> different
  // event order, which the digest must expose.
  const std::uint64_t twin_a = vstream::sim::determinism_canary_digest(1);
  const std::uint64_t twin_b = vstream::sim::determinism_canary_digest(1);
  const std::uint64_t other = vstream::sim::determinism_canary_digest(2);
  std::printf("canary twin digests   : %016llx / %016llx\n",
              static_cast<unsigned long long>(twin_a), static_cast<unsigned long long>(twin_b));
  std::printf("canary reseeded digest: %016llx\n", static_cast<unsigned long long>(other));
  if (twin_a != twin_b) {
    std::printf("FAIL: canary twin runs diverged — the harness itself is nondeterministic\n");
    return 1;
  }
  if (other == twin_a) {
    std::printf("FAIL: reseeded canary was NOT caught — digest is blind to event order\n");
    return 1;
  }
  std::printf("ok: seeded unordered-map iteration order is caught by the digest\n");
  return 0;
}

/// Parallel-engine audit: every catalog scenario runs once serially and once
/// under a ParallelSweep with `jobs` workers. The per-session worlds are
/// shared-nothing, so the fingerprints (event-order digest + TCP state
/// snapshots + headline results) must match bit-for-bit; any divergence
/// means threading leaked into a simulation path.
int run_parallel_audit(double seconds, std::size_t jobs) {
  const auto scenarios = audited_catalog(seconds);
  std::vector<vstream::streaming::RunFingerprint> serial;
  serial.reserve(scenarios.size());
  for (const auto& scenario : scenarios) {
    serial.push_back(vstream::streaming::fingerprint_session(scenario.config));
  }
  const vstream::runner::ParallelSweep pool{jobs};
  const auto parallel = pool.map<vstream::streaming::RunFingerprint>(
      scenarios.size(), [&scenarios](std::size_t i) {
        // Each parallel run is armed with its own bounded sink: the span
        // layer and every probe fire, and the fingerprint must still match
        // the unobserved serial run (tracing is digest-neutral).
        vstream::obs::RingBufferSink sink{4096};
        return vstream::streaming::fingerprint_session(scenarios[i].config, &sink);
      });
  int divergent = 0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const bool same = serial[i] == parallel[i];
    std::printf("%-40s serial=%016llx parallel=%016llx %s\n", scenarios[i].name.c_str(),
                static_cast<unsigned long long>(serial[i].digest),
                static_cast<unsigned long long>(parallel[i].digest), same ? "ok" : "DIVERGED");
    if (!same) ++divergent;
  }
  std::printf("%zu scenarios under %zu workers, %d divergent\n", scenarios.size(), pool.jobs(),
              divergent);
  return divergent == 0 ? 0 : 1;
}

/// Sharded-sweep audit: the same catalog run through the streamed sweep
/// (runner/session_sweep.hpp) three ways — serial, parallel, and split into
/// `shards` contiguous slices merged back together. The order-independent
/// sweep digest must be bit-identical across all three: that equality is
/// what lets the capacity planner fan a million sessions across processes
/// and still prove the merged run is the run it claims to be.
int run_shard_audit(double seconds, std::size_t shards) {
  const auto scenarios = audited_catalog(seconds);
  const std::size_t n = scenarios.size();
  const auto make = [&scenarios](std::size_t g) { return scenarios[g].config; };

  const auto serial = vstream::runner::run_sessions_streamed(
      vstream::runner::ParallelSweep{1}, 0, n, make);
  const auto parallel = vstream::runner::run_sessions_streamed(
      vstream::runner::ParallelSweep{4}, 0, n, make);
  vstream::runner::SweepAccumulator merged;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t first = n * s / shards;
    const std::size_t count = n * (s + 1) / shards - first;
    merged.merge(vstream::runner::run_sessions_streamed(
        vstream::runner::ParallelSweep{2}, first, count, make));
  }

  std::printf("serial   digest %016llx over %llu sessions\n",
              static_cast<unsigned long long>(serial.digest.combined),
              static_cast<unsigned long long>(serial.digest.sessions));
  std::printf("parallel digest %016llx over %llu sessions\n",
              static_cast<unsigned long long>(parallel.digest.combined),
              static_cast<unsigned long long>(parallel.digest.sessions));
  std::printf("sharded  digest %016llx over %llu sessions (%zu shards)\n",
              static_cast<unsigned long long>(merged.digest.combined),
              static_cast<unsigned long long>(merged.digest.sessions), shards);
  const bool ok = serial.digest == parallel.digest && serial.digest == merged.digest &&
                  serial.sessions == merged.sessions &&
                  serial.bytes_downloaded == merged.bytes_downloaded &&
                  serial.sim_events == merged.sim_events;
  std::printf("%zu scenarios: serial == parallel == sharded merge: %s\n", n,
              ok ? "ok" : "DIVERGED");
  return ok ? 0 : 1;
}

/// One named multi-session world for the topology audit.
struct NamedTopology {
  std::string name;
  vstream::streaming::TopologyConfig config;
};

/// Topology audit catalog: every arrival process, plus the world-level
/// machinery most likely to smoke out nondeterminism — cross-traffic
/// injection, shared-link impairments, random loss — each of which
/// reschedules events against dozens of contending sessions.
std::vector<NamedTopology> topology_catalog(double seconds) {
  using namespace vstream;
  const double horizon = std::clamp(seconds, 10.0, 60.0);
  const auto base = [horizon](std::uint64_t seed) {
    video::VideoMeta meta;
    meta.id = "audit";
    meta.duration_s = 8.0;
    meta.encoding_bps = 100e3;
    meta.container = video::Container::kFlashHd;
    streaming::TopologyBuilder b;
    b.container(video::Container::kFlashHd)
        .vantage(net::Vantage::kResidence)
        .video(meta)
        .sessions(48)
        .bottleneck_rate_bps(30e6)
        .horizon_s(horizon)
        .sample_window_s(0.1)
        .seed(seed);
    return b;
  };
  const auto vary = [](std::size_t, sim::Rng& rng, streaming::SessionConfig& cfg) {
    cfg.video.encoding_bps = rng.uniform(60e3, 140e3);
    cfg.video.duration_s = rng.uniform(4.0, 10.0);
  };

  std::vector<NamedTopology> catalog;
  catalog.push_back({"topology/poisson-churn",
                     base(401)
                         .workload(streaming::WorkloadBuilder{}.poisson(4.0).customize(vary).build())
                         .build()});
  catalog.push_back({"topology/flash-crowd",
                     base(402)
                         .workload(streaming::WorkloadBuilder{}
                                       .flash_crowd(/*spread_s=*/3.0, /*start_s=*/1.0)
                                       .customize(vary)
                                       .build())
                         .build()});
  catalog.push_back({"topology/diurnal",
                     base(403)
                         .workload(streaming::WorkloadBuilder{}
                                       .diurnal(/*rate_per_s=*/4.0, /*period_s=*/20.0)
                                       .customize(vary)
                                       .build())
                         .build()});
  {
    net::CrossTraffic::Config cross;
    cross.mean_rate_bps = 8e6;
    catalog.push_back({"topology/cross-traffic",
                       base(404)
                           .workload(streaming::WorkloadBuilder{}.poisson(4.0).customize(vary).build())
                           .cross_traffic(cross)
                           .build()});
  }
  catalog.push_back({"topology/bottleneck-loss",
                     base(405)
                         .workload(streaming::WorkloadBuilder{}.poisson(4.0).customize(vary).build())
                         .bottleneck_loss(/*rate=*/0.005, /*burst_len=*/2.0)
                         .build()});
  return catalog;
}

/// Topology audit: twin fingerprints per catalog world (same seed ->
/// bit-equal; reseeded -> must move), then the streamed topology sweep run
/// serially, pooled, and as a 3-shard merge — all three sweep digests must
/// agree bit-for-bit, the same bar run_shard_audit holds session sweeps to.
int run_topology_audit(double seconds) {
  using namespace vstream;
  const auto catalog = topology_catalog(seconds);
  int divergent = 0;
  for (const auto& entry : catalog) {
    const auto first = streaming::fingerprint_topology(entry.config);
    const auto second = streaming::fingerprint_topology(entry.config);
    auto reseeded_cfg = entry.config;
    reseeded_cfg.seed += 1;
    const auto reseeded = streaming::fingerprint_topology(reseeded_cfg);
    const bool same = first == second;
    const bool moved = reseeded.digest != first.digest;
    std::printf("%-40s %016llx twin:%s reseed:%s\n", entry.name.c_str(),
                static_cast<unsigned long long>(first.digest), same ? "ok" : "DIVERGED",
                moved ? "moved" : "STUCK");
    if (!same || !moved) ++divergent;
  }

  // Streamed sweep: 12 worlds derived from the catalog by reseeding.
  const auto base_catalog = topology_catalog(seconds);
  const auto make = [&base_catalog](std::size_t g) {
    auto cfg = base_catalog[g % base_catalog.size()].config;
    cfg.seed += 1000 + g;
    return cfg;
  };
  constexpr std::size_t kWorlds = 12;
  const auto serial =
      runner::run_topologies_streamed(runner::ParallelSweep{1}, 0, kWorlds, make);
  const auto parallel =
      runner::run_topologies_streamed(runner::ParallelSweep{4}, 0, kWorlds, make);
  runner::TopologyAccumulator merged;
  constexpr std::size_t kShards = 3;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::size_t first_idx = kWorlds * s / kShards;
    const std::size_t count = kWorlds * (s + 1) / kShards - first_idx;
    merged.merge(
        runner::run_topologies_streamed(runner::ParallelSweep{2}, first_idx, count, make));
  }
  std::printf("serial   sweep digest %016llx over %llu worlds\n",
              static_cast<unsigned long long>(serial.digest.combined),
              static_cast<unsigned long long>(serial.worlds));
  std::printf("parallel sweep digest %016llx over %llu worlds\n",
              static_cast<unsigned long long>(parallel.digest.combined),
              static_cast<unsigned long long>(parallel.worlds));
  std::printf("sharded  sweep digest %016llx over %llu worlds (%zu shards)\n",
              static_cast<unsigned long long>(merged.digest.combined),
              static_cast<unsigned long long>(merged.worlds), kShards);
  const bool sweep_ok = serial.digest == parallel.digest && serial.digest == merged.digest &&
                        serial.sessions_started == merged.sessions_started &&
                        serial.bytes_downloaded == merged.bytes_downloaded &&
                        serial.sim_events == merged.sim_events;
  if (!sweep_ok) ++divergent;
  std::printf("%zu topology worlds + %zu-world sweep, %d divergent: %s\n", catalog.size(),
              kWorlds, divergent, divergent == 0 ? "ok" : "DIVERGED");
  return divergent == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 180.0;
  bool canary = false;
  bool topology = false;
  std::size_t jobs = 0;
  std::size_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--canary") == 0) {
      canary = true;
    } else if (std::strcmp(argv[i], "--topology") == 0) {
      topology = true;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: determinism_audit [--seconds N] [--canary] [--topology] "
                   "[--jobs N] [--shards N]\n");
      return 2;
    }
  }
  if (canary) return run_canary();
  if (topology) return run_topology_audit(seconds);
  if (shards > 0) return run_shard_audit(seconds, shards);
  if (jobs > 0) return run_parallel_audit(seconds, jobs);

  const auto scenarios = audited_catalog(seconds);
  int divergent = 0;
  for (const auto& scenario : scenarios) {
    const auto first = vstream::streaming::fingerprint_session(scenario.config);
    // Armed twin: spans and probes on, digest must not move.
    vstream::obs::RingBufferSink sink{4096};
    const auto second = vstream::streaming::fingerprint_session(scenario.config, &sink);
    const bool same = first == second;
    std::printf("%-40s %016llx %s\n", scenario.name.c_str(),
                static_cast<unsigned long long>(first.digest), same ? "ok" : "DIVERGED");
    if (!same) {
      ++divergent;
      std::printf("  run 1: digest=%016llx words=%llu events=%llu bytes=%llu\n",
                  static_cast<unsigned long long>(first.digest),
                  static_cast<unsigned long long>(first.words_mixed),
                  static_cast<unsigned long long>(first.sim_events),
                  static_cast<unsigned long long>(first.bytes_downloaded));
      std::printf("  run 2: digest=%016llx words=%llu events=%llu bytes=%llu\n",
                  static_cast<unsigned long long>(second.digest),
                  static_cast<unsigned long long>(second.words_mixed),
                  static_cast<unsigned long long>(second.sim_events),
                  static_cast<unsigned long long>(second.bytes_downloaded));
    }
  }
  std::printf("%zu scenarios, %d divergent\n", scenarios.size(), divergent);
  return divergent == 0 ? 0 : 1;
}
