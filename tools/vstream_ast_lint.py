#!/usr/bin/env python3
"""vstream AST lint: concurrency & isolation passes over the C++ tree.

The regex linter (vstream_lint.py) polices *tokens on a line*; this tool
polices *declarations and scopes* — properties the sweep engine's
shared-nothing contract depends on and that no line pattern can express.
It is driven by the build's compile database (compile_commands.json) and
runs one of two frontends:

  libclang   exact AST via clang.cindex when the Python bindings and a
             matching libclang are installed (the CI static job installs
             them); closure sizes come from the compiler's own layout.
  tokens     a built-in, dependency-free C++ lexer + scope tracker used
             everywhere else (the dev container has no libclang). It is a
             conservative under-approximation: it never invents sizes, so
             every capture-size finding is a provable lower bound.

Passes (all scoped to src/ unless given explicit paths):

  mutable-global   Every non-const variable with static storage duration —
                   namespace scope (named or anonymous), static local, or
                   static data member — is shared across every session
                   world a process runs. One such variable silently breaks
                   both shared-nothing sweep scaling and twin-run digest
                   equality. thread_local is flagged too: it is not shared
                   *across* workers, but it leaks state between successive
                   worlds run on the same worker thread, so it needs the
                   same explicit justification. Sanctioned variables live
                   in ALLOWLIST below with their reasons.
  capture-size     A lambda scheduled into sim::SimCallback whose closure
                   exceeds the 128-byte SBO falls back to a heap
                   allocation per event — on the dispatch hot path. The
                   tokens frontend sums the sizes it can prove (captured
                   locals with known layout, references/pointers at 8);
                   libclang measures the closure type exactly.
  handle-escape    A sim::EventHandle is a {slot, generation} token into
                   one world's event arena. A handle with static storage
                   duration outlives the arena generation it indexes and
                   is a use-after-world bug waiting for a slot reuse.

Waivers: append `// vstream-ast-lint: allow(<pass>): <reason>` to the
offending line, or `// vstream-ast-lint-file: allow(<pass>): <reason>`
anywhere in the file for a whole-file waiver. Reasons are mandatory —
bare allow() does not parse.

Exit status (the repo-wide analyzer convention, shared with
vstream_lint.py and check_bench_floor.py):
  0  clean — no findings
  1  findings reported
  2  usage or environment error (bad flags, unreadable files, missing
     frontend)
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

PASSES = ("mutable-global", "capture-size", "handle-escape")

# SimCallback::kInlineBytes — keep in lockstep with src/sim/callback.hpp
# (ast_lint_test greps the header to prove the two agree).
SBO_BYTES = 128

# Sanctioned static-storage variables: (path suffix, variable name) -> reason.
# Everything here is harness- or diagnostics-level state that never feeds a
# simulation result; a new entry needs the same kind of justification.
ALLOWLIST = {
    ("src/check/contracts.cpp", "g_violations"): (
        "process-lifetime violation counter; std::atomic, diagnostics only, "
        "never read by simulation code"
    ),
    ("src/check/contracts.cpp", "t_violation_hook"): (
        "thread_local by design: each ParallelSweep worker's flight recorder "
        "must only react to its own world's contract failures"
    ),
    ("src/runner/parallel_sweep.cpp", "t_worker_index"): (
        "thread_local worker id for harness-side profiling attribution; "
        "never read inside a session world"
    ),
}

LINE_WAIVER = re.compile(
    r"//\s*vstream-ast-lint:\s*allow\((?P<passes>[a-z-]+(?:\s*,\s*[a-z-]+)*)\):\s*\S"
)
FILE_WAIVER = re.compile(
    r"//\s*vstream-ast-lint-file:\s*allow\((?P<passes>[a-z-]+(?:\s*,\s*[a-z-]+)*)\):\s*\S"
)


@dataclass
class Finding:
    path: Path
    line: int
    pass_name: str
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.pass_name}] {self.message}"


@dataclass
class Waivers:
    file_level: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)

    def waived(self, pass_name: str, line: int) -> bool:
        if pass_name in self.file_level:
            return True
        return pass_name in self.by_line.get(line, set())


def collect_waivers(text: str) -> Waivers:
    waivers = Waivers()
    for match in FILE_WAIVER.finditer(text):
        waivers.file_level.update(p.strip() for p in match.group("passes").split(","))
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = LINE_WAIVER.search(line)
        if match:
            waivers.by_line.setdefault(lineno, set()).update(
                p.strip() for p in match.group("passes").split(",")
            )
    return waivers


def allowlisted(path: Path, name: str) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(suffix) for (suffix, var) in ALLOWLIST if var == name)


# --------------------------------------------------------------------------
# Tokens frontend: lexer
# --------------------------------------------------------------------------

@dataclass
class Tok:
    kind: str  # 'ident' | 'num' | 'str' | 'chr' | 'punct'
    text: str
    line: int


_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)


def lex(text: str) -> list[Tok]:
    """Tokenize C++ source: comments and preprocessor lines are dropped,
    string/char literals are kept as single opaque tokens."""
    toks: list[Tok] = []
    i, n, line = 0, len(text), 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if at_line_start and c == "#":
            # Preprocessor directive: skip to end of line, honouring
            # backslash continuations.
            while i < n:
                if text[i] == "\n":
                    if text[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                i += 1
            continue
        at_line_start = False
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                while i < n and text[i] != "\n":
                    i += 1
                continue
            if text[i + 1] == "*":
                end = text.find("*/", i + 2)
                if end == -1:
                    break
                line += text.count("\n", i, end + 2)
                i = end + 2
                continue
        if c == "R" and text[i : i + 2] == 'R"':
            # Raw string literal R"delim( ... )delim"
            open_paren = text.find("(", i + 2)
            if open_paren == -1:
                i += 2
                continue
            delim = text[i + 2 : open_paren]
            close = text.find(")" + delim + '"', open_paren + 1)
            if close == -1:
                break
            end = close + len(delim) + 2
            toks.append(Tok("str", '""', line))
            line += text.count("\n", i, end)
            i = end
            continue
        if c == '"' or (c == "'" and not (toks and toks[-1].kind in ("num",))):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            toks.append(Tok("str" if quote == '"' else "chr", quote * 2, line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("ident", text[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        for p in _PUNCT3:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += 3
                break
        else:
            for p in _PUNCT2:
                if text.startswith(p, i):
                    toks.append(Tok("punct", p, line))
                    i += 2
                    break
            else:
                toks.append(Tok("punct", c, line))
                i += 1
    return toks


# --------------------------------------------------------------------------
# Tokens frontend: scope walker
# --------------------------------------------------------------------------

# Scope kinds a `{` can open.
_NAMESPACE, _CLASS, _ENUM, _FUNCTION, _BLOCK, _EXPR = (
    "namespace", "class", "enum", "function", "block", "expr",
)

_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}
_CLASS_KEYWORDS = {"class", "struct", "union"}

# Types whose size the tokens frontend may rely on. Fixed-width integers,
# fundamental types, and the handful of std vocabulary types whose layout
# is stable across the ABIs we build on. Sizes are conservative *minimums*
# (libc++ std::string is 24 bytes, libstdc++ 32 — we claim 24), keeping
# every capture-size report a provable lower bound.
KNOWN_SIZES = {
    "bool": 1, "char": 1, "signed char": 1, "unsigned char": 1,
    "short": 2, "unsigned short": 2,
    "int": 4, "unsigned": 4, "unsigned int": 4, "float": 4,
    "long": 8, "unsigned long": 8, "long long": 8, "unsigned long long": 8,
    "double": 8, "std::size_t": 8, "size_t": 8, "std::ptrdiff_t": 8,
    "std::int8_t": 1, "std::uint8_t": 1, "std::int16_t": 2, "std::uint16_t": 2,
    "std::int32_t": 4, "std::uint32_t": 4, "std::int64_t": 8, "std::uint64_t": 8,
    "int8_t": 1, "uint8_t": 1, "int16_t": 2, "uint16_t": 2,
    "int32_t": 4, "uint32_t": 4, "int64_t": 8, "uint64_t": 8,
    "std::string": 24, "std::string_view": 16, "std::vector": 24,
}

_HANDLE_NAMES = ("EventHandle",)


def _looks_like_type_head(tokens: list[Tok], idx: int) -> bool:
    """Is tokens[idx] (a class keyword) the head of a type definition or
    forward declaration (as opposed to an elaborated type specifier in a
    variable declaration)?"""
    j = idx + 1
    # skip attributes / name path
    while j < len(tokens) and (tokens[j].kind == "ident" or tokens[j].text in ("::",)):
        j += 1
    # skip template argument list on the name
    if j < len(tokens) and tokens[j].text == "<":
        depth = 0
        while j < len(tokens):
            if tokens[j].text == "<":
                depth += 1
            elif tokens[j].text == ">":
                depth -= 1
                if depth == 0:
                    j += 1
                    break
            elif tokens[j].text == ">>":
                depth -= 2
                if depth <= 0:
                    j += 1
                    break
            j += 1
    if j >= len(tokens):
        return True
    # `struct X {` / `struct X : base {` / `struct X;` are definitions or
    # forward declarations; `struct X y` is a variable of elaborated type.
    return tokens[j].text in ("{", ":", ";", "final")


class TokenFrontend:
    """Single-file analysis: scope tracking + the three passes."""

    def __init__(self, path: Path, text: str, enabled: set[str]):
        self.path = path
        self.enabled = enabled
        self.waivers = collect_waivers(text)
        self.toks = lex(text)
        self.findings: list[Finding] = []

    def report(self, pass_name: str, line: int, message: str) -> None:
        if pass_name not in self.enabled:
            return
        if self.waivers.waived(pass_name, line):
            return
        self.findings.append(Finding(self.path, line, pass_name, message))

    # -- scope classification ---------------------------------------------

    def classify_brace(self, idx: int, scope_stack: list[str]) -> str:
        """Classify the `{` at self.toks[idx] by looking backwards."""
        toks = self.toks
        j = idx - 1
        # Skip over trailing specifiers between ')' and '{'.
        specifiers = {"const", "noexcept", "override", "final", "mutable",
                      "->", "volatile", "&", "&&", "try"}
        saw_specifier = False
        while j >= 0 and (toks[j].text in specifiers or
                          (saw_specifier and toks[j].kind == "ident")):
            if toks[j].text in specifiers:
                saw_specifier = True
            j -= 1
        if j < 0:
            return _BLOCK
        t = toks[j].text
        if t == ")":
            # Find the matching '(' and the token before it.
            depth = 0
            k = j
            while k >= 0:
                if toks[k].text == ")":
                    depth += 1
                elif toks[k].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            head = toks[k - 1].text if k >= 1 else ""
            if head in _CONTROL_KEYWORDS:
                return _BLOCK
            if head == "]":
                return _FUNCTION  # lambda with parameter list
            return _FUNCTION
        if t == "]":
            return _FUNCTION  # lambda without parameter list
        if t in ("do", "else", "try"):
            return _BLOCK
        # Walk back over the head: `namespace a::b`, `struct Name : Base<T>`,
        # `extern "C"`. The first head keyword met decides the scope kind.
        k = j
        head_limit = 0
        while k >= 0 and head_limit < 64:
            text = toks[k].text
            if text == "namespace" or text == "extern":
                return _NAMESPACE  # extern "C" blocks are scope-transparent
            if text in _CLASS_KEYWORDS:
                return _CLASS
            if text == "enum":
                return _ENUM
            if text in ("{", "}", ";", ")"):
                break
            k -= 1
            head_limit += 1
        if t == "=" or toks[j].kind in ("ident", "num") or t in (",", "(", "return", "{"):
            return _EXPR
        return _BLOCK

    # -- driver ------------------------------------------------------------

    def run(self) -> list[Finding]:
        toks = self.toks
        scope: list[str] = []  # kinds of enclosing braces
        i = 0
        stmt_start = 0  # token index where the current statement began
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.text == "{":
                kind = self.classify_brace(i, scope)
                # A '{' terminates the pending statement (class head,
                # function head, namespace head, or a brace initializer).
                if kind == _EXPR:
                    # Brace initializer inside a declaration — skip to its
                    # matching '}' so the declaration statement continues.
                    i = self.match_brace(i)
                    i += 1
                    continue
                if kind in (_NAMESPACE, _CLASS, _ENUM, _FUNCTION, _BLOCK):
                    scope.append(kind)
                stmt_start = i + 1
                i += 1
                continue
            if t.text == "}":
                if scope:
                    scope.pop()
                stmt_start = i + 1
                i += 1
                continue
            if t.text == ";":
                self.analyze_statement(toks[stmt_start:i], scope)
                stmt_start = i + 1
                i += 1
                continue
            if (t.kind == "ident" and
                    t.text in ("schedule_at", "schedule_after", "SimCallback", "emplace_callback")):
                self.analyze_schedule_site(i, scope)
            i += 1
        return self.findings

    def match_brace(self, idx: int) -> int:
        depth = 0
        i = idx
        n = len(self.toks)
        while i < n:
            if self.toks[i].text == "{":
                depth += 1
            elif self.toks[i].text == "}":
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return n - 1

    # -- pass: mutable-global / handle-escape on declarations --------------

    def analyze_statement(self, stmt: list[Tok], scope: list[str]) -> None:
        if not stmt:
            return
        texts = [t.text for t in stmt]
        at_namespace = all(s == _NAMESPACE for s in scope)
        at_class = bool(scope) and scope[-1] == _CLASS
        in_function = any(s in (_FUNCTION, _BLOCK) for s in scope)

        is_static = "static" in texts
        is_thread_local = "thread_local" in texts

        # Fast rejects: things that are never variable definitions.
        if texts[0] in ("using", "typedef", "friend", "static_assert", "return",
                        "goto", "case", "default", "break", "continue", "throw",
                        "public", "private", "protected", "namespace"):
            return
        if "operator" in texts:
            return
        # Skip a leading template<...> header (variable templates are
        # instantiated per specialization; flagging the pattern itself
        # produces noise for the traits-style usage in the tree).
        if texts[0] == "template":
            return
        # Type definitions / forward declarations.
        for k, t in enumerate(stmt):
            if t.text in _CLASS_KEYWORDS and _looks_like_type_head(stmt, k):
                return
            if t.text == "enum":
                return

        storage_static = (
            (at_namespace and not ("extern" in texts and "=" not in texts))
            or (in_function and (is_static or is_thread_local))
            or (at_class and is_static)
        )
        if not storage_static:
            return

        decl = self.parse_declaration(stmt)
        if decl is None:
            return
        name, is_const, line, type_tokens = decl

        if "handle-escape" in self.enabled and any(
                h in type_tokens for h in _HANDLE_NAMES):
            where = ("namespace scope" if at_namespace
                     else "static data member" if at_class else "static local")
            self.report(
                "handle-escape", line,
                f"'{name}' stores a sim::EventHandle with static storage duration "
                f"({where}); handles index one world's event arena and must not "
                f"outlive it — keep the handle inside the world that scheduled it",
            )
            # A static EventHandle is also a mutable global, but one report
            # per root cause is enough.
            return

        if is_const:
            return
        if allowlisted(self.path, name):
            return
        kind = ("thread_local variable" if is_thread_local
                else "static data member" if at_class and not at_namespace
                else "static local" if in_function
                else "namespace-scope variable")
        self.report(
            "mutable-global", line,
            f"mutable {kind} '{name}' is shared across every session world in "
            f"the process; it breaks shared-nothing sweep scaling and twin-run "
            f"digests — make it const/constexpr, move it into the world, or "
            f"allowlist it with a justification",
        )

    def parse_declaration(self, stmt: list[Tok]):
        """Return (name, top_level_const, line, type_token_texts) for a
        variable definition statement, or None if this is not one."""
        texts = [t.text for t in stmt]
        # Locate the end of the declarator head: the first top-level '=' or
        # the end of statement. Top-level '(' right after an identifier with
        # no preceding '=' means a function declaration.
        depth_par = depth_ang = depth_sq = 0
        eq_idx = None
        for k, t in enumerate(stmt):
            x = t.text
            if x == "(":
                if depth_par == 0 and depth_ang == 0 and eq_idx is None:
                    # function declaration/definition head (house style bans
                    # paren-init of globals, which keeps this unambiguous)
                    return None
                depth_par += 1
            elif x == ")":
                depth_par -= 1
            elif x == "[":
                depth_sq += 1
            elif x == "]":
                depth_sq -= 1
            elif x == "<":
                depth_ang += 1
            elif x in (">", ">>") and depth_ang > 0:
                depth_ang -= 2 if x == ">>" else 1
            elif x == "=" and depth_par == 0 and depth_ang == 0 and depth_sq == 0:
                eq_idx = k
                break
        head = stmt[:eq_idx] if eq_idx is not None else stmt
        # Declarator name: last identifier in the head that is not a
        # keyword, skipping array extents.
        specifier_words = {
            "static", "thread_local", "extern", "inline", "constexpr",
            "constinit", "const", "volatile", "mutable", "register", "alignas",
        }
        name_idx = None
        k = len(head) - 1
        while k >= 0:
            if head[k].text == "]":
                while k >= 0 and head[k].text != "[":
                    k -= 1
                k -= 1
                continue
            if head[k].kind == "ident" and head[k].text not in specifier_words:
                # skip template arg tails: `foo<...>` name is before '<'
                name_idx = k
                break
            k -= 1
        if name_idx is None:
            return None
        name_tok = head[name_idx]
        type_part = [t.text for t in head[:name_idx]]
        if not type_part:
            return None
        # Top-level constness: if the declarator has a '*', the object (the
        # pointer itself) is const only when 'const' appears after the last
        # '*'. Without one, any const/constexpr specifier makes it const.
        if "constexpr" in type_part:
            return (name_tok.text, True, name_tok.line, type_part)
        if "*" in type_part:
            last_star = len(type_part) - 1 - type_part[::-1].index("*")
            is_const = "const" in type_part[last_star + 1:]
        elif "&" in type_part or "&&" in type_part:
            amp = (type_part.index("&") if "&" in type_part
                   else type_part.index("&&"))
            is_const = "const" in type_part[:amp]
        else:
            is_const = "const" in type_part
        return (name_tok.text, is_const, name_tok.line, type_part)

    # -- pass: capture-size -------------------------------------------------

    def analyze_schedule_site(self, idx: int, scope: list[str]) -> None:
        if "capture-size" not in self.enabled:
            return
        toks = self.toks
        n = len(toks)
        # Find the opening paren/brace of the call.
        j = idx + 1
        while j < n and toks[j].text not in ("(", "{", ";"):
            j += 1
        if j >= n or toks[j].text == ";":
            return
        close = self.match_paren(j) if toks[j].text == "(" else self.match_brace(j)
        # Find a lambda introducer '[' at argument level inside the call.
        k = j + 1
        while k < close:
            if toks[k].text == "[" and self.is_lambda_introducer(k):
                self.check_lambda_captures(k, close)
                return
            k += 1

    def match_paren(self, idx: int) -> int:
        depth = 0
        i = idx
        n = len(self.toks)
        while i < n:
            if self.toks[i].text == "(":
                depth += 1
            elif self.toks[i].text == ")":
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return n - 1

    def is_lambda_introducer(self, idx: int) -> bool:
        prev = self.toks[idx - 1] if idx > 0 else None
        if prev is None:
            return True
        # A '[' after an identifier / ')' / ']' is a subscript.
        return not (prev.kind in ("ident", "num") or prev.text in (")", "]"))

    def check_lambda_captures(self, idx: int, limit: int) -> None:
        toks = self.toks
        line = toks[idx].line
        end = idx + 1
        depth = 0
        while end < limit:
            t = toks[end].text
            if t == "[":
                depth += 1
            elif t == "]":
                if depth == 0:
                    break
                depth -= 1
            end += 1
        capture_toks = toks[idx + 1 : end]
        if not capture_toks:
            return
        if capture_toks[0].text in ("=", "&") and len(capture_toks) == 1:
            return  # default capture: membership unknowable without semantics
        locals_table = self.collect_local_sizes(idx)
        total = 0
        exact = True
        rendered: list[str] = []
        item: list[Tok] = []
        depth = 0
        items: list[list[Tok]] = []
        for t in capture_toks:
            if t.text in ("(", "[", "<", "{"):
                depth += 1
            elif t.text in (")", "]", ">", "}"):
                depth -= 1
            if t.text == "," and depth == 0:
                items.append(item)
                item = []
            else:
                item.append(t)
        if item:
            items.append(item)
        for cap in items:
            cap_texts = [t.text for t in cap]
            rendered.append(" ".join(cap_texts))
            if not cap_texts:
                continue
            if cap_texts[0] == "&" or cap_texts[0] == "this":
                total += 8
            elif cap_texts[0] == "*" and len(cap_texts) > 1 and cap_texts[1] == "this":
                exact = False  # *this copies the enclosing object
                total += 1
            elif "=" in cap_texts:
                # init capture: size known only if the initializer is a
                # plain identifier found in the local table
                eq = cap_texts.index("=")
                init = cap_texts[eq + 1:]
                if len(init) == 1 and init[0] in locals_table:
                    total += locals_table[init[0]]
                elif "std::move" in "".join(init) and init[-2:-1] == ["("]:
                    exact = False
                    total += 1
                else:
                    exact = False
                    total += 1
            else:
                name = cap_texts[-1]
                if name in locals_table:
                    total += locals_table[name]
                else:
                    exact = False
                    total += 1
        if total > SBO_BYTES:
            bound = "closure size" if exact else "closure size lower bound"
            self.report(
                "capture-size", line,
                f"lambda scheduled into sim::SimCallback captures "
                f"[{', '.join(rendered)}] — {bound} {total} bytes exceeds the "
                f"{SBO_BYTES}-byte SBO, forcing a heap allocation per scheduled "
                f"event; shrink the capture (pointer/reference to bulky state) "
                f"or hoist the payload into the owning component",
            )

    def collect_local_sizes(self, before_idx: int) -> dict[str, int]:
        """Scan backwards through the enclosing function body for local
        declarations whose size the KNOWN_SIZES table can resolve, plus
        std::array<T, N> and C arrays of sized element types."""
        toks = self.toks
        # Find the start of the enclosing function body.
        depth = 0
        start = before_idx
        while start > 0:
            t = toks[start].text
            if t == "}":
                depth += 1
            elif t == "{":
                if depth == 0:
                    break
                depth -= 1
            start -= 1
        table: dict[str, int] = {}
        i = start
        while i < before_idx:
            t = toks[i]
            if t.kind != "ident":
                i += 1
                continue
            size = None
            consumed = 1
            two = (f"{t.text}::{toks[i + 2].text}"
                   if i + 2 < before_idx and toks[i + 1].text == "::" else None)
            if two == "std::array" and i + 3 < before_idx and toks[i + 3].text == "<":
                close = self.match_angle(i + 3)
                inner = toks[i + 4 : close]
                comma = next((k for k, x in enumerate(inner) if x.text == ","), None)
                if comma is not None:
                    elem = "".join(x.text for x in inner[:comma])
                    count_txt = "".join(x.text for x in inner[comma + 1:]).strip()
                    elem_size = KNOWN_SIZES.get(elem)
                    if elem_size and count_txt.isdigit():
                        size = elem_size * int(count_txt)
                        consumed = close - i + 1
            elif two in KNOWN_SIZES:
                size = KNOWN_SIZES[two]
                consumed = 3
            elif t.text in KNOWN_SIZES and two is None:
                size = KNOWN_SIZES[t.text]
            if size is not None:
                j = i + consumed
                # unsigned long / long long style multi-word types
                while j < before_idx and toks[j].kind == "ident" and toks[j].text in (
                        "long", "int", "char", "unsigned"):
                    j += 1
                if j < before_idx and toks[j].kind == "ident":
                    name = toks[j].text
                    # C array extent: name[N]
                    if (j + 1 < before_idx and toks[j + 1].text == "[" and
                            j + 2 < before_idx and toks[j + 2].kind == "num"):
                        try:
                            size *= int(toks[j + 2].text)
                        except ValueError:
                            size = None
                    if size is not None:
                        table[name] = size
                i = j + 1
                continue
            i += 1
        return table

    def match_angle(self, idx: int) -> int:
        depth = 0
        i = idx
        n = len(self.toks)
        while i < n:
            t = self.toks[i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i
            elif t == ";":
                return i
            i += 1
        return n - 1


# --------------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------------

class LibclangFrontend:
    """Exact AST passes via clang.cindex. Requires the python3-clang
    bindings and a matching libclang shared library (CI installs both);
    raises RuntimeError when unavailable so the driver can fall back."""

    def __init__(self, compdb_dir: Path, enabled: set[str]):
        try:
            from clang import cindex  # noqa: PLC0415
        except ImportError as exc:
            raise RuntimeError(f"clang.cindex unavailable: {exc}") from exc
        self.cindex = cindex
        try:
            self.index = cindex.Index.create()
        except Exception as exc:  # libclang.so missing / version skew
            raise RuntimeError(f"libclang unavailable: {exc}") from exc
        try:
            self.compdb = cindex.CompilationDatabase.fromDirectory(str(compdb_dir))
        except Exception as exc:
            raise RuntimeError(
                f"cannot load compile_commands.json from {compdb_dir}: {exc}"
            ) from exc
        self.enabled = enabled
        self.findings: list[Finding] = []
        self._waiver_cache: dict[str, Waivers] = {}

    def waivers_for(self, path: str) -> Waivers:
        if path not in self._waiver_cache:
            try:
                text = Path(path).read_text(encoding="utf-8", errors="replace")
            except OSError:
                text = ""
            self._waiver_cache[path] = collect_waivers(text)
        return self._waiver_cache[path]

    def report(self, pass_name: str, path: str, line: int, message: str) -> None:
        if pass_name not in self.enabled:
            return
        if self.waivers_for(path).waived(pass_name, line):
            return
        self.findings.append(Finding(Path(path), line, pass_name, message))

    def run(self, files: list[Path], scope_root: Path) -> list[Finding]:
        ci = self.cindex
        seen_locations: set[tuple[str, int, str]] = set()
        for path in files:
            if path.suffix not in (".cpp", ".cc"):
                continue  # headers are visited through their including TUs
            commands = self.compdb.getCompileCommands(str(path))
            if not commands:
                continue
            args = [a for a in list(commands[0].arguments)[1:-1]
                    if a not in ("-c", "-o", str(path))]
            # Drop the -o target that follows a consumed flag.
            cleaned = []
            skip = False
            for a in args:
                if skip:
                    skip = False
                    continue
                if a in ("-o", "-c"):
                    skip = a == "-o"
                    continue
                cleaned.append(a)
            try:
                tu = self.index.parse(str(path), args=cleaned)
            except ci.TranslationUnitLoadError:
                continue
            self.visit(tu.cursor, scope_root, seen_locations)
        return self.findings

    def _in_scope(self, cursor, scope_root: Path) -> bool:
        loc = cursor.location
        if loc.file is None:
            return False
        try:
            Path(loc.file.name).resolve().relative_to(scope_root)
        except ValueError:
            return False
        return True

    def visit(self, cursor, scope_root: Path, seen) -> None:
        ci = self.cindex
        for child in cursor.get_children():
            kind = child.kind
            if kind == ci.CursorKind.VAR_DECL and self._in_scope(child, scope_root):
                self.check_var(child, seen)
            if (kind in (ci.CursorKind.CALL_EXPR,) and
                    child.spelling in ("schedule_at", "schedule_after") and
                    self._in_scope(child, scope_root)):
                self.check_call(child)
            self.visit(child, scope_root, seen)

    def check_var(self, cursor, seen) -> None:
        ci = self.cindex
        sem = cursor.semantic_parent
        at_namespace = sem is not None and sem.kind in (
            ci.CursorKind.NAMESPACE, ci.CursorKind.TRANSLATION_UNIT)
        static_storage = (
            at_namespace
            or cursor.storage_class == ci.StorageClass.STATIC
            or any(t.spelling == "thread_local" for t in cursor.get_tokens())
        )
        if not static_storage:
            return
        loc = cursor.location
        key = (loc.file.name, loc.line, cursor.spelling)
        if key in seen:
            return
        seen.add(key)
        type_spelling = cursor.type.spelling
        if "EventHandle" in type_spelling:
            self.report(
                "handle-escape", loc.file.name, loc.line,
                f"'{cursor.spelling}' stores a sim::EventHandle with static "
                f"storage duration; handles index one world's event arena and "
                f"must not outlive it",
            )
            return
        canonical = cursor.type.get_canonical()
        if canonical.is_const_qualified():
            return
        if "const" in type_spelling.split()[:1]:
            return
        if allowlisted(Path(loc.file.name), cursor.spelling):
            return
        self.report(
            "mutable-global", loc.file.name, loc.line,
            f"mutable static-storage variable '{cursor.spelling}' "
            f"(type {type_spelling}) is shared across every session world in "
            f"the process; make it const, move it into the world, or allowlist "
            f"it with a justification",
        )

    def check_call(self, cursor) -> None:
        ci = self.cindex
        for arg in cursor.get_arguments():
            node = arg
            # unwrap implicit casts / materializations
            while node is not None and node.kind != ci.CursorKind.LAMBDA_EXPR:
                children = list(node.get_children())
                node = children[0] if len(children) == 1 else None
            if node is None:
                continue
            size = node.type.get_size()
            if size is not None and size > SBO_BYTES:
                loc = node.location
                self.report(
                    "capture-size", loc.file.name, loc.line,
                    f"lambda scheduled into sim::SimCallback has closure size "
                    f"{size} bytes (> {SBO_BYTES}-byte SBO): every scheduled "
                    f"event pays a heap allocation; shrink the capture",
                )


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def enumerate_files(root: Path, compdb: Path | None) -> list[Path]:
    """The analysis set: src/ sources and headers. When a compile database
    is supplied its TU list seeds the set (so generated or out-of-tree TUs
    are honoured), with headers unioned in by walking src/."""
    files: set[Path] = set()
    src = root / "src"
    if compdb is not None and compdb.is_file():
        try:
            entries = json.loads(compdb.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            entries = []
        for entry in entries:
            p = Path(entry.get("directory", ".")) / entry.get("file", "")
            try:
                p.resolve().relative_to(src.resolve())
            except ValueError:
                continue
            files.add(p.resolve())
    for p in src.rglob("*"):
        if p.suffix in (".cpp", ".hpp", ".cc", ".h"):
            files.add(p.resolve())
    return sorted(files)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="exit status: 0 clean, 1 findings, 2 usage/environment error",
    )
    parser.add_argument("-p", "--compdb", type=Path, default=None,
                        help="build dir or compile_commands.json path "
                             "(default: ./build if present)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--frontend", choices=("auto", "libclang", "tokens"),
                        default="auto",
                        help="auto prefers libclang when importable, else the "
                             "built-in tokens frontend")
    parser.add_argument("--passes", default=",".join(PASSES),
                        help=f"comma-separated subset of: {', '.join(PASSES)}")
    parser.add_argument("--list-passes", action="store_true",
                        help="print the pass names and exit")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="restrict analysis to these files (default: src/)")
    args = parser.parse_args()

    if args.list_passes:
        for name in PASSES:
            print(name)
        return 0

    enabled = {p.strip() for p in args.passes.split(",") if p.strip()}
    unknown = enabled - set(PASSES)
    if unknown:
        print(f"vstream_ast_lint: unknown pass(es): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    root = args.root.resolve()
    if not root.is_dir():
        print(f"vstream_ast_lint: root {root} is not a directory", file=sys.stderr)
        return 2

    compdb = args.compdb
    if compdb is None and (root / "build" / "compile_commands.json").is_file():
        compdb = root / "build" / "compile_commands.json"
    if compdb is not None and compdb.is_dir():
        compdb = compdb / "compile_commands.json"

    if args.paths:
        files = []
        for p in args.paths:
            if not p.exists():
                print(f"vstream_ast_lint: no such file: {p}", file=sys.stderr)
                return 2
            if p.suffix in (".cpp", ".hpp", ".cc", ".h"):
                files.append(p.resolve())
    else:
        files = enumerate_files(root, compdb)
    if not files:
        print("vstream_ast_lint: no input files", file=sys.stderr)
        return 2

    frontend_used = "tokens"
    findings: list[Finding] = []
    if args.frontend in ("auto", "libclang"):
        try:
            if compdb is None or not compdb.is_file():
                raise RuntimeError("no compile_commands.json (pass -p <builddir>)")
            lc = LibclangFrontend(compdb.parent, enabled)
            scope_root = (root / "src") if not args.paths else Path("/")
            findings = lc.run(files, scope_root.resolve())
            # Headers never appear as TUs; run the tokens frontend over any
            # explicitly-listed header so fixture headers are still covered.
            for path in files:
                if path.suffix in (".hpp", ".h") and args.paths:
                    text = path.read_text(encoding="utf-8", errors="replace")
                    findings.extend(TokenFrontend(path, text, enabled).run())
            frontend_used = "libclang"
        except RuntimeError as exc:
            if args.frontend == "libclang":
                print(f"vstream_ast_lint: {exc}", file=sys.stderr)
                return 2
            frontend_used = "tokens"

    if frontend_used == "tokens":
        for path in files:
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError as exc:
                print(f"vstream_ast_lint: cannot read {path}: {exc}", file=sys.stderr)
                return 2
            findings.extend(TokenFrontend(path, text, enabled).run())

    findings.sort(key=lambda f: (str(f.path), f.line, f.pass_name))
    for finding in findings:
        print(finding.render(root))
    print(f"vstream_ast_lint[{frontend_used}]: {len(files)} files, "
          f"{len(findings)} finding(s)")
    return 0 if not findings else 1


if __name__ == "__main__":
    sys.exit(main())
