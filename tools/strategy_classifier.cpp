// strategy_classifier — label every TCP connection in a pcap capture with
// its streaming strategy (Table 1) and pacing parameters (§4), at line rate.
//
// The classifier is the parallel ingestion path end to end: the mmapped
// zero-copy reader partitions the capture by connection, per-connection
// lanes fan out across a ParallelSweep pool, and the merged table is
// byte-identical for every worker count (the lane layout is a function of
// the request, never of thread scheduling).
//
//   ./build/tools/strategy_classifier capture.pcap           # human table
//   ./build/tools/strategy_classifier --json capture.pcap    # one JSON object
//   ./build/tools/strategy_classifier --csv capture.pcap     # header + rows
//   ./build/tools/strategy_classifier --jobs 8 capture.pcap  # pool width
//   ./build/tools/strategy_classifier --serial capture.pcap  # reference path
//   ./build/tools/strategy_classifier --out table.csv --csv capture.pcap
//   ./build/tools/strategy_classifier --profile-out prof.json capture.pcap
//   ./build/tools/strategy_classifier --gen big.pcap --mb 1024 --connections 24
//   ./build/tools/strategy_classifier --selftest [scratch.pcap]
//
// --gen writes a deterministic synthetic multi-connection capture (the same
// generator the ingestion benchmark uses) so a ~1 GB classification can be
// reproduced anywhere. --selftest generates a small capture and proves the
// parallel/serial invariant on it (run under tsan in CI); exit 1 on any
// mismatch. --profile-out writes the SweepProfiler per-worker phase table
// (partition = build, lanes = run, merge = merge) as JSON.
//
// Exit status: 0 on success, 1 on I/O or classification failure (corrupt
// captures are rejected with the reader's offset-bearing diagnostic), 2 on
// usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/connection_demux.hpp"
#include "analysis/parallel_classify.hpp"
#include "capture/pcap_reader.hpp"
#include "capture/synthetic.hpp"
#include "runner/parallel_sweep.hpp"
#include "runner/sweep_profiler.hpp"

namespace {

using vstream::analysis::CaptureClassification;
using vstream::analysis::ClassifyOptions;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--serial] [--json|--csv] [--out file]\n"
               "       %*s [--profile-out file] <capture.pcap>\n"
               "       %s --gen <file.pcap> [--mb N] [--connections K]\n"
               "       %s --selftest [scratch.pcap]\n",
               argv0, static_cast<int>(std::strlen(argv0)), "", argv0, argv0);
  return 2;
}

/// Emit `text` to `out_path` (or stdout when empty). Returns false on I/O
/// failure, already reported.
bool emit(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out{out_path, std::ios::trunc};
  out << text;
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return false;
  }
  return true;
}

int run_generate(const std::string& path, double mb, std::size_t connections) {
  vstream::capture::SyntheticCaptureOptions options;
  if (connections > 0) options.connections = connections;
  options.target_file_bytes = static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
  const auto summary = vstream::capture::write_synthetic_capture(path, options);
  std::printf("wrote %s: %llu records, %.1f MB, %.1f s of capture, %zu connections\n",
              path.c_str(), static_cast<unsigned long long>(summary.records),
              static_cast<double>(summary.file_bytes) / 1048576.0, summary.duration_s,
              options.connections);
  return 0;
}

/// --selftest: the parallel==serial invariant on a generated capture. The
/// tsan CI job runs exactly this, so every cross-thread edge of the
/// partition/lanes/merge pipeline gets exercised under the race detector.
int run_selftest(const std::string& scratch) {
  vstream::capture::SyntheticCaptureOptions gen;
  gen.target_file_bytes = 4ULL << 20U;
  gen.connections = 7;  // not a multiple of any tested lane count
  vstream::capture::write_synthetic_capture(scratch, gen);

  const vstream::capture::MmapPcapReader reader{scratch};
  const ClassifyOptions options;
  const CaptureClassification serial =
      vstream::analysis::classify_capture_serial(reader, options);
  const std::string serial_json = serial.to_json();
  const std::string serial_csv = serial.to_csv();
  std::printf("selftest capture: %llu records, %zu connections\n",
              static_cast<unsigned long long>(serial.records), serial.connections.size());

  int failures = 0;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const vstream::runner::ParallelSweep pool{jobs};
    const CaptureClassification parallel =
        vstream::analysis::classify_capture(reader, pool, options);
    const bool same = parallel == serial && parallel.to_json() == serial_json &&
                      parallel.to_csv() == serial_csv;
    std::printf("jobs=%zu: %s\n", jobs, same ? "identical to serial reference" : "DIVERGED");
    if (!same) ++failures;
  }
  std::remove(scratch.c_str());
  if (failures != 0) {
    std::printf("FAIL: %d worker configuration(s) diverged from the serial path\n", failures);
    return 1;
  }
  std::printf("ok: classification is byte-identical across worker counts\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vstream;
  std::size_t jobs = 0;
  bool serial = false;
  bool as_json = false;
  bool as_csv = false;
  std::string out_path;
  std::string profile_path;
  std::string gen_path;
  double gen_mb = 16.0;
  std::size_t gen_connections = 0;
  bool selftest = false;
  std::vector<std::string> positional;

  for (int arg = 1; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--jobs") == 0 && arg + 1 < argc) {
      jobs = static_cast<std::size_t>(std::atoll(argv[++arg]));
    } else if (std::strcmp(argv[arg], "--serial") == 0) {
      serial = true;
    } else if (std::strcmp(argv[arg], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[arg], "--csv") == 0) {
      as_csv = true;
    } else if (std::strcmp(argv[arg], "--out") == 0 && arg + 1 < argc) {
      out_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--profile-out") == 0 && arg + 1 < argc) {
      profile_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--gen") == 0 && arg + 1 < argc) {
      gen_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--mb") == 0 && arg + 1 < argc) {
      gen_mb = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--connections") == 0 && arg + 1 < argc) {
      gen_connections = static_cast<std::size_t>(std::atoll(argv[++arg]));
    } else if (std::strcmp(argv[arg], "--selftest") == 0) {
      selftest = true;
    } else if (argv[arg][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[arg]);
      return usage(argv[0]);
    } else {
      positional.emplace_back(argv[arg]);
    }
  }
  if (as_json && as_csv) {
    std::fprintf(stderr, "pick one of --json / --csv\n");
    return usage(argv[0]);
  }

  try {
    if (!gen_path.empty()) {
      if (gen_mb <= 0.0) {
        std::fprintf(stderr, "--mb must be positive\n");
        return usage(argv[0]);
      }
      return run_generate(gen_path, gen_mb, gen_connections);
    }
    if (selftest) {
      return run_selftest(positional.empty() ? "strategy_classifier_selftest.pcap"
                                             : positional.front());
    }
    if (positional.size() != 1) return usage(argv[0]);

    const capture::MmapPcapReader reader{positional.front()};
    const ClassifyOptions options;
    const runner::ParallelSweep pool{serial ? 1 : jobs};
    runner::SweepProfiler profiler{pool.jobs()};
    CaptureClassification result =
        serial ? analysis::classify_capture_serial(reader, options)
               : analysis::classify_capture(reader, pool, options, &profiler);

    const std::string text =
        as_json ? result.to_json() + "\n" : as_csv ? result.to_csv() : result.render();
    if (!emit(text, out_path)) return 1;

    // Phase timing to stderr so stdout stays byte-comparable across runs
    // (and across --jobs, which the selftest and CI assert on).
    const auto summary = profiler.summary();
    std::fprintf(stderr,
                 "classified %zu connections from %llu records in %.3f s "
                 "(%zu workers, %.0f%% busy)\n",
                 result.connections.size(), static_cast<unsigned long long>(result.records),
                 summary.wall_s, summary.workers, summary.utilization() * 100.0);
    if (!profile_path.empty()) {
      profiler.write_json(profile_path, "strategy_classifier");
      std::fprintf(stderr, "wrote profile to %s\n", profile_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
