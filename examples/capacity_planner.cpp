// capacity_planner — dimension a link for aggregate video-streaming traffic
// with the paper's Section 6 model.
//
// Given a session arrival rate and a video population, prints the required
// link capacity E[R] + alpha*sqrt(Var R) for several overprovisioning
// levels, validates the closed forms against the Monte-Carlo superposition,
// and quantifies the paper's headline what-if: a population-wide migration
// from Flash (k=1.25, B'=40 s) to an HTML5-style strategy, plus a shift to
// HD encoding rates.
//
// Usage: capacity_planner [--profile-out [path]] [--trace-out path]
//                         [lambda_per_s] [mean_rate_mbps] [mean_duration_s]
//        capacity_planner --capacity N [--seconds S] [--shards K --shard I]
//                         [--shard-out PATH]
//        capacity_planner --merge [--expect-digest HEX] shard.json...
//
// The empirical cross-check simulates shared-bottleneck topologies
// (streaming/topology_builder.hpp): Poisson churn onto one link, per-window
// R(t) measured against Eq 3/4 on the run's own measured inputs. Worlds
// fan out across cores (worker count from VSTREAM_JOBS, default hardware
// concurrency, 1 = serial). --trace-out still runs one representative
// single session in a private world — the documented legacy entry point —
// because topologies deliberately reject per-session trace sinks.
//
// --capacity runs N full packet-level sessions through the streamed sweep
// path (runner/session_sweep.hpp): results fold into per-worker
// accumulators as they finish, so memory stays bounded however large N is
// (the README's million-session run uses exactly this mode). --shards K
// --shard I runs the I-th contiguous slice of the N global session indices
// in this process; --shard-out writes the slice's aggregate + digest (plus
// this process's peak RSS) as JSON. --merge reads shard payloads back,
// verifies they tile [0, N) exactly, XOR-merges the digests — bit-equal to
// the unsharded digest by construction — and prints the combined aggregate;
// --expect-digest makes the merge fail loudly unless the combined digest
// matches (CI pins the sharded run against an unsharded twin this way).
//
// --profile-out arms a runner::SweepProfiler on the session pool and writes
// per-worker phase timings, task counts, and utilization to `path`
// (default BENCH_sweep_profile.json) — the same shape the bench harness
// publishes. --trace-out attaches a Chrome-trace sink to the sweep's first
// session, so one representative world's span timeline lands beside the
// capacity numbers.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "model/aggregate.hpp"
#include "model/interruption.hpp"
#include "obs/chrome_trace.hpp"
#include "runner/parallel_sweep.hpp"
#include "runner/session_sweep.hpp"
#include "runner/sweep_profiler.hpp"
#include "runner/topology_sweep.hpp"
#include "streaming/session_builder.hpp"

namespace {

using namespace vstream;

/// Peak resident set of this process in kB (Linux VmHWM), 0 if unreadable.
/// This is the number the million-session claim rests on: it must stay flat
/// as --capacity grows, because the streamed sweep never materializes
/// results.
std::size_t peak_rss_kb() {
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::atoll(line.c_str() + 6));
    }
  }
  return 0;
}

/// The capacity population: a deterministic function of the *global* session
/// index, so every shard generates exactly the sessions of its slice and
/// the sharded digest merges to the unsharded one. Mixes containers,
/// vantages and encoding rates the way the paper's Table 1 population does.
streaming::SessionConfig capacity_config(std::size_t g, double seconds) {
  static constexpr net::Vantage kVantages[] = {net::Vantage::kResearch, net::Vantage::kResidence,
                                               net::Vantage::kAcademic, net::Vantage::kHome};
  video::VideoMeta meta;
  meta.id = "capacity";
  meta.duration_s = 120.0;
  meta.encoding_bps = 1.0e6 + 2.5e5 * static_cast<double>(g % 5);
  meta.container = g % 2 == 0 ? video::Container::kFlash : video::Container::kHtml5;
  return streaming::SessionBuilder{}
      .vantage(kVantages[g % 4])
      .video(meta)
      .container(meta.container)
      .capture_duration_s(seconds)
      .seed(900000 + g)
      .store_trace(false)  // aggregates only: memory stays O(1) per session
      .build();
}

/// --flash-crowd N: one shared-bottleneck world absorbing N viewers inside
/// a few seconds — the topology API's stress shape (peak concurrency == N
/// by construction, since every video outlives the arrival window). Prints
/// the measured concurrency, the windowed R(t) against the closed forms on
/// measured inputs, and the peak RSS the O(arrivals) world actually used.
int run_flash_crowd(std::size_t viewers, double bottleneck_gbps) {
  video::VideoMeta meta;
  meta.id = "crowd";
  meta.duration_s = 20.0;
  meta.encoding_bps = 75e3;
  meta.container = video::Container::kFlashHd;
  const auto result =
      streaming::TopologyBuilder{}
          .container(video::Container::kFlashHd)
          .vantage(net::Vantage::kResidence)
          .video(meta)
          .sessions(viewers)
          .workload(streaming::WorkloadBuilder{}
                        .flash_crowd(/*spread_s=*/5.0)
                        .customize([](std::size_t, sim::Rng& rng, streaming::SessionConfig& cfg) {
                          cfg.video.encoding_bps = rng.uniform(50e3, 100e3);
                          cfg.video.duration_s = rng.uniform(15.0, 25.0);
                        })
                        .build())
          .bottleneck_rate_bps(bottleneck_gbps * 1e9)
          .horizon_s(35.0)
          .warmup_s(2.0)
          .sample_window_s(0.1)
          .seed(31000)
          .run();
  std::printf("== flash crowd ==\n");
  std::printf("  %zu viewers in 5 s onto a %.1f Gbps link (residence access legs)\n",
              result.sessions_started, bottleneck_gbps);
  std::printf("  peak concurrency %.0f sessions (mean %.0f), %llu sim events\n",
              result.concurrency.peak, result.concurrency.mean(),
              static_cast<unsigned long long>(result.sim_events));
  std::printf("  aggregate R(t): mean %.1f Mbps, peak %.1f Mbps, sd %.1f Mbps\n",
              result.mean_aggregate_bps() / 1e6, result.aggregate.peak / 1e6,
              std::sqrt(result.variance_aggregate()) / 1e6);
  std::printf("  %llu finished, %zu active at end, %.2f GB downloaded, peak RSS %.1f MB\n",
              static_cast<unsigned long long>(result.sessions_finished),
              result.sessions_active_at_end,
              static_cast<double>(result.bytes_downloaded) / 1e9,
              static_cast<double>(peak_rss_kb()) / 1024.0);
  return 0;
}

int run_capacity(std::size_t capacity, double seconds, std::size_t shards, std::size_t shard,
                 const std::string& shard_out) {
  if (shard >= shards) {
    std::fprintf(stderr, "capacity_planner: --shard %zu out of range for --shards %zu\n", shard,
                 shards);
    return 2;
  }
  // Contiguous slices: shard i owns [i*N/K, (i+1)*N/K) of the global range.
  const std::size_t first = capacity * shard / shards;
  const std::size_t count = capacity * (shard + 1) / shards - first;

  runner::ParallelSweep pool;
  runner::SweepProfiler profiler{pool.jobs()};
  pool.set_profiler(&profiler);

  std::printf("== capacity run ==\n");
  std::printf("sessions %zu..%zu of %zu (shard %zu/%zu), %.2f s capture, %zu workers\n", first,
              first + count, capacity, shard, shards, seconds, pool.jobs());

  const runner::SweepAccumulator acc = runner::run_sessions_streamed(
      pool, first, count, [seconds](std::size_t g) { return capacity_config(g, seconds); });

  const auto summary = profiler.summary();
  const std::size_t rss_kb = peak_rss_kb();
  std::printf("  %llu sessions, %llu sim events, %.1f GB downloaded\n",
              static_cast<unsigned long long>(acc.sessions),
              static_cast<unsigned long long>(acc.sim_events),
              static_cast<double>(acc.bytes_downloaded) / 1e9);
  std::printf("  mean session download rate %.2f Mbps, %llu rebuffers, %llu retries\n",
              acc.mean_download_rate_bps() / 1e6,
              static_cast<unsigned long long>(acc.rebuffer_count),
              static_cast<unsigned long long>(acc.fetch_retries));
  std::printf("  sweep digest %016llx over %llu sessions\n",
              static_cast<unsigned long long>(acc.digest.combined),
              static_cast<unsigned long long>(acc.digest.sessions));
  if (summary.wall_s > 0.0) {
    std::printf("  %.1f s wall, %.0f sessions/s, %.0f%% utilization, peak RSS %.1f MB\n",
                summary.wall_s, static_cast<double>(acc.sessions) / summary.wall_s,
                summary.utilization() * 100.0, static_cast<double>(rss_kb) / 1024.0);
  }

  if (!shard_out.empty()) {
    // Graft the RSS bound into the payload so the merge report can show the
    // worst shard without re-running anything.
    std::string json = acc.to_json("capacity", shard, shards, first, count);
    json.pop_back();  // trailing '}'
    json += ",\"peak_rss_kb\":" + std::to_string(rss_kb) + "}";
    std::ofstream out{shard_out, std::ios::trunc};
    if (!out) {
      std::fprintf(stderr, "capacity_planner: cannot write %s\n", shard_out.c_str());
      return 2;
    }
    out << json << "\n";
    std::printf("  shard payload written: %s\n", shard_out.c_str());
  }
  return 0;
}

int run_merge(const std::vector<std::string>& paths, const std::string& expect_digest) {
  if (paths.empty()) {
    std::fprintf(stderr, "capacity_planner: --merge needs at least one shard payload\n");
    return 2;
  }
  runner::SweepAccumulator merged;
  std::size_t shards_expected = 0;
  std::size_t covered_end = 0;  // shards must tile [0, N) in order after sort-by-first
  struct Slice {
    std::size_t shard, first, count;
  };
  std::vector<Slice> slices;
  for (const auto& path : paths) {
    std::size_t shard = 0;
    std::size_t shards = 0;
    std::size_t first = 0;
    std::size_t count = 0;
    const auto acc = runner::SweepAccumulator::from_json_file(path, shard, shards, first, count);
    if (shards_expected == 0) shards_expected = shards;
    if (shards != shards_expected) {
      std::fprintf(stderr, "capacity_planner: %s declares %zu shards, expected %zu\n",
                   path.c_str(), shards, shards_expected);
      return 2;
    }
    slices.push_back(Slice{shard, first, count});
    merged.merge(acc);
  }
  if (slices.size() != shards_expected) {
    std::fprintf(stderr, "capacity_planner: merged %zu payloads but the run had %zu shards\n",
                 slices.size(), shards_expected);
    return 2;
  }
  // Coverage check: sort by range start, require an exact tiling from 0.
  std::sort(slices.begin(), slices.end(),
            [](const Slice& a, const Slice& b) { return a.first < b.first; });
  for (const Slice& s : slices) {
    if (s.first != covered_end) {
      std::fprintf(stderr, "capacity_planner: shard %zu starts at %zu, expected %zu — gap/overlap\n",
                   s.shard, s.first, covered_end);
      return 2;
    }
    covered_end = s.first + s.count;
  }

  std::printf("== sharded capacity merge ==\n");
  std::printf("  %zu shards tile sessions [0, %zu) exactly\n", slices.size(), covered_end);
  std::printf("  %llu sessions, %llu sim events, %.1f GB downloaded\n",
              static_cast<unsigned long long>(merged.sessions),
              static_cast<unsigned long long>(merged.sim_events),
              static_cast<double>(merged.bytes_downloaded) / 1e9);
  std::printf("  mean session download rate %.2f Mbps, %llu rebuffers, %llu retries\n",
              merged.mean_download_rate_bps() / 1e6,
              static_cast<unsigned long long>(merged.rebuffer_count),
              static_cast<unsigned long long>(merged.fetch_retries));
  std::printf("  merged sweep digest %016llx over %llu sessions\n",
              static_cast<unsigned long long>(merged.digest.combined),
              static_cast<unsigned long long>(merged.digest.sessions));
  if (merged.digest.sessions != covered_end) {
    std::fprintf(stderr, "capacity_planner: digest covers %llu sessions, range covers %zu\n",
                 static_cast<unsigned long long>(merged.digest.sessions), covered_end);
    return 2;
  }
  if (!expect_digest.empty()) {
    const auto expected =
        static_cast<std::uint64_t>(std::strtoull(expect_digest.c_str(), nullptr, 16));
    if (merged.digest.combined != expected) {
      std::fprintf(stderr, "capacity_planner: digest mismatch: merged %016llx != expected %016llx\n",
                   static_cast<unsigned long long>(merged.digest.combined),
                   static_cast<unsigned long long>(expected));
      return 1;
    }
    std::printf("  digest matches --expect-digest %s\n", expect_digest.c_str());
  }
  return 0;
}

void print_dimensioning(const model::AggregateParams& p) {
  const double mean = model::mean_aggregate_rate_bps(p);
  const double sd = std::sqrt(model::variance_aggregate_rate(p));
  std::printf("  E[R] = %.1f Mbps, sd = %.1f Mbps, CoV = %.3f\n", mean / 1e6, sd / 1e6,
              sd / mean);
  for (const double alpha : {1.0, 2.0, 3.0}) {
    const double capacity = model::dimension_link_bps(p, alpha);
    std::printf("    alpha=%.0f  ->  provision %.1f Mbps (overload probability %.3g)\n", alpha,
                capacity / 1e6, model::overload_probability(p, capacity));
  }
  for (const double q : {0.01, 0.001}) {
    std::printf("    violation target %.1f%% -> provision %.1f Mbps\n", q * 100.0,
                model::capacity_for_violation(p, q) / 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_path;
  std::string trace_path;
  std::size_t capacity = 0;
  double capacity_seconds = 2.0;
  std::size_t shards = 1;
  std::size_t shard = 0;
  std::string shard_out;
  std::string expect_digest;
  bool merge = false;
  std::size_t crowd = 0;
  double crowd_gbps = 1.0;
  while (argc > 1 && std::strncmp(argv[1], "--", 2) == 0) {
    if (std::strcmp(argv[1], "--capacity") == 0 && argc > 2) {
      capacity = static_cast<std::size_t>(std::atoll(argv[2]));
      --argc;
      ++argv;
    } else if (std::strcmp(argv[1], "--flash-crowd") == 0 && argc > 2) {
      crowd = static_cast<std::size_t>(std::atoll(argv[2]));
      --argc;
      ++argv;
    } else if (std::strcmp(argv[1], "--gbps") == 0 && argc > 2) {
      crowd_gbps = std::atof(argv[2]);
      --argc;
      ++argv;
    } else if (std::strcmp(argv[1], "--seconds") == 0 && argc > 2) {
      capacity_seconds = std::atof(argv[2]);
      --argc;
      ++argv;
    } else if (std::strcmp(argv[1], "--shards") == 0 && argc > 2) {
      shards = static_cast<std::size_t>(std::atoll(argv[2]));
      --argc;
      ++argv;
    } else if (std::strcmp(argv[1], "--shard") == 0 && argc > 2) {
      shard = static_cast<std::size_t>(std::atoll(argv[2]));
      --argc;
      ++argv;
    } else if (std::strcmp(argv[1], "--shard-out") == 0 && argc > 2) {
      shard_out = argv[2];
      --argc;
      ++argv;
    } else if (std::strcmp(argv[1], "--expect-digest") == 0 && argc > 2) {
      expect_digest = argv[2];
      --argc;
      ++argv;
    } else if (std::strcmp(argv[1], "--merge") == 0) {
      merge = true;
    } else if (std::strcmp(argv[1], "--profile-out") == 0) {
      // The path is optional: positional args are all numeric, so a
      // following token that doesn't start like a number is the path.
      profile_path = "BENCH_sweep_profile.json";
      if (argc > 2 && argv[2][0] != '-' && argv[2][0] != '.' &&
          (argv[2][0] < '0' || argv[2][0] > '9')) {
        profile_path = argv[2];
        --argc;
        ++argv;
      }
    } else if (std::strcmp(argv[1], "--trace-out") == 0 && argc > 2) {
      trace_path = argv[2];
      --argc;
      ++argv;
    } else {
      std::fprintf(stderr,
                   "usage: capacity_planner [--profile-out [path]] [--trace-out path]\n"
                   "                        [lambda_per_s] [mean_rate_mbps] [mean_duration_s]\n"
                   "       capacity_planner --capacity N [--seconds S]\n"
                   "                        [--shards K --shard I] [--shard-out PATH]\n"
                   "       capacity_planner --merge [--expect-digest HEX] shard.json...\n"
                   "       capacity_planner --flash-crowd N [--gbps G]\n");
      return 2;
    }
    --argc;
    ++argv;
  }

  if (merge) {
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) paths.emplace_back(argv[i]);
    return run_merge(paths, expect_digest);
  }
  if (crowd > 0) {
    return run_flash_crowd(crowd, crowd_gbps);
  }
  if (capacity > 0) {
    return run_capacity(capacity, capacity_seconds, shards, shard, shard_out);
  }

  model::AggregateParams p;
  p.lambda_per_s = argc > 1 ? std::atof(argv[1]) : 0.5;
  p.mean_encoding_bps = (argc > 2 ? std::atof(argv[2]) : 1.0) * 1e6;
  p.mean_duration_s = argc > 3 ? std::atof(argv[3]) : 300.0;
  p.mean_download_rate_bps = 5e6;

  std::printf("== capacity planning (Section 6.1) ==\n");
  std::printf("population: lambda=%.2f sessions/s, E[e]=%.2f Mbps, E[L]=%.0f s, E[G]=%.0f Mbps\n\n",
              p.lambda_per_s, p.mean_encoding_bps / 1e6, p.mean_duration_s,
              p.mean_download_rate_bps / 1e6);
  print_dimensioning(p);

  std::printf("\nvalidation against Monte-Carlo superposition (short ON-OFF):\n");
  model::MonteCarloConfig mc;
  mc.lambda_per_s = p.lambda_per_s;
  mc.horizon_s = 2000.0;
  mc.strategy = model::ModelStrategy::kShortOnOff;
  const double e_mean = p.mean_encoding_bps;
  const double l_mean = p.mean_duration_s;
  const double g_mean = p.mean_download_rate_bps;
  mc.draw_encoding_bps = [e_mean](sim::Rng& r) { return r.uniform(0.5 * e_mean, 1.5 * e_mean); };
  mc.draw_duration_s = [l_mean](sim::Rng& r) { return r.uniform(0.5 * l_mean, 1.5 * l_mean); };
  mc.draw_download_rate_bps = [g_mean](sim::Rng&) { return g_mean; };
  const auto result = model::run_aggregate_monte_carlo(mc);
  std::printf("  simulated mean %.1f Mbps (closed form %.1f), sd %.1f Mbps (closed form %.1f)\n",
              result.mean_bps / 1e6, model::mean_aggregate_rate_bps(p) / 1e6,
              std::sqrt(result.variance) / 1e6, std::sqrt(model::variance_aggregate_rate(p)) / 1e6);
  std::printf("  mean concurrently-active flows: %.1f\n", result.mean_active_flows);

  // Empirical cross-check: a packet-level shared-bottleneck topology —
  // Poisson churn onto one link, R(t) sampled per window — measured against
  // the closed forms on its OWN measured inputs (lambda-hat, E[e], E[L],
  // E[G] all come out of the run, not out of assumption). Scale-model
  // sessions keep it to a couple of seconds; worlds fan across cores and
  // the pooled windows are identical for any worker count.
  {
    constexpr std::size_t kWorlds = 4;
    runner::ParallelSweep pool;
    runner::SweepProfiler profiler{pool.jobs()};
    if (!profile_path.empty()) pool.set_profiler(&profiler);

    const auto make = [](std::size_t g) {
      video::VideoMeta meta;
      meta.id = "planner";
      meta.duration_s = 6.0;
      meta.encoding_bps = 75e3;
      meta.container = video::Container::kFlashHd;
      return streaming::TopologyBuilder{}
          .container(video::Container::kFlashHd)
          .vantage(net::Vantage::kResidence)
          .video(meta)
          .sessions(900)
          .workload(
              streaming::WorkloadBuilder{}
                  .poisson(25.0)
                  .customize([](std::size_t, sim::Rng& rng, streaming::SessionConfig& cfg) {
                    cfg.video.encoding_bps = rng.uniform(50e3, 100e3);
                    cfg.video.duration_s = rng.uniform(4.0, 8.0);
                  })
                  .build())
          .bottleneck_rate_bps(60e6)
          .horizon_s(30.0)
          .warmup_s(10.0)
          .sample_window_s(0.1)
          .seed(7000 + g)
          .build();
    };
    const auto sweep = runner::run_topologies_streamed(pool, 0, kWorlds, make);
    const auto measured = sweep.measured_model_params();
    std::printf("\nempirical topology cross-check (%llu sessions, %zu worlds, %zu workers):\n",
                static_cast<unsigned long long>(sweep.sessions_started), kWorlds, pool.jobs());
    std::printf("  measured lambda=%.1f/s, E[e]=%.0f kbps, E[L]=%.1f s, E[G]=%.2f Mbps\n",
                measured.lambda_per_s, measured.mean_encoding_bps / 1e3,
                measured.mean_duration_s, measured.mean_download_rate_bps / 1e6);
    std::printf("  shared-link R(t): mean %.2f Mbps (Eq 3 on measured inputs: %.2f), "
                "sd %.2f Mbps (Eq 4: %.2f)\n",
                sweep.mean_aggregate_bps() / 1e6,
                model::mean_aggregate_rate_bps(measured) / 1e6,
                std::sqrt(sweep.variance_aggregate()) / 1e6,
                std::sqrt(model::variance_aggregate_rate(measured)) / 1e6);
    if (!profile_path.empty()) {
      const auto summary = profiler.summary();
      std::printf("  sweep profile: %.2f s wall, %.0f%% utilization across %zu workers\n",
                  summary.wall_s, summary.utilization() * 100.0, summary.workers);
      for (std::size_t w = 0; w < summary.per_worker.size(); ++w) {
        const auto& ws = summary.per_worker[w];
        std::printf("    worker %zu: %llu tasks, %.2f s busy (%.0f%% of wall)\n", w,
                    static_cast<unsigned long long>(ws.tasks()), ws.busy_s(),
                    summary.wall_s > 0.0 ? 100.0 * ws.busy_s() / summary.wall_s : 0.0);
      }
      profiler.write_json(profile_path, "capacity_planner");
      std::printf("  profile written: %s\n", profile_path.c_str());
    }
  }

  // Legacy single-session entry point (documented in DESIGN.md §15): one
  // representative private-world session carrying the Chrome-trace sink —
  // topologies reject per-session trace attachments by design, so the span
  // timeline still comes from the single-session path.
  if (!trace_path.empty()) {
    auto trace_sink = std::make_unique<obs::ChromeTraceSink>(trace_path);
    video::VideoMeta meta;
    meta.id = "planner-trace";
    meta.duration_s = p.mean_duration_s;
    meta.encoding_bps = p.mean_encoding_bps;
    meta.container = video::Container::kFlash;
    const auto traced = streaming::SessionBuilder{}
                            .vantage(net::Vantage::kResearch)
                            .video(meta)
                            .capture_duration_s(30.0)
                            .seed(7000)
                            .store_trace(false)
                            .trace_sink(trace_sink.get())
                            .run();
    trace_sink->close();
    std::printf("\ntraced representative session: %.1f MB downloaded\n",
                static_cast<double>(traced.bytes_downloaded) / 1e6);
    std::printf("  span timeline: %s (open in https://ui.perfetto.dev)\n", trace_path.c_str());
  }

  std::printf("\n== what-if scenarios (paper's conclusion) ==\n");

  std::printf("\n1. HD migration: E[e] doubles to %.1f Mbps\n", 2 * p.mean_encoding_bps / 1e6);
  auto hd = p;
  hd.mean_encoding_bps *= 2.0;
  print_dimensioning(hd);
  {
    const double cov_before = std::sqrt(model::variance_aggregate_rate(p)) /
                              model::mean_aggregate_rate_bps(p);
    const double cov_after = std::sqrt(model::variance_aggregate_rate(hd)) /
                             model::mean_aggregate_rate_bps(hd);
    std::printf("  rate doubles, but traffic is smoother: CoV %.3f -> %.3f\n", cov_before,
                cov_after);
  }

  std::printf("\n2. interruptions: Flash-like policy vs a leaner one (Eq 9)\n");
  for (const auto& [label, buffered, ratio] :
       {std::tuple{"Flash-like (B'=40 s, k=1.25)", 40.0, 1.25},
        std::tuple{"lean (B'=10 s, k=1.05)", 10.0, 1.05}}) {
    model::WasteMonteCarloConfig waste;
    waste.lambda_per_s = p.lambda_per_s;
    waste.draws = 50000;
    waste.buffered_playback_s = buffered;
    waste.accumulation_ratio = ratio;
    waste.draw_encoding_bps = [e_mean](sim::Rng& r) {
      return r.uniform(0.5 * e_mean, 1.5 * e_mean);
    };
    waste.draw_duration_s = [l_mean](sim::Rng& r) { return r.uniform(0.5 * l_mean, 1.5 * l_mean); };
    waste.draw_beta = [](sim::Rng& r) {
      return r.bernoulli(0.6) ? r.uniform(0.01, 0.2) : r.uniform(0.2, 0.99);
    };
    const auto est = model::estimate_wasted_bandwidth(waste);
    std::printf("  %-30s wasted %.1f Mbps (%.1f%% of traffic)\n", label, est.wasted_bps / 1e6,
                est.waste_fraction * 100.0);
  }
  std::printf("\nthe strategy itself does not change E[R]/Var R (conclusion 2) -- only the\n"
              "encoding rates and the interruption-waste policy move the numbers above.\n");
  return 0;
}
