// capacity_planner — dimension a link for aggregate video-streaming traffic
// with the paper's Section 6 model.
//
// Given a session arrival rate and a video population, prints the required
// link capacity E[R] + alpha*sqrt(Var R) for several overprovisioning
// levels, validates the closed forms against the Monte-Carlo superposition,
// and quantifies the paper's headline what-if: a population-wide migration
// from Flash (k=1.25, B'=40 s) to an HTML5-style strategy, plus a shift to
// HD encoding rates.
//
// Usage: capacity_planner [--profile-out [path]] [--trace-out path]
//                         [lambda_per_s] [mean_rate_mbps] [mean_duration_s]
//
// The empirical cross-check at the end simulates full sessions; those fan
// out across cores (worker count from VSTREAM_JOBS, default hardware
// concurrency, 1 = serial).
//
// --profile-out arms a runner::SweepProfiler on the session pool and writes
// per-worker phase timings, task counts, and utilization to `path`
// (default BENCH_sweep_profile.json) — the same shape the bench harness
// publishes. --trace-out attaches a Chrome-trace sink to the sweep's first
// session, so one representative world's span timeline lands beside the
// capacity numbers.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "model/aggregate.hpp"
#include "model/interruption.hpp"
#include "obs/chrome_trace.hpp"
#include "runner/parallel_sweep.hpp"
#include "runner/sweep_profiler.hpp"
#include "streaming/session_builder.hpp"

namespace {

using namespace vstream;

void print_dimensioning(const model::AggregateParams& p) {
  const double mean = model::mean_aggregate_rate_bps(p);
  const double sd = std::sqrt(model::variance_aggregate_rate(p));
  std::printf("  E[R] = %.1f Mbps, sd = %.1f Mbps, CoV = %.3f\n", mean / 1e6, sd / 1e6,
              sd / mean);
  for (const double alpha : {1.0, 2.0, 3.0}) {
    const double capacity = model::dimension_link_bps(p, alpha);
    std::printf("    alpha=%.0f  ->  provision %.1f Mbps (overload probability %.3g)\n", alpha,
                capacity / 1e6, model::overload_probability(p, capacity));
  }
  for (const double q : {0.01, 0.001}) {
    std::printf("    violation target %.1f%% -> provision %.1f Mbps\n", q * 100.0,
                model::capacity_for_violation(p, q) / 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_path;
  std::string trace_path;
  while (argc > 1 && std::strncmp(argv[1], "--", 2) == 0) {
    if (std::strcmp(argv[1], "--profile-out") == 0) {
      // The path is optional: positional args are all numeric, so a
      // following token that doesn't start like a number is the path.
      profile_path = "BENCH_sweep_profile.json";
      if (argc > 2 && argv[2][0] != '-' && argv[2][0] != '.' &&
          (argv[2][0] < '0' || argv[2][0] > '9')) {
        profile_path = argv[2];
        --argc;
        ++argv;
      }
    } else if (std::strcmp(argv[1], "--trace-out") == 0 && argc > 2) {
      trace_path = argv[2];
      --argc;
      ++argv;
    } else {
      std::fprintf(stderr,
                   "usage: capacity_planner [--profile-out [path]] [--trace-out path]\n"
                   "                        [lambda_per_s] [mean_rate_mbps] [mean_duration_s]\n");
      return 2;
    }
    --argc;
    ++argv;
  }

  model::AggregateParams p;
  p.lambda_per_s = argc > 1 ? std::atof(argv[1]) : 0.5;
  p.mean_encoding_bps = (argc > 2 ? std::atof(argv[2]) : 1.0) * 1e6;
  p.mean_duration_s = argc > 3 ? std::atof(argv[3]) : 300.0;
  p.mean_download_rate_bps = 5e6;

  std::printf("== capacity planning (Section 6.1) ==\n");
  std::printf("population: lambda=%.2f sessions/s, E[e]=%.2f Mbps, E[L]=%.0f s, E[G]=%.0f Mbps\n\n",
              p.lambda_per_s, p.mean_encoding_bps / 1e6, p.mean_duration_s,
              p.mean_download_rate_bps / 1e6);
  print_dimensioning(p);

  std::printf("\nvalidation against Monte-Carlo superposition (short ON-OFF):\n");
  model::MonteCarloConfig mc;
  mc.lambda_per_s = p.lambda_per_s;
  mc.horizon_s = 2000.0;
  mc.strategy = model::ModelStrategy::kShortOnOff;
  const double e_mean = p.mean_encoding_bps;
  const double l_mean = p.mean_duration_s;
  const double g_mean = p.mean_download_rate_bps;
  mc.draw_encoding_bps = [e_mean](sim::Rng& r) { return r.uniform(0.5 * e_mean, 1.5 * e_mean); };
  mc.draw_duration_s = [l_mean](sim::Rng& r) { return r.uniform(0.5 * l_mean, 1.5 * l_mean); };
  mc.draw_download_rate_bps = [g_mean](sim::Rng&) { return g_mean; };
  const auto result = model::run_aggregate_monte_carlo(mc);
  std::printf("  simulated mean %.1f Mbps (closed form %.1f), sd %.1f Mbps (closed form %.1f)\n",
              result.mean_bps / 1e6, model::mean_aggregate_rate_bps(p) / 1e6,
              std::sqrt(result.variance) / 1e6, std::sqrt(model::variance_aggregate_rate(p)) / 1e6);
  std::printf("  mean concurrently-active flows: %.1f\n", result.mean_active_flows);

  // Empirical cross-check: the model's per-session inputs (download rate G,
  // encoding rate e) come from packet-level simulation, not assumption.
  // Sessions are independent worlds, so they fan across cores; results are
  // merged in submission order and identical for any worker count.
  {
    constexpr std::size_t kSessions = 8;
    runner::ParallelSweep pool;
    runner::SweepProfiler profiler{pool.jobs()};
    if (!profile_path.empty()) pool.set_profiler(&profiler);

    std::vector<streaming::SessionConfig> configs;
    {
      // Config construction is the sweep's build phase — serial, worker 0.
      const runner::SweepProfiler::Scope build_scope{
          pool.profiler(), 0, runner::SweepPhase::kBuild};
      video::VideoMeta meta;
      meta.id = "planner";
      meta.duration_s = p.mean_duration_s;
      meta.encoding_bps = p.mean_encoding_bps;
      meta.container = video::Container::kFlash;
      configs.reserve(kSessions);
      for (std::size_t i = 0; i < kSessions; ++i) {
        // Only aggregate outputs are read below: run the single-pass analysis
        // during capture and store no packets — memory stays O(1) per session.
        configs.push_back(streaming::SessionBuilder{}
                              .vantage(net::Vantage::kResearch)
                              .video(meta)
                              .capture_duration_s(30.0)
                              .seed(7000 + i)
                              .store_trace(false)
                              .streaming_report(true)
                              .build());
      }
    }
    // One representative traced world: a single sink serves a single
    // session, so the parallel fan-out stays data-race free.
    std::unique_ptr<obs::ChromeTraceSink> trace_sink;
    if (!trace_path.empty()) {
      trace_sink = std::make_unique<obs::ChromeTraceSink>(trace_path);
      configs.front().trace_sink = trace_sink.get();
    }

    const auto sessions = pool.run_sessions(configs);
    double rate_sum = 0.0;
    double encoding_sum = 0.0;
    {
      const runner::SweepProfiler::Scope merge_scope{
          pool.profiler(), 0, runner::SweepPhase::kMerge};
      for (const auto& s : sessions) {
        rate_sum += 8.0 * s.bytes_downloaded / configs.front().capture_duration_s;
        encoding_sum += s.encoding_bps_estimated;
      }
    }
    std::printf("\nempirical session sweep (%zu simulated sessions, %zu workers):\n",
                sessions.size(), pool.jobs());
    std::printf("  mean session download rate %.2f Mbps (model E[e] input %.2f Mbps)\n",
                rate_sum / kSessions / 1e6, p.mean_encoding_bps / 1e6);
    std::printf("  mean estimated encoding    %.2f Mbps\n", encoding_sum / kSessions / 1e6);
    if (trace_sink) {
      trace_sink->close();
      std::printf("  span timeline: %s (open in https://ui.perfetto.dev)\n", trace_path.c_str());
    }
    if (!profile_path.empty()) {
      const auto summary = profiler.summary();
      std::printf("  sweep profile: %.2f s wall, %.0f%% utilization across %zu workers\n",
                  summary.wall_s, summary.utilization() * 100.0, summary.workers);
      for (std::size_t w = 0; w < summary.per_worker.size(); ++w) {
        const auto& ws = summary.per_worker[w];
        std::printf("    worker %zu: %llu tasks, %.2f s busy (%.0f%% of wall)\n", w,
                    static_cast<unsigned long long>(ws.tasks()), ws.busy_s(),
                    summary.wall_s > 0.0 ? 100.0 * ws.busy_s() / summary.wall_s : 0.0);
      }
      profiler.write_json(profile_path, "capacity_planner");
      std::printf("  profile written: %s\n", profile_path.c_str());
    }
  }

  std::printf("\n== what-if scenarios (paper's conclusion) ==\n");

  std::printf("\n1. HD migration: E[e] doubles to %.1f Mbps\n", 2 * p.mean_encoding_bps / 1e6);
  auto hd = p;
  hd.mean_encoding_bps *= 2.0;
  print_dimensioning(hd);
  {
    const double cov_before = std::sqrt(model::variance_aggregate_rate(p)) /
                              model::mean_aggregate_rate_bps(p);
    const double cov_after = std::sqrt(model::variance_aggregate_rate(hd)) /
                             model::mean_aggregate_rate_bps(hd);
    std::printf("  rate doubles, but traffic is smoother: CoV %.3f -> %.3f\n", cov_before,
                cov_after);
  }

  std::printf("\n2. interruptions: Flash-like policy vs a leaner one (Eq 9)\n");
  for (const auto& [label, buffered, ratio] :
       {std::tuple{"Flash-like (B'=40 s, k=1.25)", 40.0, 1.25},
        std::tuple{"lean (B'=10 s, k=1.05)", 10.0, 1.05}}) {
    model::WasteMonteCarloConfig waste;
    waste.lambda_per_s = p.lambda_per_s;
    waste.draws = 50000;
    waste.buffered_playback_s = buffered;
    waste.accumulation_ratio = ratio;
    waste.draw_encoding_bps = [e_mean](sim::Rng& r) {
      return r.uniform(0.5 * e_mean, 1.5 * e_mean);
    };
    waste.draw_duration_s = [l_mean](sim::Rng& r) { return r.uniform(0.5 * l_mean, 1.5 * l_mean); };
    waste.draw_beta = [](sim::Rng& r) {
      return r.bernoulli(0.6) ? r.uniform(0.01, 0.2) : r.uniform(0.2, 0.99);
    };
    const auto est = model::estimate_wasted_bandwidth(waste);
    std::printf("  %-30s wasted %.1f Mbps (%.1f%% of traffic)\n", label, est.wasted_bps / 1e6,
                est.waste_fraction * 100.0);
  }
  std::printf("\nthe strategy itself does not change E[R]/Var R (conclusion 2) -- only the\n"
              "encoding rates and the interruption-waste policy move the numbers above.\n");
  return 0;
}
