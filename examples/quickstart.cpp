// Quickstart: stream one YouTube Flash video from the Research network,
// capture the traffic viewer-side, and run the paper's analysis on it —
// phases, ON-OFF cycles, block sizes, accumulation ratio, strategy.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "analysis/ack_clock.hpp"
#include "analysis/onoff.hpp"
#include "analysis/strategy.hpp"
#include "streaming/session_builder.hpp"

int main() {
  using namespace vstream;

  // A 1 Mbps, 5-minute video streamed via Flash in Internet Explorer.
  video::VideoMeta meta;
  meta.id = "demo";
  meta.duration_s = 300.0;
  meta.encoding_bps = 1e6;
  meta.resolution = video::Resolution::k360p;
  meta.container = video::Container::kFlash;

  const auto cfg = streaming::SessionBuilder{}
                       .service(streaming::Service::kYouTube)
                       .container(video::Container::kFlash)
                       .application(streaming::Application::kInternetExplorer)
                       .vantage(net::Vantage::kResearch)
                       .video(meta)
                       .capture_duration_s(180.0)
                       .seed(42)
                       .build();

  std::printf("streaming %s for %.0f s ...\n", cfg.video.id.c_str(), cfg.capture_duration_s);
  const auto result = streaming::run_session(cfg);

  std::printf("\n== session: %s ==\n", result.trace.label.c_str());
  std::printf("packets captured      : %zu\n", result.trace.packets.size());
  std::printf("bytes downloaded      : %.2f MB\n", result.bytes_downloaded / 1048576.0);
  std::printf("TCP connections       : %zu\n", result.connections);
  std::printf("player started at     : %.2f s\n", result.player.start_time_s);
  std::printf("content watched       : %.1f s (stalls: %u)\n", result.player.watched_s,
              result.player.stall_count);

  const auto analysis = analysis::analyze_on_off(result.trace);
  const auto decision = analysis::classify_strategy(analysis, result.trace);

  std::printf("\n== paper-style analysis ==\n");
  std::printf("buffering phase ends  : %.2f s\n", analysis.buffering_end_s);
  std::printf("buffering amount      : %.2f MB (%.1f s of playback)\n",
              analysis.buffering_bytes / 1048576.0,
              analysis.buffered_playback_s(result.encoding_bps_true));
  std::printf("steady-state rate     : %.2f Mbps\n", analysis.steady_rate_bps / 1e6);
  std::printf("accumulation ratio    : %.2f\n",
              analysis.accumulation_ratio(result.encoding_bps_true));
  std::printf("ON-OFF cycles         : %zu (median block %.0f kB, median OFF %.2f s)\n",
              analysis.block_sizes_bytes.size(), analysis.median_block_bytes() / 1024.0,
              analysis.median_off_s());
  std::printf("strategy              : %s ON-OFF cycles (%s)\n",
              analysis::to_string(decision.strategy).c_str(), decision.rationale.c_str());

  const auto first_rtt = analysis::first_rtt_bytes(result.trace, analysis);
  if (!first_rtt.empty()) {
    double sum = 0.0;
    for (const double b : first_rtt) sum += b;
    std::printf("ack clock             : %.0f kB arrive in the first RTT of an ON period\n",
                sum / first_rtt.size() / 1024.0);
    std::printf("                        (the full block: the congestion window survives idle)\n");
  }
  return 0;
}
