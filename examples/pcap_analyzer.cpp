// pcap_analyzer — run the paper's trace analysis on a pcap file.
//
// Works on captures written by this library (strategy_explorer can produce
// them) and on any Ethernet/IPv4/TCP capture of a single streaming session
// taken at the viewer side (the down direction is detected by which peer
// sends the bulk of the payload).
//
// Usage: pcap_analyzer [--json] [--flows] [--dump] <file.pcap> [encoding_rate_mbps]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "analysis/flows.hpp"
#include "analysis/report.hpp"
#include "analysis/report_json.hpp"
#include "capture/dump.hpp"
#include "capture/pcap.hpp"

int main(int argc, char** argv) {
  using namespace vstream;
  bool as_json = false;
  bool with_flows = false;
  bool dump = false;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[arg], "--flows") == 0) {
      with_flows = true;
    } else if (std::strcmp(argv[arg], "--dump") == 0) {
      dump = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (arg >= argc) {
    std::fprintf(stderr, "usage: %s [--json] [--flows] [--dump] <file.pcap> [encoding_rate_mbps]\n",
                 argv[0]);
    return 2;
  }
  argv += arg - 1;
  argc -= arg - 1;

  capture::PacketTrace trace;
  try {
    trace = capture::read_pcap(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  trace.label = argv[1];

  // Heuristic direction fix-up for foreign captures: the video flows in the
  // direction carrying most payload. Our own writer already encodes the
  // direction in the addresses, in which case this is a no-op.
  std::uint64_t down_payload = 0;
  std::uint64_t up_payload = 0;
  for (const auto& p : trace.packets) {
    (p.direction == net::Direction::kDown ? down_payload : up_payload) += p.payload_bytes;
  }
  if (up_payload > down_payload) {
    for (auto& p : trace.packets) p.direction = net::opposite(p.direction);
  }

  analysis::ReportOptions options;
  if (argc > 2) options.encoding_bps = std::atof(argv[2]) * 1e6;
  const auto report = analysis::build_report(trace, options);
  if (as_json) {
    std::printf("{\"report\":%s", analysis::to_json(report).c_str());
    if (with_flows) {
      std::printf(",\"flows\":%s", analysis::to_json(analysis::build_flow_table(trace)).c_str());
    }
    std::printf("}\n");
    return 0;
  }
  std::fputs(report.render().c_str(), stdout);
  if (dump) {
    std::printf("\nfirst packets (tcpdump style):\n");
    capture::DumpOptions opts;
    opts.max_packets = 40;
    std::ostringstream text;
    capture::dump_trace(trace, text, opts);
    std::fputs(text.str().c_str(), stdout);
  }
  if (with_flows) {
    std::printf("\nper-connection flows:\n%s", analysis::build_flow_table(trace).render().c_str());
  }
  return 0;
}
