// pcap_analyzer — run the paper's trace analysis on a pcap file.
//
// Works on captures written by this library (strategy_explorer can produce
// them) and on any Ethernet/IPv4/TCP capture of a single streaming session
// taken at the viewer side (the down direction is detected by which peer
// sends the bulk of the payload).
//
// Usage: pcap_analyzer [--json] [--flows] [--dump] [--stream]
//        [--metrics out.json] [--trace-out out.json]
//        <file.pcap> [encoding_rate_mbps]
//
// --stream runs the single-pass analysis pipeline over the file without
// materialising the trace: memory stays O(1) in the capture length and the
// report is field-identical to the default batch path.
//
// --trace-out synthesizes a Chrome trace-event timeline from the offline
// analysis — per-connection lifetimes, steady-state ON blocks, and the
// buffering phase — so a foreign pcap gets the same Perfetto view a live
// --trace-out simulation run produces.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/flows.hpp"
#include "analysis/onoff.hpp"
#include "analysis/report.hpp"
#include "analysis/report_json.hpp"
#include "analysis/streaming_report.hpp"
#include "capture/dump.hpp"
#include "capture/pcap.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

/// Rebuild an offline metrics registry from the capture — the per-flow
/// counters a live session's instrumentation would have produced — and
/// write it with the flow table as one JSON object.
bool write_metrics(const std::string& path, const vstream::capture::PacketTrace& trace,
                   const vstream::analysis::FlowTable& table) {
  using namespace vstream;
  obs::MetricsRegistry reg;
  reg.counter("analyzer.packets").inc(trace.packets.size());
  reg.counter("analyzer.connections").inc(table.flows.size());
  auto& flow_down = reg.histogram(
      "analyzer.flow_down_bytes",
      {64.0 * 1024, 1024.0 * 1024, 10.0 * 1024 * 1024, 100.0 * 1024 * 1024});
  for (const auto& f : table.flows) {
    reg.counter("analyzer.down_payload_bytes").inc(f.down_payload_bytes);
    reg.counter("analyzer.up_payload_bytes").inc(f.up_payload_bytes);
    reg.counter("analyzer.retransmitted_bytes").inc(f.retransmitted_bytes);
    flow_down.observe(static_cast<double>(f.down_payload_bytes));
  }
  reg.counter("analyzer.zero_window_episodes")
      .inc(analysis::count_zero_window_episodes(trace));
  std::ofstream out{path};
  if (!out) return false;
  out << "{\"flows\":" << analysis::to_json(table)
      << ",\"metrics\":" << reg.snapshot().to_json() << "}\n";
  return true;
}

/// --trace-out: rebuild a span timeline from the offline analysis. The live
/// path emits these spans as the simulation runs; here the flow table and
/// the ON/OFF analysis recover the same episodes from packet times alone.
bool write_chrome_trace(const std::string& path, const vstream::analysis::FlowTable& table,
                        const vstream::analysis::OnOffAnalysis& analysis) {
  using namespace vstream;
  obs::ChromeTraceWriter writer;
  std::uint64_t next_span = 1;
  const auto add_span = [&](const char* category, std::string name, double begin_s, double end_s,
                            std::uint64_t id, std::string detail) {
    obs::SpanRecord span;
    span.t_begin_s = begin_s;
    span.t_end_s = end_s;
    span.span_id = next_span++;
    span.id = id;
    span.category = category;
    span.name = std::move(name);
    span.detail = std::move(detail);
    writer.add(obs::TraceEvent{std::move(span)});
  };

  if (analysis.buffering_end_s > analysis.first_packet_s) {
    add_span("player", "buffering", analysis.first_packet_s, analysis.buffering_end_s, 0,
             std::to_string(analysis.buffering_bytes) + " bytes");
  }
  for (const auto& flow : table.flows) {
    add_span("tcp", "connection", flow.first_packet_s, flow.last_packet_s, flow.connection_id,
             std::to_string(flow.down_payload_bytes) + " bytes down");
  }
  for (const auto& on : analysis.on_periods) {
    // Pre-steady periods are part of buffering; render steady ON blocks only.
    if (on.start_s < analysis.buffering_end_s) continue;
    add_span("fetch", "on_block", on.start_s, on.end_s, 0,
             std::to_string(on.bytes) + " bytes");
  }

  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  writer.write(out);
  return true;
}

/// --stream: one pass over the file, O(1) memory. Foreign captures need the
/// same direction heuristic as the batch path, but the decision (which peer
/// sends the bulk of the payload) is only known at EOF — so two builders
/// consume the stream, one as-is and one with directions flipped, and the
/// totals pick the winner when the file ends.
vstream::analysis::SessionReport stream_report(const std::string& path,
                                               const vstream::analysis::ReportOptions& options) {
  using namespace vstream;
  analysis::StreamingReportBuilder as_is{options};
  analysis::StreamingReportBuilder flipped{options};
  std::uint64_t down_payload = 0;
  std::uint64_t up_payload = 0;
  double t_first = 0.0;
  double t_last = 0.0;
  bool any = false;
  capture::for_each_pcap_record(path, [&](const capture::PacketRecord& r) {
    if (!any) t_first = r.t_s;
    any = true;
    t_last = r.t_s;
    (r.direction == net::Direction::kDown ? down_payload : up_payload) += r.payload_bytes;
    as_is.add(r);
    capture::PacketRecord mirrored = r;
    mirrored.direction = net::opposite(r.direction);
    flipped.add(mirrored);
  });
  auto& chosen = up_payload > down_payload ? flipped : as_is;
  chosen.set_label(path);
  chosen.set_duration_s(any ? t_last - t_first : 0.0);
  return chosen.finish();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vstream;
  bool as_json = false;
  bool with_flows = false;
  bool dump = false;
  bool stream = false;
  std::string metrics_path;
  std::string trace_path;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[arg], "--flows") == 0) {
      with_flows = true;
    } else if (std::strcmp(argv[arg], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[arg], "--stream") == 0) {
      stream = true;
    } else if (std::strcmp(argv[arg], "--metrics") == 0 && arg + 1 < argc) {
      metrics_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--trace-out") == 0 && arg + 1 < argc) {
      trace_path = argv[++arg];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[arg]);
      return 2;
    }
    ++arg;
  }
  if (arg >= argc) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--flows] [--dump] [--stream] [--metrics out.json] "
                 "[--trace-out out.json] <file.pcap> [encoding_rate_mbps]\n",
                 argv[0]);
    return 2;
  }
  argv += arg - 1;
  argc -= arg - 1;

  if (stream) {
    if (with_flows || dump || !metrics_path.empty() || !trace_path.empty()) {
      std::fprintf(stderr,
                   "--stream produces the report only; drop --flows/--dump/--metrics/--trace-out\n");
      return 2;
    }
    analysis::ReportOptions options;
    if (argc > 2) options.encoding_bps = std::atof(argv[2]) * 1e6;
    try {
      const auto report = stream_report(argv[1], options);
      if (as_json) {
        std::printf("{\"report\":%s}\n", analysis::to_json(report).c_str());
      } else {
        std::fputs(report.render().c_str(), stdout);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  capture::PacketTrace trace;
  try {
    trace = capture::read_pcap(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  trace.label = argv[1];

  // Heuristic direction fix-up for foreign captures: the video flows in the
  // direction carrying most payload. Our own writer already encodes the
  // direction in the addresses, in which case this is a no-op.
  std::uint64_t down_payload = 0;
  std::uint64_t up_payload = 0;
  for (const auto& p : trace.packets) {
    (p.direction == net::Direction::kDown ? down_payload : up_payload) += p.payload_bytes;
  }
  if (up_payload > down_payload) {
    for (auto& p : trace.packets) p.direction = net::opposite(p.direction);
  }

  analysis::ReportOptions options;
  if (argc > 2) options.encoding_bps = std::atof(argv[2]) * 1e6;
  const auto report = analysis::build_report(trace, options);
  if (!metrics_path.empty()) {
    if (!write_metrics(metrics_path, trace, analysis::build_flow_table(trace))) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!write_chrome_trace(trace_path, analysis::build_flow_table(trace),
                            analysis::analyze_on_off(trace))) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n",
                 trace_path.c_str());
  }
  if (as_json) {
    std::printf("{\"report\":%s", analysis::to_json(report).c_str());
    if (with_flows) {
      std::printf(",\"flows\":%s", analysis::to_json(analysis::build_flow_table(trace)).c_str());
    }
    std::printf("}\n");
    return 0;
  }
  std::fputs(report.render().c_str(), stdout);
  if (dump) {
    std::printf("\nfirst packets (tcpdump style):\n");
    capture::DumpOptions opts;
    opts.max_packets = 40;
    std::ostringstream text;
    capture::dump_trace(trace, text, opts);
    std::fputs(text.str().c_str(), stdout);
  }
  if (with_flows) {
    std::printf("\nper-connection flows:\n%s", analysis::build_flow_table(trace).render().c_str());
  }
  return 0;
}
