// interruption_waste — how much of the downloaded video is thrown away when
// viewers lose interest, measured two ways:
//   1. the Section 6.2 closed forms (Eq 8/9), and
//   2. a packet-level shared-bottleneck topology whose viewers all abandon
//      at the watch fraction beta — the wasted bytes come straight out of
//      the world's own accounting (TopologyResult::wasted_bytes),
// swept over beta and the buffering policy. The two agree, which is the
// point: the analytical model is a faithful summary of the system
// behaviour even when the abandoning sessions share one link.
//
// Usage: interruption_waste [sessions_per_point]
#include <cstdio>
#include <cstdlib>

#include "model/interruption.hpp"
#include "net/profile.hpp"
#include "streaming/topology_builder.hpp"
#include "video/datasets.hpp"

namespace {

using namespace vstream;

double simulated_unused_mb(double beta, std::size_t sessions, std::uint64_t seed) {
  video::VideoMeta meta;
  meta.id = "waste";
  meta.duration_s = 600.0;
  meta.encoding_bps = 1e6;
  meta.container = video::Container::kFlash;
  // One world, every viewer abandoning at beta: the sessions contend for a
  // shared link provisioned well above the aggregate (waste physics, not
  // congestion, is under study here), and each draws its own encoding rate
  // from its private stream exactly as the old per-session loop did.
  const auto result =
      streaming::TopologyBuilder{}
          .service(streaming::Service::kYouTube)
          .container(video::Container::kFlash)
          .application(streaming::Application::kInternetExplorer)
          .vantage(net::Vantage::kResearch)
          .video(meta)
          .watch_fraction(beta)
          .sessions(sessions)
          .workload(streaming::WorkloadBuilder{}
                        .immediate()
                        .customize([](std::size_t, sim::Rng& rng, streaming::SessionConfig& cfg) {
                          cfg.video.encoding_bps = rng.uniform(0.6e6, 1.4e6);
                        })
                        .build())
          .bottleneck_rate_bps(400e6)
          .horizon_s(610.0)  // reaches the latest interruption (beta ~ 1)
          .seed(seed)
          .run();
  return static_cast<double>(result.wasted_bytes) / static_cast<double>(sessions) / 1048576.0;
}

double model_unused_mb(double beta) {
  model::InterruptionParams p;
  p.encoding_bps = 1e6;  // population mean
  p.duration_s = 600.0;
  p.buffered_playback_s = 40.0;
  p.accumulation_ratio = 1.25;
  p.beta = beta;
  return model::unused_bytes(p) / 1048576.0;
}

}  // namespace

int main(int argc, char** argv) {
  // 40 viewers per point pins the per-session encoding draws close to the
  // population mean the closed forms use — one shared world per point makes
  // that population cheap (a few seconds for the whole sweep).
  const std::size_t sessions = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;

  std::printf("== unused bytes per session: model (Eq 8) vs packet-level simulation ==\n");
  std::printf("YouTube Flash, 600 s videos around 1 Mbps, Research network\n\n");
  std::printf("  %6s %16s %18s\n", "beta", "model [MB]", "simulated [MB]");
  for (const double beta : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    std::printf("  %6.1f %16.2f %18.2f\n", beta, model_unused_mb(beta),
                simulated_unused_mb(beta, sessions, 7000));
  }

  std::printf("\n== Eq (7): which videos are fully downloaded before the viewer quits ==\n");
  std::printf("  %8s %8s %20s\n", "B' [s]", "k", "critical L [s]");
  for (const double buffered : {10.0, 40.0, 80.0}) {
    for (const double ratio : {1.05, 1.25, 1.5}) {
      const double critical = model::critical_duration_s(buffered, ratio, 0.2);
      std::printf("  %8.0f %8.2f %20.1f\n", buffered, ratio, critical);
    }
  }
  std::printf("\nreading: with the paper's Flash parameters (B'=40 s, k=1.25) any video\n"
              "shorter than 53.3 s is wholly on disk before a beta=0.2 viewer walks away.\n");

  std::printf("\n== Eq (9): aggregate wasted bandwidth vs buffering policy ==\n");
  std::printf("(lambda = 1/s, Finamore viewing pattern: 60%% of views end before 20%%)\n\n");
  std::printf("  %8s %8s %14s %10s\n", "B' [s]", "k", "wasted [Mbps]", "waste %");
  for (const double buffered : {10.0, 40.0, 80.0}) {
    for (const double ratio : {1.05, 1.25}) {
      model::WasteMonteCarloConfig cfg;
      cfg.lambda_per_s = 1.0;
      cfg.draws = 50000;
      cfg.buffered_playback_s = buffered;
      cfg.accumulation_ratio = ratio;
      cfg.draw_encoding_bps = [](sim::Rng& r) { return r.uniform(0.2e6, 1.5e6); };
      cfg.draw_duration_s = [](sim::Rng& r) {
        return std::clamp(r.lognormal(std::log(210.0), 0.8), 30.0, 3600.0);
      };
      cfg.draw_beta = [](sim::Rng& r) {
        return r.bernoulli(0.6) ? r.uniform(0.01, 0.2) : r.uniform(0.2, 0.99);
      };
      const auto est = model::estimate_wasted_bandwidth(cfg);
      std::printf("  %8.0f %8.2f %14.2f %9.1f%%\n", buffered, ratio, est.wasted_bps / 1e6,
                  est.waste_fraction * 100.0);
    }
  }
  return 0;
}
