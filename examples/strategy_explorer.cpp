// strategy_explorer — run any (service, container, application, network)
// combination from the paper's Table 1 and analyse the traffic like the
// paper did; optionally export the capture as .pcap and .csv.
//
// Usage:
//   strategy_explorer [service] [container] [application] [network]
//                     [duration_s] [rate_mbps] [pcap_path]
//   strategy_explorer netflix silverlight android academic
//   strategy_explorer youtube html5 chrome research 600 1.2 /tmp/chrome.pcap
//
// Every argument is optional; defaults reproduce the quickstart Flash run.
//
// Sweep mode fans N seeds of one combination across cores (worker count
// from VSTREAM_JOBS, default hardware concurrency, 1 = serial):
//   strategy_explorer sweep 16 [service] [container] [application] [network]
//
// --trace-out FILE (single-run mode) attaches a live Chrome-trace sink to
// the session: fetch/player/TCP/link spans land in FILE, ready for
// https://ui.perfetto.dev. Tracing is digest-neutral — the session's
// results are identical with or without it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/ack_clock.hpp"
#include "analysis/flows.hpp"
#include "analysis/onoff.hpp"
#include "analysis/strategy.hpp"
#include "capture/csv.hpp"
#include "capture/pcap.hpp"
#include "obs/chrome_trace.hpp"
#include "runner/parallel_sweep.hpp"
#include "streaming/session_builder.hpp"
#include "video/datasets.hpp"

namespace {

using namespace vstream;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [youtube|netflix] [flash|flashhd|html5|silverlight]\n"
               "          [ie|firefox|chrome|ios|android] [research|residence|academic|home]\n"
               "          [duration_s] [rate_mbps] [pcap_path]\n",
               argv0);
  std::exit(2);
}

streaming::Service parse_service(const std::string& s, const char* argv0) {
  if (s == "youtube") return streaming::Service::kYouTube;
  if (s == "netflix") return streaming::Service::kNetflix;
  usage(argv0);
}

video::Container parse_container(const std::string& s, const char* argv0) {
  if (s == "flash") return video::Container::kFlash;
  if (s == "flashhd") return video::Container::kFlashHd;
  if (s == "html5") return video::Container::kHtml5;
  if (s == "silverlight") return video::Container::kSilverlight;
  usage(argv0);
}

streaming::Application parse_application(const std::string& s, const char* argv0) {
  if (s == "ie") return streaming::Application::kInternetExplorer;
  if (s == "firefox") return streaming::Application::kFirefox;
  if (s == "chrome") return streaming::Application::kChrome;
  if (s == "ios") return streaming::Application::kIosNative;
  if (s == "android") return streaming::Application::kAndroidNative;
  usage(argv0);
}

net::Vantage parse_vantage(const std::string& s, const char* argv0) {
  if (s == "research") return net::Vantage::kResearch;
  if (s == "residence") return net::Vantage::kResidence;
  if (s == "academic") return net::Vantage::kAcademic;
  if (s == "home") return net::Vantage::kHome;
  usage(argv0);
}

/// Sweep mode: N seeds of one combination, fanned across workers. Every
/// session is an independent world, so the per-seed rows are identical for
/// any VSTREAM_JOBS value — only the wall time changes.
int run_sweep(std::size_t count, const streaming::SessionConfig& base) {
  std::vector<streaming::SessionConfig> configs(count, base);
  for (std::size_t i = 0; i < count; ++i) configs[i].seed = 1000 + i;

  const runner::ParallelSweep pool;
  const auto results = pool.run_sessions(configs);

  std::printf("sweep: %zu sessions of %s across %zu workers\n\n", count,
              results.empty() ? "?" : results.front().trace.label.c_str(), pool.jobs());
  std::printf("%6s %10s %12s %14s %s\n", "seed", "down MB", "steady Mbps", "median blk kB",
              "strategy");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto analysis = analysis::analyze_on_off(results[i].trace);
    const auto decision = analysis::classify_strategy(analysis, results[i].trace);
    std::printf("%6llu %10.2f %12.2f %14.0f %s\n",
                static_cast<unsigned long long>(configs[i].seed),
                results[i].bytes_downloaded / 1048576.0,
                analysis.has_steady_state() ? analysis.steady_rate_bps / 1e6 : 0.0,
                analysis.has_steady_state() ? analysis.median_block_bytes() / 1024.0 : 0.0,
                analysis::to_string(decision.strategy).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* argv0 = argv[0];
  // `--trace-out FILE` may lead the argument list; everything after shifts.
  std::string trace_path;
  if (argc > 2 && std::strcmp(argv[1], "--trace-out") == 0) {
    trace_path = argv[2];
    argc -= 2;
    argv += 2;
  }
  // `strategy_explorer sweep N [combo...]` shifts the combo args by two.
  std::size_t sweep_count = 0;
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) {
    sweep_count = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
    if (sweep_count == 0) usage(argv0);
    argc -= 2;
    argv += 2;
  }

  const auto service = argc > 1 ? parse_service(argv[1], argv0) : streaming::Service::kYouTube;
  const auto container = argc > 2 ? parse_container(argv[2], argv0) : video::Container::kFlash;
  const auto application =
      argc > 3 ? parse_application(argv[3], argv0) : streaming::Application::kInternetExplorer;
  const auto vantage = argc > 4 ? parse_vantage(argv[4], argv0) : net::Vantage::kResearch;

  video::VideoMeta meta;
  meta.id = "explorer";
  meta.duration_s = argc > 5 ? std::atof(argv[5]) : 600.0;
  meta.encoding_bps = (argc > 6 ? std::atof(argv[6]) : 1.2) * 1e6;
  meta.container = container;
  if (service == streaming::Service::kNetflix) {
    meta.duration_s = std::max(meta.duration_s, 1800.0);
    meta.available_rates_bps = video::netflix_rate_ladder();
    meta.encoding_bps = meta.available_rates_bps.back();
  }

  if (!streaming::combination_supported(service, container, application)) {
    std::fprintf(stderr, "combination not applicable (Table 1 says N/A)\n");
    return 1;
  }
  // The builder re-runs the Table 1 check (and the rest of the validation)
  // in build(); the explicit check above keeps the friendlier message.
  streaming::SessionConfig cfg = streaming::SessionBuilder{}
                                     .service(service)
                                     .container(container)
                                     .application(application)
                                     .vantage(vantage)
                                     .video(meta)
                                     .capture_duration_s(180.0)
                                     .seed(1)
                                     .build();

  if (sweep_count > 0) {
    if (!trace_path.empty()) {
      std::fprintf(stderr, "--trace-out applies to single runs only, not sweep mode\n");
      return 2;
    }
    return run_sweep(sweep_count, cfg);
  }

  // Keep the auxiliary hosts in the capture so the filtered-out traffic can
  // be reported; the analysis below runs on the zero-copy video view.
  cfg.keep_full_trace = true;
  std::unique_ptr<obs::ChromeTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<obs::ChromeTraceSink>(trace_path);
    cfg.trace_sink = trace_sink.get();
  }
  const auto result = streaming::run_session(cfg);
  if (trace_sink) {
    trace_sink->close();
    std::printf("span timeline        : %s (open in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  const auto video = result.video_trace();
  const auto analysis = analysis::analyze_on_off(video);
  const auto decision = analysis::classify_strategy(analysis, video);

  std::printf("session              : %s\n", result.trace.label.c_str());
  std::printf("strategy             : %s ON-OFF (%s)\n",
              analysis::to_string(decision.strategy).c_str(), decision.rationale.c_str());
  std::printf("packets / connections: %zu / %zu\n", video.count(), result.connections);
  std::printf("downloaded           : %.2f MB in %.0f s\n",
              result.bytes_downloaded / 1048576.0, cfg.capture_duration_s);
  std::printf("buffering            : %.2f MB, ends %.2f s\n",
              analysis.buffering_bytes / 1048576.0, analysis.buffering_end_s);
  if (analysis.has_steady_state()) {
    std::printf("steady state         : %.2f Mbps, median block %.0f kB, median OFF %.2f s\n",
                analysis.steady_rate_bps / 1e6, analysis.median_block_bytes() / 1024.0,
                analysis.median_off_s());
    std::printf("accumulation ratio   : %.2f (vs estimated rate %.2f Mbps)\n",
                analysis.accumulation_ratio(result.encoding_bps_estimated),
                result.encoding_bps_estimated / 1e6);
  }
  std::printf("retransmissions      : %.2f%% of down bytes\n",
              video.retransmission_fraction() * 100.0);
  std::printf("zero-window episodes : %zu\n", analysis::count_zero_window_episodes(video));
  if (const auto rtt = analysis::estimate_handshake_rtt(video)) {
    std::printf("handshake RTT        : %.1f ms\n", *rtt * 1000.0);
  }
  std::printf("player               : started %.2f s, watched %.1f s, %u stalls\n",
              result.player.start_time_s, result.player.watched_s, result.player.stall_count);
  std::printf("auxiliary traffic    : %.2f MB over %zu extra connections (filtered out above)\n",
              (result.trace.down_payload_bytes() - video.down_payload_bytes()) / 1048576.0,
              result.trace.connection_count() - video.connection_count());

  if (result.connections > 3) {
    const auto flows = analysis::build_flow_table(video);
    std::printf("\nper-connection video flows (first 12):\n");
    auto text = flows.render();
    std::size_t lines = 0;
    std::size_t pos = 0;
    while (lines < 13 && pos != std::string::npos) {
      pos = text.find('\n', pos + 1);
      ++lines;
    }
    std::printf("%s", text.substr(0, pos == std::string::npos ? text.size() : pos + 1).c_str());
  }

  if (argc > 7) {
    const std::string pcap_path = argv[7];
    const auto video_owned = video.materialize();
    capture::write_pcap(video_owned, pcap_path);
    capture::write_packets_csv(video_owned, pcap_path + ".csv");
    std::printf("capture written      : %s (+.csv)\n", pcap_path.c_str());
    // Round-trip sanity: the analysis runs identically on the file.
    const auto reloaded = capture::read_pcap(pcap_path);
    const auto re_analysis = analysis::analyze_on_off(reloaded);
    std::printf("pcap round trip      : %zu packets, %zu cycles (in-memory: %zu)\n",
                reloaded.packets.size(), re_analysis.block_sizes_bytes.size(),
                analysis.block_sizes_bytes.size());
  }
  return 0;
}
