// dataset_census — inspect the synthetic populations behind the
// experiments: the six datasets of Section 4.1, Zipf popularity (Cha et
// al.) and the viewing/abandonment model (Finamore, Gill, Huang) that
// drives the interruption studies.
//
// Usage: dataset_census [videos_per_dataset]
//
// The per-dataset session sampler at the end simulates one session per
// sampled video; those fan out across cores (worker count from
// VSTREAM_JOBS, default hardware concurrency, 1 = serial).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/strategy.hpp"
#include "runner/parallel_sweep.hpp"
#include "stats/descriptive.hpp"
#include "streaming/session_builder.hpp"
#include "video/datasets.hpp"
#include "video/viewing.hpp"

int main(int argc, char** argv) {
  using namespace vstream;
  const std::size_t count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 0;  // 0 = paper size

  std::printf("== datasets (Section 4.1) ==\n\n");
  std::printf("%-9s %7s %12s %12s %12s %12s\n", "dataset", "videos", "rate lo", "rate hi",
              "med dur", "container");
  sim::Rng rng{2011};
  for (const auto id :
       {video::DatasetId::kYouFlash, video::DatasetId::kYouHd, video::DatasetId::kYouHtml,
        video::DatasetId::kYouMob, video::DatasetId::kNetPc, video::DatasetId::kNetMob}) {
    const auto ds = video::make_dataset(id, rng, count);
    std::vector<double> rates;
    std::vector<double> durations;
    for (const auto& v : ds.videos) {
      rates.push_back(v.encoding_mbps());
      durations.push_back(v.duration_s);
    }
    std::printf("%-9s %7zu %10.2f M %10.2f M %10.0f s %12s\n",
                video::to_string(id).c_str(), ds.size(), stats::min(rates), stats::max(rates),
                stats::median(durations), video::to_string(ds.videos[0].container).c_str());
  }
  std::printf("\npaper: YouFlash 5000 @ 0.2-1.5 Mbps, YouHD 2000 @ 0.2-4.8 Mbps,\n"
              "YouHtml 3000 @ 0.2-2.5 Mbps, NetPC 200, NetMob 50 (long titles).\n");

  std::printf("\n== popularity (Zipf, Cha et al.) ==\n\n");
  const video::ZipfSampler zipf{10000, 1.0};
  double head10 = 0.0;
  double head100 = 0.0;
  for (std::size_t r = 0; r < 100; ++r) {
    if (r < 10) head10 += zipf.probability(r);
    head100 += zipf.probability(r);
  }
  std::printf("catalogue of 10000 titles, exponent 1.0:\n");
  std::printf("  top 10 titles draw %.1f%% of views; top 100 draw %.1f%%\n", head10 * 100.0,
              head100 * 100.0);

  std::printf("\n== viewing behaviour (Finamore / Gill / Huang) ==\n\n");
  const video::ViewingModel viewing;
  sim::Rng vr{7};
  std::printf("%12s %18s %14s %14s\n", "duration", "P(early quit)", "mean beta", "P(beta<0.2)");
  for (const double duration : {60.0, 210.0, 600.0, 1800.0}) {
    double sum = 0.0;
    int early = 0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
      const double beta = viewing.draw_watch_fraction(vr, duration);
      sum += beta;
      if (beta < 0.2) ++early;
    }
    std::printf("%10.0f s %17.1f%% %14.2f %13.1f%%\n", duration,
                viewing.early_quit_probability(duration) * 100.0, sum / kDraws,
                100.0 * early / kDraws);
  }
  std::printf("\npaper's citations: 60%% of videos watched < 20%% of their duration\n"
              "(Finamore); longer videos watched for smaller fractions (Huang).\n");

  std::printf("\n== simulated session sample (packet level, parallel) ==\n\n");
  // One short session per sampled video, every dataset in one batch. Each
  // session is an independent world keyed by a deterministic seed, so the
  // table is identical for any VSTREAM_JOBS value.
  constexpr std::size_t kPerDataset = 3;
  const std::vector<video::DatasetId> ids{video::DatasetId::kYouFlash, video::DatasetId::kYouHd,
                                          video::DatasetId::kYouHtml};
  std::vector<streaming::SessionConfig> configs;
  sim::Rng sample_rng{42};
  for (const auto id : ids) {
    const auto ds = video::make_dataset(id, sample_rng, 50);
    for (std::size_t i = 0; i < kPerDataset; ++i) {
      const auto& meta = ds.videos[i * 7];  // spread the picks across the catalogue
      // The census only reads aggregate outputs, so skip packet storage and
      // let the streaming pipeline build the report during capture.
      configs.push_back(streaming::SessionBuilder{}
                            .vantage(net::Vantage::kResearch)
                            .video(meta)
                            .container(meta.container)
                            .capture_duration_s(20.0)
                            .seed(100 * static_cast<std::uint64_t>(id) + i)
                            .store_trace(false)
                            .streaming_report(true)
                            .build());
    }
  }
  const runner::ParallelSweep pool;
  const auto sessions = pool.run_sessions(configs);
  std::printf("%zu sessions across %zu workers\n", sessions.size(), pool.jobs());
  std::printf("%-9s %10s %12s %12s  %s\n", "dataset", "down MB", "est. Mbps", "connections",
              "strategy (first)");
  for (std::size_t d = 0; d < ids.size(); ++d) {
    double mb = 0.0;
    double mbps = 0.0;
    std::size_t connections = 0;
    for (std::size_t i = 0; i < kPerDataset; ++i) {
      const auto& s = sessions[d * kPerDataset + i];
      mb += s.bytes_downloaded / 1048576.0;
      mbps += s.encoding_bps_estimated / 1e6;
      connections += s.connections;
    }
    const auto& first = sessions[d * kPerDataset];
    std::printf("%-9s %10.2f %12.2f %12.1f  %s\n", video::to_string(ids[d]).c_str(),
                mb / kPerDataset, mbps / kPerDataset,
                static_cast<double>(connections) / kPerDataset,
                first.report ? analysis::to_string(first.report->strategy).c_str() : "-");
  }
  return 0;
}
