#include "runner/session_sweep.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "check/digest.hpp"
#include "sim/arena.hpp"
#include "streaming/scenarios.hpp"

namespace vstream::runner {

namespace {

/// Round-tripping double formatter for the shard-out payload: %.17g is the
/// shortest printf precision guaranteed to reproduce the exact binary64.
void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_u64(std::string& out, const char* key, std::uint64_t value) {
  out += ",\"";
  out += key;
  out += "\":" + std::to_string(value);
}

void append_f64(std::string& out, const char* key, double value) {
  out += ",\"";
  out += key;
  out += "\":";
  append_double(out, value);
}

/// Locate `"key":` in `text` and return the offset just past the colon.
std::size_t value_offset(const std::string& text, const std::string& key, const std::string& path) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) {
    throw std::runtime_error{"shard payload " + path + " is missing field \"" + key + "\""};
  }
  return at + needle.size();
}

std::uint64_t parse_u64(const std::string& text, const std::string& key, const std::string& path) {
  const std::size_t at = value_offset(text, key, path);
  std::uint64_t value = 0;
  if (std::sscanf(text.c_str() + at, "%llu", reinterpret_cast<unsigned long long*>(&value)) != 1) {
    throw std::runtime_error{"shard payload " + path + ": field \"" + key + "\" is not an integer"};
  }
  return value;
}

double parse_f64(const std::string& text, const std::string& key, const std::string& path) {
  const std::size_t at = value_offset(text, key, path);
  double value = 0.0;
  if (std::sscanf(text.c_str() + at, "%lf", &value) != 1) {
    throw std::runtime_error{"shard payload " + path + ": field \"" + key + "\" is not a number"};
  }
  return value;
}

/// The digest travels as a hex string — a JSON number would silently lose
/// bits above 2^53 in any double-based reader touching the payload.
std::uint64_t parse_hex(const std::string& text, const std::string& key, const std::string& path) {
  std::size_t at = value_offset(text, key, path);
  if (at >= text.size() || text[at] != '"') {
    throw std::runtime_error{"shard payload " + path + ": field \"" + key + "\" is not a string"};
  }
  std::uint64_t value = 0;
  if (std::sscanf(text.c_str() + at + 1, "%llx", reinterpret_cast<unsigned long long*>(&value)) !=
      1) {
    throw std::runtime_error{"shard payload " + path + ": field \"" + key + "\" is not hex"};
  }
  return value;
}

}  // namespace

void SweepDigest::add(std::size_t index, std::uint64_t digest_value, std::uint64_t words_mixed) {
  check::StateDigest word;
  word.mix(static_cast<std::uint64_t>(index));
  word.mix(digest_value);
  word.mix(words_mixed);
  combined ^= word.value();
  ++sessions;
}

void SweepAccumulator::add(std::size_t index, const streaming::SessionConfig& config,
                           const streaming::SessionResult& result, std::uint64_t digest_value,
                           std::uint64_t words_mixed) {
  ++sessions;
  bytes_downloaded += result.bytes_downloaded;
  sim_events += result.sim_events;
  connections += result.connections;
  rebuffer_count += result.resilience.rebuffer_count;
  fetch_retries += result.resilience.fetch_retries;
  if (result.interrupted_at_s > 0.0) ++interrupted_sessions;
  max_events_pending = std::max(max_events_pending, result.sim_max_events_pending);
  if (config.capture_duration_s > 0.0) {
    download_rate_bps_sum +=
        8.0 * static_cast<double>(result.bytes_downloaded) / config.capture_duration_s;
  }
  encoding_bps_estimated_sum += result.encoding_bps_estimated;
  stall_time_s_sum += result.player.stall_time_s;
  digest.add(index, digest_value, words_mixed);
}

void SweepAccumulator::merge(const SweepAccumulator& other) {
  sessions += other.sessions;
  bytes_downloaded += other.bytes_downloaded;
  sim_events += other.sim_events;
  connections += other.connections;
  rebuffer_count += other.rebuffer_count;
  fetch_retries += other.fetch_retries;
  interrupted_sessions += other.interrupted_sessions;
  max_events_pending = std::max(max_events_pending, other.max_events_pending);
  download_rate_bps_sum += other.download_rate_bps_sum;
  encoding_bps_estimated_sum += other.encoding_bps_estimated_sum;
  stall_time_s_sum += other.stall_time_s_sum;
  digest.merge(other.digest);
}

std::string SweepAccumulator::to_json(const std::string& name, std::size_t shard,
                                      std::size_t shards, std::size_t first,
                                      std::size_t count) const {
  std::string out;
  out += "{\"name\":\"" + name + "\"";
  append_u64(out, "shard", shard);
  append_u64(out, "shards", shards);
  append_u64(out, "first", first);
  append_u64(out, "count", count);
  append_u64(out, "sessions", sessions);
  append_u64(out, "bytes_downloaded", bytes_downloaded);
  append_u64(out, "sim_events", sim_events);
  append_u64(out, "connections", connections);
  append_u64(out, "rebuffer_count", rebuffer_count);
  append_u64(out, "fetch_retries", fetch_retries);
  append_u64(out, "interrupted_sessions", interrupted_sessions);
  append_u64(out, "max_events_pending", max_events_pending);
  append_f64(out, "download_rate_bps_sum", download_rate_bps_sum);
  append_f64(out, "encoding_bps_estimated_sum", encoding_bps_estimated_sum);
  append_f64(out, "stall_time_s_sum", stall_time_s_sum);
  append_f64(out, "mean_download_rate_bps", mean_download_rate_bps());
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(digest.combined));
  out += ",\"digest\":\"";
  out += hex;
  out += "\"";
  append_u64(out, "digest_sessions", digest.sessions);
  out += "}";
  return out;
}

SweepAccumulator SweepAccumulator::from_json_file(const std::string& path, std::size_t& shard,
                                                  std::size_t& shards, std::size_t& first,
                                                  std::size_t& count) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open shard payload " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  shard = parse_u64(text, "shard", path);
  shards = parse_u64(text, "shards", path);
  first = parse_u64(text, "first", path);
  count = parse_u64(text, "count", path);

  SweepAccumulator acc;
  acc.sessions = parse_u64(text, "sessions", path);
  acc.bytes_downloaded = parse_u64(text, "bytes_downloaded", path);
  acc.sim_events = parse_u64(text, "sim_events", path);
  acc.connections = parse_u64(text, "connections", path);
  acc.rebuffer_count = parse_u64(text, "rebuffer_count", path);
  acc.fetch_retries = parse_u64(text, "fetch_retries", path);
  acc.interrupted_sessions = parse_u64(text, "interrupted_sessions", path);
  acc.max_events_pending = parse_u64(text, "max_events_pending", path);
  acc.download_rate_bps_sum = parse_f64(text, "download_rate_bps_sum", path);
  acc.encoding_bps_estimated_sum = parse_f64(text, "encoding_bps_estimated_sum", path);
  acc.stall_time_s_sum = parse_f64(text, "stall_time_s_sum", path);
  acc.digest.combined = parse_hex(text, "digest", path);
  acc.digest.sessions = parse_u64(text, "digest_sessions", path);
  if (acc.digest.sessions != acc.sessions) {
    throw std::runtime_error{"shard payload " + path + ": digest_sessions != sessions"};
  }
  return acc;
}

SweepAccumulator run_sessions_streamed(
    const ParallelSweep& pool, std::size_t first, std::size_t count,
    const std::function<streaming::SessionConfig(std::size_t)>& make) {
  // One lane per worker: the recycled world arena plus the partial
  // aggregate, padded so two workers' folds never bounce a cache line.
  struct alignas(128) Lane {
    sim::ArenaResource arena;
    SweepAccumulator partial;
  };
  std::vector<Lane> lanes(pool.jobs());
  SweepProfiler* const profiler = pool.profiler();

  pool.for_each_chunk(
      count, 0, [&lanes, &make, first, profiler](std::size_t begin, std::size_t end,
                                                 std::size_t worker) {
        Lane& lane = lanes[worker];
        for (std::size_t i = begin; i < end; ++i) {
          const SweepProfiler::Scope scope{profiler, worker, SweepPhase::kRun};
          lane.arena.reset();
          const std::size_t global = first + i;
          streaming::SessionConfig cfg = make(global);
          check::StateDigest world_digest;
          cfg.digest = &world_digest;
          if (cfg.arena == nullptr) cfg.arena = &lane.arena;
          const streaming::SessionResult result = streaming::run_session(cfg);
          streaming::fold_outcome(world_digest, result);
          lane.partial.add(global, cfg, result, world_digest.value(),
                           world_digest.words_mixed());
        }
      });

  const SweepProfiler::Scope merge_scope{profiler, 0, SweepPhase::kMerge};
  SweepAccumulator total;
  for (const Lane& lane : lanes) total.merge(lane.partial);
  return total;
}

SweepAccumulator run_sessions_streamed(const ParallelSweep& pool,
                                       const std::vector<streaming::SessionConfig>& configs) {
  return run_sessions_streamed(
      pool, 0, configs.size(),
      [&configs](std::size_t i) -> streaming::SessionConfig { return configs[i]; });
}

}  // namespace vstream::runner
