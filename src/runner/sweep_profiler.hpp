// Per-worker wall-clock profiling for sweep runs.
//
// A sweep spends its time in four phases — building configs, running
// session worlds, analyzing captures, and merging results — and at a
// million sessions the difference between a balanced pool and one worker
// dragging the tail is invisible without per-worker numbers. SweepProfiler
// records, per worker, the wall-clock seconds and task counts of each
// phase; the Summary derives busy/idle splits and utilization against the
// sweep's own wall span, and serializes to the BENCH_sweep_profile.json
// shape the capacity planner publishes.
//
// This file (and its .cpp) is the only simulation-adjacent code allowed to
// read the wall clock: everything inside a session world runs on sim-time,
// and tools/vstream_lint.py pins std::chrono usage to exactly this pair of
// files plus the existing SimLoopMonitor waiver. Profiling never touches a
// Simulator, an RNG, or a digest — arming it cannot perturb a run.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/thread_safety.hpp"

namespace vstream::runner {

/// The four phases of a sweep, in pipeline order.
enum class SweepPhase : std::uint8_t { kBuild = 0, kRun, kAnalyze, kMerge };

inline constexpr std::size_t kSweepPhaseCount = 4;

[[nodiscard]] const char* to_string(SweepPhase phase);

class SweepProfiler {
 public:
  /// `workers` is the pool width being profiled (>= 1); worker 0 is the
  /// caller's thread. Construction stamps the profile's wall-clock epoch.
  explicit SweepProfiler(std::size_t workers);

  SweepProfiler(const SweepProfiler&) = delete;
  SweepProfiler& operator=(const SweepProfiler&) = delete;

  /// RAII phase timer: measures from construction to destruction and adds
  /// the elapsed wall seconds (plus one task) to (worker, phase). A Scope
  /// on a null profiler is inert, so call sites don't need branches.
  class Scope {
   public:
    Scope(SweepProfiler* profiler, std::size_t worker, SweepPhase phase);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SweepProfiler* profiler_;
    std::size_t worker_;
    SweepPhase phase_;
    double begin_s_;
  };

  /// Add `seconds` of `phase` work (and `tasks` completions) to `worker`.
  /// Safe to call concurrently for *distinct* workers — partition, not
  /// locks: each worker owns its cache-line-padded cell outright, which is
  /// outside clang's capability model, hence the explicit escape hatch.
  /// The partition is verified dynamically by the CI tsan job (DESIGN.md
  /// §12 records the policy: lock-based state is annotated statically,
  /// partition-based state is exempted explicitly and TSan-verified).
  void record(std::size_t worker, SweepPhase phase, double seconds,
              std::size_t tasks = 1) VSTREAM_NO_THREAD_SAFETY_ANALYSIS;

  /// Seconds since this profiler was constructed (wall clock).
  [[nodiscard]] double elapsed_s() const;

  [[nodiscard]] std::size_t workers() const { return cells_.size(); }

  struct WorkerStats {
    std::array<double, kSweepPhaseCount> phase_s{};
    std::array<std::uint64_t, kSweepPhaseCount> phase_tasks{};
    /// Longest single record() per phase — for Scope-timed work, the worst
    /// single task. Averages hide a straggler session behind a balanced
    /// mean; the max is what tail imbalance actually looks like.
    std::array<double, kSweepPhaseCount> phase_max_s{};

    [[nodiscard]] double busy_s() const;
    [[nodiscard]] std::uint64_t tasks() const;
    /// Worst single task across all phases (straggler visibility).
    [[nodiscard]] double max_task_s() const;
  };

  struct Summary {
    std::size_t workers{0};
    double wall_s{0.0};
    std::vector<WorkerStats> per_worker;

    [[nodiscard]] double busy_s() const;
    [[nodiscard]] std::uint64_t tasks() const;
    /// Idle = workers x wall span minus busy; the tail a slow worker leaves.
    [[nodiscard]] double idle_s() const;
    /// busy / (workers x wall), in [0, 1]. Zero when the span is empty.
    [[nodiscard]] double utilization() const;
    /// Worst single task across every worker and phase — the sweep's
    /// straggler bound (a pool cannot finish faster than its longest task).
    [[nodiscard]] double max_task_s() const;

    /// Serialize as a JSON object (the BENCH_sweep_profile.json payload).
    [[nodiscard]] std::string to_json(const std::string& name) const;
  };

  /// Snapshot the profile against the current wall span. Call after the
  /// pool has quiesced (joined); not synchronized with in-flight Scopes —
  /// the thread join is the happens-before edge that publishes every cell.
  [[nodiscard]] Summary summary() const;

  /// Write `summary().to_json(name)` to `path` (overwrites).
  void write_json(const std::string& path, const std::string& name) const;

 private:
  // One cache line per worker so concurrent record() calls never bounce a
  // line between cores; 64 is the common x86/ARM line size and the padding
  // is only a correctness-of-performance concern, never of data.
  struct alignas(64) Cell {
    std::array<double, kSweepPhaseCount> seconds{};
    std::array<std::uint64_t, kSweepPhaseCount> tasks{};
    std::array<double, kSweepPhaseCount> max_s{};
  };

  [[nodiscard]] double now_s() const;

  std::vector<Cell> cells_;
  double epoch_s_{0.0};
};

}  // namespace vstream::runner
