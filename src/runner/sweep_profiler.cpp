// This file holds the wall-clock RULE_EXEMPT_PREFIXES entry in
// tools/vstream_lint.py: the profiler measures the harness around session
// worlds, never the worlds themselves, and the profiler-clock rule bans it
// from ever sleeping on the clock it reads.
#include "runner/sweep_profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace vstream::runner {

namespace {

double steady_now_s() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

void append_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

}  // namespace

const char* to_string(SweepPhase phase) {
  switch (phase) {
    case SweepPhase::kBuild:
      return "build";
    case SweepPhase::kRun:
      return "run";
    case SweepPhase::kAnalyze:
      return "analyze";
    case SweepPhase::kMerge:
      return "merge";
  }
  return "unknown";
}

SweepProfiler::SweepProfiler(std::size_t workers)
    : cells_(workers > 0 ? workers : 1), epoch_s_{steady_now_s()} {}

SweepProfiler::Scope::Scope(SweepProfiler* profiler, std::size_t worker, SweepPhase phase)
    : profiler_{profiler}, worker_{worker}, phase_{phase}, begin_s_{0.0} {
  if (profiler_ != nullptr) begin_s_ = profiler_->now_s();
}

SweepProfiler::Scope::~Scope() {
  if (profiler_ != nullptr) {
    profiler_->record(worker_, phase_, profiler_->now_s() - begin_s_);
  }
}

void SweepProfiler::record(std::size_t worker, SweepPhase phase, double seconds,
                           std::size_t tasks) {
  if (worker >= cells_.size()) {
    throw std::out_of_range{"SweepProfiler::record: worker index out of range"};
  }
  Cell& cell = cells_[worker];
  const auto p = static_cast<std::size_t>(phase);
  cell.seconds[p] += seconds;
  cell.tasks[p] += tasks;
  // Each record() is one timed batch (Scope always records exactly one
  // task), so its duration is the single-task sample the tail max tracks.
  if (seconds > cell.max_s[p]) cell.max_s[p] = seconds;
}

double SweepProfiler::now_s() const { return steady_now_s(); }

double SweepProfiler::elapsed_s() const { return now_s() - epoch_s_; }

double SweepProfiler::WorkerStats::busy_s() const {
  double total = 0.0;
  for (const double s : phase_s) total += s;
  return total;
}

std::uint64_t SweepProfiler::WorkerStats::tasks() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : phase_tasks) total += n;
  return total;
}

double SweepProfiler::WorkerStats::max_task_s() const {
  double worst = 0.0;
  for (const double s : phase_max_s) worst = std::max(worst, s);
  return worst;
}

double SweepProfiler::Summary::max_task_s() const {
  double worst = 0.0;
  for (const auto& w : per_worker) worst = std::max(worst, w.max_task_s());
  return worst;
}

double SweepProfiler::Summary::busy_s() const {
  double total = 0.0;
  for (const auto& w : per_worker) total += w.busy_s();
  return total;
}

std::uint64_t SweepProfiler::Summary::tasks() const {
  std::uint64_t total = 0;
  for (const auto& w : per_worker) total += w.tasks();
  return total;
}

double SweepProfiler::Summary::idle_s() const {
  const double span = wall_s * static_cast<double>(workers);
  const double busy = busy_s();
  return span > busy ? span - busy : 0.0;
}

double SweepProfiler::Summary::utilization() const {
  const double span = wall_s * static_cast<double>(workers);
  if (span <= 0.0) return 0.0;
  const double u = busy_s() / span;
  return u < 1.0 ? u : 1.0;
}

std::string SweepProfiler::Summary::to_json(const std::string& name) const {
  std::string out;
  out += "{\"name\":\"" + name + "\"";
  out += ",\"workers\":" + std::to_string(workers);
  out += ",\"wall_s\":";
  append_double(out, wall_s);
  out += ",\"busy_s\":";
  append_double(out, busy_s());
  out += ",\"idle_s\":";
  append_double(out, idle_s());
  out += ",\"utilization\":";
  append_double(out, utilization());
  out += ",\"tasks\":" + std::to_string(tasks());
  out += ",\"max_task_s\":";
  append_double(out, max_task_s());
  out += ",\"per_worker\":[";
  for (std::size_t w = 0; w < per_worker.size(); ++w) {
    const WorkerStats& stats = per_worker[w];
    if (w > 0) out += ",";
    out += "{\"worker\":" + std::to_string(w);
    out += ",\"busy_s\":";
    append_double(out, stats.busy_s());
    out += ",\"tasks\":" + std::to_string(stats.tasks());
    out += ",\"max_task_s\":";
    append_double(out, stats.max_task_s());
    out += ",\"phases\":{";
    for (std::size_t p = 0; p < kSweepPhaseCount; ++p) {
      if (p > 0) out += ",";
      out += "\"";
      out += to_string(static_cast<SweepPhase>(p));
      out += "\":{\"seconds\":";
      append_double(out, stats.phase_s[p]);
      out += ",\"tasks\":" + std::to_string(stats.phase_tasks[p]);
      out += ",\"max_s\":";
      append_double(out, stats.phase_max_s[p]);
      out += "}";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

SweepProfiler::Summary SweepProfiler::summary() const {
  Summary s;
  s.workers = cells_.size();
  s.wall_s = elapsed_s();
  s.per_worker.reserve(cells_.size());
  for (const Cell& cell : cells_) {
    WorkerStats stats;
    stats.phase_s = cell.seconds;
    stats.phase_tasks = cell.tasks;
    stats.phase_max_s = cell.max_s;
    s.per_worker.push_back(stats);
  }
  return s;
}

void SweepProfiler::write_json(const std::string& path, const std::string& name) const {
  std::ofstream out{path, std::ios::trunc};
  if (!out) throw std::runtime_error{"SweepProfiler: cannot open " + path};
  out << summary().to_json(name) << "\n";
}

}  // namespace vstream::runner
