// Multi-core session fan-out: a shared-nothing thread pool for sweeps.
//
// The paper's results are sweep-scale statements — thousands of sessions
// across service × container × application × vantage combos (Table 1, §2) —
// and every session is an independent world: `run_session` builds its own
// `Simulator`, `ObsContext`, RNG tree and TCP fabric from the config's
// seed. `ParallelSweep` exploits exactly that: workers pull session indices
// from a shared counter, run each world in complete isolation (no shared
// mutable state, so no locks on any simulation path), and the results land
// in deterministic submission order regardless of which worker finished
// first or in what order. Merging (telemetry, metrics snapshots) stays
// serial on the caller's thread.
//
// Worker count: explicit argument, else the VSTREAM_JOBS environment
// variable, else the hardware concurrency; 1 runs inline on the caller's
// thread (bit-identical to the historical serial path, no threads spawned).
//
// This is the only directory in the tree allowed to touch std::thread —
// tools/vstream_lint.py enforces that simulation code stays single-threaded
// per world, which is what keeps twin-run determinism auditable.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

#include "runner/sweep_profiler.hpp"
#include "streaming/session.hpp"

namespace vstream::runner {

/// Resolve the worker count: `requested` if nonzero, else VSTREAM_JOBS,
/// else std::thread::hardware_concurrency (at least 1).
[[nodiscard]] std::size_t job_count(std::size_t requested = 0);

class ParallelSweep {
 public:
  /// `jobs == 0` resolves via job_count() (VSTREAM_JOBS / hardware).
  explicit ParallelSweep(std::size_t jobs = 0);

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Invoke `fn(i)` for every i in [0, count), fanned across the pool's
  /// workers. `fn` must be safe to call concurrently for distinct indices.
  /// Blocks until every index completed; the first exception thrown by any
  /// worker is rethrown here (remaining indices still drain).
  void for_each_index(std::size_t count, const std::function<void(std::size_t)>& fn) const;

  /// Fan `fn(i)` out and collect the results in submission (index) order —
  /// the order is a property of the indices, never of thread scheduling.
  template <typename R, typename Fn>
  [[nodiscard]] std::vector<R> map(std::size_t count, Fn&& fn) const {
    std::vector<R> out(count);
    for_each_index(count, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Run every session config on the pool; results in submission order.
  /// Each worker instantiates one full world (Simulator + ObsContext + RNG)
  /// per session — shared-nothing, so the per-session results, digests and
  /// metrics snapshots are bit-identical to a serial run.
  [[nodiscard]] std::vector<streaming::SessionResult> run_sessions(
      const std::vector<streaming::SessionConfig>& configs) const;

  /// Attach a profiler (or nullptr to detach). While attached, every fn(i)
  /// dispatched by for_each_index is timed as a kRun task on the worker
  /// that executed it. The profiler must be sized for at least jobs()
  /// workers and must outlive every sweep call on this pool. Profiling is
  /// harness-side only: it never touches a session world, so results and
  /// digests are identical with or without it.
  void set_profiler(SweepProfiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] SweepProfiler* profiler() const { return profiler_; }

  /// Index of the pool worker running the current thread: 0 for the
  /// caller's thread (also the serial path), 1..N-1 for spawned workers.
  /// Meaningful inside fn(i) during for_each_index; callers use it to
  /// attribute their own analyze/merge phases to the right worker.
  [[nodiscard]] static std::size_t current_worker();

 private:
  std::size_t jobs_;
  SweepProfiler* profiler_{nullptr};
};

}  // namespace vstream::runner
