// Multi-core session fan-out: a shared-nothing thread pool for sweeps.
//
// The paper's results are sweep-scale statements — thousands of sessions
// across service × container × application × vantage combos (Table 1, §2) —
// and every session is an independent world: `run_session` builds its own
// `Simulator`, `ObsContext`, RNG tree and TCP fabric from the config's
// seed. `ParallelSweep` exploits exactly that: workers pull session indices
// from a shared counter, run each world in complete isolation (no shared
// mutable state, so no locks on any simulation path), and the results land
// in deterministic submission order regardless of which worker finished
// first or in what order. Merging (telemetry, metrics snapshots) stays
// serial on the caller's thread.
//
// Worker count: explicit argument, else the VSTREAM_JOBS environment
// variable, else the hardware concurrency; 1 runs inline on the caller's
// thread (bit-identical to the historical serial path, no threads spawned).
//
// This is the only directory in the tree allowed to touch std::thread —
// tools/vstream_lint.py enforces that simulation code stays single-threaded
// per world, which is what keeps twin-run determinism auditable.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

#include "streaming/session.hpp"

namespace vstream::runner {

/// Resolve the worker count: `requested` if nonzero, else VSTREAM_JOBS,
/// else std::thread::hardware_concurrency (at least 1).
[[nodiscard]] std::size_t job_count(std::size_t requested = 0);

class ParallelSweep {
 public:
  /// `jobs == 0` resolves via job_count() (VSTREAM_JOBS / hardware).
  explicit ParallelSweep(std::size_t jobs = 0);

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Invoke `fn(i)` for every i in [0, count), fanned across the pool's
  /// workers. `fn` must be safe to call concurrently for distinct indices.
  /// Blocks until every index completed; the first exception thrown by any
  /// worker is rethrown here (remaining indices still drain).
  void for_each_index(std::size_t count, const std::function<void(std::size_t)>& fn) const;

  /// Fan `fn(i)` out and collect the results in submission (index) order —
  /// the order is a property of the indices, never of thread scheduling.
  template <typename R, typename Fn>
  [[nodiscard]] std::vector<R> map(std::size_t count, Fn&& fn) const {
    std::vector<R> out(count);
    for_each_index(count, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Run every session config on the pool; results in submission order.
  /// Each worker instantiates one full world (Simulator + ObsContext + RNG)
  /// per session — shared-nothing, so the per-session results, digests and
  /// metrics snapshots are bit-identical to a serial run.
  [[nodiscard]] std::vector<streaming::SessionResult> run_sessions(
      const std::vector<streaming::SessionConfig>& configs) const;

 private:
  std::size_t jobs_;
};

}  // namespace vstream::runner
