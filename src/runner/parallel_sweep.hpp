// Multi-core session fan-out: a shared-nothing thread pool for sweeps.
//
// The paper's results are sweep-scale statements — thousands of sessions
// across service × container × application × vantage combos (Table 1, §2) —
// and every session is an independent world: `run_session` builds its own
// `Simulator`, `ObsContext`, RNG tree and TCP fabric from the config's
// seed. `ParallelSweep` exploits exactly that: workers claim *chunks* of
// session indices from a shared counter (one atomic op per chunk, not per
// index), run each world in complete isolation on a per-worker recycled
// arena (no shared mutable state, no global-allocator contention on any
// simulation path), and stage results in cache-line-padded per-worker
// buffers that are spliced into deterministic submission order at the end —
// the submission-order results vector is written by exactly one thread, so
// no two workers ever share a cache line through it. Merging (telemetry,
// metrics snapshots) stays serial on the caller's thread; for sweeps that
// must not accumulate results at all, see runner/session_sweep.hpp.
//
// Worker count: explicit argument, else the VSTREAM_JOBS environment
// variable, else the hardware concurrency; 1 runs inline on the caller's
// thread (bit-identical to the historical serial path, no threads spawned).
//
// This is the only directory in the tree allowed to touch std::thread —
// tools/vstream_lint.py enforces that simulation code stays single-threaded
// per world, which is what keeps twin-run determinism auditable.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "runner/sweep_profiler.hpp"
#include "sim/arena.hpp"
#include "streaming/session.hpp"

namespace vstream::runner {

/// Resolve the worker count: `requested` if nonzero, else VSTREAM_JOBS,
/// else std::thread::hardware_concurrency (at least 1). Garbage, zero or
/// negative VSTREAM_JOBS falls through to the hardware count; absurd values
/// clamp to kMaxJobs so a fat-fingered env var cannot fork-bomb the host.
[[nodiscard]] std::size_t job_count(std::size_t requested = 0);

/// Upper bound on the resolved worker count (env or explicit request).
inline constexpr std::size_t kMaxJobs = 512;

class ParallelSweep {
 public:
  /// `jobs == 0` resolves via job_count() (VSTREAM_JOBS / hardware).
  explicit ParallelSweep(std::size_t jobs = 0);

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Invoke `fn(i)` for every i in [0, count), fanned across the pool's
  /// workers. `fn` must be safe to call concurrently for distinct indices.
  /// Blocks until every index completed; the first exception thrown by any
  /// worker is rethrown here (remaining indices still drain, and further
  /// errors are counted — see errors_dropped()).
  void for_each_index(std::size_t count, const std::function<void(std::size_t)>& fn) const;

  /// Chunk-granular fan-out: workers claim contiguous index ranges
  /// [begin, end) off the shared counter and invoke `fn(begin, end, worker)`
  /// once per range — one atomic claim and one std::function dispatch per
  /// chunk instead of per index, with `worker` the executing pool worker for
  /// per-worker staging. `chunk == 0` picks a size automatically (~16 claims
  /// per worker, capped so stragglers still steal). A chunk callback that
  /// throws abandons the rest of *that chunk only*; the sweep still drains
  /// every other chunk and rethrows the first error at the end.
  void for_each_chunk(std::size_t count, std::size_t chunk,
                      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) const;

  /// Fan `fn(i)` out and collect the results in submission (index) order —
  /// the order is a property of the indices, never of thread scheduling.
  /// Results are constructed in place in per-worker staging (R need not be
  /// default-constructible, and no element is written twice) and spliced
  /// into the output vector serially at the end.
  template <typename R, typename Fn>
  [[nodiscard]] std::vector<R> map(std::size_t count, Fn&& fn) const {
    struct alignas(kResultCacheLine) Stage {
      std::vector<std::pair<std::size_t, R>> items;
    };
    std::vector<Stage> stages(jobs_);
    for_each_chunk(count, 0,
                   [&stages, &fn](std::size_t begin, std::size_t end, std::size_t worker) {
                     auto& items = stages[worker].items;
                     for (std::size_t i = begin; i < end; ++i) items.emplace_back(i, fn(i));
                   });
    return splice_stages<R>(count, stages);
  }

  /// Run every session config on the pool; results in submission order.
  /// Each worker instantiates one full world (Simulator + ObsContext + RNG)
  /// per session on its own recycled ArenaResource — shared-nothing, so the
  /// per-session results, digests and metrics snapshots are bit-identical
  /// to a serial run (the arena changes memory placement, never behaviour).
  /// A config that already carries an arena keeps it.
  [[nodiscard]] std::vector<streaming::SessionResult> run_sessions(
      const std::vector<streaming::SessionConfig>& configs) const;

  /// Attach a profiler (or nullptr to detach). While attached, every fn(i)
  /// dispatched by for_each_index — and every session run by run_sessions —
  /// is timed as a kRun task on the worker that executed it. The profiler
  /// must be sized for at least jobs() workers and must outlive every sweep
  /// call on this pool. Profiling is harness-side only: it never touches a
  /// session world, so results and digests are identical with or without it.
  void set_profiler(SweepProfiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] SweepProfiler* profiler() const { return profiler_; }

  /// Errors beyond the first swallowed by the previous sweep on this pool
  /// (the first is rethrown with this count appended to its message). Reset
  /// at the start of every sweep; zero on a clean or single-failure sweep.
  [[nodiscard]] std::size_t errors_dropped() const {
    return errors_dropped_.load(std::memory_order_relaxed);
  }

  /// Index of the pool worker running the current thread: 0 for the
  /// caller's thread (also the serial path), 1..N-1 for spawned workers.
  /// Meaningful inside fn(i) during for_each_index; callers use it to
  /// attribute their own analyze/merge phases to the right worker.
  [[nodiscard]] static std::size_t current_worker();

 private:
  // Staging cells are padded to this boundary so two workers' append paths
  // never bounce one line; 64 covers x86/ARM, 128 covers Apple M-series.
  static constexpr std::size_t kResultCacheLine = 128;

  /// Splice per-worker (index, result) staging into one submission-order
  /// vector. Each worker's items are index-ascending by construction
  /// (chunks are claimed off a monotone counter), so this is a k-way merge:
  /// every element moves exactly once, serially, on the caller's thread.
  template <typename R, typename Stages>
  [[nodiscard]] static std::vector<R> splice_stages(std::size_t count, Stages& stages) {
    std::vector<R> out;
    out.reserve(count);
    std::vector<std::size_t> cursor(stages.size(), 0);
    for (std::size_t want = 0; want < count; ++want) {
      for (std::size_t s = 0; s < stages.size(); ++s) {
        auto& items = stages[s].items;
        const std::size_t at = cursor[s];
        if (at < items.size() && items[at].first == want) {
          out.push_back(std::move(items[at].second));
          ++cursor[s];
          break;
        }
      }
    }
    return out;
  }

  std::size_t jobs_;
  SweepProfiler* profiler_{nullptr};
  /// Dropped-error count of the most recent sweep (see errors_dropped()).
  /// Mutable: sweeps are logically const (the pool has no sweep state), but
  /// diagnosability of multi-failure sweeps needs this one counter.
  mutable std::atomic<std::size_t> errors_dropped_{0};
};

}  // namespace vstream::runner
