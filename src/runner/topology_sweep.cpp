#include "runner/topology_sweep.hpp"

#include <algorithm>
#include <vector>

#include "check/digest.hpp"
#include "sim/arena.hpp"

namespace vstream::runner {

void TopologyAccumulator::add(std::size_t index, const streaming::TopologyResult& result,
                              double horizon_s, std::uint64_t digest_value,
                              std::uint64_t words_mixed) {
  ++worlds;
  sessions_started += result.sessions_started;
  sessions_finished += result.sessions_finished;
  sessions_interrupted += result.sessions_interrupted;
  sessions_active_at_end += result.sessions_active_at_end;
  connections += result.connections;
  bytes_downloaded += result.bytes_downloaded;
  wasted_bytes += result.wasted_bytes;
  video_payload_bytes += result.video_payload_bytes;
  cross_traffic_bytes += result.cross_traffic_bytes;
  bottleneck_dropped_queue += result.bottleneck_dropped_queue;
  bottleneck_dropped_loss += result.bottleneck_dropped_loss;
  sim_events += result.sim_events;
  max_events_pending = std::max(max_events_pending, result.sim_max_events_pending);
  aggregate.merge(result.aggregate);
  concurrency.merge(result.concurrency);
  sum_encoding_bps += result.sum_encoding_bps;
  sum_duration_s += result.sum_duration_s;
  sum_goodput_bps += result.sum_goodput_bps;
  goodput_samples += result.goodput_samples;
  horizon_s_sum += horizon_s;
  digest.add(index, digest_value, words_mixed);
}

void TopologyAccumulator::merge(const TopologyAccumulator& other) {
  worlds += other.worlds;
  sessions_started += other.sessions_started;
  sessions_finished += other.sessions_finished;
  sessions_interrupted += other.sessions_interrupted;
  sessions_active_at_end += other.sessions_active_at_end;
  connections += other.connections;
  bytes_downloaded += other.bytes_downloaded;
  wasted_bytes += other.wasted_bytes;
  video_payload_bytes += other.video_payload_bytes;
  cross_traffic_bytes += other.cross_traffic_bytes;
  bottleneck_dropped_queue += other.bottleneck_dropped_queue;
  bottleneck_dropped_loss += other.bottleneck_dropped_loss;
  sim_events += other.sim_events;
  max_events_pending = std::max(max_events_pending, other.max_events_pending);
  aggregate.merge(other.aggregate);
  concurrency.merge(other.concurrency);
  sum_encoding_bps += other.sum_encoding_bps;
  sum_duration_s += other.sum_duration_s;
  sum_goodput_bps += other.sum_goodput_bps;
  goodput_samples += other.goodput_samples;
  horizon_s_sum += other.horizon_s_sum;
  digest.merge(other.digest);
}

TopologyAccumulator run_topologies_streamed(
    const ParallelSweep& pool, std::size_t first, std::size_t count,
    const std::function<streaming::TopologyConfig(std::size_t)>& make) {
  // One lane per worker, as in run_sessions_streamed: a recycled world
  // arena plus the partial aggregate, padded against false sharing.
  struct alignas(128) Lane {
    sim::ArenaResource arena;
    TopologyAccumulator partial;
  };
  std::vector<Lane> lanes(pool.jobs());
  SweepProfiler* const profiler = pool.profiler();

  pool.for_each_chunk(
      count, 0, [&lanes, &make, first, profiler](std::size_t begin, std::size_t end,
                                                 std::size_t worker) {
        Lane& lane = lanes[worker];
        for (std::size_t i = begin; i < end; ++i) {
          const SweepProfiler::Scope scope{profiler, worker, SweepPhase::kRun};
          lane.arena.reset();
          const std::size_t global = first + i;
          streaming::TopologyConfig cfg = make(global);
          check::StateDigest world_digest;
          cfg.digest = &world_digest;
          if (cfg.arena == nullptr) cfg.arena = &lane.arena;
          const streaming::TopologyResult result = streaming::run_topology(cfg);
          streaming::fold_topology_outcome(world_digest, result);
          lane.partial.add(global, result, cfg.horizon_s, world_digest.value(),
                           world_digest.words_mixed());
        }
      });

  const SweepProfiler::Scope merge_scope{profiler, 0, SweepPhase::kMerge};
  TopologyAccumulator total;
  for (const Lane& lane : lanes) total.merge(lane.partial);
  return total;
}

}  // namespace vstream::runner
