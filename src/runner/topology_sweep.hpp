// Streamed multi-world topology sweeps: many shared-bottleneck worlds run
// across the ParallelSweep pool, each folding into a per-worker partial the
// moment it finishes — the topology counterpart of run_sessions_streamed.
//
// A single `run_topology` world is O(arrivals) in memory, so the way to a
// million sessions is sharding: K independent worlds of N sessions each,
// identical in distribution (same template, same arrival law, seeds forked
// per shard). Window statistics pool exactly across shards — WindowStats
// carries count/sum/sum_sq, so the pooled mean and variance of R(t) are
// the same numbers a single giant world's window series would produce, up
// to FP associativity of the final merge.
//
// Determinism matches DESIGN.md §13: every world runs with a sweep-owned
// StateDigest; (index, digest, outcome) words XOR into a SweepDigest that
// is bit-identical for any worker count or contiguous sharding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "runner/parallel_sweep.hpp"
#include "runner/session_sweep.hpp"
#include "streaming/topology.hpp"

namespace vstream::runner {

/// O(1)-memory aggregate of many TopologyResults. Integer counters sum,
/// WindowStats pool (exact cross-shard mean/variance), and the SweepDigest
/// is the partition-independent fingerprint of the whole sweep.
struct TopologyAccumulator {
  std::uint64_t worlds{0};
  std::uint64_t sessions_started{0};
  std::uint64_t sessions_finished{0};
  std::uint64_t sessions_interrupted{0};
  std::uint64_t sessions_active_at_end{0};
  std::uint64_t connections{0};
  std::uint64_t bytes_downloaded{0};
  std::uint64_t wasted_bytes{0};
  std::uint64_t video_payload_bytes{0};
  std::uint64_t cross_traffic_bytes{0};
  std::uint64_t bottleneck_dropped_queue{0};
  std::uint64_t bottleneck_dropped_loss{0};
  std::uint64_t sim_events{0};
  std::size_t max_events_pending{0};  ///< max across worlds, not sum
  stats::WindowStats aggregate;       ///< pooled R(t) windows, all worlds
  stats::WindowStats concurrency;
  double sum_encoding_bps{0.0};
  double sum_duration_s{0.0};
  double sum_goodput_bps{0.0};
  std::uint64_t goodput_samples{0};
  double horizon_s_sum{0.0};  ///< Σ per-world horizons (lambda-hat basis)
  SweepDigest digest;

  /// Fold one finished world. `index` is the world's global submission
  /// index; `horizon_s` its configured horizon (the realized arrival rate
  /// pools as Σstarted / Σhorizon).
  void add(std::size_t index, const streaming::TopologyResult& result, double horizon_s,
           std::uint64_t digest_value, std::uint64_t words_mixed);

  /// Combine another partial (worker lane) into this one.
  void merge(const TopologyAccumulator& other);

  [[nodiscard]] double mean_aggregate_bps() const { return aggregate.mean(); }
  [[nodiscard]] double variance_aggregate() const { return aggregate.variance(); }
  [[nodiscard]] double mean_encoding_bps() const {
    return sessions_started > 0 ? sum_encoding_bps / static_cast<double>(sessions_started) : 0.0;
  }
  [[nodiscard]] double mean_duration_s() const {
    return sessions_started > 0 ? sum_duration_s / static_cast<double>(sessions_started) : 0.0;
  }
  [[nodiscard]] double mean_goodput_bps() const {
    return goodput_samples > 0 ? sum_goodput_bps / static_cast<double>(goodput_samples) : 0.0;
  }
  [[nodiscard]] double realized_arrival_rate_per_s() const {
    return horizon_s_sum > 0.0 ? static_cast<double>(sessions_started) / horizon_s_sum : 0.0;
  }

  /// Pooled measured inputs of Eq. 3/4 — identical in meaning to
  /// TopologyResult::measured_model_params, over the whole sweep.
  [[nodiscard]] model::AggregateParams measured_model_params() const {
    return model::AggregateParams{.lambda_per_s = realized_arrival_rate_per_s(),
                                  .mean_encoding_bps = mean_encoding_bps(),
                                  .mean_duration_s = mean_duration_s(),
                                  .mean_download_rate_bps = mean_goodput_bps()};
  }
};

/// Run `count` generated worlds on `pool`, folding each result as it
/// finishes — O(workers) memory however large the sweep. `make(g)` is
/// called with each global index g in [first, first + count) and returns
/// that world's config. Every world runs with a sweep-owned digest (a
/// digest already on the config is replaced) and a per-worker recycled
/// arena (a config-supplied arena is kept). The merged digest is identical
/// for any worker count and any contiguous sharding of [first, first+count).
[[nodiscard]] TopologyAccumulator run_topologies_streamed(
    const ParallelSweep& pool, std::size_t first, std::size_t count,
    const std::function<streaming::TopologyConfig(std::size_t)>& make);

}  // namespace vstream::runner
