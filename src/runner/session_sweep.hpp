// Streamed session sweeps: results fold into per-worker accumulators as
// each world finishes, so a million-session run holds a few hundred bytes
// of aggregate per worker instead of a million SessionResults.
//
// This extends the PR 4 O(1)-memory pipeline one level up: within a session
// `StreamingReportBuilder` keeps memory constant in packets; across a sweep
// `SweepAccumulator` keeps memory constant in sessions. Each ParallelSweep
// worker owns a cache-line-padded accumulator (and a recycled world arena);
// the partials merge serially on the caller's thread after the pool joins.
//
// Determinism story (DESIGN.md §13): floating-point partial sums depend on
// which worker ran which session, so they are reproducible only up to FP
// associativity. The *digest* is exact: every session mixes
// (index, world digest, outcome) through FNV-1a into one 64-bit word, and
// the sweep combines those words with XOR — a commutative, associative,
// partition-independent fold. Serial, parallel, and process-sharded runs of
// the same config generator therefore produce bit-identical sweep digests,
// which is what `determinism_audit --shards` and the capacity planner's
// digest-checked shard merge enforce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "runner/parallel_sweep.hpp"
#include "streaming/session.hpp"

namespace vstream::runner {

/// Order-independent sweep digest: XOR of per-session FNV-1a words keyed by
/// global session index. Equal iff two runs executed the same session set
/// with identical per-session outcomes — regardless of worker count,
/// scheduling, or process sharding. (XOR would be blind to one session
/// repeated twice; the paired session count catches exactly that.)
struct SweepDigest {
  std::uint64_t combined{0};
  std::uint64_t sessions{0};

  /// Fold one finished session: its global index, its world digest value
  /// and words-mixed count, hashed together into one word.
  void add(std::size_t index, std::uint64_t digest_value, std::uint64_t words_mixed);

  void merge(const SweepDigest& other) {
    combined ^= other.combined;
    sessions += other.sessions;
  }

  friend bool operator==(const SweepDigest&, const SweepDigest&) = default;
};

/// Sweep-level aggregate of session outcomes: everything the capacity
/// planner needs from N sessions, in O(1) memory. Commutative integer
/// counters plus FP sums (see file comment for the FP caveat) and the exact
/// sweep digest.
struct SweepAccumulator {
  std::uint64_t sessions{0};
  std::uint64_t bytes_downloaded{0};
  std::uint64_t sim_events{0};
  std::uint64_t connections{0};
  std::uint64_t rebuffer_count{0};
  std::uint64_t fetch_retries{0};
  std::uint64_t interrupted_sessions{0};
  std::size_t max_events_pending{0};  ///< max across sessions, not sum
  double download_rate_bps_sum{0.0};  ///< 8*bytes / capture_duration per session
  double encoding_bps_estimated_sum{0.0};
  double stall_time_s_sum{0.0};
  SweepDigest digest;

  /// Fold one finished session (called on the worker that ran it; each
  /// worker owns its accumulator outright). `index` is the session's global
  /// submission index — under process sharding, the index in the *full*
  /// sweep, so shard digests merge to the unsharded value.
  void add(std::size_t index, const streaming::SessionConfig& config,
           const streaming::SessionResult& result, std::uint64_t digest_value,
           std::uint64_t words_mixed);

  /// Combine another partial (worker lane or shard file) into this one.
  void merge(const SweepAccumulator& other);

  [[nodiscard]] double mean_download_rate_bps() const {
    return sessions > 0 ? download_rate_bps_sum / static_cast<double>(sessions) : 0.0;
  }
  [[nodiscard]] double mean_encoding_bps() const {
    return sessions > 0 ? encoding_bps_estimated_sum / static_cast<double>(sessions) : 0.0;
  }

  /// Serialize as a JSON object — the capacity planner's shard-out payload.
  /// `shard`/`shards` record the process-sharding coordinates (0/1 for an
  /// unsharded run); `first`/`count` the global index range covered.
  [[nodiscard]] std::string to_json(const std::string& name, std::size_t shard,
                                    std::size_t shards, std::size_t first,
                                    std::size_t count) const;

  /// Parse a shard-out JSON payload produced by to_json (strict on the
  /// fields it owns, tolerant of extras). Returns the parsed accumulator
  /// plus the shard coordinates through the out-params.
  static SweepAccumulator from_json_file(const std::string& path, std::size_t& shard,
                                         std::size_t& shards, std::size_t& first,
                                         std::size_t& count);
};

/// Run `count` generated sessions on `pool`, folding every result into
/// per-worker accumulators the moment it exists — no result vector, no
/// submission-order staging, O(workers) memory however large `count` is.
/// `make(g)` is called with each global index g in [first, first + count)
/// and returns that session's config; configs are never stored. Every
/// session runs with a sweep-owned world digest attached (a digest already
/// on the config is replaced — the per-session fingerprint must be local to
/// the session) and a per-worker recycled arena, exactly like
/// ParallelSweep::run_sessions (a config-supplied arena is kept).
/// The merged aggregate's digest is identical for any worker count and any
/// contiguous sharding of [first, first+count) (see file comment).
[[nodiscard]] SweepAccumulator run_sessions_streamed(
    const ParallelSweep& pool, std::size_t first, std::size_t count,
    const std::function<streaming::SessionConfig(std::size_t)>& make);

/// Convenience overload over a materialized config vector (index base 0).
[[nodiscard]] SweepAccumulator run_sessions_streamed(
    const ParallelSweep& pool, const std::vector<streaming::SessionConfig>& configs);

}  // namespace vstream::runner
