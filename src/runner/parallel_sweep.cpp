// vstream-lint-file: allow(thread): src/runner is the one sanctioned home for threads — shared-nothing fan-out over independent session worlds.
#include "runner/parallel_sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "check/thread_safety.hpp"

namespace vstream::runner {

namespace {

// Which pool worker the current thread is: set by for_each_index before a
// worker starts draining, reset after. Thread-local so nested tools that
// query it off-pool see a stable 0 (the caller's thread is worker 0).
// Allowlisted in tools/vstream_ast_lint.py: harness-side attribution only,
// never read inside a session world.
thread_local std::size_t t_worker_index = 0;

// First-error capture shared by the pool's workers — the one piece of
// lock-protected state in a sweep (everything else is partitioned per
// worker). The clang thread-safety annotations let -Wthread-safety prove
// at compile time that no path touches first_ without holding mutex_.
class ErrorCollector {
 public:
  /// Record `error` if it is the first one seen; later errors are dropped
  /// (the sweep still drains every index, and rethrowing one exception is
  /// all for_each_index promises).
  void capture(std::exception_ptr error) VSTREAM_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (!first_) first_ = std::move(error);
  }

  /// Rethrow the captured error, if any. Called after the pool has joined,
  /// but takes the lock anyway — uncontended at that point, and it keeps
  /// the annotated invariant unconditional instead of "true after join".
  void rethrow_if_any() VSTREAM_EXCLUDES(mutex_) {
    std::exception_ptr error;
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      error = first_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  std::mutex mutex_;
  std::exception_ptr first_ VSTREAM_GUARDED_BY(mutex_);
};

}  // namespace

std::size_t ParallelSweep::current_worker() { return t_worker_index; }

std::size_t job_count(std::size_t requested) {
  if (requested > 0) return requested;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once on the caller's thread
  // before any pool thread exists; nothing in the tree calls setenv.
  if (const char* env = std::getenv("VSTREAM_JOBS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ParallelSweep::ParallelSweep(std::size_t jobs) : jobs_{job_count(jobs)} {}

void ParallelSweep::for_each_index(std::size_t count,
                                   const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers = std::min(jobs_, count);

  // The timed unit of work: fn(i) itself, clocked as a kRun task on the
  // executing worker when a profiler is attached. The timing lives inside
  // SweepProfiler::Scope — this file stays chrono-free by lint rule.
  SweepProfiler* const profiler = profiler_;
  const auto run_one = [&fn, profiler](std::size_t i, std::size_t worker) {
    const SweepProfiler::Scope scope{profiler, worker, SweepPhase::kRun};
    fn(i);
  };

  if (workers <= 1) {
    // Serial path: no threads, identical to the historical sweep loop.
    for (std::size_t i = 0; i < count; ++i) run_one(i, 0);
    return;
  }

  // Dynamic work stealing off a shared counter: sessions vary a lot in cost
  // (180 s Netflix worlds vs 30 s Flash clips), so static striping would
  // leave workers idle at the tail.
  std::atomic<std::size_t> next{0};
  ErrorCollector errors;
  const auto drain = [&](std::size_t worker) {
    t_worker_index = worker;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        run_one(i, worker);
      } catch (...) {
        errors.capture(std::current_exception());
      }
    }
    t_worker_index = 0;
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain, w);
  drain(0);  // the caller's thread is worker 0
  for (auto& t : pool) t.join();
  errors.rethrow_if_any();
}

std::vector<streaming::SessionResult> ParallelSweep::run_sessions(
    const std::vector<streaming::SessionConfig>& configs) const {
  return map<streaming::SessionResult>(
      configs.size(), [&configs](std::size_t i) { return streaming::run_session(configs[i]); });
}

}  // namespace vstream::runner
