// vstream-lint-file: allow(thread): src/runner is the one sanctioned home for threads — shared-nothing fan-out over independent session worlds.
#include "runner/parallel_sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "check/thread_safety.hpp"

namespace vstream::runner {

namespace {

// Which pool worker the current thread is: set by the chunk drain before a
// worker starts claiming, reset after. Thread-local so nested tools that
// query it off-pool see a stable 0 (the caller's thread is worker 0).
// Allowlisted in tools/vstream_ast_lint.py: harness-side attribution only,
// never read inside a session world.
thread_local std::size_t t_worker_index = 0;

// First-error capture shared by the pool's workers — the one piece of
// lock-protected state in a sweep (everything else is partitioned per
// worker). Errors after the first are not silently discarded: they are
// counted, the count is appended to the rethrown error's message, and the
// pool exposes it via errors_dropped() so multi-failure sweeps stay
// diagnosable. The clang thread-safety annotations let -Wthread-safety
// prove at compile time that no path touches the state without the lock.
class ErrorCollector {
 public:
  /// Record `error`: the first one seen is kept for rethrow, every later
  /// one increments the dropped count (the sweep still drains every chunk,
  /// and rethrowing one exception is all the fan-out entry points promise).
  void capture(std::exception_ptr error) VSTREAM_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (!first_) {
      first_ = std::move(error);
    } else {
      ++dropped_;
    }
  }

  /// Errors recorded beyond the first.
  [[nodiscard]] std::size_t dropped() const VSTREAM_EXCLUDES(mutex_) {
    const std::lock_guard<std::mutex> lock{mutex_};
    return dropped_;
  }

  /// Rethrow the captured error, if any. A single failure rethrows the
  /// original exception untouched; with further failures dropped, a
  /// std::exception is rewrapped with the drop count appended to its
  /// message (non-std exceptions propagate unchanged — the count is still
  /// readable off the pool). Called after the pool has joined, but takes
  /// the lock anyway — uncontended at that point, and it keeps the
  /// annotated invariant unconditional instead of "true after join".
  void rethrow_if_any() VSTREAM_EXCLUDES(mutex_) {
    std::exception_ptr error;
    std::size_t dropped = 0;
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      error = first_;
      dropped = dropped_;
    }
    if (!error) return;
    if (dropped == 0) std::rethrow_exception(error);
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      throw std::runtime_error{std::string{e.what()} + " (sweep dropped " +
                               std::to_string(dropped) + " further worker error(s))"};
    }
  }

 private:
  mutable std::mutex mutex_;
  std::exception_ptr first_ VSTREAM_GUARDED_BY(mutex_);
  std::size_t dropped_ VSTREAM_GUARDED_BY(mutex_){0};
};

/// Automatic chunk size: ~16 claims per worker amortizes the shared counter
/// and keeps per-worker staging runs long (cache-friendly appends), while
/// the cap keeps chunks small enough that a straggler's tail can still be
/// stolen. Small sweeps degrade to chunk 1 — exactly the old per-index
/// claiming, which is ideal when individual sessions are expensive.
std::size_t auto_chunk(std::size_t count, std::size_t workers) {
  return std::clamp<std::size_t>(count / (workers * 16), 1, 64);
}

}  // namespace

std::size_t ParallelSweep::current_worker() { return t_worker_index; }

std::size_t job_count(std::size_t requested) {
  if (requested > 0) return std::min(requested, kMaxJobs);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once on the caller's thread
  // before any pool thread exists; nothing in the tree calls setenv.
  if (const char* env = std::getenv("VSTREAM_JOBS")) {
    char* end = nullptr;
    const long long n = std::strtoll(env, &end, 10);
    // Garbage, zero and negative fall through to the hardware count; huge
    // values (including strtoll saturation) clamp to kMaxJobs.
    if (end != env && n > 0) {
      return std::min<std::size_t>(static_cast<unsigned long long>(n), kMaxJobs);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ParallelSweep::ParallelSweep(std::size_t jobs) : jobs_{job_count(jobs)} {}

void ParallelSweep::for_each_chunk(
    std::size_t count, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) const {
  errors_dropped_.store(0, std::memory_order_relaxed);
  if (count == 0) return;
  const std::size_t workers = std::min(jobs_, count);
  if (chunk == 0) chunk = auto_chunk(count, workers);

  ErrorCollector errors;
  const auto run_chunk = [&fn, &errors](std::size_t begin, std::size_t end, std::size_t worker) {
    try {
      fn(begin, end, worker);
    } catch (...) {
      errors.capture(std::current_exception());
    }
  };

  if (workers <= 1) {
    // Serial path: no threads, same chunk walk on the caller's thread.
    for (std::size_t begin = 0; begin < count; begin += chunk) {
      run_chunk(begin, std::min(begin + chunk, count), 0);
    }
  } else {
    // Dynamic chunk stealing off a shared counter: sessions vary a lot in
    // cost (180 s Netflix worlds vs 30 s Flash clips), so static striping
    // would leave workers idle at the tail; per-index claiming would bounce
    // the counter's cache line once per session. Chunks are the middle
    // ground — one fetch_add buys a contiguous run of indices.
    std::atomic<std::size_t> next{0};
    const auto drain = [&](std::size_t worker) {
      t_worker_index = worker;
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count) break;
        run_chunk(begin, std::min(begin + chunk, count), worker);
      }
      t_worker_index = 0;
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain, w);
    drain(0);  // the caller's thread is worker 0
    for (auto& t : pool) t.join();
  }

  errors_dropped_.store(errors.dropped(), std::memory_order_relaxed);
  errors.rethrow_if_any();
}

void ParallelSweep::for_each_index(std::size_t count,
                                   const std::function<void(std::size_t)>& fn) const {
  // Per-index error isolation: an index that throws must not abandon the
  // rest of its chunk — every index is attempted exactly once regardless of
  // where failures land. The inner collector sees every per-index error;
  // the chunk layer's own collector stays empty (this lambda never throws).
  ErrorCollector errors;
  SweepProfiler* const profiler = profiler_;
  for_each_chunk(count, 0,
                 [&fn, &errors, profiler](std::size_t begin, std::size_t end, std::size_t worker) {
                   for (std::size_t i = begin; i < end; ++i) {
                     try {
                       const SweepProfiler::Scope scope{profiler, worker, SweepPhase::kRun};
                       fn(i);
                     } catch (...) {
                       errors.capture(std::current_exception());
                     }
                   }
                 });
  errors_dropped_.store(errors.dropped(), std::memory_order_relaxed);
  errors.rethrow_if_any();
}

std::vector<streaming::SessionResult> ParallelSweep::run_sessions(
    const std::vector<streaming::SessionConfig>& configs) const {
  const std::size_t count = configs.size();
  // One lane per worker: a recycled world arena plus index-tagged result
  // staging, padded so no two workers' hot lanes share a cache line. The
  // submission-order output vector is assembled serially at the end, so it
  // is written by exactly one thread (no false sharing on result slots).
  struct alignas(kResultCacheLine) Lane {
    sim::ArenaResource arena;
    std::vector<std::pair<std::size_t, streaming::SessionResult>> items;
  };
  std::vector<Lane> lanes(jobs_);
  SweepProfiler* const profiler = profiler_;
  for_each_chunk(
      count, 0,
      [&configs, &lanes, profiler](std::size_t begin, std::size_t end, std::size_t worker) {
        Lane& lane = lanes[worker];
        for (std::size_t i = begin; i < end; ++i) {
          const SweepProfiler::Scope scope{profiler, worker, SweepPhase::kRun};
          // Recycle the lane's arena for this world: the previous session's
          // simulator is long destroyed, so the memory comes back warm.
          lane.arena.reset();
          streaming::SessionConfig cfg = configs[i];
          if (cfg.arena == nullptr) cfg.arena = &lane.arena;
          lane.items.emplace_back(i, streaming::run_session(cfg));
        }
      });
  return splice_stages<streaming::SessionResult>(count, lanes);
}

}  // namespace vstream::runner
