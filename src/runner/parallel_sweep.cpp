// vstream-lint-file: allow(thread): src/runner is the one sanctioned home for threads — shared-nothing fan-out over independent session worlds.
#include "runner/parallel_sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace vstream::runner {

std::size_t job_count(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("VSTREAM_JOBS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ParallelSweep::ParallelSweep(std::size_t jobs) : jobs_{job_count(jobs)} {}

void ParallelSweep::for_each_index(std::size_t count,
                                   const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers = std::min(jobs_, count);
  if (workers <= 1) {
    // Serial path: no threads, identical to the historical sweep loop.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic work stealing off a shared counter: sessions vary a lot in cost
  // (180 s Netflix worlds vs 30 s Flash clips), so static striping would
  // leave workers idle at the tail.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock{error_mutex};
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();  // the caller's thread is worker 0
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<streaming::SessionResult> ParallelSweep::run_sessions(
    const std::vector<streaming::SessionConfig>& configs) const {
  return map<streaming::SessionResult>(
      configs.size(), [&configs](std::size_t i) { return streaming::run_session(configs[i]); });
}

}  // namespace vstream::runner
