// Discrete-event simulation engine.
//
// A `Simulator` owns a time-ordered event queue. Components schedule
// callbacks at absolute or relative times; `run()` drains the queue in
// timestamp order (FIFO among equal timestamps). Scheduled events can be
// cancelled through the returned `EventHandle` without touching the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace vstream::check {
class StateDigest;
}

namespace vstream::obs {
class ObsContext;
}

namespace vstream::sim {

/// Cancellation token for a scheduled event. Default-constructed handles are
/// inert; `cancel()` on an already-fired or cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call at any time.
  void cancel() {
    if (auto p = state_.lock()) *p = true;
  }

  /// True while the event is still scheduled and not cancelled.
  [[nodiscard]] bool pending() const {
    auto p = state_.lock();
    return p != nullptr && !*p;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> state) : state_{std::move(state)} {}
  std::weak_ptr<bool> state_;  // points at the "cancelled" flag
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at`. Scheduling into the past
  /// is a contract violation (use schedule_after for clamping semantics).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` from now. Negative delays clamp to now.
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Run events until the queue is empty or `limit` is reached (events at
  /// exactly `limit` still run). Returns the number of events processed.
  std::uint64_t run_until(SimTime limit);

  /// Run until the event queue is empty.
  std::uint64_t run();

  /// Process a single event if one is pending. Returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }
  /// Queue-depth high-water mark over the simulator's lifetime.
  [[nodiscard]] std::size_t max_events_pending() const { return max_events_pending_; }

  /// Attach (or clear, with nullptr) this world's observability context.
  /// The simulator does not own it; instrumented components reach it via
  /// `obs()` and must be constructed after it is set.
  void set_obs(obs::ObsContext* obs) { obs_ = obs; }
  [[nodiscard]] obs::ObsContext* obs() const { return obs_; }

  /// Attach (or clear, with nullptr) a determinism-audit digest. When set,
  /// every dispatched event mixes its (timestamp, FIFO sequence) pair into
  /// the digest, and instrumented components fold in state snapshots, so
  /// twin same-seed runs must agree bit-for-bit. Costs one branch per event
  /// when detached.
  void set_digest(check::StateDigest* digest) { digest_ = digest; }
  [[nodiscard]] check::StateDigest* digest() const { return digest_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq{0};  // FIFO tie-break among equal timestamps
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t events_processed_{0};
  std::size_t max_events_pending_{0};
  obs::ObsContext* obs_{nullptr};
  check::StateDigest* digest_{nullptr};
};

}  // namespace vstream::sim
