// Discrete-event simulation engine.
//
// A `Simulator` owns a time-ordered event queue built on a slot-pool event
// arena: callbacks live in a recycled slot vector (SBO storage, see
// sim/callback.hpp), the priority queue orders lightweight {time, seq, slot}
// keys, and `EventHandle` is a {slot, generation} token — no refcounts, no
// atomics, no per-event heap traffic. Components schedule callbacks at
// absolute or relative times; `run()` drains the queue in timestamp order
// (FIFO among equal timestamps). Cancellation bumps the slot's generation,
// so the stale queue key is discarded lazily at pop time and a recycled
// slot's new occupant is immune to old handles.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "sim/arena.hpp"
#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace vstream::check {
class StateDigest;
}

namespace vstream::obs {
class ObsContext;
}

namespace vstream::sim {

class Simulator;

/// Cancellation token for a scheduled event: the event's arena slot plus the
/// generation the slot had when the event was scheduled. Default-constructed
/// handles are inert; `cancel()` on an already-fired or cancelled event is a
/// no-op, and a handle left over from a recycled slot can never touch the
/// slot's new occupant (the generation no longer matches).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call at any time.
  inline void cancel();

  /// True while the event is still scheduled and not cancelled.
  [[nodiscard]] inline bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_{sim}, slot_{slot}, generation_{generation} {}

  Simulator* sim_{nullptr};
  std::uint32_t slot_{0};
  std::uint32_t generation_{0};
};

class Simulator {
 public:
  using Handle = EventHandle;

  Simulator() = default;
  /// Back the event-queue vector, slot deque and free list with `arena`
  /// (null = global allocator, identical behaviour). The arena is
  /// non-owning and must outlive the simulator; sweep workers pass their
  /// own recycled per-worker arena so world construction and queue growth
  /// never touch the global allocator (see sim/arena.hpp). Placement only:
  /// event order, digests and results are independent of the choice.
  explicit Simulator(ArenaResource* arena)
      : queue_{Later{}, KeyVector{ArenaAlloc<QueueKey>{arena}}},
        slots_{ArenaAlloc<Slot>{arena}},
        free_slots_{ArenaAlloc<std::uint32_t>{arena}} {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at`. Scheduling into the past
  /// is a contract violation (use schedule_after for clamping semantics).
  /// The closure is constructed directly inside its arena slot — the
  /// scheduling path performs zero SimCallback relocations and, for the
  /// common capture shapes, zero heap allocations.
  template <typename Fn,
            typename = std::enable_if_t<!std::is_same_v<std::remove_cvref_t<Fn>, SimCallback> &&
                                        std::is_invocable_r_v<void, std::remove_cvref_t<Fn>&>>>
  EventHandle schedule_at(SimTime at, Fn&& fn) {
    // Dynamic complement to the AST wall's capture-size pass: the static
    // pass flags the overflows it can prove, this counter catches the rest
    // at runtime. Resolved per instantiation, so the fast path pays nothing.
    if constexpr (!SimCallback::fits_inline<Fn>()) ++heap_fallback_schedules_;
    const std::uint32_t slot = acquire_slot();
    slots_[slot].fn.emplace(std::forward<Fn>(fn));
    return commit_schedule(at, slot);
  }

  /// Overload for a pre-built (possibly empty) SimCallback. Empty callbacks
  /// are rejected here, mirroring the old std::function null check.
  EventHandle schedule_at(SimTime at, SimCallback&& fn);

  /// Schedule `fn` to run `delay` from now. Negative delays clamp to now.
  template <typename Fn,
            typename = std::enable_if_t<!std::is_same_v<std::remove_cvref_t<Fn>, SimCallback> &&
                                        std::is_invocable_r_v<void, std::remove_cvref_t<Fn>&>>>
  EventHandle schedule_after(Duration delay, Fn&& fn) {
    if (delay.is_negative()) delay = Duration::zero();
    return schedule_at(now_ + delay, std::forward<Fn>(fn));
  }

  EventHandle schedule_after(Duration delay, SimCallback&& fn);

  /// Run events until the queue is empty or `limit` is reached (events at
  /// exactly `limit` still run). Returns the number of events processed.
  std::uint64_t run_until(SimTime limit);

  /// Run until the event queue is empty.
  std::uint64_t run();

  /// Process a single event if one is pending. Returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const { return live_events_ == 0; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }
  /// Live (scheduled, not cancelled) events.
  [[nodiscard]] std::size_t events_pending() const { return live_events_; }
  /// Queue-depth high-water mark over the simulator's lifetime.
  [[nodiscard]] std::size_t max_events_pending() const { return max_events_pending_; }

  /// Arena introspection (pool tests, engine microbench): total slots ever
  /// created and slots currently on the free list.
  [[nodiscard]] std::size_t arena_slots() const { return slots_.size(); }
  [[nodiscard]] std::size_t arena_free_slots() const { return free_slots_.size(); }
  /// Events scheduled whose closure overflowed the SimCallback SBO and
  /// took the heap-fallback path. Hot-path code must keep this at zero;
  /// tests pin it (the static capture-size pass flags only the overflows
  /// it can size, so this is the wall's dynamic backstop).
  [[nodiscard]] std::uint64_t heap_fallback_schedules() const {
    return heap_fallback_schedules_;
  }

  /// Attach (or clear, with nullptr) this world's observability context.
  /// The simulator does not own it; instrumented components reach it via
  /// `obs()` and must be constructed after it is set.
  void set_obs(obs::ObsContext* obs) { obs_ = obs; }
  [[nodiscard]] obs::ObsContext* obs() const { return obs_; }

  /// Attach (or clear, with nullptr) a determinism-audit digest. When set,
  /// every dispatched event mixes its (timestamp, FIFO sequence) pair into
  /// the digest, and instrumented components fold in state snapshots, so
  /// twin same-seed runs must agree bit-for-bit. Costs one branch per event
  /// when detached.
  void set_digest(check::StateDigest* digest) { digest_ = digest; }
  [[nodiscard]] check::StateDigest* digest() const { return digest_; }

 private:
  friend class EventHandle;

  /// One arena slot. `generation` identifies the current occupant; it is
  /// bumped whenever the slot is released (fire or cancel), which atomizes
  /// invalidation of every outstanding handle and queue key in O(1).
  struct Slot {
    SimCallback fn;
    std::uint32_t generation{0};
  };

  /// Priority-queue key: 24 trivially-copyable bytes. The callback stays in
  /// the arena, so heap reshuffles and `pop()` never touch a closure.
  struct QueueKey {
    SimTime at;
    std::uint64_t seq{0};  // FIFO tie-break among equal timestamps
    std::uint32_t slot{0};
    std::uint32_t generation{0};
  };
  /// Min-first ordering on (at, seq). The keys are trivially copyable and
  /// 24 bytes, so heap sifts are straight memcpy traffic and never touch a
  /// closure; a measured 4-ary replacement heap lost ~35% to libstdc++'s
  /// __adjust_heap at realistic queue depths, so the standard container
  /// stays.
  struct Later {
    bool operator()(const QueueKey& a, const QueueKey& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool slot_live(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }
  void cancel_event(std::uint32_t slot, std::uint32_t generation);
  /// Release a slot back to the free list, invalidating outstanding tokens.
  void release_slot(std::uint32_t slot);
  /// Pop a slot off the free list (or grow the arena) for a new event.
  [[nodiscard]] std::uint32_t acquire_slot();
  /// Push the queue key for an acquired+filled slot and hand back its token.
  EventHandle commit_schedule(SimTime at, std::uint32_t slot);

  /// Container aliases parameterized on the optional per-world arena: the
  /// queue's backing vector, the slot deque's blocks and the free list all
  /// draw from it, which removes every global-allocator touch from world
  /// construction and event-queue growth on the sweep hot path.
  using KeyVector = std::vector<QueueKey, ArenaAlloc<QueueKey>>;

  std::priority_queue<QueueKey, KeyVector, Later> queue_;
  /// Deque, not vector: growing the slot pool must never move existing
  /// slots, because the firing callback executes in place in its slot
  /// (step()) and may itself schedule new events that extend the pool.
  std::deque<Slot, ArenaAlloc<Slot>> slots_;
  std::vector<std::uint32_t, ArenaAlloc<std::uint32_t>> free_slots_;  // LIFO: hot slots stay cache-warm
  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t events_processed_{0};
  std::uint64_t heap_fallback_schedules_{0};
  std::size_t live_events_{0};
  /// Slots whose callback is currently executing in place: released from
  /// the live count (handles must read not-pending during the callback) but
  /// not yet recycled onto the free list. 0 or 1 outside nested dispatch.
  std::size_t in_flight_{0};
  std::size_t max_events_pending_{0};
  obs::ObsContext* obs_{nullptr};
  check::StateDigest* digest_{nullptr};
};

inline void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_event(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->slot_live(slot_, generation_);
}

}  // namespace vstream::sim
