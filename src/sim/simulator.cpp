#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "check/contracts.hpp"
#include "check/digest.hpp"

namespace vstream::sim {

EventHandle Simulator::schedule_at(SimTime at, SimCallback&& fn) {
  if (!fn) throw std::invalid_argument{"Simulator::schedule_at: empty callback"};
  if (!fn.stored_inline()) ++heap_fallback_schedules_;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].fn = std::move(fn);
  return commit_schedule(at, slot);
}

EventHandle Simulator::schedule_after(Duration delay, SimCallback&& fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint32_t Simulator::acquire_slot() {
  if (free_slots_.empty()) {
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    return slot;
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

EventHandle Simulator::commit_schedule(SimTime at, std::uint32_t slot) {
  VSTREAM_PRECONDITION(at >= now_, "no event may be scheduled in the past");
  Slot& s = slots_[slot];
  queue_.push(QueueKey{at, next_seq_++, slot, s.generation});
  ++live_events_;
  max_events_pending_ = std::max(max_events_pending_, live_events_);
  // Free-list integrity: every arena slot is either occupied by a live
  // event, parked on the free list, or mid-dispatch (its callback executing
  // in place) — a slot on two of these lists (double free) or on none
  // (leak) breaks the recycling scheme.
  VSTREAM_POSTCONDITION(free_slots_.size() + live_events_ + in_flight_ == slots_.size(),
                        "arena slots must partition into free-list, live events, and in-flight");
  return EventHandle{this, slot, s.generation};
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.generation;  // invalidates every outstanding handle and queue key
  free_slots_.push_back(slot);
  --live_events_;
}

void Simulator::cancel_event(std::uint32_t slot, std::uint32_t generation) {
  if (!slot_live(slot, generation)) return;  // already fired or cancelled
  slots_[slot].fn.reset();
  release_slot(slot);
  // The stale queue key stays behind; step()/run_until() discard it by
  // generation mismatch when it reaches the top.
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueKey key = queue_.top();
    queue_.pop();
    Slot& s = slots_[key.slot];
    if (s.generation != key.generation) continue;  // cancelled: stale key
    VSTREAM_INVARIANT(key.at >= now_, "simulation clock must be monotonic");
    now_ = key.at;
    ++events_processed_;
    if (digest_ != nullptr) {
      // Event order is the determinism signal: timestamp + FIFO sequence
      // uniquely identify the dispatch in a correct run.
      digest_->mix_signed(key.at.count_nanos());
      digest_->mix(key.seq);
    }
    // Invalidate the slot's tokens *before* invoking — a handle to the
    // firing event held by the callback itself must already read as
    // not-pending — but keep the slot off the free list until the callback
    // returns: the closure executes in place in the arena (no move-out),
    // so the slot must not be reassigned mid-invoke. Deque storage keeps
    // the executing closure pinned even if the callback grows the arena.
    ++s.generation;
    --live_events_;
    ++in_flight_;
    s.fn();
    s.fn.reset();
    --in_flight_;
    free_slots_.push_back(key.slot);
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_until(SimTime limit) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Discard stale keys of cancelled events without advancing the clock.
    const QueueKey& top = queue_.top();
    if (slots_[top.slot].generation != top.generation) {
      queue_.pop();
      continue;
    }
    if (top.at > limit) break;
    if (step()) ++n;
  }
  if (now_ < limit) now_ = limit;
  VSTREAM_POSTCONDITION(now_ >= limit, "run_until must leave the clock at or past the limit");
  return n;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace vstream::sim
