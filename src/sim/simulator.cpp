#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "check/contracts.hpp"
#include "check/digest.hpp"

namespace vstream::sim {

EventHandle Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument{"Simulator::schedule_at: empty callback"};
  VSTREAM_PRECONDITION(at >= now_, "no event may be scheduled in the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(fn), cancelled});
  max_events_pending_ = std::max(max_events_pending_, queue_.size());
  VSTREAM_POSTCONDITION(queue_.size() <= max_events_pending_,
                        "queue-depth high-water mark must cover the live queue");
  return EventHandle{cancelled};
}

EventHandle Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    VSTREAM_INVARIANT(ev.at >= now_, "simulation clock must be monotonic");
    now_ = ev.at;
    ++events_processed_;
    if (digest_ != nullptr) {
      // Event order is the determinism signal: timestamp + FIFO sequence
      // uniquely identify the dispatch in a correct run.
      digest_->mix_signed(ev.at.count_nanos());
      digest_->mix(ev.seq);
    }
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_until(SimTime limit) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled events without advancing the clock.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > limit) break;
    if (step()) ++n;
  }
  if (now_ < limit) now_ = limit;
  VSTREAM_POSTCONDITION(now_ >= limit, "run_until must leave the clock at or past the limit");
  return n;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace vstream::sim
