#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace vstream::sim {

EventHandle Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument{"Simulator::schedule_at: empty callback"};
  if (at < now_) at = now_;
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(fn), cancelled});
  max_events_pending_ = std::max(max_events_pending_, queue_.size());
  return EventHandle{cancelled};
}

EventHandle Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.at;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_until(SimTime limit) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled events without advancing the clock.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > limit) break;
    if (step()) ++n;
  }
  if (now_ < limit) now_ = limit;
  return n;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace vstream::sim
