// Repeating timer built on the simulator event queue.
//
// Used by pacing disciplines (server block pushes, client pull schedules)
// that fire on a fixed or policy-computed period. The timer is restartable
// and safe to stop from inside its own callback.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace vstream::sim {

class PeriodicTimer {
 public:
  /// The callback may call `stop()`/`set_period()` on its own timer.
  PeriodicTimer(Simulator& sim, Duration period, std::function<void()> on_fire)
      : sim_{sim}, period_{period}, on_fire_{std::move(on_fire)} {}

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arm the timer; the first firing happens one period from now (or after
  /// `initial_delay` if given). Restarting an armed timer reschedules it.
  void start() { start_after(period_); }
  void start_after(Duration initial_delay) {
    stop();
    running_ = true;
    schedule(initial_delay);
  }

  void stop() {
    running_ = false;
    pending_.cancel();
  }

  void set_period(Duration period) { period_ = period; }
  [[nodiscard]] Duration period() const { return period_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t fire_count() const { return fire_count_; }

 private:
  void schedule(Duration delay) {
    pending_ = sim_.schedule_after(delay, [this] {
      pending_ = EventHandle{};  // this firing is no longer pending
      ++fire_count_;
      on_fire_();
      // The callback may have stopped or re-armed the timer itself.
      if (running_ && !pending_.pending()) schedule(period_);
    });
  }

  Simulator& sim_;
  Duration period_;
  std::function<void()> on_fire_;
  EventHandle pending_;
  bool running_{false};
  std::uint64_t fire_count_{0};
};

}  // namespace vstream::sim
