#include "sim/rng.hpp"

#include <algorithm>
#include <cmath>

namespace vstream::sim {
namespace {

// FNV-1a over the tag, used to decorrelate forked streams.
std::uint64_t hash_tag(std::string_view tag) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : tag) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Rng Rng::fork(std::string_view tag) {
  const std::uint64_t child_seed = engine_() ^ hash_tag(tag);
  return Rng{child_seed};
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument{"Rng::uniform: lo > hi"};
  std::uniform_real_distribution<double> d{lo, hi};
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"Rng::uniform_int: lo > hi"};
  std::uniform_int_distribution<std::int64_t> d{lo, hi};
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution d{p};
  return d(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument{"Rng::exponential: rate must be > 0"};
  std::exponential_distribution<double> d{rate};
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d{mean, stddev};
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d{mu, sigma};
  return d(engine_);
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) throw std::invalid_argument{"Rng::pareto: xm, alpha must be > 0"};
  const double u = uniform(std::numeric_limits<double>::min(), 1.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument{"Rng::weighted_index: empty weights"};
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"Rng::weighted_index: negative weight"};
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument{"Rng::weighted_index: weights sum to zero"};
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace vstream::sim
