// Per-world monotonic arena: the allocator behind near-linear sweep scaling.
//
// A million-session sweep builds and tears down a million simulator worlds,
// and every world used to buy its event-queue vector, slot deque and free
// list from the global allocator — which is exactly the kind of
// cross-thread malloc/free churn that serializes a shared-nothing pool on
// the allocator's central locks. `ArenaResource` is the fix: a chunked
// monotonic arena a sweep worker owns outright. Allocation is a pointer
// bump, deallocation is a no-op, and `reset()` recycles the arena between
// sessions without returning memory to the OS, so a worker's steady state
// is one warm chunk sized to its largest world — zero global-allocator
// traffic on the session hot path.
//
// The arena is strictly single-threaded by design (one worker, one arena,
// one world at a time); `runner::ParallelSweep` gives each worker its own
// cache-line-padded instance. Placement only: the arena never observes or
// alters simulation logic, so arena-backed and heap-backed twin runs
// produce identical digests (tests/simulator_pool_test.cpp pins this).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace vstream::sim {

class ArenaResource {
 public:
  /// `initial_bytes` sizes the first chunk, lazily allocated on first use.
  explicit ArenaResource(std::size_t initial_bytes = kDefaultChunkBytes)
      : initial_bytes_{initial_bytes > 0 ? initial_bytes : kDefaultChunkBytes} {}

  ArenaResource(const ArenaResource&) = delete;
  ArenaResource& operator=(const ArenaResource&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two). Grows by
  /// doubling chunks when the current chunk is exhausted; a request larger
  /// than the next chunk gets a dedicated chunk of its own.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  /// Monotonic: individual frees are a no-op. Containers call this through
  /// ArenaAlloc; the memory comes back in one piece at reset().
  void deallocate(void* /*p*/, std::size_t /*bytes*/) noexcept {}

  /// Recycle for the next session: every chunk is retired except one warm
  /// chunk at least as large as the previous high-water mark, so a steady
  /// sweep re-uses the same memory world after world.
  void reset();

  /// Bytes handed out since the last reset().
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  /// Largest bytes_in_use() ever observed (across resets).
  [[nodiscard]] std::size_t high_water_bytes() const { return high_water_; }
  /// Bytes currently owned by the arena's chunks (capacity, not use).
  [[nodiscard]] std::size_t capacity_bytes() const;
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  /// Lifetime counters: pointer-bump allocations served and resets taken.
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  [[nodiscard]] std::uint64_t resets() const { return resets_; }

  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size{0};
    std::size_t used{0};
  };

  /// Append a chunk of at least `min_bytes`, doubling the last chunk size.
  Chunk& grow(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t initial_bytes_;
  std::size_t in_use_{0};
  std::size_t high_water_{0};
  std::uint64_t allocations_{0};
  std::uint64_t resets_{0};
};

/// Minimal std::allocator adaptor over an ArenaResource. A null arena falls
/// back to the global allocator, so one container type serves both the
/// arena-backed sweep path and plain standalone construction.
template <typename T>
class ArenaAlloc {
 public:
  using value_type = T;
  // The arena pointer must travel with container moves/copies/swaps —
  // otherwise a moved-into container would free arena memory globally.
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAlloc() noexcept = default;
  explicit ArenaAlloc(ArenaResource* arena) noexcept : arena_{arena} {}
  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>& other) noexcept : arena_{other.arena()} {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return std::allocator<T>{}.allocate(n);
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ != nullptr) {
      arena_->deallocate(p, n * sizeof(T));
      return;
    }
    std::allocator<T>{}.deallocate(p, n);
  }

  [[nodiscard]] ArenaResource* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAlloc& a, const ArenaAlloc& b) noexcept {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAlloc& a, const ArenaAlloc& b) noexcept {
    return !(a == b);
  }

 private:
  template <typename U>
  friend class ArenaAlloc;

  ArenaResource* arena_{nullptr};
};

}  // namespace vstream::sim
