#include "sim/arena.hpp"

#include <algorithm>

#include "check/contracts.hpp"

namespace vstream::sim {

namespace {

constexpr bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr std::size_t align_up(std::size_t offset, std::size_t align) {
  return (offset + align - 1) & ~(align - 1);
}

}  // namespace

void* ArenaResource::allocate(std::size_t bytes, std::size_t align) {
  VSTREAM_PRECONDITION(is_power_of_two(align), "ArenaResource: alignment must be a power of two");
  if (bytes == 0) bytes = 1;  // distinct non-null pointers, as operator new
  Chunk* chunk = chunks_.empty() ? &grow(bytes + align) : &chunks_.back();
  std::size_t offset = align_up(chunk->used, align);
  if (offset + bytes > chunk->size) {
    chunk = &grow(bytes + align);
    offset = align_up(chunk->used, align);
  }
  chunk->used = offset + bytes;
  in_use_ += bytes;
  high_water_ = std::max(high_water_, in_use_);
  ++allocations_;
  return chunk->data.get() + offset;
}

ArenaResource::Chunk& ArenaResource::grow(std::size_t min_bytes) {
  const std::size_t last = chunks_.empty() ? initial_bytes_ / 2 : chunks_.back().size;
  const std::size_t size = std::max(min_bytes, last * 2);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  chunks_.push_back(std::move(chunk));
  return chunks_.back();
}

void ArenaResource::reset() {
  ++resets_;
  in_use_ = 0;
  if (chunks_.empty()) return;
  if (chunks_.size() > 1) {
    // Consolidate: one warm chunk covering the high-water mark replaces the
    // doubling ladder, so the next session never grows at all.
    const std::size_t want = std::max(high_water_, chunks_.back().size);
    chunks_.clear();
    grow(want);
  }
  chunks_.back().used = 0;
}

std::size_t ArenaResource::capacity_bytes() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

}  // namespace vstream::sim
