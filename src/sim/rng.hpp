// Deterministic random-number streams for simulations.
//
// Every stochastic component takes an `Rng` (or forks a child stream) so a
// whole experiment is reproducible from a single seed, and independent
// components do not perturb each other's draws.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <string_view>

namespace vstream::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed}, seed_{seed} {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Derive an independent child stream. The tag keeps forks for different
  /// purposes decorrelated even when forked from the same parent state.
  [[nodiscard]] Rng fork(std::string_view tag);

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Exponential with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate);

  [[nodiscard]] double normal(double mean, double stddev);

  /// Log-normal parameterised by the mean/stddev of the *underlying* normal.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed durations).
  [[nodiscard]] double pareto(double xm, double alpha);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace vstream::sim
