#include "sim/determinism_canary.hpp"

#include <cstddef>
#include <unordered_map>

#include "check/digest.hpp"
#include "sim/simulator.hpp"

namespace vstream::sim {

namespace {

/// splitmix64 finalizer: a decent avalanche so the nonce genuinely
/// reshuffles bucket assignment, the way a per-process hash seed would.
struct NoncedHash {
  std::uint64_t nonce{0};
  std::size_t operator()(std::uint64_t key) const {
    std::uint64_t z = key ^ nonce;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31U));
  }
};

}  // namespace

std::uint64_t determinism_canary_digest(std::uint64_t hash_nonce) {
  Simulator sim;
  check::StateDigest digest;
  sim.set_digest(&digest);

  // The bug under test: scheduling while iterating an unordered container.
  // Every entry lands at a distinct timestamp, so the *dispatch* order is
  // fixed — but the FIFO sequence numbers (assigned in iteration order)
  // leak the container's layout into the digest, as they would leak into
  // any tie-broken schedule in a real component.
  std::unordered_map<std::uint64_t, int, NoncedHash> table{16, NoncedHash{hash_nonce}};
  for (std::uint64_t key = 0; key < 64; ++key) table.emplace(key, 0);
  for (auto& [key, hits] : table) {
    sim.schedule_at(SimTime::from_nanos(static_cast<std::int64_t>(key) * 1000), [&hits] {
      ++hits;
    });
  }
  sim.run();
  return digest.value();
}

}  // namespace vstream::sim
