// Simulation time types.
//
// Time is kept as integer nanoseconds to make event ordering deterministic
// and free of floating-point drift; helpers convert to/from seconds for the
// places (rates, statistics) where real-valued time is the natural unit.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace vstream::sim {

/// A span of simulated time, in integer nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t ns) { return Duration{ns}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) { return Duration{us * 1'000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

/// An absolute instant on the simulation clock (nanoseconds since start).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime from_nanos(std::int64_t ns) { return SimTime{ns}; }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.ns_ + d.count_nanos()};
  }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.ns_ - d.count_nanos()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  constexpr SimTime& operator+=(Duration d) {
    ns_ += d.count_nanos();
    return *this;
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

/// Duration needed to serialise `bytes` onto a link of `bits_per_second`.
[[nodiscard]] constexpr Duration transmission_time(std::uint64_t bytes, double bits_per_second) {
  if (bits_per_second <= 0.0) return Duration::max();
  const double seconds = static_cast<double>(bytes) * 8.0 / bits_per_second;
  return Duration::seconds(seconds);
}

}  // namespace vstream::sim
