// Small-buffer-optimized callable for the event hot path.
//
// `SimCallback` replaces `std::function<void()>` in the simulator's event
// arena. The common capture shapes (`[this]`, `[this, segment, lost]`,
// `[&order, i]`, ...) fit the 128-byte inline buffer, so scheduling an
// event performs zero heap allocations; oversized or throwing-move captures
// fall back to a single heap cell. Move-only by design — events are
// dispatched exactly once, and the arena relocates callbacks between slots
// by move, never by copy.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vstream::sim {

class SimCallback {
 public:
  /// Inline capture budget. Sized so a lambda capturing `this` plus a full
  /// `net::TcpSegment` (the busiest scheduling site, `net::Link`) stays on
  /// the fast path.
  static constexpr std::size_t kInlineBytes = 128;

  SimCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::remove_cvref_t<F>, SimCallback> &&
                                        std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit, like std::function
  SimCallback(F&& f) {
    emplace(std::forward<F>(f));
  }

  /// Construct the callable in place, destroying any held one first. This
  /// is the zero-relocation scheduling path: the simulator's templated
  /// schedule_at builds the closure directly inside its arena slot instead
  /// of materializing a SimCallback temporary and moving it in.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::remove_cvref_t<F>, SimCallback> &&
                                        std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  void emplace(F&& f) {
    reset();
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (storage()) Fn(std::forward<F>(f));  // vstream-lint: allow(naked-new): placement new into the inline SBO buffer; lifetime managed by the ops table
      ops_ = &InlineOps<Fn>::value;
    } else {
      ::new (storage()) Fn*(new Fn(std::forward<F>(f)));  // vstream-lint: allow(naked-new): heap fallback cell owned by the ops table (freed in HeapOps::destroy)
      ops_ = &HeapOps<Fn>::value;
    }
  }

  SimCallback(SimCallback&& other) noexcept { move_from(other); }
  SimCallback& operator=(SimCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SimCallback(const SimCallback&) = delete;
  SimCallback& operator=(const SimCallback&) = delete;
  ~SimCallback() { reset(); }

  void operator()() { ops_->invoke(storage()); }

  /// True when a callable is held (empty callbacks are rejected at the
  /// scheduling boundary, mirroring the old std::function null check).
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (no heap cell).
  /// Exposed for the pool tests and the engine microbench.
  [[nodiscard]] bool stored_inline() const { return ops_ != nullptr && ops_->stored_inline; }

  /// Destroy the held callable, returning to the empty state. A null
  /// destroy op marks a trivially-destructible inline callable (the common
  /// capture shapes), sparing the dispatch loop an indirect call per event.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  /// Compile-time answer: would `F` take the inline path?
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() {
    using Fn = std::remove_cvref_t<F>;
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct the callable from `src` into `dst`, destroying `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool stored_inline;
  };

  template <typename Fn>
  struct InlineOps {
    static Fn* self(void* s) { return std::launder(static_cast<Fn*>(s)); }
    static void invoke(void* s) { (*self(s))(); }
    static void relocate(void* src, void* dst) noexcept {
      Fn* f = self(src);
      ::new (dst) Fn(std::move(*f));  // vstream-lint: allow(naked-new): placement move into the destination SBO buffer during relocation
      f->~Fn();
    }
    static void destroy(void* s) noexcept { self(s)->~Fn(); }
    static constexpr Ops value{&invoke, &relocate,
                               std::is_trivially_destructible_v<Fn> ? nullptr : &destroy, true};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* self(void* s) { return *std::launder(static_cast<Fn**>(s)); }
    static void invoke(void* s) { (*self(s))(); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) Fn*(self(src));  // vstream-lint: allow(naked-new): relocating the owning pointer cell, not allocating
    }
    static void destroy(void* s) noexcept {
      delete self(s);  // vstream-lint: allow(naked-new): frees the heap fallback cell allocated in the converting constructor
    }
    static constexpr Ops value{&invoke, &relocate, &destroy, false};
  };

  void move_from(SimCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage(), storage());
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  [[nodiscard]] void* storage() { return static_cast<void*>(storage_); }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_{nullptr};
};

}  // namespace vstream::sim
