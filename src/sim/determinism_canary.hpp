// A deliberately nondeterministic mini-workload for the determinism audit.
//
// Real nondeterminism enters a simulation when event scheduling is driven
// by iterating an unordered container whose order depends on address
// layout or a per-process hash seed — identical logic, different event
// interleavings, corrupted figures, and no sanitizer complains. The canary
// reproduces that failure mode on demand: it schedules one event per entry
// of an `std::unordered_map` whose hash is perturbed by `hash_nonce`
// (standing in for ASLR / per-process hash seeding), and digests the run.
// Twin calls with the same nonce must agree; different nonces must diverge
// — which is exactly what the audit asserts to prove it can catch the real
// thing.
#pragma once

#include <cstdint>

namespace vstream::sim {

/// Run the canary workload and return its state digest. Deterministic in
/// `hash_nonce`; distinct nonces yield distinct event orders (and digests).
[[nodiscard]] std::uint64_t determinism_canary_digest(std::uint64_t hash_nonce);

}  // namespace vstream::sim
