// ON-OFF cycle analysis of a packet trace (the paper's core methodology).
//
// The steady-state phase of throttled streaming is a sequence of ON periods
// (a block transferred at the end-to-end available bandwidth) separated by
// idle OFF periods. Following Section 5:
//   - an OFF period is a gap in down-direction data longer than a threshold;
//   - the buffering phase ends at the start of the *first* OFF period (the
//     paper notes this heuristic is loss-sensitive, an artifact we keep);
//   - block size = bytes transferred within one steady-state ON period;
//   - accumulation ratio = steady-state average download rate divided by
//     the video encoding rate.
#pragma once

#include <cstdint>
#include <vector>

#include "capture/trace_view.hpp"

namespace vstream::analysis {

struct OnPeriod {
  double start_s{0.0};
  double end_s{0.0};
  std::uint64_t bytes{0};
  std::size_t packets{0};

  [[nodiscard]] double duration_s() const { return end_s - start_s; }
};

struct OnOffOptions {
  /// Minimum idle gap between down-direction data packets that counts as an
  /// OFF period. Must exceed a few RTTs yet stay below the shortest real
  /// OFF period (the paper saw OFFs from 0.2 s).
  double gap_threshold_s{0.15};

  /// Data packets smaller than this are treated as keep-alive/zero-window
  /// probes: they do not start or extend ON periods (their bytes still
  /// count toward the total).
  std::uint32_t min_data_payload_bytes{64};
};

struct OnOffAnalysis {
  std::vector<OnPeriod> on_periods;
  std::vector<double> off_durations_s;  ///< gap i sits between ON i and ON i+1

  double buffering_end_s{0.0};       ///< start of the first OFF period
  std::uint64_t buffering_bytes{0};  ///< downloaded during the buffering phase
  double steady_rate_bps{0.0};       ///< average down rate after buffering
  std::vector<double> block_sizes_bytes;  ///< per steady-state ON period

  std::uint64_t total_bytes{0};
  double first_packet_s{0.0};
  double last_packet_s{0.0};

  /// True when the trace shows a steady-state (throttled) phase at all.
  [[nodiscard]] bool has_steady_state() const { return !off_durations_s.empty(); }

  /// Fraction of the capture spent in OFF periods. Bulk transfers with the
  /// occasional loss-recovery stall have a tiny OFF fraction; throttled
  /// streams idle most of the time.
  [[nodiscard]] double off_time_fraction() const;

  /// Average download rate over the whole capture.
  [[nodiscard]] double overall_rate_bps() const;

  /// Steady-state rate over encoding rate (paper's accumulation ratio).
  [[nodiscard]] double accumulation_ratio(double encoding_bps) const;

  /// Buffered playback time: buffering bytes divided by the encoding rate
  /// (the y-axis of Fig 3a).
  [[nodiscard]] double buffered_playback_s(double encoding_bps) const;

  [[nodiscard]] double median_block_bytes() const;
  [[nodiscard]] double mean_block_bytes() const;
  [[nodiscard]] double median_off_s() const;
  [[nodiscard]] double max_off_s() const;
};

/// Run the ON/OFF analysis over all down-direction data packets of the
/// trace (connections aggregated, as the paper aggregates the video flow).
/// Implemented as a walk feeding an `OnOffAccumulator`, so the batch and
/// streaming paths share one state machine.
[[nodiscard]] OnOffAnalysis analyze_on_off(capture::TraceView trace,
                                           const OnOffOptions& options = {});

/// Count episodes where the client's advertised window reached zero — the
/// signature of client-side pull throttling in Figs 2(b) and 6(a).
[[nodiscard]] std::size_t count_zero_window_episodes(capture::TraceView trace);

}  // namespace vstream::analysis
