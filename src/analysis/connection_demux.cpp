#include "analysis/connection_demux.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "analysis/streaming_report.hpp"
#include "capture/pcap_wire.hpp"
#include "check/contracts.hpp"
#include "net/segment.hpp"

namespace vstream::analysis {
namespace {

void append_number(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out << buf;
}

template <typename T>
void append_optional_json(std::ostringstream& out, const std::optional<T>& v) {
  if (v.has_value()) {
    append_number(out, static_cast<double>(*v));
  } else {
    out << "null";
  }
}

void append_csv_number(std::ostringstream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out << buf;
}

template <typename T>
void append_csv_optional(std::ostringstream& out, const std::optional<T>& v) {
  if (v.has_value()) append_csv_number(out, static_cast<double>(*v));
}

/// Everything one lane tracks for one connection while its records stream
/// through: unwrap state, the single-pass report builder, and the envelope
/// facts the builder does not expose (host tag, packet count, time span).
struct LaneConnection {
  explicit LaneConnection(const ReportOptions& options) : builder{options} {}

  capture::ConnectionUnwrap unwrap;
  StreamingReportBuilder builder;
  std::uint8_t host{0};
  std::size_t packets{0};
  double first_s{0.0};
  double last_s{0.0};
};

[[nodiscard]] ConnectionLabel finish_connection(std::uint64_t id, LaneConnection& state) {
  state.builder.set_duration_s(state.last_s - state.first_s);
  const SessionReport report = state.builder.finish();

  ConnectionLabel label;
  label.connection_id = id;
  label.host = state.host;
  label.packets = state.packets;
  label.first_packet_s = state.first_s;
  label.last_packet_s = state.last_s;
  label.down_payload_mb = report.total_mb;
  label.strategy = report.strategy;
  label.has_steady_state = report.has_steady_state;
  label.median_block_kb = report.median_block_kb;
  label.median_off_s = report.median_off_s;
  label.cycle_period_s = report.cycle_period_s;
  label.steady_rate_mbps = report.steady_rate_mbps;
  label.rtt_ms = report.rtt_ms;
  label.median_first_rtt_kb = report.median_first_rtt_kb;
  // Ack-clock presence (§4.2): when the first-RTT burst covers less than
  // half a block, the remainder is paced by the receiver's ack clock; when
  // it covers the block, the server dumps each block into one window.
  if (report.median_first_rtt_kb.has_value() && report.median_block_kb > 0.0) {
    label.ack_clocked = *report.median_first_rtt_kb < 0.5 * report.median_block_kb;
  }
  label.retransmission_pct = report.retransmission_pct;
  label.zero_window_episodes = report.zero_window_episodes;
  return label;
}

}  // namespace

CapturePartition partition_capture(const capture::MmapPcapReader& reader, std::size_t lanes) {
  VSTREAM_PRECONDITION(lanes >= 1, "partition_capture needs at least one lane");
  CapturePartition partition;
  partition.lane_offsets.resize(lanes);
  // Size the buckets for an even spread of headers-only records — saves the
  // geometric-growth copying (~2x the final bytes) on gigabyte captures; a
  // skewed or fatter capture just falls back to normal growth.
  const std::uint64_t estimated_records =
      reader.file_bytes() / (capture::wire::kRecordHeaderBytes + capture::wire::kHeadersBytes);
  for (auto& lane : partition.lane_offsets) {
    lane.reserve(static_cast<std::size_t>(estimated_records / lanes + 16));
  }
  capture::PartitionProbe probe;
  reader.for_each([&](const capture::PcapRecordView& view) {
    ++partition.records;
    if (!capture::probe_frame(view, probe)) {
      ++partition.frames_skipped;
      return;
    }
    (probe.down ? partition.down_payload_bytes : partition.up_payload_bytes) +=
        probe.payload_bytes;
    partition.lane_offsets[probe.connection_id % lanes].push_back(view.offset);
  });
  return partition;
}

std::vector<ConnectionLabel> classify_lane(const capture::MmapPcapReader& reader,
                                           const CapturePartition& partition, std::size_t lane,
                                           const ClassifyOptions& options) {
  VSTREAM_PRECONDITION(lane < partition.lane_offsets.size(), "lane out of range");
  const bool flip = options.auto_flip && partition.flipped();

  // std::map keeps connections in ascending-id order, which is both the
  // output order and what makes the merge a splice instead of a sort.
  std::map<std::uint64_t, LaneConnection> connections;
  capture::WirePacket w;
  for (const std::uint64_t offset : partition.lane_offsets[lane]) {
    const capture::PcapRecordView view = reader.record_at(offset);
    if (!capture::parse_frame(view, w)) continue;  // partition already vetted these

    auto [it, inserted] =
        connections.try_emplace(w.record.connection_id, options.report);
    LaneConnection& state = it->second;

    // Unwrap against the connection's own per-direction streams — exactly
    // what the serial reader's SeqUnwrapMap does, keyed the same way, so
    // the 64-bit sequence numbers match the serial path bit-for-bit.
    w.record.seq = state.unwrap.unwrap(w.dir_index, w.wire_seq);
    w.record.ack = state.unwrap.unwrap(1 - w.dir_index, w.wire_ack);
    if (flip) w.record.direction = net::opposite(w.record.direction);

    if (inserted) {
      state.host = w.record.host;
      state.first_s = w.record.t_s;
    }
    state.last_s = w.record.t_s;
    ++state.packets;
    state.builder.add(w.record);
  }

  std::vector<ConnectionLabel> rows;
  rows.reserve(connections.size());
  for (auto& [id, state] : connections) rows.push_back(finish_connection(id, state));
  return rows;
}

CaptureClassification merge_lanes(const CapturePartition& partition,
                                  std::vector<std::vector<ConnectionLabel>> lanes,
                                  const ClassifyOptions& options) {
  CaptureClassification merged;
  merged.records = partition.records;
  merged.direction_flipped = options.auto_flip && partition.flipped();
  const std::uint64_t down_bytes =
      merged.direction_flipped ? partition.up_payload_bytes : partition.down_payload_bytes;
  merged.down_payload_mb = static_cast<double>(down_bytes) / 1048576.0;

  std::size_t total_rows = 0;
  for (const auto& lane : lanes) total_rows += lane.size();
  merged.connections.reserve(total_rows);
  for (auto& lane : lanes) {
    for (auto& row : lane) merged.connections.push_back(std::move(row));
  }
  // Each connection lives in exactly one lane, so ids are unique and the
  // sort is a deterministic splice regardless of lane count or order.
  std::sort(merged.connections.begin(), merged.connections.end(),
            [](const ConnectionLabel& a, const ConnectionLabel& b) {
              return a.connection_id < b.connection_id;
            });

  bool any = false;
  double first_s = 0.0;
  double last_s = 0.0;
  for (const auto& row : merged.connections) {
    merged.packets += row.packets;
    if (!any || row.first_packet_s < first_s) first_s = row.first_packet_s;
    if (!any || row.last_packet_s > last_s) last_s = row.last_packet_s;
    any = true;
  }
  merged.duration_s = any ? last_s - first_s : 0.0;
  return merged;
}

CaptureClassification classify_capture_serial(const capture::MmapPcapReader& reader,
                                              const ClassifyOptions& options) {
  const CapturePartition partition = partition_capture(reader, 1);
  std::vector<std::vector<ConnectionLabel>> lanes;
  lanes.push_back(classify_lane(reader, partition, 0, options));
  return merge_lanes(partition, std::move(lanes), options);
}

std::string CaptureClassification::to_json() const {
  std::ostringstream out;
  out << "{\"records\":" << records;
  out << ",\"packets\":" << packets;
  out << ",\"duration_s\":";
  append_number(out, duration_s);
  out << ",\"down_payload_mb\":";
  append_number(out, down_payload_mb);
  out << ",\"direction_flipped\":" << (direction_flipped ? "true" : "false");
  out << ",\"connections\":[";
  bool first = true;
  for (const auto& c : connections) {
    if (!first) out << ",";
    first = false;
    out << "{\"connection\":" << c.connection_id;
    out << ",\"host\":" << static_cast<unsigned>(c.host);
    out << ",\"packets\":" << c.packets;
    out << ",\"first_packet_s\":";
    append_number(out, c.first_packet_s);
    out << ",\"last_packet_s\":";
    append_number(out, c.last_packet_s);
    out << ",\"down_payload_mb\":";
    append_number(out, c.down_payload_mb);
    out << ",\"strategy\":\"" << to_string(c.strategy) << "\"";
    out << ",\"has_steady_state\":" << (c.has_steady_state ? "true" : "false");
    out << ",\"median_block_kb\":";
    append_number(out, c.median_block_kb);
    out << ",\"median_off_s\":";
    append_number(out, c.median_off_s);
    out << ",\"cycle_period_s\":";
    append_optional_json(out, c.cycle_period_s);
    out << ",\"steady_rate_mbps\":";
    append_number(out, c.steady_rate_mbps);
    out << ",\"rtt_ms\":";
    append_optional_json(out, c.rtt_ms);
    out << ",\"median_first_rtt_kb\":";
    append_optional_json(out, c.median_first_rtt_kb);
    out << ",\"ack_clocked\":";
    if (c.ack_clocked.has_value()) {
      out << (*c.ack_clocked ? "true" : "false");
    } else {
      out << "null";
    }
    out << ",\"retransmission_pct\":";
    append_number(out, c.retransmission_pct);
    out << ",\"zero_window_episodes\":" << c.zero_window_episodes;
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::string CaptureClassification::to_csv() const {
  std::ostringstream out;
  out << "connection,host,packets,first_packet_s,last_packet_s,down_payload_mb,strategy,"
         "has_steady_state,median_block_kb,median_off_s,cycle_period_s,steady_rate_mbps,"
         "rtt_ms,median_first_rtt_kb,ack_clocked,retransmission_pct,zero_window_episodes\n";
  for (const auto& c : connections) {
    out << c.connection_id << "," << static_cast<unsigned>(c.host) << "," << c.packets << ",";
    append_csv_number(out, c.first_packet_s);
    out << ",";
    append_csv_number(out, c.last_packet_s);
    out << ",";
    append_csv_number(out, c.down_payload_mb);
    out << "," << to_string(c.strategy) << "," << (c.has_steady_state ? "true" : "false") << ",";
    append_csv_number(out, c.median_block_kb);
    out << ",";
    append_csv_number(out, c.median_off_s);
    out << ",";
    append_csv_optional(out, c.cycle_period_s);
    out << ",";
    append_csv_number(out, c.steady_rate_mbps);
    out << ",";
    append_csv_optional(out, c.rtt_ms);
    out << ",";
    append_csv_optional(out, c.median_first_rtt_kb);
    out << ",";
    if (c.ack_clocked.has_value()) out << (*c.ack_clocked ? "true" : "false");
    out << ",";
    append_csv_number(out, c.retransmission_pct);
    out << "," << c.zero_window_episodes << "\n";
  }
  return out.str();
}

std::string CaptureClassification::render() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof line,
                "capture: %llu records, %zu packets, %zu connections, %.2f MB down, %.1f s%s\n",
                static_cast<unsigned long long>(records), packets, connections.size(),
                down_payload_mb, duration_s, direction_flipped ? " (directions flipped)" : "");
  out << line;
  out << "conn  host  packets     down MB  strategy          block KB   off s  rate Mb/s  "
         "ack-clock  retx%  zero-win\n";
  for (const auto& c : connections) {
    const char* clock = c.ack_clocked.has_value() ? (*c.ack_clocked ? "yes" : "no") : "-";
    std::snprintf(line, sizeof line,
                  "%-5llu %-5u %-11zu %-8.2f %-17s %-10.1f %-7.2f %-10.2f %-10s %-6.2f %zu\n",
                  static_cast<unsigned long long>(c.connection_id), c.host, c.packets,
                  c.down_payload_mb, to_string(c.strategy).c_str(), c.median_block_kb,
                  c.median_off_s, c.steady_rate_mbps, clock, c.retransmission_pct,
                  c.zero_window_episodes);
    out << line;
  }
  return out.str();
}

}  // namespace vstream::analysis
