// Ack-clock analysis (Section 5.1.5 / Fig 9).
//
// TCP normally paces data by the arrival of ACKs. After an idle OFF period,
// an RFC 5681-compliant sender would restart from a small window and probe
// the path; the paper's key observation is that streaming servers do NOT:
// whole blocks (e.g. the full 64 kB Flash block) arrive back-to-back within
// the first round-trip of an ON period. The estimator below measures the
// bytes received during the first RTT of each steady-state ON period — a
// conservative estimate of the congestion window at the start of the ON
// period, exactly as the paper computes it.
#pragma once

#include <optional>
#include <vector>

#include "analysis/onoff.hpp"
#include "capture/trace_view.hpp"

namespace vstream::analysis {

struct AckClockOptions {
  /// RTT to use. If absent it is estimated from the trace handshake
  /// (client SYN -> server SYN-ACK).
  std::optional<double> rtt_s;
  /// Only ON periods preceded by an OFF of at least this duration count
  /// (the interesting case: did the window survive the idle gap?).
  double min_preceding_off_s{0.15};
};

/// Estimate the RTT from the first SYN/SYN-ACK pair in the trace. Returns
/// nullopt when the trace holds no complete handshake. Implemented over the
/// online `HandshakeRttTracker` — one pass, not the seed's quadratic scan.
[[nodiscard]] std::optional<double> estimate_handshake_rtt(capture::TraceView trace);

/// Bytes received within the first RTT of each qualifying ON period (the
/// samples behind the Fig 9 CDF).
[[nodiscard]] std::vector<double> first_rtt_bytes(capture::TraceView trace,
                                                  const OnOffAnalysis& analysis,
                                                  const AckClockOptions& options = {});

}  // namespace vstream::analysis
