#include "analysis/accumulators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/timeseries.hpp"

namespace vstream::analysis {

// ---------------------------------------------------------------------------
// OnOffAccumulator

OnOffAccumulator::OnOffAccumulator(const OnOffOptions& options) : options_{options} {
  if (options_.gap_threshold_s <= 0.0) {
    throw std::invalid_argument{"analyze_on_off: gap threshold must be positive"};
  }
}

std::optional<OnStartEvent> OnOffAccumulator::add(const capture::PacketRecord& p) {
  if (p.direction != net::Direction::kDown || p.payload_bytes == 0) return std::nullopt;
  acc_.total_bytes += p.payload_bytes;
  if (p.payload_bytes < options_.min_data_payload_bytes) return std::nullopt;  // probes

  std::optional<OnStartEvent> event;
  if (!in_period_) {
    in_period_ = true;
    current_ = OnPeriod{p.t_s, p.t_s, p.payload_bytes, 1};
    acc_.first_packet_s = p.t_s;
    event = OnStartEvent{p.t_s, true, 0.0};
  } else if (p.t_s - current_.end_s > options_.gap_threshold_s) {
    const double off = p.t_s - current_.end_s;
    acc_.off_durations_s.push_back(off);
    acc_.on_periods.push_back(current_);
    current_ = OnPeriod{p.t_s, p.t_s, p.payload_bytes, 1};
    event = OnStartEvent{p.t_s, false, off};
  } else {
    current_.end_s = p.t_s;
    current_.bytes += p.payload_bytes;
    ++current_.packets;
  }
  acc_.last_packet_s = p.t_s;
  return event;
}

OnOffAnalysis OnOffAccumulator::finish() const {
  OnOffAnalysis out = acc_;
  if (in_period_) out.on_periods.push_back(current_);
  if (out.on_periods.empty()) return out;

  // Buffering phase: everything before the first OFF period. With no OFF
  // period at all, the whole capture is one buffering phase (no steady
  // state) — the "no ON-OFF cycles" strategy.
  const OnPeriod& first = out.on_periods.front();
  out.buffering_bytes = first.bytes;
  out.buffering_end_s = first.end_s;

  if (out.has_steady_state()) {
    const double steady_span = out.last_packet_s - out.buffering_end_s;
    const std::uint64_t steady_bytes = out.total_bytes - out.buffering_bytes;
    out.steady_rate_bps =
        steady_span > 0.0 ? static_cast<double>(steady_bytes) * 8.0 / steady_span : 0.0;
    out.block_sizes_bytes.reserve(out.on_periods.size() - 1);
    for (std::size_t i = 1; i < out.on_periods.size(); ++i) {
      out.block_sizes_bytes.push_back(static_cast<double>(out.on_periods[i].bytes));
    }
  } else {
    out.steady_rate_bps = out.overall_rate_bps();
  }
  return out;
}

// ---------------------------------------------------------------------------
// ZeroWindowAccumulator

void ZeroWindowAccumulator::add(const capture::PacketRecord& p) {
  if (p.direction != net::Direction::kUp) return;
  if (p.window_bytes == 0) {
    if (!at_zero_) {
      ++episodes_;
      at_zero_ = true;
    }
  } else {
    at_zero_ = false;
  }
}

// ---------------------------------------------------------------------------
// RetransmissionAccumulator

void RetransmissionAccumulator::add(const capture::PacketRecord& p) {
  if (p.direction != net::Direction::kDown) return;
  total_ += p.payload_bytes;
  if (p.is_retransmission) retx_ += p.payload_bytes;
}

double RetransmissionAccumulator::fraction() const {
  return total_ == 0 ? 0.0 : static_cast<double>(retx_) / static_cast<double>(total_);
}

// ---------------------------------------------------------------------------
// HandshakeRttTracker

void HandshakeRttTracker::add(const capture::PacketRecord& p) {
  const bool syn = net::has_flag(p.flags, net::TcpFlag::kSyn);
  if (!syn) return;
  const bool ack = net::has_flag(p.flags, net::TcpFlag::kAck);
  if (p.direction == net::Direction::kUp && !ack) {
    syns_.push_back(PendingSyn{p.connection_id, p.t_s, std::nullopt});
    return;
  }
  if (p.direction == net::Direction::kDown && ack) {
    // The earliest SYN-ACK at or after each pending SYN resolves it; a SYN
    // resolved once keeps its value (first match wins, as in the batch scan).
    for (auto& s : syns_) {
      if (!s.rtt_s.has_value() && s.connection_id == p.connection_id && s.t_s <= p.t_s) {
        s.rtt_s = p.t_s - s.t_s;
      }
    }
  }
}

std::optional<double> HandshakeRttTracker::rtt_s() const {
  for (const auto& s : syns_) {
    if (s.rtt_s.has_value()) return s.rtt_s;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// FirstRttAccumulator

void FirstRttAccumulator::open_window(double start_s, std::optional<double> rtt_now) {
  Window w;
  w.bounded = rtt_now.has_value();
  w.rtt_used = rtt_now.value_or(0.0);
  w.end_s = w.bounded ? start_s + *rtt_now : start_s;
  windows_.push_back(w);
}

void FirstRttAccumulator::add_down_data(double t_s, std::uint64_t bytes) {
  // Windows open in time order and share one RTT, so they also close in
  // order; skip the closed prefix instead of rescanning it.
  while (first_open_ < windows_.size() && windows_[first_open_].bounded &&
         t_s >= windows_[first_open_].end_s) {
    ++first_open_;
  }
  for (std::size_t i = first_open_; i < windows_.size(); ++i) {
    Window& w = windows_[i];
    if (!w.bounded || t_s < w.end_s) w.bytes += bytes;
  }
}

std::vector<double> FirstRttAccumulator::samples() const {
  std::vector<double> out;
  out.reserve(windows_.size());
  for (const auto& w : windows_) out.push_back(static_cast<double>(w.bytes));
  return out;
}

bool FirstRttAccumulator::stale_against(std::optional<double> final_rtt_s) const {
  for (const auto& w : windows_) {
    if (!w.bounded) return true;
    if (!final_rtt_s.has_value() || w.rtt_used != *final_rtt_s) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// PeriodicityAccumulator

PeriodicityAccumulator::PeriodicityAccumulator(const PeriodicityOptions& options)
    : options_{options} {
  if (options_.bin_s <= 0.0 || options_.max_period_s <= options_.bin_s) {
    throw std::invalid_argument{"estimate_cycle_period: bad bin/period options"};
  }
  if (options_.steady_start_s.has_value()) {
    anchored_ = true;
    steady_start_ = *options_.steady_start_s;
  }
}

void PeriodicityAccumulator::bin_add(std::vector<double>& sums, double steady_start, double t,
                                     double amount) const {
  if (t < steady_start) return;
  const auto i = static_cast<std::size_t>((t - steady_start) / options_.bin_s);
  if (i >= sums.size()) sums.resize(i + 1, 0.0);
  sums[i] += amount;
}

void PeriodicityAccumulator::add(const capture::PacketRecord& p) {
  any_packet_ = true;
  t_end_ = std::max(t_end_, p.t_s);
  if (p.direction != net::Direction::kDown || p.payload_bytes == 0) return;

  if (anchored_) {
    bin_add(sums_, steady_start_, p.t_s, static_cast<double>(p.payload_bytes));
    return;
  }

  // Anchor not known yet: run the default-options gap machine, and keep the
  // data packets at/after the provisional ON end (probes inside a candidate
  // idle gap, plus the latest ON packet itself) so they can be replayed into
  // the bins once the anchor is fixed.
  const auto event = onoff_.add(p);
  const bool probe = p.payload_bytes < onoff_.options().min_data_payload_bytes;
  if (event.has_value() && !event->first_period) {
    // First confirmed OFF period: the steady state starts where that gap
    // began — the batch pass's `buffering_end_s`.
    anchored_ = true;
    steady_start_ = event->start_s - event->preceding_off_s;
    for (const auto& [t, bytes] : gap_buffer_) bin_add(sums_, steady_start_, t, bytes);
    gap_buffer_.clear();
    bin_add(sums_, steady_start_, p.t_s, static_cast<double>(p.payload_bytes));
    return;
  }
  if (!probe) {
    // ON period started or extended: the provisional end moves to this
    // packet, anything strictly before it can no longer reach the bins.
    provisional_end_ = p.t_s;
    const auto keep = std::find_if(gap_buffer_.begin(), gap_buffer_.end(),
                                   [this](const std::pair<double, double>& e) {
                                     return e.first >= provisional_end_;
                                   });
    gap_buffer_.erase(gap_buffer_.begin(), keep);
  }
  gap_buffer_.emplace_back(p.t_s, static_cast<double>(p.payload_bytes));
}

PeriodicityResult PeriodicityAccumulator::finish() const {
  PeriodicityResult result;
  if (!any_packet_) return result;

  // Resolve the anchor and bin sums. If no OFF period was ever confirmed
  // the buffering phase never ended: the anchor is the end of the single ON
  // period (or 0 with no data at all), and the only packets at/after it are
  // still in the gap buffer.
  double steady_start = steady_start_;
  std::vector<double> sums = sums_;
  if (!anchored_) {
    steady_start = onoff_.finish().buffering_end_s;
    for (const auto& [t, bytes] : gap_buffer_) bin_add(sums, steady_start, t, bytes);
  }

  if (t_end_ - steady_start < 4.0 * options_.bin_s) return result;

  // Size the series exactly as the batch RateBinner does over
  // [steady_start, t_end): ceil of the span, dropping anything past it.
  const auto bins =
      static_cast<std::size_t>(std::ceil((t_end_ - steady_start) / options_.bin_s));
  sums.resize(bins, 0.0);
  std::vector<double> values;
  values.reserve(sums.size());
  for (const double s : sums) values.push_back(s / options_.bin_s);
  result.bins_analysed = values.size();

  // A throttled stream idles for most of its steady state; a bulk transfer
  // has essentially no idle bins. Require real OFF structure before calling
  // the trace periodic, or TCP rate jitter can masquerade as a cycle.
  double peak = 0.0;
  for (const double v : values) peak = std::max(peak, v);
  if (peak <= 0.0) return result;
  std::size_t idle_bins = 0;
  for (const double v : values) {
    if (v < 0.05 * peak) ++idle_bins;
  }
  if (static_cast<double>(idle_bins) < 0.15 * static_cast<double>(values.size())) return result;

  const auto max_lag = static_cast<std::size_t>(options_.max_period_s / options_.bin_s);
  const auto acf = stats::autocorrelation(values, max_lag);
  if (acf.empty()) return result;

  const std::size_t period_bins = stats::dominant_period_bins(acf);
  if (period_bins == 0) return result;

  result.periodic = true;
  result.period_s = static_cast<double>(period_bins) * options_.bin_s;
  result.correlation = acf[period_bins];
  return result;
}

// ---------------------------------------------------------------------------
// FlowAccumulator

void FlowAccumulator::add(const capture::PacketRecord& p) {
  auto [it, inserted] = by_id_.try_emplace(p.connection_id);
  FlowRecord& f = it->second;
  if (inserted) {
    f.connection_id = p.connection_id;
    f.first_packet_s = p.t_s;
  }
  f.last_packet_s = p.t_s;

  const bool syn = net::has_flag(p.flags, net::TcpFlag::kSyn);
  const bool ack = net::has_flag(p.flags, net::TcpFlag::kAck);
  if (syn) f.saw_syn = true;
  if (net::has_flag(p.flags, net::TcpFlag::kFin)) f.saw_fin = true;

  if (p.direction == net::Direction::kUp && syn && !ack) {
    syn_time_[p.connection_id] = p.t_s;
  }
  if (p.direction == net::Direction::kDown && syn && ack && !f.handshake_rtt_s.has_value()) {
    if (const auto t0 = syn_time_.find(p.connection_id); t0 != syn_time_.end()) {
      f.handshake_rtt_s = p.t_s - t0->second;
    }
  }

  if (p.direction == net::Direction::kDown) {
    f.down_payload_bytes += p.payload_bytes;
    ++f.down_packets;
    if (p.is_retransmission) f.retransmitted_bytes += p.payload_bytes;
  } else {
    f.up_payload_bytes += p.payload_bytes;
    ++f.up_packets;
  }
}

FlowTable FlowAccumulator::finish() const {
  FlowTable table;
  table.flows.reserve(by_id_.size());
  for (const auto& [id, flow] : by_id_) table.flows.push_back(flow);
  std::sort(table.flows.begin(), table.flows.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.first_packet_s < b.first_packet_s;
            });
  return table;
}

}  // namespace vstream::analysis
