// Streaming-strategy classification (Section 3 / Table 1).
//
// The paper distinguishes the strategies by the existence of a steady-state
// phase and by the block size transferred per ON period, with 2.5 MB as the
// short/long boundary. The iPad YouTube client mixes strategies ("Multiple"
// in Table 1): many successive range-request connections whose per-cycle
// amounts straddle the boundary.
#pragma once

#include <string>

#include "analysis/onoff.hpp"

namespace vstream::analysis {

enum class Strategy : std::uint8_t {
  kNoOnOff,    ///< bulk TCP transfer, no steady state
  kShortOnOff, ///< steady-state blocks <= 2.5 MB
  kLongOnOff,  ///< steady-state blocks > 2.5 MB
  kMultiple,   ///< combination of strategies (iPad, Section 5.1.3)
};

[[nodiscard]] std::string to_string(Strategy s);

/// Paper's boundary between short and long ON-OFF cycles.
inline constexpr double kShortLongBoundaryBytes = 2.5 * 1024 * 1024;

struct StrategyDecision {
  Strategy strategy{Strategy::kNoOnOff};
  double median_block_bytes{0.0};
  std::size_t cycles{0};
  std::size_t connections{0};
  std::string rationale;
};

/// Classify from an ON/OFF analysis plus the connection count (used to spot
/// the multi-connection mix). The count overload is what the streaming
/// report builder uses — it knows the count without holding a trace.
[[nodiscard]] StrategyDecision classify_strategy(const OnOffAnalysis& analysis,
                                                 std::size_t connection_count);

/// Convenience: derive the connection count from the trace view.
[[nodiscard]] StrategyDecision classify_strategy(const OnOffAnalysis& analysis,
                                                 capture::TraceView trace);

}  // namespace vstream::analysis
