#include "analysis/streaming_report.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace vstream::analysis {

StreamingReportBuilder::StreamingReportBuilder(const ReportOptions& options)
    : options_{options}, resilience_{options.resilience}, onoff_{options.onoff} {}

void StreamingReportBuilder::add(const capture::PacketRecord& p) {
  ++packets_;
  connections_.insert(p.connection_id);
  retransmissions_.add(p);
  zero_window_.add(p);
  handshake_.add(p);

  const auto event = onoff_.add(p);
  if (event.has_value() && !event->first_period &&
      event->preceding_off_s >= AckClockOptions{}.min_preceding_off_s) {
    // A steady-state ON period preceded by a qualifying OFF: open a Fig 9
    // window before counting this packet, so the window-opening packet
    // lands in its own window — exactly the batch [start, start + rtt).
    first_rtt_.open_window(event->start_s, handshake_.rtt_s());
  }
  if (p.direction == net::Direction::kDown && p.payload_bytes > 0) {
    first_rtt_.add_down_data(p.t_s, p.payload_bytes);
  }

  periodicity_.add(p);
}

SessionReport StreamingReportBuilder::finish() const {
  // Field order mirrors build_report exactly, so every floating-point
  // operation happens with the same operands in the same sequence.
  SessionReport report;
  report.label = label_;
  report.packets = packets_;
  report.connections = connections_.size();
  report.retransmission_pct = retransmissions_.fraction() * 100.0;
  report.zero_window_episodes = zero_window_.episodes();
  report.duration_s = duration_s_;

  const auto onoff = onoff_.finish();
  const auto decision = classify_strategy(onoff, connections_.size());
  report.strategy = decision.strategy;
  report.rationale = decision.rationale;
  report.buffering_end_s = onoff.buffering_end_s;
  report.buffering_mb = static_cast<double>(onoff.buffering_bytes) / 1048576.0;
  report.total_mb = static_cast<double>(onoff.total_bytes) / 1048576.0;
  report.has_steady_state = onoff.has_steady_state();
  report.steady_rate_mbps = onoff.steady_rate_bps / 1e6;
  report.median_block_kb = onoff.median_block_bytes() / 1024.0;
  report.median_off_s = onoff.median_off_s();

  const double rate = options_.encoding_bps.has_value() ? *options_.encoding_bps : encoding_bps_;
  if (rate > 0.0) {
    report.buffered_playback_s = onoff.buffered_playback_s(rate);
    if (onoff.has_steady_state()) report.accumulation_ratio = onoff.accumulation_ratio(rate);
  }

  if (const auto rtt = handshake_.rtt_s()) {
    report.rtt_ms = *rtt * 1000.0;
    if (options_.estimate_ack_clock && onoff.has_steady_state()) {
      if (*rtt <= 0.0) throw std::invalid_argument{"first_rtt_bytes: non-positive RTT"};
      const auto samples = first_rtt_.samples();
      if (!samples.empty()) report.median_first_rtt_kb = stats::median(samples) / 1024.0;
    }
  }

  if (options_.estimate_periodicity && onoff.has_steady_state()) {
    const auto periodicity = periodicity_.finish();
    if (periodicity.periodic) report.cycle_period_s = periodicity.period_s;
  }
  report.resilience = resilience_;
  return report;
}

bool StreamingReportBuilder::first_rtt_stale() const {
  return first_rtt_.stale_against(handshake_.rtt_s());
}

}  // namespace vstream::analysis
