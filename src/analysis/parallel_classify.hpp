// Parallel capture classification: the demux passes on a worker pool.
//
// `classify_capture` drives the three connection_demux passes — serial
// partition, per-lane classification fanned across the pool, serial merge —
// and is byte-identical to `classify_capture_serial` for every pool width:
// lane membership is `connection_id % lanes` with `lanes` fixed by the
// *request* (not the pool's scheduling), each lane only reads the shared
// immutable mapping, and the merge splices rows in connection order.
//
// The pool is a template parameter rather than a `runner::ParallelSweep`
// so this header can live in the analysis layer without the analysis
// library linking the runner (the dependency arrow goes runner -> analysis,
// not back). Any pool with `jobs()`, `for_each_index(count, fn)` and a
// static `current_worker()` fits; `ParallelSweep` is the intended one and
// the only one the tools instantiate.
//
// Profiling: pass a `SweepProfiler` sized for the pool and the three passes
// land in its phases — partition as kBuild on worker 0, lanes as kRun on
// the worker that ran them, merge as kMerge on worker 0 — giving the
// classifier CLI the same per-worker utilization table the sweep harness
// publishes.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "analysis/connection_demux.hpp"
#include "runner/sweep_profiler.hpp"

namespace vstream::analysis {

template <typename Pool>
[[nodiscard]] CaptureClassification classify_capture(const capture::MmapPcapReader& reader,
                                                     const Pool& pool,
                                                     const ClassifyOptions& options = {},
                                                     runner::SweepProfiler* profiler = nullptr) {
  const std::size_t lanes = pool.jobs() >= 1 ? pool.jobs() : 1;

  CapturePartition partition;
  {
    const runner::SweepProfiler::Scope scope{profiler, 0, runner::SweepPhase::kBuild};
    partition = partition_capture(reader, lanes);
  }

  std::vector<std::vector<ConnectionLabel>> lane_rows(lanes);
  pool.for_each_index(lanes, [&](std::size_t lane) {
    const runner::SweepProfiler::Scope scope{profiler, Pool::current_worker(),
                                             runner::SweepPhase::kRun};
    lane_rows[lane] = classify_lane(reader, partition, lane, options);
  });

  const runner::SweepProfiler::Scope scope{profiler, 0, runner::SweepPhase::kMerge};
  return merge_lanes(partition, std::move(lane_rows), options);
}

}  // namespace vstream::analysis
