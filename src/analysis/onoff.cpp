#include "analysis/onoff.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace vstream::analysis {

double OnOffAnalysis::overall_rate_bps() const {
  const double span = last_packet_s - first_packet_s;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(total_bytes) * 8.0 / span;
}

double OnOffAnalysis::accumulation_ratio(double encoding_bps) const {
  if (encoding_bps <= 0.0) throw std::invalid_argument{"accumulation_ratio: bad encoding rate"};
  return steady_rate_bps / encoding_bps;
}

double OnOffAnalysis::buffered_playback_s(double encoding_bps) const {
  if (encoding_bps <= 0.0) throw std::invalid_argument{"buffered_playback_s: bad encoding rate"};
  return static_cast<double>(buffering_bytes) * 8.0 / encoding_bps;
}

double OnOffAnalysis::off_time_fraction() const {
  const double span = last_packet_s - first_packet_s;
  if (span <= 0.0) return 0.0;
  double off = 0.0;
  for (const double d : off_durations_s) off += d;
  return off / span;
}

double OnOffAnalysis::median_block_bytes() const {
  if (block_sizes_bytes.empty()) return 0.0;
  return stats::median(block_sizes_bytes);
}

double OnOffAnalysis::mean_block_bytes() const {
  if (block_sizes_bytes.empty()) return 0.0;
  return stats::mean(block_sizes_bytes);
}

double OnOffAnalysis::median_off_s() const {
  if (off_durations_s.empty()) return 0.0;
  return stats::median(off_durations_s);
}

double OnOffAnalysis::max_off_s() const {
  if (off_durations_s.empty()) return 0.0;
  return stats::max(off_durations_s);
}

OnOffAnalysis analyze_on_off(const capture::PacketTrace& trace, const OnOffOptions& options) {
  if (options.gap_threshold_s <= 0.0) {
    throw std::invalid_argument{"analyze_on_off: gap threshold must be positive"};
  }
  OnOffAnalysis out;

  // Walk down-direction data packets, splitting at idle gaps.
  bool in_period = false;
  OnPeriod current;
  for (const auto& p : trace.packets) {
    if (p.direction != net::Direction::kDown || p.payload_bytes == 0) continue;
    out.total_bytes += p.payload_bytes;
    if (p.payload_bytes < options.min_data_payload_bytes) continue;  // probes
    if (!in_period) {
      in_period = true;
      current = OnPeriod{p.t_s, p.t_s, p.payload_bytes, 1};
      out.first_packet_s = p.t_s;
    } else if (p.t_s - current.end_s > options.gap_threshold_s) {
      out.off_durations_s.push_back(p.t_s - current.end_s);
      out.on_periods.push_back(current);
      current = OnPeriod{p.t_s, p.t_s, p.payload_bytes, 1};
    } else {
      current.end_s = p.t_s;
      current.bytes += p.payload_bytes;
      ++current.packets;
    }
    out.last_packet_s = p.t_s;
  }
  if (in_period) out.on_periods.push_back(current);

  if (out.on_periods.empty()) return out;

  // Buffering phase: everything before the first OFF period. With no OFF
  // period at all, the whole capture is one buffering phase (no steady
  // state) — the "no ON-OFF cycles" strategy.
  const OnPeriod& first = out.on_periods.front();
  out.buffering_bytes = first.bytes;
  out.buffering_end_s = first.end_s;

  if (out.has_steady_state()) {
    const double steady_span = out.last_packet_s - out.buffering_end_s;
    const std::uint64_t steady_bytes = out.total_bytes - out.buffering_bytes;
    out.steady_rate_bps =
        steady_span > 0.0 ? static_cast<double>(steady_bytes) * 8.0 / steady_span : 0.0;
    out.block_sizes_bytes.reserve(out.on_periods.size() - 1);
    for (std::size_t i = 1; i < out.on_periods.size(); ++i) {
      out.block_sizes_bytes.push_back(static_cast<double>(out.on_periods[i].bytes));
    }
  } else {
    out.steady_rate_bps = out.overall_rate_bps();
  }
  return out;
}

std::size_t count_zero_window_episodes(const capture::PacketTrace& trace) {
  std::size_t episodes = 0;
  bool at_zero = false;
  for (const auto& p : trace.packets) {
    if (p.direction != net::Direction::kUp) continue;
    if (p.window_bytes == 0) {
      if (!at_zero) {
        ++episodes;
        at_zero = true;
      }
    } else {
      at_zero = false;
    }
  }
  return episodes;
}

}  // namespace vstream::analysis
