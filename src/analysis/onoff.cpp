#include "analysis/onoff.hpp"

#include "analysis/accumulators.hpp"
#include "stats/descriptive.hpp"

namespace vstream::analysis {

double OnOffAnalysis::overall_rate_bps() const {
  const double span = last_packet_s - first_packet_s;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(total_bytes) * 8.0 / span;
}

double OnOffAnalysis::accumulation_ratio(double encoding_bps) const {
  if (encoding_bps <= 0.0) throw std::invalid_argument{"accumulation_ratio: bad encoding rate"};
  return steady_rate_bps / encoding_bps;
}

double OnOffAnalysis::buffered_playback_s(double encoding_bps) const {
  if (encoding_bps <= 0.0) throw std::invalid_argument{"buffered_playback_s: bad encoding rate"};
  return static_cast<double>(buffering_bytes) * 8.0 / encoding_bps;
}

double OnOffAnalysis::off_time_fraction() const {
  const double span = last_packet_s - first_packet_s;
  if (span <= 0.0) return 0.0;
  double off = 0.0;
  for (const double d : off_durations_s) off += d;
  return off / span;
}

double OnOffAnalysis::median_block_bytes() const {
  if (block_sizes_bytes.empty()) return 0.0;
  return stats::median(block_sizes_bytes);
}

double OnOffAnalysis::mean_block_bytes() const {
  if (block_sizes_bytes.empty()) return 0.0;
  return stats::mean(block_sizes_bytes);
}

double OnOffAnalysis::median_off_s() const {
  if (off_durations_s.empty()) return 0.0;
  return stats::median(off_durations_s);
}

double OnOffAnalysis::max_off_s() const {
  if (off_durations_s.empty()) return 0.0;
  return stats::max(off_durations_s);
}

OnOffAnalysis analyze_on_off(capture::TraceView trace, const OnOffOptions& options) {
  OnOffAccumulator acc{options};
  for (const auto& p : trace) acc.add(p);
  return acc.finish();
}

std::size_t count_zero_window_episodes(capture::TraceView trace) {
  ZeroWindowAccumulator acc;
  for (const auto& p : trace) acc.add(p);
  return acc.episodes();
}

}  // namespace vstream::analysis
