// JSON rendering of SessionReport and FlowTable — the machine-readable
// counterpart of the text reports, for downstream tooling. No external
// dependencies: the writer emits a small, well-formed JSON subset.
#pragma once

#include <string>

#include "analysis/flows.hpp"
#include "analysis/report.hpp"
#include "obs/metrics.hpp"

namespace vstream::analysis {

/// Render a report as a single JSON object. Optional fields appear as null.
[[nodiscard]] std::string to_json(const SessionReport& report);

/// As above, with the run's metrics-registry snapshot embedded under a
/// top-level "metrics" key (omitted when the snapshot is empty).
[[nodiscard]] std::string to_json(const SessionReport& report,
                                  const obs::MetricsSnapshot& metrics);

/// Render a flow table as a JSON array of flow objects.
[[nodiscard]] std::string to_json(const FlowTable& table);

/// Escape a string for inclusion in JSON output.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace vstream::analysis
