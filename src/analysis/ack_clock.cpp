#include "analysis/ack_clock.hpp"

#include <stdexcept>

#include "analysis/accumulators.hpp"

namespace vstream::analysis {

std::optional<double> estimate_handshake_rtt(capture::TraceView trace) {
  // Viewer-side capture: the client SYN appears on the up direction, the
  // SYN-ACK on the down direction. Match per connection id.
  HandshakeRttTracker tracker;
  for (const auto& p : trace) tracker.add(p);
  return tracker.rtt_s();
}

std::vector<double> first_rtt_bytes(capture::TraceView trace,
                                    const OnOffAnalysis& analysis,
                                    const AckClockOptions& options) {
  double rtt = 0.0;
  if (options.rtt_s.has_value()) {
    rtt = *options.rtt_s;
  } else if (const auto est = estimate_handshake_rtt(trace); est.has_value()) {
    rtt = *est;
  } else {
    throw std::invalid_argument{"first_rtt_bytes: no RTT given and no handshake in trace"};
  }
  if (rtt <= 0.0) throw std::invalid_argument{"first_rtt_bytes: non-positive RTT"};

  std::vector<double> samples;
  // ON period i (i >= 1) is preceded by OFF i-1.
  for (std::size_t i = 1; i < analysis.on_periods.size(); ++i) {
    if (analysis.off_durations_s[i - 1] < options.min_preceding_off_s) continue;
    const auto& on = analysis.on_periods[i];
    const double window_end = on.start_s + rtt;
    std::uint64_t bytes = 0;
    for (const auto& p : trace) {
      if (p.direction != net::Direction::kDown || p.payload_bytes == 0) continue;
      if (p.t_s < on.start_s) continue;
      if (p.t_s >= window_end) break;
      bytes += p.payload_bytes;
    }
    samples.push_back(static_cast<double>(bytes));
  }
  return samples;
}

}  // namespace vstream::analysis
