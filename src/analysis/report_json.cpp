#include "analysis/report_json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace vstream::analysis {
namespace {

void append_number(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out << buf;
}

template <typename T>
void append_optional(std::ostringstream& out, const std::optional<T>& v) {
  if (v.has_value()) {
    append_number(out, static_cast<double>(*v));
  } else {
    out << "null";
  }
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const SessionReport& report) {
  std::ostringstream out;
  out << "{";
  out << "\"label\":\"" << json_escape(report.label) << "\",";
  out << "\"strategy\":\"" << to_string(report.strategy) << "\",";
  out << "\"rationale\":\"" << json_escape(report.rationale) << "\",";
  out << "\"buffering_end_s\":";
  append_number(out, report.buffering_end_s);
  out << ",\"buffering_mb\":";
  append_number(out, report.buffering_mb);
  out << ",\"buffered_playback_s\":";
  append_optional(out, report.buffered_playback_s);
  out << ",\"has_steady_state\":" << (report.has_steady_state ? "true" : "false");
  out << ",\"steady_rate_mbps\":";
  append_number(out, report.steady_rate_mbps);
  out << ",\"median_block_kb\":";
  append_number(out, report.median_block_kb);
  out << ",\"median_off_s\":";
  append_number(out, report.median_off_s);
  out << ",\"accumulation_ratio\":";
  append_optional(out, report.accumulation_ratio);
  out << ",\"cycle_period_s\":";
  append_optional(out, report.cycle_period_s);
  out << ",\"connections\":" << report.connections;
  out << ",\"packets\":" << report.packets;
  out << ",\"retransmission_pct\":";
  append_number(out, report.retransmission_pct);
  out << ",\"zero_window_episodes\":" << report.zero_window_episodes;
  out << ",\"rtt_ms\":";
  append_optional(out, report.rtt_ms);
  out << ",\"median_first_rtt_kb\":";
  append_optional(out, report.median_first_rtt_kb);
  out << ",\"total_mb\":";
  append_number(out, report.total_mb);
  out << ",\"duration_s\":";
  append_number(out, report.duration_s);
  const ResilienceStats& res = report.resilience;
  out << ",\"resilience\":{";
  out << "\"fetch_retries\":" << res.fetch_retries;
  out << ",\"fetch_timeouts\":" << res.fetch_timeouts;
  out << ",\"fetch_abandoned\":" << res.fetch_abandoned;
  out << ",\"rebuffer_count\":" << res.rebuffer_count;
  out << ",\"stall_count\":" << res.stall_count;
  out << ",\"stall_time_s\":";
  append_number(out, res.stall_time_s);
  out << ",\"longest_stall_s\":";
  append_number(out, res.longest_stall_s);
  out << ",\"fault_drops\":" << res.fault_drops;
  out << ",\"fault_windows\":" << res.fault_windows;
  out << ",\"rate_switches\":" << res.rate_switches;
  out << "}}";
  return out.str();
}

std::string to_json(const SessionReport& report, const obs::MetricsSnapshot& metrics) {
  std::string base = to_json(report);
  if (metrics.empty()) return base;
  base.pop_back();  // trailing '}'
  base += ",\"metrics\":";
  base += metrics.to_json();
  base += "}";
  return base;
}

std::string to_json(const FlowTable& table) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& f : table.flows) {
    if (!first) out << ",";
    first = false;
    out << "{\"connection\":" << f.connection_id;
    out << ",\"first_packet_s\":";
    append_number(out, f.first_packet_s);
    out << ",\"last_packet_s\":";
    append_number(out, f.last_packet_s);
    out << ",\"down_bytes\":" << f.down_payload_bytes;
    out << ",\"up_bytes\":" << f.up_payload_bytes;
    out << ",\"retransmitted_bytes\":" << f.retransmitted_bytes;
    out << ",\"handshake_rtt_s\":";
    append_optional(out, f.handshake_rtt_s);
    out << ",\"saw_fin\":" << (f.saw_fin ? "true" : "false") << "}";
  }
  out << "]";
  return out.str();
}

}  // namespace vstream::analysis
