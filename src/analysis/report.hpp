// One-stop session report: everything the paper's methodology extracts from
// a capture, in one struct with a text renderer. This is the API a
// downstream user typically wants — run the analyses with consistent
// options and render or consume the result.
#pragma once

#include <optional>
#include <string>

#include "analysis/ack_clock.hpp"
#include "analysis/onoff.hpp"
#include "analysis/periodicity.hpp"
#include "analysis/strategy.hpp"
#include "capture/trace_view.hpp"

namespace vstream::analysis {

struct SessionReport {
  std::string label;
  Strategy strategy{Strategy::kNoOnOff};
  std::string rationale;

  // Buffering phase.
  double buffering_end_s{0.0};
  double buffering_mb{0.0};
  std::optional<double> buffered_playback_s;  ///< needs an encoding rate

  // Steady state.
  bool has_steady_state{false};
  double steady_rate_mbps{0.0};
  double median_block_kb{0.0};
  double median_off_s{0.0};
  std::optional<double> accumulation_ratio;
  std::optional<double> cycle_period_s;  ///< autocorrelation estimate

  // Transport.
  std::size_t connections{0};
  std::size_t packets{0};
  double retransmission_pct{0.0};
  std::size_t zero_window_episodes{0};
  std::optional<double> rtt_ms;
  std::optional<double> median_first_rtt_kb;  ///< ack-clock indicator

  double total_mb{0.0};
  double duration_s{0.0};

  [[nodiscard]] std::string render() const;

  /// Exact field-wise equality — the contract between the batch and
  /// streaming paths is *identical* output, not approximately equal output,
  /// so the comparison is deliberately strict.
  friend bool operator==(const SessionReport&, const SessionReport&) = default;
};

struct ReportOptions {
  OnOffOptions onoff;
  /// Encoding rate for playback-time / accumulation-ratio entries; falls
  /// back to the trace's `encoding_bps` when absent.
  std::optional<double> encoding_bps;
  bool estimate_periodicity{true};
  bool estimate_ack_clock{true};
};

/// Batch entry point: several passes over one in-memory trace (view). The
/// single-pass equivalent is `StreamingReportBuilder` (streaming_report.hpp);
/// the two are tested field-identical on the whole scenario catalog.
[[nodiscard]] SessionReport build_report(capture::TraceView trace,
                                         const ReportOptions& options = {});

}  // namespace vstream::analysis
