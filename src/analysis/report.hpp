// One-stop session report: everything the paper's methodology extracts from
// a capture, in one struct with a text renderer. This is the API a
// downstream user typically wants — run the analyses with consistent
// options and render or consume the result.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/ack_clock.hpp"
#include "analysis/onoff.hpp"
#include "analysis/periodicity.hpp"
#include "analysis/strategy.hpp"
#include "capture/trace_view.hpp"

namespace vstream::analysis {

/// Session-side fault/recovery accounting (retries, rebuffers, fault drops).
/// Unlike every other report field this is *not* derivable from the packet
/// trace — it is supplied by the session (ReportOptions::resilience for the
/// batch path, StreamingReportBuilder::set_resilience for the streaming
/// path) and defaults to all-zero for fault-free captures.
struct ResilienceStats {
  std::uint32_t fetch_retries{0};    ///< request retries after a timeout
  std::uint32_t fetch_timeouts{0};   ///< no-progress watchdog firings
  std::uint32_t fetch_abandoned{0};  ///< fetches completed short (budget spent)
  std::uint32_t rebuffer_count{0};   ///< stalls playback recovered from
  std::uint32_t stall_count{0};
  double stall_time_s{0.0};
  double longest_stall_s{0.0};
  std::uint64_t fault_drops{0};      ///< packets dropped by blackout windows
  std::uint64_t fault_windows{0};    ///< impairment windows that began
  std::size_t rate_switches{0};      ///< adaptive ladder moves (any direction)

  [[nodiscard]] bool any() const {
    return fetch_retries != 0 || fetch_timeouts != 0 || fetch_abandoned != 0 ||
           rebuffer_count != 0 || stall_count != 0 || stall_time_s > 0.0 || fault_drops != 0 ||
           fault_windows != 0 || rate_switches != 0;
  }

  friend bool operator==(const ResilienceStats&, const ResilienceStats&) = default;
};

struct SessionReport {
  std::string label;
  Strategy strategy{Strategy::kNoOnOff};
  std::string rationale;

  // Buffering phase.
  double buffering_end_s{0.0};
  double buffering_mb{0.0};
  std::optional<double> buffered_playback_s;  ///< needs an encoding rate

  // Steady state.
  bool has_steady_state{false};
  double steady_rate_mbps{0.0};
  double median_block_kb{0.0};
  double median_off_s{0.0};
  std::optional<double> accumulation_ratio;
  std::optional<double> cycle_period_s;  ///< autocorrelation estimate

  // Transport.
  std::size_t connections{0};
  std::size_t packets{0};
  double retransmission_pct{0.0};
  std::size_t zero_window_episodes{0};
  std::optional<double> rtt_ms;
  std::optional<double> median_first_rtt_kb;  ///< ack-clock indicator

  double total_mb{0.0};
  double duration_s{0.0};

  // Fault injection & recovery (session-supplied, zero when fault-free).
  ResilienceStats resilience;

  [[nodiscard]] std::string render() const;

  /// Exact field-wise equality — the contract between the batch and
  /// streaming paths is *identical* output, not approximately equal output,
  /// so the comparison is deliberately strict.
  friend bool operator==(const SessionReport&, const SessionReport&) = default;
};

struct ReportOptions {
  OnOffOptions onoff;
  /// Encoding rate for playback-time / accumulation-ratio entries; falls
  /// back to the trace's `encoding_bps` when absent.
  std::optional<double> encoding_bps;
  bool estimate_periodicity{true};
  bool estimate_ack_clock{true};
  /// Session-side recovery accounting to embed verbatim in the report (the
  /// packet trace cannot supply it). Leave defaulted for fault-free runs.
  ResilienceStats resilience;
};

/// Batch entry point: several passes over one in-memory trace (view). The
/// single-pass equivalent is `StreamingReportBuilder` (streaming_report.hpp);
/// the two are tested field-identical on the whole scenario catalog.
[[nodiscard]] SessionReport build_report(capture::TraceView trace,
                                         const ReportOptions& options = {});

}  // namespace vstream::analysis
