// Single-pass session report: the streaming counterpart of `build_report`.
//
// A `StreamingReportBuilder` consumes `PacketRecord`s one at a time — from
// a live `TraceRecorder` sink or a pcap read loop — and assembles the same
// `SessionReport` the batch path produces, without ever materializing the
// trace. Memory scales with ON/OFF cycles and TCP connections, not packets
// (see DESIGN.md §9), which is what lets a 10k-session sweep or a
// multi-hour capture run in constant space per session.
//
// Equivalence contract: `finish()` is field-identical to
// `build_report(trace, options)` over the same record stream, provided the
// handshake RTT estimate is final before the first qualifying steady-state
// ON period (true whenever the video connection's handshake completes
// before data flows — every catalog scenario; `first_rtt_stale()` reports
// the exception). The equivalence tests in tests/streaming_report_test.cpp
// enforce this across the whole scenario catalog and randomized traces.
#pragma once

#include <set>
#include <string>

#include "analysis/accumulators.hpp"
#include "analysis/report.hpp"

namespace vstream::analysis {

class StreamingReportBuilder {
 public:
  explicit StreamingReportBuilder(const ReportOptions& options = {});

  /// Metadata the batch path reads off the trace; set any time before
  /// `finish()`.
  void set_label(std::string label) { label_ = std::move(label); }
  void set_encoding_bps(double bps) { encoding_bps_ = bps; }
  void set_duration_s(double s) { duration_s_ = s; }
  /// Session-side recovery accounting, mirroring ReportOptions::resilience
  /// on the batch path (packets cannot supply it on either path).
  void set_resilience(const ResilienceStats& r) { resilience_ = r; }

  /// Process one record, in capture order.
  void add(const capture::PacketRecord& p);

  /// Assemble the report. Idempotent; `add` may not be called afterwards.
  [[nodiscard]] SessionReport finish() const;

  /// True when a first-RTT window opened before the handshake RTT estimate
  /// settled — the one case where `finish()` is best-effort instead of
  /// batch-identical (see file comment).
  [[nodiscard]] bool first_rtt_stale() const;

  [[nodiscard]] std::size_t packets_seen() const { return packets_; }

 private:
  ReportOptions options_;
  std::string label_;
  double encoding_bps_{0.0};
  double duration_s_{0.0};
  ResilienceStats resilience_;

  std::size_t packets_{0};
  std::set<std::uint64_t> connections_;
  RetransmissionAccumulator retransmissions_;
  ZeroWindowAccumulator zero_window_;
  OnOffAccumulator onoff_;
  HandshakeRttTracker handshake_;
  FirstRttAccumulator first_rtt_;
  PeriodicityAccumulator periodicity_;
};

}  // namespace vstream::analysis
