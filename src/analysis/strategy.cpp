#include "analysis/strategy.hpp"

#include <algorithm>

namespace vstream::analysis {

std::string to_string(Strategy s) {
  switch (s) {
    case Strategy::kNoOnOff:
      return "No";
    case Strategy::kShortOnOff:
      return "Short";
    case Strategy::kLongOnOff:
      return "Long";
    case Strategy::kMultiple:
      return "Multiple";
  }
  return "?";
}

StrategyDecision classify_strategy(const OnOffAnalysis& analysis,
                                   capture::TraceView trace) {
  return classify_strategy(analysis, trace.connection_count());
}

StrategyDecision classify_strategy(const OnOffAnalysis& analysis,
                                   std::size_t connection_count) {
  StrategyDecision d;
  d.cycles = analysis.block_sizes_bytes.size();
  d.connections = connection_count;
  d.median_block_bytes = analysis.median_block_bytes();

  // Bulk transfers masquerade in two ways: an essentially continuous
  // transfer whose only gaps are loss-recovery stalls (tiny OFF fraction),
  // and a transfer that completed early with a couple of stall gaps (few
  // "cycles" over a short span). Real throttling either produces many
  // cycles, or — when the cycles are genuinely long — OFF periods of many
  // seconds, far beyond any RTO-backoff stall.
  const bool sparse_cycles = d.cycles < 4;
  if (!analysis.has_steady_state() || analysis.off_time_fraction() < 0.05 ||
      (sparse_cycles && analysis.median_off_s() < 5.0)) {
    d.strategy = Strategy::kNoOnOff;
    d.rationale = "no sustained steady-state phase observed";
    return d;
  }

  if (d.median_block_bytes > kShortLongBoundaryBytes) {
    d.strategy = Strategy::kLongOnOff;
    d.rationale = "median steady-state block > 2.5 MB";
    return d;
  }

  // Mixed strategy (iPad, Section 5.1.3): typical cycles are short, but the
  // session periodically re-enters a buffering phase — very large chunks on
  // top of many successive connections.
  const double max_block = *std::max_element(analysis.block_sizes_bytes.begin(),
                                             analysis.block_sizes_bytes.end());
  if (d.connections >= 5 && max_block >= 2.0 * kShortLongBoundaryBytes) {
    d.strategy = Strategy::kMultiple;
    d.rationale = "short cycles mixed with periodic buffering chunks over many connections";
    return d;
  }

  d.strategy = Strategy::kShortOnOff;
  d.rationale = "median steady-state block <= 2.5 MB";
  return d;
}

}  // namespace vstream::analysis
