// Incremental (single-pass, online) counterparts of the batch analyses.
//
// Each accumulator consumes `PacketRecord`s one at a time — from a
// `TraceRecorder` sink, a pcap read loop, or a `TraceView` walk — and
// reproduces its batch function's output exactly: the batch entry points
// (`analyze_on_off`, `build_flow_table`, `estimate_handshake_rtt`,
// `estimate_cycle_period`) are thin wrappers that feed an accumulator, so
// the two paths cannot diverge. Memory scales with the number of ON/OFF
// cycles and TCP connections, never with the number of packets — the
// property that lets a sweep analyze tens of thousands of sessions, or a
// multi-hour capture, without materializing any trace.
//
// The per-packet state machines mirror the paper's §5 methodology: an OFF
// period is an idle gap in down-direction data, the buffering phase ends at
// the first OFF period, block size is the per-ON-period byte count.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/flows.hpp"
#include "analysis/onoff.hpp"
#include "analysis/periodicity.hpp"
#include "capture/trace.hpp"

namespace vstream::analysis {

/// Emitted by `OnOffAccumulator::add` when the packet just processed opened
/// a new ON period. Lets downstream consumers (the ack-clock window
/// accumulator) react to cycle boundaries without re-deriving the gap state
/// machine.
struct OnStartEvent {
  double start_s{0.0};
  bool first_period{false};    ///< no preceding OFF (buffering phase start)
  double preceding_off_s{0.0}; ///< OFF duration before this ON; 0 for the first
};

/// Online ON/OFF cycle analysis (§5). `analyze_on_off` == feed + finish.
class OnOffAccumulator {
 public:
  explicit OnOffAccumulator(const OnOffOptions& options = {});

  /// Process one record. Returns the cycle-boundary event when this packet
  /// started a new ON period.
  std::optional<OnStartEvent> add(const capture::PacketRecord& p);

  /// Close the current ON period and derive the buffering / steady-state
  /// summary. Idempotent (state is copied, not consumed).
  [[nodiscard]] OnOffAnalysis finish() const;

  [[nodiscard]] const OnOffOptions& options() const { return options_; }

 private:
  OnOffOptions options_;
  OnOffAnalysis acc_;  // closed periods, off durations, running totals
  bool in_period_{false};
  OnPeriod current_;
};

/// Online zero-window episode counter (rising edges of `window_bytes == 0`
/// on the up direction) — `count_zero_window_episodes` == feed + episodes.
class ZeroWindowAccumulator {
 public:
  void add(const capture::PacketRecord& p);
  [[nodiscard]] std::size_t episodes() const { return episodes_; }

 private:
  std::size_t episodes_{0};
  bool at_zero_{false};
};

/// Online down-direction retransmission fraction.
class RetransmissionAccumulator {
 public:
  void add(const capture::PacketRecord& p);
  [[nodiscard]] std::uint64_t down_payload_bytes() const { return total_; }
  [[nodiscard]] double fraction() const;

 private:
  std::uint64_t total_{0};
  std::uint64_t retx_{0};
};

/// Online handshake-RTT estimate: client SYNs (up, SYN without ACK) are
/// queued in arrival order; each down SYN-ACK resolves every still-pending
/// SYN of its connection. The answer is the first SYN in arrival order that
/// found a match — exactly what the batch scan returns, in O(packets x
/// connections) instead of the seed's O(packets^2).
class HandshakeRttTracker {
 public:
  void add(const capture::PacketRecord& p);

  /// Current best estimate; may change while unmatched SYNs precede the
  /// first matched one, and is final once the head-of-queue SYN matches.
  [[nodiscard]] std::optional<double> rtt_s() const;

 private:
  struct PendingSyn {
    std::uint64_t connection_id{0};
    double t_s{0.0};
    std::optional<double> rtt_s;
  };
  std::vector<PendingSyn> syns_;
};

/// Online first-RTT byte windows (§5.1.5 / Fig 9): one window per
/// steady-state ON period preceded by a qualifying OFF, summing all
/// down-direction data bytes in [start, start + rtt). The owner opens
/// windows from `OnOffAccumulator` cycle events and feeds every down data
/// record. Windows use the RTT known when they open; if the handshake
/// estimate later changes (`stale_against` reports it), the samples are
/// best-effort rather than batch-identical — impossible when the video
/// connection's handshake completes before steady state, i.e. every real
/// capture.
class FirstRttAccumulator {
 public:
  /// Open a window at an ON-period start. `rtt_now` absent (no handshake
  /// resolved yet) makes the window unbounded and marks the result stale.
  void open_window(double start_s, std::optional<double> rtt_now);

  /// Feed one down-direction data packet (payload > 0), the same packet
  /// stream the ON/OFF machine sees; call after `open_window` so the
  /// window-opening packet lands in its own window.
  void add_down_data(double t_s, std::uint64_t bytes);

  /// Per-window byte counts in window-open order (the Fig 9 samples).
  [[nodiscard]] std::vector<double> samples() const;

  /// True when any window was opened with an RTT that differs from the
  /// final estimate (or with none at all).
  [[nodiscard]] bool stale_against(std::optional<double> final_rtt_s) const;

 private:
  struct Window {
    double end_s{0.0};
    double rtt_used{0.0};
    std::uint64_t bytes{0};
    bool bounded{false};
  };
  std::vector<Window> windows_;
  std::size_t first_open_{0};
};

/// Online autocorrelation periodicity estimate. Replicates the batch
/// algorithm bin-for-bin: the rate-series anchor (steady-state start) is
/// discovered on the fly by an embedded default-options ON/OFF machine, and
/// down-direction data seen near a provisional ON end (zero-window probes
/// inside a candidate gap) is buffered until the gap is confirmed or
/// absorbed, so the binned series is identical to the two-pass batch one.
/// The gap buffer holds at most the data packets of one idle gap.
class PeriodicityAccumulator {
 public:
  explicit PeriodicityAccumulator(const PeriodicityOptions& options = {});

  void add(const capture::PacketRecord& p);

  [[nodiscard]] PeriodicityResult finish() const;

 private:
  void bin_add(std::vector<double>& sums, double steady_start, double t, double amount) const;

  PeriodicityOptions options_;
  OnOffAccumulator onoff_;  // default options: anchor discovery only
  bool anchored_{false};
  double steady_start_{0.0};
  double provisional_end_{0.0};
  std::vector<double> sums_;  // grows as packets land; sized exactly at finish
  std::vector<std::pair<double, double>> gap_buffer_;  // (t, bytes) at/after provisional end
  double t_end_{0.0};
  bool any_packet_{false};
};

/// Online per-connection flow table — `build_flow_table` == feed + finish.
/// Memory is O(connections).
class FlowAccumulator {
 public:
  void add(const capture::PacketRecord& p);

  /// Copy the per-connection records out, ordered by first packet time.
  [[nodiscard]] FlowTable finish() const;

 private:
  std::map<std::uint64_t, FlowRecord> by_id_;
  std::map<std::uint64_t, double> syn_time_;
};

}  // namespace vstream::analysis
