#include "analysis/flows.hpp"

#include <algorithm>
#include <cstdio>

#include "analysis/accumulators.hpp"

namespace vstream::analysis {

FlowTable build_flow_table(capture::TraceView trace) {
  FlowAccumulator acc;
  for (const auto& p : trace) acc.add(p);
  return acc.finish();
}

const FlowRecord* FlowTable::find(std::uint64_t connection_id) const {
  for (const auto& f : flows) {
    if (f.connection_id == connection_id) return &f;
  }
  return nullptr;
}

std::size_t FlowTable::concurrent_at(double t) const {
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.first_packet_s <= t && t <= f.last_packet_s) ++n;
  }
  return n;
}

std::uint64_t FlowTable::max_down_bytes() const {
  std::uint64_t best = 0;
  for (const auto& f : flows) best = std::max(best, f.down_payload_bytes);
  return best;
}

std::uint64_t FlowTable::min_down_bytes() const {
  if (flows.empty()) return 0;
  std::uint64_t best = flows.front().down_payload_bytes;
  for (const auto& f : flows) best = std::min(best, f.down_payload_bytes);
  return best;
}

std::size_t FlowTable::flows_started_before(double t_max) const {
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.first_packet_s < t_max) ++n;
  }
  return n;
}

std::string FlowTable::render() const {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof line, "%6s %9s %9s %12s %10s %8s %6s\n", "conn", "start[s]",
                "end[s]", "down[kB]", "retx[%]", "rtt[ms]", "fin");
  out += line;
  for (const auto& f : flows) {
    std::snprintf(line, sizeof line, "%6llu %9.2f %9.2f %12.1f %10.2f %8s %6s\n",
                  static_cast<unsigned long long>(f.connection_id), f.first_packet_s,
                  f.last_packet_s, static_cast<double>(f.down_payload_bytes) / 1024.0,
                  f.retransmission_fraction() * 100.0,
                  f.handshake_rtt_s.has_value()
                      ? std::to_string(static_cast<int>(*f.handshake_rtt_s * 1000.0)).c_str()
                      : "-",
                  f.saw_fin ? "yes" : "no");
    out += line;
  }
  return out;
}

}  // namespace vstream::analysis
