#include "analysis/flows.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace vstream::analysis {

FlowTable build_flow_table(const capture::PacketTrace& trace) {
  std::map<std::uint64_t, FlowRecord> by_id;
  std::map<std::uint64_t, double> syn_time;

  for (const auto& p : trace.packets) {
    auto [it, inserted] = by_id.try_emplace(p.connection_id);
    FlowRecord& f = it->second;
    if (inserted) {
      f.connection_id = p.connection_id;
      f.first_packet_s = p.t_s;
    }
    f.last_packet_s = p.t_s;

    const bool syn = net::has_flag(p.flags, net::TcpFlag::kSyn);
    const bool ack = net::has_flag(p.flags, net::TcpFlag::kAck);
    if (syn) f.saw_syn = true;
    if (net::has_flag(p.flags, net::TcpFlag::kFin)) f.saw_fin = true;

    if (p.direction == net::Direction::kUp && syn && !ack) {
      syn_time[p.connection_id] = p.t_s;
    }
    if (p.direction == net::Direction::kDown && syn && ack &&
        !f.handshake_rtt_s.has_value()) {
      if (const auto t0 = syn_time.find(p.connection_id); t0 != syn_time.end()) {
        f.handshake_rtt_s = p.t_s - t0->second;
      }
    }

    if (p.direction == net::Direction::kDown) {
      f.down_payload_bytes += p.payload_bytes;
      ++f.down_packets;
      if (p.is_retransmission) f.retransmitted_bytes += p.payload_bytes;
    } else {
      f.up_payload_bytes += p.payload_bytes;
      ++f.up_packets;
    }
  }

  FlowTable table;
  table.flows.reserve(by_id.size());
  for (auto& [id, flow] : by_id) table.flows.push_back(flow);
  std::sort(table.flows.begin(), table.flows.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.first_packet_s < b.first_packet_s;
            });
  return table;
}

const FlowRecord* FlowTable::find(std::uint64_t connection_id) const {
  for (const auto& f : flows) {
    if (f.connection_id == connection_id) return &f;
  }
  return nullptr;
}

std::size_t FlowTable::concurrent_at(double t) const {
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.first_packet_s <= t && t <= f.last_packet_s) ++n;
  }
  return n;
}

std::uint64_t FlowTable::max_down_bytes() const {
  std::uint64_t best = 0;
  for (const auto& f : flows) best = std::max(best, f.down_payload_bytes);
  return best;
}

std::uint64_t FlowTable::min_down_bytes() const {
  if (flows.empty()) return 0;
  std::uint64_t best = flows.front().down_payload_bytes;
  for (const auto& f : flows) best = std::min(best, f.down_payload_bytes);
  return best;
}

std::size_t FlowTable::flows_started_before(double t_max) const {
  std::size_t n = 0;
  for (const auto& f : flows) {
    if (f.first_packet_s < t_max) ++n;
  }
  return n;
}

std::string FlowTable::render() const {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof line, "%6s %9s %9s %12s %10s %8s %6s\n", "conn", "start[s]",
                "end[s]", "down[kB]", "retx[%]", "rtt[ms]", "fin");
  out += line;
  for (const auto& f : flows) {
    std::snprintf(line, sizeof line, "%6llu %9.2f %9.2f %12.1f %10.2f %8s %6s\n",
                  static_cast<unsigned long long>(f.connection_id), f.first_packet_s,
                  f.last_packet_s, static_cast<double>(f.down_payload_bytes) / 1024.0,
                  f.retransmission_fraction() * 100.0,
                  f.handshake_rtt_s.has_value()
                      ? std::to_string(static_cast<int>(*f.handshake_rtt_s * 1000.0)).c_str()
                      : "-",
                  f.saw_fin ? "yes" : "no");
    out += line;
  }
  return out;
}

}  // namespace vstream::analysis
