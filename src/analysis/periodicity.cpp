#include "analysis/periodicity.hpp"

#include <stdexcept>

#include "analysis/accumulators.hpp"

namespace vstream::analysis {

double paced_cycle_duration_s(double block_bytes, double accumulation_ratio,
                              double encoding_bps) {
  if (block_bytes <= 0.0 || accumulation_ratio <= 0.0 || encoding_bps <= 0.0) {
    throw std::invalid_argument{"paced_cycle_duration_s: all inputs must be positive"};
  }
  return block_bytes * 8.0 / (accumulation_ratio * encoding_bps);
}

PeriodicityResult estimate_cycle_period(capture::TraceView trace,
                                        const PeriodicityOptions& options) {
  PeriodicityAccumulator acc{options};
  for (const auto& p : trace) acc.add(p);
  return acc.finish();
}

}  // namespace vstream::analysis
