#include "analysis/periodicity.hpp"

#include <stdexcept>

#include "stats/timeseries.hpp"

namespace vstream::analysis {

double paced_cycle_duration_s(double block_bytes, double accumulation_ratio,
                              double encoding_bps) {
  if (block_bytes <= 0.0 || accumulation_ratio <= 0.0 || encoding_bps <= 0.0) {
    throw std::invalid_argument{"paced_cycle_duration_s: all inputs must be positive"};
  }
  return block_bytes * 8.0 / (accumulation_ratio * encoding_bps);
}

PeriodicityResult estimate_cycle_period(const capture::PacketTrace& trace,
                                        const PeriodicityOptions& options) {
  if (options.bin_s <= 0.0 || options.max_period_s <= options.bin_s) {
    throw std::invalid_argument{"estimate_cycle_period: bad bin/period options"};
  }
  PeriodicityResult result;
  if (trace.empty()) return result;

  double steady_start = 0.0;
  if (options.steady_start_s.has_value()) {
    steady_start = *options.steady_start_s;
  } else {
    const auto onoff = analyze_on_off(trace);
    steady_start = onoff.buffering_end_s;
  }

  double t_end = 0.0;
  for (const auto& p : trace.packets) t_end = std::max(t_end, p.t_s);
  if (t_end - steady_start < 4.0 * options.bin_s) return result;

  stats::RateBinner binner{steady_start, t_end, options.bin_s};
  for (const auto& p : trace.packets) {
    if (p.direction != net::Direction::kDown || p.payload_bytes == 0) continue;
    binner.add(p.t_s, static_cast<double>(p.payload_bytes));
  }
  const auto series = binner.series();
  result.bins_analysed = series.size();

  // A throttled stream idles for most of its steady state; a bulk transfer
  // has essentially no idle bins. Require real OFF structure before calling
  // the trace periodic, or TCP rate jitter can masquerade as a cycle.
  double peak = 0.0;
  for (const double v : series.values) peak = std::max(peak, v);
  if (peak <= 0.0) return result;
  std::size_t idle_bins = 0;
  for (const double v : series.values) {
    if (v < 0.05 * peak) ++idle_bins;
  }
  if (static_cast<double>(idle_bins) < 0.15 * static_cast<double>(series.size())) return result;

  const auto max_lag = static_cast<std::size_t>(options.max_period_s / options.bin_s);
  const auto acf = stats::autocorrelation(series.values, max_lag);
  if (acf.empty()) return result;

  const std::size_t period_bins = stats::dominant_period_bins(acf);
  if (period_bins == 0) return result;

  result.periodic = true;
  result.period_s = static_cast<double>(period_bins) * options.bin_s;
  result.correlation = acf[period_bins];
  return result;
}

}  // namespace vstream::analysis
