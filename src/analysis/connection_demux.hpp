// Per-connection capture demux: the ingestion-side fan-out.
//
// A capture is a time-interleaved union of independent TCP connections, and
// every per-connection question the classifier asks (strategy, pacing,
// ack-clock, zero-window behaviour) depends only on that connection's own
// records, in file order. That makes the demux embarrassingly parallel in
// exactly the way the sweep engine already exploits for session worlds:
//
//   1. `partition_capture` — one serial pass over the mmapped file that
//      parses only as far as the connection id, buckets each record's file
//      offset into `connection_id % lanes`, and accumulates the global
//      payload totals the direction heuristic needs (which peer sends the
//      bulk of the payload is a whole-file question, so it is answered here,
//      before any lane runs).
//   2. `classify_lane` — each lane revisits its own offsets through the
//      shared reader (read-only, zero-copy), keeps per-connection sequence
//      unwrap state and a per-connection `StreamingReportBuilder`, and
//      finishes them into `ConnectionLabel` rows. Lanes share nothing but
//      the immutable mapping.
//   3. `merge_lanes` — rows are spliced in ascending connection order, so
//      the merged `CaptureClassification` is a pure function of the file:
//      byte-identical whether one lane ran or sixteen.
//
// The parallel driver over these three steps lives in
// analysis/parallel_classify.hpp (header-only, templated on the pool, so
// this library never links the runner).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "capture/pcap_reader.hpp"

namespace vstream::analysis {

struct ClassifyOptions {
  /// Per-connection analysis options (ON/OFF thresholds, periodicity...).
  ReportOptions report;
  /// Apply the majority-payload direction heuristic (foreign captures taken
  /// with the viewer as the "source"). Our own writer encodes direction in
  /// the addresses, making this a no-op.
  bool auto_flip{true};
};

/// Result of the partition pass: per-lane record offsets plus the
/// whole-file totals the direction heuristic and the summary need.
struct CapturePartition {
  std::vector<std::vector<std::uint64_t>> lane_offsets;
  std::uint64_t records{0};           ///< pcap records in the file
  std::uint64_t frames_skipped{0};    ///< non-IPv4/TCP or short captures
  std::uint64_t down_payload_bytes{0};
  std::uint64_t up_payload_bytes{0};

  /// True when the capture's "up" direction carries the bulk of the payload
  /// — i.e. the trace was taken with directions mirrored.
  [[nodiscard]] bool flipped() const { return up_payload_bytes > down_payload_bytes; }
};

/// One classified connection — a row of the paper's Table 1 plus the
/// transport-level columns (§4) that fall out of the same single pass.
struct ConnectionLabel {
  std::uint64_t connection_id{0};
  std::uint8_t host{0};
  std::size_t packets{0};
  double first_packet_s{0.0};
  double last_packet_s{0.0};
  double down_payload_mb{0.0};

  // Strategy (Table 1): no ON-OFF / short cycles / long cycles.
  Strategy strategy{Strategy::kNoOnOff};
  bool has_steady_state{false};
  double median_block_kb{0.0};
  double median_off_s{0.0};
  std::optional<double> cycle_period_s;

  // Pacing parameters: the server's steady-state transfer rate and how the
  // pacing is achieved (ack-clocked: the first-RTT burst is small against
  // the block, so the receiver's ack clock spreads the block out; absent
  // when the connection never produced the inputs).
  double steady_rate_mbps{0.0};
  std::optional<double> rtt_ms;
  std::optional<double> median_first_rtt_kb;
  std::optional<bool> ack_clocked;

  double retransmission_pct{0.0};
  std::size_t zero_window_episodes{0};

  friend bool operator==(const ConnectionLabel&, const ConnectionLabel&) = default;
};

/// The merged result: every connection in the capture, labelled, in
/// ascending connection-id order, plus capture-wide totals.
struct CaptureClassification {
  std::vector<ConnectionLabel> connections;
  std::uint64_t records{0};   ///< pcap records in the file
  std::size_t packets{0};     ///< decoded TCP packets across connections
  double duration_s{0.0};     ///< first decoded packet to last, capture-wide
  double down_payload_mb{0.0};
  bool direction_flipped{false};

  [[nodiscard]] std::string to_json() const;
  /// Header line + one row per connection; stable column set, `%.6g`
  /// numbers, empty cells for absent optionals.
  [[nodiscard]] std::string to_csv() const;
  /// Human-readable table for terminals.
  [[nodiscard]] std::string render() const;

  friend bool operator==(const CaptureClassification&, const CaptureClassification&) = default;
};

/// Pass 1 (serial): bucket record offsets by `connection_id % lanes` and
/// total the per-direction payload. `lanes >= 1`. Throws what the reader
/// throws on a corrupt file.
[[nodiscard]] CapturePartition partition_capture(const capture::MmapPcapReader& reader,
                                                 std::size_t lanes);

/// Pass 2 (parallel-safe): classify every connection of one lane. Distinct
/// lanes touch disjoint connections and only read the shared mapping, so
/// calls for distinct lanes are safe to run concurrently. Rows come back in
/// ascending connection-id order.
[[nodiscard]] std::vector<ConnectionLabel> classify_lane(const capture::MmapPcapReader& reader,
                                                         const CapturePartition& partition,
                                                         std::size_t lane,
                                                         const ClassifyOptions& options);

/// Pass 3 (serial): splice per-lane rows into one classification. `lanes`
/// must hold one entry per partition lane; rows merge in ascending
/// connection order, so the result is independent of lane count.
[[nodiscard]] CaptureClassification merge_lanes(const CapturePartition& partition,
                                                std::vector<std::vector<ConnectionLabel>> lanes,
                                                const ClassifyOptions& options);

/// Serial reference: the three passes back-to-back with one lane. The
/// parallel driver (parallel_classify.hpp) is tested byte-identical to this.
[[nodiscard]] CaptureClassification classify_capture_serial(const capture::MmapPcapReader& reader,
                                                            const ClassifyOptions& options = {});

}  // namespace vstream::analysis
