#include "analysis/report.hpp"

#include <cstdio>

#include "stats/descriptive.hpp"

namespace vstream::analysis {

SessionReport build_report(capture::TraceView trace, const ReportOptions& options) {
  SessionReport report;
  report.label = trace.label();
  report.packets = trace.count();
  report.connections = trace.connection_count();
  report.retransmission_pct = trace.retransmission_fraction() * 100.0;
  report.zero_window_episodes = count_zero_window_episodes(trace);
  report.duration_s = trace.duration_s();

  const auto onoff = analyze_on_off(trace, options.onoff);
  const auto decision = classify_strategy(onoff, trace);
  report.strategy = decision.strategy;
  report.rationale = decision.rationale;
  report.buffering_end_s = onoff.buffering_end_s;
  report.buffering_mb = static_cast<double>(onoff.buffering_bytes) / 1048576.0;
  report.total_mb = static_cast<double>(onoff.total_bytes) / 1048576.0;
  report.has_steady_state = onoff.has_steady_state();
  report.steady_rate_mbps = onoff.steady_rate_bps / 1e6;
  report.median_block_kb = onoff.median_block_bytes() / 1024.0;
  report.median_off_s = onoff.median_off_s();

  const double rate =
      options.encoding_bps.has_value() ? *options.encoding_bps : trace.encoding_bps();
  if (rate > 0.0) {
    report.buffered_playback_s = onoff.buffered_playback_s(rate);
    if (onoff.has_steady_state()) report.accumulation_ratio = onoff.accumulation_ratio(rate);
  }

  if (const auto rtt = estimate_handshake_rtt(trace)) {
    report.rtt_ms = *rtt * 1000.0;
    if (options.estimate_ack_clock && onoff.has_steady_state()) {
      AckClockOptions ack;
      ack.rtt_s = *rtt;
      const auto samples = first_rtt_bytes(trace, onoff, ack);
      if (!samples.empty()) report.median_first_rtt_kb = stats::median(samples) / 1024.0;
    }
  }

  if (options.estimate_periodicity && onoff.has_steady_state()) {
    const auto periodicity = estimate_cycle_period(trace);
    if (periodicity.periodic) report.cycle_period_s = periodicity.period_s;
  }
  report.resilience = options.resilience;
  return report;
}

std::string SessionReport::render() const {
  char buf[512];
  std::string out;
  const auto add = [&out, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  add("session           : %s\n", label.empty() ? "(unlabelled)" : label.c_str());
  add("strategy          : %s ON-OFF (%s)\n", to_string(strategy).c_str(), rationale.c_str());
  add("capture           : %.2f MB, %zu packets, %zu connections, %.1f s\n", total_mb, packets,
      connections, duration_s);
  add("buffering         : %.2f MB, ends at %.2f s", buffering_mb, buffering_end_s);
  if (buffered_playback_s.has_value()) add(" (%.1f s of playback)", *buffered_playback_s);
  add("\n");
  if (has_steady_state) {
    add("steady state      : %.2f Mbps, median block %.0f kB, median OFF %.2f s\n",
        steady_rate_mbps, median_block_kb, median_off_s);
    if (accumulation_ratio.has_value()) {
      add("accumulation ratio: %.2f\n", *accumulation_ratio);
    }
    if (cycle_period_s.has_value()) {
      add("cycle period      : %.2f s (autocorrelation estimate)\n", *cycle_period_s);
    }
  } else {
    add("steady state      : none (bulk transfer)\n");
  }
  add("retransmissions   : %.2f%%\n", retransmission_pct);
  add("zero-window       : %zu episodes\n", zero_window_episodes);
  if (rtt_ms.has_value()) add("handshake RTT     : %.1f ms\n", *rtt_ms);
  if (median_first_rtt_kb.has_value()) {
    add("first-RTT bytes   : %.0f kB (ack-clock indicator)\n", *median_first_rtt_kb);
  }
  if (resilience.any()) {
    add("faults            : %llu windows, %llu packets dropped in blackout\n",
        static_cast<unsigned long long>(resilience.fault_windows),
        static_cast<unsigned long long>(resilience.fault_drops));
    add("recovery          : %u timeouts, %u retries, %u abandoned\n", resilience.fetch_timeouts,
        resilience.fetch_retries, resilience.fetch_abandoned);
    add("rebuffering       : %u stalls, %u recovered, %.2f s stalled (longest %.2f s)\n",
        resilience.stall_count, resilience.rebuffer_count, resilience.stall_time_s,
        resilience.longest_stall_s);
    if (resilience.rate_switches > 0) {
      add("rate switches     : %zu (adaptive ladder)\n", resilience.rate_switches);
    }
  }
  return out;
}

}  // namespace vstream::analysis
