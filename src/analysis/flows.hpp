// Per-connection flow breakdown of a capture.
//
// The multi-connection behaviours in the paper are described per flow: the
// iPad fetched 64 kB-8 MB per connection (Section 5.1.3), Netflix used "a
// large number of TCP connections" and showed an ack clock exactly on the
// single-block connections (Section 5.2.2). This module builds the flow
// table a measurement analyst would extract from the capture.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capture/trace_view.hpp"

namespace vstream::analysis {

struct FlowRecord {
  std::uint64_t connection_id{0};
  double first_packet_s{0.0};
  double last_packet_s{0.0};
  std::uint64_t down_payload_bytes{0};
  std::uint64_t up_payload_bytes{0};
  std::size_t down_packets{0};
  std::size_t up_packets{0};
  std::uint64_t retransmitted_bytes{0};
  bool saw_syn{false};
  bool saw_fin{false};
  std::optional<double> handshake_rtt_s;

  [[nodiscard]] double duration_s() const { return last_packet_s - first_packet_s; }
  [[nodiscard]] double retransmission_fraction() const {
    return down_payload_bytes == 0
               ? 0.0
               : static_cast<double>(retransmitted_bytes) /
                     static_cast<double>(down_payload_bytes);
  }
};

struct FlowTable {
  std::vector<FlowRecord> flows;  ///< ordered by first packet time

  [[nodiscard]] std::size_t size() const { return flows.size(); }
  [[nodiscard]] const FlowRecord* find(std::uint64_t connection_id) const;

  /// Connections active (first..last packet spans t) at time t.
  [[nodiscard]] std::size_t concurrent_at(double t) const;
  /// Largest and smallest per-connection download amounts.
  [[nodiscard]] std::uint64_t max_down_bytes() const;
  [[nodiscard]] std::uint64_t min_down_bytes() const;
  /// Flows used within [0, t_max).
  [[nodiscard]] std::size_t flows_started_before(double t_max) const;

  [[nodiscard]] std::string render() const;
};

/// Implemented as a walk feeding a `FlowAccumulator`, so the batch and
/// streaming paths share one per-flow state machine.
[[nodiscard]] FlowTable build_flow_table(capture::TraceView trace);

}  // namespace vstream::analysis
