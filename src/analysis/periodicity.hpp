// Periodicity analysis: an estimator of the ON-OFF cycle duration that is
// independent of the gap-threshold heuristic.
//
// The steady-state phase of a throttled stream is periodic (Fig 1); binning
// the download rate and taking the autocorrelation recovers the cycle
// duration without choosing an idle-gap threshold. Used to cross-validate
// `analyze_on_off` and to study the threshold's sensitivity (a design
// choice DESIGN.md flags for ablation).
#pragma once

#include <optional>

#include "analysis/onoff.hpp"
#include "capture/trace_view.hpp"

namespace vstream::analysis {

struct PeriodicityOptions {
  double bin_s{0.05};          ///< rate-series bin width
  double max_period_s{120.0};  ///< longest cycle searched for
  /// Analyse only after this time (skip the buffering phase); if absent the
  /// buffering end from a quick ON/OFF pass is used.
  std::optional<double> steady_start_s;
};

struct PeriodicityResult {
  bool periodic{false};
  double period_s{0.0};          ///< dominant ON-OFF cycle duration
  double correlation{0.0};       ///< autocorrelation at the dominant period
  std::size_t bins_analysed{0};
};

/// Implemented as a walk feeding a `PeriodicityAccumulator`, so the batch
/// and streaming paths share one binning + autocorrelation pipeline.
[[nodiscard]] PeriodicityResult estimate_cycle_period(capture::TraceView trace,
                                                      const PeriodicityOptions& options = {});

/// Expected cycle duration for a paced stream: block / (ratio x encoding
/// rate) — the ground truth the estimator should recover.
[[nodiscard]] double paced_cycle_duration_s(double block_bytes, double accumulation_ratio,
                                            double encoding_bps);

}  // namespace vstream::analysis
