#include "capture/trace.hpp"

#include <set>

namespace vstream::capture {

std::uint64_t PacketTrace::down_payload_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : packets) {
    if (p.direction == net::Direction::kDown) total += p.payload_bytes;
  }
  return total;
}

std::size_t PacketTrace::connection_count() const {
  std::set<std::uint64_t> ids;
  for (const auto& p : packets) ids.insert(p.connection_id);
  return ids.size();
}

std::vector<PacketRecord> PacketTrace::in_direction(net::Direction d) const {
  std::vector<PacketRecord> out;
  out.reserve(packets.size());
  for (const auto& p : packets) {
    if (p.direction == d) out.push_back(p);
  }
  return out;
}

PacketTrace PacketTrace::only_host(std::uint8_t host) const {
  PacketTrace out;
  out.label = label;
  out.encoding_bps = encoding_bps;
  out.duration_s = duration_s;
  out.packets.reserve(packets.size());
  for (const auto& p : packets) {
    if (p.host == host) out.packets.push_back(p);
  }
  return out;
}

PacketTrace PacketTrace::without_connection(std::uint64_t connection_id) const {
  PacketTrace out;
  out.label = label;
  out.encoding_bps = encoding_bps;
  out.duration_s = duration_s;
  out.packets.reserve(packets.size());
  for (const auto& p : packets) {
    if (p.connection_id != connection_id) out.packets.push_back(p);
  }
  return out;
}

std::vector<PacketTrace::CurvePoint> PacketTrace::download_curve() const {
  std::vector<CurvePoint> curve;
  std::uint64_t total = 0;
  for (const auto& p : packets) {
    if (p.direction != net::Direction::kDown || p.payload_bytes == 0) continue;
    total += p.payload_bytes;
    curve.push_back(CurvePoint{p.t_s, total});
  }
  return curve;
}

std::vector<PacketTrace::WindowPoint> PacketTrace::receive_window_series() const {
  std::vector<WindowPoint> series;
  for (const auto& p : packets) {
    if (p.direction != net::Direction::kUp) continue;
    series.push_back(WindowPoint{p.t_s, p.window_bytes});
  }
  return series;
}

double PacketTrace::retransmission_fraction() const {
  std::uint64_t total = 0;
  std::uint64_t retx = 0;
  for (const auto& p : packets) {
    if (p.direction != net::Direction::kDown) continue;
    total += p.payload_bytes;
    if (p.is_retransmission) retx += p.payload_bytes;
  }
  return total == 0 ? 0.0 : static_cast<double>(retx) / static_cast<double>(total);
}

}  // namespace vstream::capture
