#include "capture/pcap_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <stdexcept>

#include "capture/pcap_wire.hpp"

namespace vstream::capture {

MmapPcapReader::Mapping::~Mapping() {
  if (addr != nullptr) ::munmap(addr, len);
}

MmapPcapReader::MmapPcapReader(const std::string& path) : path_{path} {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw std::runtime_error{"pcap: cannot open " + path};
  struct ::stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error{"pcap: cannot stat " + path};
  }
  size_ = static_cast<std::uint64_t>(st.st_size);

  if (size_ > 0) {
    void* mapped = ::mmap(nullptr, static_cast<std::size_t>(size_), PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped != MAP_FAILED) {
      map_.addr = mapped;
      map_.len = static_cast<std::size_t>(size_);
      data_ = static_cast<const std::uint8_t*>(mapped);
      mmapped_ = true;
      // Prefetch hint only; a failure changes nothing about correctness.
      (void)::madvise(mapped, map_.len, MADV_WILLNEED);
    }
  }
  ::close(fd);

  if (!mmapped_ && size_ > 0) {
    // Buffered fallback: one read of the whole file. Rare (mmap on a
    // regular file essentially always succeeds) but keeps the cursor API
    // total on filesystems that refuse mappings.
    fallback_.resize(size_);
    std::ifstream in{path, std::ios::binary};
    if (!in.read(reinterpret_cast<char*>(fallback_.data()),
                 static_cast<std::streamsize>(size_))) {
      throw std::runtime_error{"pcap: cannot read " + path};
    }
    data_ = fallback_.data();
  }

  parse_global_header();
}

MmapPcapReader::~MmapPcapReader() = default;

void MmapPcapReader::fail(std::uint64_t offset, const std::string& what) const {
  throw std::runtime_error{"pcap: " + path_ + " @" + std::to_string(offset) + ": " + what};
}

void MmapPcapReader::parse_global_header() {
  if (size_ < wire::kGlobalHeaderBytes) fail(0, "truncated global header");
  const std::uint32_t raw_magic = wire::get_u32le(data_, false);
  switch (raw_magic) {
    case wire::kMagicMicros:
      break;
    case wire::kMagicNanos:
      header_.nanos = true;
      break;
    case wire::kMagicMicrosSwapped:
      header_.swapped = true;
      break;
    case wire::kMagicNanosSwapped:
      header_.swapped = true;
      header_.nanos = true;
      break;
    default:
      fail(0, "bad magic");
  }
  header_.subsecond_unit = header_.nanos ? 1e-9 : 1e-6;
  header_.snaplen = wire::get_u32le(data_ + 16, header_.swapped);
  header_.linktype = wire::get_u32le(data_ + 20, header_.swapped);
  if (header_.snaplen > wire::kMaxSaneCaptureLen) {
    fail(16, "absurd snaplen " + std::to_string(header_.snaplen));
  }
  if (header_.linktype != wire::kLinkTypeEthernet) {
    fail(20, "unsupported link type " + std::to_string(header_.linktype) +
                 " (only Ethernet/1 is supported)");
  }
}

MmapPcapReader::Cursor MmapPcapReader::cursor() const {
  return Cursor{this, wire::kGlobalHeaderBytes};
}

MmapPcapReader::Cursor MmapPcapReader::cursor_at(std::uint64_t offset) const {
  return Cursor{this, offset};
}

PcapRecordView MmapPcapReader::record_at(std::uint64_t offset) const {
  PcapRecordView view;
  Cursor c{this, offset};
  if (!c.next(view)) fail(offset, "no record at offset");
  return view;
}

bool MmapPcapReader::Cursor::next(PcapRecordView& out) {
  const MmapPcapReader& r = *reader_;
  if (offset_ >= r.size_) return false;  // clean EOF
  if (r.size_ - offset_ < wire::kRecordHeaderBytes) {
    r.fail(offset_, "truncated record header");
  }
  const std::uint8_t* h = r.data_ + offset_;
  const bool swapped = r.header_.swapped;
  const std::uint32_t ts_sec = wire::get_u32le(h, swapped);
  const std::uint32_t ts_frac = wire::get_u32le(h + 4, swapped);
  const std::uint32_t incl_len = wire::get_u32le(h + 8, swapped);
  const std::uint32_t orig_len = wire::get_u32le(h + 12, swapped);
  if (incl_len > wire::kMaxSaneCaptureLen ||
      (r.header_.snaplen != 0 && incl_len > r.header_.snaplen)) {
    r.fail(offset_, "absurd record length " + std::to_string(incl_len) + " (snaplen " +
                        std::to_string(r.header_.snaplen) + ")");
  }
  if (incl_len > r.size_ - offset_ - wire::kRecordHeaderBytes) {
    r.fail(offset_, "record promises " + std::to_string(incl_len) +
                        " bytes past end of file (file is " + std::to_string(r.size_) +
                        " bytes)");
  }
  out.t_s = static_cast<double>(ts_sec) +
            static_cast<double>(ts_frac) * r.header_.subsecond_unit;
  out.frame = h + wire::kRecordHeaderBytes;
  out.incl_len = incl_len;
  out.orig_len = orig_len;
  out.offset = offset_;
  offset_ += wire::kRecordHeaderBytes + incl_len;
  return true;
}

bool parse_frame(const PcapRecordView& view, WirePacket& out) {
  using namespace wire;
  if (view.incl_len < kHeadersBytes) return false;  // not one of ours; skip
  const std::uint8_t* ip = view.frame + kEthernetBytes;
  if ((ip[0] >> 4U) != 4 || ip[9] != 6) return false;  // non-IPv4/TCP

  const std::uint8_t* tcp = view.frame + kEthernetBytes + kIpv4Bytes;
  PacketRecord& r = out.record;
  r = PacketRecord{};
  r.t_s = view.t_s;
  const std::uint32_t src_ip = get_u32be(ip + 12);
  const std::uint32_t dst_ip = get_u32be(ip + 16);
  const auto in_server_net = [](std::uint32_t addr) {
    return (addr & 0xFFFFFF00U) == (kServerIp & 0xFFFFFF00U);
  };
  r.direction = in_server_net(src_ip) ? net::Direction::kDown : net::Direction::kUp;
  const std::uint32_t server_addr = in_server_net(src_ip) ? src_ip : dst_ip;
  if (in_server_net(server_addr) && server_addr >= kServerIp) {
    r.host = static_cast<std::uint8_t>(server_addr - kServerIp);
  }
  const std::uint16_t src_port = get_u16be(tcp + 0);
  const std::uint16_t dst_port = get_u16be(tcp + 2);
  const std::uint16_t client_port = (r.direction == net::Direction::kDown) ? dst_port : src_port;
  r.connection_id = client_port >= kClientPortBase ? client_port - kClientPortBase : 0;
  out.dir_index = r.direction == net::Direction::kDown ? 0 : 1;
  out.wire_seq = get_u32be(tcp + 4);
  out.wire_ack = get_u32be(tcp + 8);
  r.flags = tcp_flags_from_bits(tcp[13]);
  r.window_bytes = static_cast<std::uint64_t>(get_u16be(tcp + 14)) << kWindowShift;
  r.is_retransmission = get_u16be(ip + 4) == 1;
  r.payload_bytes = view.orig_len >= kHeadersBytes
                        ? static_cast<std::uint32_t>(view.orig_len - kHeadersBytes)
                        : 0;
  return true;
}

bool probe_frame(const PcapRecordView& view, PartitionProbe& out) {
  using namespace wire;
  if (view.incl_len < kHeadersBytes) return false;  // not one of ours; skip
  const std::uint8_t* ip = view.frame + kEthernetBytes;
  if ((ip[0] >> 4U) != 4 || ip[9] != 6) return false;  // non-IPv4/TCP

  const std::uint8_t* tcp = view.frame + kEthernetBytes + kIpv4Bytes;
  const std::uint32_t src_ip = get_u32be(ip + 12);
  out.down = (src_ip & 0xFFFFFF00U) == (kServerIp & 0xFFFFFF00U);
  const std::uint16_t client_port = get_u16be(tcp + (out.down ? 2 : 0));
  out.connection_id = client_port >= kClientPortBase ? client_port - kClientPortBase : 0;
  out.payload_bytes = view.orig_len >= kHeadersBytes
                          ? static_cast<std::uint32_t>(view.orig_len - kHeadersBytes)
                          : 0;
  return true;
}

}  // namespace vstream::capture
