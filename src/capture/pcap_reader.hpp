// Zero-copy pcap record access: the ingestion-side twin of the sweep engine.
//
// `MmapPcapReader` maps a capture file read-only and exposes it as a record
// cursor over the mapped bytes: no per-record heap allocation, no buffered
// stream reads, no `std::function` dispatch anywhere on the hot loop. When
// the file cannot be mapped (exotic filesystem, zero-length map denied) the
// reader falls back to one buffered read of the whole file and the cursor
// walks that buffer instead — same bytes, same API, same validation.
//
// Accepted formats: classic libpcap with any of the four global-header
// magics (microsecond / nanosecond timestamps, native or byte-swapped), link
// type Ethernet. Unknown link types and absurd lengths are rejected with a
// diagnostic error instead of being silently misparsed: a record header
// promising bytes past EOF, an `incl_len` above the file's own snaplen, or a
// snaplen beyond any sane capture throws `std::runtime_error` naming the
// file and offset.
//
// Layering: the cursor yields raw `PcapRecordView`s (timestamp + frame
// bytes). `parse_frame` decodes one Ethernet/IPv4/TCP frame into a
// `PacketRecord` with *wire* (32-bit) sequence numbers, and the unwrap
// helpers turn those into 64-bit absolute offsets — split out so the
// parallel per-connection demux (analysis/connection_demux.hpp) can keep
// unwrap state per connection lane while the serial reader keeps one map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capture/trace.hpp"
#include "tcp/seqspace.hpp"

namespace vstream::capture {

/// One pcap record, pointing into the reader's mapped (or buffered) bytes.
/// Valid only while the owning `MmapPcapReader` is alive.
struct PcapRecordView {
  double t_s{0.0};                   ///< timestamp in seconds (µs or ns unit applied)
  const std::uint8_t* frame{nullptr};  ///< `incl_len` captured bytes
  std::uint32_t incl_len{0};
  std::uint32_t orig_len{0};         ///< original on-wire length
  std::uint64_t offset{0};           ///< file offset of this record's header
};

class MmapPcapReader {
 public:
  struct Header {
    bool swapped{false};       ///< byte-swapped magic: all header fields swapped
    bool nanos{false};         ///< nanosecond sub-second timestamps
    double subsecond_unit{1e-6};
    std::uint32_t snaplen{0};
    std::uint32_t linktype{0};
  };

  /// Open and validate the global header. Throws `std::runtime_error` on
  /// open/map failure, short file, unknown magic, unsupported link type or
  /// an absurd snaplen.
  explicit MmapPcapReader(const std::string& path);
  ~MmapPcapReader();

  MmapPcapReader(const MmapPcapReader&) = delete;
  MmapPcapReader& operator=(const MmapPcapReader&) = delete;

  [[nodiscard]] const Header& header() const { return header_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return size_; }
  /// False when the buffered-read fallback is active.
  [[nodiscard]] bool mmapped() const { return mmapped_; }

  /// Forward record cursor. `next` returns false at clean EOF and throws on
  /// a truncated or corrupt record; views stay valid for the reader's life.
  class Cursor {
   public:
    bool next(PcapRecordView& out);
    [[nodiscard]] std::uint64_t offset() const { return offset_; }

   private:
    friend class MmapPcapReader;
    Cursor(const MmapPcapReader* reader, std::uint64_t offset)
        : reader_{reader}, offset_{offset} {}
    const MmapPcapReader* reader_;
    std::uint64_t offset_;
  };

  /// Cursor over the whole file, positioned at the first record.
  [[nodiscard]] Cursor cursor() const;
  /// Cursor at a record-header offset previously reported by a view — the
  /// demux lanes use this to revisit their records without re-scanning.
  [[nodiscard]] Cursor cursor_at(std::uint64_t offset) const;

  /// Parse the single record whose header sits at `offset`. Throws if the
  /// offset does not hold a valid record.
  [[nodiscard]] PcapRecordView record_at(std::uint64_t offset) const;

  /// Visit every record in file order. `fn` is a template parameter, so the
  /// hot loop inlines the visitor — no `std::function` dispatch.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    PcapRecordView view;
    for (Cursor c = cursor(); c.next(view);) fn(view);
  }

 private:
  /// RAII holder for the mapping so a throwing constructor still unmaps.
  struct Mapping {
    void* addr{nullptr};
    std::size_t len{0};
    ~Mapping();
  };

  [[noreturn]] void fail(std::uint64_t offset, const std::string& what) const;
  void parse_global_header();

  std::string path_;
  Mapping map_;
  std::vector<std::uint8_t> fallback_;  ///< whole-file buffer when not mmapped
  const std::uint8_t* data_{nullptr};
  std::uint64_t size_{0};
  bool mmapped_{false};
  Header header_;
};

/// A frame decoded to a `PacketRecord` whose sequence fields are still the
/// 32-bit wire values (`record.seq` / `record.ack` are unset).
struct WirePacket {
  PacketRecord record;
  tcp::WireSeq wire_seq{0};
  tcp::WireSeq wire_ack{0};
  int dir_index{0};  ///< unwrap stream of `wire_seq`: 0 = down, 1 = up
};

/// Decode one Ethernet/IPv4/TCP frame. Returns false (leaving `out`
/// unspecified) for frames that are not ours: captures shorter than the
/// header stack, or non-IPv4/TCP payloads — the skip conditions of the
/// original buffered reader, unchanged.
[[nodiscard]] bool parse_frame(const PcapRecordView& view, WirePacket& out);

/// The minimum the demux partition pass needs from a frame: which
/// connection, which direction, how much payload. Skip conditions match
/// `parse_frame` exactly, so a record the probe accepts always decodes.
struct PartitionProbe {
  std::uint64_t connection_id{0};
  std::uint32_t payload_bytes{0};
  bool down{false};
};

/// Cheap partial decode for the partition pass: reads only the IP
/// version/protocol, source address and ports — about a third of the field
/// work of `parse_frame` — because the partition pass is the serial fraction
/// of the parallel classify pipeline and runs once per record in the file.
[[nodiscard]] bool probe_frame(const PcapRecordView& view, PartitionProbe& out);

/// Per-connection sequence unwrap state: wire values are 32-bit and wrap
/// every 4 GiB per direction; unwrap against the highest absolute value seen
/// so far on each direction stream (ACKs acknowledge the opposite
/// direction's space, so the caller picks the stream index).
class ConnectionUnwrap {
 public:
  std::uint64_t unwrap(int dir, tcp::WireSeq wire) {
    if (!seen_[dir]) {
      seen_[dir] = true;
      reference_[dir] = wire;
      return wire;
    }
    const std::uint64_t absolute = tcp::from_wire(wire, reference_[dir]);
    if (absolute > reference_[dir]) reference_[dir] = absolute;
    return absolute;
  }

 private:
  std::uint64_t reference_[2]{0, 0};
  bool seen_[2]{false, false};
};

/// Whole-capture unwrap map for serial readers: one `ConnectionUnwrap` per
/// connection id, created on first sight.
class SeqUnwrapMap {
 public:
  std::uint64_t unwrap(std::uint64_t connection_id, int dir, tcp::WireSeq wire) {
    return by_connection_[connection_id].unwrap(dir, wire);
  }

 private:
  std::map<std::uint64_t, ConnectionUnwrap> by_connection_;
};

/// Decode + unwrap one record against `unwrap`. Returns false for skipped
/// frames. This is the shared per-record step of every reader path — the
/// templated `for_each_pcap_record`, the `std::function` wrapper, and the
/// demux lanes all produce their `PacketRecord`s through it.
template <typename Unwrap>
[[nodiscard]] bool decode_record(const PcapRecordView& view, Unwrap&& unwrap,
                                 PacketRecord& out) {
  WirePacket w;
  if (!parse_frame(view, w)) return false;
  w.record.seq = unwrap(w.record.connection_id, w.dir_index, w.wire_seq);
  w.record.ack = unwrap(w.record.connection_id, 1 - w.dir_index, w.wire_ack);
  out = w.record;
  return true;
}

}  // namespace vstream::capture
