#include "capture/pcap.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "capture/pcap_wire.hpp"

namespace vstream::capture {
namespace {

using namespace wire;

/// One serialized record: 16-byte pcap record header + headers-only frame.
constexpr std::size_t kRecordBytes = kRecordHeaderBytes + kHeadersBytes;

/// Serialise one record into `out` (record header + Ethernet/IPv4/TCP
/// frame). Shared by the streaming writer and, through it, `write_pcap`.
void encode_record(const PacketRecord& p, std::array<std::uint8_t, kRecordBytes>& out) {
  out.fill(0);
  const auto ts_sec = static_cast<std::uint32_t>(p.t_s);
  const auto ts_usec = static_cast<std::uint32_t>((p.t_s - ts_sec) * 1e6);
  const auto orig_len = static_cast<std::uint32_t>(kHeadersBytes + p.payload_bytes);
  put_u32le(out.data() + 0, ts_sec);
  put_u32le(out.data() + 4, ts_usec);
  put_u32le(out.data() + 8, std::uint32_t{kHeadersBytes});  // incl_len: headers only
  put_u32le(out.data() + 12, orig_len);

  std::uint8_t* eth = out.data() + kRecordHeaderBytes;
  // MACs: 02:00:00:00:00:01 / 02:00:00:00:00:02, EtherType IPv4.
  eth[0] = 0x02;
  eth[5] = 0x01;
  eth[6] = 0x02;
  eth[11] = 0x02;
  put_u16be(eth + 12, 0x0800);

  const bool down = p.direction == net::Direction::kDown;
  std::uint8_t* ip = eth + kEthernetBytes;
  ip[0] = 0x45;  // v4, IHL 5
  put_u16be(ip + 2, static_cast<std::uint16_t>(
                        std::min<std::uint64_t>(kIpv4Bytes + kTcpBytes + p.payload_bytes,
                                                65535)));  // total length
  put_u16be(ip + 4, p.is_retransmission ? 1 : 0);          // IP ID carries retx flag
  ip[8] = 64;                                              // TTL
  ip[9] = 6;                                               // protocol TCP
  // Server address encodes the host tag: 10.0.0.(1 + host).
  const std::uint32_t server_ip = kServerIp + p.host;
  put_u32be(ip + 12, down ? server_ip : kClientIp);
  put_u32be(ip + 16, down ? kClientIp : server_ip);

  const auto client_port =
      static_cast<std::uint16_t>(kClientPortBase + (p.connection_id & 0xFFFFU));
  std::uint8_t* tcp = ip + kIpv4Bytes;
  put_u16be(tcp + 0, down ? kServerPort : client_port);
  put_u16be(tcp + 2, down ? client_port : kServerPort);
  put_u32be(tcp + 4, tcp::to_wire(p.seq));
  put_u32be(tcp + 8, tcp::to_wire(p.ack));
  tcp[12] = 5U << 4U;  // data offset 5 words
  tcp[13] = tcp_flag_bits(p.flags);
  const std::uint64_t scaled = p.window_bytes >> kWindowShift;
  put_u16be(tcp + 14, static_cast<std::uint16_t>(std::min<std::uint64_t>(scaled, 65535)));
}

}  // namespace

struct PcapWriter::Impl {
  std::vector<char> stream_buffer;
  std::ofstream out;
};

PcapWriter::PcapWriter(const std::string& path)
    : impl_{std::make_unique<Impl>()}, path_{path} {
  // A fat stream buffer keeps the per-record cost at a memcpy; the default
  // filebuf would syscall every few records at 70 bytes each.
  impl_->stream_buffer.resize(std::size_t{1} << 20U);
  impl_->out.rdbuf()->pubsetbuf(impl_->stream_buffer.data(),
                                static_cast<std::streamsize>(impl_->stream_buffer.size()));
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) throw std::runtime_error{"write_pcap: cannot open " + path};

  std::array<std::uint8_t, kGlobalHeaderBytes> header{};
  put_u32le(header.data() + 0, kMagicMicros);
  put_u16le(header.data() + 4, 2);       // version major
  put_u16le(header.data() + 6, 4);       // version minor
  put_u32le(header.data() + 8, 0);       // thiszone
  put_u32le(header.data() + 12, 0);      // sigfigs
  put_u32le(header.data() + 16, 65535);  // snaplen
  put_u32le(header.data() + 20, kLinkTypeEthernet);
  impl_->out.write(reinterpret_cast<const char*>(header.data()),
                   static_cast<std::streamsize>(header.size()));
}

PcapWriter::~PcapWriter() = default;

void PcapWriter::add(const PacketRecord& record) {
  std::array<std::uint8_t, kRecordBytes> bytes{};
  encode_record(record, bytes);
  impl_->out.write(reinterpret_cast<const char*>(bytes.data()),
                   static_cast<std::streamsize>(bytes.size()));
  ++records_;
}

void PcapWriter::close() {
  impl_->out.flush();
  if (!impl_->out) throw std::runtime_error{"write_pcap: write failed for " + path_};
  impl_->out.close();
}

void write_pcap(const PacketTrace& trace, const std::string& path) {
  PcapWriter writer{path};
  for (const auto& p : trace.packets) writer.add(p);
  writer.close();
}

void for_each_pcap_record(const std::string& path,
                          const std::function<void(const PacketRecord&)>& fn) {
  // Thin wrapper over the templated overload (a lambda, so overload
  // resolution picks the template): the std::function dispatch happens once
  // per record here and nowhere else.
  for_each_pcap_record(path, [&fn](const PacketRecord& r) { fn(r); });
}

PacketTrace read_pcap(const std::string& path) {
  PacketTrace trace;
  for_each_pcap_record(path, [&trace](const PacketRecord& r) { trace.packets.push_back(r); });
  if (!trace.packets.empty()) {
    trace.duration_s = trace.packets.back().t_s - trace.packets.front().t_s;
  }
  return trace;
}

}  // namespace vstream::capture
