#include "capture/pcap.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

#include "tcp/seqspace.hpp"

namespace vstream::capture {
namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;       // microsecond timestamps
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;  // nanosecond variant (read-supported)
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::size_t kEthernetBytes = 14;
constexpr std::size_t kIpv4Bytes = 20;
constexpr std::size_t kTcpBytes = 20;
constexpr std::size_t kHeadersBytes = kEthernetBytes + kIpv4Bytes + kTcpBytes;

constexpr std::uint32_t kServerIp = 0x0A000001;  // 10.0.0.1
constexpr std::uint32_t kClientIp = 0xC0A80102;  // 192.168.1.2
constexpr std::uint16_t kServerPort = 80;
constexpr std::uint16_t kClientPortBase = 10000;

void put_u16be(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8U);
  p[1] = static_cast<std::uint8_t>(v);
}
void put_u32be(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24U);
  p[1] = static_cast<std::uint8_t>(v >> 16U);
  p[2] = static_cast<std::uint8_t>(v >> 8U);
  p[3] = static_cast<std::uint8_t>(v);
}
std::uint16_t get_u16be(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8U) | p[1]);
}
std::uint32_t get_u32be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24U) | (static_cast<std::uint32_t>(p[1]) << 16U) |
         (static_cast<std::uint32_t>(p[2]) << 8U) | static_cast<std::uint32_t>(p[3]);
}

template <typename T>
void write_raw(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
template <typename T>
bool read_raw(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return in.gcount() == static_cast<std::streamsize>(sizeof v);
}

std::uint8_t tcp_flag_bits(net::TcpFlag flags) {
  std::uint8_t bits = 0;
  if (net::has_flag(flags, net::TcpFlag::kFin)) bits |= 0x01U;
  if (net::has_flag(flags, net::TcpFlag::kSyn)) bits |= 0x02U;
  if (net::has_flag(flags, net::TcpFlag::kRst)) bits |= 0x04U;
  if (net::has_flag(flags, net::TcpFlag::kPsh)) bits |= 0x08U;
  if (net::has_flag(flags, net::TcpFlag::kAck)) bits |= 0x10U;
  return bits;
}

net::TcpFlag tcp_flags_from_bits(std::uint8_t bits) {
  auto f = net::TcpFlag::kNone;
  if (bits & 0x01U) f = f | net::TcpFlag::kFin;
  if (bits & 0x02U) f = f | net::TcpFlag::kSyn;
  if (bits & 0x04U) f = f | net::TcpFlag::kRst;
  if (bits & 0x08U) f = f | net::TcpFlag::kPsh;
  if (bits & 0x10U) f = f | net::TcpFlag::kAck;
  return f;
}

}  // namespace

void write_pcap(const PacketTrace& trace, const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) throw std::runtime_error{"write_pcap: cannot open " + path};

  // Global header.
  write_raw(out, kMagic);
  write_raw(out, std::uint16_t{2});      // version major
  write_raw(out, std::uint16_t{4});      // version minor
  write_raw(out, std::int32_t{0});       // thiszone
  write_raw(out, std::uint32_t{0});      // sigfigs
  write_raw(out, std::uint32_t{65535});  // snaplen
  write_raw(out, kLinkTypeEthernet);

  std::array<std::uint8_t, kHeadersBytes> frame{};
  for (const auto& p : trace.packets) {
    const auto ts_sec = static_cast<std::uint32_t>(p.t_s);
    const auto ts_usec = static_cast<std::uint32_t>((p.t_s - ts_sec) * 1e6);
    const auto orig_len = static_cast<std::uint32_t>(kHeadersBytes + p.payload_bytes);
    write_raw(out, ts_sec);
    write_raw(out, ts_usec);
    write_raw(out, std::uint32_t{kHeadersBytes});  // incl_len: headers only
    write_raw(out, orig_len);

    frame.fill(0);
    std::uint8_t* eth = frame.data();
    // MACs: 02:00:00:00:00:01 / 02:00:00:00:00:02, EtherType IPv4.
    eth[0] = 0x02;
    eth[5] = 0x01;
    eth[6] = 0x02;
    eth[11] = 0x02;
    put_u16be(eth + 12, 0x0800);

    const bool down = p.direction == net::Direction::kDown;
    std::uint8_t* ip = frame.data() + kEthernetBytes;
    ip[0] = 0x45;  // v4, IHL 5
    put_u16be(ip + 2, static_cast<std::uint16_t>(
                          std::min<std::uint64_t>(kIpv4Bytes + kTcpBytes + p.payload_bytes,
                                                  65535)));  // total length
    put_u16be(ip + 4, p.is_retransmission ? 1 : 0);          // IP ID carries retx flag
    ip[8] = 64;                                              // TTL
    ip[9] = 6;                                               // protocol TCP
    // Server address encodes the host tag: 10.0.0.(1 + host).
    const std::uint32_t server_ip = kServerIp + p.host;
    put_u32be(ip + 12, down ? server_ip : kClientIp);
    put_u32be(ip + 16, down ? kClientIp : server_ip);

    const auto client_port =
        static_cast<std::uint16_t>(kClientPortBase + (p.connection_id & 0xFFFFU));
    std::uint8_t* tcp = frame.data() + kEthernetBytes + kIpv4Bytes;
    put_u16be(tcp + 0, down ? kServerPort : client_port);
    put_u16be(tcp + 2, down ? client_port : kServerPort);
    put_u32be(tcp + 4, tcp::to_wire(p.seq));
    put_u32be(tcp + 8, tcp::to_wire(p.ack));
    tcp[12] = 5U << 4U;  // data offset 5 words
    tcp[13] = tcp_flag_bits(p.flags);
    const std::uint64_t scaled = p.window_bytes >> kPcapWindowShift;
    put_u16be(tcp + 14, static_cast<std::uint16_t>(std::min<std::uint64_t>(scaled, 65535)));

    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }
  if (!out) throw std::runtime_error{"write_pcap: write failed for " + path};
}

void for_each_pcap_record(const std::string& path,
                          const std::function<void(const PacketRecord&)>& fn) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"read_pcap: cannot open " + path};

  std::uint32_t magic{};
  if (!read_raw(in, magic) || (magic != kMagic && magic != kMagicNanos)) {
    throw std::runtime_error{"read_pcap: bad magic in " + path};
  }
  const double subsecond_unit = magic == kMagicNanos ? 1e-9 : 1e-6;
  std::uint16_t vmaj{};
  std::uint16_t vmin{};
  std::int32_t zone{};
  std::uint32_t sigfigs{};
  std::uint32_t snaplen{};
  std::uint32_t linktype{};
  if (!read_raw(in, vmaj) || !read_raw(in, vmin) || !read_raw(in, zone) ||
      !read_raw(in, sigfigs) || !read_raw(in, snaplen) || !read_raw(in, linktype)) {
    throw std::runtime_error{"read_pcap: truncated global header in " + path};
  }
  if (linktype != kLinkTypeEthernet) {
    throw std::runtime_error{"read_pcap: unsupported link type in " + path};
  }

  // Wire sequence numbers are 32-bit and wrap every 4 GiB per direction;
  // unwrap them back to 64-bit absolute offsets against the highest value
  // seen so far on each (connection, direction) stream. ACKs acknowledge
  // the opposite direction's sequence space.
  std::map<std::pair<std::uint64_t, int>, std::uint64_t> seq_reference;
  const auto unwrap = [&seq_reference](std::uint64_t conn, int dir, std::uint32_t wire) {
    const auto [it, fresh] = seq_reference.try_emplace({conn, dir}, wire);
    if (fresh) return static_cast<std::uint64_t>(wire);
    const std::uint64_t absolute = tcp::from_wire(wire, it->second);
    it->second = std::max(it->second, absolute);
    return absolute;
  };
  while (true) {
    std::uint32_t ts_sec{};
    std::uint32_t ts_usec{};
    std::uint32_t incl_len{};
    std::uint32_t orig_len{};
    if (!read_raw(in, ts_sec)) break;  // clean EOF
    if (!read_raw(in, ts_usec) || !read_raw(in, incl_len) || !read_raw(in, orig_len)) {
      throw std::runtime_error{"read_pcap: truncated record header in " + path};
    }
    std::vector<std::uint8_t> frame(incl_len);
    in.read(reinterpret_cast<char*>(frame.data()), static_cast<std::streamsize>(incl_len));
    if (in.gcount() != static_cast<std::streamsize>(incl_len)) {
      throw std::runtime_error{"read_pcap: truncated frame in " + path};
    }
    if (incl_len < kHeadersBytes) continue;  // not one of ours; skip
    const std::uint8_t* ip = frame.data() + kEthernetBytes;
    if ((ip[0] >> 4U) != 4 || ip[9] != 6) continue;  // non-IPv4/TCP

    const std::uint8_t* tcp = frame.data() + kEthernetBytes + kIpv4Bytes;
    PacketRecord r;
    r.t_s = static_cast<double>(ts_sec) + static_cast<double>(ts_usec) * subsecond_unit;
    const std::uint32_t src_ip = get_u32be(ip + 12);
    const std::uint32_t dst_ip = get_u32be(ip + 16);
    const auto in_server_net = [](std::uint32_t addr) {
      return (addr & 0xFFFFFF00U) == (kServerIp & 0xFFFFFF00U);
    };
    r.direction = in_server_net(src_ip) ? net::Direction::kDown : net::Direction::kUp;
    const std::uint32_t server_addr = in_server_net(src_ip) ? src_ip : dst_ip;
    if (in_server_net(server_addr) && server_addr >= kServerIp) {
      r.host = static_cast<std::uint8_t>(server_addr - kServerIp);
    }
    const std::uint16_t src_port = get_u16be(tcp + 0);
    const std::uint16_t dst_port = get_u16be(tcp + 2);
    const std::uint16_t client_port = (r.direction == net::Direction::kDown) ? dst_port : src_port;
    r.connection_id = client_port >= kClientPortBase ? client_port - kClientPortBase : 0;
    const int dir_index = r.direction == net::Direction::kDown ? 0 : 1;
    r.seq = unwrap(r.connection_id, dir_index, get_u32be(tcp + 4));
    r.ack = unwrap(r.connection_id, 1 - dir_index, get_u32be(tcp + 8));
    r.flags = tcp_flags_from_bits(tcp[13]);
    r.window_bytes = static_cast<std::uint64_t>(get_u16be(tcp + 14)) << kPcapWindowShift;
    r.is_retransmission = get_u16be(ip + 4) == 1;
    r.payload_bytes = orig_len >= kHeadersBytes
                          ? static_cast<std::uint32_t>(orig_len - kHeadersBytes)
                          : 0;
    fn(r);
  }
}

PacketTrace read_pcap(const std::string& path) {
  PacketTrace trace;
  for_each_pcap_record(path, [&trace](const PacketRecord& r) { trace.packets.push_back(r); });
  if (!trace.packets.empty()) {
    trace.duration_s = trace.packets.back().t_s - trace.packets.front().t_s;
  }
  return trace;
}

}  // namespace vstream::capture
