#include "capture/recorder.hpp"

#include <algorithm>
#include <cmath>

#include "obs/context.hpp"

namespace vstream::capture {

TraceRecorder::TraceRecorder(sim::Simulator& sim, net::Path& path) : sim_{sim}, path_{&path} {
  path_->set_tap([this](sim::SimTime t, const net::TcpSegment& s, net::Direction d,
                        net::LinkEvent e) { on_event(t, s, d, e); });
}

TraceRecorder::~TraceRecorder() { detach(); }

void TraceRecorder::detach() {
  if (path_ != nullptr) {
    path_->set_tap({});
    path_ = nullptr;
  }
}

void TraceRecorder::reserve_for(double duration_s, double down_bps) {
  if (duration_s <= 0.0 || down_bps <= 0.0 || !store_packets_) return;
  // Data segments at full rate, roughly one viewer ACK per data segment,
  // plus slack for retransmissions and control traffic. An over-estimate
  // only costs unused capacity until `take()`; an under-estimate costs the
  // realloc cascade this hint exists to avoid.
  constexpr double kPayloadBytesPerPacket = 1460.0;
  constexpr double kPacketsPerDataSegment = 2.2;
  constexpr std::size_t kReserveCap = std::size_t{1} << 22;  // 4 Mi records ~ 288 MB
  const double data_segments = duration_s * down_bps / 8.0 / kPayloadBytesPerPacket;
  const auto expected =
      static_cast<std::size_t>(std::ceil(data_segments * kPacketsPerDataSegment));
  trace_.packets.reserve(std::min(expected, kReserveCap));
}

void TraceRecorder::publish_trace_bytes() {
  if (auto* obs = obs::context_of(sim_)) {
    obs->metrics().gauge("capture.trace_bytes")
        .set_max(static_cast<double>(trace_.packets.size() * sizeof(PacketRecord)));
  }
}

void TraceRecorder::stop() {
  recording_ = false;
  trace_.duration_s = last_t_s_ - (first_t_s_ < 0.0 ? 0.0 : first_t_s_);
  publish_trace_bytes();
}

void TraceRecorder::on_event(sim::SimTime t, const net::TcpSegment& s, net::Direction d,
                             net::LinkEvent e) {
  if (!recording_) return;
  // Viewer vantage: down segments are seen on delivery, up segments when
  // the viewer's stack puts them on the wire.
  const bool seen = (d == net::Direction::kDown && e == net::LinkEvent::kDeliver) ||
                    (d == net::Direction::kUp && e == net::LinkEvent::kTransmit);
  if (!seen) return;

  const double ts = t.to_seconds();
  if (first_t_s_ < 0.0) first_t_s_ = ts;
  last_t_s_ = ts;

  PacketRecord r;
  r.t_s = ts;
  r.direction = d;
  r.connection_id = s.connection_id;
  r.host = s.host;
  r.seq = s.seq;
  r.ack = s.ack;
  r.payload_bytes = s.payload_bytes;
  r.window_bytes = s.window_bytes;
  r.flags = s.flags;
  r.is_retransmission = s.is_retransmission;
  if (store_packets_) trace_.packets.push_back(r);
  if (sink_) sink_(r);
}

PacketTrace TraceRecorder::take() {
  stop();
  PacketTrace out = std::move(trace_);
  trace_ = PacketTrace{};
  first_t_s_ = -1.0;
  return out;
}

}  // namespace vstream::capture
