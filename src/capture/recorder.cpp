#include "capture/recorder.hpp"

namespace vstream::capture {

TraceRecorder::TraceRecorder(sim::Simulator& sim, net::Path& path) : sim_{sim}, path_{&path} {
  path_->set_tap([this](sim::SimTime t, const net::TcpSegment& s, net::Direction d,
                        net::LinkEvent e) { on_event(t, s, d, e); });
}

TraceRecorder::~TraceRecorder() { detach(); }

void TraceRecorder::detach() {
  if (path_ != nullptr) {
    path_->set_tap({});
    path_ = nullptr;
  }
}

void TraceRecorder::stop() {
  recording_ = false;
  trace_.duration_s = last_t_s_ - (first_t_s_ < 0.0 ? 0.0 : first_t_s_);
}

void TraceRecorder::on_event(sim::SimTime t, const net::TcpSegment& s, net::Direction d,
                             net::LinkEvent e) {
  if (!recording_) return;
  // Viewer vantage: down segments are seen on delivery, up segments when
  // the viewer's stack puts them on the wire.
  const bool seen = (d == net::Direction::kDown && e == net::LinkEvent::kDeliver) ||
                    (d == net::Direction::kUp && e == net::LinkEvent::kTransmit);
  if (!seen) return;

  const double ts = t.to_seconds();
  if (first_t_s_ < 0.0) first_t_s_ = ts;
  last_t_s_ = ts;

  PacketRecord r;
  r.t_s = ts;
  r.direction = d;
  r.connection_id = s.connection_id;
  r.host = s.host;
  r.seq = s.seq;
  r.ack = s.ack;
  r.payload_bytes = s.payload_bytes;
  r.window_bytes = s.window_bytes;
  r.flags = s.flags;
  r.is_retransmission = s.is_retransmission;
  trace_.packets.push_back(r);
}

PacketTrace TraceRecorder::take() {
  stop();
  PacketTrace out = std::move(trace_);
  trace_ = PacketTrace{};
  first_t_s_ = -1.0;
  return out;
}

}  // namespace vstream::capture
