// tcpdump-style textual rendering of packet traces.
//
// Renders records in the familiar one-line-per-packet format so a trace
// (simulated or loaded from pcap) can be eyeballed the way the paper's
// authors eyeballed theirs:
//   0.123456 10.0.0.1:80 > 192.168.1.2:10001: Flags [P.], seq 1:1461,
//   ack 1, win 262144, length 1460
#pragma once

#include <ostream>
#include <string>

#include "capture/trace.hpp"

namespace vstream::capture {

struct DumpOptions {
  std::size_t max_packets{0};  ///< 0 = no limit
  bool data_only{false};       ///< skip pure ACKs
};

/// One tcpdump-style line for a record.
[[nodiscard]] std::string format_packet(const PacketRecord& record);

/// Dump (a prefix of) the trace to a stream.
void dump_trace(const PacketTrace& trace, std::ostream& out, const DumpOptions& options = {});

}  // namespace vstream::capture
