// Wire-format constants and helpers shared by the pcap writer and readers.
//
// The on-disk frame layout (Ethernet + IPv4 + TCP, headers only, simulation
// metadata packed into legitimate header fields) is documented in pcap.hpp;
// this header holds the byte-level encoding both sides agree on so the
// buffered writer (pcap.cpp) and the zero-copy mmap reader (pcap_reader.cpp)
// cannot drift apart.
#pragma once

#include <cstdint>

#include "net/segment.hpp"

namespace vstream::capture::wire {

// pcap global-header magics. The writer always emits the native-order
// microsecond magic; the reader accepts all four: a capture written on an
// opposite-endian host stores every header field byte-swapped, and the
// nanosecond variants scale the sub-second timestamp field by 1e-9.
inline constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
inline constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
inline constexpr std::uint32_t kMagicMicrosSwapped = 0xd4c3b2a1;
inline constexpr std::uint32_t kMagicNanosSwapped = 0x4d3cb2a1;

inline constexpr std::uint32_t kLinkTypeEthernet = 1;

inline constexpr std::size_t kGlobalHeaderBytes = 24;
inline constexpr std::size_t kRecordHeaderBytes = 16;

inline constexpr std::size_t kEthernetBytes = 14;
inline constexpr std::size_t kIpv4Bytes = 20;
inline constexpr std::size_t kTcpBytes = 20;
inline constexpr std::size_t kHeadersBytes = kEthernetBytes + kIpv4Bytes + kTcpBytes;

// Address/port encoding of the simulation metadata (see pcap.hpp).
inline constexpr std::uint32_t kServerIp = 0x0A000001;  // 10.0.0.1
inline constexpr std::uint32_t kClientIp = 0xC0A80102;  // 192.168.1.2
inline constexpr std::uint16_t kServerPort = 80;
inline constexpr std::uint16_t kClientPortBase = 10000;

/// TCP window scale applied on the wire (as if WS=7 was negotiated);
/// re-exported as `capture::kPcapWindowShift` in pcap.hpp.
inline constexpr unsigned kWindowShift = 7;

/// Snap lengths or record lengths beyond this are treated as file corruption
/// rather than data: no sane link MTU or jumbo-frame capture comes within
/// orders of magnitude of 64 MiB, but a garbage length field routinely does,
/// and acting on one means allocating (or walking) gigabytes of nonsense.
inline constexpr std::uint32_t kMaxSaneCaptureLen = 64U * 1024U * 1024U;

inline void put_u16be(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8U);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void put_u32be(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24U);
  p[1] = static_cast<std::uint8_t>(v >> 16U);
  p[2] = static_cast<std::uint8_t>(v >> 8U);
  p[3] = static_cast<std::uint8_t>(v);
}

inline void put_u16le(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8U);
}

inline void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8U);
  p[2] = static_cast<std::uint8_t>(v >> 16U);
  p[3] = static_cast<std::uint8_t>(v >> 24U);
}

[[nodiscard]] inline std::uint16_t get_u16be(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8U) | p[1]);
}

[[nodiscard]] inline std::uint32_t get_u32be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24U) | (static_cast<std::uint32_t>(p[1]) << 16U) |
         (static_cast<std::uint32_t>(p[2]) << 8U) | static_cast<std::uint32_t>(p[3]);
}

/// Host-order u32 read from the (little-endian-written) pcap header fields,
/// honouring the byte-swapped magic.
[[nodiscard]] inline std::uint32_t get_u32le(const std::uint8_t* p, bool swapped) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8U) |
                          (static_cast<std::uint32_t>(p[2]) << 16U) |
                          (static_cast<std::uint32_t>(p[3]) << 24U);
  if (!swapped) return v;
  return ((v & 0x000000FFU) << 24U) | ((v & 0x0000FF00U) << 8U) | ((v & 0x00FF0000U) >> 8U) |
         ((v & 0xFF000000U) >> 24U);
}

[[nodiscard]] inline std::uint8_t tcp_flag_bits(net::TcpFlag flags) {
  std::uint8_t bits = 0;
  if (net::has_flag(flags, net::TcpFlag::kFin)) bits |= 0x01U;
  if (net::has_flag(flags, net::TcpFlag::kSyn)) bits |= 0x02U;
  if (net::has_flag(flags, net::TcpFlag::kRst)) bits |= 0x04U;
  if (net::has_flag(flags, net::TcpFlag::kPsh)) bits |= 0x08U;
  if (net::has_flag(flags, net::TcpFlag::kAck)) bits |= 0x10U;
  return bits;
}

[[nodiscard]] inline net::TcpFlag tcp_flags_from_bits(std::uint8_t bits) {
  auto f = net::TcpFlag::kNone;
  if (bits & 0x01U) f = f | net::TcpFlag::kFin;
  if (bits & 0x02U) f = f | net::TcpFlag::kSyn;
  if (bits & 0x04U) f = f | net::TcpFlag::kRst;
  if (bits & 0x08U) f = f | net::TcpFlag::kPsh;
  if (bits & 0x10U) f = f | net::TcpFlag::kAck;
  return f;
}

}  // namespace vstream::capture::wire
