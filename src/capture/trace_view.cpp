#include "capture/trace_view.hpp"

#include <set>

namespace vstream::capture {

std::size_t TraceView::count() const {
  if (trace_ == nullptr) return 0;
  if (filter_.pass_through()) return trace_->packets.size();
  std::size_t n = 0;
  for (const auto& p : *this) {
    (void)p;
    ++n;
  }
  return n;
}

const std::string& TraceView::label() const {
  static const std::string kEmpty;
  return trace_ == nullptr ? kEmpty : trace_->label;
}

std::uint64_t TraceView::down_payload_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : *this) {
    if (p.direction == net::Direction::kDown) total += p.payload_bytes;
  }
  return total;
}

std::size_t TraceView::connection_count() const {
  std::set<std::uint64_t> ids;
  for (const auto& p : *this) ids.insert(p.connection_id);
  return ids.size();
}

double TraceView::retransmission_fraction() const {
  std::uint64_t total = 0;
  std::uint64_t retx = 0;
  for (const auto& p : *this) {
    if (p.direction != net::Direction::kDown) continue;
    total += p.payload_bytes;
    if (p.is_retransmission) retx += p.payload_bytes;
  }
  return total == 0 ? 0.0 : static_cast<double>(retx) / static_cast<double>(total);
}

std::vector<PacketTrace::CurvePoint> TraceView::download_curve() const {
  std::vector<PacketTrace::CurvePoint> curve;
  std::uint64_t total = 0;
  for (const auto& p : *this) {
    if (p.direction != net::Direction::kDown || p.payload_bytes == 0) continue;
    total += p.payload_bytes;
    curve.push_back(PacketTrace::CurvePoint{p.t_s, total});
  }
  return curve;
}

std::vector<PacketTrace::WindowPoint> TraceView::receive_window_series() const {
  std::vector<PacketTrace::WindowPoint> series;
  for (const auto& p : *this) {
    if (p.direction != net::Direction::kUp) continue;
    series.push_back(PacketTrace::WindowPoint{p.t_s, p.window_bytes});
  }
  return series;
}

PacketTrace TraceView::materialize() const {
  PacketTrace out;
  if (trace_ == nullptr) return out;
  out.label = trace_->label;
  out.encoding_bps = trace_->encoding_bps;
  out.duration_s = trace_->duration_s;
  out.packets.reserve(trace_->packets.size());
  for (const auto& p : *this) out.packets.push_back(p);
  out.packets.shrink_to_fit();
  return out;
}

}  // namespace vstream::capture
