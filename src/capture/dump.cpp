#include "capture/dump.hpp"

#include <cstdio>

namespace vstream::capture {

std::string format_packet(const PacketRecord& r) {
  // Addresses mirror the pcap writer's encoding: server 10.0.0.(1+host),
  // client 192.168.1.2 with the connection id in the port.
  char server[32];
  std::snprintf(server, sizeof server, "10.0.0.%u:80", 1U + r.host);
  char client[32];
  std::snprintf(client, sizeof client, "192.168.1.2:%llu",
                10000ULL + static_cast<unsigned long long>(r.connection_id));

  std::string flags;
  if (net::has_flag(r.flags, net::TcpFlag::kSyn)) flags += 'S';
  if (net::has_flag(r.flags, net::TcpFlag::kFin)) flags += 'F';
  if (net::has_flag(r.flags, net::TcpFlag::kRst)) flags += 'R';
  if (net::has_flag(r.flags, net::TcpFlag::kPsh)) flags += 'P';
  if (net::has_flag(r.flags, net::TcpFlag::kAck)) flags += '.';
  if (flags.empty()) flags = "none";

  char line[256];
  const bool down = r.direction == net::Direction::kDown;
  if (r.payload_bytes > 0) {
    std::snprintf(line, sizeof line,
                  "%11.6f %s > %s: Flags [%s], seq %llu:%llu, ack %llu, win %llu, length %u%s",
                  r.t_s, down ? server : client, down ? client : server, flags.c_str(),
                  static_cast<unsigned long long>(r.seq),
                  static_cast<unsigned long long>(r.seq + r.payload_bytes),
                  static_cast<unsigned long long>(r.ack),
                  static_cast<unsigned long long>(r.window_bytes), r.payload_bytes,
                  r.is_retransmission ? " (retransmission)" : "");
  } else {
    std::snprintf(line, sizeof line,
                  "%11.6f %s > %s: Flags [%s], ack %llu, win %llu, length 0", r.t_s,
                  down ? server : client, down ? client : server, flags.c_str(),
                  static_cast<unsigned long long>(r.ack),
                  static_cast<unsigned long long>(r.window_bytes));
  }
  return line;
}

void dump_trace(const PacketTrace& trace, std::ostream& out, const DumpOptions& options) {
  std::size_t shown = 0;
  for (const auto& p : trace.packets) {
    if (options.data_only && p.payload_bytes == 0) continue;
    out << format_packet(p) << '\n';
    if (options.max_packets != 0 && ++shown >= options.max_packets) {
      out << "... (" << trace.packets.size() << " packets total)\n";
      break;
    }
  }
}

}  // namespace vstream::capture
