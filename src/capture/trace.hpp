// Packet traces: what tcpdump/windump produced in the paper's methodology.
//
// A `PacketTrace` is the single currency between the simulation (or a pcap
// file) and the analysis layer: a time-ordered list of TCP segments seen at
// the viewer's network interface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/segment.hpp"

namespace vstream::capture {

struct PacketRecord {
  double t_s{0.0};  ///< capture timestamp, seconds since trace start
  net::Direction direction{net::Direction::kDown};
  std::uint64_t connection_id{0};
  std::uint8_t host{0};  ///< server host (0 = video CDN, 1+ = auxiliary)
  std::uint64_t seq{0};
  std::uint64_t ack{0};
  std::uint32_t payload_bytes{0};
  std::uint64_t window_bytes{0};
  net::TcpFlag flags{net::TcpFlag::kNone};
  bool is_retransmission{false};
};

struct PacketTrace {
  std::string label;          ///< e.g. "YouTube/Flash/IE @ Research"
  double encoding_bps{0.0};   ///< ground-truth or estimated video rate
  double duration_s{0.0};     ///< capture duration
  std::vector<PacketRecord> packets;

  [[nodiscard]] bool empty() const { return packets.empty(); }

  /// Payload bytes travelling down (server -> viewer), first transmissions
  /// and retransmissions included.
  [[nodiscard]] std::uint64_t down_payload_bytes() const;

  /// Number of distinct TCP connections observed.
  [[nodiscard]] std::size_t connection_count() const;

  // The three copy-returning filters below are legacy: new code should use
  // `capture::TraceView` (trace_view.hpp), which expresses the same
  // restrictions without materializing anything. The `trace-copy` lint rule
  // flags fresh call sites outside src/capture.

  /// Records for one direction only, preserving order.
  [[nodiscard]] std::vector<PacketRecord> in_direction(net::Direction d) const;

  /// Copy of the trace without the given connection — used to strip tagged
  /// cross-traffic before analysis.
  [[nodiscard]] PacketTrace without_connection(std::uint64_t connection_id) const;

  /// Copy of the trace restricted to one server host — the paper's "only
  /// the TCP connections used to transfer the video content" step (§2).
  [[nodiscard]] PacketTrace only_host(std::uint8_t host) const;

  /// Cumulative (time, downloaded bytes) curve of down-direction payload —
  /// the "Download Amount" axis of Figs 1, 2a, 6a, 7a, 10.
  struct CurvePoint {
    double t_s;
    std::uint64_t bytes;
  };
  [[nodiscard]] std::vector<CurvePoint> download_curve() const;

  /// Client receive-window time series from up-direction segments — the
  /// "Receive Window" axis of Figs 2b and 6a.
  struct WindowPoint {
    double t_s;
    std::uint64_t window_bytes;
  };
  [[nodiscard]] std::vector<WindowPoint> receive_window_series() const;

  /// Fraction of down-direction payload bytes that were retransmissions.
  [[nodiscard]] double retransmission_fraction() const;
};

}  // namespace vstream::capture
