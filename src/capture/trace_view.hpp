// Zero-copy trace views: non-owning, lazily filtered windows onto a
// `PacketTrace`.
//
// The paper's methodology (§2, §5) repeatedly restricts a capture — to the
// video host's connections, to one direction, to everything but tagged
// cross-traffic — before analysing it. The seed implemented each restriction
// as a copy-returning filter (`only_host`, `in_direction`,
// `without_connection`), so a sweep over thousands of sessions duplicated
// every trace several times. A `TraceView` expresses the same restrictions
// as a predicate evaluated during iteration: composing filters never
// allocates, and the analysis layer walks the single owned vector in place.
//
// Views are value types the size of a pointer plus a small filter; pass
// them by value. A view never outlives its trace — holders of a view must
// keep the underlying `PacketTrace` alive (the session result owns it).
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "capture/trace.hpp"

namespace vstream::capture {

/// Conjunction of the three restriction predicates the analysis layer
/// needs. Unset fields match everything, so the default filter passes every
/// record through.
struct TraceFilter {
  std::optional<net::Direction> direction;
  std::optional<std::uint8_t> host;
  std::optional<std::uint64_t> excluded_connection;

  [[nodiscard]] bool matches(const PacketRecord& p) const {
    if (direction && p.direction != *direction) return false;
    if (host && p.host != *host) return false;
    if (excluded_connection && p.connection_id == *excluded_connection) return false;
    return true;
  }

  [[nodiscard]] bool pass_through() const {
    return !direction && !host && !excluded_connection;
  }
};

class TraceView {
 public:
  /// Forward iterator that skips records failing the view's filter.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = PacketRecord;
    using difference_type = std::ptrdiff_t;
    using pointer = const PacketRecord*;
    using reference = const PacketRecord&;

    iterator() = default;
    iterator(const PacketRecord* cur, const PacketRecord* end, const TraceFilter* filter)
        : cur_{cur}, end_{end}, filter_{filter} {
      advance_to_match();
    }

    reference operator*() const { return *cur_; }
    pointer operator->() const { return cur_; }

    iterator& operator++() {
      ++cur_;
      advance_to_match();
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }

    friend bool operator==(const iterator& a, const iterator& b) { return a.cur_ == b.cur_; }
    friend bool operator!=(const iterator& a, const iterator& b) { return a.cur_ != b.cur_; }

   private:
    void advance_to_match() {
      if (filter_ == nullptr) return;
      while (cur_ != end_ && !filter_->matches(*cur_)) ++cur_;
    }

    const PacketRecord* cur_{nullptr};
    const PacketRecord* end_{nullptr};
    const TraceFilter* filter_{nullptr};
  };

  /// Default view: empty, matches nothing. Lets holders default-construct
  /// and rebind later.
  TraceView() = default;

  /// Implicit on purpose: every API that used to take `const PacketTrace&`
  /// now takes a TraceView, and existing call sites keep compiling.
  TraceView(const PacketTrace& trace) : trace_{&trace} {}  // NOLINT(google-explicit-constructor)

  // -- combinators ---------------------------------------------------------
  // Each returns a narrowed copy of the view; the underlying trace is
  // shared, never duplicated. Names deliberately differ from the retired
  // copy-returning PacketTrace filters so the `trace-copy` lint rule can
  // flag the old spellings without false positives.

  /// Restrict to one direction (paper: down = server->viewer payload).
  [[nodiscard]] TraceView direction(net::Direction d) const {
    TraceView out = *this;
    out.filter_.direction = d;
    return out;
  }

  /// Restrict to one server host — the §2 "only the TCP connections used to
  /// transfer the video content" step (host 0 is the video CDN).
  [[nodiscard]] TraceView host(std::uint8_t h) const {
    TraceView out = *this;
    out.filter_.host = h;
    return out;
  }

  /// Drop one connection — strips tagged cross-traffic before analysis.
  [[nodiscard]] TraceView excluding_connection(std::uint64_t connection_id) const {
    TraceView out = *this;
    out.filter_.excluded_connection = connection_id;
    return out;
  }

  // -- iteration -----------------------------------------------------------

  [[nodiscard]] iterator begin() const {
    const PacketRecord* first = trace_ == nullptr ? nullptr : trace_->packets.data();
    const PacketRecord* last = first == nullptr ? nullptr : first + trace_->packets.size();
    return iterator{first, last, &filter_};
  }
  [[nodiscard]] iterator end() const {
    const PacketRecord* first = trace_ == nullptr ? nullptr : trace_->packets.data();
    const PacketRecord* last = first == nullptr ? nullptr : first + trace_->packets.size();
    return iterator{last, last, &filter_};
  }

  [[nodiscard]] bool empty() const { return begin() == end(); }

  /// Number of records passing the filter. O(n) when filtered, O(1) on a
  /// pass-through view.
  [[nodiscard]] std::size_t count() const;

  // -- metadata passthrough ------------------------------------------------

  [[nodiscard]] const std::string& label() const;
  [[nodiscard]] double encoding_bps() const { return trace_ == nullptr ? 0.0 : trace_->encoding_bps; }
  [[nodiscard]] double duration_s() const { return trace_ == nullptr ? 0.0 : trace_->duration_s; }

  [[nodiscard]] const TraceFilter& filter() const { return filter_; }
  [[nodiscard]] const PacketTrace* underlying() const { return trace_; }

  // -- aggregates (same semantics as the PacketTrace members) --------------

  [[nodiscard]] std::uint64_t down_payload_bytes() const;
  [[nodiscard]] std::size_t connection_count() const;
  [[nodiscard]] double retransmission_fraction() const;
  [[nodiscard]] std::vector<PacketTrace::CurvePoint> download_curve() const;
  [[nodiscard]] std::vector<PacketTrace::WindowPoint> receive_window_series() const;

  /// Copy the filtered records into an owned trace (metadata included).
  /// The one sanctioned way to materialize a filter result — e.g. before
  /// writing a pcap of the video connections only.
  [[nodiscard]] PacketTrace materialize() const;

 private:
  const PacketTrace* trace_{nullptr};
  TraceFilter filter_;
};

}  // namespace vstream::capture
