// CSV export of packet traces and derived series, for external plotting of
// the figures the benches print as tables.
#pragma once

#include <ostream>
#include <string>

#include "capture/trace.hpp"

namespace vstream::capture {

/// One row per packet: t_s,dir,conn,seq,ack,payload,window,flags,retx
void write_packets_csv(const PacketTrace& trace, std::ostream& out);
void write_packets_csv(const PacketTrace& trace, const std::string& path);

/// One row per down-direction data packet: t_s,cumulative_bytes
void write_download_curve_csv(const PacketTrace& trace, std::ostream& out);

/// One row per up-direction packet: t_s,window_bytes
void write_window_series_csv(const PacketTrace& trace, std::ostream& out);

}  // namespace vstream::capture
