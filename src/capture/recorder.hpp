// Viewer-side packet capture, playing the role tcpdump/windump played in
// the paper's methodology (Section 4.2).
//
// The recorder taps a Path and records segments as the viewer's NIC sees
// them: down-direction segments when they are *delivered*, up-direction
// segments when they are *transmitted*. Capture can be stopped (the paper
// stopped after 180 s) independently of the simulation.
//
// Besides storing records into a `PacketTrace`, the recorder can forward
// each record to a sink as it happens — the hook the streaming analysis
// pipeline attaches to — and storing can be disabled entirely for
// sink-only operation, making a session O(1) in capture length.
#pragma once

#include <functional>

#include "capture/trace.hpp"
#include "net/path.hpp"
#include "sim/simulator.hpp"

namespace vstream::capture {

class TraceRecorder {
 public:
  /// Called once per recorded packet, in capture order, after the record is
  /// (optionally) stored.
  using RecordSink = std::function<void(const PacketRecord&)>;

  /// Installs the tap. The recorder must outlive the path or be detached.
  TraceRecorder(sim::Simulator& sim, net::Path& path);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void start() { recording_ = true; }
  void stop();

  /// Remove the tap from the path (automatic on destruction).
  void detach();

  /// Stream each record to `sink` as it is captured (empty to clear).
  void set_record_sink(RecordSink sink) { sink_ = std::move(sink); }

  /// When false, records are forwarded to the sink but not stored — the
  /// trace stays empty and memory stays constant. Default true.
  void set_store_packets(bool store) { store_packets_ = store; }

  /// Pre-size the trace for an expected capture: `duration_s` of capture at
  /// `down_bps` of download bandwidth. A deliberate over-estimate (data +
  /// ack packets, jitter margin) capped at a sane bound, so a 180 s capture
  /// does one allocation instead of a realloc cascade.
  void reserve_for(double duration_s, double down_bps);

  [[nodiscard]] bool recording() const { return recording_; }
  [[nodiscard]] PacketTrace& trace() { return trace_; }
  [[nodiscard]] const PacketTrace& trace() const { return trace_; }

  /// Take ownership of the recorded trace, stamping its duration.
  [[nodiscard]] PacketTrace take();

 private:
  void on_event(sim::SimTime t, const net::TcpSegment& s, net::Direction d, net::LinkEvent e);
  void publish_trace_bytes();

  sim::Simulator& sim_;
  net::Path* path_;
  PacketTrace trace_;
  RecordSink sink_;
  bool recording_{false};
  bool store_packets_{true};
  double first_t_s_{-1.0};
  double last_t_s_{0.0};
};

}  // namespace vstream::capture
