// Viewer-side packet capture, playing the role tcpdump/windump played in
// the paper's methodology (Section 4.2).
//
// The recorder taps a Path and records segments as the viewer's NIC sees
// them: down-direction segments when they are *delivered*, up-direction
// segments when they are *transmitted*. Capture can be stopped (the paper
// stopped after 180 s) independently of the simulation.
#pragma once

#include "capture/trace.hpp"
#include "net/path.hpp"
#include "sim/simulator.hpp"

namespace vstream::capture {

class TraceRecorder {
 public:
  /// Installs the tap. The recorder must outlive the path or be detached.
  TraceRecorder(sim::Simulator& sim, net::Path& path);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void start() { recording_ = true; }
  void stop();

  /// Remove the tap from the path (automatic on destruction).
  void detach();

  [[nodiscard]] bool recording() const { return recording_; }
  [[nodiscard]] PacketTrace& trace() { return trace_; }
  [[nodiscard]] const PacketTrace& trace() const { return trace_; }

  /// Take ownership of the recorded trace, stamping its duration.
  [[nodiscard]] PacketTrace take();

 private:
  void on_event(sim::SimTime t, const net::TcpSegment& s, net::Direction d, net::LinkEvent e);

  sim::Simulator& sim_;
  net::Path* path_;
  PacketTrace trace_;
  bool recording_{false};
  double first_t_s_{-1.0};
  double last_t_s_{0.0};
};

}  // namespace vstream::capture
